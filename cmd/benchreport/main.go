// Command benchreport regenerates every table and figure of the paper's
// evaluation in one run and prints them as Markdown (the source of
// EXPERIMENTS.md) or plain text.
//
// Usage:
//
//	benchreport [-budget 2000] [-markdown]
package main

import (
	"context"
	"flag"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fuzz"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sqlparse"
	"repro/internal/sut"
	"repro/internal/sut/memengine"
)

var markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")

func emit(t *report.Table) {
	if *markdown {
		fmt.Println(t.Markdown())
	} else {
		fmt.Println(t.Render())
	}
}

func main() {
	budget := flag.Int("budget", 2000, "database budget per fault campaign")
	flag.Parse()

	start := time.Now()
	// Every dialect's whole fault corpus goes through one shared
	// work-stealing scheduler pool: one sweep, not 3 × N serial campaigns.
	var all []runner.Campaign
	spans := map[dialect.Dialect][2]int{}
	for _, d := range dialect.All {
		cs := runner.CorpusCampaigns(d, *budget, 1, true)
		spans[d] = [2]int{len(all), len(all) + len(cs)}
		all = append(all, cs...)
	}
	s := &runner.Scheduler{}
	swept := s.Sweep(context.Background(), all)
	data := map[dialect.Dialect][]runner.Result{}
	for _, d := range dialect.All {
		data[d] = swept[spans[d][0]:spans[d][1]]
	}
	fmt.Printf("corpus sweep (%d campaigns, one scheduler pool) finished in %s\n\n",
		len(all), time.Since(start).Round(time.Millisecond))

	table1()
	table2(data)
	table3(data)
	table4()
	figure2(data)
	figure3(data)
	throughput()
	baseline(*budget / 4)
}

func loc(dirs ...string) int {
	root := report.RepoRoot()
	total := 0
	for _, dir := range dirs {
		n, err := report.CountLOC(filepath.Join(root, "internal", dir))
		if err == nil {
			total += n
		}
	}
	return total
}

func table1() {
	substrate := loc("sqlval", "sqlast", "sqlparse", "schema", "storage", "eval", "engine", "xerr", "dialect", "faults")
	t := &report.Table{
		Title:   "Table 1: systems under test",
		Headers: []string{"DBMS", "Paper LOC", "Paper age", "Our profile substrate LOC"},
	}
	t.AddRow("SQLite", "0.3M", "19y", substrate)
	t.AddRow("MySQL", "3.8M", "24y", substrate)
	t.AddRow("PostgreSQL", "1.4M", "23y", substrate)
	emit(t)
}

func table2(data map[dialect.Dialect][]runner.Result) {
	t := &report.Table{
		Title:   "Table 2: detected injected bugs (paper: fixed+verified 65/25/9)",
		Headers: []string{"DBMS", "Faults", "Detected", "Missed"},
	}
	for _, d := range dialect.All {
		det := 0
		for _, r := range data[d] {
			if r.Detected {
				det++
			}
		}
		t.AddRow(d.DisplayName(), len(data[d]), det, len(data[d])-det)
	}
	emit(t)
}

func table3(data map[dialect.Dialect][]runner.Result) {
	t := &report.Table{
		Title:   "Table 3: detections per oracle (paper: 61/34/4)",
		Headers: []string{"DBMS", "Contains", "Error", "SEGFAULT"},
	}
	sums := map[faults.Oracle]int{}
	for _, d := range dialect.All {
		counts := map[faults.Oracle]int{}
		for _, r := range data[d] {
			if r.Detected {
				counts[r.Bug.Oracle]++
				sums[r.Bug.Oracle]++
			}
		}
		t.AddRow(d.DisplayName(), counts[faults.OracleContainment], counts[faults.OracleError], counts[faults.OracleCrash])
	}
	t.AddRow("Sum", sums[faults.OracleContainment], sums[faults.OracleError], sums[faults.OracleCrash])
	emit(t)
}

func table4() {
	testerLOC := loc("core", "gen", "interp", "oracle", "reduce", "runner")
	engineLOC := loc("engine", "eval", "storage", "schema", "sqlparse", "sqlast", "sqlval", "xerr")
	features := map[dialect.Dialect]int{}
	union := map[string]bool{}
	perDialect := map[dialect.Dialect]map[string]bool{}
	for _, d := range dialect.All {
		perDialect[d] = map[string]bool{}
		for seed := int64(1); seed <= 30; seed++ {
			e := engine.Open(d)
			tester := core.NewTesterWithDB(core.Config{Seed: seed, QueriesPerDB: 10}, memengine.Wrap(e, sut.Session{}))
			if _, err := tester.RunBoundDatabase(); err != nil {
				continue
			}
			for k := range e.Coverage().Snapshot() {
				perDialect[d][k] = true
				union[k] = true
			}
		}
		features[d] = len(perDialect[d])
	}
	t := &report.Table{
		Title:   "Table 4: tester vs engine size and feature coverage (paper: 13.1/0.6/1.5% size; 43/24/24% coverage)",
		Headers: []string{"DBMS", "Tester LOC", "Engine LOC", "Size ratio", "Coverage"},
	}
	for _, d := range dialect.All {
		t.AddRow(d.DisplayName(), testerLOC, engineLOC,
			fmt.Sprintf("%.1f%%", 100*float64(testerLOC)/float64(engineLOC)),
			fmt.Sprintf("%.1f%%", 100*float64(features[d])/float64(len(union))))
	}
	emit(t)
}

func figure2(data map[dialect.Dialect][]runner.Result) {
	var lengths []int
	for _, d := range dialect.All {
		for _, r := range data[d] {
			if r.Detected {
				lengths = append(lengths, len(r.Reduced))
			}
		}
	}
	fmt.Println(report.RenderCDF("Figure 2: CDF of reduced test-case statement counts", report.CDF(lengths)))
	fmt.Printf("mean=%.2f median=%.1f max=%d (paper: mean 3.71, max 8)\n\n",
		report.Mean(lengths), report.Median(lengths), report.Max(lengths))
}

func figure3(data map[dialect.Dialect][]runner.Result) {
	for _, d := range dialect.All {
		h := report.NewStatementHistogram()
		for _, r := range data[d] {
			if !r.Detected || len(r.Reduced) == 0 {
				continue
			}
			var kinds []string
			for _, sql := range r.Reduced {
				if st, err := sqlparse.ParseOne(sql, d); err == nil {
					kinds = append(kinds, st.Kind())
				}
			}
			if len(kinds) > 0 {
				h.AddCase(kinds, kinds[len(kinds)-1], string(r.Bug.Oracle))
			}
		}
		fmt.Println(h.Render(fmt.Sprintf("Figure 3 (%s): statement kinds in reduced test cases", d.DisplayName())))
	}
}

func throughput() {
	t := &report.Table{
		Title:   "Throughput (paper: 5,000-20,000 statements/second)",
		Headers: []string{"DBMS", "Statements/s"},
	}
	for _, d := range dialect.All {
		tester := core.NewTester(core.Config{Dialect: d, Seed: 1, QueriesPerDB: 20})
		start := time.Now()
		for i := 0; i < 40; i++ {
			if _, err := tester.RunDatabase(); err != nil {
				break
			}
		}
		el := time.Since(start).Seconds()
		t.AddRow(d.DisplayName(), fmt.Sprintf("%.0f", float64(tester.Stats().Statements)/el))
	}
	emit(t)
}

func baseline(budget int) {
	pqsLogic, fuzzLogic, logicTotal := 0, 0, 0
	for _, info := range faults.All() {
		if !info.Logic {
			continue
		}
		logicTotal++
		if runner.Run(runner.Campaign{Dialect: info.Dialect, Fault: info.ID, MaxDatabases: budget, BaseSeed: 1}).Detected {
			pqsLogic++
		}
		for seed := int64(1); seed <= int64(budget); seed++ {
			f := fuzz.New(fuzz.Config{Dialect: info.Dialect, Seed: seed, Faults: faults.NewSet(info.ID)})
			if bug, _ := f.RunDatabase(); bug != nil {
				fuzzLogic++
				break
			}
		}
	}
	t := &report.Table{
		Title:   "Baseline: logic bugs found (fuzzers cannot see logic bugs)",
		Headers: []string{"Approach", "Logic bugs"},
	}
	t.AddRow("PQS", fmt.Sprintf("%d/%d", pqsLogic, logicTotal))
	t.AddRow("Fuzzer", fmt.Sprintf("%d/%d", fuzzLogic, logicTotal))
	emit(t)
}
