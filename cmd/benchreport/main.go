// Command benchreport regenerates every table and figure of the paper's
// evaluation in one run and prints them as Markdown (the source of
// EXPERIMENTS.md) or plain text.
//
// Usage:
//
//	benchreport [-budget 2000] [-markdown]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fuzz"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sqlparse"
	"repro/internal/sut"
	"repro/internal/sut/memengine"
)

var markdown = flag.Bool("markdown", false, "emit Markdown instead of plain text")

func emit(t *report.Table) {
	if *markdown {
		fmt.Println(t.Markdown())
	} else {
		fmt.Println(t.Render())
	}
}

func main() {
	budget := flag.Int("budget", 2000, "database budget per fault campaign")
	flag.Parse()

	start := time.Now()
	// Every dialect's whole fault corpus goes through one shared
	// work-stealing scheduler pool: one sweep, not 3 × N serial campaigns.
	var all []runner.Campaign
	spans := map[dialect.Dialect][2]int{}
	for _, d := range dialect.All {
		cs := runner.CorpusCampaigns(d, *budget, 1, true)
		spans[d] = [2]int{len(all), len(all) + len(cs)}
		all = append(all, cs...)
	}
	s := &runner.Scheduler{}
	swept := s.Sweep(context.Background(), all)
	data := map[dialect.Dialect][]runner.Result{}
	for _, d := range dialect.All {
		data[d] = swept[spans[d][0]:spans[d][1]]
	}
	fmt.Printf("corpus sweep (%d campaigns, one scheduler pool) finished in %s\n\n",
		len(all), time.Since(start).Round(time.Millisecond))

	table1()
	table2(data)
	table3(data)
	table4()
	figure2(data)
	figure3(data)
	throughput()
	baseline(*budget / 4)
	bench8()
	bench9()
	bench10()
}

// bench10 measures the PR 10 perf work — streaming hash aggregation vs
// materialized grouping on the 10k-row/10-group shape, the bounded
// top-K heap vs the full sort on ORDER BY + LIMIT 10, and grouped/
// ordered PQS campaign throughput with hash aggregation on vs ablated —
// and writes the numbers to BENCH_10.json at the repo root.
// BenchmarkGroupByHash / BenchmarkTopK / BenchmarkAggCampaignThroughput
// are the precise per-op measurements; this emits machine-readable
// snapshots of the same workloads.
func bench10() {
	const aggRows = 10000
	mk := func(opts ...engine.Option) *engine.Engine {
		e := engine.Open(dialect.SQLite, opts...)
		if _, err := e.Exec("CREATE TABLE ab0(g INT, a INT, b REAL, c INT)"); err != nil {
			panic(err)
		}
		for lo := 0; lo < aggRows; lo += 200 {
			var sb strings.Builder
			sb.WriteString("INSERT INTO ab0 VALUES ")
			for i := lo; i < lo+200; i++ {
				if i > lo {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, %d, %d.5, %d)", i%10, i, i%100, i%7)
			}
			if _, err := e.Exec(sb.String()); err != nil {
				panic(err)
			}
		}
		return e
	}
	hashed, materialized := mk(), mk(engine.WithoutHashAgg())
	measure := func(e *engine.Engine, sql string, iters int) time.Duration {
		if _, err := e.Exec(sql); err != nil { // warm compiled programs
			panic(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Exec(sql); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / time.Duration(iters)
	}
	const groupSQL = "SELECT g, COUNT(*), SUM(a), AVG(b) FROM ab0 GROUP BY g"
	groupHashNs := measure(hashed, groupSQL, 30)
	groupMatNs := measure(materialized, groupSQL, 10)
	const topkSQL = "SELECT * FROM ab0 ORDER BY b, a LIMIT 10"
	topkNs := measure(hashed, topkSQL, 30)
	sortNs := measure(materialized, topkSQL, 10)

	// Grouped/ordered PQS campaign throughput: the generator now emits
	// ORDER BY + LIMIT shapes, so end-to-end dbs/s reflects the new
	// executor paths under oracle load.
	campaign := func(noHashAgg bool) (float64, float64) {
		const dbs = 300
		tester := core.NewTester(core.Config{
			Dialect: dialect.SQLite, Seed: 1, QueriesPerDB: 20, NoHashAgg: noHashAgg,
		})
		start := time.Now()
		for i := 0; i < dbs; i++ {
			if _, err := tester.RunDatabase(); err != nil {
				panic(err)
			}
		}
		el := time.Since(start).Seconds()
		return float64(dbs) / el, float64(tester.Stats().Statements) / el
	}
	onDBs, onStmts := campaign(false)
	offDBs, offStmts := campaign(true)

	out := map[string]any{
		"pr": 10,
		"group_by_10kx10": map[string]any{
			"hash_ns_per_op":         groupHashNs.Nanoseconds(),
			"materialized_ns_per_op": groupMatNs.Nanoseconds(),
			"speedup":                float64(groupMatNs) / float64(groupHashNs),
			"target_speedup":         3.0,
		},
		"topk_10k_limit10": map[string]any{
			"heap_ns_per_op":      topkNs.Nanoseconds(),
			"full_sort_ns_per_op": sortNs.Nanoseconds(),
			"speedup":             float64(sortNs) / float64(topkNs),
		},
		"agg_campaign": map[string]any{
			"hashagg_dbs_per_s":      onDBs,
			"hashagg_stmts_per_s":    onStmts,
			"no_hashagg_dbs_per_s":   offDBs,
			"no_hashagg_stmts_per_s": offStmts,
		},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	path := filepath.Join(report.RepoRoot(), "BENCH_10.json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s: group-by hash %.1fx over materialized, top-K %.1fx over full sort\n\n",
		path, float64(groupMatNs)/float64(groupHashNs), float64(sortNs)/float64(topkNs))
}

// bench9 measures the PR 9 transaction work — the BEGIN/INSERT/COMMIT
// cycle against plain autocommit inserts, and serializability-oracle
// campaign throughput (interleaved multi-session histories plus the
// serial-order search per check) — and writes the numbers to BENCH_9.json
// at the repo root. BenchmarkTxnThroughput / BenchmarkInterleavedCampaign
// are the precise per-op measurements; this emits machine-readable
// snapshots of the same workloads.
func bench9() {
	const cycles = 20000
	e := engine.Open(dialect.SQLite)
	if _, err := e.Exec("CREATE TABLE t0(c0 INT, c1 TEXT)"); err != nil {
		panic(err)
	}
	c := e.NewConn()
	run := func(txn bool, iters int) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if txn {
				if _, err := c.Exec("BEGIN"); err != nil {
					panic(err)
				}
			}
			if _, err := c.Exec("INSERT INTO t0 VALUES (1, 'x')"); err != nil {
				panic(err)
			}
			if txn {
				if _, err := c.Exec("COMMIT"); err != nil {
					panic(err)
				}
			}
		}
		return time.Since(start) / time.Duration(iters)
	}
	txnNs := run(true, cycles)
	autoNs := run(false, cycles)

	const dbs = 200
	tester := core.NewTester(core.Config{
		Dialect: dialect.SQLite, Oracle: "serializability", Seed: 1, QueriesPerDB: 20,
	})
	start := time.Now()
	for i := 0; i < dbs; i++ {
		if _, err := tester.RunDatabase(); err != nil {
			panic(err)
		}
	}
	el := time.Since(start).Seconds()

	out := map[string]any{
		"pr": 9,
		"txn_commit_cycle": map[string]any{
			"txn_ns_per_commit":    txnNs.Nanoseconds(),
			"autocommit_ns_per_op": autoNs.Nanoseconds(),
			"overhead":             float64(txnNs) / float64(autoNs),
		},
		"serializability_campaign": map[string]any{
			"dbs_per_s":   float64(dbs) / el,
			"stmts_per_s": float64(tester.Stats().Statements) / el,
			"checks":      tester.Stats().Queries,
		},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	path := filepath.Join(report.RepoRoot(), "BENCH_9.json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s: txn commit cycle %s vs autocommit %s, serializability campaign %.0f dbs/s\n\n",
		path, txnNs, autoNs, float64(dbs)/el)
}

// bench8 measures the PR 8 perf work — hash join vs nested loop on the
// 1k×1k equi-join and parse throughput over a rendered-SQL corpus (the
// allocation-free tokenizer dominates that path) — and writes the numbers
// to BENCH_8.json at the repo root, the perf trajectory file CI and later
// PRs diff against. BenchmarkHashJoin / BenchmarkTokenize are the precise
// per-op measurements; this emits machine-readable snapshots of the same
// workloads.
func bench8() {
	const joinRows = 1000
	mk := func(opts ...engine.Option) *engine.Engine {
		e := engine.Open(dialect.SQLite, opts...)
		for _, tbl := range []string{"jb0", "jb1"} {
			if _, err := e.Exec(fmt.Sprintf("CREATE TABLE %s(k INT, v TEXT)", tbl)); err != nil {
				panic(err)
			}
			for lo := 0; lo < joinRows; lo += 200 {
				var sb strings.Builder
				fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tbl)
				for i := lo; i < lo+200; i++ {
					if i > lo {
						sb.WriteString(", ")
					}
					fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
				}
				if _, err := e.Exec(sb.String()); err != nil {
					panic(err)
				}
			}
		}
		return e
	}
	hashed, nested := mk(), mk(engine.WithoutHashJoin())
	const joinQuery = "SELECT COUNT(*) FROM jb0 JOIN jb1 ON jb0.k = jb1.k"
	measure := func(e *engine.Engine, iters int) time.Duration {
		if _, err := e.Exec(joinQuery); err != nil { // warm compiled programs
			panic(err)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Exec(joinQuery); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / time.Duration(iters)
	}
	hashNs := measure(hashed, 30)
	nestedNs := measure(nested, 3)

	// Parse throughput over a representative rendered query: lexing is the
	// dominant cost, so this tracks the tokenizer fast path.
	const parseSQL = "SELECT t0.c0, t1.c1, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 " +
		"LEFT JOIN t2 ON t1.c1 = t2.c1 WHERE t0.c0 >= 100 AND t1.c1 <> 'abc' " +
		"GROUP BY t0.c0, t1.c1 HAVING COUNT(*) > 1.5e2 ORDER BY t0.c0 LIMIT 10"
	const parseIters = 20000
	start := time.Now()
	for i := 0; i < parseIters; i++ {
		if _, err := sqlparse.Parse(parseSQL, dialect.SQLite); err != nil {
			panic(err)
		}
	}
	parseNs := time.Since(start) / parseIters

	out := map[string]any{
		"pr": 8,
		"hash_join_1kx1k": map[string]any{
			"hash_ns_per_op":   hashNs.Nanoseconds(),
			"nested_ns_per_op": nestedNs.Nanoseconds(),
			"speedup":          float64(nestedNs) / float64(hashNs),
			"target_speedup":   5.0,
		},
		"tokenizer": map[string]any{
			"parse_ns_per_stmt": parseNs.Nanoseconds(),
			"stmt_bytes":        len(parseSQL),
			"parse_mb_per_s":    float64(len(parseSQL)) / (float64(parseNs.Nanoseconds()) / 1e9) / 1e6,
		},
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(err)
	}
	path := filepath.Join(report.RepoRoot(), "BENCH_8.json")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s: hash join %.0fx over nested loop, parse %s/stmt\n\n",
		path, float64(nestedNs)/float64(hashNs), parseNs)
}

func loc(dirs ...string) int {
	root := report.RepoRoot()
	total := 0
	for _, dir := range dirs {
		n, err := report.CountLOC(filepath.Join(root, "internal", dir))
		if err == nil {
			total += n
		}
	}
	return total
}

func table1() {
	substrate := loc("sqlval", "sqlast", "sqlparse", "schema", "storage", "eval", "engine", "xerr", "dialect", "faults")
	t := &report.Table{
		Title:   "Table 1: systems under test",
		Headers: []string{"DBMS", "Paper LOC", "Paper age", "Our profile substrate LOC"},
	}
	t.AddRow("SQLite", "0.3M", "19y", substrate)
	t.AddRow("MySQL", "3.8M", "24y", substrate)
	t.AddRow("PostgreSQL", "1.4M", "23y", substrate)
	emit(t)
}

func table2(data map[dialect.Dialect][]runner.Result) {
	t := &report.Table{
		Title:   "Table 2: detected injected bugs (paper: fixed+verified 65/25/9)",
		Headers: []string{"DBMS", "Faults", "Detected", "Missed"},
	}
	for _, d := range dialect.All {
		det := 0
		for _, r := range data[d] {
			if r.Detected {
				det++
			}
		}
		t.AddRow(d.DisplayName(), len(data[d]), det, len(data[d])-det)
	}
	emit(t)
}

func table3(data map[dialect.Dialect][]runner.Result) {
	t := &report.Table{
		Title:   "Table 3: detections per oracle (paper: 61/34/4)",
		Headers: []string{"DBMS", "Contains", "Error", "SEGFAULT"},
	}
	sums := map[faults.Oracle]int{}
	for _, d := range dialect.All {
		counts := map[faults.Oracle]int{}
		for _, r := range data[d] {
			if r.Detected {
				counts[r.Bug.Oracle]++
				sums[r.Bug.Oracle]++
			}
		}
		t.AddRow(d.DisplayName(), counts[faults.OracleContainment], counts[faults.OracleError], counts[faults.OracleCrash])
	}
	t.AddRow("Sum", sums[faults.OracleContainment], sums[faults.OracleError], sums[faults.OracleCrash])
	emit(t)
}

func table4() {
	testerLOC := loc("core", "gen", "interp", "oracle", "reduce", "runner")
	engineLOC := loc("engine", "eval", "storage", "schema", "sqlparse", "sqlast", "sqlval", "xerr")
	features := map[dialect.Dialect]int{}
	union := map[string]bool{}
	perDialect := map[dialect.Dialect]map[string]bool{}
	for _, d := range dialect.All {
		perDialect[d] = map[string]bool{}
		for seed := int64(1); seed <= 30; seed++ {
			e := engine.Open(d)
			tester := core.NewTesterWithDB(core.Config{Seed: seed, QueriesPerDB: 10}, memengine.Wrap(e, sut.Session{}))
			if _, err := tester.RunBoundDatabase(); err != nil {
				continue
			}
			for k := range e.Coverage().Snapshot() {
				perDialect[d][k] = true
				union[k] = true
			}
		}
		features[d] = len(perDialect[d])
	}
	t := &report.Table{
		Title:   "Table 4: tester vs engine size and feature coverage (paper: 13.1/0.6/1.5% size; 43/24/24% coverage)",
		Headers: []string{"DBMS", "Tester LOC", "Engine LOC", "Size ratio", "Coverage"},
	}
	for _, d := range dialect.All {
		t.AddRow(d.DisplayName(), testerLOC, engineLOC,
			fmt.Sprintf("%.1f%%", 100*float64(testerLOC)/float64(engineLOC)),
			fmt.Sprintf("%.1f%%", 100*float64(features[d])/float64(len(union))))
	}
	emit(t)
}

func figure2(data map[dialect.Dialect][]runner.Result) {
	var lengths []int
	for _, d := range dialect.All {
		for _, r := range data[d] {
			if r.Detected {
				lengths = append(lengths, len(r.Reduced))
			}
		}
	}
	fmt.Println(report.RenderCDF("Figure 2: CDF of reduced test-case statement counts", report.CDF(lengths)))
	fmt.Printf("mean=%.2f median=%.1f max=%d (paper: mean 3.71, max 8)\n\n",
		report.Mean(lengths), report.Median(lengths), report.Max(lengths))
}

func figure3(data map[dialect.Dialect][]runner.Result) {
	for _, d := range dialect.All {
		h := report.NewStatementHistogram()
		for _, r := range data[d] {
			if !r.Detected || len(r.Reduced) == 0 {
				continue
			}
			var kinds []string
			for _, sql := range r.Reduced {
				if st, err := sqlparse.ParseOne(sql, d); err == nil {
					kinds = append(kinds, st.Kind())
				}
			}
			if len(kinds) > 0 {
				h.AddCase(kinds, kinds[len(kinds)-1], string(r.Bug.Oracle))
			}
		}
		fmt.Println(h.Render(fmt.Sprintf("Figure 3 (%s): statement kinds in reduced test cases", d.DisplayName())))
	}
}

func throughput() {
	t := &report.Table{
		Title:   "Throughput (paper: 5,000-20,000 statements/second)",
		Headers: []string{"DBMS", "Statements/s"},
	}
	for _, d := range dialect.All {
		tester := core.NewTester(core.Config{Dialect: d, Seed: 1, QueriesPerDB: 20})
		start := time.Now()
		for i := 0; i < 40; i++ {
			if _, err := tester.RunDatabase(); err != nil {
				break
			}
		}
		el := time.Since(start).Seconds()
		t.AddRow(d.DisplayName(), fmt.Sprintf("%.0f", float64(tester.Stats().Statements)/el))
	}
	emit(t)
}

func baseline(budget int) {
	pqsLogic, fuzzLogic, logicTotal := 0, 0, 0
	for _, info := range faults.All() {
		if !info.Logic {
			continue
		}
		logicTotal++
		if runner.Run(runner.Campaign{Dialect: info.Dialect, Fault: info.ID, MaxDatabases: budget, BaseSeed: 1}).Detected {
			pqsLogic++
		}
		for seed := int64(1); seed <= int64(budget); seed++ {
			f := fuzz.New(fuzz.Config{Dialect: info.Dialect, Seed: seed, Faults: faults.NewSet(info.ID)})
			if bug, _ := f.RunDatabase(); bug != nil {
				fuzzLogic++
				break
			}
		}
	}
	t := &report.Table{
		Title:   "Baseline: logic bugs found (fuzzers cannot see logic bugs)",
		Headers: []string{"Approach", "Logic bugs"},
	}
	t.AddRow("PQS", fmt.Sprintf("%d/%d", pqsLogic, logicTotal))
	t.AddRow("Fuzzer", fmt.Sprintf("%d/%d", fuzzLogic, logicTotal))
	emit(t)
}
