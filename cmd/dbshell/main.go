// Command dbshell is a minimal interactive shell over a SUT backend, for
// manual exploration of the dialects and the injected bug corpus.
//
// Usage:
//
//	dbshell -dialect sqlite [-backend memengine|wire] [-storage pager] [-fault sqlite.partial-index-not-null] [-no-compile] [-no-hashjoin] [-no-hashagg]
//
// Statements end with ';'. Meta commands: .tables, .schema <t>,
// .plan <select>, .oracle <name>, .begin, .commit, .rollback,
// .snapshot, .restore, .reset, .storage, .timer [on|off], .backend,
// .quit.
// `.begin`, `.commit`, and `.rollback` control a transaction on the
// shell's session (shorthand for the BEGIN/COMMIT/ROLLBACK statements):
// writes stage against a private snapshot until commit, which fails with
// a conflict error if a concurrent commit touched the same tables.
// `.snapshot` captures the database's data copy-on-write and `.restore`
// rewinds to it (fixed schema; handy for replaying DML against an
// injected fault), while `.reset` rewinds the whole database to the
// pristine state of a fresh open.
// `EXPLAIN [QUERY PLAN] <select>;` also works as a statement and reports
// the planner's chosen access path per FROM source. `.timer on` prints
// per-statement wall time — combined with -no-compile it A/B-tests
// compiled expression programs against the tree-walk interpreter.
// `.oracle <name>` runs one-shot checks of a registered testing oracle
// (pqs, tlp, norec, recovery, serializability) against the shell's
// current database — handy for watching an injected fault (-fault) get
// caught interactively.
// `-storage pager` opens the shell's database on the durable page-file +
// WAL backend (the recovery oracle requires it); `.storage` prints the
// storage mode and the pager's work counters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	// The blank core import registers the "pqs" oracle (PQS's pivot
	// machinery lives there; see internal/core/oracle_pqs.go).
	_ "repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/storage/pager"
	"repro/internal/sut"
	_ "repro/internal/sut/memengine"
	_ "repro/internal/sut/wire"
)

func main() {
	var (
		dialectFlag = flag.String("dialect", "sqlite", "dialect profile")
		backendFlag = flag.String("backend", sut.DefaultBackend, "SUT backend (memengine, wire)")
		faultFlag   = flag.String("fault", "", "comma-separated faults to inject")
		noPlanner   = flag.Bool("no-planner", false, "disable index access paths")
		noCompile   = flag.Bool("no-compile", false, "disable compiled expression programs (tree-walk evaluation)")
		noHashJoin  = flag.Bool("no-hashjoin", false, "disable hash/index-lookup join strategies (nested-loop joins only)")
		noHashAgg   = flag.Bool("no-hashagg", false, "disable hash aggregation and top-K ordering (materialized grouping + full sorts)")
		storageFlag = flag.String("storage", "", "storage mode: memory (default) or pager (durable page file + WAL)")
	)
	flag.Parse()

	d, err := dialect.Parse(*dialectFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess := sut.Session{Dialect: d, NoPlanner: *noPlanner, NoCompile: *noCompile, NoHashJoin: *noHashJoin, NoHashAgg: *noHashAgg, Storage: *storageFlag}
	if *faultFlag != "" {
		fs := faults.NewSet()
		for _, name := range strings.Split(*faultFlag, ",") {
			f := faults.Fault(strings.TrimSpace(name))
			if _, ok := faults.Lookup(f); !ok {
				fmt.Fprintf(os.Stderr, "unknown fault %q\n", name)
				os.Exit(1)
			}
			fs.Enable(f)
		}
		sess.Faults = fs
	}
	db, err := sut.Open(*backendFlag, sess)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()
	fmt.Printf("dbshell: %s profile on %q backend; end statements with ';', .quit to exit\n",
		d.DisplayName(), *backendFlag)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !meta(db, *backendFlag, trimmed) {
				return
			}
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			run(db, buf.String())
			buf.Reset()
		}
		fmt.Print("> ")
	}
}

func meta(db sut.DB, backend, cmd string) bool {
	intro := db.Introspect()
	switch {
	case cmd == ".quit" || cmd == ".exit":
		return false
	case cmd == ".backend":
		fmt.Printf("%s (registered: %s)\n", backend, strings.Join(sut.Drivers(), ", "))
	case cmd == ".tables":
		for _, t := range intro.Tables() {
			fmt.Println(t)
		}
		for _, v := range intro.Views() {
			fmt.Println(v, "(view)")
		}
	case strings.HasPrefix(cmd, ".schema"):
		name := strings.TrimSpace(strings.TrimPrefix(cmd, ".schema"))
		info, err := intro.Describe(name)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, c := range info.Columns {
			fmt.Printf("  %s %s (affinity %s, collate %s)\n", c.Name, c.TypeName, c.Affinity, c.Collate)
		}
		for _, ix := range intro.Indexes(name) {
			fmt.Printf("  index %s\n", ix)
		}
	case strings.HasPrefix(cmd, ".plan"):
		query := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(cmd, ".plan")), ";")
		paths, err := db.Plan(query)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, p := range paths {
			fmt.Println(" ", p)
		}
	case cmd == ".reset":
		r, ok := db.(sut.Resetter)
		if !ok {
			fmt.Println("error: backend cannot reset in place")
			return true
		}
		if err := r.Reset(); err != nil {
			fmt.Println("error:", err)
			return true
		}
		savedSnapshot = nil
		fmt.Println("database reset to pristine state")
	case cmd == ".snapshot":
		s, ok := db.(snapshotter)
		if !ok {
			fmt.Println("error: backend does not support data snapshots")
			return true
		}
		savedSnapshot = s.Snapshot()
		fmt.Println("data snapshot saved (valid until the next schema change)")
	case cmd == ".restore":
		s, ok := db.(snapshotter)
		if !ok {
			fmt.Println("error: backend does not support data snapshots")
			return true
		}
		if savedSnapshot == nil {
			fmt.Println("error: no snapshot saved (use .snapshot first)")
			return true
		}
		if err := s.RestoreSnapshot(savedSnapshot); err != nil {
			fmt.Println("error:", err)
			return true
		}
		fmt.Println("data restored")
	case cmd == ".storage":
		ps, ok := db.(pagerStats)
		if !ok {
			fmt.Println("storage: memory")
			return true
		}
		st, durable := ps.PagerStats()
		if !durable {
			fmt.Println("storage: memory")
			return true
		}
		fmt.Println("storage: pager (durable page file + WAL)")
		fmt.Printf("  commits=%d wal-frames=%d checkpoints=%d recoveries=%d cache-hits=%d cache-misses=%d\n",
			st.Commits, st.WalFrames, st.Checkpoints, st.Recoveries, st.CacheHits, st.CacheMisses)
	case cmd == ".begin" || cmd == ".commit" || cmd == ".rollback":
		stmt := strings.ToUpper(strings.TrimPrefix(cmd, "."))
		if _, err := db.Exec(stmt); err != nil {
			fmt.Println("error:", err)
			return true
		}
		switch cmd {
		case ".begin":
			fmt.Println("transaction started")
		case ".commit":
			fmt.Println("committed")
		default:
			fmt.Println("rolled back")
		}
	case strings.HasPrefix(cmd, ".oracle"):
		runOracle(db, strings.TrimSpace(strings.TrimPrefix(cmd, ".oracle")))
	case strings.HasPrefix(cmd, ".timer"):
		switch arg := strings.TrimSpace(strings.TrimPrefix(cmd, ".timer")); arg {
		case "on":
			timerOn = true
		case "off":
			timerOn = false
		case "":
			timerOn = !timerOn
		default:
			fmt.Println("usage: .timer [on|off]")
			return true
		}
		fmt.Printf("timer %s\n", map[bool]string{true: "on", false: "off"}[timerOn])
	default:
		fmt.Println("meta commands: .tables, .schema <t>, .plan <select>, .oracle <name>, .begin, .commit, .rollback, .snapshot, .restore, .reset, .storage, .timer [on|off], .backend, .quit")
	}
	return true
}

// snapshotter is the optional backend capability behind .snapshot and
// .restore (memengine implements it over engine data snapshots).
type snapshotter interface {
	Snapshot() *engine.Snapshot
	RestoreSnapshot(*engine.Snapshot) error
}

// pagerStats is the optional backend capability behind .storage: durable
// sessions report the pager's work counters.
type pagerStats interface {
	PagerStats() (pager.Stats, bool)
}

// savedSnapshot is the shell's one snapshot slot.
var savedSnapshot *engine.Snapshot

// oracleChecks is how many checks one .oracle invocation runs: each check
// draws a fresh random predicate, so a single iteration would usually
// prove nothing either way.
const oracleChecks = 25

// runOracle runs one-shot oracle checks against the shell's current
// database and prints the first detection, if any.
func runOracle(db sut.DB, name string) {
	if name == "" {
		fmt.Println("usage: .oracle <name>; registered:", strings.Join(oracle.Names(), ", "))
		return
	}
	o, err := oracle.New(name, oracle.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d := db.Session().Dialect
	env := &oracle.Env{Dialect: d, Rnd: gen.NewRand(d, time.Now().UnixNano())}
	for i := 0; i < oracleChecks; i++ {
		rep, err := o.Check(db, env)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if rep == nil {
			continue
		}
		fmt.Printf("%s DETECTION (%s verdict) after %d checks: %s\n", name, rep.Oracle, i+1, rep.Message)
		for _, sql := range rep.Trace {
			fmt.Printf("  %s;\n", sql)
		}
		if rep.Compare != "" {
			fmt.Printf("  -- compare against: %s;\n", rep.Compare)
		}
		return
	}
	fmt.Printf("%s: ok (%d checks passed)\n", name, oracleChecks)
}

// timerOn makes run print per-statement wall time (.timer toggle).
var timerOn bool

func run(db sut.DB, sql string) {
	// The shell cannot know whether a statement returns rows, so it always
	// uses the query path; on the wire backend DML then reports no
	// affected-row count (database/sql queries cannot carry one).
	start := time.Now()
	res, err := db.Query(sql)
	elapsed := time.Since(start)
	if timerOn {
		// Printed for errors too: bind-time rejection vs per-row failure
		// is exactly the cost difference -no-compile A/B runs look at.
		defer fmt.Printf("Run Time: %s\n", elapsed)
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, "|"))
	}
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Display()
		}
		fmt.Println(strings.Join(parts, "|"))
	}
	if res.RowsAffected > 0 {
		fmt.Printf("(%d rows affected)\n", res.RowsAffected)
	}
}
