// Command dbshell is a minimal interactive shell over the engine
// substrate, for manual exploration of the dialects and the injected bug
// corpus.
//
// Usage:
//
//	dbshell -dialect sqlite [-fault sqlite.partial-index-not-null]
//
// Statements end with ';'. Meta commands: .tables, .schema <t>,
// .plan <select>, .quit. `EXPLAIN [QUERY PLAN] <select>;` also works as a
// statement and reports the planner's chosen access path per FROM source.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/faults"
)

func main() {
	var (
		dialectFlag = flag.String("dialect", "sqlite", "dialect profile")
		faultFlag   = flag.String("fault", "", "comma-separated faults to inject")
	)
	flag.Parse()

	d, err := dialect.Parse(*dialectFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var opts []engine.Option
	if *faultFlag != "" {
		fs := faults.NewSet()
		for _, name := range strings.Split(*faultFlag, ",") {
			f := faults.Fault(strings.TrimSpace(name))
			if _, ok := faults.Lookup(f); !ok {
				fmt.Fprintf(os.Stderr, "unknown fault %q\n", name)
				os.Exit(1)
			}
			fs.Enable(f)
		}
		opts = append(opts, engine.WithFaults(fs))
	}
	e := engine.Open(d, opts...)
	fmt.Printf("dbshell: %s profile; end statements with ';', .quit to exit\n", d.DisplayName())

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("> ")
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ".") {
			if !meta(e, trimmed) {
				return
			}
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			run(e, buf.String())
			buf.Reset()
		}
		fmt.Print("> ")
	}
}

func meta(e *engine.Engine, cmd string) bool {
	switch {
	case cmd == ".quit" || cmd == ".exit":
		return false
	case cmd == ".tables":
		for _, t := range e.Tables() {
			fmt.Println(t)
		}
		for _, v := range e.Views() {
			fmt.Println(v, "(view)")
		}
	case strings.HasPrefix(cmd, ".schema"):
		name := strings.TrimSpace(strings.TrimPrefix(cmd, ".schema"))
		info, err := e.Describe(name)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, c := range info.Columns {
			fmt.Printf("  %s %s (affinity %s, collate %s)\n", c.Name, c.TypeName, c.Affinity, c.Collate)
		}
		for _, ix := range e.Indexes(name) {
			fmt.Printf("  index %s\n", ix)
		}
	case strings.HasPrefix(cmd, ".plan"):
		query := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(cmd, ".plan")), ";")
		paths, err := e.PlanSQL(query)
		if err != nil {
			fmt.Println("error:", err)
			return true
		}
		for _, p := range paths {
			fmt.Println(" ", p.Detail())
		}
	default:
		fmt.Println("meta commands: .tables, .schema <t>, .plan <select>, .quit")
	}
	return true
}

func run(e *engine.Engine, sql string) {
	res, err := e.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, "|"))
	}
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Display()
		}
		fmt.Println(strings.Join(parts, "|"))
	}
	if res.RowsAffected > 0 {
		fmt.Printf("(%d rows affected)\n", res.RowsAffected)
	}
}
