// Command sqlancer-go runs PQS, fuzzer, or differential campaigns against
// the engine substrate, mirroring how SQLancer is driven against a real
// DBMS.
//
// Usage:
//
//	sqlancer-go -dialect sqlite -fault sqlite.partial-index-not-null -max-dbs 500
//	sqlancer-go -dialect sqlite -oracle pqs,tlp,norec -fault sqlite.union-all-dedup
//	sqlancer-go -dialect sqlite -corpus -max-dbs 2000
//	sqlancer-go -dialect mysql -mode fuzz -max-dbs 200
//	sqlancer-go -mode diff -dialect sqlite -right postgres
//	sqlancer-go -backend wire -dialect sqlite -fault sqlite.partial-index-not-null
//	sqlancer-go -storage pager -oracle recovery -fault pager.wal-lost-flush
//	sqlancer-go -oracle serializability -fault engine.lost-update -sessions 3
//	sqlancer-go -list-faults
//
// -corpus sweeps every registered fault of the dialect in one run: all
// campaigns multiplex over one shared work-stealing scheduler pool of
// pooled, resettable engine sessions (-workers sizes the pool), each
// fault routed to the oracle its registry entry expects, with -max-dbs
// as the per-fault budget. Detections report the canonical lowest seed,
// so corpus results are reproducible regardless of the worker count.
//
// -oracle selects the testing oracles of a pqs-mode campaign
// (comma-separated: pqs, tlp, norec) — databases round-robin across them,
// and the reproduction script records which oracle fired. -backend selects
// the SUT driver (memengine drives the engine in process with the ExecAST
// fast path; wire goes through database/sql); -wire-fidelity keeps the
// memengine backend but re-renders and reparses every statement, for
// parser coverage. -no-compile disables compiled expression programs so
// A/B runs can compare the tree-walk evaluator (see DESIGN.md "Compiled
// expression programs" and "Metamorphic oracles"). -no-hashjoin pins
// every join level to the nested loop, ablating hash and index-lookup
// join strategies (see DESIGN.md "Join execution & strategy selection");
// the three sqlite/postgres hash-join faults are unreachable under it.
// -no-hashagg forces materialized grouping and full sorts, ablating the
// streaming hash-aggregation executor and the top-K ORDER BY/LIMIT path
// (see DESIGN.md "Aggregation & ordering execution"); the three hash-agg
// faults are unreachable under it.
//
// -storage pager runs every session on the durable page-file + WAL
// backend instead of in memory. The recovery-equivalence oracle
// (-oracle recovery, or any pager.* fault in a -corpus sweep) requires
// it and enables it automatically; passing it explicitly subjects any
// other campaign to the durable storage path too (see DESIGN.md
// "Durable storage & crash recovery").
//
// -oracle serializability runs interleaved multi-session transaction
// histories against each generated database and checks every one against
// an equivalent serial order (the engine.* isolation faults are visible
// only to it; see DESIGN.md "Transactions & serializability checking").
// -sessions fixes the concurrent-session count per history (default: a
// seed-derived 2 or 3). It requires a multi-session backend (memengine;
// the wire backend pins one session per database).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/diffdb"
	"repro/internal/faults"
	"repro/internal/fuzz"
	"repro/internal/oracle"
	"repro/internal/runner"
	"repro/internal/sut"
	_ "repro/internal/sut/memengine"
	_ "repro/internal/sut/wire"
)

func main() {
	var (
		dialectFlag = flag.String("dialect", "sqlite", "dialect profile: sqlite, mysql, postgres")
		mode        = flag.String("mode", "pqs", "campaign mode: pqs, fuzz, diff")
		faultFlag   = flag.String("fault", "", "injected fault to hunt (empty = soundness run)")
		rightFlag   = flag.String("right", "postgres", "right-hand dialect for -mode diff")
		maxDBs      = flag.Int("max-dbs", 500, "database budget")
		workers     = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 1, "base seed")
		rows        = flag.Int("rows", 8, "max rows per table")
		depth       = flag.Int("depth", 3, "max expression depth")
		queries     = flag.Int("queries", 30, "pivot queries per database")
		doReduce    = flag.Bool("reduce", true, "reduce detected test cases")
		oracleFlag  = flag.String("oracle", "pqs", "comma-separated testing oracles to rotate across databases: pqs, tlp, norec, recovery, serializability")
		sessions    = flag.Int("sessions", 0, "concurrent sessions per serializability history (0 = seed-derived 2 or 3)")
		backend     = flag.String("backend", sut.DefaultBackend, "SUT backend: memengine, wire")
		storageFlag = flag.String("storage", "", "storage mode: memory (default) or pager (durable page file + WAL; required by the recovery oracle)")
		wireFid     = flag.Bool("wire-fidelity", false, "render+reparse each statement instead of the AST fast path")
		noCompile   = flag.Bool("no-compile", false, "disable compiled expression programs (tree-walk evaluation)")
		noHashJoin  = flag.Bool("no-hashjoin", false, "disable hash/index-lookup join strategies (nested-loop joins only)")
		noHashAgg   = flag.Bool("no-hashagg", false, "disable hash aggregation and top-K ordering (materialized grouping + full sorts)")
		corpusFlag  = flag.Bool("corpus", false, "sweep every registered fault of the dialect through one shared scheduler pool (-max-dbs is the per-fault budget)")
		listFaults  = flag.Bool("list-faults", false, "print the fault registry and exit")
	)
	flag.Parse()

	if *listFaults {
		for _, info := range faults.All() {
			fmt.Printf("%-38s %-10s %-9s %-13s %s (%s)\n",
				info.ID, info.Dialect, info.Oracle, info.Class, info.Desc, info.Paper)
		}
		return
	}

	d, err := dialect.Parse(*dialectFlag)
	if err != nil {
		fatal(err)
	}

	if *corpusFlag {
		if *mode != "pqs" {
			fatal(fmt.Errorf("-corpus applies to -mode pqs only"))
		}
		if *faultFlag != "" {
			fatal(fmt.Errorf("-corpus sweeps every fault; drop -fault"))
		}
		if *oracleFlag != "pqs" {
			fatal(fmt.Errorf("-corpus routes each fault to its registry oracle; drop -oracle"))
		}
		runCorpus(d, *maxDBs, *workers, *seed, *doReduce, core.Config{
			MaxRows:      *rows,
			MaxExprDepth: *depth,
			QueriesPerDB: *queries,
			Backend:      *backend,
			WireFidelity: *wireFid,
			NoCompile:    *noCompile,
			NoHashJoin:   *noHashJoin,
			NoHashAgg:    *noHashAgg,
			Storage:      *storageFlag,
			Sessions:     *sessions,
		})
		return
	}

	switch *mode {
	case "pqs":
		runPQS(d, *faultFlag, *backend, *storageFlag, *wireFid, *noCompile, *noHashJoin, *noHashAgg, *maxDBs, *workers, *seed, *rows, *depth, *queries, *sessions, *doReduce, parseOracles(*oracleFlag))
	case "fuzz":
		runFuzz(d, *faultFlag, *backend, *storageFlag, *wireFid, *noCompile, *noHashJoin, *noHashAgg, *maxDBs, *seed, *queries)
	case "diff":
		if *wireFid {
			// The differential baseline is already string-based end to
			// end; there is no AST fast path to opt out of.
			fatal(fmt.Errorf("-wire-fidelity does not apply to -mode diff"))
		}
		if *noCompile {
			// diffdb opens its own sessions and does not plumb engine
			// options; reject rather than silently ignore.
			fatal(fmt.Errorf("-no-compile does not apply to -mode diff"))
		}
		if *storageFlag != "" && *storageFlag != "memory" {
			// Same reason: diffdb sessions are not storage-configurable.
			fatal(fmt.Errorf("-storage does not apply to -mode diff"))
		}
		r, err := dialect.Parse(*rightFlag)
		if err != nil {
			fatal(err)
		}
		runDiff(d, r, *faultFlag, *backend, *maxDBs, *seed)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqlancer-go:", err)
	os.Exit(1)
}

func parseFault(name string) faults.Fault {
	if name == "" {
		return ""
	}
	f := faults.Fault(name)
	if _, ok := faults.Lookup(f); !ok {
		fatal(fmt.Errorf("unknown fault %q (try -list-faults)", name))
	}
	return f
}

// parseOracles splits and validates the -oracle list against the registry.
func parseOracles(list string) []string {
	var out []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := oracle.New(name, oracle.Options{}); err != nil {
			fatal(err)
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		out = []string{"pqs"}
	}
	return out
}

func runPQS(d dialect.Dialect, faultName, backend, storage string, wireFid, noCompile, noHashJoin, noHashAgg bool, maxDBs, workers int, seed int64, rows, depth, queries, sessions int, doReduce bool, oracles []string) {
	res := runner.Run(runner.Campaign{
		Dialect:      d,
		Fault:        parseFault(faultName),
		MaxDatabases: maxDBs,
		Workers:      workers,
		BaseSeed:     seed,
		Reduce:       doReduce,
		Oracles:      oracles,
		Tester: core.Config{
			MaxRows:      rows,
			MaxExprDepth: depth,
			QueriesPerDB: queries,
			Backend:      backend,
			WireFidelity: wireFid,
			NoCompile:    noCompile,
			NoHashJoin:   noHashJoin,
			NoHashAgg:    noHashAgg,
			Storage:      storage,
			Sessions:     sessions,
		},
	})
	fmt.Printf("dialect=%s fault=%s oracles=%s databases=%d statements=%d queries=%d elapsed=%s\n",
		d, faultName, strings.Join(oracles, ","), res.Databases, res.Stats.Statements, res.Stats.Queries, res.Elapsed.Round(1000000))
	if !res.Detected {
		fmt.Println("no bug detected within budget")
		return
	}
	fmt.Printf("BUG found by the %s oracle (%s verdict): %s\n", res.Bug.DetectedBy, res.Bug.Oracle, res.Bug.Message)
	fmt.Printf("reduced test case (%d statements):\n", len(res.Reduced))
	fmt.Printf("  -- oracle: %s (%s)\n", res.Bug.DetectedBy, res.Bug.Oracle)
	for _, sql := range res.Reduced {
		fmt.Printf("  %s;\n", sql)
	}
	if res.Bug.Compare != "" {
		fmt.Printf("  -- compare against: %s;\n", res.Bug.Compare)
	}
}

// runCorpus hunts the dialect's whole fault corpus in one work-stealing
// sweep: one scheduler pool multiplexes every per-fault campaign, each
// routed to its registry oracle.
func runCorpus(d dialect.Dialect, maxDBs, workers int, seed int64, doReduce bool, tcfg core.Config) {
	start := time.Now()
	cs := runner.CorpusCampaigns(d, maxDBs, seed, doReduce)
	for i := range cs {
		cs[i].Tester = tcfg
	}
	s := &runner.Scheduler{Workers: workers}
	results := s.Sweep(context.Background(), cs)
	detected, databases := 0, 0
	for _, r := range results {
		databases += r.Databases
		status := "missed"
		if r.Detected {
			detected++
			status = fmt.Sprintf("detected seed=%d dbs=%d oracle=%s (%s)", r.Seed, r.Databases, r.Bug.DetectedBy, r.Bug.Oracle)
		}
		fmt.Printf("%-40s %s\n", r.Campaign.Fault, status)
	}
	fmt.Printf("corpus: %d/%d faults detected, %d databases in %s (one shared scheduler pool)\n",
		detected, len(results), databases, time.Since(start).Round(time.Millisecond))
}

func runFuzz(d dialect.Dialect, faultName, backend, storage string, wireFid, noCompile, noHashJoin, noHashAgg bool, maxDBs int, seed int64, queries int) {
	var fs *faults.Set
	if f := parseFault(faultName); f != "" {
		fs = faults.NewSet(f)
	}
	for i := 0; i < maxDBs; i++ {
		f := fuzz.New(fuzz.Config{Dialect: d, Seed: seed + int64(i), Faults: fs, QueriesPerDB: queries, Backend: backend, WireFidelity: wireFid, NoCompile: noCompile, NoHashJoin: noHashJoin, NoHashAgg: noHashAgg, Storage: storage})
		bug, err := f.RunDatabase()
		if err != nil {
			fatal(err)
		}
		if bug != nil {
			fmt.Printf("fuzzer detection after %d databases (%s oracle): %s\n", i+1, bug.Oracle, bug.Message)
			for _, sql := range bug.Trace {
				fmt.Printf("  %s;\n", sql)
			}
			return
		}
	}
	fmt.Printf("fuzzer: no detection in %d databases (logic bugs are invisible to fuzzing)\n", maxDBs)
}

func runDiff(left, right dialect.Dialect, faultName, backend string, maxDBs int, seed int64) {
	var fs *faults.Set
	if f := parseFault(faultName); f != "" {
		fs = faults.NewSet(f)
	}
	for i := 0; i < maxDBs; i++ {
		s := diffdb.New(diffdb.Config{
			Pair:    [2]dialect.Dialect{left, right},
			Seed:    seed + int64(i),
			Faults:  fs,
			Backend: backend,
		})
		m, err := s.RunDatabase()
		if err != nil {
			fatal(err)
		}
		if m != nil {
			fmt.Printf("differential mismatch after %d databases on %q\n", i+1, m.Query)
			if m.Err != "" {
				fmt.Println(" ", m.Err)
			} else {
				fmt.Printf("  %s: %s\n  %s: %s\n", left, strings.Join(m.LeftRes, " / "),
					right, strings.Join(m.RightRes, " / "))
			}
			return
		}
	}
	fmt.Printf("differential: no mismatch in %d databases\n", maxDBs)
}
