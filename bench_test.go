// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§4), plus the throughput claim (§3.4), the baseline
// comparison (§4.1/§6), and the ablations called out in DESIGN.md.
//
// Absolute numbers differ from the paper — the system under test is our
// engine substrate with injected ground-truth bugs, not SQLite/MySQL/
// PostgreSQL on the authors' machine — but the *shapes* reproduce: which
// oracle finds most bugs, which dialect yields most, how small reduced
// test cases are, and that fuzzers find no logic bugs.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fuzz"
	"repro/internal/oracle"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sqlparse"
	"repro/internal/storage/pager"
	"repro/internal/sut"
	"repro/internal/sut/memengine"
)

// corpusBudget is the per-fault database budget for campaign benches.
const corpusBudget = 2000

var (
	corpusOnce sync.Once
	corpusData map[dialect.Dialect][]runner.Result
)

// corpus runs one campaign per registered fault (cached across benches).
func corpus() map[dialect.Dialect][]runner.Result {
	corpusOnce.Do(func() {
		corpusData = map[dialect.Dialect][]runner.Result{}
		for _, d := range dialect.All {
			corpusData[d] = runner.RunCorpus(d, corpusBudget, 1, true)
		}
	})
	return corpusData
}

var printOnce sync.Map

// printExperiment prints a block once per process so repeated bench
// iterations don't spam output.
func printExperiment(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(text)
	}
}

// BenchmarkTable1DBMSOverview reproduces Table 1: the systems under test,
// their size, and their provenance — the paper's DBMS column mapped onto
// our dialect engines.
func BenchmarkTable1DBMSOverview(b *testing.B) {
	root := report.RepoRoot()
	substrate := 0
	for _, dir := range []string{"sqlval", "sqlast", "sqlparse", "schema", "storage", "eval", "engine", "xerr", "dialect", "faults"} {
		n, err := report.CountLOC(filepath.Join(root, "internal", dir))
		if err != nil {
			b.Fatal(err)
		}
		substrate += n
	}
	t := &report.Table{
		Title:   "Table 1: systems under test (paper's DBMS -> our dialect profiles)",
		Headers: []string{"DBMS", "Paper LOC", "Paper age (years)", "Our profile", "Shared substrate LOC"},
		Note:    "One engine substrate implements all three dialect profiles; the paper's targets are separate 20-year-old C codebases.",
	}
	t.AddRow("SQLite", "0.3M", 19, "sqlite (dynamic typing, affinity, collations)", substrate)
	t.AddRow("MySQL", "3.8M", 24, "mysql (coercions, unsigned, storage engines)", substrate)
	t.AddRow("PostgreSQL", "1.4M", 23, "postgres (strict typing, inheritance)", substrate)
	printExperiment("table1", t.Render())
	b.ReportMetric(float64(substrate), "substrate-loc")
	for i := 0; i < b.N; i++ {
		_ = substrate
	}
}

// BenchmarkTable2BugReports reproduces Table 2: bugs found per DBMS. In
// the reproduction, ground truth is the fault corpus; "detected" campaigns
// map onto the paper's fixed/verified reports.
func BenchmarkTable2BugReports(b *testing.B) {
	data := corpus()
	t := &report.Table{
		Title:   "Table 2: detected injected bugs per dialect (paper: fixed+verified reports)",
		Headers: []string{"DBMS", "Faults", "Detected", "Missed", "Paper fixed+verified"},
		Note:    "Shape check: SQLite-profile yields the most bugs, PostgreSQL-profile the fewest (paper: 65 / 25 / 9).",
	}
	paper := map[dialect.Dialect]string{
		dialect.SQLite: "65", dialect.MySQL: "25", dialect.Postgres: "9",
	}
	totalDetected := 0
	for _, d := range dialect.All {
		det := 0
		for _, r := range data[d] {
			if r.Detected {
				det++
			}
		}
		totalDetected += det
		t.AddRow(d.DisplayName(), len(data[d]), det, len(data[d])-det, paper[d])
	}
	printExperiment("table2", t.Render())
	b.ReportMetric(float64(totalDetected), "bugs-detected")
	for i := 0; i < b.N; i++ {
		_ = data
	}
}

// BenchmarkTable3Oracles reproduces Table 3: which oracle found each bug —
// extended with the metamorphic oracles (TLP/NoREC) that catch the
// whole-result-set faults PQS's pivot tracking is blind to.
func BenchmarkTable3Oracles(b *testing.B) {
	data := corpus()
	t := &report.Table{
		Title:   "Table 3: detections per oracle (paper: 61 contains / 34 error / 4 segfault)",
		Headers: []string{"DBMS", "Contains", "Error", "SEGFAULT", "TLP", "NoREC"},
		Note:    "Shape check: containment >> error > segfault, as in the paper; TLP/NoREC add the PQS-blind metamorphic faults.",
	}
	sums := map[faults.Oracle]int{}
	for _, d := range dialect.All {
		counts := map[faults.Oracle]int{}
		for _, r := range data[d] {
			if r.Detected {
				counts[r.Bug.Oracle]++
			}
		}
		for o, n := range counts {
			sums[o] += n
		}
		t.AddRow(d.DisplayName(), counts[faults.OracleContainment], counts[faults.OracleError], counts[faults.OracleCrash],
			counts[faults.OracleTLP], counts[faults.OracleNoREC])
	}
	t.AddRow("Sum", sums[faults.OracleContainment], sums[faults.OracleError], sums[faults.OracleCrash],
		sums[faults.OracleTLP], sums[faults.OracleNoREC])
	printExperiment("table3", t.Render())
	b.ReportMetric(float64(sums[faults.OracleContainment]), "contains")
	b.ReportMetric(float64(sums[faults.OracleError]), "error")
	b.ReportMetric(float64(sums[faults.OracleCrash]), "segfault")
	b.ReportMetric(float64(sums[faults.OracleTLP]), "tlp")
	b.ReportMetric(float64(sums[faults.OracleNoREC]), "norec")
	for i := 0; i < b.N; i++ {
		_ = data
	}
}

// BenchmarkTable4SizeCoverage reproduces Table 4: tester size vs tested-
// system size, and how much of the system a testing run covers. Feature
// coverage stands in for gcov line coverage (see DESIGN.md).
func BenchmarkTable4SizeCoverage(b *testing.B) {
	root := report.RepoRoot()
	loc := func(dirs ...string) int {
		total := 0
		for _, dir := range dirs {
			n, err := report.CountLOC(filepath.Join(root, "internal", dir))
			if err != nil {
				b.Fatal(err)
			}
			total += n
		}
		return total
	}
	testerLOC := loc("core", "gen", "interp", "oracle", "reduce", "runner")
	engineLOC := loc("engine", "eval", "storage", "schema", "sqlparse", "sqlast", "sqlval", "xerr")

	// Feature coverage: run PQS briefly per dialect and count distinct
	// engine features exercised; percent is relative to the union.
	features := map[dialect.Dialect]map[string]int{}
	union := map[string]bool{}
	for _, d := range dialect.All {
		merged := map[string]int{}
		for seed := int64(1); seed <= 30; seed++ {
			e := engine.Open(d)
			tester := core.NewTesterWithDB(core.Config{Seed: seed, QueriesPerDB: 10}, memengine.Wrap(e, sut.Session{}))
			if _, err := tester.RunBoundDatabase(); err != nil {
				b.Fatal(err)
			}
			for k, v := range e.Coverage().Snapshot() {
				merged[k] += v
				union[k] = true
			}
		}
		features[d] = merged
	}
	t := &report.Table{
		Title:   "Table 4: tester size vs engine size and feature coverage (paper: 6501/3995/4981 LOC; 43/24/24% line coverage)",
		Headers: []string{"DBMS", "Tester LOC", "Engine LOC", "Ratio", "Features hit", "Coverage"},
		Note:    "Shape check: the tester is a fraction of the engine's size, and a testing run covers well under all of it.",
	}
	for _, d := range dialect.All {
		t.AddRow(d.DisplayName(), testerLOC, engineLOC,
			fmt.Sprintf("%.1f%%", 100*float64(testerLOC)/float64(engineLOC)),
			len(features[d]),
			fmt.Sprintf("%.1f%%", 100*float64(len(features[d]))/float64(len(union))))
	}
	printExperiment("table4", t.Render())
	b.ReportMetric(float64(testerLOC), "tester-loc")
	b.ReportMetric(float64(engineLOC), "engine-loc")
	for i := 0; i < b.N; i++ {
		_ = features
	}
}

// BenchmarkFigure2ReducedLOC reproduces Figure 2: the cumulative
// distribution of reduced test-case lengths (paper: mean 3.71, max 8).
func BenchmarkFigure2ReducedLOC(b *testing.B) {
	data := corpus()
	var lengths []int
	for _, d := range dialect.All {
		for _, r := range data[d] {
			if r.Detected {
				lengths = append(lengths, len(r.Reduced))
			}
		}
	}
	cdf := report.CDF(lengths)
	text := report.RenderCDF("Figure 2: CDF of reduced test-case statement counts", cdf)
	text += fmt.Sprintf("mean=%.2f median=%.1f max=%d (paper: mean 3.71, max 8)\n",
		report.Mean(lengths), report.Median(lengths), report.Max(lengths))
	printExperiment("figure2", text)
	b.ReportMetric(report.Mean(lengths), "mean-loc")
	b.ReportMetric(float64(report.Max(lengths)), "max-loc")
	for i := 0; i < b.N; i++ {
		_ = cdf
	}
}

// BenchmarkFigure3StatementDist reproduces Figure 3: which statement kinds
// appear in reduced test cases, annotated with the triggering oracle.
func BenchmarkFigure3StatementDist(b *testing.B) {
	data := corpus()
	var text string
	for _, d := range dialect.All {
		h := report.NewStatementHistogram()
		for _, r := range data[d] {
			if !r.Detected || len(r.Reduced) == 0 {
				continue
			}
			var kinds []string
			for _, sql := range r.Reduced {
				st, err := sqlparse.ParseOne(sql, d)
				if err != nil {
					continue
				}
				kinds = append(kinds, st.Kind())
			}
			if len(kinds) == 0 {
				continue
			}
			h.AddCase(kinds, kinds[len(kinds)-1], string(r.Bug.Oracle))
		}
		text += h.Render(fmt.Sprintf("Figure 3 (%s): statement kinds in reduced test cases", d.DisplayName()))
		text += "\n"
	}
	printExperiment("figure3", text)
	for i := 0; i < b.N; i++ {
		_ = data
	}
}

// BenchmarkThroughputStatements reproduces the §3.4 throughput claim
// ("SQLancer generates 5,000 to 20,000 statements per second").
func BenchmarkThroughputStatements(b *testing.B) {
	for _, d := range dialect.All {
		b.Run(d.String(), func(b *testing.B) {
			tester := core.NewTester(core.Config{Dialect: d, Seed: 1, QueriesPerDB: 20})
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := tester.RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(tester.Stats().Statements)/elapsed, "stmts/s")
			}
		})
	}
}

// BenchmarkCampaignThroughput compares the sut.DB execution modes in the
// campaign hot loop: the ExecAST fast path (generated ASTs run directly,
// traces rendered only on detection) against wire-fidelity mode (every
// statement rendered and reparsed, the pre-boundary behaviour). Both
// report databases/sec so the trajectory stays visible across PRs; the
// fast path is expected to stay ≥1.5× ahead.
func BenchmarkCampaignThroughput(b *testing.B) {
	for _, mode := range []struct {
		name string
		wire bool
	}{
		{"FastPath", false},
		{"WireFidelity", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for _, d := range dialect.All {
				b.Run(d.String(), func(b *testing.B) {
					tester := core.NewTester(core.Config{
						Dialect:      d,
						Seed:         1,
						QueriesPerDB: 20,
						WireFidelity: mode.wire,
					})
					b.ResetTimer()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						if _, err := tester.RunDatabase(); err != nil {
							b.Fatal(err)
						}
					}
					elapsed := time.Since(start).Seconds()
					if elapsed > 0 {
						b.ReportMetric(float64(b.N)/elapsed, "dbs/s")
						b.ReportMetric(float64(tester.Stats().Statements)/elapsed, "stmts/s")
					}
				})
			}
		})
	}
}

// BenchmarkOracleThroughput compares the testing oracles' campaign cost:
// the same database-generation phase under PQS's pivot loop, TLP's
// partition/aggregate checks, and NoREC's query pairs, per dialect. Both
// dbs/s and stmts/s are reported so the metamorphic oracles' extra query
// volume stays visible next to BenchmarkCampaignThroughput in the CI
// -benchtime=1x smoke.
func BenchmarkOracleThroughput(b *testing.B) {
	for _, name := range []string{"pqs", "tlp", "norec"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for _, d := range dialect.All {
				d := d
				b.Run(d.String(), func(b *testing.B) {
					tester := core.NewTester(core.Config{
						Dialect:      d,
						Oracle:       name,
						Seed:         1,
						QueriesPerDB: 20,
					})
					b.ResetTimer()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						if _, err := tester.RunDatabase(); err != nil {
							b.Fatal(err)
						}
					}
					elapsed := time.Since(start).Seconds()
					if elapsed > 0 {
						b.ReportMetric(float64(b.N)/elapsed, "dbs/s")
						b.ReportMetric(float64(tester.Stats().Statements)/elapsed, "stmts/s")
					}
				})
			}
		})
	}
}

// BenchmarkBaselineComparison reproduces the paper's baseline argument:
// fuzzers cannot find logic bugs; PQS finds them. Each approach gets the
// same database budget on the logic-bug subset of the corpus.
func BenchmarkBaselineComparison(b *testing.B) {
	const budget = 400
	pqsLogic, fuzzLogic := 0, 0
	pqsOther, fuzzOther := 0, 0
	logicTotal, otherTotal := 0, 0
	for _, info := range faults.All() {
		if info.Logic {
			logicTotal++
		} else {
			otherTotal++
		}
		// PQS family (each fault under the oracle its registry entry
		// routes to — pqs, tlp, or norec).
		res := runner.Run(runner.Campaign{
			Dialect: info.Dialect, Fault: info.ID, MaxDatabases: budget, BaseSeed: 1,
			Oracles: []string{oracle.ForFault(info)},
		})
		if res.Detected {
			if info.Logic {
				pqsLogic++
			} else {
				pqsOther++
			}
		}
		// Fuzzer (same budget, same seeds)
		fz := func() bool {
			for seed := int64(1); seed <= budget; seed++ {
				f := fuzz.New(fuzz.Config{Dialect: info.Dialect, Seed: seed, Faults: faults.NewSet(info.ID)})
				bug, err := f.RunDatabase()
				if err != nil {
					b.Fatal(err)
				}
				if bug != nil {
					return true
				}
			}
			return false
		}()
		if fz {
			if info.Logic {
				fuzzLogic++
			} else {
				fuzzOther++
			}
		}
	}
	t := &report.Table{
		Title:   "Baseline comparison: PQS vs SQLsmith-style fuzzing (same budget)",
		Headers: []string{"Approach", "Logic bugs found", "Error/crash bugs found"},
		Note: fmt.Sprintf("Corpus: %d logic + %d error/crash faults. The fuzzer finds no logic bugs (§6: \"SQLsmith ... cannot find logic bugs found by our approach\").",
			logicTotal, otherTotal),
	}
	t.AddRow("PQS+TLP+NoREC (this work)", fmt.Sprintf("%d/%d", pqsLogic, logicTotal), fmt.Sprintf("%d/%d", pqsOther, otherTotal))
	t.AddRow("Fuzzer baseline", fmt.Sprintf("%d/%d", fuzzLogic, logicTotal), fmt.Sprintf("%d/%d", fuzzOther, otherTotal))
	printExperiment("baseline", t.Render())
	b.ReportMetric(float64(pqsLogic), "pqs-logic")
	b.ReportMetric(float64(fuzzLogic), "fuzz-logic")
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblationSharedEvaluator (DESIGN.md ablation 1): using the
// engine's own evaluator as the oracle blinds PQS to evaluator-level logic
// bugs — the reason internal/interp exists.
func BenchmarkAblationSharedEvaluator(b *testing.B) {
	const budget = 300
	evalFaults := []faults.Fault{
		faults.DoubleNegation, faults.TextIntSubtract, faults.AffinityCompare,
		faults.TextDoubleBool, faults.UnsignedCompare,
	}
	independent, shared := 0, 0
	for _, f := range evalFaults {
		info, _ := faults.Lookup(f)
		if runner.Run(runner.Campaign{
			Dialect: info.Dialect, Fault: f, MaxDatabases: budget, BaseSeed: 1,
		}).Detected {
			independent++
		}
		if runner.Run(runner.Campaign{
			Dialect: info.Dialect, Fault: f, MaxDatabases: budget, BaseSeed: 1,
			Tester: core.Config{UseEngineAsOracle: true},
		}).Detected {
			shared++
		}
	}
	t := &report.Table{
		Title:   "Ablation 1: independent oracle interpreter vs sharing the engine's evaluator",
		Headers: []string{"Oracle", "Evaluator-level logic bugs found"},
		Note:    "A shared evaluator computes the same wrong answer as the engine, so the containment check passes.",
	}
	t.AddRow("Independent interpreter (PQS)", fmt.Sprintf("%d/%d", independent, len(evalFaults)))
	t.AddRow("Engine's own evaluator", fmt.Sprintf("%d/%d", shared, len(evalFaults)))
	printExperiment("ablation1", t.Render())
	b.ReportMetric(float64(independent), "independent")
	b.ReportMetric(float64(shared), "shared")
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblationRejectionSampling (ablation 2): rectification vs
// discarding non-TRUE expressions. Rejection sampling wastes generated
// expressions and skews the operator mix.
func BenchmarkAblationRejectionSampling(b *testing.B) {
	measure := func(disable bool) (discarded, queries int) {
		tester := core.NewTester(core.Config{
			Dialect: dialect.SQLite, Seed: 5, QueriesPerDB: 30,
			DisableRectification: disable,
		})
		for i := 0; i < 30; i++ {
			if _, err := tester.RunDatabase(); err != nil {
				b.Fatal(err)
			}
		}
		return tester.Stats().Discarded, tester.Stats().Queries
	}
	rd, rq := measure(false)
	dd, dq := measure(true)
	t := &report.Table{
		Title:   "Ablation 2: rectification (Algorithm 3) vs rejection sampling",
		Headers: []string{"Strategy", "Queries issued", "Expressions discarded"},
		Note:    "Rectification uses every generated expression; rejection sampling throws away FALSE/NULL ones (~2/3).",
	}
	t.AddRow("Rectification", rq, rd)
	t.AddRow("Rejection sampling", dq, dd)
	printExperiment("ablation2", t.Render())
	b.ReportMetric(float64(rd), "rect-discarded")
	b.ReportMetric(float64(dd), "reject-discarded")
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblationRowCount (ablation 3): the paper keeps tables at 10-30
// rows to avoid join blowup; this sweep shows the throughput cliff.
func BenchmarkAblationRowCount(b *testing.B) {
	for _, rows := range []int{2, 8, 30, 100} {
		rows := rows
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			tester := core.NewTester(core.Config{
				Dialect: dialect.SQLite, Seed: 3, QueriesPerDB: 10,
				MinRows: rows, MaxRows: rows,
			})
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
			if el := time.Since(start).Seconds(); el > 0 {
				b.ReportMetric(float64(tester.Stats().Statements)/el, "stmts/s")
			}
		})
	}
}

// BenchmarkAblationExprDepth (ablation 4): deeper expressions exercise more
// operator combinations but cost throughput.
func BenchmarkAblationExprDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 5} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			tester := core.NewTester(core.Config{
				Dialect: dialect.SQLite, Seed: 3, QueriesPerDB: 20, MaxExprDepth: depth,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContainmentForm (ablation 5): client-side containment
// check vs the paper's INTERSECT query form (§3.2 combines steps 6 and 7).
// Both must detect; the INTERSECT form pays an extra result-set pass in
// the engine.
func BenchmarkAblationContainmentForm(b *testing.B) {
	const budget = 400
	probe := []faults.Fault{faults.PartialIndexNotNull, faults.DoubleNegation, faults.InsertVisibility}
	clientSide, intersectForm := 0, 0
	for _, f := range probe {
		info, _ := faults.Lookup(f)
		if runner.Run(runner.Campaign{
			Dialect: info.Dialect, Fault: f, MaxDatabases: budget, BaseSeed: 1,
		}).Detected {
			clientSide++
		}
		if runner.Run(runner.Campaign{
			Dialect: info.Dialect, Fault: f, MaxDatabases: budget, BaseSeed: 1,
			Tester: core.Config{ContainmentViaQuery: true},
		}).Detected {
			intersectForm++
		}
	}
	t := &report.Table{
		Title:   "Ablation 5: containment check form (client-side vs INTERSECT query)",
		Headers: []string{"Form", "Probe faults detected"},
		Note:    "The paper uses the INTERSECT form; both are sound and detect the same bugs.",
	}
	t.AddRow("Client-side row search", fmt.Sprintf("%d/%d", clientSide, len(probe)))
	t.AddRow("INTERSECT query (paper)", fmt.Sprintf("%d/%d", intersectForm, len(probe)))
	printExperiment("ablation5", t.Render())
	b.ReportMetric(float64(clientSide), "client")
	b.ReportMetric(float64(intersectForm), "intersect")
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkExtensionNegativeContainment measures the §7 future-work
// extension: FALSE-rectified conditions catch row-adding bugs ordinary
// containment cannot (the pivot is never "missing" when extra rows appear).
func BenchmarkExtensionNegativeContainment(b *testing.B) {
	const budget = 500
	f := faults.IsNotNullOpt
	info, _ := faults.Lookup(f)
	plain := runner.Run(runner.Campaign{
		Dialect: info.Dialect, Fault: f, MaxDatabases: budget, BaseSeed: 1,
	})
	negative := runner.Run(runner.Campaign{
		Dialect: info.Dialect, Fault: f, MaxDatabases: budget, BaseSeed: 1,
		Tester: core.Config{NegativeChecks: true},
	})
	t := &report.Table{
		Title:   "Extension (§7): negative containment checks",
		Headers: []string{"Mode", "Detected", "Databases to detection"},
		Note:    "Target: sqlite.is-not-null-opt (rewrites NOT(x IS NULL) to TRUE, adding rows).",
	}
	row := func(name string, r runner.Result) {
		if r.Detected {
			t.AddRow(name, "yes", r.Databases)
		} else {
			t.AddRow(name, "no", fmt.Sprintf(">%d", budget))
		}
	}
	row("Containment only", plain)
	row("With negative checks", negative)
	printExperiment("extension-negative", t.Render())
	for i := 0; i < b.N; i++ {
	}
}

// plannerBench builds one 10k-row indexed table on two engines: one with
// the cost-based planner, one forced to full scans (the differential
// baseline). Used by the access-path benchmarks below.
func plannerBench(b *testing.B, d dialect.Dialect) (planned, baseline *engine.Engine) {
	b.Helper()
	planned = engine.Open(d)
	baseline = engine.Open(d, engine.WithoutPlanner())
	const rows = 10000
	stmts := []string{
		"CREATE TABLE t0(c0 INT, c1 TEXT)",
		"CREATE INDEX i0 ON t0(c0)",
	}
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if sb.Len() > 0 {
				stmts = append(stmts, sb.String())
			}
			sb.Reset()
			sb.WriteString("INSERT INTO t0 VALUES ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
	}
	stmts = append(stmts, sb.String())
	for _, e := range []*engine.Engine{planned, baseline} {
		for _, s := range stmts {
			if _, err := e.Exec(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	return planned, baseline
}

// BenchmarkPointLookup measures the planner's headline win: an equality
// lookup on a 10k-row indexed table via the index-eq access path vs the
// forced full scan. The speedup metric is the acceptance criterion for the
// access-path planner (target: >= 5x).
func BenchmarkPointLookup(b *testing.B) {
	planned, baseline := plannerBench(b, dialect.SQLite)
	sel, err := sqlparse.ParseOne("SELECT c1 FROM t0 WHERE c0 = 6917", dialect.SQLite)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e *engine.Engine) {
		for i := 0; i < b.N; i++ {
			res, err := e.ExecStmt(sel)
			if err != nil || len(res.Rows) != 1 {
				b.Fatalf("rows=%d err=%v", len(res.Rows), err)
			}
		}
	}
	b.Run("index-scan", func(b *testing.B) { run(b, planned) })
	b.Run("full-scan", func(b *testing.B) { run(b, baseline) })
	// Self-measured speedup metric, computed once per process (manual
	// timing: testing.Benchmark may not be nested under b.Run, and the
	// parent body re-runs as b.N grows).
	speedupOnce.Do(func() {
		measure := func(e *engine.Engine, iters int) time.Duration {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := e.ExecStmt(sel); err != nil {
					b.Fatal(err)
				}
			}
			return time.Since(start) / time.Duration(iters)
		}
		idx := measure(planned, 2000)
		full := measure(baseline, 100)
		speedupVal = float64(full) / float64(idx)
		printExperiment("point-lookup", fmt.Sprintf(
			"Planner point lookup (10k rows): index %v/op vs full scan %v/op -> %.0fx speedup\n",
			idx, full, speedupVal))
	})
	b.ReportMetric(speedupVal, "x-speedup")
	for i := 0; i < b.N; i++ {
	}
}

var (
	speedupOnce sync.Once
	speedupVal  float64
)

// BenchmarkRangeScan measures a selective index range scan (100 of 10k
// rows) against the forced full scan.
func BenchmarkRangeScan(b *testing.B) {
	planned, baseline := plannerBench(b, dialect.SQLite)
	sel, err := sqlparse.ParseOne("SELECT c0 FROM t0 WHERE c0 >= 4000 AND c0 < 4100", dialect.SQLite)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e *engine.Engine) {
		for i := 0; i < b.N; i++ {
			res, err := e.ExecStmt(sel)
			if err != nil || len(res.Rows) != 100 {
				b.Fatalf("rows=%d err=%v", len(res.Rows), err)
			}
		}
	}
	b.Run("index-scan", func(b *testing.B) { run(b, planned) })
	b.Run("full-scan", func(b *testing.B) { run(b, baseline) })
}

// BenchmarkPlannerOverhead measures what access-path selection costs when
// it cannot help: a non-sargable WHERE on the indexed table, planner on
// vs off.
func BenchmarkPlannerOverhead(b *testing.B) {
	planned, baseline := plannerBench(b, dialect.SQLite)
	sel, err := sqlparse.ParseOne("SELECT c0 FROM t0 WHERE c0 % 7000 = 1", dialect.SQLite)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e *engine.Engine) {
		for i := 0; i < b.N; i++ {
			if _, err := e.ExecStmt(sel); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("planner-on", func(b *testing.B) { run(b, planned) })
	b.Run("planner-off", func(b *testing.B) { run(b, baseline) })
}

// rowFilterShape is one BenchmarkRowFilter workload: a setup script and a
// query whose WHERE/ON clauses dominate execution.
type rowFilterShape struct {
	name  string
	setup []string
	query string
	rows  int // expected result size, asserted by measureRowFilter
}

// rowFilterShapes builds the two acceptance shapes for compiled expression
// programs: a wide single-table scan and a 3-way join. Neither table is
// indexed, so the planner cannot shortcut the filter — every row runs the
// predicate.
func rowFilterShapes() []rowFilterShape {
	const scanRows = 4000
	var scanSetup []string
	scanSetup = append(scanSetup, "CREATE TABLE t0(c0 INT, c1 TEXT, c2 REAL, c3 INT, c4 TEXT COLLATE NOCASE, c5 INT)")
	var sb strings.Builder
	for i := 0; i < scanRows; i++ {
		if i%500 == 0 {
			if sb.Len() > 0 {
				scanSetup = append(scanSetup, sb.String())
			}
			sb.Reset()
			sb.WriteString("INSERT INTO t0 VALUES ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'v%d', %d.5, %d, 'K%d', %d)", i, i, i%97, i%13, i%7, i%29)
	}
	scanSetup = append(scanSetup, sb.String())

	joinSetup := []string{
		"CREATE TABLE a(c0 INT, c1 TEXT)",
		"CREATE TABLE b(c0 INT, c1 INT)",
		"CREATE TABLE c(c0 INT, c1 INT)",
	}
	for _, spec := range []struct {
		table string
		text  bool
	}{{"a", true}, {"b", false}, {"c", false}} {
		var ins strings.Builder
		fmt.Fprintf(&ins, "INSERT INTO %s VALUES ", spec.table)
		for i := 0; i < 25; i++ {
			if i > 0 {
				ins.WriteString(", ")
			}
			if spec.text {
				fmt.Fprintf(&ins, "(%d, 'n%d')", i, i%5)
			} else {
				fmt.Fprintf(&ins, "(%d, %d)", i, i%5)
			}
		}
		joinSetup = append(joinSetup, ins.String())
	}

	return []rowFilterShape{
		{
			name:  "wide-scan",
			setup: scanSetup,
			query: "SELECT c0, c1 FROM t0 WHERE (c0 % 7 = 1 AND c2 > 40.0) OR (c4 = 'k3' AND c3 + c5 < 20) OR c1 LIKE 'v39%'",
			rows:  705,
		},
		{
			name:  "join-3way",
			setup: joinSetup,
			query: "SELECT a.c0, c.c1 FROM a JOIN b ON a.c0 = b.c0 AND b.c1 < 4 JOIN c ON b.c1 = c.c1 WHERE a.c1 <> 'n0' AND a.c0 + c.c0 > 3",
			rows:  74,
		},
	}
}

var (
	rowFilterOnce   sync.Once
	rowFilterRatios map[string]float64
)

// measureRowFilter computes the compiled-vs-interpreted time ratio per
// shape once per process (manual timing so the -benchtime=1x CI smoke
// still exercises it meaningfully).
func measureRowFilter(b *testing.B) map[string]float64 {
	rowFilterOnce.Do(func() {
		rowFilterRatios = map[string]float64{}
		for _, shape := range rowFilterShapes() {
			compiled := engine.Open(dialect.SQLite)
			interp := engine.Open(dialect.SQLite, engine.WithoutCompiledEval())
			for _, e := range []*engine.Engine{compiled, interp} {
				for _, s := range shape.setup {
					if _, err := e.Exec(s); err != nil {
						b.Fatal(err)
					}
				}
			}
			sel, err := sqlparse.ParseOne(shape.query, dialect.SQLite)
			if err != nil {
				b.Fatal(err)
			}
			measure := func(e *engine.Engine, iters int) time.Duration {
				// Warm once (compiles and caches the programs) and check
				// the workload hasn't degenerated: a predicate selecting
				// the wrong row count would make the ratio meaningless.
				res, err := e.ExecStmt(sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != shape.rows {
					b.Fatalf("%s: %d result rows, want %d — shape drifted", shape.name, len(res.Rows), shape.rows)
				}
				start := time.Now()
				for i := 0; i < iters; i++ {
					if _, err := e.ExecStmt(sel); err != nil {
						b.Fatal(err)
					}
				}
				return time.Since(start) / time.Duration(iters)
			}
			ct := measure(compiled, 60)
			it := measure(interp, 60)
			rowFilterRatios[shape.name] = float64(it) / float64(ct)
			printExperiment("row-filter-"+shape.name, fmt.Sprintf(
				"Row filter (%s): compiled %v/op vs tree-walk %v/op -> %.1fx\n",
				shape.name, ct, it, rowFilterRatios[shape.name]))
		}
	})
	return rowFilterRatios
}

// BenchmarkRowFilter measures the compiled-expression tentpole: the same
// predicate-heavy queries through compiled programs vs the tree-walk
// interpreter, on a wide scan and a 3-way join. The self-measured ratio is
// a CI tripwire: the acceptance target is >= 2x, and the benchmark fails
// below a conservative 1.5x so a regression that erases the win cannot
// land silently (the -benchtime=1x smoke runs this on every push).
func BenchmarkRowFilter(b *testing.B) {
	for _, shape := range rowFilterShapes() {
		shape := shape
		for _, mode := range []struct {
			name string
			opts []engine.Option
		}{
			{"compiled", nil},
			{"tree-walk", []engine.Option{engine.WithoutCompiledEval()}},
		} {
			b.Run(shape.name+"/"+mode.name, func(b *testing.B) {
				e := engine.Open(dialect.SQLite, mode.opts...)
				for _, s := range shape.setup {
					if _, err := e.Exec(s); err != nil {
						b.Fatal(err)
					}
				}
				sel, err := sqlparse.ParseOne(shape.query, dialect.SQLite)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.ExecStmt(sel); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// The tripwire proper (printExperiment has already shown the ratios;
	// a parent benchmark that calls b.Run reports no metrics of its own).
	for name, r := range measureRowFilter(b) {
		if r < 1.5 {
			b.Errorf("compiled row filter only %.2fx tree-walk on %s (tripwire 1.5x, target 2x)", r, name)
		}
	}
}

var (
	schedOnce       sync.Once
	schedRatios     map[string]float64 // dialect -> scheduler/baseline dbs/s
	lifecycleOnce   sync.Once
	lifecycleRatios map[string]float64 // dialect -> lifecycle/newtester dbs/s
)

// measureSchedulerThroughput computes, per dialect, the dbs/s of a
// multi-campaign work-stealing sweep (shared pool, pooled lifecycles)
// against the per-database NewTester baseline the runner used before the
// scheduler existed: one goroutine, a fresh Tester and engine for every
// database. Same workload as BenchmarkCampaignThroughput (QueriesPerDB
// 20, soundness).
func measureSchedulerThroughput(b *testing.B) map[string]float64 {
	schedOnce.Do(func() {
		schedRatios = map[string]float64{}
		const perCampaign, campaigns = 100, 6
		for _, d := range dialect.All {
			total := perCampaign * campaigns

			start := time.Now()
			for i := 0; i < total; i++ {
				tester := core.NewTester(core.Config{Dialect: d, Seed: int64(i + 1), QueriesPerDB: 20})
				if _, err := tester.RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
			baseline := float64(total) / time.Since(start).Seconds()

			var cs []runner.Campaign
			for i := 0; i < campaigns; i++ {
				cs = append(cs, runner.Campaign{
					Dialect:      d,
					MaxDatabases: perCampaign,
					BaseSeed:     int64(1 + i*perCampaign),
					Tester:       core.Config{QueriesPerDB: 20},
				})
			}
			start = time.Now()
			s := &runner.Scheduler{}
			for _, r := range s.Sweep(context.Background(), cs) {
				if r.Detected {
					b.Fatalf("%s: soundness sweep false positive: %s", d, r.Bug.Message)
				}
			}
			sched := float64(total) / time.Since(start).Seconds()

			schedRatios[d.String()] = sched / baseline
			printExperiment("sched-"+d.String(), fmt.Sprintf(
				"Scheduler throughput (%s): %.0f dbs/s over one shared pool vs %.0f dbs/s per-database NewTester -> %.1fx\n",
				d, sched, baseline, sched/baseline))
		}
	})
	return schedRatios
}

// BenchmarkSchedulerThroughput is the campaign-scheduler tentpole's
// acceptance benchmark: many campaigns multiplexed over one shared
// work-stealing pool of resettable engine lifecycles must clear >= 1.5x
// the dbs/s of the per-database NewTester baseline on at least one
// dialect. The CI -benchtime=1x smoke runs this as a tripwire (skipped on
// boxes without enough cores for parallel speedup to be meaningful).
func BenchmarkSchedulerThroughput(b *testing.B) {
	ratios := measureSchedulerThroughput(b)
	best := 0.0
	for d, r := range ratios {
		b.ReportMetric(r, "x-"+d)
		if r > best {
			best = r
		}
	}
	if runtime.NumCPU() >= 4 && best < 1.5 {
		b.Errorf("scheduler sweep only %.2fx the NewTester baseline on the best dialect (tripwire 1.5x)", best)
	}
	for i := 0; i < b.N; i++ {
	}
}

// measureLifecycleReuse isolates the lifecycle-reuse half of the win from
// parallelism: the identical single-threaded seed sequence through one
// pooled Lifecycle (engine Reset + RNG reseed per database) vs a fresh
// NewTester per database.
func measureLifecycleReuse(b *testing.B) map[string]float64 {
	lifecycleOnce.Do(func() {
		lifecycleRatios = map[string]float64{}
		const dbs = 400
		for _, d := range dialect.All {
			cfg := core.Config{Dialect: d, QueriesPerDB: 20}

			start := time.Now()
			for i := 0; i < dbs; i++ {
				c := cfg
				c.Seed = int64(i + 1)
				if _, err := core.NewTester(c).RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
			fresh := float64(dbs) / time.Since(start).Seconds()

			lc := core.NewLifecycle(cfg)
			start = time.Now()
			for i := 0; i < dbs; i++ {
				if _, err := lc.RunSeed(int64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
			reused := float64(dbs) / time.Since(start).Seconds()
			lc.Close()

			lifecycleRatios[d.String()] = reused / fresh
			printExperiment("lifecycle-"+d.String(), fmt.Sprintf(
				"Lifecycle reuse (%s): %.0f dbs/s pooled+reset vs %.0f dbs/s NewTester per database -> %.2fx\n",
				d, reused, fresh, reused/fresh))
		}
	})
	return lifecycleRatios
}

// BenchmarkLifecycleReuse tracks the single-threaded reuse win (engine
// Reset, recycled storage containers, reseeded RNG vs full
// reconstruction). The tripwire only guards against reuse becoming a
// regression — the 1.5x acceptance gate lives on the scheduler benchmark,
// where pooling and work stealing compound.
func BenchmarkLifecycleReuse(b *testing.B) {
	ratios := measureLifecycleReuse(b)
	for d, r := range ratios {
		b.ReportMetric(r, "x-"+d)
		if r < 0.95 {
			b.Errorf("lifecycle reuse is a regression on %s: %.2fx the NewTester baseline", d, r)
		}
	}
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkAblationQueriesPerDB (ablation 6): how long to keep one database
// before regenerating (Figure 1's "continue with 1 or 2").
func BenchmarkAblationQueriesPerDB(b *testing.B) {
	for _, q := range []int{1, 10, 30, 100} {
		q := q
		b.Run(fmt.Sprintf("queries=%d", q), func(b *testing.B) {
			tester := core.NewTester(core.Config{Dialect: dialect.SQLite, Seed: 3, QueriesPerDB: q})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tester.RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(q), "queries/db")
		})
	}
}

// BenchmarkPagerThroughput compares campaign throughput on the default
// in-memory storage against the durable pager backend, whose every
// statement pays image serialization, WAL append, and fsync. The gap is
// the price of crash-recovery testing; the CI -benchtime=1x smoke keeps
// it visible across PRs.
func BenchmarkPagerThroughput(b *testing.B) {
	for _, storage := range []string{"memory", "pager"} {
		storage := storage
		b.Run(storage, func(b *testing.B) {
			for _, d := range dialect.All {
				d := d
				b.Run(d.String(), func(b *testing.B) {
					b.Setenv("TMPDIR", b.TempDir())
					tester := core.NewTester(core.Config{
						Dialect:      d,
						Seed:         1,
						QueriesPerDB: 20,
						Storage:      storage,
					})
					b.ResetTimer()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						if _, err := tester.RunDatabase(); err != nil {
							b.Fatal(err)
						}
					}
					elapsed := time.Since(start).Seconds()
					if elapsed > 0 {
						b.ReportMetric(float64(b.N)/elapsed, "dbs/s")
						b.ReportMetric(float64(tester.Stats().Statements)/elapsed, "stmts/s")
					}
				})
			}
		})
	}
}

// BenchmarkWALRecovery measures crash recovery: opening a pager whose
// WAL holds many uncheckpointed committed transactions, replaying them,
// and loading the restored image. The WAL is seeded once; each iteration
// abandons its pager with a simulated power cut (which closes the files
// without the checkpoint a clean Close would run), so every Open replays
// the identical WAL.
func BenchmarkWALRecovery(b *testing.B) {
	const commits = 32
	dir := b.TempDir()
	seed, err := pager.Open(pager.OS(), dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	seed.CheckpointBytes = 1 << 30 // keep every commit in the WAL
	img := make([]byte, 16*pager.PagePayload)
	for i := 0; i < commits; i++ {
		for j := range img {
			img[j] = byte(i + j)
		}
		if err := seed.Commit(img); err != nil {
			b.Fatal(err)
		}
	}
	seed.Crash(pager.CrashPlan{Point: pager.AfterSync, Mode: pager.LostTail})

	b.SetBytes(int64(commits * len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := pager.Open(pager.OS(), dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if got := p.Stats().Recoveries; got != commits {
			b.Fatalf("replayed %d commits, want %d", got, commits)
		}
		if _, err := p.Load(); err != nil {
			b.Fatal(err)
		}
		p.Crash(pager.CrashPlan{Point: pager.AfterSync, Mode: pager.LostTail})
	}
	b.ReportMetric(float64(commits), "commits/recovery")
}

// BenchmarkTxnThroughput measures the transaction layer's commit cycle:
// BEGIN, one insert, COMMIT on a dedicated session, per dialect. The gap
// against plain autocommit inserts (the second sub-bench) is the price of
// snapshot staging plus commit validation and merge — kept visible across
// PRs by the CI -benchtime=1x smoke.
func BenchmarkTxnThroughput(b *testing.B) {
	for _, mode := range []string{"txn", "autocommit"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for _, d := range dialect.All {
				d := d
				b.Run(d.String(), func(b *testing.B) {
					e := engine.Open(d)
					if _, err := e.Exec("CREATE TABLE t0(c0 INT, c1 TEXT)"); err != nil {
						b.Fatal(err)
					}
					c := e.NewConn()
					ins, err := sqlparse.ParseOne("INSERT INTO t0 VALUES (1, 'x')", d)
					if err != nil {
						b.Fatal(err)
					}
					begin, _ := sqlparse.ParseOne("BEGIN", d)
					commit, _ := sqlparse.ParseOne("COMMIT", d)
					b.ResetTimer()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						if mode == "txn" {
							if _, err := c.ExecStmt(begin); err != nil {
								b.Fatal(err)
							}
						}
						if _, err := c.ExecStmt(ins); err != nil {
							b.Fatal(err)
						}
						if mode == "txn" {
							if _, err := c.ExecStmt(commit); err != nil {
								b.Fatal(err)
							}
						}
					}
					if el := time.Since(start).Seconds(); el > 0 {
						b.ReportMetric(float64(b.N)/el, "commits/s")
					}
				})
			}
		})
	}
}

// BenchmarkInterleavedCampaign measures the serializability oracle's
// campaign cost next to the single-session oracles in
// BenchmarkOracleThroughput: the same database-generation phase, then
// interleaved multi-session histories with the serial-order search and
// snapshot restore per check.
func BenchmarkInterleavedCampaign(b *testing.B) {
	for _, d := range dialect.All {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			tester := core.NewTester(core.Config{
				Dialect:      d,
				Oracle:       "serializability",
				Seed:         1,
				QueriesPerDB: 20,
			})
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := tester.RunDatabase(); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "dbs/s")
				b.ReportMetric(float64(tester.Stats().Statements)/elapsed, "stmts/s")
			}
		})
	}
}

var (
	hashJoinOnce    sync.Once
	hashJoinSpeedup float64
)

// hashJoinBenchEngines builds the 1k x 1k equi-join workload on two
// engines: join-strategy selection enabled and the -no-hashjoin nested
// baseline. Every key matches exactly once, so the join yields 1000 rows
// from a million-pair cross space — the shape where hashing pays most.
func hashJoinBenchEngines(b *testing.B) (hashed, nested *engine.Engine) {
	hashed = engine.Open(dialect.SQLite)
	nested = engine.Open(dialect.SQLite, engine.WithoutHashJoin())
	const rows = 1000
	var stmts []string
	for _, tbl := range []string{"jb0", "jb1"} {
		stmts = append(stmts, fmt.Sprintf("CREATE TABLE %s(k INT, v TEXT)", tbl))
		var sb strings.Builder
		for i := 0; i < rows; i++ {
			if i%200 == 0 {
				if sb.Len() > 0 {
					stmts = append(stmts, sb.String())
				}
				sb.Reset()
				fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", tbl)
			} else {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'v%d')", i, i)
		}
		stmts = append(stmts, sb.String())
	}
	for _, e := range []*engine.Engine{hashed, nested} {
		for _, s := range stmts {
			if _, err := e.Exec(s); err != nil {
				b.Fatal(err)
			}
		}
	}
	return hashed, nested
}

// BenchmarkHashJoin measures the join-strategy tentpole: a 1000x1000
// equi-join through the hash join vs the forced nested loop. The
// self-measured speedup is a CI tripwire: the acceptance target is >= 5x,
// and the benchmark fails below it so a planner regression that silently
// reverts joins to O(n*m) cannot land (the -benchtime=1x smoke runs this
// on every push).
func BenchmarkHashJoin(b *testing.B) {
	hashed, nested := hashJoinBenchEngines(b)
	sel, err := sqlparse.ParseOne(
		"SELECT COUNT(*) FROM jb0 JOIN jb1 ON jb0.k = jb1.k", dialect.SQLite)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e *engine.Engine) {
		for i := 0; i < b.N; i++ {
			res, err := e.ExecStmt(sel)
			if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int64() != 1000 {
				b.Fatalf("rows=%v err=%v", res, err)
			}
		}
	}
	b.Run("hash", func(b *testing.B) { run(b, hashed) })
	b.Run("nested-loop", func(b *testing.B) { run(b, nested) })
	hashJoinOnce.Do(func() {
		measure := func(e *engine.Engine, iters int) time.Duration {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := e.ExecStmt(sel); err != nil {
					b.Fatal(err)
				}
			}
			return time.Since(start) / time.Duration(iters)
		}
		measure(hashed, 3) // warm both engines' compiled programs
		measure(nested, 1)
		ht := measure(hashed, 30)
		nt := measure(nested, 3)
		hashJoinSpeedup = float64(nt) / float64(ht)
		printExperiment("hash-join", fmt.Sprintf(
			"Equi-join (1k x 1k): hash %v/op vs nested loop %v/op -> %.0fx speedup\n",
			ht, nt, hashJoinSpeedup))
	})
	if hashJoinSpeedup < 5 {
		b.Errorf("hash join only %.1fx nested loop on 1k x 1k equi-join (acceptance target 5x)", hashJoinSpeedup)
	}
}

var (
	groupByOnce    sync.Once
	groupBySpeedup float64
)

// hashAggBenchEngines builds a 10k-row grouped workload with the given
// group-key cardinality on two engines: one with the streaming hash
// aggregate (the default) and one with WithoutHashAgg forcing the
// materialized per-group row retention it replaced.
func hashAggBenchEngines(tb testing.TB, groups int) (hashed, materialized *engine.Engine) {
	tb.Helper()
	hashed = engine.Open(dialect.SQLite)
	materialized = engine.Open(dialect.SQLite, engine.WithoutHashAgg())
	const rows = 10000
	stmts := []string{"CREATE TABLE ab0(g INT, a INT, b REAL, c INT)"}
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i%200 == 0 {
			if sb.Len() > 0 {
				stmts = append(stmts, sb.String())
			}
			sb.Reset()
			sb.WriteString("INSERT INTO ab0 VALUES ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d.5, %d)", i%groups, i, i%100, i%7)
	}
	stmts = append(stmts, sb.String())
	for _, e := range []*engine.Engine{hashed, materialized} {
		for _, s := range stmts {
			if _, err := e.Exec(s); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return hashed, materialized
}

// groupByBenchSQL is the grouped shape both the benchmark and the
// allocation test measure: three accumulator aggregates over 10k rows.
const groupByBenchSQL = "SELECT g, COUNT(*), SUM(a), AVG(b) FROM ab0 GROUP BY g"

// BenchmarkGroupByHash measures the aggregation tentpole: 10k rows
// folding into 10 or 1000 groups through three streaming accumulators,
// against the forced materialized path that retains every row per group.
// The self-measured speedup on the 10-group shape is a CI tripwire: the
// acceptance target is >= 3x, and the benchmark fails below it so a
// regression that silently reverts GROUP BY to materialize-then-scan
// cannot land (the -benchtime=1x smoke runs this on every push).
func BenchmarkGroupByHash(b *testing.B) {
	sel, err := sqlparse.ParseOne(groupByBenchSQL, dialect.SQLite)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, e *engine.Engine, groups int) {
		for i := 0; i < b.N; i++ {
			res, err := e.ExecStmt(sel)
			if err != nil || len(res.Rows) != groups {
				b.Fatalf("rows=%d err=%v", len(res.Rows), err)
			}
		}
	}
	for _, groups := range []int{10, 1000} {
		groups := groups
		hashed, materialized := hashAggBenchEngines(b, groups)
		b.Run(fmt.Sprintf("groups=%d/hash", groups), func(b *testing.B) {
			b.ReportAllocs()
			run(b, hashed, groups)
		})
		b.Run(fmt.Sprintf("groups=%d/materialized", groups), func(b *testing.B) {
			b.ReportAllocs()
			run(b, materialized, groups)
		})
		if groups != 10 {
			continue
		}
		groupByOnce.Do(func() {
			// Best-of-5 on both sides damps scheduler noise, and a GC fence
			// before each attempt keeps the materialized path's 3MB/op debris
			// from being collected on the hash path's clock: the tripwire
			// compares the engines, not the machine's load spikes.
			measure := func(e *engine.Engine, iters int) time.Duration {
				var best time.Duration
				for attempt := 0; attempt < 5; attempt++ {
					runtime.GC()
					start := time.Now()
					for i := 0; i < iters; i++ {
						if _, err := e.ExecStmt(sel); err != nil {
							b.Fatal(err)
						}
					}
					if el := time.Since(start) / time.Duration(iters); best == 0 || el < best {
						best = el
					}
				}
				return best
			}
			measure(hashed, 3) // warm both engines' compiled programs
			measure(materialized, 3)
			ht := measure(hashed, 30)
			mt := measure(materialized, 15)
			groupBySpeedup = float64(mt) / float64(ht)
			printExperiment("group-by-hash", fmt.Sprintf(
				"GROUP BY (10k rows, 10 groups, 3 aggregates): hash %v/op vs materialized %v/op -> %.1fx speedup\n",
				ht, mt, groupBySpeedup))
		})
		if groupBySpeedup < 3 {
			b.Errorf("hash aggregation only %.1fx materialized grouping on 10k rows/10 groups (acceptance target 3x)", groupBySpeedup)
		}
	}
}

// TestGroupByHashAllocs pins the "streaming" in streaming aggregation:
// executing the grouped benchmark query over 10k rows must allocate on
// the order of the group count, not the row count. The materialized path
// retains a per-group slice of every input row, so its allocations scale
// with rows; the accumulator path must stay under a bound a row-retaining
// implementation cannot meet.
func TestGroupByHashAllocs(t *testing.T) {
	hashed, _ := hashAggBenchEngines(t, 10)
	sel, err := sqlparse.ParseOne(groupByBenchSQL, dialect.SQLite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hashed.ExecStmt(sel); err != nil { // warm compiled programs
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := hashed.ExecStmt(sel); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2000 {
		t.Errorf("hash aggregation allocates %.0f times for 10k rows into 10 groups (want <=2000: bounded by groups, not rows)", allocs)
	}
}

// BenchmarkTopK measures the ordering half of the tentpole: ORDER BY
// with a small LIMIT over 10k rows through the bounded max-heap against
// the forced full sort, plus the same query without LIMIT (where both
// engines run the identical full sort, pinning the baseline).
func BenchmarkTopK(b *testing.B) {
	hashed, materialized := hashAggBenchEngines(b, 1000)
	queries := []struct {
		name, sql string
		rows      int
	}{
		{"limit10", "SELECT * FROM ab0 ORDER BY b, a LIMIT 10", 10},
		{"limit10-offset100", "SELECT * FROM ab0 ORDER BY b, a LIMIT 10 OFFSET 100", 10},
		{"full-sort", "SELECT * FROM ab0 ORDER BY b, a", 10000},
	}
	for _, q := range queries {
		sel, err := sqlparse.ParseOne(q.sql, dialect.SQLite)
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []struct {
			name string
			e    *engine.Engine
		}{{"topk", hashed}, {"full-sort", materialized}} {
			q, eng := q, eng
			b.Run(q.name+"/"+eng.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := eng.e.ExecStmt(sel)
					if err != nil || len(res.Rows) != q.rows {
						b.Fatalf("rows=%d err=%v", len(res.Rows), err)
					}
				}
			})
		}
	}
}

// BenchmarkAggCampaignThroughput tracks what the aggregation work costs
// where it matters: full PQS campaign throughput (generation + execution
// + oracle checks, now including grouped and exact-position ordered
// query shapes) with the hash paths on versus ablated, per dialect.
func BenchmarkAggCampaignThroughput(b *testing.B) {
	for _, mode := range []struct {
		name      string
		noHashAgg bool
	}{
		{"HashAgg", false},
		{"NoHashAgg", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for _, d := range dialect.All {
				b.Run(d.String(), func(b *testing.B) {
					tester := core.NewTester(core.Config{
						Dialect:      d,
						Seed:         1,
						QueriesPerDB: 20,
						NoHashAgg:    mode.noHashAgg,
					})
					b.ResetTimer()
					start := time.Now()
					for i := 0; i < b.N; i++ {
						if _, err := tester.RunDatabase(); err != nil {
							b.Fatal(err)
						}
					}
					elapsed := time.Since(start).Seconds()
					if elapsed > 0 {
						b.ReportMetric(float64(b.N)/elapsed, "dbs/s")
						b.ReportMetric(float64(tester.Stats().Statements)/elapsed, "stmts/s")
					}
				})
			}
		})
	}
}
