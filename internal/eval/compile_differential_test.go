package eval_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// diffWorld is a two-table row world implementing both sides of the
// equivalence being tested: the tree-walk evaluator's Env (with the
// ResolveErrEnv extension) and the compiler's Layout, sharing one
// resolver so any divergence the suite finds is in evaluation, not
// binding.
type diffWorld struct {
	rels []diffRel
	rows [][]sqlval.Value
}

type diffRel struct {
	name string
	cols []diffCol
}

type diffCol struct {
	name string
	meta eval.Meta
}

func (w *diffWorld) resolve(table, column string) (ri, ci int, ambiguous bool) {
	if table != "" {
		for i, r := range w.rels {
			if strings.EqualFold(r.name, table) {
				for j, c := range r.cols {
					if strings.EqualFold(c.name, column) {
						return i, j, false
					}
				}
				return -1, -1, false
			}
		}
		return -1, -1, false
	}
	fr, fc, n := -1, -1, 0
	for i, r := range w.rels {
		for j, c := range r.cols {
			if strings.EqualFold(c.name, column) {
				fr, fc = i, j
				n++
			}
		}
	}
	if n == 1 {
		return fr, fc, false
	}
	return -1, -1, n > 1
}

// ColumnValue implements eval.Env.
func (w *diffWorld) ColumnValue(table, column string) (sqlval.Value, bool) {
	ri, ci, _ := w.resolve(table, column)
	if ri < 0 {
		return sqlval.Null(), false
	}
	return w.rows[ri][ci], true
}

// ColumnMeta implements eval.Env.
func (w *diffWorld) ColumnMeta(table, column string) (eval.Meta, bool) {
	ri, ci, _ := w.resolve(table, column)
	if ri < 0 {
		return eval.Meta{}, false
	}
	return w.rels[ri].cols[ci].meta, true
}

// ColumnErr implements eval.ResolveErrEnv.
func (w *diffWorld) ColumnErr(table, column string) error {
	if _, _, ambiguous := w.resolve(table, column); ambiguous {
		return eval.ErrAmbiguousColumn(column)
	}
	return nil
}

// NumRels implements eval.Layout.
func (w *diffWorld) NumRels() int { return len(w.rels) }

// Resolve implements eval.Layout.
func (w *diffWorld) Resolve(table, column string) (eval.Slot, eval.Meta, error) {
	ri, ci, ambiguous := w.resolve(table, column)
	if ambiguous {
		return eval.Slot{}, eval.Meta{}, eval.ErrAmbiguousColumn(column)
	}
	if ri < 0 {
		return eval.Slot{}, eval.Meta{}, eval.ErrNoSuchColumn(table, column)
	}
	return eval.Slot{Rel: ri, Col: ci}, w.rels[ri].cols[ci].meta, nil
}

// diffWorldFor builds the dialect's test schema: mixed affinities,
// non-default collations, TINYINT and UNSIGNED metadata (the MySQL
// value-range fault triggers), a MEMORY-engine table (the Listing 11
// trigger), and a column name shared across both tables so qualified
// resolution is exercised.
func diffWorldFor(d dialect.Dialect) (*diffWorld, []gen.ColumnPick) {
	meta := func(typeName, collate string, unsigned bool, engine string) eval.Meta {
		coll, _ := sqlval.ParseCollation(collate)
		return eval.Meta{
			Coll:        coll,
			Affinity:    sqlval.AffinityOf(typeName),
			Unsigned:    unsigned,
			TypeName:    typeName,
			TableEngine: engine,
		}
	}
	engine1 := ""
	if d == dialect.MySQL {
		engine1 = "MEMORY"
	}
	w := &diffWorld{
		rels: []diffRel{
			{name: "t0", cols: []diffCol{
				{name: "c0", meta: meta("INTEGER", "", false, "")},
				{name: "c1", meta: meta("TEXT", "NOCASE", false, "")},
				{name: "c2", meta: meta("REAL", "", false, "")},
				{name: "dup", meta: meta("TEXT", "", false, "")},
			}},
			{name: "t1", cols: []diffCol{
				{name: "c3", meta: meta("TINYINT", "", false, engine1)},
				{name: "c4", meta: meta("TEXT", "RTRIM", false, engine1)},
				{name: "c5", meta: meta("BIGINT UNSIGNED", "", true, engine1)},
				{name: "dup", meta: meta("INTEGER", "", false, engine1)},
			}},
		},
		rows: [][]sqlval.Value{make([]sqlval.Value, 4), make([]sqlval.Value, 4)},
	}
	var picks []gen.ColumnPick
	for _, r := range w.rels {
		for _, c := range r.cols {
			picks = append(picks, gen.ColumnPick{Table: r.name, Column: schema.ColumnInfo{
				Name:     c.name,
				TypeName: c.meta.TypeName,
				Affinity: c.meta.Affinity.String(),
				Unsigned: c.meta.Unsigned,
				Collate:  c.meta.Coll.String(),
			}})
		}
	}
	return w, picks
}

// stripSomeQualifiers drops the table qualifier from references whose bare
// name stays uniquely resolvable, exercising unqualified slot binding.
func stripSomeQualifiers(e sqlast.Expr, w *diffWorld, rnd *gen.Rand) {
	sqlast.WalkExprs(e, func(x sqlast.Expr) bool {
		if cr, ok := x.(*sqlast.ColumnRef); ok && cr.Table != "" && rnd.Bool(0.25) {
			if _, _, ambiguous := w.resolve("", cr.Column); !ambiguous {
				if ri, _, _ := w.resolve("", cr.Column); ri >= 0 {
					cr.Table = ""
				}
			}
		}
		return true
	})
}

func describeOutcome(v sqlval.Value, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return fmt.Sprintf("%s(%s)", v.Kind(), v.String())
}

// TestCompiledTreeWalkEquivalence is the compiled-vs-interpreted
// differential suite: random generated expressions — including NULLs,
// collations, mixed-kind comparisons, and every registered fault enabled
// one at a time — must produce identical value-or-error results through
// Evaluator.Eval and through Compile+Program.Eval (and likewise for the
// boolean filter entry points).
func TestCompiledTreeWalkEquivalence(t *testing.T) {
	const exprsPerConfig = 400
	for _, d := range dialect.All {
		faultSets := []*faults.Set{nil}
		names := []string{"sound"}
		for _, info := range faults.ForDialect(d) {
			faultSets = append(faultSets, faults.NewSet(info.ID))
			names = append(names, string(info.ID))
		}
		for fi, fs := range faultSets {
			fs := fs
			d := d
			t.Run(d.String()+"/"+names[fi], func(t *testing.T) {
				t.Parallel()
				w, picks := diffWorldFor(d)
				ev := &eval.Evaluator{D: d, Faults: fs}
				rnd := gen.NewRand(d, int64(1000+fi))
				frame := &eval.Frame{Rows: w.rows}
				var hints []sqlval.Value
				for i := 0; i < 8; i++ {
					hints = append(hints, rnd.Value())
				}
				eg := &gen.ExprGen{Rnd: rnd, Cols: picks, Hints: hints, MaxDepth: 4}
				for i := 0; i < exprsPerConfig; i++ {
					if i%5 == 0 {
						for ri := range w.rows {
							for ci := range w.rows[ri] {
								w.rows[ri][ci] = rnd.Value()
							}
						}
					}
					expr := eg.Generate()
					stripSomeQualifiers(expr, w, rnd)

					wantV, wantErr := ev.Eval(expr, w)
					prog, cerr := ev.Compile(expr, w)
					if cerr != nil {
						t.Fatalf("expr %d: Compile failed on a fully-resolvable expression: %v\nexpr: %s",
							i, cerr, sqlast.ExprSQL(expr, d))
					}
					gotV, gotErr := prog.Eval(frame)
					if describeOutcome(wantV, wantErr) != describeOutcome(gotV, gotErr) {
						t.Fatalf("expr %d diverged:\n  expr: %s\n  tree-walk: %s\n  compiled:  %s",
							i, sqlast.ExprSQL(expr, d), describeOutcome(wantV, wantErr), describeOutcome(gotV, gotErr))
					}

					wantTB, wantTBErr := ev.EvalBool(expr, w)
					gotTB, gotTBErr := prog.EvalBool(frame)
					if wantTB != gotTB || (wantTBErr == nil) != (gotTBErr == nil) ||
						(wantTBErr != nil && wantTBErr.Error() != gotTBErr.Error()) {
						t.Fatalf("expr %d bool diverged:\n  expr: %s\n  tree-walk: %v/%v\n  compiled:  %v/%v",
							i, sqlast.ExprSQL(expr, d), wantTB, wantTBErr, gotTB, gotTBErr)
					}
				}
			})
		}
	}
}
