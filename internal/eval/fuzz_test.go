package eval

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlparse"
)

// FuzzEval feeds arbitrary parsed literal expressions to the evaluator and
// asserts it never panics: every outcome must be a value or an error. The
// seed corpus runs as a unit test under plain `go test`.
func FuzzEval(f *testing.F) {
	seeds := []string{
		"1 + 2 * 3",
		"'a' || 'b'",
		"1 / 0",
		"9223372036854775807 + 1",
		"-9223372036854775808 / -1",
		"NULL IS NOT NULL",
		"'12abc' + 1",
		"x'beef' = 'beef'",
		"CAST('0.5' AS INTEGER)",
		"CAST(x'' AS TEXT)",
		"1 << 70",
		"~(-1) >> 2",
		"'a' LIKE '%A_'",
		"1 BETWEEN NULL AND 2",
		"CASE WHEN 1 THEN 'x' ELSE 'y' END",
		"COALESCE(NULL, NULL, 3)",
		"ABS(-9223372036854775808)",
		"LENGTH(x'001122')",
		"NULLIF(1, 1.0)",
		"NOT (1 AND 0 OR NULL)",
		"'a' COLLATE NOCASE = 'A'",
		"1 <=> NULL",
		"5 % 0",
	}
	for _, s := range seeds {
		for d := range dialect.All {
			f.Add(s, uint8(d))
		}
	}
	f.Fuzz(func(t *testing.T, src string, db uint8) {
		d := dialect.All[int(db)%len(dialect.All)]
		expr, err := sqlparse.ParseExpr(src, d)
		if err != nil {
			return // not a parsable expression
		}
		ev := New(d)
		// Errors are fine (type errors, division by zero, overflow); only a
		// panic fails the target, which the fuzz driver catches itself.
		_, _ = ev.Eval(expr, EmptyEnv{})
	})
}
