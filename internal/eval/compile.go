// Compiled expression programs: the compile-once/run-many half of the
// evaluator. Compile resolves every column reference to a fixed
// (relation, column) slot against a statement's relation layout, folds
// constant subtrees, and lowers the tree into a chain of closures — so the
// per-row cost of a WHERE/ON/HAVING clause is slot loads and value
// operations, never string-based column resolution or interface dispatch
// over AST nodes.
//
// Fault fidelity is the design constraint: compiled comparisons route
// through the very same comparisonFaults/comparisonCollation helpers the
// tree-walk interpreter uses (over a metadata env bound at compile time),
// and fault toggles that the interpreter consults at evaluation time
// (faults.Set.Has, CaseSensitiveLike) stay runtime reads in the compiled
// closures. The one deliberate deviation: constant folding bakes in results
// computed under the fault set active at compile time, so mutating an
// evaluator's fault set after compiling programs is unsupported (no caller
// does; engines fix their fault set at Open).
//
// A Program is not safe for concurrent evaluation: its metadata env
// memoizes resolutions and function-call nodes reuse argument scratch.
// The engine serializes statements, which is the contract the executor
// already relies on.
package eval

import (
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// Slot addresses one column at run time: the relation's position in the
// statement's layout and the column's position within that relation.
type Slot struct {
	Rel, Col int
}

// Layout is the compile-time shape of a statement's FROM sources. Resolve
// binds a (possibly unqualified) column reference once; per-row evaluation
// then reads through the returned slot.
type Layout interface {
	// NumRels reports how many relations the layout spans (the Frame must
	// carry one row per relation).
	NumRels() int
	// Resolve binds a column reference to its slot and metadata. A missing
	// column fails with a CodeNoObject "no such column" error; an
	// unqualified reference matching more than one column fails with
	// ErrAmbiguousColumn.
	Resolve(table, column string) (Slot, Meta, error)
}

// ErrAmbiguousColumn is the distinct diagnostic for an unqualified column
// reference matching more than one relation column. Layouts and envs must
// build it through this constructor so the compiled and tree-walk paths
// report identical errors.
func ErrAmbiguousColumn(column string) error {
	return xerr.New(xerr.CodeNoObject, "ambiguous column name: %s", column)
}

// IsAmbiguousColumn recognizes ErrAmbiguousColumn errors.
func IsAmbiguousColumn(err error) bool {
	return err != nil && strings.HasPrefix(err.Error(), "ambiguous column name: ")
}

// ErrNoSuchColumn is the missing-column diagnostic, shared by bind-time
// resolution and the tree-walk fallback.
func ErrNoSuchColumn(table, column string) error {
	name := column
	if table != "" {
		name = table + "." + column
	}
	return xerr.New(xerr.CodeNoObject, "no such column: %s", name)
}

// Frame is the per-row evaluation state of a compiled Program: the current
// row of each relation, parallel to the compile-time layout. A nil row is
// the NULL-extended side of an outer join (every column reads as NULL).
type Frame struct {
	Rows [][]sqlval.Value
}

// thunk is one compiled node: a closure from row state to value-or-error.
type thunk func(*Frame) (sqlval.Value, error)

// Program is a compiled expression. Eval/EvalBool mirror Evaluator.Eval
// and Evaluator.EvalBool exactly — same values, same errors, same fault
// behaviour — at slot-load cost per column reference.
type Program struct {
	ev   *Evaluator
	root thunk
}

// Eval computes the program's value for the frame's current rows.
func (p *Program) Eval(f *Frame) (sqlval.Value, error) { return p.root(f) }

// EvalBool computes the program as a filter condition.
func (p *Program) EvalBool(f *Frame) (sqlval.TriBool, error) {
	v, err := p.root(f)
	if err != nil {
		return sqlval.TriUnknown, err
	}
	return p.ev.Truthy(v)
}

// Compile lowers e into a Program bound to the layout. Column resolution
// errors (missing or ambiguous references) surface here, once, instead of
// per row — except the SQLite double-quote misfeature: an unresolvable
// MaybeString reference compiles to the string constant the interpreter
// would produce.
func (ev *Evaluator) Compile(e sqlast.Expr, lay Layout) (*Program, error) {
	c := &compiler{ev: ev, menv: &boundMetaEnv{lay: lay}}
	t, _, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	// Seal the metadata env: pre-resolve every reference the fault helpers
	// could consult at run time, then drop the layout. Programs outlive
	// their statement's execution (the engine caches them), and a retained
	// layout would pin the statement's materialized relations — row
	// snapshots included — until the cache clears.
	c.menv.seal(e)
	return &Program{ev: ev, root: t}, nil
}

// CompileWrapped compiles a rectification-style unary wrapper (NOT /
// IS NULL / IS NOT NULL) around an already-compiled inner program without
// re-walking the inner tree — the PQS sanity re-check evaluates the
// wrapped predicate right after the original, and recompiling the whole
// condition per verification would cost a full extra walk. Wrapper shapes
// the structural fault rewrites inspect (NOT over NOT, NOT over IS NULL)
// fall back to a full compile so fault semantics stay exact.
func (ev *Evaluator) CompileWrapped(n *sqlast.Unary, inner *Program, lay Layout) (*Program, error) {
	if n.Op == sqlast.OpNot {
		if in, ok := n.X.(*sqlast.Unary); ok && (in.Op == sqlast.OpNot || in.Op == sqlast.OpIsNull) {
			return ev.Compile(n, lay)
		}
	}
	x := inner.root
	var t thunk
	switch n.Op {
	case sqlast.OpNot:
		t = func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			tb, err := ev.Truthy(v)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(tb.Not()), nil
		}
	case sqlast.OpIsNull:
		t = func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(sqlval.TriOf(v.IsNull())), nil
		}
	case sqlast.OpNotNull:
		t = func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(sqlval.TriOf(!v.IsNull())), nil
		}
	default:
		return ev.Compile(n, lay)
	}
	return &Program{ev: ev, root: t}, nil
}

// boundMetaEnv adapts a Layout into the metadata half of Env, memoizing
// resolutions so the shared fault/collation helpers cost one map hit per
// consulted name instead of a layout scan per row. Values never travel
// through it — comparisonFaults, comparisonCollation, and outOfTypeRange
// consult ColumnMeta exclusively; slot thunks carry the values.
type boundMetaEnv struct {
	lay  Layout
	memo map[[2]string]metaMemo
}

type metaMemo struct {
	m  Meta
	ok bool
}

// ColumnValue implements Env; the compiled path never reads values by name.
func (b *boundMetaEnv) ColumnValue(string, string) (sqlval.Value, bool) {
	return sqlval.Null(), false
}

// ColumnMeta implements Env over the layout, with memoization. After seal
// the memo is the entire universe: the helpers only ever ask about
// references that appear in the compiled expression, all of which seal
// pre-resolved.
func (b *boundMetaEnv) ColumnMeta(table, column string) (Meta, bool) {
	k := [2]string{table, column}
	if e, hit := b.memo[k]; hit {
		return e.m, e.ok
	}
	if b.lay == nil {
		return Meta{}, false
	}
	_, m, err := b.lay.Resolve(table, column)
	e := metaMemo{m: m, ok: err == nil}
	if b.memo == nil {
		b.memo = make(map[[2]string]metaMemo, 4)
	}
	b.memo[k] = e
	return e.m, e.ok
}

// seal memoizes the metadata of every column reference in e and releases
// the layout, so the finished Program retains slots and metadata only —
// never the relations (and rows) the layout was built over.
func (b *boundMetaEnv) seal(e sqlast.Expr) {
	sqlast.WalkExprs(e, func(x sqlast.Expr) bool {
		if cr, ok := x.(*sqlast.ColumnRef); ok {
			b.ColumnMeta(cr.Table, cr.Column)
		}
		return true
	})
	b.lay = nil
}

// compiler carries one Compile invocation's state.
type compiler struct {
	ev   *Evaluator
	menv *boundMetaEnv
}

// constThunk wraps a precomputed value.
func constThunk(v sqlval.Value) thunk {
	return func(*Frame) (sqlval.Value, error) { return v, nil }
}

// compile lowers one node, then folds it if the subtree is pure: no column
// references and no dependence on evaluator state that can change between
// compile and run (LIKE reads the case_sensitive_like pragma at eval time,
// so LIKE nodes stay unfolded). A pure subtree that evaluates to an error
// is deliberately left as a closure: the interpreter only raises such an
// error if the node is actually reached (e.g. a never-taken CASE arm), and
// folding eagerly would change that.
func (c *compiler) compile(e sqlast.Expr) (thunk, bool, error) {
	t, pure, err := c.compileNode(e)
	if err != nil {
		return nil, false, err
	}
	if pure {
		if _, isLit := e.(*sqlast.Literal); !isLit {
			if v, ferr := t(&Frame{}); ferr == nil {
				return constThunk(v), true, nil
			}
		}
	}
	return t, pure, nil
}

func (c *compiler) compileNode(e sqlast.Expr) (thunk, bool, error) {
	ev := c.ev
	switch n := e.(type) {
	case *sqlast.Literal:
		return constThunk(n.Val), true, nil

	case *sqlast.ColumnRef:
		slot, _, err := c.menv.lay.Resolve(n.Table, n.Column)
		if err != nil {
			// The SQLite double-quote misfeature: an unresolvable
			// MaybeString token demotes to a string constant. An ambiguous
			// reference stays an error in both paths.
			if n.MaybeString && ev.D == dialect.SQLite && !IsAmbiguousColumn(err) {
				return constThunk(sqlval.Text(n.Column)), true, nil
			}
			return nil, false, err
		}
		rel, col := slot.Rel, slot.Col
		return func(f *Frame) (sqlval.Value, error) {
			row := f.Rows[rel]
			if row == nil || col >= len(row) {
				// NULL-extended outer-join side, or a short row.
				return sqlval.Null(), nil
			}
			return row[col], nil
		}, false, nil

	case *sqlast.Collate:
		// Collation influences enclosing comparisons structurally (the
		// comparison compiler inspects the AST); the node itself is
		// transparent, exactly as in the interpreter.
		return c.compile(n.X)

	case *sqlast.Unary:
		return c.compileUnary(n)

	case *sqlast.Binary:
		return c.compileBinary(n)

	case *sqlast.Between:
		x, xp, err := c.compile(n.X)
		if err != nil {
			return nil, false, err
		}
		lo, lop, err := c.compile(n.Lo)
		if err != nil {
			return nil, false, err
		}
		hi, hip, err := c.compile(n.Hi)
		if err != nil {
			return nil, false, err
		}
		coll := ev.comparisonCollation(n.X, n.Lo, c.menv)
		not := n.Not
		return func(f *Frame) (sqlval.Value, error) {
			xv, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			lov, err := lo(f)
			if err != nil {
				return sqlval.Null(), err
			}
			hiv, err := hi(f)
			if err != nil {
				return sqlval.Null(), err
			}
			ge, err := ev.compareOp(xv, lov, sqlast.OpGe, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			le, err := ev.compareOp(xv, hiv, sqlast.OpLe, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			res := ge.And(le)
			if not {
				res = res.Not()
			}
			return ev.boolVal(res), nil
		}, xp && lop && hip, nil

	case *sqlast.InList:
		x, xp, err := c.compile(n.X)
		if err != nil {
			return nil, false, err
		}
		pure := xp
		items := make([]thunk, len(n.List))
		for i, item := range n.List {
			it, ip, err := c.compile(item)
			if err != nil {
				return nil, false, err
			}
			items[i] = it
			pure = pure && ip
		}
		coll := ev.comparisonCollation(n.X, nil, c.menv)
		not := n.Not
		return func(f *Frame) (sqlval.Value, error) {
			xv, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			res := sqlval.TriFalse
			for _, it := range items {
				v, err := it(f)
				if err != nil {
					return sqlval.Null(), err
				}
				eq, err := ev.compareOp(xv, v, sqlast.OpEq, coll)
				if err != nil {
					return sqlval.Null(), err
				}
				res = res.Or(eq)
			}
			if not {
				res = res.Not()
			}
			return ev.boolVal(res), nil
		}, pure, nil

	case *sqlast.Cast:
		x, xp, err := c.compile(n.X)
		if err != nil {
			return nil, false, err
		}
		typeName := n.TypeName
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.Cast(v, typeName)
		}, xp, nil

	case *sqlast.Case:
		return c.compileCase(n)

	case *sqlast.FuncCall:
		pure := true
		args := make([]thunk, len(n.Args))
		for i, a := range n.Args {
			at, ap, err := c.compile(a)
			if err != nil {
				return nil, false, err
			}
			args[i] = at
			pure = pure && ap
		}
		name := n.Name
		scratch := make([]sqlval.Value, len(args))
		return func(f *Frame) (sqlval.Value, error) {
			for i, at := range args {
				v, err := at(f)
				if err != nil {
					return sqlval.Null(), err
				}
				scratch[i] = v
			}
			return ev.Scalar(name, scratch)
		}, pure, nil

	default:
		return func(*Frame) (sqlval.Value, error) {
			return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "unsupported expression %T", e)
		}, false, nil
	}
}

func (c *compiler) compileUnary(n *sqlast.Unary) (thunk, bool, error) {
	ev := c.ev
	x, xp, err := c.compile(n.X)
	if err != nil {
		return nil, false, err
	}
	main := c.unaryOp(n.Op, x)

	// Structural fault shapes compile to runtime-gated alternates so the
	// rewrite fires exactly when the interpreter's Has check would.
	if n.Op == sqlast.OpNot && ev.D == dialect.MySQL {
		// Fault site (mysql.double-negation, Listing 13).
		if inner, ok := n.X.(*sqlast.Unary); ok && inner.Op == sqlast.OpNot {
			alt, _, err := c.compile(inner.X)
			if err != nil {
				return nil, false, err
			}
			return func(f *Frame) (sqlval.Value, error) {
				if ev.Faults.Has(faults.DoubleNegation) {
					return alt(f)
				}
				return main(f)
			}, false, nil
		}
	}
	if n.Op == sqlast.OpNot && ev.D == dialect.SQLite {
		// Fault site (sqlite.is-not-null-opt).
		if inner, ok := n.X.(*sqlast.Unary); ok && inner.Op == sqlast.OpIsNull {
			if _, isCol := inner.X.(*sqlast.ColumnRef); isCol {
				return func(f *Frame) (sqlval.Value, error) {
					if ev.Faults.Has(faults.IsNotNullOpt) {
						return sqlval.Int(1), nil
					}
					return main(f)
				}, false, nil
			}
		}
	}
	return main, xp, nil
}

// unaryOp builds the non-fault thunk for a unary operator over a compiled
// operand.
func (c *compiler) unaryOp(op sqlast.UnaryOp, x thunk) thunk {
	ev := c.ev
	switch op {
	case sqlast.OpNot:
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			t, err := ev.Truthy(v)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(t.Not()), nil
		}
	case sqlast.OpIsNull:
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(sqlval.TriOf(v.IsNull())), nil
		}
	case sqlast.OpNotNull:
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(sqlval.TriOf(!v.IsNull())), nil
		}
	case sqlast.OpNeg:
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.negate(v)
		}
	case sqlast.OpPos:
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			if ev.D == dialect.Postgres && !v.IsNull() && !v.IsNumeric() {
				return sqlval.Null(), typeError("unary + on %s", v.Kind())
			}
			return v, nil
		}
	case sqlast.OpBitNot:
		return func(f *Frame) (sqlval.Value, error) {
			v, err := x(f)
			if err != nil {
				return sqlval.Null(), err
			}
			if v.IsNull() {
				return sqlval.Null(), nil
			}
			if ev.D == dialect.Postgres && v.Kind() != sqlval.KInt {
				return sqlval.Null(), typeError("~ on %s", v.Kind())
			}
			return sqlval.Int(^clampInt64(ev.numeric(v))), nil
		}
	default:
		return func(*Frame) (sqlval.Value, error) {
			return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "unary operator")
		}
	}
}

func (c *compiler) compileBinary(n *sqlast.Binary) (thunk, bool, error) {
	ev := c.ev
	l, lp, err := c.compile(n.L)
	if err != nil {
		return nil, false, err
	}
	r, rp, err := c.compile(n.R)
	if err != nil {
		return nil, false, err
	}
	pure := lp && rp

	switch n.Op {
	case sqlast.OpAnd, sqlast.OpOr:
		// The interpreter evaluates both sides unconditionally (no short
		// circuit), so errors surface in the same order here.
		and := n.Op == sqlast.OpAnd
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			lt, err := ev.Truthy(lv)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rt, err := ev.Truthy(rv)
			if err != nil {
				return sqlval.Null(), err
			}
			if and {
				return ev.boolVal(lt.And(rt)), nil
			}
			return ev.boolVal(lt.Or(rt)), nil
		}, pure, nil

	case sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		coll := ev.comparisonCollation(n.L, n.R, c.menv)
		node, menv := n, c.menv
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			// Same injected-bug routing as the interpreter: the helper
			// checks the enabled-fault set itself, so detection parity is
			// by construction rather than by transcription.
			if v, handled, err := ev.comparisonFaults(node, lv, rv, menv); handled || err != nil {
				return v, err
			}
			t, err := ev.compareOp(lv, rv, node.Op, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(t), nil
		}, pure, nil

	case sqlast.OpIs, sqlast.OpIsNot:
		coll := ev.comparisonCollation(n.L, n.R, c.menv)
		isNot := n.Op == sqlast.OpIsNot
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			eq, err := ev.nullSafeEq(lv, rv, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			if isNot {
				eq = !eq
			}
			return ev.boolVal(sqlval.TriOf(eq)), nil
		}, pure, nil

	case sqlast.OpNullSafeEq:
		coll := ev.comparisonCollation(n.L, n.R, c.menv)
		node, menv := n, c.menv
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			// Fault site (mysql.null-safe-eq-range, Listing 12).
			if ev.D == dialect.MySQL && ev.Faults.Has(faults.NullSafeEqRange) {
				if outOfTypeRange(node.L, rv, menv) {
					return ev.boolVal(sqlval.TriOf(lv.IsNull())), nil
				}
				if outOfTypeRange(node.R, lv, menv) {
					return ev.boolVal(sqlval.TriOf(rv.IsNull())), nil
				}
			}
			eq, err := ev.nullSafeEq(lv, rv, coll)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.boolVal(sqlval.TriOf(eq)), nil
		}, pure, nil

	case sqlast.OpLike, sqlast.OpNotLike:
		lExpr := n.L
		not := n.Op == sqlast.OpNotLike
		// Never pure: LIKE reads the case_sensitive_like pragma at
		// evaluation time, which can change between compile and run.
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			t, err := ev.like(lExpr, lv, rv)
			if err != nil {
				return sqlval.Null(), err
			}
			if not {
				t = t.Not()
			}
			return ev.boolVal(t), nil
		}, false, nil

	case sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod:
		op := n.Op
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.arith(lv, rv, op)
		}, pure, nil

	case sqlast.OpConcat:
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.concat(lv, rv)
		}, pure, nil

	case sqlast.OpBitAnd, sqlast.OpBitOr, sqlast.OpShl, sqlast.OpShr:
		op := n.Op
		return func(f *Frame) (sqlval.Value, error) {
			lv, err := l(f)
			if err != nil {
				return sqlval.Null(), err
			}
			rv, err := r(f)
			if err != nil {
				return sqlval.Null(), err
			}
			return ev.bits(lv, rv, op)
		}, pure, nil
	}
	return func(*Frame) (sqlval.Value, error) {
		return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "binary operator")
	}, false, nil
}

func (c *compiler) compileCase(n *sqlast.Case) (thunk, bool, error) {
	ev := c.ev
	pure := true
	var operand thunk
	if n.Operand != nil {
		var op bool
		var err error
		operand, op, err = c.compile(n.Operand)
		if err != nil {
			return nil, false, err
		}
		pure = pure && op
	}
	whens := make([]thunk, len(n.Whens))
	thens := make([]thunk, len(n.Whens))
	colls := make([]sqlval.Collation, len(n.Whens))
	for i, w := range n.Whens {
		wt, wp, err := c.compile(w.When)
		if err != nil {
			return nil, false, err
		}
		tt, tp, err := c.compile(w.Then)
		if err != nil {
			return nil, false, err
		}
		whens[i], thens[i] = wt, tt
		pure = pure && wp && tp
		if n.Operand != nil {
			colls[i] = ev.comparisonCollation(n.Operand, w.When, c.menv)
		}
	}
	var elseT thunk
	if n.Else != nil {
		var ep bool
		var err error
		elseT, ep, err = c.compile(n.Else)
		if err != nil {
			return nil, false, err
		}
		pure = pure && ep
	}
	return func(f *Frame) (sqlval.Value, error) {
		for i := range whens {
			var hit sqlval.TriBool
			if operand != nil {
				// The interpreter re-evaluates the operand per arm; keep
				// that order so errors and side observations match.
				opv, err := operand(f)
				if err != nil {
					return sqlval.Null(), err
				}
				wv, err := whens[i](f)
				if err != nil {
					return sqlval.Null(), err
				}
				hit, err = ev.compareOp(opv, wv, sqlast.OpEq, colls[i])
				if err != nil {
					return sqlval.Null(), err
				}
			} else {
				wv, err := whens[i](f)
				if err != nil {
					return sqlval.Null(), err
				}
				hit, err = ev.Truthy(wv)
				if err != nil {
					return sqlval.Null(), err
				}
			}
			if hit == sqlval.TriTrue {
				return thens[i](f)
			}
		}
		if elseT != nil {
			return elseT(f)
		}
		return sqlval.Null(), nil
	}, pure, nil
}
