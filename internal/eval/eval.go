// Package eval is the engine-side expression evaluator. It mirrors the SQL
// semantics the oracle interpreter (internal/interp) implements, but it is
// the production half: it resolves columns through the executor's row
// environment, consults column metadata from the catalog, and hosts many of
// the injected bug sites (the paper's evaluator/optimizer bug classes).
//
// It shares no evaluation code with internal/interp — that separation is
// what keeps injected bugs observable to the oracle.
package eval

import (
	"math"
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// Meta is the column metadata the evaluator consults.
type Meta struct {
	Coll        sqlval.Collation
	Affinity    sqlval.Affinity
	Unsigned    bool
	TypeName    string
	TableEngine string // MySQL storage engine of the owning table
}

// Env resolves column references during evaluation.
type Env interface {
	// ColumnValue returns the current row's value for a column. table may
	// be empty for unqualified references; the env must then resolve a
	// unique match or report !ok.
	ColumnValue(table, column string) (sqlval.Value, bool)
	// ColumnMeta returns metadata for a column.
	ColumnMeta(table, column string) (Meta, bool)
}

// ResolveErrEnv is an optional Env extension: an env that can explain a
// failed column resolution (most importantly distinguishing an ambiguous
// unqualified reference from a missing one) returns the diagnostic here.
// The evaluator consults it before the generic "no such column" fallback,
// so tree-walk lookups report the same distinct errors compiled programs
// surface at bind time.
type ResolveErrEnv interface {
	// ColumnErr reports why (table, column) failed to resolve, or nil to
	// fall through to the default missing-column handling.
	ColumnErr(table, column string) error
}

// EmptyEnv is an Env with no columns (constant expressions).
type EmptyEnv struct{}

// ColumnValue always reports !ok.
func (EmptyEnv) ColumnValue(string, string) (sqlval.Value, bool) { return sqlval.Null(), false }

// ColumnMeta always reports !ok.
func (EmptyEnv) ColumnMeta(string, string) (Meta, bool) { return Meta{}, false }

// Evaluator evaluates expressions under a dialect, session options, and an
// enabled-fault set.
type Evaluator struct {
	D                 dialect.Dialect
	Faults            *faults.Set
	CaseSensitiveLike bool
}

// New returns an evaluator for the dialect with no faults enabled.
func New(d dialect.Dialect) *Evaluator { return &Evaluator{D: d} }

func typeError(format string, args ...any) error {
	return xerr.New(xerr.CodeType, format, args...)
}

// Eval computes the value of e in the row environment.
func (ev *Evaluator) Eval(e sqlast.Expr, env Env) (sqlval.Value, error) {
	switch n := e.(type) {
	case *sqlast.Literal:
		return n.Val, nil
	case *sqlast.ColumnRef:
		v, ok := env.ColumnValue(n.Table, n.Column)
		if !ok {
			// Ambiguity (and other env-specific diagnostics) outranks the
			// MaybeString string demotion, matching SQLite: a double-quoted
			// token matching two columns is an ambiguous identifier, not a
			// string literal.
			if re, hasErr := env.(ResolveErrEnv); hasErr {
				if err := re.ColumnErr(n.Table, n.Column); err != nil {
					return sqlval.Null(), err
				}
			}
			if n.MaybeString && ev.D == dialect.SQLite {
				return sqlval.Text(n.Column), nil
			}
			return sqlval.Null(), ErrNoSuchColumn(n.Table, n.Column)
		}
		return v, nil
	case *sqlast.Collate:
		return ev.Eval(n.X, env)
	case *sqlast.Unary:
		return ev.evalUnary(n, env)
	case *sqlast.Binary:
		return ev.evalBinary(n, env)
	case *sqlast.Between:
		return ev.evalBetween(n, env)
	case *sqlast.InList:
		return ev.evalIn(n, env)
	case *sqlast.Cast:
		x, err := ev.Eval(n.X, env)
		if err != nil {
			return sqlval.Null(), err
		}
		return ev.Cast(x, n.TypeName)
	case *sqlast.Case:
		return ev.evalCase(n, env)
	case *sqlast.FuncCall:
		return ev.evalFunc(n, env)
	default:
		return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "unsupported expression %T", e)
	}
}

// EvalBool computes e as a filter condition.
func (ev *Evaluator) EvalBool(e sqlast.Expr, env Env) (sqlval.TriBool, error) {
	v, err := ev.Eval(e, env)
	if err != nil {
		return sqlval.TriUnknown, err
	}
	return ev.Truthy(v)
}

// Truthy converts a value to the dialect's boolean interpretation.
func (ev *Evaluator) Truthy(v sqlval.Value) (sqlval.TriBool, error) {
	if v.IsNull() {
		return sqlval.TriUnknown, nil
	}
	if ev.D == dialect.Postgres {
		if v.Kind() != sqlval.KBool {
			return sqlval.TriUnknown, typeError("argument of boolean context must be type boolean, not %s", v.Kind())
		}
		return sqlval.TriOf(v.BoolVal()), nil
	}
	// Fault site (mysql.text-double-bool, Listing class §4.5): small
	// doubles stored in TEXT evaluate through an integer truncation.
	if ev.D == dialect.MySQL && ev.Faults.Has(faults.TextDoubleBool) && v.Kind() == sqlval.KText {
		n := ev.numeric(v)
		return sqlval.TriOf(int64(n.AsFloat()) != 0), nil
	}
	n := ev.numeric(v)
	if n.IsNull() {
		return sqlval.TriUnknown, nil
	}
	return sqlval.TriOf(n.AsFloat() != 0), nil
}

// Numeric exposes the engine's lossy numeric coercion (text → longest
// numeric prefix) for callers that must agree with comparison semantics
// byte-for-byte — the hash-join key builder normalizes MySQL keys through
// it so bucket equality coarsens the evaluator's coercing equality.
func Numeric(v sqlval.Value) sqlval.Value {
	return (&Evaluator{}).numeric(v)
}

// numeric is the engine's lossy numeric coercion (text → longest numeric
// prefix). Independent implementation of the same specification as
// interp.ToNumeric.
func (ev *Evaluator) numeric(v sqlval.Value) sqlval.Value {
	switch v.Kind() {
	case sqlval.KText:
		return prefixNumber(v.Str())
	case sqlval.KBlob:
		return prefixNumber(v.BlobStr())
	case sqlval.KBool:
		return sqlval.Int(v.Int64())
	default:
		return v
	}
}

// prefixNumber scans the longest numeric prefix with a hand-rolled state
// machine (deliberately not sharing code with the oracle's parser).
func prefixNumber(s string) sqlval.Value {
	i, n := 0, len(s)
	for i < n && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	start := i
	if i < n && (s[i] == '+' || s[i] == '-') {
		i++
	}
	intDigits := 0
	for i < n && s[i] >= '0' && s[i] <= '9' {
		i++
		intDigits++
	}
	fracDigits := 0
	isReal := false
	if i < n && s[i] == '.' {
		j := i + 1
		for j < n && s[j] >= '0' && s[j] <= '9' {
			j++
			fracDigits++
		}
		if intDigits+fracDigits > 0 {
			isReal = true
			i = j
		}
	}
	if intDigits+fracDigits == 0 {
		return sqlval.Int(0)
	}
	if i < n && (s[i] == 'e' || s[i] == 'E') {
		j := i + 1
		if j < n && (s[j] == '+' || s[j] == '-') {
			j++
		}
		expDigits := 0
		for j < n && s[j] >= '0' && s[j] <= '9' {
			j++
			expDigits++
		}
		if expDigits > 0 {
			isReal = true
			i = j
		}
	}
	text := s[start:i]
	if v, ok := sqlval.TextToNumeric(text); ok {
		if !isReal && v.Kind() == sqlval.KInt {
			return v
		}
		if v.Kind() == sqlval.KInt {
			return sqlval.Real(float64(v.Int64()))
		}
		return v
	}
	return sqlval.Int(0)
}

func (ev *Evaluator) boolVal(t sqlval.TriBool) sqlval.Value {
	if ev.D == dialect.Postgres {
		return t.BoolValue()
	}
	return t.Value()
}

func (ev *Evaluator) evalUnary(n *sqlast.Unary, env Env) (sqlval.Value, error) {
	// Fault site (mysql.double-negation, Listing 13): NOT(NOT x) is
	// folded to x before evaluation — correct for booleans, wrong for
	// general integers.
	if n.Op == sqlast.OpNot && ev.D == dialect.MySQL && ev.Faults.Has(faults.DoubleNegation) {
		if inner, ok := n.X.(*sqlast.Unary); ok && inner.Op == sqlast.OpNot {
			return ev.Eval(inner.X, env)
		}
	}
	// Fault site (sqlite.is-not-null-opt): NOT (x IS NULL) on a bare
	// column is rewritten to constant TRUE by a bogus not-null inference.
	if n.Op == sqlast.OpNot && ev.D == dialect.SQLite && ev.Faults.Has(faults.IsNotNullOpt) {
		if inner, ok := n.X.(*sqlast.Unary); ok && inner.Op == sqlast.OpIsNull {
			if _, isCol := inner.X.(*sqlast.ColumnRef); isCol {
				return sqlval.Int(1), nil
			}
		}
	}
	x, err := ev.Eval(n.X, env)
	if err != nil {
		return sqlval.Null(), err
	}
	switch n.Op {
	case sqlast.OpNot:
		t, err := ev.Truthy(x)
		if err != nil {
			return sqlval.Null(), err
		}
		return ev.boolVal(t.Not()), nil
	case sqlast.OpIsNull:
		return ev.boolVal(sqlval.TriOf(x.IsNull())), nil
	case sqlast.OpNotNull:
		return ev.boolVal(sqlval.TriOf(!x.IsNull())), nil
	case sqlast.OpNeg:
		return ev.negate(x)
	case sqlast.OpPos:
		if ev.D == dialect.Postgres && !x.IsNull() && !x.IsNumeric() {
			return sqlval.Null(), typeError("unary + on %s", x.Kind())
		}
		return x, nil
	case sqlast.OpBitNot:
		if x.IsNull() {
			return sqlval.Null(), nil
		}
		if ev.D == dialect.Postgres && x.Kind() != sqlval.KInt {
			return sqlval.Null(), typeError("~ on %s", x.Kind())
		}
		return sqlval.Int(^clampInt64(ev.numeric(x))), nil
	}
	return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "unary operator")
}

func (ev *Evaluator) negate(x sqlval.Value) (sqlval.Value, error) {
	if x.IsNull() {
		return sqlval.Null(), nil
	}
	if ev.D == dialect.Postgres && !x.IsNumeric() {
		return sqlval.Null(), typeError("unary - on %s", x.Kind())
	}
	n := ev.numeric(x)
	switch n.Kind() {
	case sqlval.KInt:
		if n.Int64() == math.MinInt64 {
			return sqlval.Real(9.223372036854776e18), nil
		}
		return sqlval.Int(-n.Int64()), nil
	case sqlval.KUint:
		if n.Uint64() <= math.MaxInt64 {
			return sqlval.Int(-int64(n.Uint64())), nil
		}
		return sqlval.Real(-float64(n.Uint64())), nil
	default:
		return sqlval.Real(-n.Float64()), nil
	}
}

func clampInt64(v sqlval.Value) int64 {
	switch v.Kind() {
	case sqlval.KInt, sqlval.KBool:
		return v.Int64()
	case sqlval.KUint:
		return int64(v.Uint64())
	case sqlval.KReal:
		f := v.Float64()
		switch {
		case f >= 9.223372036854776e18:
			return math.MaxInt64
		case f < -9.223372036854776e18:
			return math.MinInt64
		default:
			return int64(f)
		}
	}
	return 0
}

func (ev *Evaluator) evalBinary(n *sqlast.Binary, env Env) (sqlval.Value, error) {
	if n.Op == sqlast.OpAnd || n.Op == sqlast.OpOr {
		l, err := ev.EvalBool(n.L, env)
		if err != nil {
			return sqlval.Null(), err
		}
		r, err := ev.EvalBool(n.R, env)
		if err != nil {
			return sqlval.Null(), err
		}
		if n.Op == sqlast.OpAnd {
			return ev.boolVal(l.And(r)), nil
		}
		return ev.boolVal(l.Or(r)), nil
	}

	l, err := ev.Eval(n.L, env)
	if err != nil {
		return sqlval.Null(), err
	}
	r, err := ev.Eval(n.R, env)
	if err != nil {
		return sqlval.Null(), err
	}

	switch n.Op {
	case sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		if v, handled, err := ev.comparisonFaults(n, l, r, env); handled || err != nil {
			return v, err
		}
		t, err := ev.compareOp(l, r, n.Op, ev.comparisonCollation(n.L, n.R, env))
		if err != nil {
			return sqlval.Null(), err
		}
		return ev.boolVal(t), nil
	case sqlast.OpIs, sqlast.OpIsNot:
		eq, err := ev.nullSafeEq(l, r, ev.comparisonCollation(n.L, n.R, env))
		if err != nil {
			return sqlval.Null(), err
		}
		if n.Op == sqlast.OpIsNot {
			eq = !eq
		}
		return ev.boolVal(sqlval.TriOf(eq)), nil
	case sqlast.OpNullSafeEq:
		// Fault site (mysql.null-safe-eq-range, Listing 12): <=> against
		// a constant wider than the column type clamps the constant and
		// loses null-safety — NULL <=> <out-of-range> yields TRUE, so
		// Listing 12's NOT(c0 <=> 2035382037) stops fetching the row.
		if ev.D == dialect.MySQL && ev.Faults.Has(faults.NullSafeEqRange) {
			if outOfTypeRange(n.L, r, env) {
				return ev.boolVal(sqlval.TriOf(l.IsNull())), nil
			}
			if outOfTypeRange(n.R, l, env) {
				return ev.boolVal(sqlval.TriOf(r.IsNull())), nil
			}
		}
		eq, err := ev.nullSafeEq(l, r, ev.comparisonCollation(n.L, n.R, env))
		if err != nil {
			return sqlval.Null(), err
		}
		return ev.boolVal(sqlval.TriOf(eq)), nil
	case sqlast.OpLike, sqlast.OpNotLike:
		t, err := ev.like(n.L, l, r)
		if err != nil {
			return sqlval.Null(), err
		}
		if n.Op == sqlast.OpNotLike {
			t = t.Not()
		}
		return ev.boolVal(t), nil
	case sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod:
		return ev.arith(l, r, n.Op)
	case sqlast.OpConcat:
		return ev.concat(l, r)
	case sqlast.OpBitAnd, sqlast.OpBitOr, sqlast.OpShl, sqlast.OpShr:
		return ev.bits(l, r, n.Op)
	}
	return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "binary operator")
}

// comparisonFaults hosts the comparison-related injected bugs. It reports
// handled=true when a fault rewrote the result.
func (ev *Evaluator) comparisonFaults(n *sqlast.Binary, l, r sqlval.Value, env Env) (sqlval.Value, bool, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Value{}, false, nil
	}
	switch ev.D {
	case dialect.SQLite:
		// Fault site (sqlite.affinity-compare): the constant side of a
		// comparison against an INTEGER-affinity column is numerified,
		// breaking storage-class comparison.
		if ev.Faults.Has(faults.AffinityCompare) {
			if m, side := columnSideMeta(n, env); side != 0 && numericAffinity(m.Affinity) {
				var cmp int
				if side == 1 && r.Kind() == sqlval.KText {
					cmp = sqlval.Compare(ev.numeric(l), ev.numeric(r), sqlval.CollBinary)
				} else if side == 2 && l.Kind() == sqlval.KText {
					cmp = sqlval.Compare(ev.numeric(l), ev.numeric(r), sqlval.CollBinary)
				} else {
					return sqlval.Value{}, false, nil
				}
				return ev.boolVal(cmpToTri(cmp, n.Op)), true, nil
			}
		}
	case dialect.MySQL:
		// Fault site (mysql.memory-engine-cast, Listing 11): comparisons
		// involving CAST(... AS UNSIGNED) on MEMORY-engine tables invert.
		if ev.Faults.Has(faults.MemoryEngineCast) && involvesMemoryEngineCast(n, env) {
			t, err := ev.compareOp(l, r, n.Op, ev.comparisonCollation(n.L, n.R, env))
			if err != nil {
				return sqlval.Value{}, false, err
			}
			return ev.boolVal(t.Not()), true, nil
		}
		// Fault site (mysql.unsigned-compare): an UNSIGNED column
		// compared with a negative constant coerces the constant.
		if ev.Faults.Has(faults.UnsignedCompare) {
			if m, side := columnSideMeta(n, env); side != 0 && m.Unsigned {
				other := r
				if side == 2 {
					other = l
				}
				if other.Kind() == sqlval.KInt && other.Int64() < 0 {
					wrapped := sqlval.Uint(uint64(other.Int64()))
					var t sqlval.TriBool
					var err error
					if side == 1 {
						t, err = ev.compareOp(l, wrapped, n.Op, sqlval.CollBinary)
					} else {
						t, err = ev.compareOp(wrapped, r, n.Op, sqlval.CollBinary)
					}
					if err != nil {
						return sqlval.Value{}, false, err
					}
					return ev.boolVal(t), true, nil
				}
			}
		}
		// Fault site (mysql.tinyint-range-clamp): TINYINT comparisons
		// with out-of-range constants yield FALSE.
		if ev.Faults.Has(faults.TinyintRangeClamp) {
			if outOfTypeRange(n.L, r, env) || outOfTypeRange(n.R, l, env) {
				return sqlval.Int(0), true, nil
			}
		}
	}
	return sqlval.Value{}, false, nil
}

func numericAffinity(a sqlval.Affinity) bool {
	return a == sqlval.AffInteger || a == sqlval.AffReal || a == sqlval.AffNumeric
}

// columnSideMeta reports which side of a binary comparison is a bare
// column (1=left, 2=right, 0=neither) plus that column's metadata.
func columnSideMeta(n *sqlast.Binary, env Env) (Meta, int) {
	if c, ok := n.L.(*sqlast.ColumnRef); ok {
		if m, ok := env.ColumnMeta(c.Table, c.Column); ok {
			return m, 1
		}
	}
	if c, ok := n.R.(*sqlast.ColumnRef); ok {
		if m, ok := env.ColumnMeta(c.Table, c.Column); ok {
			return m, 2
		}
	}
	return Meta{}, 0
}

// outOfTypeRange reports whether colExpr is a TINYINT column and v is an
// integer constant outside [-128, 127].
func outOfTypeRange(colExpr sqlast.Expr, v sqlval.Value, env Env) bool {
	c, ok := colExpr.(*sqlast.ColumnRef)
	if !ok {
		return false
	}
	m, ok := env.ColumnMeta(c.Table, c.Column)
	if !ok || !strings.Contains(strings.ToUpper(m.TypeName), "TINYINT") {
		return false
	}
	if v.Kind() == sqlval.KInt {
		return v.Int64() > 127 || v.Int64() < -128
	}
	if v.Kind() == sqlval.KUint {
		return v.Uint64() > 127
	}
	return false
}

// involvesMemoryEngineCast detects the Listing 11 trigger: one comparison
// side contains CAST(col AS UNSIGNED) where col's table uses MEMORY.
func involvesMemoryEngineCast(n *sqlast.Binary, env Env) bool {
	found := false
	probe := func(e sqlast.Expr) {
		sqlast.WalkExprs(e, func(x sqlast.Expr) bool {
			if cast, ok := x.(*sqlast.Cast); ok && strings.Contains(strings.ToUpper(cast.TypeName), "UNSIGNED") {
				if col, ok := cast.X.(*sqlast.ColumnRef); ok {
					if m, ok := env.ColumnMeta(col.Table, col.Column); ok && m.TableEngine == "MEMORY" {
						found = true
					}
				}
			}
			return true
		})
	}
	probe(n.L)
	probe(n.R)
	return found
}

func cmpToTri(c int, op sqlast.BinOp) sqlval.TriBool {
	switch op {
	case sqlast.OpEq:
		return sqlval.TriOf(c == 0)
	case sqlast.OpNe:
		return sqlval.TriOf(c != 0)
	case sqlast.OpLt:
		return sqlval.TriOf(c < 0)
	case sqlast.OpLe:
		return sqlval.TriOf(c <= 0)
	case sqlast.OpGt:
		return sqlval.TriOf(c > 0)
	default:
		return sqlval.TriOf(c >= 0)
	}
}

// comparisonCollation resolves the collation for a comparison: explicit
// COLLATE first, then the left column's declared collation, then the
// right's, then the dialect default.
func (ev *Evaluator) comparisonCollation(l, r sqlast.Expr, env Env) sqlval.Collation {
	for _, e := range []sqlast.Expr{l, r} {
		if c, ok := e.(*sqlast.Collate); ok {
			return c.Coll
		}
	}
	for _, e := range []sqlast.Expr{l, r} {
		if c, ok := e.(*sqlast.ColumnRef); ok {
			if m, ok := env.ColumnMeta(c.Table, c.Column); ok {
				return m.Coll
			}
		}
	}
	if ev.D == dialect.MySQL {
		return sqlval.CollNoCase
	}
	return sqlval.CollBinary
}

// compareOp orders two values and applies the comparison operator under
// three-valued logic.
func (ev *Evaluator) compareOp(l, r sqlval.Value, op sqlast.BinOp, coll sqlval.Collation) (sqlval.TriBool, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.TriUnknown, nil
	}
	c, err := ev.order(l, r, coll)
	if err != nil {
		return sqlval.TriUnknown, err
	}
	return cmpToTri(c, op), nil
}

// order compares non-NULL values per dialect (see compareValues in
// internal/interp for the specification).
func (ev *Evaluator) order(l, r sqlval.Value, coll sqlval.Collation) (int, error) {
	switch ev.D {
	case dialect.MySQL:
		if l.IsNumeric() || r.IsNumeric() || l.Kind() == sqlval.KBool || r.Kind() == sqlval.KBool {
			return sqlval.Compare(ev.numeric(l), ev.numeric(r), sqlval.CollBinary), nil
		}
		if l.Kind() == sqlval.KText && r.Kind() == sqlval.KText {
			return sqlval.CollCompare(l.Str(), r.Str(), coll), nil
		}
		lb, rb := l, r
		if lb.Kind() == sqlval.KText {
			lb = sqlval.Blob([]byte(lb.Str()))
		}
		if rb.Kind() == sqlval.KText {
			rb = sqlval.Blob([]byte(rb.Str()))
		}
		return sqlval.Compare(lb, rb, sqlval.CollBinary), nil
	case dialect.Postgres:
		switch {
		case l.IsNumeric() && r.IsNumeric():
			return sqlval.Compare(l, r, sqlval.CollBinary), nil
		case l.Kind() == sqlval.KText && r.Kind() == sqlval.KText:
			return sqlval.CollCompare(l.Str(), r.Str(), coll), nil
		case l.Kind() == sqlval.KBool && r.Kind() == sqlval.KBool:
			return sqlval.Compare(l, r, sqlval.CollBinary), nil
		case l.Kind() == sqlval.KBlob && r.Kind() == sqlval.KBlob:
			return sqlval.Compare(l, r, sqlval.CollBinary), nil
		default:
			return 0, typeError("operator does not exist: %s = %s", l.Kind(), r.Kind())
		}
	default:
		return sqlval.Compare(l, r, coll), nil
	}
}

func (ev *Evaluator) nullSafeEq(l, r sqlval.Value, coll sqlval.Collation) (bool, error) {
	if l.IsNull() || r.IsNull() {
		return l.IsNull() && r.IsNull(), nil
	}
	if ev.D == dialect.Postgres {
		lt, err := ev.Truthy(l)
		if err != nil {
			return false, err
		}
		rt, err := ev.Truthy(r)
		if err != nil {
			return false, err
		}
		return lt == rt, nil
	}
	c, err := ev.order(l, r, coll)
	if err != nil {
		return false, err
	}
	return c == 0, nil
}

func (ev *Evaluator) like(lExpr sqlast.Expr, l, r sqlval.Value) (sqlval.TriBool, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.TriUnknown, nil
	}
	if ev.D == dialect.Postgres && (l.Kind() != sqlval.KText || r.Kind() != sqlval.KText) {
		return sqlval.TriUnknown, typeError("LIKE on %s/%s", l.Kind(), r.Kind())
	}
	s, pat := textOf(l), textOf(r)
	// Fault site (sqlite.like-affinity-opt, Listing 7): the LIKE-to-
	// equality optimization misfires for non-TEXT-affinity columns when
	// the pattern has no wildcards.
	if ev.D == dialect.SQLite && ev.Faults.Has(faults.LikeAffinityOpt) {
		if col, ok := lExpr.(*sqlast.ColumnRef); ok && !strings.ContainsAny(pat, "%_") {
			_ = col
			if _, fullyNumeric := sqlval.TextToNumeric(pat); !fullyNumeric {
				// "Optimized" equality under numeric affinity: both
				// sides collapse to 0 only if numeric; a non-numeric
				// pattern never matches.
				return sqlval.TriFalse, nil
			}
		}
	}
	ci := ev.D.LikeCaseInsensitive()
	if ev.D == dialect.SQLite && ev.CaseSensitiveLike {
		ci = false
	}
	return sqlval.TriOf(matchLike(s, pat, ci)), nil
}

func textOf(v sqlval.Value) string {
	switch v.Kind() {
	case sqlval.KText:
		return v.Str()
	case sqlval.KBlob:
		return v.BlobStr()
	default:
		return v.Display()
	}
}

// matchLike is the engine's LIKE matcher: iterative with backtracking (a
// different construction from the oracle's recursive matcher).
func matchLike(s, pat string, ci bool) bool {
	if ci {
		s = strings.ToLower(s)
		pat = strings.ToLower(pat)
	}
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		// '%' is always a wildcard — test it before the literal case so a
		// literal '%' in the subject cannot consume it.
		case pi < len(pat) && pat[pi] == '%':
			star = pi
			starSi = si
			pi++
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func (ev *Evaluator) arith(l, r sqlval.Value, op sqlast.BinOp) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null(), nil
	}
	if ev.D == dialect.Postgres && (!l.IsNumeric() || !r.IsNumeric()) {
		return sqlval.Null(), typeError("arithmetic on %s/%s", l.Kind(), r.Kind())
	}
	ln, rn := ev.numeric(l), ev.numeric(r)

	// Fault site (sqlite.text-int-subtract, Listing 2): TEXT minus a
	// wide integer is computed in floating point, losing precision.
	if op == sqlast.OpSub && ev.D == dialect.SQLite && ev.Faults.Has(faults.TextIntSubtract) {
		if l.Kind() == sqlval.KText && rn.Kind() == sqlval.KInt && wide53(rn.Int64()) {
			f := ln.AsFloat() - rn.AsFloat()
			if f == math.Trunc(f) && math.Abs(f) < 9.2e18 {
				return sqlval.Int(int64(f)), nil
			}
			return sqlval.Real(f), nil
		}
	}

	bothInt := ln.Kind() == sqlval.KInt && rn.Kind() == sqlval.KInt
	switch op {
	case sqlast.OpDiv:
		if ev.D == dialect.MySQL {
			if rn.AsFloat() == 0 {
				return sqlval.Null(), nil
			}
			return sqlval.Real(ln.AsFloat() / rn.AsFloat()), nil
		}
		if bothInt {
			if rn.Int64() == 0 {
				return ev.divZero()
			}
			return sqlval.Int(ln.Int64() / rn.Int64()), nil
		}
		if rn.AsFloat() == 0 {
			return ev.divZero()
		}
		return sqlval.Real(ln.AsFloat() / rn.AsFloat()), nil
	case sqlast.OpMod:
		li, ri := clampInt64(ln), clampInt64(rn)
		if ri == 0 {
			return ev.divZero()
		}
		if li == math.MinInt64 && ri == -1 {
			return sqlval.Int(0), nil
		}
		return sqlval.Int(li % ri), nil
	}

	if bothInt {
		a, b := ln.Int64(), rn.Int64()
		if res, ok := checkedInt(a, b, op); ok {
			return sqlval.Int(res), nil
		}
		if ev.D == dialect.Postgres {
			return sqlval.Null(), xerr.New(xerr.CodeRange, "integer out of range")
		}
	}
	var f float64
	switch op {
	case sqlast.OpAdd:
		f = ln.AsFloat() + rn.AsFloat()
	case sqlast.OpSub:
		f = ln.AsFloat() - rn.AsFloat()
	case sqlast.OpMul:
		f = ln.AsFloat() * rn.AsFloat()
	}
	if math.IsNaN(f) {
		return sqlval.Null(), nil
	}
	return sqlval.Real(f), nil
}

func wide53(i int64) bool {
	const limit = int64(1) << 53
	return i > limit || i < -limit
}

func (ev *Evaluator) divZero() (sqlval.Value, error) {
	if ev.D == dialect.Postgres {
		return sqlval.Null(), xerr.New(xerr.CodeRange, "division by zero")
	}
	return sqlval.Null(), nil
}

func checkedInt(a, b int64, op sqlast.BinOp) (int64, bool) {
	switch op {
	case sqlast.OpAdd:
		res := a + b
		if (b > 0 && res < a) || (b < 0 && res > a) {
			return 0, false
		}
		return res, true
	case sqlast.OpSub:
		res := a - b
		if (b < 0 && res < a) || (b > 0 && res > a) {
			return 0, false
		}
		return res, true
	case sqlast.OpMul:
		if a == 0 || b == 0 {
			return 0, true
		}
		res := a * b
		if res/a != b || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
			return 0, false
		}
		return res, true
	}
	return 0, false
}

func (ev *Evaluator) concat(l, r sqlval.Value) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null(), nil
	}
	if ev.D == dialect.Postgres {
		bad := func(v sqlval.Value) bool {
			return v.Kind() == sqlval.KBool || v.Kind() == sqlval.KBlob
		}
		if bad(l) || bad(r) {
			return sqlval.Null(), typeError("|| on %s/%s", l.Kind(), r.Kind())
		}
	}
	return sqlval.Text(textOf(l) + textOf(r)), nil
}

func (ev *Evaluator) bits(l, r sqlval.Value, op sqlast.BinOp) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null(), nil
	}
	if ev.D == dialect.Postgres && (l.Kind() != sqlval.KInt || r.Kind() != sqlval.KInt) {
		return sqlval.Null(), typeError("bitwise op on %s/%s", l.Kind(), r.Kind())
	}
	a, b := clampInt64(ev.numeric(l)), clampInt64(ev.numeric(r))
	switch op {
	case sqlast.OpBitAnd:
		return sqlval.Int(a & b), nil
	case sqlast.OpBitOr:
		return sqlval.Int(a | b), nil
	case sqlast.OpShl:
		return sqlval.Int(shift(a, b)), nil
	case sqlast.OpShr:
		return sqlval.Int(shift(a, -b)), nil
	}
	return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "bit operator")
}

func shift(a, by int64) int64 {
	switch {
	case by <= -64:
		if a < 0 {
			return -1
		}
		return 0
	case by < 0:
		return a >> uint(-by)
	case by >= 64:
		return 0
	default:
		return a << uint(by)
	}
}

func (ev *Evaluator) evalBetween(n *sqlast.Between, env Env) (sqlval.Value, error) {
	x, err := ev.Eval(n.X, env)
	if err != nil {
		return sqlval.Null(), err
	}
	lo, err := ev.Eval(n.Lo, env)
	if err != nil {
		return sqlval.Null(), err
	}
	hi, err := ev.Eval(n.Hi, env)
	if err != nil {
		return sqlval.Null(), err
	}
	coll := ev.comparisonCollation(n.X, n.Lo, env)
	ge, err := ev.compareOp(x, lo, sqlast.OpGe, coll)
	if err != nil {
		return sqlval.Null(), err
	}
	le, err := ev.compareOp(x, hi, sqlast.OpLe, coll)
	if err != nil {
		return sqlval.Null(), err
	}
	res := ge.And(le)
	if n.Not {
		res = res.Not()
	}
	return ev.boolVal(res), nil
}

func (ev *Evaluator) evalIn(n *sqlast.InList, env Env) (sqlval.Value, error) {
	x, err := ev.Eval(n.X, env)
	if err != nil {
		return sqlval.Null(), err
	}
	res := sqlval.TriFalse
	coll := ev.comparisonCollation(n.X, nil, env)
	for _, item := range n.List {
		v, err := ev.Eval(item, env)
		if err != nil {
			return sqlval.Null(), err
		}
		eq, err := ev.compareOp(x, v, sqlast.OpEq, coll)
		if err != nil {
			return sqlval.Null(), err
		}
		res = res.Or(eq)
	}
	if n.Not {
		res = res.Not()
	}
	return ev.boolVal(res), nil
}

func (ev *Evaluator) evalCase(n *sqlast.Case, env Env) (sqlval.Value, error) {
	for _, w := range n.Whens {
		var hit sqlval.TriBool
		if n.Operand != nil {
			op, err := ev.Eval(n.Operand, env)
			if err != nil {
				return sqlval.Null(), err
			}
			wv, err := ev.Eval(w.When, env)
			if err != nil {
				return sqlval.Null(), err
			}
			hit, err = ev.compareOp(op, wv, sqlast.OpEq, ev.comparisonCollation(n.Operand, w.When, env))
			if err != nil {
				return sqlval.Null(), err
			}
		} else {
			var err error
			hit, err = ev.EvalBool(w.When, env)
			if err != nil {
				return sqlval.Null(), err
			}
		}
		if hit == sqlval.TriTrue {
			return ev.Eval(w.Then, env)
		}
	}
	if n.Else != nil {
		return ev.Eval(n.Else, env)
	}
	return sqlval.Null(), nil
}

// Cast implements CAST for the dialect (engine side).
func (ev *Evaluator) Cast(x sqlval.Value, typeName string) (sqlval.Value, error) {
	if x.IsNull() {
		return sqlval.Null(), nil
	}
	t := strings.ToUpper(typeName)
	switch {
	case strings.Contains(t, "UNSIGNED"):
		n := ev.numeric(x)
		switch n.Kind() {
		case sqlval.KInt:
			return sqlval.Uint(uint64(n.Int64())), nil
		case sqlval.KUint:
			return n, nil
		default:
			return sqlval.Uint(uint64(int64(n.Float64()))), nil
		}
	case t == "SIGNED" || strings.Contains(t, "INT"):
		if ev.D == dialect.Postgres {
			if x.Kind() == sqlval.KText {
				v, ok := sqlval.TextToNumeric(strings.TrimSpace(x.Str()))
				if !ok {
					return sqlval.Null(), typeError("invalid input syntax for type integer: %q", x.Str())
				}
				return sqlval.Int(clampInt64(v)), nil
			}
			if x.Kind() == sqlval.KBool {
				return sqlval.Int(x.Int64()), nil
			}
		}
		return sqlval.Int(clampInt64(ev.numeric(x))), nil
	case strings.Contains(t, "CHAR") || strings.Contains(t, "TEXT") || strings.Contains(t, "CLOB"):
		return sqlval.Text(textOf(x)), nil
	case strings.Contains(t, "REAL") || strings.Contains(t, "FLOA") || strings.Contains(t, "DOUB"):
		n := ev.numeric(x)
		if n.IsNull() {
			return sqlval.Real(0), nil
		}
		return sqlval.Real(n.AsFloat()), nil
	case strings.Contains(t, "BLOB"):
		return sqlval.Blob([]byte(textOf(x))), nil
	case strings.Contains(t, "BOOL"):
		n := ev.numeric(x)
		var tb sqlval.TriBool
		if n.IsNull() {
			tb = sqlval.TriUnknown
		} else {
			tb = sqlval.TriOf(n.AsFloat() != 0)
		}
		if ev.D == dialect.Postgres {
			return tb.BoolValue(), nil
		}
		return tb.Value(), nil
	case strings.Contains(t, "NUMERIC") || strings.Contains(t, "DECIMAL"):
		return sqlval.ApplyAffinity(x, sqlval.AffNumeric), nil
	default:
		return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "cast to %s", typeName)
	}
}

func (ev *Evaluator) evalFunc(n *sqlast.FuncCall, env Env) (sqlval.Value, error) {
	args := make([]sqlval.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ev.Eval(a, env)
		if err != nil {
			return sqlval.Null(), err
		}
		args[i] = v
	}
	return ev.Scalar(n.Name, args)
}

// Scalar dispatches the scalar function library (engine side).
func (ev *Evaluator) Scalar(name string, args []sqlval.Value) (sqlval.Value, error) {
	up := strings.ToUpper(name)
	switch up {
	case "ABS":
		if len(args) != 1 {
			return sqlval.Null(), typeError("wrong number of arguments to ABS")
		}
		v := args[0]
		if v.IsNull() {
			return sqlval.Null(), nil
		}
		if ev.D == dialect.Postgres && !v.IsNumeric() {
			return sqlval.Null(), typeError("abs(%s)", v.Kind())
		}
		n := ev.numeric(v)
		switch n.Kind() {
		case sqlval.KInt:
			if n.Int64() == math.MinInt64 {
				return sqlval.Real(9.223372036854776e18), nil
			}
			if n.Int64() < 0 {
				return sqlval.Int(-n.Int64()), nil
			}
			return n, nil
		case sqlval.KUint:
			return n, nil
		default:
			return sqlval.Real(math.Abs(n.AsFloat())), nil
		}
	case "LENGTH":
		if len(args) != 1 {
			return sqlval.Null(), typeError("wrong number of arguments to LENGTH")
		}
		if args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Int(int64(len(textOf(args[0])))), nil
	case "LOWER":
		if len(args) != 1 || args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Text(strings.ToLower(textOf(args[0]))), nil
	case "UPPER":
		if len(args) != 1 || args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Text(strings.ToUpper(textOf(args[0]))), nil
	case "TYPEOF":
		if ev.D != dialect.SQLite || len(args) != 1 {
			return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "no such function: TYPEOF")
		}
		return sqlval.Text(args[0].Kind().String()), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqlval.Null(), nil
	case "IFNULL":
		if len(args) != 2 {
			return sqlval.Null(), typeError("wrong number of arguments to IFNULL")
		}
		if !args[0].IsNull() {
			return args[0], nil
		}
		return args[1], nil
	case "NULLIF":
		if len(args) != 2 {
			return sqlval.Null(), typeError("wrong number of arguments to NULLIF")
		}
		eq, err := ev.nullSafeEq(args[0], args[1], sqlval.CollBinary)
		if err != nil {
			return sqlval.Null(), err
		}
		if eq && !args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return args[0], nil
	case "MIN", "MAX":
		if len(args) < 2 {
			return sqlval.Null(), typeError("scalar %s needs at least 2 arguments", up)
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return sqlval.Null(), nil
			}
			c, err := ev.order(a, best, sqlval.CollBinary)
			if err != nil {
				return sqlval.Null(), err
			}
			if (up == "MIN" && c < 0) || (up == "MAX" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "CONCAT":
		if ev.D != dialect.MySQL {
			return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "no such function: CONCAT")
		}
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return sqlval.Null(), nil
			}
			sb.WriteString(textOf(a))
		}
		return sqlval.Text(sb.String()), nil
	default:
		return sqlval.Null(), xerr.New(xerr.CodeUnsupported, "no such function: %s", name)
	}
}
