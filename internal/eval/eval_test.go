package eval

import (
	"math/rand"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/interp"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// mapEnv is a test Env over fixed columns.
type mapEnv struct {
	vals map[string]sqlval.Value
	meta map[string]Meta
}

func (m *mapEnv) key(table, col string) (string, bool) {
	if table != "" {
		k := table + "." + col
		_, ok := m.vals[k]
		return k, ok
	}
	found, n := "", 0
	for k := range m.vals {
		if len(k) > len(col) && k[len(k)-len(col)-1] == '.' && k[len(k)-len(col):] == col {
			found = k
			n++
		}
	}
	return found, n == 1
}

func (m *mapEnv) ColumnValue(table, col string) (sqlval.Value, bool) {
	k, ok := m.key(table, col)
	if !ok {
		return sqlval.Null(), false
	}
	return m.vals[k], true
}

func (m *mapEnv) ColumnMeta(table, col string) (Meta, bool) {
	k, ok := m.key(table, col)
	if !ok {
		return Meta{}, false
	}
	return m.meta[k], true
}

func evalConst(t *testing.T, src string, d dialect.Dialect) (sqlval.Value, error) {
	t.Helper()
	e, err := sqlparse.ParseExpr(src, d)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return New(d).Eval(e, EmptyEnv{})
}

func TestEngineBasics(t *testing.T) {
	cases := []struct {
		src  string
		d    dialect.Dialect
		want sqlval.Value
	}{
		{"NULL IS NOT 1", dialect.SQLite, sqlval.Int(1)},
		{"'' - 2851427734582196970", dialect.SQLite, sqlval.Int(-2851427734582196970)},
		{"NOT (NOT 123)", dialect.MySQL, sqlval.Int(1)},
		{"'0.5' = 0.5", dialect.MySQL, sqlval.Int(1)},
		{"'1' = 1", dialect.SQLite, sqlval.Int(0)},
		{"'abc' LIKE 'A%'", dialect.SQLite, sqlval.Int(1)},
		{"7 / 2", dialect.MySQL, sqlval.Real(3.5)},
		{"7 / 2", dialect.SQLite, sqlval.Int(3)},
		{"NULL <=> NULL", dialect.MySQL, sqlval.Int(1)},
		{"'a' || 'b'", dialect.SQLite, sqlval.Text("ab")},
	}
	for _, c := range cases {
		got, err := evalConst(t, c.src, c.d)
		if err != nil {
			t.Errorf("%s [%s]: %v", c.src, c.d, err)
			continue
		}
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%s [%s] = %v (%v), want %v", c.src, c.d, got, got.Kind(), c.want)
		}
	}
}

func TestPostgresTypeErrors(t *testing.T) {
	for _, src := range []string{"1 AND 0", "'a' = 1", "NOT 3", "1 / 0"} {
		_, err := evalConst(t, src, dialect.Postgres)
		if err == nil {
			t.Errorf("%s should error in postgres", src)
			continue
		}
		if code, ok := xerr.CodeOf(err); !ok || (code != xerr.CodeType && code != xerr.CodeRange) {
			t.Errorf("%s: wrong error %v", src, err)
		}
	}
}

// Fault-injection behaviour tests: each evaluator-level fault must change
// the result of its trigger expression and leave other expressions alone.

func TestFaultDoubleNegation(t *testing.T) {
	e, _ := sqlparse.ParseExpr("123 != (NOT (NOT 123))", dialect.MySQL)
	good := &Evaluator{D: dialect.MySQL}
	bad := &Evaluator{D: dialect.MySQL, Faults: faults.NewSet(faults.DoubleNegation)}
	gv, err1 := good.Eval(e, EmptyEnv{})
	bv, err2 := bad.Eval(e, EmptyEnv{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !gv.Equal(sqlval.Int(1)) {
		t.Errorf("correct engine: %v, want TRUE (row fetched)", gv)
	}
	if !bv.Equal(sqlval.Int(0)) {
		t.Errorf("faulty engine: %v, want FALSE (Listing 13: row not fetched)", bv)
	}
}

func TestFaultTextIntSubtract(t *testing.T) {
	e, _ := sqlparse.ParseExpr("'' - 2851427734582196970", dialect.SQLite)
	bad := &Evaluator{D: dialect.SQLite, Faults: faults.NewSet(faults.TextIntSubtract)}
	bv, err := bad.Eval(e, EmptyEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if bv.Equal(sqlval.Int(-2851427734582196970)) {
		t.Errorf("fault should lose precision, got exact %v", bv)
	}
	// Listing 2's observed wrong answer.
	if !bv.Equal(sqlval.Int(-2851427734582196736)) {
		t.Errorf("fault result %v, want Listing 2's -2851427734582196736", bv)
	}
}

func TestFaultTextDoubleBool(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Text("0.5")},
		meta: map[string]Meta{"t0.c0": {TypeName: "TEXT"}},
	}
	e, _ := sqlparse.ParseExpr("t0.c0", dialect.MySQL)
	good := &Evaluator{D: dialect.MySQL}
	bad := &Evaluator{D: dialect.MySQL, Faults: faults.NewSet(faults.TextDoubleBool)}
	gt, _ := good.EvalBool(e, env)
	bt, _ := bad.EvalBool(e, env)
	if gt != sqlval.TriTrue || bt != sqlval.TriFalse {
		t.Errorf("truthiness good=%v bad=%v, want TRUE/FALSE", gt, bt)
	}
}

func TestFaultNullSafeEqRange(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Null()},
		meta: map[string]Meta{"t0.c0": {TypeName: "TINYINT"}},
	}
	good := &Evaluator{D: dialect.MySQL}
	bad := &Evaluator{D: dialect.MySQL, Faults: faults.NewSet(faults.NullSafeEqRange)}

	// Listing 12's inner comparison: c0 <=> <out-of-range> with c0 NULL is
	// correctly FALSE; the faulty engine loses null-safety and says TRUE.
	inner, _ := sqlparse.ParseExpr("t0.c0 <=> 2035382037", dialect.MySQL)
	if gi, _ := good.Eval(inner, env); !gi.Equal(sqlval.Int(0)) {
		t.Errorf("correct inner = %v, want FALSE", gi)
	}
	if bi, _ := bad.Eval(inner, env); !bi.Equal(sqlval.Int(1)) {
		t.Errorf("faulty inner = %v, want TRUE (Listing 12)", bi)
	}

	// So the full Listing 12 predicate stops fetching the row.
	e, _ := sqlparse.ParseExpr("NOT (t0.c0 <=> 2035382037)", dialect.MySQL)
	if gv, _ := good.Eval(e, env); !gv.Equal(sqlval.Int(1)) {
		t.Errorf("correct: %v, want TRUE (row fetched)", gv)
	}
	if bv, _ := bad.Eval(e, env); !bv.Equal(sqlval.Int(0)) {
		t.Errorf("faulty: %v, want FALSE (row not fetched)", bv)
	}

	// In-range constants are untouched by the fault.
	env2 := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Int(117)},
		meta: map[string]Meta{"t0.c0": {TypeName: "TINYINT"}},
	}
	eq, _ := sqlparse.ParseExpr("t0.c0 <=> 117", dialect.MySQL)
	if v, _ := good.Eval(eq, env2); !v.Equal(sqlval.Int(1)) {
		t.Errorf("in-range <=> should be TRUE, got %v", v)
	}
	if v, _ := bad.Eval(eq, env2); !v.Equal(sqlval.Int(1)) {
		t.Errorf("fault must not fire for in-range constants, got %v", v)
	}
}

func TestFaultUnsignedCompare(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Uint(5)},
		meta: map[string]Meta{"t0.c0": {Unsigned: true, TypeName: "INT UNSIGNED"}},
	}
	e, _ := sqlparse.ParseExpr("t0.c0 > -1", dialect.MySQL)
	good := &Evaluator{D: dialect.MySQL}
	bad := &Evaluator{D: dialect.MySQL, Faults: faults.NewSet(faults.UnsignedCompare)}
	gv, _ := good.Eval(e, env)
	bv, _ := bad.Eval(e, env)
	if !gv.Equal(sqlval.Int(1)) || !bv.Equal(sqlval.Int(0)) {
		t.Errorf("unsigned compare good=%v bad=%v, want 1/0", gv, bv)
	}
}

func TestFaultLikeAffinityOpt(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Text("./")},
		meta: map[string]Meta{"t0.c0": {Affinity: sqlval.AffInteger, Coll: sqlval.CollNoCase}},
	}
	e, _ := sqlparse.ParseExpr("t0.c0 LIKE './'", dialect.SQLite)
	good := &Evaluator{D: dialect.SQLite}
	bad := &Evaluator{D: dialect.SQLite, Faults: faults.NewSet(faults.LikeAffinityOpt)}
	gv, _ := good.Eval(e, env)
	bv, _ := bad.Eval(e, env)
	if !gv.Equal(sqlval.Int(1)) || !bv.Equal(sqlval.Int(0)) {
		t.Errorf("Listing 7 good=%v bad=%v, want 1/0", gv, bv)
	}
}

func TestFaultIsNotNullOpt(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Null()},
		meta: map[string]Meta{"t0.c0": {}},
	}
	e, _ := sqlparse.ParseExpr("NOT (t0.c0 IS NULL)", dialect.SQLite)
	good := &Evaluator{D: dialect.SQLite}
	bad := &Evaluator{D: dialect.SQLite, Faults: faults.NewSet(faults.IsNotNullOpt)}
	gv, _ := good.Eval(e, env)
	bv, _ := bad.Eval(e, env)
	if !gv.Equal(sqlval.Int(0)) || !bv.Equal(sqlval.Int(1)) {
		t.Errorf("is-not-null opt good=%v bad=%v, want 0/1", gv, bv)
	}
}

func TestFaultAffinityCompare(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t0.c0": sqlval.Int(5)},
		meta: map[string]Meta{"t0.c0": {Affinity: sqlval.AffInteger}},
	}
	e, _ := sqlparse.ParseExpr("t0.c0 = '5'", dialect.SQLite)
	good := &Evaluator{D: dialect.SQLite}
	bad := &Evaluator{D: dialect.SQLite, Faults: faults.NewSet(faults.AffinityCompare)}
	gv, _ := good.Eval(e, env)
	bv, _ := bad.Eval(e, env)
	if !gv.Equal(sqlval.Int(0)) || !bv.Equal(sqlval.Int(1)) {
		t.Errorf("affinity compare good=%v bad=%v, want 0/1", gv, bv)
	}
}

func TestFaultMemoryEngineCast(t *testing.T) {
	env := &mapEnv{
		vals: map[string]sqlval.Value{"t1.c0": sqlval.Int(-1), "t0.c0": sqlval.Int(0)},
		meta: map[string]Meta{
			"t1.c0": {TableEngine: "MEMORY", TypeName: "INT"},
			"t0.c0": {TypeName: "INT"},
		},
	}
	e, _ := sqlparse.ParseExpr("(CAST(t1.c0 AS UNSIGNED)) > (IFNULL('u', t0.c0))", dialect.MySQL)
	good := &Evaluator{D: dialect.MySQL}
	bad := &Evaluator{D: dialect.MySQL, Faults: faults.NewSet(faults.MemoryEngineCast)}
	gv, err := good.Eval(e, env)
	if err != nil {
		t.Fatal(err)
	}
	bv, _ := bad.Eval(e, env)
	// CAST(-1 AS UNSIGNED) = 2^64-1 > 'u'→0, so correct is TRUE.
	if !gv.Equal(sqlval.Int(1)) || !bv.Equal(sqlval.Int(0)) {
		t.Errorf("Listing 11 good=%v bad=%v, want 1/0", gv, bv)
	}
}

// randomExpr builds a random constant-or-column expression for the
// differential test.
func randomExpr(rng *rand.Rand, d dialect.Dialect, depth int) sqlast.Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(6) {
		case 0:
			return sqlast.Lit(sqlval.Null())
		case 1:
			return sqlast.Lit(sqlval.Int(rng.Int63n(200) - 100))
		case 2:
			return sqlast.Lit(sqlval.Real(float64(rng.Int63n(100)) / 4))
		case 3:
			return sqlast.Lit(sqlval.Text([]string{"", "a", "A", "0.5", "12abc", "./", "x y"}[rng.Intn(7)]))
		case 4:
			if d == dialect.Postgres {
				return sqlast.Lit(sqlval.Bool(rng.Intn(2) == 0))
			}
			return sqlast.Lit(sqlval.Int(int64(rng.Intn(2))))
		default:
			return sqlast.Col("t0", []string{"c0", "c1"}[rng.Intn(2)])
		}
	}
	if d == dialect.Postgres {
		// Keep postgres expressions boolean-rooted and well-typed:
		// comparisons over numeric literals / columns.
		switch rng.Intn(4) {
		case 0:
			return sqlast.Not(randomExpr(rng, d, depth-1))
		case 1:
			op := []sqlast.BinOp{sqlast.OpAnd, sqlast.OpOr}[rng.Intn(2)]
			return &sqlast.Binary{Op: op, L: randomExpr(rng, d, depth-1), R: randomExpr(rng, d, depth-1)}
		case 2:
			op := []sqlast.BinOp{sqlast.OpEq, sqlast.OpLt, sqlast.OpGe}[rng.Intn(3)]
			n := rng.Int63n(100)
			return &sqlast.Binary{Op: op, L: sqlast.Lit(sqlval.Int(n)), R: sqlast.Lit(sqlval.Int(rng.Int63n(100)))}
		default:
			return &sqlast.Unary{Op: sqlast.OpIsNull, X: randomExpr(rng, d, depth-1)}
		}
	}
	switch rng.Intn(10) {
	case 0:
		return sqlast.Not(randomExpr(rng, d, depth-1))
	case 1:
		return &sqlast.Unary{Op: sqlast.OpNeg, X: randomExpr(rng, d, depth-1)}
	case 2:
		ops := []sqlast.BinOp{sqlast.OpAnd, sqlast.OpOr}
		return &sqlast.Binary{Op: ops[rng.Intn(2)], L: randomExpr(rng, d, depth-1), R: randomExpr(rng, d, depth-1)}
	case 3:
		ops := []sqlast.BinOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
		return &sqlast.Binary{Op: ops[rng.Intn(6)], L: randomExpr(rng, d, depth-1), R: randomExpr(rng, d, depth-1)}
	case 4:
		ops := []sqlast.BinOp{sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod}
		return &sqlast.Binary{Op: ops[rng.Intn(5)], L: randomExpr(rng, d, depth-1), R: randomExpr(rng, d, depth-1)}
	case 5:
		if d == dialect.MySQL {
			return &sqlast.Binary{Op: sqlast.OpNullSafeEq, L: randomExpr(rng, d, depth-1), R: randomExpr(rng, d, depth-1)}
		}
		return &sqlast.Binary{Op: sqlast.OpIsNot, L: randomExpr(rng, d, depth-1), R: randomExpr(rng, d, depth-1)}
	case 6:
		return &sqlast.Between{Not: rng.Intn(2) == 0, X: randomExpr(rng, d, depth-1), Lo: randomExpr(rng, d, depth-1), Hi: randomExpr(rng, d, depth-1)}
	case 7:
		return &sqlast.InList{X: randomExpr(rng, d, depth-1), List: []sqlast.Expr{randomExpr(rng, d, depth-1), randomExpr(rng, d, depth-1)}}
	case 8:
		return &sqlast.Unary{Op: sqlast.OpIsNull, X: randomExpr(rng, d, depth-1)}
	default:
		return &sqlast.Binary{Op: sqlast.OpLike, L: randomExpr(rng, d, depth-1), R: sqlast.Lit(sqlval.Text([]string{"a%", "_", "%", "./"}[rng.Intn(4)]))}
	}
}

// TestDifferentialEvalVsInterp is the backbone correctness test: with no
// faults enabled, the engine evaluator and the oracle interpreter must
// agree on every expression. A disagreement here would be a false positive
// in a PQS campaign.
func TestDifferentialEvalVsInterp(t *testing.T) {
	pivots := []sqlval.Value{
		sqlval.Null(), sqlval.Int(0), sqlval.Int(-3), sqlval.Int(127),
		sqlval.Real(0.5), sqlval.Text("a"), sqlval.Text("12abc"), sqlval.Text(""),
	}
	for _, d := range dialect.All {
		rng := rand.New(rand.NewSource(42))
		for iter := 0; iter < 3000; iter++ {
			v0 := pivots[rng.Intn(len(pivots))]
			v1 := pivots[rng.Intn(len(pivots))]
			if d == dialect.Postgres {
				v1 = sqlval.Bool(rng.Intn(2) == 0) // pg columns typed bool for c1
				if rng.Intn(4) == 0 {
					v1 = sqlval.Null()
				}
			}
			env := &mapEnv{
				vals: map[string]sqlval.Value{"t0.c0": v0, "t0.c1": v1},
				meta: map[string]Meta{"t0.c0": {}, "t0.c1": {}},
			}
			ctx := interp.NewContext(d)
			ctx.Bind("t0", "c0", interp.ColInfo{Val: v0})
			ctx.Bind("t0", "c1", interp.ColInfo{Val: v1})

			e := randomExpr(rng, d, 3)
			engineV, engineErr := New(d).Eval(e, env)
			oracleV, oracleErr := interp.Eval(e, ctx)
			if (engineErr == nil) != (oracleErr == nil) {
				t.Fatalf("[%s] error mismatch on %s: engine=%v oracle=%v",
					d, sqlast.ExprSQL(e, d), engineErr, oracleErr)
			}
			if engineErr != nil {
				continue
			}
			if engineV.Kind() != oracleV.Kind() || !engineV.Equal(oracleV) {
				t.Fatalf("[%s] value mismatch on %s (c0=%v c1=%v): engine=%v(%v) oracle=%v(%v)",
					d, sqlast.ExprSQL(e, d), v0, v1, engineV, engineV.Kind(), oracleV, oracleV.Kind())
			}
		}
	}
}
