package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/dialect"
	"repro/internal/interp"
	"repro/internal/sqlval"
)

// Property: the engine's numeric-prefix scanner (prefixNumber) and the
// oracle's (interp.NumericPrefix) are independent implementations of the
// same specification; they must agree on arbitrary input — any divergence
// is a future false positive in a campaign.
func TestNumericPrefixImplsAgreeQuick(t *testing.T) {
	f := func(s string) bool {
		a := prefixNumber(s)
		b := interp.NumericPrefix(s)
		return a.Kind() == b.Kind() && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// Adversarial corpus beyond quick's generator: numeric shapes.
	corpus := []string{
		"", " ", "-", "+", ".", "..", "-.", "1.", ".5", "-.5e2", "1e", "1e+",
		"1e+5x", "0x10", "  12ab", "9223372036854775807", "9223372036854775808",
		"-9223372036854775808", "-9223372036854775809", "1.7976931348623157e308",
		"1e999", "00012", "+-3", "1..2", "1.2.3", "\t-42\n",
	}
	for _, s := range corpus {
		a, b := prefixNumber(s), interp.NumericPrefix(s)
		if a.Kind() != b.Kind() || !a.Equal(b) {
			t.Errorf("prefix impls disagree on %q: engine=%v(%v) oracle=%v(%v)",
				s, a, a.Kind(), b, b.Kind())
		}
	}
}

// Property: the two LIKE matchers (iterative engine vs recursive oracle)
// agree on arbitrary string/pattern pairs over the wildcard alphabet.
func TestLikeMatchersAgreeQuick(t *testing.T) {
	alphabet := []byte("ab%_")
	decode := func(bits uint32, n int) string {
		out := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, alphabet[(bits>>(2*i))&3])
		}
		return string(out)
	}
	f := func(sBits, pBits uint32, sn, pn uint8) bool {
		s := decode(sBits, int(sn%8))
		p := decode(pBits, int(pn%8))
		return matchLike(s, p, false) == interp.LikeMatch(s, p, false) &&
			matchLike(s, p, true) == interp.LikeMatch(s, p, true)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: engine casts and oracle casts agree for every kind/type pair.
func TestCastImplsAgree(t *testing.T) {
	vals := []sqlval.Value{
		sqlval.Null(), sqlval.Int(0), sqlval.Int(-7), sqlval.Int(1 << 62),
		sqlval.Real(2.9), sqlval.Real(-0.5), sqlval.Text(""), sqlval.Text("12abc"),
		sqlval.Text("abc"), sqlval.Blob([]byte{0x30}), sqlval.Bool(true),
	}
	types := []string{"INTEGER", "TEXT", "REAL", "BLOB", "NUMERIC", "UNSIGNED", "SIGNED", "BOOLEAN"}
	for _, d := range allDialects() {
		ev := New(d)
		for _, v := range vals {
			for _, ty := range types {
				a, errA := ev.Cast(v, ty)
				b, errB := interp.EvalCast(v, ty, d)
				if (errA == nil) != (errB == nil) {
					t.Errorf("[%s] CAST(%v AS %s) error mismatch: %v vs %v", d, v, ty, errA, errB)
					continue
				}
				if errA == nil && (a.Kind() != b.Kind() || !a.Equal(b)) {
					t.Errorf("[%s] CAST(%v AS %s): engine=%v(%v) oracle=%v(%v)",
						d, v, ty, a, a.Kind(), b, b.Kind())
				}
			}
		}
	}
}

func allDialects() []dialect.Dialect { return dialect.All }
