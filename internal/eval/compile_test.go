package eval_test

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

func sqliteWorld() *diffWorld {
	w, _ := diffWorldFor(dialect.SQLite)
	return w
}

func TestCompileSlotBinding(t *testing.T) {
	w := sqliteWorld()
	w.rows[0][0] = sqlval.Int(7)
	w.rows[1][3] = sqlval.Int(42)
	ev := eval.New(dialect.SQLite)

	// Qualified and unqualified references bind to fixed slots.
	prog, err := ev.Compile(&sqlast.Binary{
		Op: sqlast.OpAdd,
		L:  sqlast.Col("t0", "c0"),
		R:  sqlast.Col("t1", "dup"),
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(&eval.Frame{Rows: w.rows})
	if err != nil || v.Int64() != 49 {
		t.Fatalf("got %v, %v; want 49", v, err)
	}

	// A nil frame row is the NULL-extended outer-join side.
	v, err = prog.Eval(&eval.Frame{Rows: [][]sqlval.Value{nil, w.rows[1]}})
	if err != nil || !v.IsNull() {
		t.Fatalf("NULL-extended side: got %v, %v; want NULL", v, err)
	}
}

func TestCompileBindErrors(t *testing.T) {
	w := sqliteWorld()
	ev := eval.New(dialect.SQLite)

	// Missing column: surfaced at compile time, once.
	if _, err := ev.Compile(sqlast.Col("t0", "nope"), w); err == nil ||
		!strings.Contains(err.Error(), "no such column: t0.nope") {
		t.Fatalf("missing column: err = %v", err)
	}

	// Ambiguous unqualified column: the distinct diagnostic, not the
	// missing-column one.
	_, err := ev.Compile(&sqlast.ColumnRef{Column: "dup"}, w)
	if !eval.IsAmbiguousColumn(err) {
		t.Fatalf("ambiguous column: err = %v, want ambiguous diagnostic", err)
	}
	if !strings.Contains(err.Error(), "ambiguous column name: dup") {
		t.Fatalf("ambiguous column message = %q", err.Error())
	}

	// The tree-walk fallback reports the same distinction at lookup time
	// through the ResolveErrEnv extension.
	_, err = ev.Eval(&sqlast.ColumnRef{Column: "dup"}, w)
	if !eval.IsAmbiguousColumn(err) {
		t.Fatalf("tree-walk ambiguous column: err = %v", err)
	}
	_, err = ev.Eval(sqlast.Col("t0", "nope"), w)
	if err == nil || !strings.Contains(err.Error(), "no such column") {
		t.Fatalf("tree-walk missing column: err = %v", err)
	}
}

func TestCompileMaybeStringDemotion(t *testing.T) {
	w := sqliteWorld()
	ev := eval.New(dialect.SQLite)

	// An unresolvable double-quoted token demotes to a string constant in
	// the SQLite dialect — same value the interpreter produces.
	prog, err := ev.Compile(&sqlast.ColumnRef{Column: "ghost", MaybeString: true}, w)
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(&eval.Frame{Rows: w.rows})
	if err != nil || v.Kind() != sqlval.KText || v.Str() != "ghost" {
		t.Fatalf("got %v, %v; want TEXT 'ghost'", v, err)
	}

	// An ambiguous double-quoted token is an identifier error, not a
	// string, in both paths.
	if _, err := ev.Compile(&sqlast.ColumnRef{Column: "dup", MaybeString: true}, w); !eval.IsAmbiguousColumn(err) {
		t.Fatalf("compiled ambiguous MaybeString: err = %v", err)
	}
	if _, err := ev.Eval(&sqlast.ColumnRef{Column: "dup", MaybeString: true}, w); !eval.IsAmbiguousColumn(err) {
		t.Fatalf("tree-walk ambiguous MaybeString: err = %v", err)
	}

	// Outside SQLite the unresolvable token stays a missing column.
	if _, err := eval.New(dialect.Postgres).Compile(&sqlast.ColumnRef{Column: "ghost", MaybeString: true}, w); err == nil {
		t.Fatal("postgres MaybeString should not demote to string")
	}
}

// countingLayout wraps a layout and counts Resolve calls, proving folded
// and slot-bound programs never resolve at evaluation time.
type countingLayout struct {
	eval.Layout
	calls int
}

func (c *countingLayout) Resolve(table, column string) (eval.Slot, eval.Meta, error) {
	c.calls++
	return c.Layout.Resolve(table, column)
}

func TestCompileConstantFolding(t *testing.T) {
	w := sqliteWorld()
	ev := eval.New(dialect.SQLite)
	cl := &countingLayout{Layout: w}

	// (1+2)*3 = 9 folds to a constant; no resolution, and evaluation
	// cannot touch the layout.
	prog, err := ev.Compile(&sqlast.Binary{
		Op: sqlast.OpMul,
		L:  &sqlast.Binary{Op: sqlast.OpAdd, L: sqlast.Lit(sqlval.Int(1)), R: sqlast.Lit(sqlval.Int(2))},
		R:  sqlast.Lit(sqlval.Int(3)),
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(&eval.Frame{})
	if err != nil || v.Int64() != 9 {
		t.Fatalf("got %v, %v; want 9", v, err)
	}
	if cl.calls != 0 {
		t.Fatalf("constant expression resolved %d columns", cl.calls)
	}

	// A constant subtree that errors must stay lazy: inside a never-taken
	// CASE arm the interpreter raises nothing, so neither may the program.
	pg := eval.New(dialect.Postgres)
	divZero := &sqlast.Binary{Op: sqlast.OpDiv, L: sqlast.Lit(sqlval.Int(1)), R: sqlast.Lit(sqlval.Int(0))}
	caseExpr := &sqlast.Case{
		Whens: []sqlast.WhenClause{{When: sqlast.Lit(sqlval.Bool(true)), Then: sqlast.Lit(sqlval.Int(5))}},
		Else:  divZero,
	}
	prog, err = pg.Compile(caseExpr, w)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := prog.Eval(&eval.Frame{Rows: w.rows}); err != nil || v.Int64() != 5 {
		t.Fatalf("lazy error arm: got %v, %v; want 5", v, err)
	}
	// And when the arm is taken, the error fires like the interpreter's.
	prog, err = pg.Compile(divZero, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Eval(&eval.Frame{Rows: w.rows}); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("taken error arm: err = %v", err)
	}
}

func TestCompileCaseSensitiveLikeIsRuntime(t *testing.T) {
	// LIKE must read the pragma at evaluation time, not bake it in at
	// compile time (the engine flips it via PRAGMA between statements
	// while cached programs survive).
	w := sqliteWorld()
	ev := eval.New(dialect.SQLite)
	like := &sqlast.Binary{Op: sqlast.OpLike, L: sqlast.Lit(sqlval.Text("ABC")), R: sqlast.Lit(sqlval.Text("abc"))}
	prog, err := ev.Compile(like, w)
	if err != nil {
		t.Fatal(err)
	}
	f := &eval.Frame{Rows: w.rows}
	if tb, _ := prog.EvalBool(f); tb != sqlval.TriTrue {
		t.Fatalf("case-insensitive LIKE = %v, want TRUE", tb)
	}
	ev.CaseSensitiveLike = true
	if tb, _ := prog.EvalBool(f); tb != sqlval.TriFalse {
		t.Fatalf("case-sensitive LIKE = %v, want FALSE", tb)
	}
}

func TestCompileWrappedMatchesFullCompile(t *testing.T) {
	for _, d := range dialect.All {
		for _, fs := range []*faults.Set{nil, faults.NewSet(faults.DoubleNegation), faults.NewSet(faults.IsNotNullOpt)} {
			w, _ := diffWorldFor(d)
			ev := &eval.Evaluator{D: d, Faults: fs}
			f := &eval.Frame{Rows: w.rows}
			for i := range w.rows[0] {
				w.rows[0][i] = sqlval.Int(int64(i - 1))
				w.rows[1][i] = sqlval.Null()
			}
			inners := []sqlast.Expr{
				sqlast.Col("t0", "c0"),
				sqlast.Not(sqlast.Col("t0", "c0")), // NOT-over-NOT shape under the wrapper
				sqlast.IsNullExpr(sqlast.Col("t1", "c3")),
				&sqlast.Binary{Op: sqlast.OpEq, L: sqlast.Col("t0", "c0"), R: sqlast.Lit(sqlval.Int(-1))},
			}
			for _, inner := range inners {
				innerProg, err := ev.Compile(inner, w)
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range []sqlast.UnaryOp{sqlast.OpNot, sqlast.OpIsNull, sqlast.OpNotNull} {
					wrapper := &sqlast.Unary{Op: op, X: inner}
					wrapped, err := ev.CompileWrapped(wrapper, innerProg, w)
					if err != nil {
						t.Fatal(err)
					}
					full, err := ev.Compile(wrapper, w)
					if err != nil {
						t.Fatal(err)
					}
					wv, werr := wrapped.Eval(f)
					fv, ferr := full.Eval(f)
					if describeOutcome(wv, werr) != describeOutcome(fv, ferr) {
						t.Fatalf("%s/%v op %d: wrapped %s != full %s",
							d, fs.List(), op, describeOutcome(wv, werr), describeOutcome(fv, ferr))
					}
				}
			}
		}
	}
}
