package schema

import (
	"testing"

	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

func table(name string, cols ...Column) *Table {
	return &Table{Name: name, Columns: cols}
}

func TestCatalogTables(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTable(table("t0", Column{Name: "c0"})); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(table("T0")); err == nil {
		t.Error("duplicate (case-insensitive) table should fail")
	}
	if _, ok := c.Table("t0"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := c.Table("T0"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if got := c.TableNames(); len(got) != 1 || got[0] != "t0" {
		t.Errorf("TableNames = %v", got)
	}
}

func TestCatalogDropAndRename(t *testing.T) {
	c := NewCatalog()
	_ = c.AddTable(table("t0", Column{Name: "c0"}))
	_ = c.AddIndex(&Index{Name: "i0", Table: "t0"})
	if err := c.RenameTable("t0", "t9"); err != nil {
		t.Fatal(err)
	}
	ix, _ := c.Index("i0")
	if ix.Table != "t9" {
		t.Errorf("index table not rewritten: %s", ix.Table)
	}
	if err := c.DropTable("t9"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("i0"); ok {
		t.Error("dropping a table must drop its indexes")
	}
	if err := c.DropTable("t9"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestCatalogInheritance(t *testing.T) {
	c := NewCatalog()
	parent := table("t0", Column{Name: "c0"})
	child := table("t1", Column{Name: "c0"})
	child.Parent = "t0"
	_ = c.AddTable(parent)
	_ = c.AddTable(child)
	parent.Children = []string{"t1"}

	leaves := c.InheritanceLeaves(parent)
	if len(leaves) != 2 || leaves[0].Name != "t0" || leaves[1].Name != "t1" {
		t.Errorf("leaves = %v", leaves)
	}
	if err := c.DropTable("t0"); err == nil {
		t.Error("dropping a parent with children should fail")
	}
	if err := c.DropTable("t1"); err != nil {
		t.Fatal(err)
	}
	if len(parent.Children) != 0 {
		t.Error("child drop should detach from parent")
	}
	if err := c.DropTable("t0"); err != nil {
		t.Error("parent drop after child removal should succeed")
	}
}

func TestColumnHelpers(t *testing.T) {
	tb := table("t0",
		Column{Name: "c0", PK: true},
		Column{Name: "c1"},
		Column{Name: "c2", PK: true},
	)
	if tb.ColumnIndex("C1") != 1 {
		t.Error("case-insensitive column lookup failed")
	}
	if tb.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if pks := tb.PKColumns(); len(pks) != 2 || pks[0] != 0 || pks[1] != 2 {
		t.Errorf("PKColumns = %v", pks)
	}
}

func TestIndexesOnSorted(t *testing.T) {
	c := NewCatalog()
	_ = c.AddTable(table("t0", Column{Name: "c0"}))
	_ = c.AddIndex(&Index{Name: "i2", Table: "t0"})
	_ = c.AddIndex(&Index{Name: "i1", Table: "t0"})
	if err := c.AddIndex(&Index{Name: "i1", Table: "t0"}); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := c.AddIndex(&Index{Name: "i3", Table: "missing"}); err == nil {
		t.Error("index on missing table should fail")
	}
	got := c.IndexesOn("t0")
	if len(got) != 2 || got[0].Name != "i1" || got[1].Name != "i2" {
		t.Errorf("IndexesOn order: %v", got)
	}
	if names := c.IndexNames(); len(names) != 2 || names[0] != "i1" {
		t.Errorf("IndexNames = %v", names)
	}
	if err := c.DropIndex("i1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("i1"); err == nil {
		t.Error("double index drop should fail")
	}
}

func TestDescribe(t *testing.T) {
	tb := table("t0",
		Column{Name: "c0", TypeName: "INT", Affinity: sqlval.AffInteger, PK: true, NotNull: true},
		Column{Name: "c1", Collate: sqlval.CollNoCase, Unsigned: true},
	)
	tb.WithoutRowid = true
	tb.Engine = "MEMORY"
	info := Describe(tb)
	if !info.WithoutRowid || info.Engine != "MEMORY" || len(info.Columns) != 2 {
		t.Errorf("describe: %+v", info)
	}
	if info.Columns[0].Affinity != "INTEGER" || !info.Columns[0].PK || !info.Columns[0].NotNull {
		t.Errorf("col0: %+v", info.Columns[0])
	}
	if info.Columns[1].Collate != "NOCASE" || !info.Columns[1].Unsigned {
		t.Errorf("col1: %+v", info.Columns[1])
	}
}

func TestViewNames(t *testing.T) {
	c := NewCatalog()
	v := &Table{Name: "v0", IsView: true, ViewDef: &sqlast.Select{}}
	_ = c.AddTable(v)
	_ = c.AddTable(table("t0"))
	if got := c.ViewNames(); len(got) != 1 || got[0] != "v0" {
		t.Errorf("ViewNames = %v", got)
	}
	if got := c.TableNames(); len(got) != 1 || got[0] != "t0" {
		t.Errorf("TableNames should exclude views: %v", got)
	}
}
