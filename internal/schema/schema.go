// Package schema defines the engine's catalog: tables, columns, indexes,
// and views, plus the introspection snapshots PQS queries to learn the
// database state dynamically (the paper queries sqlite_master /
// information_schema rather than tracking state itself).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// Column describes one table column.
type Column struct {
	Name     string
	TypeName string // declared type, may be empty in the SQLite dialect
	Affinity sqlval.Affinity
	Unsigned bool // MySQL
	NotNull  bool
	Unique   bool // column-level UNIQUE constraint
	PK       bool // member of the primary key
	Collate  sqlval.Collation
	Default  sqlast.Expr
	Check    sqlast.Expr
}

// Table describes one table.
type Table struct {
	Name         string
	Columns      []Column
	WithoutRowid bool   // SQLite: PK is the row identity, no rowid
	Engine       string // MySQL storage engine ("" = default)
	Parent       string // Postgres inheritance parent
	Children     []string
	IsView       bool // views appear as tables with a definition
	ViewDef      *sqlast.Select
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// PKColumns returns the positions of primary-key columns in declaration
// order.
func (t *Table) PKColumns() []int {
	var out []int
	for i := range t.Columns {
		if t.Columns[i].PK {
			out = append(out, i)
		}
	}
	return out
}

// IndexPart is one key part of an index.
type IndexPart struct {
	X       sqlast.Expr
	Collate sqlval.Collation
	HasColl bool // collation explicitly given on the part
	Desc    bool
}

// Index describes one secondary index.
type Index struct {
	Name    string
	Table   string
	Unique  bool
	Parts   []IndexPart
	Where   sqlast.Expr // partial-index predicate, nil if full
	Implied bool        // created implicitly for a UNIQUE/PK constraint

	// BuildSeq records the statement sequence number at which the index
	// was (re)built; maintenance bugs key off staleness.
	BuildSeq int64
	// BuildCaseSensitiveLike snapshots the case_sensitive_like pragma at
	// build time (Listing 9 reproduction).
	BuildCaseSensitiveLike bool
}

// LeadingColumn returns the bare column name of the index's first key
// part, when it is a plain column reference (the shape the planner's
// point-lookup and range-scan paths require). Double-quoted MaybeString
// parts and expression parts report ok=false.
func (ix *Index) LeadingColumn() (string, bool) {
	if len(ix.Parts) == 0 {
		return "", false
	}
	cr, ok := ix.Parts[0].X.(*sqlast.ColumnRef)
	if !ok || cr.MaybeString {
		return "", false
	}
	return cr.Column, true
}

// Catalog is the database schema. It is not goroutine-safe; the engine
// serializes access.
type Catalog struct {
	tables  map[string]*Table
	indexes map[string]*Index
	order   []string // table creation order
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  map[string]*Table{},
		indexes: map[string]*Index{},
	}
}

func key(name string) string { return strings.ToLower(name) }

// Reset empties the catalog in place, keeping its map allocations (engine
// lifecycle pooling: a reset database starts from a pristine catalog
// without reallocating it).
func (c *Catalog) Reset() {
	clear(c.tables)
	clear(c.indexes)
	c.order = c.order[:0]
}

// Table resolves a table or view by name, case-insensitively.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[key(name)]
	return t, ok
}

// AddTable registers a table. It fails if the name is taken.
func (c *Catalog) AddTable(t *Table) error {
	k := key(t.Name)
	if _, dup := c.tables[k]; dup {
		return fmt.Errorf("table %s already exists", t.Name)
	}
	c.tables[k] = t
	c.order = append(c.order, k)
	return nil
}

// DropTable removes a table and its indexes.
func (c *Catalog) DropTable(name string) error {
	k := key(name)
	t, ok := c.tables[k]
	if !ok {
		return fmt.Errorf("no such table: %s", name)
	}
	// Detach from inheritance parent.
	if t.Parent != "" {
		if p, ok := c.Table(t.Parent); ok {
			for i, ch := range p.Children {
				if key(ch) == k {
					p.Children = append(p.Children[:i], p.Children[i+1:]...)
					break
				}
			}
		}
	}
	if len(t.Children) > 0 {
		return fmt.Errorf("cannot drop table %s because other objects depend on it", name)
	}
	delete(c.tables, k)
	for i, n := range c.order {
		if n == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for n, ix := range c.indexes {
		if key(ix.Table) == k {
			delete(c.indexes, n)
		}
	}
	return nil
}

// RenameTable renames a table and rewrites its indexes' table references.
func (c *Catalog) RenameTable(old, new string) error {
	ko, kn := key(old), key(new)
	t, ok := c.tables[ko]
	if !ok {
		return fmt.Errorf("no such table: %s", old)
	}
	if _, dup := c.tables[kn]; dup {
		return fmt.Errorf("table %s already exists", new)
	}
	delete(c.tables, ko)
	t.Name = new
	c.tables[kn] = t
	for i, n := range c.order {
		if n == ko {
			c.order[i] = kn
		}
	}
	for _, ix := range c.indexes {
		if key(ix.Table) == ko {
			ix.Table = new
		}
	}
	return nil
}

// TableNames lists tables (not views) in creation order.
func (c *Catalog) TableNames() []string {
	var out []string
	for _, k := range c.order {
		if t := c.tables[k]; !t.IsView {
			out = append(out, t.Name)
		}
	}
	return out
}

// ViewNames lists views in creation order.
func (c *Catalog) ViewNames() []string {
	var out []string
	for _, k := range c.order {
		if t := c.tables[k]; t.IsView {
			out = append(out, t.Name)
		}
	}
	return out
}

// Index resolves an index by name.
func (c *Catalog) Index(name string) (*Index, bool) {
	ix, ok := c.indexes[key(name)]
	return ix, ok
}

// AddIndex registers an index.
func (c *Catalog) AddIndex(ix *Index) error {
	k := key(ix.Name)
	if _, dup := c.indexes[k]; dup {
		return fmt.Errorf("index %s already exists", ix.Name)
	}
	if _, ok := c.Table(ix.Table); !ok {
		return fmt.Errorf("no such table: %s", ix.Table)
	}
	c.indexes[k] = ix
	return nil
}

// DropIndex removes an index.
func (c *Catalog) DropIndex(name string) error {
	k := key(name)
	if _, ok := c.indexes[k]; !ok {
		return fmt.Errorf("no such index: %s", name)
	}
	delete(c.indexes, k)
	return nil
}

// IndexesOn returns the indexes of a table, sorted by name.
func (c *Catalog) IndexesOn(table string) []*Index {
	kt := key(table)
	var out []*Index
	for _, ix := range c.indexes {
		if key(ix.Table) == kt {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// IndexNames lists all indexes sorted by name.
func (c *Catalog) IndexNames() []string {
	var out []string
	for _, ix := range c.indexes {
		out = append(out, ix.Name)
	}
	sort.Strings(out)
	return out
}

// InheritanceLeaves returns t plus all (transitive) child tables, in
// declaration order — the scan set for a Postgres inherited table.
func (c *Catalog) InheritanceLeaves(t *Table) []*Table {
	out := []*Table{t}
	for _, ch := range t.Children {
		if child, ok := c.Table(ch); ok {
			out = append(out, c.InheritanceLeaves(child)...)
		}
	}
	return out
}

// ColumnInfo is the introspection record PQS reads (the analogue of a row
// of PRAGMA table_info / information_schema.columns).
type ColumnInfo struct {
	Name     string
	TypeName string
	Affinity string
	NotNull  bool
	PK       bool
	Unsigned bool
	Collate  string
}

// TableInfo is the introspection record for one table.
type TableInfo struct {
	Name         string
	Columns      []ColumnInfo
	WithoutRowid bool
	Engine       string
	Parent       string
	IsView       bool
}

// Describe produces the introspection snapshot for a table.
func Describe(t *Table) TableInfo {
	ti := TableInfo{
		Name:         t.Name,
		WithoutRowid: t.WithoutRowid,
		Engine:       t.Engine,
		Parent:       t.Parent,
		IsView:       t.IsView,
	}
	for _, col := range t.Columns {
		ti.Columns = append(ti.Columns, ColumnInfo{
			Name:     col.Name,
			TypeName: col.TypeName,
			Affinity: col.Affinity.String(),
			NotNull:  col.NotNull,
			PK:       col.PK,
			Unsigned: col.Unsigned,
			Collate:  col.Collate.String(),
		})
	}
	return ti
}
