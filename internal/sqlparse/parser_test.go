package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

func mustParse(t *testing.T, src string, d dialect.Dialect) []sqlast.Stmt {
	t.Helper()
	stmts, err := Parse(src, d)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmts
}

func mustParseExpr(t *testing.T, src string, d dialect.Dialect) sqlast.Expr {
	t.Helper()
	e, err := ParseExpr(src, d)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

// Every listing from the paper must parse in its dialect.
func TestPaperListingsParse(t *testing.T) {
	cases := []struct {
		d   dialect.Dialect
		sql string
	}{
		{dialect.SQLite, `CREATE TABLE t0(c0);
			CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
			INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL);
			SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;`},
		{dialect.SQLite, `SELECT '' - 2851427734582196970;`},
		{dialect.MySQL, `SET GLOBAL key_cache_division_limit = 100;`},
		{dialect.SQLite, `CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID;
			CREATE INDEX i0 ON t0(c1 COLLATE NOCASE);
			INSERT INTO t0(c0) VALUES ('A');
			INSERT INTO t0(c0) VALUES ('a');
			SELECT * FROM t0;`},
		{dialect.SQLite, `CREATE TABLE t0(c0 COLLATE RTRIM, c1 BLOB UNIQUE, PRIMARY KEY (c0, c1)) WITHOUT ROWID;
			INSERT INTO t0 VALUES (123, 3), (' ', 1), ('      ', 2), ('', 4);
			SELECT * FROM t0 WHERE c1 = 1;`},
		{dialect.SQLite, `CREATE TABLE t1 (c1, c2, c3, c4, PRIMARY KEY (c4, c3));
			INSERT INTO t1(c3) VALUES (0), (0), (0), (0), (0), (0), (0), (0), (0), (0), (NULL), (1), (0);
			UPDATE t1 SET c2 = 0;
			INSERT INTO t1(c1) VALUES (0), (0), (NULL), (0), (0);
			ANALYZE t1;
			UPDATE t1 SET c3 = 1;
			SELECT DISTINCT * FROM t1 WHERE t1.c3 = 1;`},
		{dialect.SQLite, `CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);
			INSERT INTO t0(c0) VALUES ('./');
			SELECT * FROM t0 WHERE t0.c0 LIKE './';`},
		{dialect.SQLite, `CREATE TABLE t0(c1, c2);
			INSERT INTO t0(c1, c2) VALUES ('a', 1);
			CREATE INDEX i0 ON t0("C3");
			ALTER TABLE t0 RENAME COLUMN c1 TO c3;
			SELECT DISTINCT * FROM t0;`},
		{dialect.SQLite, `CREATE TABLE test (c0);
			CREATE INDEX index_0 ON test(c0 LIKE '');
			PRAGMA case_sensitive_like=false;
			VACUUM;
			SELECT * from test;`},
		{dialect.SQLite, `CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY);
			INSERT INTO t1(c0, c1) VALUES (TRUE, 9223372036854775807), (TRUE, 0);
			UPDATE t1 SET c0 = NULL;
			UPDATE OR REPLACE t1 SET c1 = 1;
			SELECT DISTINCT * FROM t1 WHERE (t1.c0 IS NULL);`},
		{dialect.MySQL, `CREATE TABLE t0(c0 INT);
			CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
			INSERT INTO t0(c0) VALUES (0);
			INSERT INTO t1(c0) VALUES (-1);
			SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL("u", t0.c0));`},
		{dialect.MySQL, `CREATE TABLE t0(c0 TINYINT);
			INSERT INTO t0(c0) VALUES(NULL);
			SELECT * FROM t0 WHERE NOT(t0.c0 <=> 2035382037);`},
		{dialect.MySQL, `CREATE TABLE t0(c0 INT);
			INSERT INTO t0(c0) VALUES (1);
			SELECT * FROM t0 WHERE 123 != (NOT (NOT 123));`},
		{dialect.MySQL, `CREATE TABLE t0(c0 INT);
			CREATE INDEX i0 ON t0((t0.c0 || 1));
			INSERT INTO t0(c0) VALUES (1);
			CHECK TABLE t0 FOR UPGRADE;`},
		{dialect.Postgres, `CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);
			CREATE TABLE t1(c0 INT) INHERITS (t0);
			INSERT INTO t0(c0, c1) VALUES(0, 0);
			INSERT INTO t1(c0, c1) VALUES(0, 1);
			SELECT c0, c1 FROM t0 GROUP BY c0, c1;`},
		{dialect.Postgres, `CREATE TABLE t0(c0 serial, c1 boolean);
			CREATE STATISTICS s1 ON c0, c1 FROM t0;
			INSERT INTO t0(c1) VALUES(TRUE);
			ANALYZE;
			CREATE INDEX i0 ON t0(c0, (t0.c1 AND t0.c1));
			SELECT * FROM t0 WHERE (((t0.c1) AND (t0.c1)) OR FALSE) IS TRUE;`},
		{dialect.Postgres, `CREATE TABLE t0(c0 TEXT);
			INSERT INTO t0(c0) VALUES('b'), ('a');
			ANALYZE;
			INSERT INTO t0(c0) VALUES (NULL);
			UPDATE t0 SET c0 = 'a';
			CREATE INDEX i0 ON t0(c0);
			SELECT * FROM t0 WHERE 'baaaaaaaaaaaaaaaaa' > t0.c0;`},
		{dialect.Postgres, `CREATE TABLE t1(c0 int);
			INSERT INTO t1(c0) VALUES (2147483647);
			UPDATE t1 SET c0 = 0;
			CREATE INDEX i0 ON t1((1 + t1.c0));
			VACUUM FULL;`},
	}
	for i, c := range cases {
		if _, err := Parse(c.sql, c.d); err != nil {
			t.Errorf("case %d (%s): %v", i, c.d, err)
		}
	}
}

func TestParseStatementShapes(t *testing.T) {
	stmts := mustParse(t, `CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID`, dialect.SQLite)
	ct := stmts[0].(*sqlast.CreateTable)
	if !ct.WithoutRowid || !ct.Columns[0].PrimaryKey || ct.Columns[0].TypeName != "TEXT" {
		t.Errorf("create table shape: %+v", ct)
	}

	stmts = mustParse(t, `CREATE UNIQUE INDEX IF NOT EXISTS i0 ON t0(c0 COLLATE NOCASE DESC, (c1 + 1)) WHERE c0 NOT NULL`, dialect.SQLite)
	ci := stmts[0].(*sqlast.CreateIndex)
	if !ci.Unique || !ci.IfNotExists || len(ci.Parts) != 2 || ci.Parts[0].Collate != "NOCASE" || !ci.Parts[0].Desc || ci.Where == nil {
		t.Errorf("create index shape: %+v", ci)
	}
	if u, ok := ci.Where.(*sqlast.Unary); !ok || u.Op != sqlast.OpNotNull {
		t.Errorf("partial index predicate should be NOTNULL, got %T", ci.Where)
	}

	stmts = mustParse(t, `INSERT OR REPLACE INTO t0(c0, c1) VALUES (1, 'x'), (NULL, x'ff')`, dialect.SQLite)
	ins := stmts[0].(*sqlast.Insert)
	if ins.Conflict != sqlast.ConflictReplace || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Errorf("insert shape: %+v", ins)
	}
	if lit := ins.Rows[1][1].(*sqlast.Literal); lit.Val.Kind() != sqlval.KBlob {
		t.Errorf("blob literal not parsed: %v", lit.Val)
	}

	stmts = mustParse(t, `UPDATE OR REPLACE t1 SET c1 = 1, c0 = NULL WHERE c0 > 2`, dialect.SQLite)
	up := stmts[0].(*sqlast.Update)
	if up.Conflict != sqlast.ConflictReplace || len(up.Sets) != 2 || up.Where == nil {
		t.Errorf("update shape: %+v", up)
	}

	stmts = mustParse(t, `DELETE FROM t0 WHERE c0 IS NULL`, dialect.SQLite)
	del := stmts[0].(*sqlast.Delete)
	if del.Table != "t0" || del.Where == nil {
		t.Errorf("delete shape: %+v", del)
	}

	stmts = mustParse(t, `ALTER TABLE t0 RENAME COLUMN c1 TO c3`, dialect.SQLite)
	at := stmts[0].(*sqlast.AlterTable)
	if at.Action != sqlast.AlterRenameColumn || at.OldName != "c1" || at.NewName != "c3" {
		t.Errorf("alter shape: %+v", at)
	}

	stmts = mustParse(t, `DROP INDEX IF EXISTS i0`, dialect.SQLite)
	dr := stmts[0].(*sqlast.Drop)
	if dr.Obj != sqlast.DropIndex || !dr.IfExists {
		t.Errorf("drop shape: %+v", dr)
	}

	stmts = mustParse(t, `CREATE VIEW v0 AS SELECT c0 FROM t0`, dialect.SQLite)
	cv := stmts[0].(*sqlast.CreateView)
	if cv.Name != "v0" || cv.Select == nil {
		t.Errorf("view shape: %+v", cv)
	}
}

func TestParseSelectClauses(t *testing.T) {
	sel := mustParse(t, `SELECT DISTINCT t0.c0 AS a, * FROM t0, t1 AS x LEFT JOIN t2 ON t2.c0 = t0.c0 WHERE t0.c0 > 1 GROUP BY t0.c0, t0.c1 HAVING t0.c0 < 10 ORDER BY t0.c0 DESC, t0.c1 LIMIT 5 OFFSET 2`,
		dialect.SQLite)[0].(*sqlast.Select)
	if !sel.Distinct || len(sel.Cols) != 2 || sel.Cols[0].Alias != "a" || !sel.Cols[1].Star {
		t.Errorf("select cols: %+v", sel.Cols)
	}
	if len(sel.From) != 2 || sel.From[1].Alias != "x" {
		t.Errorf("select from: %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Kind != sqlast.JoinLeft || sel.Joins[0].On == nil {
		t.Errorf("select joins: %+v", sel.Joins)
	}
	if sel.Where == nil || len(sel.GroupBy) != 2 || sel.Having == nil {
		t.Errorf("select where/group/having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("select order: %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Errorf("select limit/offset missing")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e := mustParseExpr(t, `1 + 2 * 3`, dialect.SQLite)
	b := e.(*sqlast.Binary)
	if b.Op != sqlast.OpAdd {
		t.Fatalf("top op should be +, got %v", b.Op)
	}
	if r := b.R.(*sqlast.Binary); r.Op != sqlast.OpMul {
		t.Errorf("rhs should be *")
	}

	e = mustParseExpr(t, `NOT a = b`, dialect.SQLite)
	if u, ok := e.(*sqlast.Unary); !ok || u.Op != sqlast.OpNot {
		t.Errorf("NOT should bind looser than =")
	}

	e = mustParseExpr(t, `a OR b AND c`, dialect.SQLite)
	if b := e.(*sqlast.Binary); b.Op != sqlast.OpOr {
		t.Errorf("OR should be top")
	}

	e = mustParseExpr(t, `a < b = c`, dialect.SQLite)
	if b := e.(*sqlast.Binary); b.Op != sqlast.OpEq {
		t.Errorf("left-assoc comparison chain: top should be =, got %v", b.Op)
	}

	// MySQL: || is OR.
	e = mustParseExpr(t, `a || b`, dialect.MySQL)
	if b := e.(*sqlast.Binary); b.Op != sqlast.OpOr {
		t.Errorf("mysql || should parse as OR, got %v", b.Op)
	}
	// SQLite: || is concat and binds tighter than +.
	e = mustParseExpr(t, `a + b || c`, dialect.SQLite)
	if b := e.(*sqlast.Binary); b.Op != sqlast.OpAdd {
		t.Errorf("sqlite + should be top over ||, got %v", b.Op)
	}
}

func TestParseExprForms(t *testing.T) {
	cases := []string{
		`c0 IS NOT 1`,
		`c0 ISNULL`,
		`c0 NOTNULL`,
		`c0 NOT NULL`,
		`c0 IS NOT NULL`,
		`c0 BETWEEN 1 AND 5`,
		`c0 NOT BETWEEN -1 AND +1`,
		`c0 IN (1, 2, NULL)`,
		`c0 NOT IN ()`,
		`c0 LIKE 'a%' `,
		`c0 NOT LIKE '_b'`,
		`CAST(c0 AS INTEGER)`,
		`CASE WHEN c0 THEN 1 ELSE 0 END`,
		`CASE c0 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END`,
		`ABS(-5)`,
		`COUNT(*)`,
		`c0 COLLATE NOCASE`,
		`~ c0`,
		`x'00ff'`,
		`3.5e-2`,
		`t0.c0 & 7 | 1 << 2 >> 1`,
	}
	for _, src := range cases {
		mustParseExpr(t, src, dialect.SQLite)
	}
}

func TestDoubleQuotedBehaviour(t *testing.T) {
	e := mustParseExpr(t, `"C3"`, dialect.SQLite)
	c := e.(*sqlast.ColumnRef)
	if !c.MaybeString || c.Column != "C3" {
		t.Errorf("sqlite double-quoted: %+v", c)
	}
	e = mustParseExpr(t, `"u"`, dialect.MySQL)
	if lit, ok := e.(*sqlast.Literal); !ok || lit.Val.Str() != "u" {
		t.Errorf("mysql double-quoted should be a string literal, got %#v", e)
	}
	e = mustParseExpr(t, `"c0"`, dialect.Postgres)
	if c, ok := e.(*sqlast.ColumnRef); !ok || c.MaybeString {
		t.Errorf("postgres double-quoted should be a strict identifier, got %#v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELEC 1`,
		`SELECT FROM`,
		`CREATE TABLE`,
		`INSERT INTO t VALUES`,
		`SELECT 'unterminated`,
		`SELECT x'0g'`,
		`SELECT x'0'`,
		`SELECT (1`,
		`SELECT 1 2 3 FROM`,
		`DROP SOMETHING t`,
		`CREATE TABLE t(c0 CHECK (`,
	}
	for _, src := range bad {
		if _, err := Parse(src, dialect.SQLite); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	stmts := mustParse(t, `
		-- leading comment
		SELECT 1; /* block
		comment */ SELECT 2 -- trailing
	`, dialect.SQLite)
	if len(stmts) != 2 {
		t.Fatalf("expected 2 statements, got %d", len(stmts))
	}
}

func TestIntegerOverflowBecomesReal(t *testing.T) {
	e := mustParseExpr(t, `99999999999999999999999999`, dialect.SQLite)
	lit := e.(*sqlast.Literal)
	if lit.Val.Kind() != sqlval.KReal {
		t.Errorf("overflowing integer literal should become REAL, got %v", lit.Val.Kind())
	}
}

// Round-trip: render → parse → render must be a fixpoint for a sample of
// statements in every dialect.
func TestRenderParseRoundTrip(t *testing.T) {
	srcs := map[dialect.Dialect][]string{
		dialect.SQLite: {
			`CREATE TABLE t0(c0, c1 TEXT UNIQUE NOT NULL COLLATE NOCASE)`,
			`CREATE INDEX i0 ON t0(c0 COLLATE RTRIM DESC) WHERE (c0 IS NOT NULL)`,
			`SELECT DISTINCT * FROM t0 WHERE ((t0.c0 > 3) AND (NOT t0.c1)) ORDER BY t0.c0 DESC LIMIT 10`,
			`INSERT OR IGNORE INTO t0(c0) VALUES (1), (NULL)`,
			`UPDATE OR REPLACE t0 SET c0 = (c0 + 1) WHERE (c0 IS NULL)`,
			`PRAGMA case_sensitive_like = 1`,
		},
		dialect.MySQL: {
			`CREATE TABLE t1(c0 INT UNSIGNED) ENGINE = MEMORY`,
			`SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED) > IFNULL('u', t0.c0))`,
			`SET GLOBAL key_cache_division_limit = 100`,
			`CHECK TABLE t0 FOR UPGRADE`,
		},
		dialect.Postgres: {
			`CREATE TABLE t1(c0 INT) INHERITS (t0)`,
			`CREATE STATISTICS s1 ON c0, c1 FROM t0`,
			`VACUUM FULL`,
			`SELECT c0, c1 FROM t0 GROUP BY c0, c1`,
		},
	}
	for d, list := range srcs {
		for _, src := range list {
			s1, err := ParseOne(src, d)
			if err != nil {
				t.Errorf("%s: parse %q: %v", d, src, err)
				continue
			}
			r1 := sqlast.SQL(s1, d)
			s2, err := ParseOne(r1, d)
			if err != nil {
				t.Errorf("%s: reparse %q: %v", d, r1, err)
				continue
			}
			r2 := sqlast.SQL(s2, d)
			if r1 != r2 {
				t.Errorf("%s: round trip not stable:\n  %s\n  %s", d, r1, r2)
			}
			if !strings.EqualFold(s1.Kind(), s2.Kind()) {
				t.Errorf("%s: kind changed in round trip", d)
			}
		}
	}
}
