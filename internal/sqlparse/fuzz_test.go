package sqlparse

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlast"
)

// FuzzParseRoundTrip checks render/parse idempotence: any input the parser
// accepts must re-render to SQL the parser accepts again, and that second
// parse must render identically (the fixed point PQS relies on when it
// rebuilds engine statements from rendered ASTs). The seed corpus doubles
// as a unit test under plain `go test`.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT t0.c0 FROM t0 WHERE (t0.c0 = 'B  ') ORDER BY t0.c0 DESC",
		"CREATE TABLE t0(c0 INT PRIMARY KEY, c1 TEXT COLLATE NOCASE)",
		`CREATE INDEX i0 ON t0("C3")`,
		"CREATE UNIQUE INDEX i1 ON t0(c0 COLLATE RTRIM DESC) WHERE c0 NOT NULL",
		"INSERT OR IGNORE INTO t0(c0) VALUES (1), (NULL), (x'beef')",
		"UPDATE t0 SET c0 = c0 + 1 WHERE c0 BETWEEN 1 AND 3",
		"DELETE FROM t0 WHERE c0 ISNULL",
		"SELECT DISTINCT c0, COUNT(*) FROM t0 GROUP BY c0 HAVING COUNT(*) > 1 LIMIT 10 OFFSET 2",
		"SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0",
		"SELECT 1 UNION SELECT 2 INTERSECT SELECT 3",
		"EXPLAIN SELECT * FROM t0 WHERE c0 = 1 AND c1 > 'a'",
		"EXPLAIN QUERY PLAN SELECT c0 FROM t0 WHERE c0 <= 5",
		"ALTER TABLE t0 RENAME COLUMN c1 TO c3",
		"VACUUM",
		"REINDEX t0",
		"ANALYZE",
		"PRAGMA case_sensitive_like = 1",
		"SELECT CASE WHEN c0 > 0 THEN 'p' ELSE 'n' END FROM t0",
		"SELECT CAST(c0 AS TEXT) FROM t0 WHERE c0 IN (1, 2, 3)",
		"SELECT * FROM t0 WHERE c0 LIKE '%a_' AND NOT (c1 IS NULL)",
		// Exotic quoted identifiers: embedded quotes, digit-leading,
		// keywords — the render-time quoting pass must round-trip all of
		// them (the old renderer emitted them bare and broke the fixed
		// point; see ident.go).
		"SELECT `a``b`, `00` FROM `select` WHERE `from` = 1",
		"CREATE TABLE `group`(`order` INT PRIMARY KEY, `table` TEXT)",
		"INSERT INTO `values`(`not`) VALUES (1)",
		"UPDATE `where` SET `and` = 2 WHERE `is` ISNULL",
		"CREATE INDEX `by` ON `limit`(`desc` DESC)",
		"SELECT t0.`c 0` FROM t0 JOIN `left` ON `left`.`on` = t0.c0",
		"REINDEX `primary`",
		"DROP TABLE IF EXISTS `drop`",
	}
	for _, s := range seeds {
		for d := range dialect.All {
			f.Add(s, uint8(d))
		}
	}
	f.Fuzz(func(t *testing.T, src string, db uint8) {
		d := dialect.All[int(db)%len(dialect.All)]
		stmts, err := Parse(src, d)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		for _, st := range stmts {
			first := sqlast.SQL(st, d)
			st2, err := ParseOne(first, d)
			if err != nil {
				t.Fatalf("render of accepted input does not re-parse\ninput: %q\nrender: %q\nerr: %v", src, first, err)
			}
			second := sqlast.SQL(st2, d)
			if first != second {
				t.Fatalf("render not idempotent\ninput: %q\nfirst: %q\nsecond: %q", src, first, second)
			}
		}
	})
}

// FuzzUnionAllRoundTrip fuzzes compound-select construction specifically:
// fuzz-controlled arm predicates and operator bits assemble a compound
// statement whose render must re-parse to a structurally faithful compound
// (same arm count and operators) and re-render identically — the fixed
// point TLP's UNION ALL recombination relies on when campaigns run in
// wire-fidelity mode.
func FuzzUnionAllRoundTrip(f *testing.F) {
	f.Add("c0 > 1", "c0 IS NULL", "", uint8(0), uint8(0))
	f.Add("NOT (c0 = 'a')", "c1 LIKE 'b%'", "c0 BETWEEN 1 AND 2", uint8(0b0100), uint8(1))
	f.Add("c0 IN (1, NULL)", "", "c1 COLLATE NOCASE = 'A'", uint8(0b1110), uint8(2))
	f.Fuzz(func(t *testing.T, w1, w2, w3 string, opBits, db uint8) {
		d := dialect.All[int(db)%len(dialect.All)]
		ops := []sqlast.CompoundOp{sqlast.OpUnionAll, sqlast.OpUnion, sqlast.OpIntersect, sqlast.OpExcept}
		comp := &sqlast.Compound{}
		for i, w := range []string{w1, w2, w3} {
			sel := &sqlast.Select{
				Cols: []sqlast.ResultCol{{X: sqlast.Col("t0", "c0")}},
				From: []sqlast.TableRef{{Name: "t0"}},
			}
			if w != "" {
				ws, err := ParseOne("SELECT c0 FROM t0 WHERE "+w, d)
				if err != nil {
					return // rejected predicate: nothing to round-trip
				}
				inner, ok := ws.(*sqlast.Select)
				if !ok || inner.Where == nil {
					return // predicate smuggled in clause/compound keywords
				}
				// Every accepted predicate probes the compound layer: since
				// the render-time identifier quoting pass (sqlast/ident.go),
				// expression fidelity holds for exotic quoted identifiers
				// too, so the old "arm must round-trip standalone" sidestep
				// is gone.
				sel.Where = inner.Where
			}
			comp.Selects = append(comp.Selects, sel)
			if i > 0 {
				comp.Ops = append(comp.Ops, ops[(opBits>>(2*(i-1)))&3])
			}
		}
		first := sqlast.SQL(comp, d)
		st, err := ParseOne(first, d)
		if err != nil {
			t.Fatalf("compound render does not parse\nrender: %q\nerr: %v", first, err)
		}
		reparsed, ok := st.(*sqlast.Compound)
		if !ok {
			t.Fatalf("compound reparsed as %T\nrender: %q", st, first)
		}
		if len(reparsed.Selects) != len(comp.Selects) {
			t.Fatalf("arm count %d -> %d\nrender: %q", len(comp.Selects), len(reparsed.Selects), first)
		}
		for i := range comp.Ops {
			if reparsed.Ops[i] != comp.Ops[i] {
				t.Fatalf("op %d: %s -> %s\nrender: %q", i, comp.Ops[i], reparsed.Ops[i], first)
			}
		}
		if second := sqlast.SQL(reparsed, d); first != second {
			t.Fatalf("compound render not idempotent\nfirst: %q\nsecond: %q", first, second)
		}
	})
}
