package sqlparse

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlast"
)

// FuzzParseRoundTrip checks render/parse idempotence: any input the parser
// accepts must re-render to SQL the parser accepts again, and that second
// parse must render identically (the fixed point PQS relies on when it
// rebuilds engine statements from rendered ASTs). The seed corpus doubles
// as a unit test under plain `go test`.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT t0.c0 FROM t0 WHERE (t0.c0 = 'B  ') ORDER BY t0.c0 DESC",
		"CREATE TABLE t0(c0 INT PRIMARY KEY, c1 TEXT COLLATE NOCASE)",
		`CREATE INDEX i0 ON t0("C3")`,
		"CREATE UNIQUE INDEX i1 ON t0(c0 COLLATE RTRIM DESC) WHERE c0 NOT NULL",
		"INSERT OR IGNORE INTO t0(c0) VALUES (1), (NULL), (x'beef')",
		"UPDATE t0 SET c0 = c0 + 1 WHERE c0 BETWEEN 1 AND 3",
		"DELETE FROM t0 WHERE c0 ISNULL",
		"SELECT DISTINCT c0, COUNT(*) FROM t0 GROUP BY c0 HAVING COUNT(*) > 1 LIMIT 10 OFFSET 2",
		"SELECT * FROM t0 LEFT JOIN t1 ON t0.c0 = t1.c0",
		"SELECT 1 UNION SELECT 2 INTERSECT SELECT 3",
		"EXPLAIN SELECT * FROM t0 WHERE c0 = 1 AND c1 > 'a'",
		"EXPLAIN QUERY PLAN SELECT c0 FROM t0 WHERE c0 <= 5",
		"ALTER TABLE t0 RENAME COLUMN c1 TO c3",
		"VACUUM",
		"REINDEX t0",
		"ANALYZE",
		"PRAGMA case_sensitive_like = 1",
		"SELECT CASE WHEN c0 > 0 THEN 'p' ELSE 'n' END FROM t0",
		"SELECT CAST(c0 AS TEXT) FROM t0 WHERE c0 IN (1, 2, 3)",
		"SELECT * FROM t0 WHERE c0 LIKE '%a_' AND NOT (c1 IS NULL)",
	}
	for _, s := range seeds {
		for d := range dialect.All {
			f.Add(s, uint8(d))
		}
	}
	f.Fuzz(func(t *testing.T, src string, db uint8) {
		d := dialect.All[int(db)%len(dialect.All)]
		stmts, err := Parse(src, d)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		for _, st := range stmts {
			first := sqlast.SQL(st, d)
			st2, err := ParseOne(first, d)
			if err != nil {
				t.Fatalf("render of accepted input does not re-parse\ninput: %q\nrender: %q\nerr: %v", src, first, err)
			}
			second := sqlast.SQL(st2, d)
			if first != second {
				t.Fatalf("render not idempotent\ninput: %q\nfirst: %q\nsecond: %q", src, first, second)
			}
		}
	})
}
