package sqlparse

import (
	"strconv"
	"strings"

	"repro/internal/dialect"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// Parse tokenizes and parses src into a sequence of statements separated by
// semicolons.
func Parse(src string, d dialect.Dialect) ([]sqlast.Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, d: d}
	var stmts []sqlast.Stmt
	for {
		for p.acceptOp(";") {
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().kind != tokEOF {
			return nil, errf(p.peek().pos, "expected ';' or end of input, got %q", p.peek().text)
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string, d dialect.Dialect) (sqlast.Stmt, error) {
	stmts, err := Parse(src, d)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errf(0, "expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseExpr parses a standalone expression.
func ParseExpr(src string, d dialect.Dialect) (sqlast.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, d: d}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, errf(p.peek().pos, "trailing input after expression")
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
	d    dialect.Dialect
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive identifier match).
func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.peek().pos, "expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return errf(p.peek().pos, "expected %q, got %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokQuotedIdent || t.kind == tokDoubleQuoted {
		p.pos++
		return t.text, nil
	}
	return "", errf(t.pos, "expected identifier, got %q", t.text)
}

// reserved keywords that terminate an alias-free identifier position.
var reservedAfterExpr = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "JOIN": true, "CROSS": true, "LEFT": true,
	"INNER": true, "ON": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "SET": true, "VALUES": true,
	"DESC": true, "ASC": true, "COLLATE": true, "THEN": true, "ELSE": true,
	"WHEN": true, "END": true, "ONLY": true,
}

func (p *parser) parseStmt() (sqlast.Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, errf(t.pos, "expected statement, got %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "ALTER":
		return p.parseAlter()
	case "DROP":
		return p.parseDrop()
	case "SELECT":
		return p.parseCompoundSelect()
	case "VACUUM":
		p.next()
		if p.acceptKeyword("FULL") {
			return &sqlast.Maintenance{Op: sqlast.MaintVacuumFull}, nil
		}
		return &sqlast.Maintenance{Op: sqlast.MaintVacuum}, nil
	case "REINDEX":
		p.next()
		m := &sqlast.Maintenance{Op: sqlast.MaintReindex}
		if tt := p.peek(); tt.kind == tokQuotedIdent ||
			tt.kind == tokIdent && !reservedAfterExpr[strings.ToUpper(tt.text)] {
			m.Table = tt.text
			p.next()
		}
		return m, nil
	case "ANALYZE":
		p.next()
		m := &sqlast.Maintenance{Op: sqlast.MaintAnalyze}
		if tt := p.peek(); tt.kind == tokIdent || tt.kind == tokQuotedIdent {
			m.Table = tt.text
			p.next()
		}
		return m, nil
	case "REPAIR":
		p.next()
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.Maintenance{Op: sqlast.MaintRepairTable, Table: name}, nil
	case "CHECK":
		p.next()
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.acceptKeyword("FOR") {
			if err := p.expectKeyword("UPGRADE"); err != nil {
				return nil, err
			}
			return &sqlast.Maintenance{Op: sqlast.MaintCheckTableForUpgrade, Table: name}, nil
		}
		return &sqlast.Maintenance{Op: sqlast.MaintCheckTable, Table: name}, nil
	case "DISCARD":
		p.next()
		p.acceptKeyword("PLANS")
		return &sqlast.Maintenance{Op: sqlast.MaintDiscard}, nil
	case "EXPLAIN":
		p.next()
		// Accept SQLite's EXPLAIN QUERY PLAN spelling.
		if p.peekKeyword("QUERY") {
			p.next()
			if err := p.expectKeyword("PLAN"); err != nil {
				return nil, err
			}
		}
		target, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &sqlast.Explain{Target: target}, nil
	case "BEGIN":
		p.next()
		// SQLite's BEGIN [DEFERRED|IMMEDIATE|EXCLUSIVE]: the engine's txns
		// all behave like DEFERRED snapshots, so the modifier is accepted
		// and ignored.
		if !p.acceptKeyword("DEFERRED") && !p.acceptKeyword("IMMEDIATE") {
			p.acceptKeyword("EXCLUSIVE")
		}
		p.acceptTxnNoise()
		return &sqlast.Txn{Op: sqlast.TxnBegin}, nil
	case "COMMIT", "END":
		p.next()
		p.acceptTxnNoise()
		return &sqlast.Txn{Op: sqlast.TxnCommit}, nil
	case "ROLLBACK":
		p.next()
		p.acceptTxnNoise()
		return &sqlast.Txn{Op: sqlast.TxnRollback}, nil
	case "PRAGMA":
		p.next()
		return p.parseSetTail(false)
	case "SET":
		p.next()
		global := p.acceptKeyword("GLOBAL")
		return p.parseSetTail(global)
	}
	return nil, errf(t.pos, "unknown statement %q", t.text)
}

// acceptTxnNoise consumes the optional TRANSACTION/WORK noise word after a
// transaction-control keyword.
func (p *parser) acceptTxnNoise() {
	if !p.acceptKeyword("TRANSACTION") {
		p.acceptKeyword("WORK")
	}
}

func (p *parser) parseSetTail(global bool) (sqlast.Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if !p.acceptOp("=") {
		// `PRAGMA name` (query form) — value defaults to NULL.
		return &sqlast.SetOption{Global: global, Name: strings.ToLower(name)}, nil
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &sqlast.SetOption{Global: global, Name: strings.ToLower(name), Value: v}, nil
}

func (p *parser) parseCreate() (sqlast.Stmt, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	case p.acceptKeyword("VIEW"):
		return p.parseCreateView()
	case p.acceptKeyword("STATISTICS"):
		return p.parseCreateStats()
	}
	return nil, errf(p.peek().pos, "expected TABLE, INDEX, VIEW, or STATISTICS after CREATE")
}

func (p *parser) parseIfNotExists() bool {
	if p.peekKeyword("IF") {
		save := p.pos
		p.next()
		if p.acceptKeyword("NOT") && p.acceptKeyword("EXISTS") {
			return true
		}
		p.pos = save
	}
	return false
}

// constraint keywords that end a column's type-name token run.
var columnConstraintKw = map[string]bool{
	"PRIMARY": true, "UNIQUE": true, "NOT": true, "NULL": true, "COLLATE": true,
	"DEFAULT": true, "CHECK": true, "REFERENCES": true, "UNSIGNED": true,
}

func (p *parser) parseCreateTable() (sqlast.Stmt, error) {
	ct := &sqlast.CreateTable{IfNotExists: p.parseIfNotExists()}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if p.peekKeyword("PRIMARY") {
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, c)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKeyword("WITHOUT"):
			if err := p.expectKeyword("ROWID"); err != nil {
				return nil, err
			}
			ct.WithoutRowid = true
		case p.acceptKeyword("ENGINE"):
			if err := p.expectOp("="); err != nil {
				return nil, err
			}
			eng, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ct.Engine = strings.ToUpper(eng)
		case p.acceptKeyword("INHERITS"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			parent, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ct.Inherits = parent
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		default:
			return ct, nil
		}
	}
}

func (p *parser) parseColumnDef() (sqlast.ColumnDef, error) {
	var cd sqlast.ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	// Type name: a run of identifiers not in the constraint-keyword set,
	// optionally followed by (n[,m]).
	var typeWords []string
	for {
		t := p.peek()
		if t.kind != tokIdent || columnConstraintKw[strings.ToUpper(t.text)] {
			break
		}
		typeWords = append(typeWords, t.text)
		p.next()
		if p.acceptOp("(") {
			depth := 1
			args := "("
			for depth > 0 {
				tt := p.next()
				if tt.kind == tokEOF {
					return cd, errf(tt.pos, "unterminated type arguments")
				}
				if tt.kind == tokOp && tt.text == "(" {
					depth++
				}
				if tt.kind == tokOp && tt.text == ")" {
					depth--
					if depth == 0 {
						args += ")"
						break
					}
				}
				args += tt.text
			}
			typeWords[len(typeWords)-1] += args
		}
	}
	cd.TypeName = strings.Join(typeWords, " ")
	// Constraints, in any order.
	for {
		switch {
		case p.acceptKeyword("UNSIGNED"):
			cd.Unsigned = true
		case p.peekKeyword("PRIMARY"):
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
		case p.acceptKeyword("UNIQUE"):
			cd.Unique = true
		case p.peekKeyword("NOT"):
			save := p.pos
			p.next()
			if p.acceptKeyword("NULL") {
				cd.NotNull = true
			} else {
				p.pos = save
				return cd, nil
			}
		case p.acceptKeyword("COLLATE"):
			coll, err := p.expectIdent()
			if err != nil {
				return cd, err
			}
			cd.Collate = strings.ToUpper(coll)
		case p.acceptKeyword("DEFAULT"):
			e, err := p.parsePrimary()
			if err != nil {
				return cd, err
			}
			cd.Default = e
		case p.acceptKeyword("CHECK"):
			if err := p.expectOp("("); err != nil {
				return cd, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return cd, err
			}
			if err := p.expectOp(")"); err != nil {
				return cd, err
			}
			cd.Check = e
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique bool) (sqlast.Stmt, error) {
	ci := &sqlast.CreateIndex{Unique: unique, IfNotExists: p.parseIfNotExists()}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ci.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ci.Table = table
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		var part sqlast.IndexedExpr
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// The expression parser consumes a trailing COLLATE; fold it into
		// the key part so `c0 COLLATE NOCASE` records the collation.
		if coll, ok := e.(*sqlast.Collate); ok {
			e = coll.X
			part.Collate = coll.Coll.String()
		}
		part.X = e
		if p.acceptKeyword("COLLATE") {
			coll, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			part.Collate = strings.ToUpper(coll)
		}
		if p.acceptKeyword("DESC") {
			part.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		ci.Parts = append(ci.Parts, part)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ci.Where = e
	}
	return ci, nil
}

func (p *parser) parseCreateView() (sqlast.Stmt, error) {
	cv := &sqlast.CreateView{IfNotExists: p.parseIfNotExists()}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cv.Name = name
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if !p.peekKeyword("SELECT") {
		return nil, errf(p.peek().pos, "expected SELECT in CREATE VIEW")
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	cv.Select = sel.(*sqlast.Select)
	return cv, nil
}

func (p *parser) parseCreateStats() (sqlast.Stmt, error) {
	cs := &sqlast.CreateStats{}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cs.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cs.Columns = append(cs.Columns, c)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cs.Table = table
	return cs, nil
}

func (p *parser) parseInsert() (sqlast.Stmt, error) {
	p.next() // INSERT
	ins := &sqlast.Insert{}
	switch {
	case p.acceptKeyword("OR"):
		switch {
		case p.acceptKeyword("IGNORE"):
			ins.Conflict = sqlast.ConflictIgnore
		case p.acceptKeyword("REPLACE"):
			ins.Conflict = sqlast.ConflictReplace
		default:
			return nil, errf(p.peek().pos, "expected IGNORE or REPLACE after INSERT OR")
		}
	case p.acceptKeyword("IGNORE"): // MySQL spelling
		ins.Conflict = sqlast.ConflictIgnore
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins.Table = table
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (sqlast.Stmt, error) {
	p.next() // UPDATE
	up := &sqlast.Update{}
	if p.acceptKeyword("OR") {
		if err := p.expectKeyword("REPLACE"); err != nil {
			return nil, err
		}
		up.Conflict = sqlast.ConflictReplace
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	up.Table = table
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, sqlast.Assignment{Column: col, Value: v})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *parser) parseDelete() (sqlast.Stmt, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &sqlast.Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseAlter() (sqlast.Stmt, error) {
	p.next() // ALTER
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	at := &sqlast.AlterTable{Table: table}
	switch {
	case p.acceptKeyword("RENAME"):
		if p.acceptKeyword("COLUMN") {
			old, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			newName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			at.Action = sqlast.AlterRenameColumn
			at.OldName = old
			at.NewName = newName
			return at, nil
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		newName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		at.Action = sqlast.AlterRenameTable
		at.NewName = newName
		return at, nil
	case p.acceptKeyword("ADD"):
		p.acceptKeyword("COLUMN")
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		at.Action = sqlast.AlterAddColumn
		at.Column = col
		return at, nil
	}
	return nil, errf(p.peek().pos, "expected RENAME or ADD in ALTER TABLE")
}

func (p *parser) parseDrop() (sqlast.Stmt, error) {
	p.next() // DROP
	d := &sqlast.Drop{}
	switch {
	case p.acceptKeyword("TABLE"):
		d.Obj = sqlast.DropTable
	case p.acceptKeyword("INDEX"):
		d.Obj = sqlast.DropIndex
	case p.acceptKeyword("VIEW"):
		d.Obj = sqlast.DropView
	default:
		return nil, errf(p.peek().pos, "expected TABLE, INDEX, or VIEW after DROP")
	}
	if p.peekKeyword("IF") {
		p.next()
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

// parseCompoundSelect parses SELECT ... [UNION [ALL]|INTERSECT|EXCEPT
// SELECT ...]*, returning a plain *Select when no compound operator
// appears.
func (p *parser) parseCompoundSelect() (sqlast.Stmt, error) {
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	comp := &sqlast.Compound{Selects: []*sqlast.Select{first.(*sqlast.Select)}}
	for {
		var op sqlast.CompoundOp
		switch {
		case p.acceptKeyword("UNION"):
			op = sqlast.OpUnion
			if p.acceptKeyword("ALL") {
				op = sqlast.OpUnionAll
			}
		case p.acceptKeyword("INTERSECT"):
			op = sqlast.OpIntersect
		case p.acceptKeyword("EXCEPT"):
			op = sqlast.OpExcept
		default:
			if len(comp.Selects) == 1 {
				return comp.Selects[0], nil
			}
			return comp, nil
		}
		if !p.peekKeyword("SELECT") {
			return nil, errf(p.peek().pos, "expected SELECT after %s", op)
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		comp.Selects = append(comp.Selects, next.(*sqlast.Select))
		comp.Ops = append(comp.Ops, op)
	}
}

func (p *parser) parseSelect() (sqlast.Stmt, error) {
	p.next() // SELECT
	sel := &sqlast.Select{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		if p.acceptOp("*") {
			sel.Cols = append(sel.Cols, sqlast.ResultCol{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rc := sqlast.ResultCol{X: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				rc.Alias = alias
			} else if t := p.peek(); t.kind == tokQuotedIdent ||
				t.kind == tokIdent && !reservedAfterExpr[strings.ToUpper(t.text)] && !isStmtBoundary(t.text) {
				rc.Alias = t.text
				p.next()
			}
			sel.Cols = append(sel.Cols, rc)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if !p.acceptOp(",") {
				break
			}
		}
		for {
			var jk sqlast.JoinKind
			switch {
			case p.acceptKeyword("CROSS"):
				jk = sqlast.JoinCross
			case p.acceptKeyword("LEFT"):
				p.acceptKeyword("OUTER")
				jk = sqlast.JoinLeft
			case p.acceptKeyword("INNER"):
				jk = sqlast.JoinInner
			case p.peekKeyword("JOIN"):
				jk = sqlast.JoinInner
			default:
				goto afterJoins
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			jc := sqlast.JoinClause{Kind: jk, Table: tr}
			if p.acceptKeyword("ON") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jc.On = e
			}
			sel.Joins = append(sel.Joins, jc)
		}
	}
afterJoins:
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := sqlast.OrderItem{X: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, oi)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Offset = o
		}
	}
	return sel, nil
}

func isStmtBoundary(word string) bool {
	switch strings.ToUpper(word) {
	case "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER",
		"VACUUM", "REINDEX", "ANALYZE", "PRAGMA":
		return true
	}
	return false
}

func (p *parser) parseTableRef() (sqlast.TableRef, error) {
	var tr sqlast.TableRef
	if p.acceptKeyword("ONLY") {
		tr.Only = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return tr, err
	}
	tr.Name = name
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return tr, err
		}
		tr.Alias = alias
	} else if t := p.peek(); t.kind == tokQuotedIdent ||
		t.kind == tokIdent && !reservedAfterExpr[strings.ToUpper(t.text)] && !isStmtBoundary(t.text) {
		tr.Alias = t.text
		p.next()
	}
	return tr, nil
}

// ---- expression parsing, precedence climbing ----

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if p.acceptKeyword("OR") || (p.d.ConcatIsOr() && p.acceptOp("||")) {
			r, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpOr, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: sqlast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpNot, X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]sqlast.BinOp{
	"=": sqlast.OpEq, "==": sqlast.OpEq, "!=": sqlast.OpNe, "<>": sqlast.OpNe,
	"<": sqlast.OpLt, "<=": sqlast.OpLe, ">": sqlast.OpGt, ">=": sqlast.OpGe,
	"<=>": sqlast.OpNullSafeEq,
}

func (p *parser) parseCmp() (sqlast.Expr, error) {
	l, err := p.parseBit()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp {
			if op, ok := cmpOps[t.text]; ok {
				p.next()
				r, err := p.parseBit()
				if err != nil {
					return nil, err
				}
				l = &sqlast.Binary{Op: op, L: l, R: r}
				continue
			}
			return l, nil
		}
		if t.kind != tokIdent {
			return l, nil
		}
		switch strings.ToUpper(t.text) {
		case "IS":
			p.next()
			isNot := p.acceptKeyword("NOT")
			if p.acceptKeyword("NULL") {
				if isNot {
					l = &sqlast.Unary{Op: sqlast.OpNotNull, X: l}
				} else {
					l = &sqlast.Unary{Op: sqlast.OpIsNull, X: l}
				}
				continue
			}
			r, err := p.parseBit()
			if err != nil {
				return nil, err
			}
			if isNot {
				l = &sqlast.Binary{Op: sqlast.OpIsNot, L: l, R: r}
			} else {
				l = &sqlast.Binary{Op: sqlast.OpIs, L: l, R: r}
			}
		case "ISNULL":
			p.next()
			l = &sqlast.Unary{Op: sqlast.OpIsNull, X: l}
		case "NOTNULL":
			p.next()
			l = &sqlast.Unary{Op: sqlast.OpNotNull, X: l}
		case "LIKE":
			p.next()
			r, err := p.parseBit()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpLike, L: l, R: r}
		case "BETWEEN":
			p.next()
			lo, err := p.parseBit()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseBit()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Between{X: l, Lo: lo, Hi: hi}
		case "IN":
			p.next()
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case "NOT":
			// postfix forms: NOT NULL, NOT LIKE, NOT BETWEEN, NOT IN
			save := p.pos
			p.next()
			switch {
			case p.acceptKeyword("NULL"):
				l = &sqlast.Unary{Op: sqlast.OpNotNull, X: l}
			case p.acceptKeyword("LIKE"):
				r, err := p.parseBit()
				if err != nil {
					return nil, err
				}
				l = &sqlast.Binary{Op: sqlast.OpNotLike, L: l, R: r}
			case p.acceptKeyword("BETWEEN"):
				lo, err := p.parseBit()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseBit()
				if err != nil {
					return nil, err
				}
				l = &sqlast.Between{Not: true, X: l, Lo: lo, Hi: hi}
			case p.acceptKeyword("IN"):
				in, err := p.parseInTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			default:
				p.pos = save
				return l, nil
			}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseInTail(x sqlast.Expr, not bool) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	in := &sqlast.InList{X: x, Not: not}
	if !p.acceptOp(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return in, nil
}

var bitOps = map[string]sqlast.BinOp{
	"&": sqlast.OpBitAnd, "|": sqlast.OpBitOr, "<<": sqlast.OpShl, ">>": sqlast.OpShr,
}

func (p *parser) parseBit() (sqlast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokOp {
			if op, ok := bitOps[t.text]; ok {
				p.next()
				r, err := p.parseAdd()
				if err != nil {
					return nil, err
				}
				l = &sqlast.Binary{Op: op, L: l, R: r}
				continue
			}
		}
		return l, nil
	}
}

func (p *parser) parseAdd() (sqlast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpAdd, L: l, R: r}
		case p.acceptOp("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (sqlast.Expr, error) {
	l, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpMul, L: l, R: r}
		case p.acceptOp("/"):
			r, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpDiv, L: l, R: r}
		case p.acceptOp("%"):
			r, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			l = &sqlast.Binary{Op: sqlast.OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseConcat() (sqlast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.d.ConcatIsOr() {
		return l, nil // `||` handled at OR level for MySQL
	}
	for p.acceptOp("||") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: sqlast.OpConcat, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	switch {
	case p.acceptOp("-"):
		// A minus directly before a numeric literal folds into it, so
		// -9223372036854775808 stays an INTEGER (SQLite special-cases
		// the most-negative int64 the same way) and negative reals
		// round-trip as literals.
		if t := p.peek(); t.kind == tokInt {
			if i, err := strconv.ParseInt("-"+t.text, 10, 64); err == nil {
				p.next()
				return sqlast.Lit(sqlval.Int(i)), nil
			}
		} else if t.kind == tokFloat {
			if f, err := strconv.ParseFloat("-"+t.text, 64); err == nil {
				p.next()
				return sqlast.Lit(sqlval.Real(f)), nil
			}
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpNeg, X: x}, nil
	case p.acceptOp("+"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpPos, X: x}, nil
	case p.acceptOp("~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: sqlast.OpBitNot, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (sqlast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("COLLATE") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		coll, ok := sqlval.ParseCollation(name)
		if !ok {
			return nil, errf(p.peek().pos, "unknown collation %q", name)
		}
		e = &sqlast.Collate{X: e, Coll: coll}
	}
	return e, nil
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		if i, _, ok := parseIntToken(t.text); ok {
			return sqlast.Lit(sqlval.Int(i)), nil
		}
		f, _ := strconv.ParseFloat(t.text, 64)
		return sqlast.Lit(sqlval.Real(f)), nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			// Out-of-range literals saturate to ±Inf, the way SQLite
			// accepts 9e999 (which is also how ±Inf renders — the
			// round-trip fixed point depends on reading it back).
			if ne, ok := err.(*strconv.NumError); !ok || ne.Err != strconv.ErrRange {
				return nil, errf(t.pos, "bad numeric literal %q", t.text)
			}
		}
		return sqlast.Lit(sqlval.Real(f)), nil
	case tokString:
		p.next()
		return sqlast.Lit(sqlval.Text(t.text)), nil
	case tokBlob:
		p.next()
		return sqlast.Lit(sqlval.Blob([]byte(t.text))), nil
	case tokDoubleQuoted:
		p.next()
		// Dialect-specific "..." semantics: MySQL (without ANSI_QUOTES)
		// reads it as a string literal; SQLite resolves a column when one
		// exists and silently falls back to a string (the Listing 8
		// misfeature); PostgreSQL treats it strictly as an identifier.
		if p.d == dialect.MySQL {
			return sqlast.Lit(sqlval.Text(t.text)), nil
		}
		return &sqlast.ColumnRef{Column: t.text, MaybeString: p.d == dialect.SQLite}, nil
	case tokQuotedIdent:
		// `...` is a strict identifier in every dialect profile: a column
		// reference regardless of content (keywords, digits, spaces),
		// optionally table-qualified.
		p.next()
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return sqlast.Col(t.text, col), nil
		}
		return sqlast.Col("", t.text), nil
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, errf(t.pos, "unexpected token %q in expression", t.text)
	case tokIdent:
		word := strings.ToUpper(t.text)
		switch word {
		case "NULL":
			p.next()
			return sqlast.Lit(sqlval.Null()), nil
		case "TRUE":
			p.next()
			if p.d == dialect.Postgres {
				return sqlast.Lit(sqlval.Bool(true)), nil
			}
			return sqlast.Lit(sqlval.Int(1)), nil
		case "FALSE":
			p.next()
			if p.d == dialect.Postgres {
				return sqlast.Lit(sqlval.Bool(false)), nil
			}
			return sqlast.Lit(sqlval.Int(0)), nil
		case "CAST":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			var words []string
			for {
				tt := p.peek()
				if tt.kind != tokIdent {
					break
				}
				words = append(words, tt.text)
				p.next()
			}
			if len(words) == 0 {
				return nil, errf(p.peek().pos, "expected type name in CAST")
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.Cast{X: x, TypeName: strings.ToUpper(strings.Join(words, " "))}, nil
		case "CASE":
			p.next()
			return p.parseCase()
		}
		if reservedAfterExpr[word] || isStmtBoundary(word) {
			return nil, errf(t.pos, "unexpected keyword %q in expression", t.text)
		}
		p.next()
		// Function call?
		if p.acceptOp("(") {
			fc := &sqlast.FuncCall{Name: word}
			if !p.acceptOp(")") {
				if p.acceptOp("*") {
					// COUNT(*) — encode as zero-arg call.
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					return fc, nil
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column: ident.ident
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return sqlast.Col(t.text, col), nil
		}
		return sqlast.Col("", t.text), nil
	}
	return nil, errf(t.pos, "unexpected token in expression")
}

func (p *parser) parseCase() (sqlast.Expr, error) {
	c := &sqlast.Case{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.WhenClause{When: w, Then: th})
	}
	if len(c.Whens) == 0 {
		return nil, errf(p.peek().pos, "CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
