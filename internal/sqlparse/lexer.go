// Package sqlparse implements a hand-written lexer and recursive-descent
// parser for the three SQL dialects the engine substrate emulates. The
// engine parses every statement it receives — including the SQL text that
// PQS renders from generated ASTs — exactly like a real DBMS would.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokQuotedIdent  // `...` — always an identifier, never a keyword (MySQL style)
	tokDoubleQuoted // "..." — identifier or string depending on context (SQLite misfeature)
	tokString       // '...'
	tokBlob         // x'hex'
	tokInt
	tokFloat
	tokOp // punctuation / operator
)

// token is one lexical token.
type token struct {
	kind tokKind
	text string // raw text for idents/ops; decoded payload for strings/blobs
	pos  int    // byte offset, for error messages
}

// Error is a syntax error raised by the parser or lexer.
type Error struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src fully. It returns a syntax error for unterminated
// strings or invalid characters.
//
// The hot loop is allocation-free per token: idents, numbers, operators,
// escape-free strings, and escape-free quoted identifiers are all
// zero-copy subslices of src (sqlp-style span tokens), and the token
// slice is pre-sized from the input length so appends almost never
// regrow. Only tokens that need decoding — strings/identifiers with
// doubled-quote escapes, blob literals — take the building slow path.
// lexer_reference_test.go pins this implementation token-for-token
// against the straightforward builder-based reference lexer.
func lex(src string) ([]token, error) {
	// One SQL token per ~3 bytes is a comfortable upper bound for the
	// densest real statements ("(1,2)" is 5 tokens in 5 bytes only for
	// single-digit tuples; rendered campaign SQL averages far fewer).
	toks := make([]token, 0, len(src)/3+4)
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, errf(i, "unterminated block comment")
			}
			i += 2 + end + 2
		case isIdentStart(c):
			start := i
			for i < n && isIdentCont(src[i]) {
				i++
			}
			word := src[start:i]
			// Blob literal: x'ab01'
			if (word == "x" || word == "X") && i < n && src[i] == '\'' {
				payload, next, err := lexString(src, i)
				if err != nil {
					return nil, err
				}
				b, err := decodeHex(payload, start)
				if err != nil {
					return nil, err
				}
				toks = append(toks, token{kind: tokBlob, text: string(b), pos: start})
				i = next
				continue
			}
			toks = append(toks, token{kind: tokIdent, text: word, pos: start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			kind := tokInt
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < n && src[i] == '.' {
				kind = tokFloat
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					kind = tokFloat
					i = j
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, token{kind: kind, text: src[start:i], pos: start})
		case c == '\'':
			payload, next, err := lexString(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: payload, pos: i})
			i = next
		case c == '"' || c == '`':
			quote := c
			start := i
			text, next, err := lexQuoted(src, i, quote)
			if err != nil {
				return nil, err
			}
			i = next
			if len(text) == 0 {
				// An empty quoted identifier renders to nothing and can
				// never name an object; accepting it breaks the
				// render→reparse fixed point (found by FuzzUnionAllRoundTrip).
				return nil, errf(start, "empty quoted identifier")
			}
			kind := tokDoubleQuoted
			if quote == '`' {
				// Backtick is always an identifier (MySQL), and the quoting
				// survives into the token kind: a quoted keyword or
				// digit-leading name must stay an identifier when parsed,
				// or the renderer's quoting could never round-trip it.
				kind = tokQuotedIdent
			}
			toks = append(toks, token{kind: kind, text: text, pos: start})
		default:
			op, width := lexOp(src, i)
			if width == 0 {
				return nil, errf(i, "unexpected character %q", c)
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i += width
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// lexString reads a single-quoted string starting at src[start]=='\”.
// It returns the decoded payload and the index just past the closing quote.
// Escape-free strings — the overwhelmingly common case in rendered SQL —
// come back as a zero-copy subslice of src; a doubled-quote escape
// switches to the building slow path.
func lexString(src string, start int) (string, int, error) {
	n := len(src)
	for i := start + 1; i < n; i++ {
		if src[i] != '\'' {
			continue
		}
		if i+1 < n && src[i+1] == '\'' {
			return lexStringEscaped(src, start)
		}
		return src[start+1 : i], i + 1, nil
	}
	return "", 0, errf(start, "unterminated string literal")
}

func lexStringEscaped(src string, start int) (string, int, error) {
	i := start + 1
	n := len(src)
	var sb strings.Builder
	for {
		if i >= n {
			return "", 0, errf(start, "unterminated string literal")
		}
		if src[i] == '\'' {
			if i+1 < n && src[i+1] == '\'' {
				sb.WriteByte('\'')
				i += 2
				continue
			}
			return sb.String(), i + 1, nil
		}
		sb.WriteByte(src[i])
		i++
	}
}

// lexQuoted reads a quote-delimited identifier starting at
// src[start]==quote, returning the decoded name and the index just past
// the closing quote. Same shape as lexString: zero-copy when escape-free.
func lexQuoted(src string, start int, quote byte) (string, int, error) {
	n := len(src)
	for i := start + 1; i < n; i++ {
		if src[i] != quote {
			continue
		}
		if i+1 < n && src[i+1] == quote {
			return lexQuotedEscaped(src, start, quote)
		}
		return src[start+1 : i], i + 1, nil
	}
	return "", 0, errf(start, "unterminated quoted identifier")
}

func lexQuotedEscaped(src string, start int, quote byte) (string, int, error) {
	i := start + 1
	n := len(src)
	var sb strings.Builder
	for {
		if i >= n {
			return "", 0, errf(start, "unterminated quoted identifier")
		}
		if src[i] == quote {
			if i+1 < n && src[i+1] == quote {
				sb.WriteByte(quote)
				i += 2
				continue
			}
			return sb.String(), i + 1, nil
		}
		sb.WriteByte(src[i])
		i++
	}
}

func decodeHex(s string, pos int) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, errf(pos, "odd-length blob literal")
	}
	out := make([]byte, 0, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		hi, ok1 := hexVal(s[i])
		lo, ok2 := hexVal(s[i+1])
		if !ok1 || !ok2 {
			return nil, errf(pos, "invalid hex digit in blob literal")
		}
		out = append(out, hi<<4|lo)
	}
	return out, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// lexOp scans one operator/punctuation token, longest match first. A
// single branch on the lead byte replaces the old prefix-list scan; the
// returned text is a subslice of src, so no token ever allocates.
func lexOp(src string, i int) (string, int) {
	n := len(src)
	two := func() byte {
		if i+1 < n {
			return src[i+1]
		}
		return 0
	}
	switch src[i] {
	case '<':
		switch two() {
		case '=':
			if i+2 < n && src[i+2] == '>' {
				return src[i : i+3], 3 // <=> (MySQL null-safe equal)
			}
			return src[i : i+2], 2
		case '<', '>':
			return src[i : i+2], 2
		}
		return src[i : i+1], 1
	case '>':
		switch two() {
		case '>', '=':
			return src[i : i+2], 2
		}
		return src[i : i+1], 1
	case '=':
		if two() == '=' {
			return src[i : i+2], 2
		}
		return src[i : i+1], 1
	case '!':
		if two() == '=' {
			return src[i : i+2], 2
		}
		return "", 0 // bare '!' is not a token in any profile
	case '|':
		if two() == '|' {
			return src[i : i+2], 2
		}
		return src[i : i+1], 1
	case '+', '-', '*', '/', '%', '(', ')', ',', '.', ';', '&', '~':
		return src[i : i+1], 1
	}
	return "", 0
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// parseIntToken converts an integer token, falling back to float on
// overflow (SQLite behaviour: out-of-range integers become reals).
func parseIntToken(text string) (int64, float64, bool) {
	if v, err := strconv.ParseInt(text, 10, 64); err == nil {
		return v, 0, true
	}
	f, _ := strconv.ParseFloat(text, 64)
	return 0, f, false
}
