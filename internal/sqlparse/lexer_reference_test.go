package sqlparse

import (
	"strings"
	"testing"
	"time"
)

// This file pins the allocation-free lexer fast path token-for-token
// against lexReference — a copy of the pre-optimization lexer that built
// every string and quoted identifier through strings.Builder and matched
// operators with a prefix-list scan. The fast path must be a pure
// performance change: same tokens, same kinds, same positions, same
// errors, for every input.

// lexReference is the straightforward builder-based lexer the fast path
// replaced. Keep it in sync with nothing: it is frozen as the semantic
// baseline.
func lexReference(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, errf(i, "unterminated block comment")
			}
			i += 2 + end + 2
		case isIdentStart(c):
			start := i
			for i < n && isIdentCont(src[i]) {
				i++
			}
			word := src[start:i]
			if (word == "x" || word == "X") && i < n && src[i] == '\'' {
				payload, next, err := lexStringReference(src, i)
				if err != nil {
					return nil, err
				}
				b, err := decodeHex(payload, start)
				if err != nil {
					return nil, err
				}
				toks = append(toks, token{kind: tokBlob, text: string(b), pos: start})
				i = next
				continue
			}
			toks = append(toks, token{kind: tokIdent, text: word, pos: start})
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			kind := tokInt
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < n && src[i] == '.' {
				kind = tokFloat
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					kind = tokFloat
					i = j
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			toks = append(toks, token{kind: kind, text: src[start:i], pos: start})
		case c == '\'':
			payload, next, err := lexStringReference(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: payload, pos: i})
			i = next
		case c == '"' || c == '`':
			quote := c
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, errf(start, "unterminated quoted identifier")
				}
				if src[i] == quote {
					if i+1 < n && src[i+1] == quote {
						sb.WriteByte(quote)
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if sb.Len() == 0 {
				return nil, errf(start, "empty quoted identifier")
			}
			kind := tokDoubleQuoted
			if quote == '`' {
				kind = tokQuotedIdent
			}
			toks = append(toks, token{kind: kind, text: sb.String(), pos: start})
		default:
			op, width := lexOpReference(src, i)
			if width == 0 {
				return nil, errf(i, "unexpected character %q", c)
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i += width
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func lexStringReference(src string, start int) (string, int, error) {
	i := start + 1
	n := len(src)
	var sb strings.Builder
	for {
		if i >= n {
			return "", 0, errf(start, "unterminated string literal")
		}
		if src[i] == '\'' {
			if i+1 < n && src[i+1] == '\'' {
				sb.WriteByte('\'')
				i += 2
				continue
			}
			return sb.String(), i + 1, nil
		}
		sb.WriteByte(src[i])
		i++
	}
}

var multiOpsReference = []string{"<=>", "<<", ">>", "<=", ">=", "<>", "!=", "==", "||"}

func lexOpReference(src string, i int) (string, int) {
	for _, op := range multiOpsReference {
		if strings.HasPrefix(src[i:], op) {
			return op, len(op)
		}
	}
	switch src[i] {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';', '&', '|', '~':
		return src[i : i+1], 1
	}
	return "", 0
}

// lexEquivalenceCorpus covers every token kind, every operator, both
// escape paths, comments, and the statement shapes the campaign actually
// renders.
var lexEquivalenceCorpus = []string{
	"",
	"   \t\n\r  ",
	"SELECT 1",
	"SELECT c0, c1 FROM t0 WHERE c0 = 6917 AND c1 <> 'x'",
	"SELECT * FROM t0 JOIN t1 ON t0.c0 = t1.c0 LEFT JOIN t2 ON t1.c1 = t2.c1",
	"INSERT INTO t0 (c0, c1) VALUES (1, 'it''s'), (2, ''), (-3, 'a  b')",
	"CREATE TABLE \"t 0\" (\"c\"\"q\" INTEGER, `k``b` TEXT COLLATE NOCASE)",
	"SELECT x'ab01CD', X'00ff', 'plain', '''lead', 'trail'''",
	"SELECT 1 + 2 - 3 * 4 / 5 % 6, 1 << 2, 3 >> 1, 1 & 2, 1 | 2, ~5",
	"SELECT a <= b, a >= b, a <> b, a != b, a == b, a <=> b, a || b, a < b, a > b",
	"SELECT 1.5, .5, 1., 2e10, 2E-3, 1.5e+2, 9223372036854775808",
	"SELECT c0 FROM t0 -- trailing comment\nWHERE c0 IS NOT NULL",
	"SELECT /* block\ncomment */ c0 FROM t0; SELECT 2;",
	"UPDATE t0 SET c0 = NULL WHERE c0 BETWEEN 1 AND 10",
	"SELECT \"quoted ident\", `backtick`, 'string' FROM \"t\"",
	"select count(*), sum(c0) from t0 group by c1 having count(*) > 1",
	"SELECT CASE WHEN c0 > 0 THEN 'pos' ELSE 'neg' END FROM t0",
	"2e", "2e+", "x", "x 'ab'", ".", "..", "e10", "''",
}

// lexErrorCorpus holds inputs both lexers must reject identically.
var lexErrorCorpus = []string{
	"'unterminated",
	"'it''s unterminated too",
	"\"unterminated ident",
	"`unterminated backtick",
	"\"\"",
	"``",
	"\"esc\"\"aped",
	"/* unterminated block",
	"SELECT 1 ! 2",
	"SELECT @",
	"x'0g'",
	"x'0'",
}

func TestLexMatchesReference(t *testing.T) {
	for _, src := range lexEquivalenceCorpus {
		fast, fastErr := lex(src)
		ref, refErr := lexReference(src)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("%q: error mismatch: fast=%v reference=%v", src, fastErr, refErr)
		}
		if fastErr != nil {
			if fastErr.Error() != refErr.Error() {
				t.Fatalf("%q: error text mismatch: fast=%v reference=%v", src, fastErr, refErr)
			}
			continue
		}
		if len(fast) != len(ref) {
			t.Fatalf("%q: token count mismatch: fast=%d reference=%d", src, len(fast), len(ref))
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("%q: token %d mismatch: fast=%+v reference=%+v", src, i, fast[i], ref[i])
			}
		}
	}
	for _, src := range lexErrorCorpus {
		fast, fastErr := lex(src)
		ref, refErr := lexReference(src)
		if fastErr == nil || refErr == nil {
			t.Fatalf("%q: expected both lexers to fail, fast=(%v,%v) reference=(%v,%v)",
				src, fast, fastErr, ref, refErr)
		}
		if fastErr.Error() != refErr.Error() {
			t.Fatalf("%q: error text mismatch: fast=%v reference=%v", src, fastErr, refErr)
		}
	}
}

// tokenizeBenchSQL is shaped like the campaign's rendered queries: plain
// identifiers, numbers, operators, and escape-free strings.
const tokenizeBenchSQL = "SELECT t0.c0, t1.c1, COUNT(*) FROM t0 JOIN t1 ON t0.c0 = t1.c0 " +
	"LEFT JOIN t2 ON t1.c1 = t2.c1 WHERE t0.c0 >= 100 AND t1.c1 <> 'abc' " +
	"AND (t2.c2 IS NULL OR t2.c2 || 'x' == 'yx') GROUP BY t0.c0, t1.c1 " +
	"HAVING COUNT(*) > 1.5e2 ORDER BY t0.c0 LIMIT 10"

// TestTokenizeAllocs is the zero-allocs-per-token assertion: tokenizing
// an escape-free statement allocates only the token slice itself (one
// backing array), never per-token memory.
func TestTokenizeAllocs(t *testing.T) {
	toks, err := lex(tokenizeBenchSQL)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(toks); got < 40 {
		t.Fatalf("bench statement only lexes to %d tokens; corpus too thin to prove anything", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := lex(tokenizeBenchSQL); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("lex allocates %.1f times per run on an escape-free statement (want <=2: the token slice, nothing per token)", allocs)
	}
}

// TestTokenizeSpeedupRegression is the tripwire behind the documented
// ≥1.5× tokenizer speedup (BenchmarkTokenize is the precise measurement).
// The floor here is deliberately conservative — 1.2× — so the test stays
// stable on loaded CI machines while still failing loudly if the fast
// path ever stops paying for itself.
func TestTokenizeSpeedupRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is not short")
	}
	const rounds = 20000
	measure := func(f func(string) ([]token, error)) time.Duration {
		var best time.Duration
		// Best-of-3 damps scheduler noise on both sides.
		for attempt := 0; attempt < 3; attempt++ {
			start := time.Now()
			for i := 0; i < rounds; i++ {
				if _, err := f(tokenizeBenchSQL); err != nil {
					t.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best
	}
	measure(lex) // warm-up
	fast := measure(lex)
	ref := measure(lexReference)
	ratio := float64(ref) / float64(fast)
	t.Logf("fast=%s reference=%s ratio=%.2fx", fast, ref, ratio)
	if ratio < 1.2 {
		t.Errorf("fast lexer only %.2fx faster than reference (conservative floor 1.2x; benchmark target 1.5x)", ratio)
	}
}

// BenchmarkTokenize is the precise fast-vs-reference measurement; run
// with -benchmem to see the allocation gap (per-token builder allocs vs
// one slice).
func BenchmarkTokenize(b *testing.B) {
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(tokenizeBenchSQL)))
		for i := 0; i < b.N; i++ {
			if _, err := lex(tokenizeBenchSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(tokenizeBenchSQL)))
		for i := 0; i < b.N; i++ {
			if _, err := lexReference(tokenizeBenchSQL); err != nil {
				b.Fatal(err)
			}
		}
	})
}
