package sqlparse_test

// External test package: it imports the PQS generator, which transitively
// depends on sqlparse through the engine, so the property test must live
// outside the sqlparse package proper.

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Property: for any generated expression, render → parse → render is a
// fixpoint, and parsing never fails. This pins the renderer and parser to
// each other — PQS depends on the engine reading back exactly what the
// generator meant.
func TestGeneratedExpressionRoundTrip(t *testing.T) {
	cols := []gen.ColumnPick{
		{Table: "t0", Column: schema.ColumnInfo{Name: "c0", TypeName: "INT"}},
		{Table: "t0", Column: schema.ColumnInfo{Name: "c1", TypeName: "TEXT"}},
		{Table: "t1", Column: schema.ColumnInfo{Name: "c0", TypeName: "BOOLEAN"}},
	}
	for _, d := range dialect.All {
		eg := &gen.ExprGen{Rnd: gen.NewRand(d, 123), Cols: cols, MaxDepth: 4}
		for i := 0; i < 3000; i++ {
			e := eg.Generate()
			sql1 := sqlast.ExprSQL(e, d)
			parsed, err := sqlparse.ParseExpr(sql1, d)
			if err != nil {
				t.Fatalf("[%s] generated expression does not parse: %q: %v", d, sql1, err)
			}
			sql2 := sqlast.ExprSQL(parsed, d)
			if sql1 != sql2 {
				// One legitimate normalization: prefix minus folding into
				// integer literals. Re-parse must then be stable.
				parsed2, err := sqlparse.ParseExpr(sql2, d)
				if err != nil || sqlast.ExprSQL(parsed2, d) != sql2 {
					t.Fatalf("[%s] round trip unstable:\n  %s\n  %s", d, sql1, sql2)
				}
			}
		}
	}
}

// Property: every statement the state generator produces parses back to
// SQL that renders identically (full statement-level round trip).
func TestGeneratedStatementRoundTrip(t *testing.T) {
	for _, d := range dialect.All {
		for seed := int64(0); seed < 15; seed++ {
			e := engine.Open(d)
			sg := &gen.StateGen{Rnd: gen.NewRand(d, seed), E: e}
			err := sg.BuildDatabase(func(st sqlast.Stmt) error {
				sql1 := sqlast.SQL(st, d)
				parsed, perr := sqlparse.ParseOne(sql1, d)
				if perr != nil {
					t.Fatalf("[%s] generated statement does not parse: %q: %v", d, sql1, perr)
				}
				if sql2 := sqlast.SQL(parsed, d); sql2 != sql1 {
					t.Fatalf("[%s] statement round trip changed:\n  %s\n  %s", d, sql1, sql2)
				}
				_, _ = e.Exec(sql1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
