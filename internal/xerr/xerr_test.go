package xerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestNewAndCodeOf(t *testing.T) {
	err := New(CodeUnique, "UNIQUE constraint failed: %s", "t0.c0")
	if err.Error() != "UNIQUE constraint failed: t0.c0" {
		t.Errorf("message: %q", err.Error())
	}
	code, ok := CodeOf(err)
	if !ok || code != CodeUnique {
		t.Errorf("CodeOf = %v, %v", code, ok)
	}
	if !Is(err, CodeUnique) || Is(err, CodeCorrupt) {
		t.Error("Is broken")
	}
}

func TestCodeOfWrapped(t *testing.T) {
	err := fmt.Errorf("context: %w", New(CodeCrash, "SIGSEGV"))
	if code, ok := CodeOf(err); !ok || code != CodeCrash {
		t.Errorf("wrapped CodeOf = %v, %v", code, ok)
	}
}

func TestCodeOfForeign(t *testing.T) {
	if _, ok := CodeOf(errors.New("plain")); ok {
		t.Error("foreign errors have no code")
	}
	if Is(errors.New("plain"), CodeSyntax) {
		t.Error("Is on foreign error should be false")
	}
}

func TestAlwaysUnexpected(t *testing.T) {
	for _, c := range []Code{CodeCorrupt, CodeInternal, CodeCrash} {
		if !AlwaysUnexpected(c) {
			t.Errorf("%v should always be unexpected", c)
		}
	}
	for _, c := range []Code{CodeSyntax, CodeUnique, CodeNotNull, CodeType, CodeRange, CodeOption} {
		if AlwaysUnexpected(c) {
			t.Errorf("%v should be statement-dependent", c)
		}
	}
}

func TestCodeStrings(t *testing.T) {
	codes := []Code{CodeSyntax, CodeType, CodeNotNull, CodeUnique, CodeCheck,
		CodeNoObject, CodeDuplicateObject, CodeRange, CodeOption, CodeCorrupt,
		CodeInternal, CodeUnsupported, CodeCrash, CodeBusy}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("code %d string %q empty or duplicated", c, s)
		}
		seen[s] = true
	}
}
