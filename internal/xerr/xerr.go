// Package xerr is the engine's typed error model. The PQS error oracle
// classifies engine errors by Code: some codes are expected for a given
// statement (and whitelisted), while others — corruption, internal errors —
// always indicate a bug (the paper's error oracle).
package xerr

import (
	"errors"
	"fmt"
)

// Code classifies an engine error.
type Code uint8

// Engine error codes.
const (
	// CodeSyntax is a parse error.
	CodeSyntax Code = iota
	// CodeType is a dialect type error (strict typing, bad casts).
	CodeType
	// CodeNotNull is a NOT NULL constraint violation.
	CodeNotNull
	// CodeUnique is a UNIQUE or PRIMARY KEY violation.
	CodeUnique
	// CodeCheck is a CHECK constraint violation.
	CodeCheck
	// CodeNoObject covers missing tables, columns, and indexes.
	CodeNoObject
	// CodeDuplicateObject covers CREATE of an existing object.
	CodeDuplicateObject
	// CodeRange is a numeric out-of-range error (Postgres overflow,
	// division by zero).
	CodeRange
	// CodeOption is an invalid option/pragma error ("Incorrect arguments
	// to SET").
	CodeOption
	// CodeCorrupt reports database corruption ("malformed database disk
	// image"). Always unexpected — the error oracle's prime catch.
	CodeCorrupt
	// CodeInternal is an internal invariant failure ("negative bitmapset
	// member not allowed", "found unexpected null value in index").
	// Always unexpected.
	CodeInternal
	// CodeUnsupported marks dialect features the engine refuses.
	CodeUnsupported
	// CodeCrash marks a simulated process crash (recovered panic). The
	// crash oracle reports these as SEGFAULTs.
	CodeCrash
	// CodeBusy marks concurrency conflicts between sessions.
	CodeBusy
	// CodeIO marks a durable-storage I/O failure: the pager lost its
	// backing files to a (simulated) power cut mid-commit, or a post-crash
	// statement reached a dead pager. The recovery oracle treats these as
	// the process dying, not as an engine bug — classification maps them
	// to artifacts outside recovery campaigns.
	CodeIO
	// CodeConflict marks a serialization failure: a transaction aborted
	// because a concurrent commit invalidated its snapshot (first-committer
	// wins), or because the schema changed under it. Expected in concurrent
	// histories — the client is supposed to retry.
	CodeConflict
	// CodeTxnState marks transaction-control misuse: BEGIN inside a
	// transaction, COMMIT/ROLLBACK without one.
	CodeTxnState
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeSyntax:
		return "syntax"
	case CodeType:
		return "type"
	case CodeNotNull:
		return "notnull"
	case CodeUnique:
		return "unique"
	case CodeCheck:
		return "check"
	case CodeNoObject:
		return "no-object"
	case CodeDuplicateObject:
		return "duplicate-object"
	case CodeRange:
		return "range"
	case CodeOption:
		return "option"
	case CodeCorrupt:
		return "corrupt"
	case CodeInternal:
		return "internal"
	case CodeUnsupported:
		return "unsupported"
	case CodeCrash:
		return "crash"
	case CodeBusy:
		return "busy"
	case CodeIO:
		return "io"
	case CodeConflict:
		return "conflict"
	case CodeTxnState:
		return "txn-state"
	default:
		return fmt.Sprintf("code(%d)", uint8(c))
	}
}

// Error is a typed engine error.
type Error struct {
	Code Code
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Msg }

// New creates a typed engine error.
func New(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the engine error code; ok is false for foreign errors.
func CodeOf(err error) (Code, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Code, true
	}
	return 0, false
}

// Is reports whether err is an engine error with the given code.
func Is(err error, code Code) bool {
	c, ok := CodeOf(err)
	return ok && c == code
}

// AlwaysUnexpected reports whether the code indicates a bug regardless of
// the statement that produced it (the error oracle's unconditional set).
func AlwaysUnexpected(code Code) bool {
	return code == CodeCorrupt || code == CodeInternal || code == CodeCrash
}
