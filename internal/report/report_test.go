package report

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Headers: []string{"A", "Long header"},
		Note:    "note",
	}
	tab.AddRow(1, "x")
	tab.AddRow("wide cell value", 2)
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "Long header") ||
		!strings.Contains(out, "wide cell value") || !strings.Contains(out, "note") {
		t.Errorf("render missing pieces:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator row missing: %q", lines[2])
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"A", "B"}}
	tab.AddRow("x", "y")
	md := tab.Markdown()
	if !strings.Contains(md, "### T") || !strings.Contains(md, "| A | B |") ||
		!strings.Contains(md, "| --- | --- |") || !strings.Contains(md, "| x | y |") {
		t.Errorf("markdown wrong:\n%s", md)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]int{3, 1, 3, 8, 4})
	if len(pts) != 4 {
		t.Fatalf("CDF points = %v", pts)
	}
	if pts[0].X != 1 || pts[0].Frac != 0.2 {
		t.Errorf("first point %v", pts[0])
	}
	if pts[1].X != 3 || pts[1].Frac != 0.6 {
		t.Errorf("dup-collapsed point %v", pts[1])
	}
	if last := pts[len(pts)-1]; last.X != 8 || last.Frac != 1.0 {
		t.Errorf("last point %v", last)
	}
	if CDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
	if out := RenderCDF("title", pts); !strings.Contains(out, "title") || !strings.Contains(out, "1.00") {
		t.Errorf("RenderCDF output:\n%s", out)
	}
}

func TestStats(t *testing.T) {
	s := []int{1, 2, 3, 4}
	if m := Median(s); m != 2.5 {
		t.Errorf("median = %v", m)
	}
	if m := Median([]int{5, 1, 3}); m != 3 {
		t.Errorf("odd median = %v", m)
	}
	if m := Mean(s); m != 2.5 {
		t.Errorf("mean = %v", m)
	}
	if m := Max(s); m != 4 {
		t.Errorf("max = %v", m)
	}
	if Median(nil) != 0 || Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-sample stats should be 0")
	}
}

func TestCountLOC(t *testing.T) {
	root := RepoRoot()
	n, err := CountLOC(filepath.Join(root, "internal", "dialect"))
	if err != nil {
		t.Fatal(err)
	}
	// dialect.go is ~100 lines; test files must be excluded.
	if n < 30 || n > 400 {
		t.Errorf("dialect LOC = %d, implausible", n)
	}
}

func TestRepoRootFindsGoMod(t *testing.T) {
	root := RepoRoot()
	if root == "." {
		t.Skip("not run inside the repository")
	}
	if _, err := CountLOC(filepath.Join(root, "internal")); err != nil {
		t.Errorf("internal tree unreadable from root %s: %v", root, err)
	}
}

func TestStatementHistogram(t *testing.T) {
	h := NewStatementHistogram()
	h.AddCase([]string{"CREATE TABLE", "INSERT", "INSERT", "SELECT"}, "SELECT", "contains")
	h.AddCase([]string{"CREATE TABLE", "VACUUM"}, "VACUUM", "error")
	if h.Total != 2 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Counts["INSERT"] != 1 {
		t.Errorf("INSERT counted per-case, got %d", h.Counts["INSERT"])
	}
	if h.Counts["CREATE TABLE"] != 2 {
		t.Errorf("CREATE TABLE count = %d", h.Counts["CREATE TABLE"])
	}
	if h.Trigger["SELECT"]["contains"] != 1 || h.Trigger["VACUUM"]["error"] != 1 {
		t.Errorf("trigger map wrong: %v", h.Trigger)
	}
	out := h.Render("fig")
	if !strings.Contains(out, "CREATE TABLE") || !strings.Contains(out, "100.0%") {
		t.Errorf("render:\n%s", out)
	}
}
