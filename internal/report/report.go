// Package report renders the reproduction's tables and figures in the
// shape the paper presents them: ASCII tables for Tables 1–4 and data
// series for Figures 2–3. The benchmark harness and cmd/benchreport both
// print through this package so EXPERIMENTS.md and bench output agree.
package report

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Table is a titled ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Note    string
}

// AddRow appends one row, stringifying values.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		b.WriteString(t.Note)
		b.WriteString("\n")
	}
	return b.String()
}

// Markdown renders the table as GitHub Markdown (EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		b.WriteString("\n" + t.Note + "\n")
	}
	return b.String()
}

// CDFPoint is one point of a cumulative distribution (Figure 2).
type CDFPoint struct {
	X    int
	Frac float64
}

// CDF computes the cumulative distribution of integer samples.
func CDF(samples []int) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	var out []CDFPoint
	for i, v := range s {
		if len(out) > 0 && out[len(out)-1].X == v {
			out[len(out)-1].Frac = float64(i+1) / float64(len(s))
			continue
		}
		out = append(out, CDFPoint{X: v, Frac: float64(i+1) / float64(len(s))})
	}
	return out
}

// RenderCDF draws a Figure 2-style text plot.
func RenderCDF(title string, points []CDFPoint) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	b.WriteString("LOC  cumulative  \n")
	for _, p := range points {
		bars := int(p.Frac*40 + 0.5)
		fmt.Fprintf(&b, "%3d  %.2f  %s\n", p.X, p.Frac, strings.Repeat("#", bars))
	}
	return b.String()
}

// Median computes the median of integer samples (0 if empty).
func Median(samples []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

// Mean computes the mean of integer samples.
func Mean(samples []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0
	for _, v := range samples {
		sum += v
	}
	return float64(sum) / float64(len(samples))
}

// Max returns the maximum sample (0 if empty).
func Max(samples []int) int {
	m := 0
	for _, v := range samples {
		if v > m {
			m = v
		}
	}
	return m
}

// CountLOC counts non-blank, non-test Go source lines under dir,
// recursively (the Table 1/4 size columns).
func CountLOC(dir string) (int, error) {
	total := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1024*1024), 1024*1024)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) != "" {
				total++
			}
		}
		return sc.Err()
	})
	return total, err
}

// RepoRoot locates the repository root by walking up from the working
// directory until go.mod appears (benches run from the repo root; commands
// may run elsewhere).
func RepoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// StatementHistogram aggregates Figure 3: for each statement-kind label,
// the fraction of reduced test cases containing it.
type StatementHistogram struct {
	// Counts[kind] = number of test cases containing the kind.
	Counts map[string]int
	// Trigger[kind][oracle] = cases where this kind was the final
	// (triggering) statement, per detecting oracle.
	Trigger map[string]map[string]int
	// Total is the number of test cases aggregated.
	Total int
}

// NewStatementHistogram returns an empty histogram.
func NewStatementHistogram() *StatementHistogram {
	return &StatementHistogram{
		Counts:  map[string]int{},
		Trigger: map[string]map[string]int{},
	}
}

// AddCase records one reduced test case: its statement kinds, the kind of
// the final statement, and the oracle that caught the bug.
func (h *StatementHistogram) AddCase(kinds []string, triggerKind, oracle string) {
	h.Total++
	seen := map[string]bool{}
	for _, k := range kinds {
		if !seen[k] {
			seen[k] = true
			h.Counts[k]++
		}
	}
	if h.Trigger[triggerKind] == nil {
		h.Trigger[triggerKind] = map[string]int{}
	}
	h.Trigger[triggerKind][oracle]++
}

// Render draws the Figure 3-style per-kind bars.
func (h *StatementHistogram) Render(title string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	kinds := make([]string, 0, len(h.Counts))
	for k := range h.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return h.Counts[kinds[i]] > h.Counts[kinds[j]] })
	for _, k := range kinds {
		frac := 0.0
		if h.Total > 0 {
			frac = float64(h.Counts[k]) / float64(h.Total)
		}
		bars := strings.Repeat("#", int(frac*30+0.5))
		trig := ""
		if tm := h.Trigger[k]; len(tm) > 0 {
			var parts []string
			for o, n := range tm {
				parts = append(parts, fmt.Sprintf("%s:%d", o, n))
			}
			sort.Strings(parts)
			trig = " triggers[" + strings.Join(parts, " ") + "]"
		}
		fmt.Fprintf(&b, "%-20s %5.1f%% %s%s\n", k, frac*100, bars, trig)
	}
	return b.String()
}
