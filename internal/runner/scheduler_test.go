package runner

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
)

// canonical is the schedule-independent slice of a Result: detection,
// detecting seed, oracle attribution, trace, and reduction. Databases,
// Stats, and Elapsed legitimately vary with worker count.
type canonical struct {
	Detected   bool
	Seed       int64
	Oracle     string
	DetectedBy string
	Message    string
	Trace      []string
	Reduced    []string
	CrashPlan  string
}

func canon(r Result) canonical {
	c := canonical{Detected: r.Detected, Seed: r.Seed, Reduced: r.Reduced}
	if r.Bug != nil {
		c.Oracle = string(r.Bug.Oracle)
		c.DetectedBy = r.Bug.DetectedBy
		c.Message = r.Bug.Message
		c.Trace = r.Bug.Trace
		c.CrashPlan = r.Bug.CrashPlan
	}
	return c
}

// TestSchedulerDeterminism is the acceptance test for canonical
// lowest-seed detection: the same BaseSeed must yield byte-identical
// results (detection, seed, oracle, trace, reduction) at Workers=1 and
// Workers=8, for detecting, metamorphic, and soundness campaigns alike.
// CI runs this under -race: the interesting failures are scheduler data
// races, not just wrong answers.
func TestSchedulerDeterminism(t *testing.T) {
	campaigns := []Campaign{
		{Dialect: dialect.MySQL, Fault: faults.InsertVisibility, MaxDatabases: 300, BaseSeed: 1, Reduce: true},
		{Dialect: dialect.SQLite, Fault: faults.UnionAllDedup, MaxDatabases: 300, BaseSeed: 7, Oracles: []string{"tlp"}},
		{Dialect: dialect.SQLite, Fault: faults.PartialIndexNotNull, MaxDatabases: 300, BaseSeed: 3, Oracles: []string{"pqs", "tlp", "norec"}},
		{Dialect: dialect.Postgres, MaxDatabases: 30, BaseSeed: 5}, // soundness: must exhaust budget
		// Durable pager storage: the recovery oracle's crash schedules must
		// also be schedule-independent (crash plans derive from the seed).
		{Dialect: dialect.SQLite, Fault: faults.PagerLostFlush, MaxDatabases: 300, BaseSeed: 2, Oracles: []string{"recovery"}, Reduce: true},
		// Grouped/ordered workload: these faults live in the hash-aggregation
		// and top-K executor paths, so detecting them exercises the GROUP
		// BY/ORDER BY/LIMIT shapes the generator now emits.
		{Dialect: dialect.SQLite, Fault: faults.HashAggCollation, MaxDatabases: 600, BaseSeed: 1, Oracles: []string{"pqs"}, Reduce: true},
		{Dialect: dialect.MySQL, Fault: faults.TopKHeapBoundary, MaxDatabases: 600, BaseSeed: 1, Oracles: []string{"pqs"}},
	}
	sweep := func(workers int) []canonical {
		s := &Scheduler{Workers: workers}
		results := s.Sweep(context.Background(), campaigns)
		out := make([]canonical, len(results))
		for i, r := range results {
			out[i] = canon(r)
		}
		return out
	}
	one := sweep(1)
	eight := sweep(8)
	for i := range campaigns {
		if !reflect.DeepEqual(one[i], eight[i]) {
			t.Errorf("campaign %d not schedule-independent:\nworkers=1: %+v\nworkers=8: %+v", i, one[i], eight[i])
		}
	}
	// Sanity: the detecting campaigns did detect, the soundness one did not.
	for _, i := range []int{0, 1, 2, 4, 5, 6} {
		if !one[i].Detected {
			t.Errorf("campaign %d missed its fault", i)
		}
	}
	if one[3].Detected {
		t.Errorf("soundness campaign false positive: %+v", one[3])
	}
	if one[3].Seed != -1 {
		t.Errorf("soundness campaign Seed = %d, want -1", one[3].Seed)
	}
}

// TestSweepMatchesIndividualRuns pins the shared-pool refactor's
// compatibility contract: a whole-corpus sweep through one scheduler must
// report the same per-fault detections as one campaign run at a time.
func TestSweepMatchesIndividualRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep comparison is not short")
	}
	var campaigns []Campaign
	for _, info := range faults.ForDialect(dialect.MySQL) {
		campaigns = append(campaigns, Campaign{
			Dialect:      dialect.MySQL,
			Fault:        info.ID,
			MaxDatabases: 400,
			BaseSeed:     1,
			Oracles:      []string{oracle.ForFault(info)},
		})
	}
	s := &Scheduler{Workers: 4}
	swept := s.Sweep(context.Background(), campaigns)
	for i, c := range campaigns {
		got := canon(swept[i])
		want := canon(RunContext(context.Background(), c))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: sweep vs individual run:\nsweep:      %+v\nindividual: %+v", c.Fault, got, want)
		}
	}
}

// TestRunCorpusContextCancellation verifies corpus sweeps honor
// cancellation the way RunContext always has: the seed feed stops, and
// every fault still reports a (partial) result.
func TestRunCorpusContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := RunCorpusContext(ctx, dialect.SQLite, 100000, 1, false)
	if want := len(faults.ForDialect(dialect.SQLite)); len(results) != want {
		t.Fatalf("%d results, want one per fault (%d)", len(results), want)
	}
	total := 0
	for _, r := range results {
		if r.Detected {
			t.Errorf("detection on cancelled sweep: %s", r.Campaign.Fault)
		}
		total += r.Databases
	}
	if total > 8 {
		t.Errorf("cancelled sweep still ran %d databases", total)
	}
}

// TestRunCorpusContextDeadline verifies a deadline interrupts a sweep
// mid-flight with partial progress.
func TestRunCorpusContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	results := RunCorpusContext(ctx, dialect.SQLite, 1000000, 1, false)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline ignored: sweep ran %v", elapsed)
	}
	total := 0
	for _, r := range results {
		total += r.Databases
	}
	if total == 0 {
		t.Error("expected some databases before the deadline")
	}
}

// TestSchedulerStealing shapes a sweep so stealing must happen for it to
// finish promptly: with two workers and one task whose budget dwarfs the
// other's, the worker whose partition drains first has to pull units from
// the big task. The assertion is on completed work — every unit of both
// tasks runs exactly once (database counts match budgets exactly, so no
// unit was lost or duplicated by the steal path).
func TestSchedulerStealing(t *testing.T) {
	campaigns := []Campaign{
		{Dialect: dialect.SQLite, MaxDatabases: 120, BaseSeed: 11}, // soundness: runs to budget
		{Dialect: dialect.SQLite, MaxDatabases: 4, BaseSeed: 23},
	}
	s := &Scheduler{Workers: 2}
	results := s.Sweep(context.Background(), campaigns)
	for i, want := range []int{120, 4} {
		if results[i].Databases != want {
			t.Errorf("campaign %d ran %d databases, want exactly %d", i, results[i].Databases, want)
		}
		if results[i].Detected {
			t.Errorf("campaign %d false positive", i)
		}
	}
}
