package runner

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

func TestCampaignDetects(t *testing.T) {
	res := Run(Campaign{
		Dialect:      dialect.MySQL,
		Fault:        faults.InsertVisibility,
		MaxDatabases: 300,
		Workers:      4,
		Reduce:       true,
	})
	if !res.Detected {
		t.Fatalf("campaign missed %s in %d databases", faults.InsertVisibility, res.Databases)
	}
	if res.Bug.Oracle != faults.OracleContainment {
		t.Errorf("oracle = %s, want containment", res.Bug.Oracle)
	}
	if len(res.Reduced) == 0 || len(res.Reduced) > len(res.Bug.Trace) {
		t.Errorf("reduction: %d -> %d", len(res.Bug.Trace), len(res.Reduced))
	}
	if res.Stats.Statements == 0 || res.Databases == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
}

func TestCampaignSoundness(t *testing.T) {
	// No fault enabled: the campaign must exhaust its budget without a
	// detection.
	res := Run(Campaign{
		Dialect:      dialect.SQLite,
		MaxDatabases: 40,
		Workers:      4,
	})
	if res.Detected {
		t.Fatalf("false positive: %s (%s)", res.Bug.Message, res.Bug.Oracle)
	}
	if res.Databases != 40 {
		t.Errorf("budget not exhausted: %d databases", res.Databases)
	}
}

func TestCampaignDeterministicSeeding(t *testing.T) {
	run := func() (bool, int) {
		res := Run(Campaign{
			Dialect:      dialect.SQLite,
			Fault:        faults.VacuumCorrupt,
			MaxDatabases: 100,
			Workers:      1, // single worker for strict determinism
			BaseSeed:     77,
		})
		return res.Detected, len(res.Reduced)
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("campaign not deterministic: (%v,%d) vs (%v,%d)", d1, r1, d2, r2)
	}
}
