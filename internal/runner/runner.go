// Package runner drives PQS campaigns: parallel workers, each on its own
// database (the paper parallelizes by "running each thread on a distinct
// database"), hunting one injected fault until detection or budget
// exhaustion. Campaigns execute on a shared work-stealing Scheduler over
// pooled, resettable engine lifecycles — one campaign per Run call, or a
// whole fault corpus multiplexed through one pool per RunCorpus sweep.
// Campaign results feed every table and figure reproduction.
package runner

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
)

// Campaign configures one hunt.
type Campaign struct {
	Dialect dialect.Dialect
	// Fault is the single injected bug to hunt ("" = none, soundness run).
	Fault faults.Fault
	// MaxDatabases bounds the total databases generated across workers.
	MaxDatabases int
	// Workers is the parallelism degree (default GOMAXPROCS, capped at 8).
	// Inside a multi-campaign Scheduler sweep the shared pool's size wins
	// and this field is ignored.
	Workers int
	// BaseSeed offsets worker seeds for determinism.
	BaseSeed int64
	// Oracles are the testing oracles to rotate across the campaign's
	// databases ("pqs", "tlp", "norec"); database i runs under
	// Oracles[i % len(Oracles)], so parallel workers naturally round-robin
	// the oracle mix. Empty means PQS only. Overrides Tester.Oracle.
	Oracles []string
	// Tester overrides generation parameters (Dialect/Seed/Faults are
	// filled in by the runner).
	Tester core.Config
	// Reduce shrinks the detection's trace before returning.
	Reduce bool
}

// Result is a campaign outcome. Detected, Bug, Seed, and Reduced are
// deterministic for a given BaseSeed regardless of worker count (the
// scheduler reports the lowest detecting seed); Databases, Stats, and
// Elapsed count the actual work done, which varies with scheduling.
type Result struct {
	Campaign Campaign
	Detected bool
	Bug      *core.Bug
	// Seed is the seed of the detecting database (BaseSeed + offset), or
	// -1 when nothing was detected.
	Seed      int64
	Reduced   []string
	Databases int
	Stats     core.Stats
	Elapsed   time.Duration
}

// Run executes the campaign to completion (no external cancellation).
func Run(c Campaign) Result {
	return RunContext(context.Background(), c)
}

// RunContext executes the campaign until detection, budget exhaustion, or
// context cancellation. On cancellation the seed feed stops immediately
// and in-flight databases finish; the partial Result reports the work
// done so far (Detected stays false unless a worker already found the
// bug).
func RunContext(ctx context.Context, c Campaign) Result {
	s := &Scheduler{Workers: c.Workers}
	return s.Sweep(ctx, []Campaign{c})[0]
}

// CorpusCampaigns builds the standard campaign per registered fault of a
// dialect, routing each fault to the testing oracle its registry entry
// expects (metamorphic faults are invisible to PQS by construction).
func CorpusCampaigns(d dialect.Dialect, maxDatabases int, baseSeed int64, doReduce bool) []Campaign {
	var out []Campaign
	for _, info := range faults.ForDialect(d) {
		out = append(out, Campaign{
			Dialect:      d,
			Fault:        info.ID,
			MaxDatabases: maxDatabases,
			BaseSeed:     baseSeed,
			Reduce:       doReduce,
			Oracles:      []string{oracle.ForFault(info)},
		})
	}
	return out
}

// RunCorpus hunts every registered fault of a dialect through one shared
// scheduler pool (one work-stealing sweep, not one worker pool per
// fault).
func RunCorpus(d dialect.Dialect, maxDatabases int, baseSeed int64, doReduce bool) []Result {
	return RunCorpusContext(context.Background(), d, maxDatabases, baseSeed, doReduce)
}

// RunCorpusContext is RunCorpus with cancellation: the sweep stops
// issuing databases when ctx is done, in-flight databases finish, and
// every fault reports its partial Result.
func RunCorpusContext(ctx context.Context, d dialect.Dialect, maxDatabases int, baseSeed int64, doReduce bool) []Result {
	s := &Scheduler{}
	return s.Sweep(ctx, CorpusCampaigns(d, maxDatabases, baseSeed, doReduce))
}
