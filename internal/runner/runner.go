// Package runner drives PQS campaigns: parallel workers, each on its own
// database (the paper parallelizes by "running each thread on a distinct
// database"), hunting one injected fault until detection or budget
// exhaustion. Campaign results feed every table and figure reproduction.
package runner

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/reduce"
	"repro/internal/sqlval"
)

// Campaign configures one hunt.
type Campaign struct {
	Dialect dialect.Dialect
	// Fault is the single injected bug to hunt ("" = none, soundness run).
	Fault faults.Fault
	// MaxDatabases bounds the total databases generated across workers.
	MaxDatabases int
	// Workers is the parallelism degree (default GOMAXPROCS, capped at 8).
	Workers int
	// BaseSeed offsets worker seeds for determinism.
	BaseSeed int64
	// Oracles are the testing oracles to rotate across the campaign's
	// databases ("pqs", "tlp", "norec"); database i runs under
	// Oracles[i % len(Oracles)], so parallel workers naturally round-robin
	// the oracle mix. Empty means PQS only. Overrides Tester.Oracle.
	Oracles []string
	// Tester overrides generation parameters (Dialect/Seed/Faults are
	// filled in by the runner).
	Tester core.Config
	// Reduce shrinks the detection's trace before returning.
	Reduce bool
}

// Result is a campaign outcome.
type Result struct {
	Campaign  Campaign
	Detected  bool
	Bug       *core.Bug
	Reduced   []string
	Databases int
	Stats     core.Stats
	Elapsed   time.Duration
}

// Run executes the campaign to completion (no external cancellation).
func Run(c Campaign) Result {
	return RunContext(context.Background(), c)
}

// RunContext executes the campaign until detection, budget exhaustion, or
// context cancellation. On cancellation the seed feed stops immediately and
// in-flight databases finish; the partial Result reports the work done so
// far (Detected stays false unless a worker already found the bug).
func RunContext(ctx context.Context, c Campaign) Result {
	if c.MaxDatabases <= 0 {
		c.MaxDatabases = 200
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	var fs *faults.Set
	if c.Fault != "" {
		fs = faults.NewSet(c.Fault)
	}

	start := time.Now()
	var (
		mu        sync.Mutex
		found     *core.Bug
		databases int
		agg       = core.Stats{Rectified: map[sqlval.TriBool]int{}}
	)

	next := make(chan int64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < c.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range next {
				if ctx.Err() != nil {
					return
				}
				cfg := c.Tester
				cfg.Dialect = c.Dialect
				cfg.Seed = c.BaseSeed + seed
				cfg.Faults = fs
				if len(c.Oracles) > 0 {
					cfg.Oracle = c.Oracles[int(seed)%len(c.Oracles)]
				}
				tester := core.NewTester(cfg)
				bug, err := tester.RunDatabase()
				mu.Lock()
				databases++
				agg.Add(tester.Stats())
				alreadyFound := found != nil
				if err == nil && bug != nil && !alreadyFound {
					found = bug
					close(done)
				}
				mu.Unlock()
				if err == nil && bug != nil {
					return
				}
			}
		}()
	}

	go func() {
		defer close(next)
		for i := 0; i < c.MaxDatabases; i++ {
			select {
			case next <- int64(i):
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	wg.Wait()

	res := Result{
		Campaign:  c,
		Detected:  found != nil,
		Bug:       found,
		Databases: databases,
		Elapsed:   time.Since(start),
	}
	res.Stats = agg
	if found != nil {
		if c.Reduce {
			res.Reduced = reduce.BugFully(found, c.Dialect, fs)
		} else {
			res.Reduced = found.Trace
		}
	}
	return res
}

// RunCorpus hunts every registered fault of a dialect, one campaign each,
// routing each fault to the testing oracle its registry entry expects
// (metamorphic faults are invisible to PQS by construction).
func RunCorpus(d dialect.Dialect, maxDatabases int, baseSeed int64, doReduce bool) []Result {
	var out []Result
	for _, info := range faults.ForDialect(d) {
		out = append(out, Run(Campaign{
			Dialect:      d,
			Fault:        info.ID,
			MaxDatabases: maxDatabases,
			BaseSeed:     baseSeed,
			Reduce:       doReduce,
			Oracles:      []string{oracle.ForFault(info)},
		}))
	}
	return out
}
