package runner

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/reduce"
	"repro/internal/sqlval"
	"repro/internal/sut"
)

// Scheduler multiplexes many campaigns over one shared worker pool. Each
// campaign (fault × dialect × oracle mix) becomes a task whose units are
// individual database seeds; workers own a round-robin partition of the
// tasks and steal units from any other task once their own are drained,
// so the pool stays saturated through the tail of a corpus sweep instead
// of standing up and tearing down one pool per campaign.
//
// Determinism: every unit runs with Seed = BaseSeed + offset through a
// pooled core.Lifecycle that is byte-equivalent to a throwaway NewTester,
// and a detection is reported for the *lowest* detecting seed offset —
// seeds are issued in order, so every offset below a detection has run —
// which makes Detected/Bug/Seed independent of worker count and of which
// worker ran which unit. Databases/Stats/Elapsed remain schedule-
// dependent (they count discarded in-flight work).
type Scheduler struct {
	// Workers is the shared pool's size (0 = GOMAXPROCS, capped at 8).
	Workers int
}

// schedTask is one campaign inside a sweep.
type schedTask struct {
	idx  int
	c    Campaign
	fs   *faults.Set
	cfg  core.Config
	pool *sut.Pool

	mu        sync.Mutex
	started   time.Time // when the task's first unit was issued
	lastDone  time.Time // when the task's most recent unit completed
	nextSeed  int64     // next seed offset to issue (issued strictly in order)
	inFlight  int
	stopped   bool  // a detection landed: stop issuing new offsets
	bestSeed  int64 // lowest detecting offset so far; -1 = none
	bug       *core.Bug
	databases int
	stats     core.Stats
	finished  bool
}

// take issues the next seed offset, or reports the task has none left.
func (t *schedTask) take(ctx context.Context) (int64, bool) {
	if ctx.Err() != nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.nextSeed >= int64(t.c.MaxDatabases) {
		return 0, false
	}
	if t.started.IsZero() {
		t.started = time.Now()
	}
	off := t.nextSeed
	t.nextSeed++
	t.inFlight++
	return off, true
}

// hasUnits reports whether take could currently succeed.
func (t *schedTask) hasUnits() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.stopped && t.nextSeed < int64(t.c.MaxDatabases)
}

// complete records one finished unit and reports whether the caller just
// completed the whole task (and must finalize it). Detections keep the
// lowest offset: offsets are issued in order, so by the time any offset
// detects, every lower offset has been issued and will complete, making
// the minimum over completed units the canonical, schedule-independent
// answer.
func (t *schedTask) complete(off int64, bug *core.Bug, stats *core.Stats) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inFlight--
	t.databases++
	t.lastDone = time.Now()
	t.stats.Add(stats)
	if bug != nil {
		if t.bestSeed < 0 || off < t.bestSeed {
			t.bestSeed, t.bug = off, bug
		}
		t.stopped = true
	}
	if t.inFlight == 0 && (t.stopped || t.nextSeed >= int64(t.c.MaxDatabases)) && !t.finished {
		t.finished = true
		return true
	}
	return false
}

// Sweep runs every campaign to completion (detection, budget exhaustion,
// or context cancellation) through one shared worker pool and returns one
// Result per campaign, in input order. Campaign.Workers is ignored inside
// a sweep — the scheduler's pool is the parallelism degree.
func (s *Scheduler) Sweep(ctx context.Context, campaigns []Campaign) []Result {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}

	tasks := make([]*schedTask, len(campaigns))
	for i, c := range campaigns {
		if c.MaxDatabases <= 0 {
			c.MaxDatabases = 200
		}
		var fs *faults.Set
		if c.Fault != "" {
			fs = faults.NewSet(c.Fault)
		}
		cfg := c.Tester
		cfg.Dialect = c.Dialect
		cfg.Faults = fs
		for _, o := range c.Oracles {
			if o == "recovery" {
				// The recovery-equivalence oracle needs the durable pager
				// backend, and each of its checks crashes and recovers the
				// database. One crash round per lifecycle is forced: a
				// second round's reproduction trace (setup + that round's
				// DML) would silently omit the first round's mutations.
				if cfg.Storage == "" {
					cfg.Storage = "pager"
				}
				cfg.QueriesPerDB = 1
			}
		}
		tasks[i] = &schedTask{
			idx:      i,
			c:        c,
			fs:       fs,
			cfg:      cfg,
			pool:     sut.NewPool(cfg.Backend, cfg.Session()),
			bestSeed: -1,
			stats:    core.Stats{Rectified: map[sqlval.TriBool]int{}},
		}
	}

	results := make([]Result, len(campaigns))
	finalize := func(t *schedTask) {
		res := Result{
			Campaign:  t.c,
			Databases: t.databases,
			Stats:     t.stats,
			Seed:      -1,
		}
		// Elapsed is the task's own span (first unit issued → last unit
		// completed), not the whole sweep's — per-fault throughput stays
		// meaningful in a multi-campaign or cancelled sweep. A task that
		// never ran reports zero.
		if !t.started.IsZero() {
			res.Elapsed = t.lastDone.Sub(t.started)
		}
		if t.bestSeed >= 0 {
			res.Detected = true
			res.Bug = t.bug
			res.Seed = t.c.BaseSeed + t.bestSeed
			if t.c.Reduce {
				res.Reduced = reduce.BugFully(t.bug, t.c.Dialect, t.fs)
			} else {
				res.Reduced = t.bug.Trace
			}
		}
		results[t.idx] = res
		t.pool.Close()
	}

	// pick scans the worker's own partition first (task affinity keeps
	// pooled engines warm), then steals a unit from any other task.
	pick := func(w int) *schedTask {
		for i := w; i < len(tasks); i += workers {
			if tasks[i].hasUnits() {
				return tasks[i]
			}
		}
		for i := range tasks {
			if t := tasks[(w+i)%len(tasks)]; t.hasUnits() {
				return t
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lcs := map[*schedTask]*core.Lifecycle{}
			for {
				t := pick(w)
				if t == nil {
					return // availability only shrinks: nothing left to help with
				}
				off, ok := t.take(ctx)
				if !ok {
					if ctx.Err() != nil {
						return
					}
					continue // task drained between pick and take
				}
				lc := lcs[t]
				if lc == nil {
					lc = core.NewLifecycleWithPool(t.cfg, t.pool)
					lcs[t] = lc
				}
				if len(t.c.Oracles) > 0 {
					lc.SetOracle(t.c.Oracles[int(off)%len(t.c.Oracles)])
				}
				// Errors are swallowed like the one-campaign runner always
				// has: the database still counts against the budget.
				bug, _ := lc.RunSeed(t.c.BaseSeed + off)
				if t.complete(off, bug, lc.TakeStats()) {
					finalize(t)
				}
			}
		}(w)
	}
	wg.Wait()

	// Cancellation can leave tasks unfinished (units never issued); give
	// them their partial results.
	for _, t := range tasks {
		t.mu.Lock()
		done := t.finished
		t.finished = true
		t.mu.Unlock()
		if !done {
			finalize(t)
		}
	}
	return results
}
