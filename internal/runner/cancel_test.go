package runner

import (
	"context"
	"testing"
	"time"

	"repro/internal/dialect"
)

// TestRunContextCancellation verifies a campaign stops promptly when its
// context is cancelled instead of draining the seed channel.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the feeder must not hand out seeds
	res := RunContext(ctx, Campaign{
		Dialect:      dialect.SQLite,
		MaxDatabases: 100000,
		Workers:      4,
	})
	if res.Detected {
		t.Fatalf("unexpected detection on cancelled run: %v", res.Bug)
	}
	// Workers may each consume at most one in-flight seed before noticing.
	if res.Databases > 8 {
		t.Errorf("cancelled campaign still ran %d databases", res.Databases)
	}
}

// TestRunContextDeadline verifies a deadline interrupts a large budget
// mid-flight and reports partial progress.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := RunContext(ctx, Campaign{
		Dialect:      dialect.SQLite,
		MaxDatabases: 1000000,
		Workers:      2,
	})
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: campaign ran %v", elapsed)
	}
	if res.Databases == 0 {
		t.Errorf("expected some databases before the deadline")
	}
	if res.Databases >= 1000000 {
		t.Errorf("budget fully drained despite deadline")
	}
}
