package runner

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
)

// TestFullCorpusDetectable is the load-bearing validation behind every
// table and figure: each of the injected faults must be detected by a
// campaign within budget, under the testing oracle its registry entry
// routes to (PQS for containment/error/crash faults, TLP/NoREC for the
// metamorphic faults PQS is structurally blind to), and by the verdict
// oracle the registry names.
func TestFullCorpusDetectable(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not short")
	}
	for _, d := range dialect.All {
		for _, info := range faults.ForDialect(d) {
			info := info
			d := d
			t.Run(string(info.ID), func(t *testing.T) {
				t.Parallel()
				res := Run(Campaign{
					Dialect:      d,
					Fault:        info.ID,
					MaxDatabases: 1500,
					Workers:      2,
					BaseSeed:     1,
					Oracles:      []string{oracle.ForFault(info)},
				})
				if !res.Detected {
					t.Fatalf("fault %s not detected in %d databases (%d statements)",
						info.ID, res.Databases, res.Stats.Statements)
				}
				if res.Bug.Oracle != info.Oracle {
					t.Errorf("fault %s caught by %s oracle, registry says %s (msg: %s)",
						info.ID, res.Bug.Oracle, info.Oracle, res.Bug.Message)
				}
				t.Logf("detected after %d databases (%d stmts) via %s",
					res.Databases, res.Stats.Statements, res.Bug.Oracle)
			})
		}
	}
}
