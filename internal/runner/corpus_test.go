package runner

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

// TestFullCorpusDetectable is the load-bearing validation behind every
// table and figure: each of the injected faults must be detected by a PQS
// campaign within budget, by the oracle its registry entry names.
func TestFullCorpusDetectable(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not short")
	}
	for _, d := range dialect.All {
		for _, info := range faults.ForDialect(d) {
			info := info
			d := d
			t.Run(string(info.ID), func(t *testing.T) {
				t.Parallel()
				res := Run(Campaign{
					Dialect:      d,
					Fault:        info.ID,
					MaxDatabases: 1500,
					Workers:      2,
					BaseSeed:     1,
				})
				if !res.Detected {
					t.Fatalf("fault %s not detected in %d databases (%d statements)",
						info.ID, res.Databases, res.Stats.Statements)
				}
				if res.Bug.Oracle != info.Oracle {
					t.Errorf("fault %s caught by %s oracle, registry says %s (msg: %s)",
						info.ID, res.Bug.Oracle, info.Oracle, res.Bug.Message)
				}
				t.Logf("detected after %d databases (%d stmts) via %s",
					res.Databases, res.Stats.Statements, res.Bug.Oracle)
			})
		}
	}
}
