package reduce

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
)

func TestStatementsGreedy(t *testing.T) {
	// Synthetic check: the bug "reproduces" iff statements A and D are
	// both present and D is last.
	trace := []string{"A", "B", "C", "D"}
	check := func(tr []string) bool {
		hasA := false
		for _, s := range tr {
			if s == "A" {
				hasA = true
			}
		}
		return hasA && len(tr) > 0 && tr[len(tr)-1] == "D"
	}
	got := Statements(trace, check)
	if len(got) != 2 || got[0] != "A" || got[1] != "D" {
		t.Errorf("reduced to %v, want [A D]", got)
	}
}

func TestStatementsKeepsLast(t *testing.T) {
	trace := []string{"X", "Y"}
	check := func(tr []string) bool { return len(tr) >= 1 && tr[len(tr)-1] == "Y" }
	got := Statements(trace, check)
	if len(got) != 1 || got[0] != "Y" {
		t.Errorf("reduced to %v, want [Y]", got)
	}
}

// End-to-end: detect Listing 1's fault with PQS, then reduce the trace.
// The reduced case must still reproduce and be dramatically shorter.
func TestReduceListing1Detection(t *testing.T) {
	var bug *core.Bug
	for seed := int64(1); seed < 400 && bug == nil; seed++ {
		tester := core.NewTester(core.Config{
			Dialect: dialect.SQLite,
			Seed:    seed,
			Faults:  faults.NewSet(faults.PartialIndexNotNull),
		})
		b, err := tester.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		bug = b
	}
	if bug == nil {
		t.Skip("fault not detected in budget (seed-dependent)")
	}
	if bug.Oracle != faults.OracleContainment {
		t.Fatalf("expected containment detection, got %s: %s", bug.Oracle, bug.Message)
	}
	fs := faults.NewSet(faults.PartialIndexNotNull)
	check := CheckerFor(bug, dialect.SQLite, fs)
	if !check(bug.Trace) {
		t.Fatalf("original trace does not reproduce deterministically:\n%s",
			strings.Join(bug.Trace, ";\n"))
	}
	reduced := Bug(bug, dialect.SQLite, fs)
	if len(reduced) > len(bug.Trace) {
		t.Errorf("reduction grew the trace: %d -> %d", len(bug.Trace), len(reduced))
	}
	if !check(reduced) {
		t.Errorf("reduced trace no longer reproduces:\n%s", strings.Join(reduced, ";\n"))
	}
	// The paper's reduced cases average ~3.7 statements with max 8; ours
	// must land in a comparable range for this canonical bug.
	if len(reduced) > 8 {
		t.Errorf("reduced trace still has %d statements:\n%s",
			len(reduced), strings.Join(reduced, ";\n"))
	}
}

// Values shrinking: INSERT row lists shrink down to the rows the bug
// needs, like the paper's published listings.
func TestValuesShrinking(t *testing.T) {
	var bug *core.Bug
	for seed := int64(1); seed < 400 && bug == nil; seed++ {
		tester := core.NewTester(core.Config{
			Dialect: dialect.SQLite,
			Seed:    seed,
			Faults:  faults.NewSet(faults.SkipScanDistinct),
		})
		b, err := tester.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		bug = b
	}
	if bug == nil {
		t.Skip("fault not detected in budget")
	}
	fs := faults.NewSet(faults.SkipScanDistinct)
	check := CheckerFor(bug, dialect.SQLite, fs)
	if !check(bug.Trace) {
		t.Skip("trace not deterministic")
	}
	stmts := Statements(bug.Trace, check)
	full := Values(stmts, dialect.SQLite, check)
	if !check(full) {
		t.Fatalf("values-shrunk trace no longer reproduces:\n%s", strings.Join(full, ";\n"))
	}
	countValues := func(trace []string) int {
		n := 0
		for _, s := range trace {
			n += strings.Count(s, "(")
		}
		return n
	}
	if countValues(full) > countValues(stmts) {
		t.Errorf("values shrinking grew the trace")
	}
	// BugFully wires both phases together.
	if combined := BugFully(bug, dialect.SQLite, fs); !check(combined) {
		t.Error("BugFully output does not reproduce")
	}
}

// Error-oracle detection reduces as well, matching on the error code.
func TestReduceErrorDetection(t *testing.T) {
	var bug *core.Bug
	for seed := int64(1); seed < 200 && bug == nil; seed++ {
		tester := core.NewTester(core.Config{
			Dialect: dialect.SQLite,
			Seed:    seed,
			Faults:  faults.NewSet(faults.VacuumCorrupt),
		})
		b, err := tester.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		bug = b
	}
	if bug == nil {
		t.Skip("fault not detected in budget")
	}
	fs := faults.NewSet(faults.VacuumCorrupt)
	reduced := Bug(bug, dialect.SQLite, fs)
	if !CheckerFor(bug, dialect.SQLite, fs)(reduced) {
		t.Error("reduced error trace no longer reproduces")
	}
	// VACUUM alone triggers this fault; reduction should approach that.
	if len(reduced) > 3 {
		t.Errorf("reduced VACUUM-corruption trace has %d statements: %v", len(reduced), reduced)
	}
}
