package reduce

import (
	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Values shrinks the VALUES lists of INSERT statements inside a reduced
// trace: the paper's published test cases insert only the rows needed to
// reproduce (e.g. Listing 1's five values), and statement-level reduction
// alone cannot get there because it removes whole statements.
//
// The final statement is never touched. The input must satisfy check.
func Values(trace []string, d dialect.Dialect, check Check) []string {
	cur := append([]string(nil), trace...)
	for i := 0; i < len(cur)-1; i++ {
		st, err := sqlparse.ParseOne(cur[i], d)
		if err != nil {
			continue
		}
		ins, ok := st.(*sqlast.Insert)
		if !ok || len(ins.Rows) <= 1 {
			continue
		}
		changed := true
		for changed {
			changed = false
			for r := 0; r < len(ins.Rows) && len(ins.Rows) > 1; r++ {
				removed := ins.Rows[r]
				ins.Rows = append(ins.Rows[:r], ins.Rows[r+1:]...)
				cand := append([]string(nil), cur...)
				cand[i] = sqlast.SQL(ins, d)
				if check(cand) {
					cur = cand
					changed = true
					r--
					continue
				}
				// Restore the row at its original position.
				ins.Rows = append(ins.Rows[:r], append([][]sqlast.Expr{removed}, ins.Rows[r:]...)...)
			}
		}
	}
	return cur
}

// BugFully runs statement-level reduction followed by VALUES shrinking.
func BugFully(bug *core.Bug, d dialect.Dialect, fs *faults.Set) []string {
	check := CheckerFor(bug, d, fs)
	if !check(bug.Trace) {
		return bug.Trace
	}
	reduced := Statements(bug.Trace, check)
	return Values(reduced, d, check)
}
