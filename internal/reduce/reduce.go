// Package reduce shrinks bug-reproducing statement traces. The paper
// (§4.1) notes that SQLancer automatically deletes SQL statements that are
// unnecessary to reproduce a bug; reduced test cases averaged 3.71
// statements (Figure 2). This package implements that reduction with a
// greedy delta-debugging loop over the statement list.
package reduce

import (
	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/sqlval"
	"repro/internal/sut"
	"repro/internal/xerr"
)

// Check reports whether a candidate trace still reproduces the bug.
type Check func(trace []string) bool

// Statements minimizes a trace under check. The final statement (the
// failing query) is always kept. The input must satisfy check.
func Statements(trace []string, check Check) []string {
	cur := append([]string(nil), trace...)
	// Chunked removal first (halves the trace fast), then single
	// statements to a fixpoint.
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		changed := true
		for changed {
			changed = false
			for i := 0; i+chunk <= len(cur)-1; i++ { // keep the last stmt
				cand := make([]string, 0, len(cur)-chunk)
				cand = append(cand, cur[:i]...)
				cand = append(cand, cur[i+chunk:]...)
				if check(cand) {
					cur = cand
					changed = true
				}
			}
		}
	}
	return cur
}

// CheckerFor builds a Check that replays a candidate trace on a fresh
// database (sut.DefaultBackend) with the same fault set and decides
// whether the original bug still shows. Replay is deliberately
// string-based: the reduced trace must reproduce the bug for a client
// pasting SQL, regardless of which execution path first found it.
//
// For containment bugs: every pivot table must still contain its pivot
// row (ground truth via RawRows), the final query must succeed, and the
// expected tuple must be absent from its result.
// For metamorphic bugs (NoREC/TLP): the final statement and the bug's
// Compare query are both replayed and the oracle's comparison re-applied —
// the candidate reproduces iff the two sides still disagree.
// For error/crash bugs: the final statement must fail with the same error
// code.
func CheckerFor(bug *core.Bug, d dialect.Dialect, fs *faults.Set) Check {
	return func(trace []string) bool {
		if len(trace) == 0 {
			return false
		}
		if bug.Oracle == faults.OracleRecovery {
			// Recovery bugs replay on the durable pager backend and
			// re-apply the recorded crash schedule (oracle.RecoveryReplay
			// owns the arm/crash/compare protocol).
			db, err := sut.Open("", sut.Session{Dialect: d, Faults: fs, Storage: "pager"})
			if err != nil {
				return false
			}
			defer db.Close()
			return oracle.RecoveryReplay(db, bug, trace)
		}
		if bug.Oracle == faults.OracleSerializability {
			// Serializability bugs replay their session-tagged history on a
			// multi-session backend and re-run the serial-order search
			// (oracle.SerializabilityReplay owns the protocol).
			db, err := sut.Open("", sut.Session{Dialect: d, Faults: fs})
			if err != nil {
				return false
			}
			defer db.Close()
			return oracle.SerializabilityReplay(db, bug, trace)
		}
		db, err := sut.Open("", sut.Session{Dialect: d, Faults: fs})
		if err != nil {
			return false
		}
		defer db.Close()
		for _, sql := range trace[:len(trace)-1] {
			_, _ = db.Exec(sql) // setup errors just weaken the candidate
		}
		last := trace[len(trace)-1]
		if bug.Oracle == faults.OracleNoREC || bug.Oracle == faults.OracleTLP {
			return metamorphicReproduces(db, bug, d, last)
		}
		if bug.Oracle == faults.OracleContainment {
			res, err := db.Query(last)
			if err != nil {
				return false
			}
			for table, pivot := range bug.PivotTables {
				if !tableContains(db.Introspect(), table, pivot) {
					return false
				}
			}
			if bug.Negative {
				// §7 anticontainment: the bug is the pivot being present.
				return oracle.Containment(res.Rows, bug.Expected)
			}
			return !oracle.Containment(res.Rows, bug.Expected)
		}
		_, err = db.Exec(last)
		if err == nil {
			return false
		}
		code, ok := xerr.CodeOf(err)
		return ok && code == bug.Code
	}
}

// metamorphicReproduces re-runs a NoREC/TLP comparison on the replayed
// database: the final trace statement (optimized / partitioned query)
// against the bug's Compare partner (unoptimized / unpartitioned form).
func metamorphicReproduces(db sut.DB, bug *core.Bug, d dialect.Dialect, last string) bool {
	res, err := db.Query(last)
	if err != nil {
		return false
	}
	cmp, err := db.Query(bug.Compare)
	if err != nil {
		return false
	}
	switch {
	case bug.Oracle == faults.OracleNoREC:
		want, ok := oracle.TruthyCount(cmp.Rows, d)
		return ok && len(res.Rows) != want
	case bug.Agg != "":
		return !oracle.AggValuesEqual(bug.Agg, cmp.Rows, res.Rows)
	default:
		return !oracle.MultisetEqual(res.Rows, cmp.Rows)
	}
}

// tableContains checks ground-truth presence of a pivot row.
func tableContains(intro sut.Introspection, table string, pivot []sqlval.Value) bool {
	for _, row := range intro.RawRows(table) {
		if len(row) < len(pivot) {
			continue
		}
		match := true
		for i := range pivot {
			if !row[i].Equal(pivot[i]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Bug reduces a detection's trace in place and returns the reduced trace.
func Bug(bug *core.Bug, d dialect.Dialect, fs *faults.Set) []string {
	check := CheckerFor(bug, d, fs)
	if !check(bug.Trace) {
		// Not deterministically reproducible from the trace alone (e.g.
		// depends on engine-internal sequence state); return as-is.
		return bug.Trace
	}
	return Statements(bug.Trace, check)
}
