package sqlast

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlval"
)

func TestIdentNeedsQuote(t *testing.T) {
	quoteIdent := func(name string) string {
		var b strings.Builder
		writeIdent(&b, name)
		return b.String()
	}
	for name, want := range map[string]bool{
		"c0":     false,
		"_x9":    false,
		"T0":     false,
		"":       true,
		"00":     true, // digit-leading lexes as a number
		"a`b":    true, // embedded quote
		"a b":    true, // space
		"select": true, // keyword, any case
		"FROM":   true,
		"Where":  true,
		"isnull": true,  // postfix operator word
		"rowid":  true,  // special column
		"selec":  false, // near-keyword is fine bare
	} {
		if got := identNeedsQuote(name); got != want {
			t.Errorf("identNeedsQuote(%q) = %v, want %v", name, got, want)
		}
	}
	for name, want := range map[string]string{
		"c0":     "c0",
		"00":     "`00`",
		"a`b":    "`a``b`",
		"select": "`select`",
	} {
		if got := quoteIdent(name); got != want {
			t.Errorf("writeIdent(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestRenderQuotesIdentifiers covers every statement position that renders
// an identifier: each statement built with hostile names must render with
// quoting (spot-checked) — the render→reparse fixed point itself is pinned
// by the sqlparse round-trip suite and FuzzParseRoundTrip.
func TestRenderQuotesIdentifiers(t *testing.T) {
	cases := []struct {
		st   Stmt
		want string
	}{
		{
			st: &Select{
				Cols:  []ResultCol{{X: Col("from", "00"), Alias: "order"}},
				From:  []TableRef{{Name: "select", Alias: "group"}},
				Where: &Binary{Op: OpEq, L: Col("", "a`b"), R: Lit(sqlval.Int(1))},
			},
			want: "SELECT `from`.`00` AS `order` FROM `select` AS `group` WHERE (`a``b` = 1)",
		},
		{
			st:   &Insert{Table: "values", Columns: []string{"not", "c0"}, Rows: [][]Expr{{Lit(sqlval.Int(1)), Lit(sqlval.Int(2))}}},
			want: "INSERT INTO `values`(`not`, c0) VALUES (1, 2)",
		},
		{
			st:   &Update{Table: "where", Sets: []Assignment{{Column: "and", Value: Lit(sqlval.Int(2))}}},
			want: "UPDATE `where` SET `and` = 2",
		},
		{
			st:   &Delete{Table: "order"},
			want: "DELETE FROM `order`",
		},
		{
			st: &CreateTable{Name: "group", Columns: []ColumnDef{
				{Name: "order", TypeName: "INT"}}, PrimaryKey: []string{"order"}},
			want: "CREATE TABLE `group`(`order` INT, PRIMARY KEY (`order`))",
		},
		{
			st:   &CreateIndex{Name: "by", Table: "limit", Parts: []IndexedExpr{{X: Col("", "desc"), Desc: true}}},
			want: "CREATE INDEX `by` ON `limit`(`desc` DESC)",
		},
		{
			st:   &AlterTable{Table: "t", Action: AlterRenameColumn, OldName: "00", NewName: "to"},
			want: "ALTER TABLE t RENAME COLUMN `00` TO `to`",
		},
		{
			st:   &Drop{Obj: DropTable, Name: "table"},
			want: "DROP TABLE `table`",
		},
		{
			st:   &Maintenance{Op: MaintReindex, Table: "primary"},
			want: "REINDEX `primary`",
		},
	}
	for _, tc := range cases {
		if got := SQL(tc.st, dialect.SQLite); got != tc.want {
			t.Errorf("render:\n got %q\nwant %q", got, tc.want)
		}
	}
}

// TestRenderFoldsNegatedLiterals pins the other fixed-point repair the
// un-sidestepped fuzzers surfaced: `- 5` folds on reparse, so the
// renderer folds first.
func TestRenderFoldsNegatedLiterals(t *testing.T) {
	for _, tc := range []struct {
		e    Expr
		want string
	}{
		{&Unary{Op: OpNeg, X: Lit(sqlval.Int(5))}, "-5"},
		{&Unary{Op: OpNeg, X: Lit(sqlval.Int(-5))}, "5"},
		{&Unary{Op: OpNeg, X: Lit(sqlval.Real(1e19))}, "-1e+19"},
		{&Unary{Op: OpNeg, X: Lit(sqlval.Int(-9223372036854775808))}, "(- -9223372036854775808)"},
		{&Unary{Op: OpNeg, X: Lit(sqlval.Text("a"))}, "(- 'a')"},
	} {
		if got := ExprSQL(tc.e, dialect.SQLite); got != tc.want {
			t.Errorf("render = %q, want %q", got, tc.want)
		}
	}
}
