package sqlast

// CloneExpr deep-copies an expression tree. The planner uses it to
// normalize predicates without mutating ASTs shared with the catalog.
func CloneExpr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *n
		return &c
	case *ColumnRef:
		c := *n
		return &c
	case *Unary:
		return &Unary{Op: n.Op, X: CloneExpr(n.X)}
	case *Binary:
		return &Binary{Op: n.Op, L: CloneExpr(n.L), R: CloneExpr(n.R)}
	case *Between:
		return &Between{Not: n.Not, X: CloneExpr(n.X), Lo: CloneExpr(n.Lo), Hi: CloneExpr(n.Hi)}
	case *InList:
		c := &InList{Not: n.Not, X: CloneExpr(n.X)}
		for _, x := range n.List {
			c.List = append(c.List, CloneExpr(x))
		}
		return c
	case *Cast:
		return &Cast{X: CloneExpr(n.X), TypeName: n.TypeName}
	case *Collate:
		return &Collate{X: CloneExpr(n.X), Coll: n.Coll}
	case *Case:
		c := &Case{Operand: CloneExpr(n.Operand), Else: CloneExpr(n.Else)}
		for _, w := range n.Whens {
			c.Whens = append(c.Whens, WhenClause{When: CloneExpr(w.When), Then: CloneExpr(w.Then)})
		}
		return c
	case *FuncCall:
		c := &FuncCall{Name: n.Name}
		for _, x := range n.Args {
			c.Args = append(c.Args, CloneExpr(x))
		}
		return c
	default:
		panic("sqlast: CloneExpr: unknown node")
	}
}

// StripQualifiers returns a copy of e with table qualifiers removed from
// every column reference — the canonical form used when comparing a WHERE
// conjunct against an index's partial predicate.
func StripQualifiers(e Expr) Expr {
	c := CloneExpr(e)
	WalkExprs(c, func(x Expr) bool {
		if cr, ok := x.(*ColumnRef); ok {
			cr.Table = ""
		}
		return true
	})
	return c
}
