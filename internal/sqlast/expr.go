// Package sqlast defines the abstract syntax tree shared by the engine's
// parser, the engine's evaluator, the PQS expression generator
// (Algorithm 1 of the paper), and the PQS oracle interpreter (Algorithm 2).
// PQS builds these trees directly, renders them to SQL text, and the engine
// re-parses that text — the same round trip SQLancer performs over a DBMS
// connection.
package sqlast

import (
	"repro/internal/sqlval"
)

// Expr is any SQL expression node.
type Expr interface {
	isExpr()
}

// Literal is a constant value.
type Literal struct {
	Val sqlval.Value
}

// ColumnRef names a column, optionally qualified by table name.
//
// MaybeString marks a double-quoted token in the SQLite dialect, which the
// engine resolves as a column when possible and silently demotes to a
// string literal otherwise — the misfeature behind Listing 8 of the paper.
type ColumnRef struct {
	Table       string // may be empty
	Column      string
	MaybeString bool
}

// UnaryOp enumerates prefix and postfix unary operators.
type UnaryOp uint8

// Unary operators.
const (
	OpNot     UnaryOp = iota // NOT x
	OpNeg                    // -x
	OpPos                    // +x
	OpBitNot                 // ~x
	OpIsNull                 // x ISNULL / x IS NULL
	OpNotNull                // x NOTNULL / x IS NOT NULL
)

// Unary applies a unary operator to a subexpression.
type Unary struct {
	Op UnaryOp
	X  Expr
}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIs         // x IS y (SQLite compares values; others restrict to NULL/TRUE/FALSE)
	OpIsNot      // x IS NOT y
	OpNullSafeEq // x <=> y (MySQL)
	OpLike
	OpNotLike
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat // x || y (string concat; MySQL renders as OR instead)
	OpBitAnd
	OpBitOr
	OpShl
	OpShr
)

// Binary applies a binary operator.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	Not    bool
	X      Expr
	Lo, Hi Expr
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	Not  bool
	X    Expr
	List []Expr
}

// Cast is CAST(x AS typename).
type Cast struct {
	X        Expr
	TypeName string
}

// Collate attaches a collation to an expression (SQLite).
type Collate struct {
	X    Expr
	Coll sqlval.Collation
}

// Case is CASE [operand] WHEN .. THEN .. [ELSE ..] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil if absent
}

// WhenClause is one WHEN/THEN arm of a CASE expression.
type WhenClause struct {
	When Expr
	Then Expr
}

// FuncCall invokes a scalar or aggregate function.
type FuncCall struct {
	Name string // canonical upper-case name
	Args []Expr
}

func (*Literal) isExpr()   {}
func (*ColumnRef) isExpr() {}
func (*Unary) isExpr()     {}
func (*Binary) isExpr()    {}
func (*Between) isExpr()   {}
func (*InList) isExpr()    {}
func (*Cast) isExpr()      {}
func (*Collate) isExpr()   {}
func (*Case) isExpr()      {}
func (*FuncCall) isExpr()  {}

// Lit is shorthand for a literal node.
func Lit(v sqlval.Value) *Literal { return &Literal{Val: v} }

// Col is shorthand for a qualified column reference.
func Col(table, column string) *ColumnRef { return &ColumnRef{Table: table, Column: column} }

// Not wraps e in logical negation (used by rectification, Algorithm 3).
func Not(e Expr) Expr { return &Unary{Op: OpNot, X: e} }

// IsNullExpr wraps e in an IS NULL test (used by rectification).
func IsNullExpr(e Expr) Expr { return &Unary{Op: OpIsNull, X: e} }

// WalkExprs calls fn on e and every descendant expression, pre-order.
// fn returning false prunes the subtree.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *Unary:
		WalkExprs(n.X, fn)
	case *Binary:
		WalkExprs(n.L, fn)
		WalkExprs(n.R, fn)
	case *Between:
		WalkExprs(n.X, fn)
		WalkExprs(n.Lo, fn)
		WalkExprs(n.Hi, fn)
	case *InList:
		WalkExprs(n.X, fn)
		for _, x := range n.List {
			WalkExprs(x, fn)
		}
	case *Cast:
		WalkExprs(n.X, fn)
	case *Collate:
		WalkExprs(n.X, fn)
	case *Case:
		WalkExprs(n.Operand, fn)
		for _, w := range n.Whens {
			WalkExprs(w.When, fn)
			WalkExprs(w.Then, fn)
		}
		WalkExprs(n.Else, fn)
	case *FuncCall:
		for _, x := range n.Args {
			WalkExprs(x, fn)
		}
	}
}

// ColumnsUsed returns the distinct table-qualified column names referenced
// by e, in first-appearance order.
func ColumnsUsed(e Expr) []ColumnRef {
	var out []ColumnRef
	seen := map[ColumnRef]bool{}
	WalkExprs(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok && !seen[*c] {
			seen[*c] = true
			out = append(out, *c)
		}
		return true
	})
	return out
}

// Depth returns the height of the expression tree (a literal has depth 1).
func Depth(e Expr) int {
	if e == nil {
		return 0
	}
	max := 0
	sub := func(x Expr) {
		if d := Depth(x); d > max {
			max = d
		}
	}
	switch n := e.(type) {
	case *Literal, *ColumnRef:
		return 1
	case *Unary:
		sub(n.X)
	case *Binary:
		sub(n.L)
		sub(n.R)
	case *Between:
		sub(n.X)
		sub(n.Lo)
		sub(n.Hi)
	case *InList:
		sub(n.X)
		for _, x := range n.List {
			sub(x)
		}
	case *Cast:
		sub(n.X)
	case *Collate:
		sub(n.X)
	case *Case:
		sub(n.Operand)
		for _, w := range n.Whens {
			sub(w.When)
			sub(w.Then)
		}
		sub(n.Else)
	case *FuncCall:
		for _, x := range n.Args {
			sub(x)
		}
	}
	return max + 1
}
