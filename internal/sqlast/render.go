package sqlast

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dialect"
	"repro/internal/sqlval"
)

// SQL renders a statement as dialect-appropriate SQL text, terminated
// without a semicolon. PQS renders generated ASTs through this function and
// submits the text to the engine, which re-parses it — mirroring SQLancer
// speaking SQL to a DBMS over a connection.
func SQL(s Stmt, d dialect.Dialect) string {
	var b strings.Builder
	renderStmt(&b, s, d)
	return b.String()
}

// ExprSQL renders an expression as dialect-appropriate SQL text.
func ExprSQL(e Expr, d dialect.Dialect) string {
	var b strings.Builder
	renderExpr(&b, e, d)
	return b.String()
}

func renderStmt(b *strings.Builder, s Stmt, d dialect.Dialect) {
	switch n := s.(type) {
	case *CreateTable:
		renderCreateTable(b, n, d)
	case *CreateIndex:
		renderCreateIndex(b, n, d)
	case *CreateView:
		b.WriteString("CREATE VIEW ")
		if n.IfNotExists {
			b.WriteString("IF NOT EXISTS ")
		}
		writeIdent(b, n.Name)
		b.WriteString(" AS ")
		renderSelect(b, n.Select, d)
	case *CreateStats:
		b.WriteString("CREATE STATISTICS ")
		writeIdent(b, n.Name)
		b.WriteString(" ON ")
		writeIdentList(b, n.Columns)
		b.WriteString(" FROM ")
		writeIdent(b, n.Table)
	case *Insert:
		renderInsert(b, n, d)
	case *Update:
		renderUpdate(b, n, d)
	case *Delete:
		b.WriteString("DELETE FROM ")
		writeIdent(b, n.Table)
		if n.Where != nil {
			b.WriteString(" WHERE ")
			renderExpr(b, n.Where, d)
		}
	case *AlterTable:
		renderAlter(b, n, d)
	case *Drop:
		switch n.Obj {
		case DropIndex:
			b.WriteString("DROP INDEX ")
		case DropView:
			b.WriteString("DROP VIEW ")
		default:
			b.WriteString("DROP TABLE ")
		}
		if n.IfExists {
			b.WriteString("IF EXISTS ")
		}
		writeIdent(b, n.Name)
	case *Select:
		renderSelect(b, n, d)
	case *Compound:
		for i, sel := range n.Selects {
			if i > 0 {
				b.WriteString(" ")
				b.WriteString(n.Ops[i-1].String())
				b.WriteString(" ")
			}
			renderSelect(b, sel, d)
		}
	case *Maintenance:
		renderMaintenance(b, n, d)
	case *SetOption:
		renderSetOption(b, n, d)
	case *Explain:
		b.WriteString("EXPLAIN ")
		renderStmt(b, n.Target, d)
	case *Txn:
		b.WriteString(n.Kind())
	default:
		panic(fmt.Sprintf("sqlast: cannot render %T", s))
	}
}

func renderCreateTable(b *strings.Builder, n *CreateTable, d dialect.Dialect) {
	b.WriteString("CREATE TABLE ")
	if n.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	writeIdent(b, n.Name)
	b.WriteString("(")
	for i, c := range n.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		renderColumnDef(b, &c, d)
	}
	if len(n.PrimaryKey) > 0 {
		b.WriteString(", PRIMARY KEY (")
		writeIdentList(b, n.PrimaryKey)
		b.WriteString(")")
	}
	b.WriteString(")")
	if n.WithoutRowid {
		b.WriteString(" WITHOUT ROWID")
	}
	if n.Engine != "" {
		b.WriteString(" ENGINE = ")
		b.WriteString(n.Engine)
	}
	if n.Inherits != "" {
		b.WriteString(" INHERITS (")
		writeIdent(b, n.Inherits)
		b.WriteString(")")
	}
}

func renderColumnDef(b *strings.Builder, c *ColumnDef, d dialect.Dialect) {
	writeIdent(b, c.Name)
	if c.TypeName != "" {
		b.WriteString(" ")
		b.WriteString(c.TypeName)
	}
	if c.Unsigned {
		b.WriteString(" UNSIGNED")
	}
	if c.PrimaryKey {
		b.WriteString(" PRIMARY KEY")
	}
	if c.Unique {
		b.WriteString(" UNIQUE")
	}
	if c.NotNull {
		b.WriteString(" NOT NULL")
	}
	if c.Collate != "" {
		b.WriteString(" COLLATE ")
		b.WriteString(c.Collate)
	}
	if c.Default != nil {
		b.WriteString(" DEFAULT (")
		renderExpr(b, c.Default, d)
		b.WriteString(")")
	}
	if c.Check != nil {
		b.WriteString(" CHECK (")
		renderExpr(b, c.Check, d)
		b.WriteString(")")
	}
}

func renderCreateIndex(b *strings.Builder, n *CreateIndex, d dialect.Dialect) {
	b.WriteString("CREATE ")
	if n.Unique {
		b.WriteString("UNIQUE ")
	}
	b.WriteString("INDEX ")
	if n.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	writeIdent(b, n.Name)
	b.WriteString(" ON ")
	writeIdent(b, n.Table)
	b.WriteString("(")
	for i, p := range n.Parts {
		if i > 0 {
			b.WriteString(", ")
		}
		// Bare column names render unparenthesized; expression index
		// parts need parens in MySQL and Postgres. Double-quoted parts
		// (MaybeString) must keep their quotes through renderExpr or the
		// round trip turns them into ordinary column references.
		if c, ok := p.X.(*ColumnRef); ok && c.Table == "" && !c.MaybeString {
			writeIdent(b, c.Column)
		} else if c, ok := p.X.(*ColumnRef); ok && c.MaybeString {
			renderExpr(b, p.X, d)
		} else if _, ok := p.X.(*Literal); ok && d == dialect.SQLite {
			renderExpr(b, p.X, d)
		} else {
			b.WriteString("(")
			renderExpr(b, p.X, d)
			b.WriteString(")")
		}
		if p.Collate != "" {
			b.WriteString(" COLLATE ")
			b.WriteString(p.Collate)
		}
		if p.Desc {
			b.WriteString(" DESC")
		}
	}
	b.WriteString(")")
	if n.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, n.Where, d)
	}
}

func renderInsert(b *strings.Builder, n *Insert, d dialect.Dialect) {
	b.WriteString("INSERT ")
	switch n.Conflict {
	case ConflictIgnore:
		if d == dialect.MySQL {
			b.WriteString("IGNORE ")
		} else {
			b.WriteString("OR IGNORE ")
		}
	case ConflictReplace:
		b.WriteString("OR REPLACE ")
	}
	b.WriteString("INTO ")
	writeIdent(b, n.Table)
	if len(n.Columns) > 0 {
		b.WriteString("(")
		writeIdentList(b, n.Columns)
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range n.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, e, d)
		}
		b.WriteString(")")
	}
}

func renderUpdate(b *strings.Builder, n *Update, d dialect.Dialect) {
	b.WriteString("UPDATE ")
	if n.Conflict == ConflictReplace {
		b.WriteString("OR REPLACE ")
	}
	writeIdent(b, n.Table)
	b.WriteString(" SET ")
	for i, a := range n.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		writeIdent(b, a.Column)
		b.WriteString(" = ")
		renderExpr(b, a.Value, d)
	}
	if n.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, n.Where, d)
	}
}

func renderAlter(b *strings.Builder, n *AlterTable, d dialect.Dialect) {
	b.WriteString("ALTER TABLE ")
	writeIdent(b, n.Table)
	switch n.Action {
	case AlterRenameTable:
		b.WriteString(" RENAME TO ")
		writeIdent(b, n.NewName)
	case AlterRenameColumn:
		b.WriteString(" RENAME COLUMN ")
		writeIdent(b, n.OldName)
		b.WriteString(" TO ")
		writeIdent(b, n.NewName)
	case AlterAddColumn:
		b.WriteString(" ADD COLUMN ")
		renderColumnDef(b, &n.Column, d)
	}
}

func renderSelect(b *strings.Builder, n *Select, d dialect.Dialect) {
	b.WriteString("SELECT ")
	if n.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, c := range n.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		if c.Star {
			b.WriteString("*")
			continue
		}
		renderExpr(b, c.X, d)
		if c.Alias != "" {
			b.WriteString(" AS ")
			writeIdent(b, c.Alias)
		}
	}
	if len(n.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range n.From {
			if i > 0 {
				b.WriteString(", ")
			}
			renderTableRef(b, &t)
		}
	}
	for _, j := range n.Joins {
		switch j.Kind {
		case JoinCross:
			b.WriteString(" CROSS JOIN ")
		case JoinLeft:
			b.WriteString(" LEFT JOIN ")
		default:
			b.WriteString(" JOIN ")
		}
		renderTableRef(b, &j.Table)
		if j.On != nil {
			b.WriteString(" ON ")
			renderExpr(b, j.On, d)
		}
	}
	if n.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, n.Where, d)
	}
	if len(n.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range n.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, e, d)
		}
	}
	if n.Having != nil {
		b.WriteString(" HAVING ")
		renderExpr(b, n.Having, d)
	}
	if len(n.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range n.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, o.X, d)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if n.Limit != nil {
		b.WriteString(" LIMIT ")
		renderExpr(b, n.Limit, d)
		if n.Offset != nil {
			b.WriteString(" OFFSET ")
			renderExpr(b, n.Offset, d)
		}
	}
}

func renderTableRef(b *strings.Builder, t *TableRef) {
	if t.Only {
		b.WriteString("ONLY ")
	}
	writeIdent(b, t.Name)
	if t.Alias != "" {
		b.WriteString(" AS ")
		writeIdent(b, t.Alias)
	}
}

func renderMaintenance(b *strings.Builder, n *Maintenance, d dialect.Dialect) {
	switch n.Op {
	case MaintVacuum:
		b.WriteString("VACUUM")
	case MaintVacuumFull:
		b.WriteString("VACUUM FULL")
	case MaintReindex:
		b.WriteString("REINDEX")
		if n.Table != "" {
			b.WriteString(" ")
			writeIdent(b, n.Table)
		}
	case MaintAnalyze:
		b.WriteString("ANALYZE")
		if n.Table != "" {
			b.WriteString(" ")
			writeIdent(b, n.Table)
		}
	case MaintRepairTable:
		b.WriteString("REPAIR TABLE ")
		writeIdent(b, n.Table)
	case MaintCheckTable:
		b.WriteString("CHECK TABLE ")
		writeIdent(b, n.Table)
	case MaintCheckTableForUpgrade:
		b.WriteString("CHECK TABLE ")
		writeIdent(b, n.Table)
		b.WriteString(" FOR UPGRADE")
	case MaintDiscard:
		b.WriteString("DISCARD PLANS")
	}
}

func renderSetOption(b *strings.Builder, n *SetOption, d dialect.Dialect) {
	if d == dialect.SQLite {
		b.WriteString("PRAGMA ")
	} else {
		b.WriteString("SET ")
		if n.Global {
			b.WriteString("GLOBAL ")
		}
	}
	writeIdent(b, n.Name)
	// A nil value is the query form (`PRAGMA name` / `SET name`).
	if n.Value != nil {
		b.WriteString(" = ")
		renderExpr(b, n.Value, d)
	}
}

// negatedLiteral returns the negation of an int/real literal value when
// that is exact (MinInt64 has no int64 negation; other kinds coerce
// dialect-specifically and must stay as unary expressions).
func negatedLiteral(v sqlval.Value) (sqlval.Value, bool) {
	switch v.Kind() {
	case sqlval.KInt:
		if v.Int64() == math.MinInt64 {
			return v, false
		}
		return sqlval.Int(-v.Int64()), true
	case sqlval.KReal:
		return sqlval.Real(-v.Float64()), true
	}
	return v, false
}

// binOpToken returns the SQL spelling of a binary operator for the dialect.
func binOpToken(op BinOp, d dialect.Dialect) string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIs:
		return "IS"
	case OpIsNot:
		return "IS NOT"
	case OpNullSafeEq:
		return "<=>"
	case OpLike:
		return "LIKE"
	case OpNotLike:
		return "NOT LIKE"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		if d.ConcatIsOr() {
			// MySQL spells concatenation CONCAT(); `||` is OR. The
			// generator never emits OpConcat for MySQL, but render it
			// safely if asked.
			return "||"
		}
		return "||"
	case OpBitAnd:
		return "&"
	case OpBitOr:
		return "|"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	default:
		panic(fmt.Sprintf("sqlast: unknown binop %d", op))
	}
}

func renderExpr(b *strings.Builder, e Expr, d dialect.Dialect) {
	switch n := e.(type) {
	case *Literal:
		b.WriteString(n.Val.Literal())
	case *ColumnRef:
		if n.MaybeString {
			b.WriteString("\"")
			b.WriteString(strings.ReplaceAll(n.Column, "\"", "\"\""))
			b.WriteString("\"")
			return
		}
		if n.Table != "" {
			writeIdent(b, n.Table)
			b.WriteString(".")
		}
		writeIdent(b, n.Column)
	case *Unary:
		switch n.Op {
		case OpNot:
			b.WriteString("(NOT ")
			renderExpr(b, n.X, d)
			b.WriteString(")")
		case OpNeg:
			// Fold negation of a numeric literal into the literal: the
			// parser folds `- 5` to -5 on reparse, so rendering the
			// unfolded form would not be idempotent. Negating Int (except
			// MinInt64) and Real literals is exact in every dialect and
			// hooked by no fault, so the fold is semantics-preserving.
			if lit, ok := n.X.(*Literal); ok {
				if v, ok := negatedLiteral(lit.Val); ok {
					b.WriteString(v.Literal())
					return
				}
			}
			b.WriteString("(- ")
			renderExpr(b, n.X, d)
			b.WriteString(")")
		case OpPos:
			b.WriteString("(+ ")
			renderExpr(b, n.X, d)
			b.WriteString(")")
		case OpBitNot:
			b.WriteString("(~ ")
			renderExpr(b, n.X, d)
			b.WriteString(")")
		case OpIsNull:
			b.WriteString("(")
			renderExpr(b, n.X, d)
			b.WriteString(" IS NULL)")
		case OpNotNull:
			b.WriteString("(")
			renderExpr(b, n.X, d)
			b.WriteString(" IS NOT NULL)")
		}
	case *Binary:
		b.WriteString("(")
		renderExpr(b, n.L, d)
		b.WriteString(" ")
		b.WriteString(binOpToken(n.Op, d))
		b.WriteString(" ")
		renderExpr(b, n.R, d)
		b.WriteString(")")
	case *Between:
		b.WriteString("(")
		renderExpr(b, n.X, d)
		if n.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		renderExpr(b, n.Lo, d)
		b.WriteString(" AND ")
		renderExpr(b, n.Hi, d)
		b.WriteString(")")
	case *InList:
		b.WriteString("(")
		renderExpr(b, n.X, d)
		if n.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, x := range n.List {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, x, d)
		}
		b.WriteString("))")
	case *Cast:
		b.WriteString("CAST(")
		renderExpr(b, n.X, d)
		b.WriteString(" AS ")
		b.WriteString(n.TypeName)
		b.WriteString(")")
	case *Collate:
		b.WriteString("(")
		renderExpr(b, n.X, d)
		b.WriteString(" COLLATE ")
		b.WriteString(n.Coll.String())
		b.WriteString(")")
	case *Case:
		b.WriteString("CASE")
		if n.Operand != nil {
			b.WriteString(" ")
			renderExpr(b, n.Operand, d)
		}
		for _, w := range n.Whens {
			b.WriteString(" WHEN ")
			renderExpr(b, w.When, d)
			b.WriteString(" THEN ")
			renderExpr(b, w.Then, d)
		}
		if n.Else != nil {
			b.WriteString(" ELSE ")
			renderExpr(b, n.Else, d)
		}
		b.WriteString(" END")
	case *FuncCall:
		b.WriteString(n.Name)
		b.WriteString("(")
		for i, x := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, x, d)
		}
		b.WriteString(")")
	default:
		panic(fmt.Sprintf("sqlast: cannot render expr %T", e))
	}
}
