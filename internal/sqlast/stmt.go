package sqlast

// Stmt is any SQL statement node.
type Stmt interface {
	isStmt()
	// Kind returns the statement-category label used by Figure 3 of the
	// paper ("CREATE TABLE", "INSERT", "SELECT", "OPTION", ...).
	Kind() string
}

// ColumnDef defines one column in CREATE TABLE / ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name       string
	TypeName   string // may be empty (SQLite)
	Unsigned   bool   // MySQL
	PrimaryKey bool
	Unique     bool
	NotNull    bool
	Collate    string // empty = default
	Default    Expr   // nil if absent
	Check      Expr   // nil if absent
}

// CreateTable is CREATE TABLE.
type CreateTable struct {
	Name         string
	IfNotExists  bool
	Columns      []ColumnDef
	PrimaryKey   []string // table-level PK column names (empty if none/column-level)
	WithoutRowid bool     // SQLite
	Engine       string   // MySQL: "", "INNODB", "MEMORY", "CSV"
	Inherits     string   // Postgres: parent table name, empty if none
}

// IndexedExpr is one key part of an index: an expression (often a bare
// column), an optional collation, and sort order.
type IndexedExpr struct {
	X       Expr
	Collate string
	Desc    bool
}

// CreateIndex is CREATE [UNIQUE] INDEX ... ON table(parts) [WHERE pred].
type CreateIndex struct {
	Name        string
	IfNotExists bool
	Unique      bool
	Table       string
	Parts       []IndexedExpr
	Where       Expr // partial index predicate (nil if absent)
}

// CreateView is CREATE VIEW name AS select.
type CreateView struct {
	Name        string
	IfNotExists bool
	Select      *Select
}

// CreateStats is CREATE STATISTICS (Postgres).
type CreateStats struct {
	Name    string
	Table   string
	Columns []string
}

// ConflictAction modifies INSERT/UPDATE conflict behaviour.
type ConflictAction uint8

// Conflict actions.
const (
	ConflictNone ConflictAction = iota
	ConflictIgnore
	ConflictReplace
)

// Insert is INSERT [OR IGNORE|OR REPLACE] INTO t(cols) VALUES rows.
type Insert struct {
	Table    string
	Columns  []string // empty = all columns in order
	Rows     [][]Expr
	Conflict ConflictAction
}

// Assignment is one SET clause of UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE [OR REPLACE] t SET ... [WHERE ...].
type Update struct {
	Table    string
	Sets     []Assignment
	Where    Expr // nil = all rows
	Conflict ConflictAction
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// AlterKind selects the ALTER TABLE form.
type AlterKind uint8

// ALTER TABLE forms.
const (
	AlterRenameTable AlterKind = iota
	AlterRenameColumn
	AlterAddColumn
)

// AlterTable is ALTER TABLE.
type AlterTable struct {
	Table   string
	Action  AlterKind
	NewName string    // rename table / rename column target
	OldName string    // rename column source
	Column  ColumnDef // add column
}

// DropKind selects the object class of DROP.
type DropKind uint8

// DROP object classes.
const (
	DropTable DropKind = iota
	DropIndex
	DropView
)

// Drop is DROP TABLE/INDEX/VIEW.
type Drop struct {
	Obj      DropKind
	Name     string
	IfExists bool
}

// TableRef names a table or view in FROM, with optional alias.
type TableRef struct {
	Name  string
	Alias string
	Only  bool // Postgres: FROM ONLY t (exclude inheritance children)
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join types.
const (
	JoinCross JoinKind = iota
	JoinInner
	JoinLeft
)

// JoinClause is one JOIN after the first FROM item.
type JoinClause struct {
	Kind  JoinKind
	Table TableRef
	On    Expr // nil for CROSS
}

// ResultCol is one output column of SELECT: an expression with optional
// alias, or star.
type ResultCol struct {
	Star  bool
	X     Expr
	Alias string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	X    Expr
	Desc bool
}

// Select is the SELECT statement (DQL).
type Select struct {
	Distinct bool
	Cols     []ResultCol
	From     []TableRef // comma-joined sources; may be empty (SELECT 1)
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr
}

// MaintKind enumerates maintenance statements (the paper's error-oracle
// hot spots: VACUUM, REINDEX, ANALYZE, REPAIR TABLE, CHECK TABLE, DISCARD).
type MaintKind uint8

// Maintenance statement kinds.
const (
	MaintVacuum MaintKind = iota
	MaintVacuumFull
	MaintReindex
	MaintAnalyze
	MaintRepairTable
	MaintCheckTable
	MaintCheckTableForUpgrade
	MaintDiscard
)

// Maintenance is a maintenance statement, optionally scoped to a table.
type Maintenance struct {
	Op    MaintKind
	Table string // empty = whole database where allowed
}

// SetOption is PRAGMA name=value (SQLite) or SET [GLOBAL] name = value
// (MySQL/Postgres).
type SetOption struct {
	Global bool
	Name   string
	Value  Expr
}

// Explain is EXPLAIN [QUERY PLAN] <stmt>: it asks the engine's planner
// which access path each FROM source would take, without executing.
type Explain struct {
	Target Stmt
}

// TxnKind selects the transaction-control form.
type TxnKind uint8

// Transaction-control forms.
const (
	TxnBegin TxnKind = iota
	TxnCommit
	TxnRollback
)

// Txn is BEGIN / COMMIT / ROLLBACK (transaction control). The parser also
// accepts the TRANSACTION/WORK noise words and the END spelling of COMMIT;
// rendering always emits the canonical bare keyword.
type Txn struct {
	Op TxnKind
}

func (*CreateTable) isStmt() {}
func (*CreateIndex) isStmt() {}
func (*CreateView) isStmt()  {}
func (*CreateStats) isStmt() {}
func (*Insert) isStmt()      {}
func (*Update) isStmt()      {}
func (*Delete) isStmt()      {}
func (*AlterTable) isStmt()  {}
func (*Drop) isStmt()        {}
func (*Select) isStmt()      {}
func (*Maintenance) isStmt() {}
func (*SetOption) isStmt()   {}
func (*Explain) isStmt()     {}
func (*Txn) isStmt()         {}

// Kind implementations produce the Figure 3 statement-category labels.

// Kind returns "CREATE TABLE".
func (*CreateTable) Kind() string { return "CREATE TABLE" }

// Kind returns "CREATE INDEX".
func (*CreateIndex) Kind() string { return "CREATE INDEX" }

// Kind returns "CREATE VIEW".
func (*CreateView) Kind() string { return "CREATE VIEW" }

// Kind returns "CREATE STATS".
func (*CreateStats) Kind() string { return "CREATE STATS" }

// Kind returns "INSERT".
func (*Insert) Kind() string { return "INSERT" }

// Kind returns "UPDATE".
func (*Update) Kind() string { return "UPDATE" }

// Kind returns "DELETE".
func (*Delete) Kind() string { return "DELETE" }

// Kind returns "ALTER TABLE".
func (*AlterTable) Kind() string { return "ALTER TABLE" }

// Kind returns "DROP TABLE" / "DROP INDEX" / "DROP VIEW".
func (d *Drop) Kind() string {
	switch d.Obj {
	case DropIndex:
		return "DROP INDEX"
	case DropView:
		return "DROP VIEW"
	default:
		return "DROP TABLE"
	}
}

// Kind returns "SELECT".
func (*Select) Kind() string { return "SELECT" }

// Kind returns the maintenance statement label.
func (m *Maintenance) Kind() string {
	switch m.Op {
	case MaintVacuum, MaintVacuumFull:
		return "VACUUM"
	case MaintReindex:
		return "REINDEX"
	case MaintAnalyze:
		return "ANALYZE"
	case MaintRepairTable, MaintCheckTable, MaintCheckTableForUpgrade:
		return "REPAIR/CHECK TABLE"
	case MaintDiscard:
		return "DISCARD"
	default:
		return "MAINTENANCE"
	}
}

// Kind returns "OPTION".
func (*SetOption) Kind() string { return "OPTION" }

// Kind returns "EXPLAIN".
func (*Explain) Kind() string { return "EXPLAIN" }

// Kind returns "BEGIN" / "COMMIT" / "ROLLBACK".
func (t *Txn) Kind() string {
	switch t.Op {
	case TxnCommit:
		return "COMMIT"
	case TxnRollback:
		return "ROLLBACK"
	default:
		return "BEGIN"
	}
}
