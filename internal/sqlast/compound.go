package sqlast

// CompoundOp is a compound SELECT operator.
type CompoundOp uint8

// Compound operators.
const (
	// OpUnion is UNION (set union, duplicates removed).
	OpUnion CompoundOp = iota
	// OpUnionAll is UNION ALL (bag union).
	OpUnionAll
	// OpIntersect is INTERSECT — the operator the paper uses to combine
	// containment checking with query evaluation (§3.2, steps 6+7).
	OpIntersect
	// OpExcept is EXCEPT (set difference).
	OpExcept
)

// String returns the SQL spelling.
func (o CompoundOp) String() string {
	switch o {
	case OpUnion:
		return "UNION"
	case OpUnionAll:
		return "UNION ALL"
	case OpIntersect:
		return "INTERSECT"
	case OpExcept:
		return "EXCEPT"
	default:
		return "UNION"
	}
}

// Compound is a compound SELECT: S1 op S2 op S3 ..., left-associative.
type Compound struct {
	Selects []*Select    // len >= 2
	Ops     []CompoundOp // len == len(Selects)-1
}

func (*Compound) isStmt() {}

// Kind returns "SELECT" — compound queries count as SELECTs in Figure 3.
func (*Compound) Kind() string { return "SELECT" }
