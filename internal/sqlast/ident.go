package sqlast

import "strings"

// Render-time identifier quoting. The parser accepts quoted identifiers
// with arbitrary content (`a``b`, `00`, keywords); rendering them bare
// would change meaning or fail to reparse, breaking the render→reparse
// fixed point PQS relies on when campaigns run in wire-fidelity mode.
// writeIdent backtick-quotes any identifier that is not a plain word, or
// that the parser could mistake for a keyword in some identifier
// position. Backtick is the one quoting form every dialect profile's
// lexer reads as a strict identifier (tokQuotedIdent), so one rule serves
// all three dialects.

// renderKeywords is the conservative superset of words the parser
// special-cases anywhere an identifier could appear: statement starters,
// clause terminators (reservedAfterExpr), expression primaries
// (NULL/TRUE/FALSE/CAST/CASE), postfix operators (IS/IN/BETWEEN/LIKE/
// ISNULL/NOTNULL), column-constraint and table-option words. Quoting a
// word that would have parsed bare is harmless — the fixed point only
// requires that quoting is stable — so erring broad is free.
var renderKeywords = map[string]bool{
	"ADD": true, "ALL": true, "ALTER": true, "ANALYZE": true, "AND": true,
	"AS": true, "ASC": true, "BETWEEN": true, "BY": true, "CASE": true,
	"CAST": true, "CHECK": true, "COLLATE": true, "COLUMN": true,
	"CREATE": true, "CROSS": true, "DEFAULT": true, "DELETE": true,
	"DESC": true, "DISCARD": true, "DISTINCT": true, "DROP": true,
	"ELSE": true, "END": true, "ENGINE": true, "EXCEPT": true,
	"EXISTS": true, "EXPLAIN": true, "FALSE": true, "FOR": true,
	"FROM": true, "FULL": true, "GLOBAL": true, "GROUP": true,
	"HAVING": true, "IF": true, "IGNORE": true, "IN": true, "INDEX": true,
	"INHERITS": true, "INNER": true, "INSERT": true, "INTERSECT": true,
	"INTO": true, "IS": true, "ISNULL": true, "JOIN": true, "KEY": true,
	"LEFT": true, "LIKE": true, "LIMIT": true, "NOT": true,
	"NOTNULL": true, "NULL": true, "OFFSET": true, "ON": true,
	"ONLY": true, "OR": true, "ORDER": true, "OUTER": true, "PLAN": true,
	"PLANS": true, "PRAGMA": true, "PRIMARY": true, "QUERY": true,
	"REFERENCES": true, "REINDEX": true, "RENAME": true, "REPAIR": true,
	"REPLACE": true, "ROWID": true, "SELECT": true, "SET": true,
	"STATISTICS": true, "TABLE": true, "THEN": true, "TO": true,
	"TRUE": true, "UNION": true, "UNIQUE": true, "UNSIGNED": true,
	"UPDATE": true, "UPGRADE": true, "VACUUM": true, "VALUES": true,
	"VIEW": true, "WHEN": true, "WHERE": true, "WITHOUT": true,
}

// identNeedsQuote reports whether an identifier must be quoted to survive
// a render→reparse round trip: it is empty, does not lex as a single
// plain identifier token, or collides with a parser keyword.
func identNeedsQuote(name string) bool {
	if name == "" {
		return true
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return true
		}
	}
	return renderKeywords[strings.ToUpper(name)]
}

// writeIdent renders an identifier, backtick-quoting when needed
// (embedded backticks double, the lexer's escape).
func writeIdent(b *strings.Builder, name string) {
	if !identNeedsQuote(name) {
		b.WriteString(name)
		return
	}
	b.WriteByte('`')
	b.WriteString(strings.ReplaceAll(name, "`", "``"))
	b.WriteByte('`')
}

// writeIdentList renders a comma-separated identifier list.
func writeIdentList(b *strings.Builder, names []string) {
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		writeIdent(b, n)
	}
}
