package sqlast

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlval"
)

func TestRenderListing1Shape(t *testing.T) {
	// CREATE TABLE t0(c0); CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
	// SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1;
	ct := &CreateTable{Name: "t0", Columns: []ColumnDef{{Name: "c0"}}}
	if got := SQL(ct, dialect.SQLite); got != "CREATE TABLE t0(c0)" {
		t.Errorf("create table: %q", got)
	}
	ci := &CreateIndex{
		Name: "i0", Table: "t0",
		Parts: []IndexedExpr{{X: Lit(sqlval.Int(1))}},
		Where: &Unary{Op: OpNotNull, X: Col("", "c0")},
	}
	if got := SQL(ci, dialect.SQLite); got != "CREATE INDEX i0 ON t0(1) WHERE (c0 IS NOT NULL)" {
		t.Errorf("create index: %q", got)
	}
	sel := &Select{
		Cols:  []ResultCol{{X: Col("", "c0")}},
		From:  []TableRef{{Name: "t0"}},
		Where: &Binary{Op: OpIsNot, L: Col("t0", "c0"), R: Lit(sqlval.Int(1))},
	}
	if got := SQL(sel, dialect.SQLite); got != "SELECT c0 FROM t0 WHERE (t0.c0 IS NOT 1)" {
		t.Errorf("select: %q", got)
	}
}

func TestRenderInsertConflict(t *testing.T) {
	ins := &Insert{
		Table:   "t0",
		Columns: []string{"c0"},
		Rows:    [][]Expr{{Lit(sqlval.Int(0))}, {Lit(sqlval.Null())}},
	}
	want := "INSERT INTO t0(c0) VALUES (0), (NULL)"
	if got := SQL(ins, dialect.SQLite); got != want {
		t.Errorf("insert: %q, want %q", got, want)
	}
	ins.Conflict = ConflictIgnore
	if got := SQL(ins, dialect.SQLite); !strings.HasPrefix(got, "INSERT OR IGNORE ") {
		t.Errorf("sqlite insert or ignore: %q", got)
	}
	if got := SQL(ins, dialect.MySQL); !strings.HasPrefix(got, "INSERT IGNORE ") {
		t.Errorf("mysql insert ignore: %q", got)
	}
	ins.Conflict = ConflictReplace
	if got := SQL(ins, dialect.SQLite); !strings.HasPrefix(got, "INSERT OR REPLACE ") {
		t.Errorf("insert or replace: %q", got)
	}
}

func TestRenderCreateTableVariants(t *testing.T) {
	ct := &CreateTable{
		Name: "t0",
		Columns: []ColumnDef{
			{Name: "c0", TypeName: "TEXT", PrimaryKey: true},
		},
		WithoutRowid: true,
	}
	want := "CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID"
	if got := SQL(ct, dialect.SQLite); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	my := &CreateTable{
		Name:    "t1",
		Columns: []ColumnDef{{Name: "c0", TypeName: "INT"}},
		Engine:  "MEMORY",
	}
	if got := SQL(my, dialect.MySQL); got != "CREATE TABLE t1(c0 INT) ENGINE = MEMORY" {
		t.Errorf("mysql engine: %q", got)
	}
	pg := &CreateTable{
		Name:     "t1",
		Columns:  []ColumnDef{{Name: "c0", TypeName: "INT"}},
		Inherits: "t0",
	}
	if got := SQL(pg, dialect.Postgres); got != "CREATE TABLE t1(c0 INT) INHERITS (t0)" {
		t.Errorf("pg inherits: %q", got)
	}
	pk := &CreateTable{
		Name: "t0",
		Columns: []ColumnDef{
			{Name: "c0", Collate: "RTRIM"},
			{Name: "c1", TypeName: "BLOB", Unique: true},
		},
		PrimaryKey:   []string{"c0", "c1"},
		WithoutRowid: true,
	}
	want = "CREATE TABLE t0(c0 COLLATE RTRIM, c1 BLOB UNIQUE, PRIMARY KEY (c0, c1)) WITHOUT ROWID"
	if got := SQL(pk, dialect.SQLite); got != want {
		t.Errorf("table pk: %q, want %q", got, want)
	}
}

func TestRenderExprForms(t *testing.T) {
	cases := []struct {
		e    Expr
		d    dialect.Dialect
		want string
	}{
		{Not(Col("t0", "c1")), dialect.SQLite, "(NOT t0.c1)"},
		{IsNullExpr(Col("", "c0")), dialect.SQLite, "(c0 IS NULL)"},
		{&Binary{Op: OpNullSafeEq, L: Col("t0", "c0"), R: Lit(sqlval.Int(2035382037))}, dialect.MySQL, "(t0.c0 <=> 2035382037)"},
		{&Between{X: Col("", "c0"), Lo: Lit(sqlval.Int(1)), Hi: Lit(sqlval.Int(5))}, dialect.SQLite, "(c0 BETWEEN 1 AND 5)"},
		{&InList{X: Col("", "c0"), Not: true, List: []Expr{Lit(sqlval.Int(1)), Lit(sqlval.Null())}}, dialect.SQLite, "(c0 NOT IN (1, NULL))"},
		{&Cast{X: Col("t1", "c0"), TypeName: "UNSIGNED"}, dialect.MySQL, "CAST(t1.c0 AS UNSIGNED)"},
		{&Collate{X: Col("", "c0"), Coll: sqlval.CollNoCase}, dialect.SQLite, "(c0 COLLATE NOCASE)"},
		{&FuncCall{Name: "IFNULL", Args: []Expr{Lit(sqlval.Text("u")), Col("t0", "c0")}}, dialect.MySQL, "IFNULL('u', t0.c0)"},
		{&Case{Whens: []WhenClause{{When: Col("", "c0"), Then: Lit(sqlval.Int(1))}}, Else: Lit(sqlval.Int(0))}, dialect.SQLite, "CASE WHEN c0 THEN 1 ELSE 0 END"},
		{&Unary{Op: OpBitNot, X: Lit(sqlval.Int(3))}, dialect.SQLite, "(~ 3)"},
	}
	for _, c := range cases {
		if got := ExprSQL(c.e, c.d); got != c.want {
			t.Errorf("ExprSQL = %q, want %q", got, c.want)
		}
	}
}

func TestRenderSelectFull(t *testing.T) {
	sel := &Select{
		Distinct: true,
		Cols:     []ResultCol{{Star: true}},
		From:     []TableRef{{Name: "t1"}, {Name: "t2", Alias: "x"}},
		Where:    &Binary{Op: OpGt, L: Col("t1", "c0"), R: Lit(sqlval.Int(3))},
		OrderBy:  []OrderItem{{X: Col("t1", "c0"), Desc: true}},
		Limit:    Lit(sqlval.Int(10)),
		Offset:   Lit(sqlval.Int(2)),
	}
	want := "SELECT DISTINCT * FROM t1, t2 AS x WHERE (t1.c0 > 3) ORDER BY t1.c0 DESC LIMIT 10 OFFSET 2"
	if got := SQL(sel, dialect.SQLite); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRenderMaintenanceAndOptions(t *testing.T) {
	cases := []struct {
		s    Stmt
		d    dialect.Dialect
		want string
	}{
		{&Maintenance{Op: MaintVacuum}, dialect.SQLite, "VACUUM"},
		{&Maintenance{Op: MaintVacuumFull}, dialect.Postgres, "VACUUM FULL"},
		{&Maintenance{Op: MaintReindex, Table: "t0"}, dialect.SQLite, "REINDEX t0"},
		{&Maintenance{Op: MaintAnalyze}, dialect.Postgres, "ANALYZE"},
		{&Maintenance{Op: MaintRepairTable, Table: "t0"}, dialect.MySQL, "REPAIR TABLE t0"},
		{&Maintenance{Op: MaintCheckTableForUpgrade, Table: "t0"}, dialect.MySQL, "CHECK TABLE t0 FOR UPGRADE"},
		{&Maintenance{Op: MaintDiscard}, dialect.Postgres, "DISCARD PLANS"},
		{&SetOption{Name: "case_sensitive_like", Value: Lit(sqlval.Int(0))}, dialect.SQLite, "PRAGMA case_sensitive_like = 0"},
		{&SetOption{Global: true, Name: "key_cache_division_limit", Value: Lit(sqlval.Int(100))}, dialect.MySQL, "SET GLOBAL key_cache_division_limit = 100"},
	}
	for _, c := range cases {
		if got := SQL(c.s, c.d); got != c.want {
			t.Errorf("SQL = %q, want %q", got, c.want)
		}
	}
}

func TestStatementKinds(t *testing.T) {
	cases := map[Stmt]string{
		&CreateTable{}:                    "CREATE TABLE",
		&CreateIndex{}:                    "CREATE INDEX",
		&CreateView{}:                     "CREATE VIEW",
		&CreateStats{}:                    "CREATE STATS",
		&Insert{}:                         "INSERT",
		&Update{}:                         "UPDATE",
		&Delete{}:                         "DELETE",
		&AlterTable{}:                     "ALTER TABLE",
		&Drop{Obj: DropIndex}:             "DROP INDEX",
		&Drop{Obj: DropTable}:             "DROP TABLE",
		&Select{}:                         "SELECT",
		&Maintenance{Op: MaintVacuum}:     "VACUUM",
		&Maintenance{Op: MaintReindex}:    "REINDEX",
		&Maintenance{Op: MaintCheckTable}: "REPAIR/CHECK TABLE",
		&SetOption{}:                      "OPTION",
	}
	for s, want := range cases {
		if got := s.Kind(); got != want {
			t.Errorf("Kind(%T) = %q, want %q", s, got, want)
		}
	}
}

func TestWalkAndColumnsUsed(t *testing.T) {
	e := &Binary{
		Op: OpOr,
		L:  Not(Col("t0", "c1")),
		R:  &Binary{Op: OpGt, L: Col("t1", "c0"), R: &Binary{Op: OpAdd, L: Col("t0", "c1"), R: Lit(sqlval.Int(3))}},
	}
	cols := ColumnsUsed(e)
	if len(cols) != 2 {
		t.Fatalf("ColumnsUsed = %v, want 2 distinct", cols)
	}
	if cols[0] != (ColumnRef{Table: "t0", Column: "c1"}) || cols[1] != (ColumnRef{Table: "t1", Column: "c0"}) {
		t.Errorf("ColumnsUsed order wrong: %v", cols)
	}
	count := 0
	WalkExprs(e, func(Expr) bool { count++; return true })
	if count != 8 {
		t.Errorf("WalkExprs visited %d nodes, want 8", count)
	}
}

func TestDepth(t *testing.T) {
	if d := Depth(Lit(sqlval.Int(1))); d != 1 {
		t.Errorf("depth of literal = %d", d)
	}
	e := Not(&Binary{Op: OpOr, L: Col("t0", "c1"), R: &Binary{Op: OpGt, L: Col("t1", "c0"), R: Lit(sqlval.Int(3))}})
	if d := Depth(e); d != 4 {
		t.Errorf("depth = %d, want 4", d)
	}
}
