package sqlval

import "math"

// Compare is the engine's total storage ordering over values, used by
// indexes, ORDER BY, DISTINCT, and UNIQUE enforcement. It follows SQLite's
// cross-class ordering: NULL < numeric < TEXT < BLOB, with BOOL ordered as
// its integer encoding. TEXT compares under the supplied collation.
//
// This ordering is intentionally *not* used by the PQS oracle interpreter,
// which implements its own comparison semantics (internal/interp), so a bug
// injected in the engine's use of this ordering remains observable.
func Compare(a, b Value, coll Collation) int {
	ra, rb := classRank(a), classRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric (incl. bool)
		return numericCompare(a, b)
	case 2: // both text
		return CollCompare(a.Str(), b.Str(), coll)
	default: // both blob
		return blobCompare(a.BlobStr(), b.BlobStr())
	}
}

func classRank(v Value) int {
	switch v.Kind() {
	case KNull:
		return 0
	case KInt, KUint, KReal, KBool:
		return 1
	case KText:
		return 2
	default:
		return 3
	}
}

func numericCompare(a, b Value) int {
	// Exact integer fast paths avoid float rounding for large int64s.
	if a.Kind() == KInt && b.Kind() == KInt {
		return cmpInt64(a.Int64(), b.Int64())
	}
	if a.Kind() == KUint && b.Kind() == KUint {
		return cmpUint64(a.Uint64(), b.Uint64())
	}
	if a.Kind() == KInt && b.Kind() == KUint {
		if a.Int64() < 0 {
			return -1
		}
		return cmpUint64(uint64(a.Int64()), b.Uint64())
	}
	if a.Kind() == KUint && b.Kind() == KInt {
		return -numericCompare(b, a)
	}
	if a.Kind() == KBool || b.Kind() == KBool {
		av, bv := a, b
		if av.Kind() == KBool {
			av = Int(av.Int64())
		}
		if bv.Kind() == KBool {
			bv = Int(bv.Int64())
		}
		return numericCompare(av, bv)
	}
	// At least one REAL: compare carefully across int64/float64.
	if a.Kind() == KReal && b.Kind() == KInt {
		return cmpFloatInt(a.Float64(), b.Int64())
	}
	if a.Kind() == KInt && b.Kind() == KReal {
		return -cmpFloatInt(b.Float64(), a.Int64())
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// cmpFloatInt compares a float against an int64 without losing precision
// for integers beyond 2^53, mirroring SQLite's sqlite3IntFloatCompare.
func cmpFloatInt(f float64, i int64) int {
	if math.IsNaN(f) {
		return -1 // NaN sorts first among reals; engine never stores NaN
	}
	if f < -9.223372036854776e18 {
		return -1
	}
	if f >= 9.223372036854776e18 {
		return 1
	}
	tf := math.Trunc(f)
	ti := int64(tf)
	if ti != i {
		return cmpInt64(ti, i)
	}
	if f > tf {
		return 1
	}
	if f < tf {
		return -1
	}
	return 0
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpUint64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func blobCompare(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return cmpInt64(int64(len(a)), int64(len(b)))
}
