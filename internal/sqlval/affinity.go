package sqlval

import (
	"math"
	"strconv"
	"strings"
)

// Affinity is SQLite's column type affinity: the preferred storage class
// for a column. Values inserted into a column are converted to the
// affinity's storage class when the conversion is lossless.
type Affinity uint8

const (
	// AffBlob applies no conversion (SQLite calls this "BLOB affinity",
	// historically "NONE").
	AffBlob Affinity = iota
	// AffText converts numeric values to their text rendering.
	AffText
	// AffNumeric converts text that looks numeric into INTEGER or REAL.
	AffNumeric
	// AffInteger behaves like NUMERIC and additionally converts
	// integral REALs to INTEGER.
	AffInteger
	// AffReal converts integers to floating point.
	AffReal
)

// String names the affinity.
func (a Affinity) String() string {
	switch a {
	case AffBlob:
		return "BLOB"
	case AffText:
		return "TEXT"
	case AffNumeric:
		return "NUMERIC"
	case AffInteger:
		return "INTEGER"
	case AffReal:
		return "REAL"
	default:
		return "BLOB"
	}
}

// AffinityOf derives a column's affinity from its declared type name using
// SQLite's five-rule algorithm (https://sqlite.org/datatype3.html §3.1).
// An empty declared type has BLOB affinity, which is what makes
// `CREATE TABLE t0(c0)` — the paper's canonical opener — store anything.
func AffinityOf(declared string) Affinity {
	t := strings.ToUpper(declared)
	switch {
	case strings.Contains(t, "INT"):
		return AffInteger
	case strings.Contains(t, "CHAR"), strings.Contains(t, "CLOB"), strings.Contains(t, "TEXT"):
		return AffText
	case t == "" || strings.Contains(t, "BLOB"):
		return AffBlob
	case strings.Contains(t, "REAL"), strings.Contains(t, "FLOA"), strings.Contains(t, "DOUB"):
		return AffReal
	default:
		return AffNumeric
	}
}

// ApplyAffinity converts v to the column's preferred storage class if the
// conversion is lossless, following SQLite's insertion-time coercion.
func ApplyAffinity(v Value, a Affinity) Value {
	if v.IsNull() {
		return v
	}
	switch a {
	case AffText:
		switch v.Kind() {
		case KInt, KUint, KReal, KBool:
			return Text(v.Literal())
		}
		return v
	case AffInteger, AffNumeric:
		if v.Kind() == KBool {
			return Int(v.Int64())
		}
		if v.Kind() == KText {
			if n, ok := TextToNumeric(v.Str()); ok {
				return integerify(n)
			}
			return v
		}
		if v.Kind() == KReal {
			return integerify(v)
		}
		return v
	case AffReal:
		switch v.Kind() {
		case KInt:
			return Real(float64(v.Int64()))
		case KUint:
			return Real(float64(v.Uint64()))
		case KBool:
			return Real(float64(v.Int64()))
		case KText:
			if n, ok := TextToNumeric(v.Str()); ok {
				return Real(n.AsFloat())
			}
		}
		return v
	default: // AffBlob: no conversion
		return v
	}
}

// integerify converts a REAL holding an exactly-representable integer back
// to INTEGER, as NUMERIC/INTEGER affinity does.
func integerify(v Value) Value {
	if v.Kind() != KReal {
		return v
	}
	f := v.Float64()
	if f == math.Trunc(f) && f >= -9.223372036854776e18 && f < 9.223372036854776e18 {
		i := int64(f)
		if float64(i) == f {
			return Int(i)
		}
	}
	return v
}

// TextToNumeric parses a string that is *entirely* a numeric literal
// (modulo surrounding spaces) into an INTEGER or REAL value. This is the
// strict parse used by affinity conversion; the lossy prefix parse used in
// expression coercion lives with each evaluator.
func TextToNumeric(s string) (Value, bool) {
	t := strings.TrimSpace(s)
	if t == "" {
		return Null(), false
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i), true
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		// Reject hex/underscore forms Go accepts but SQL does not.
		if strings.ContainsAny(t, "xX_pP") {
			return Null(), false
		}
		return Real(f), true
	}
	return Null(), false
}
