package sqlval

import "strings"

// Collation selects how TEXT values compare and sort. The three collations
// are SQLite's built-ins; several bugs in the paper (Listings 4 and 5)
// involve NOCASE and RTRIM interacting with indexes.
type Collation uint8

const (
	// CollBinary compares bytes exactly (the default everywhere).
	CollBinary Collation = iota
	// CollNoCase folds ASCII case before comparing.
	CollNoCase
	// CollRTrim ignores trailing spaces.
	CollRTrim
)

// String returns the SQL spelling of the collation.
func (c Collation) String() string {
	switch c {
	case CollBinary:
		return "BINARY"
	case CollNoCase:
		return "NOCASE"
	case CollRTrim:
		return "RTRIM"
	default:
		return "BINARY"
	}
}

// ParseCollation resolves a collation name case-insensitively. Unknown
// names report ok=false so callers can raise the dialect's error.
func ParseCollation(name string) (Collation, bool) {
	switch strings.ToUpper(name) {
	case "BINARY":
		return CollBinary, true
	case "NOCASE":
		return CollNoCase, true
	case "RTRIM":
		return CollRTrim, true
	}
	return CollBinary, false
}

// CollCompare compares two strings under the collation, returning -1, 0, 1.
func CollCompare(a, b string, c Collation) int {
	switch c {
	case CollNoCase:
		a = foldASCII(a)
		b = foldASCII(b)
	case CollRTrim:
		a = strings.TrimRight(a, " ")
		b = strings.TrimRight(b, " ")
	}
	return strings.Compare(a, b)
}

// CollKey returns the canonical form of a string under a collation: two
// strings compare equal under CollCompare iff their keys are byte-equal.
// Hash-join buckets and other hashed groupings key on this form.
func CollKey(s string, c Collation) string {
	switch c {
	case CollNoCase:
		return foldASCII(s)
	case CollRTrim:
		return strings.TrimRight(s, " ")
	}
	return s
}

// foldASCII lowercases ASCII letters only, matching SQLite's NOCASE, which
// does not fold non-ASCII characters.
func foldASCII(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
