package sqlval

// TriBool is SQL's three-valued logic domain. The rectification step of PQS
// (Algorithm 3 in the paper) dispatches on this type: TRUE expressions are
// used as-is, FALSE expressions are wrapped in NOT, and UNKNOWN (NULL)
// expressions are wrapped in IS NULL.
type TriBool uint8

const (
	// TriFalse is SQL FALSE.
	TriFalse TriBool = iota
	// TriTrue is SQL TRUE.
	TriTrue
	// TriUnknown is SQL NULL in boolean context.
	TriUnknown
)

// String renders the logic value as SQL spells it.
func (t TriBool) String() string {
	switch t {
	case TriFalse:
		return "FALSE"
	case TriTrue:
		return "TRUE"
	default:
		return "NULL"
	}
}

// TriOf converts a Go bool into the corresponding TriBool.
func TriOf(b bool) TriBool {
	if b {
		return TriTrue
	}
	return TriFalse
}

// Not implements three-valued negation: NOT NULL is NULL.
func (t TriBool) Not() TriBool {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	default:
		return TriUnknown
	}
}

// And implements three-valued conjunction: FALSE dominates NULL.
func (t TriBool) And(o TriBool) TriBool {
	if t == TriFalse || o == TriFalse {
		return TriFalse
	}
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriTrue
}

// Or implements three-valued disjunction: TRUE dominates NULL.
func (t TriBool) Or(o TriBool) TriBool {
	if t == TriTrue || o == TriTrue {
		return TriTrue
	}
	if t == TriUnknown || o == TriUnknown {
		return TriUnknown
	}
	return TriFalse
}

// Value converts the TriBool into a SQL value: TRUE→1, FALSE→0,
// UNKNOWN→NULL, using the integer encoding shared by SQLite and MySQL.
func (t TriBool) Value() Value {
	switch t {
	case TriTrue:
		return Int(1)
	case TriFalse:
		return Int(0)
	default:
		return Null()
	}
}

// BoolValue is like Value but produces a KBool (PostgreSQL encoding).
func (t TriBool) BoolValue() Value {
	switch t {
	case TriTrue:
		return Bool(true)
	case TriFalse:
		return Bool(false)
	default:
		return Null()
	}
}
