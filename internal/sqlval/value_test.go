package sqlval

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KNull {
		t.Fatalf("zero Value should be NULL, got %v", v)
	}
}

func TestConstructorsRoundTrip(t *testing.T) {
	if got := Int(-7).Int64(); got != -7 {
		t.Errorf("Int round trip: got %d", got)
	}
	if got := Uint(1 << 63).Uint64(); got != 1<<63 {
		t.Errorf("Uint round trip: got %d", got)
	}
	if got := Real(2.5).Float64(); got != 2.5 {
		t.Errorf("Real round trip: got %v", got)
	}
	if got := Text("a'b").Str(); got != "a'b" {
		t.Errorf("Text round trip: got %q", got)
	}
	if got := Blob([]byte{0, 255}).Bytes(); string(got) != "\x00\xff" {
		t.Errorf("Blob round trip: got %v", got)
	}
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Errorf("Bool round trip failed")
	}
}

func TestLiteralRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(0), "0"},
		{Int(-2851427734582196970), "-2851427734582196970"},
		{Uint(18446744073709551615), "18446744073709551615"},
		{Real(0.5), "0.5"},
		{Real(1), "1.0"},
		{Real(math.Inf(1)), "9e999"},
		{Text(""), "''"},
		{Text("it's"), "'it''s'"},
		{Blob([]byte{0xab, 0x01}), "x'ab01'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.Literal(); got != c.want {
			t.Errorf("Literal(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestEqualNumericCrossType(t *testing.T) {
	if !Int(1).Equal(Real(1.0)) {
		t.Error("1 should Equal 1.0")
	}
	if Int(1).Equal(Real(1.5)) {
		t.Error("1 should not Equal 1.5")
	}
	if !Uint(5).Equal(Int(5)) {
		t.Error("uint 5 should Equal int 5")
	}
	if Uint(1 << 63).Equal(Int(-1)) {
		t.Error("2^63 should not Equal -1")
	}
	if !Bool(true).Equal(Int(1)) {
		t.Error("TRUE should Equal 1 (integer encoding)")
	}
	if Text("1").Equal(Int(1)) {
		t.Error("Equal is type-sensitive: '1' != 1")
	}
	if !Null().Equal(Null()) {
		t.Error("containment equality treats NULL as identical to NULL")
	}
	if Null().Equal(Int(0)) {
		t.Error("NULL should not Equal 0")
	}
}

func TestEqualIsReflexiveAndSymmetric(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(-1), Int(math.MaxInt64), Uint(math.MaxUint64),
		Real(0.5), Real(-0.0), Text(""), Text("abc"), Blob(nil),
		Blob([]byte{1, 2}), Bool(true), Bool(false),
	}
	for _, a := range vals {
		if !a.Equal(a) {
			t.Errorf("Equal not reflexive for %v", a)
		}
		for _, b := range vals {
			if a.Equal(b) != b.Equal(a) {
				t.Errorf("Equal not symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestTriBoolTables(t *testing.T) {
	if TriTrue.Not() != TriFalse || TriFalse.Not() != TriTrue || TriUnknown.Not() != TriUnknown {
		t.Error("three-valued NOT table wrong")
	}
	// Kleene AND.
	and := map[[2]TriBool]TriBool{
		{TriTrue, TriTrue}:       TriTrue,
		{TriTrue, TriFalse}:      TriFalse,
		{TriTrue, TriUnknown}:    TriUnknown,
		{TriFalse, TriFalse}:     TriFalse,
		{TriFalse, TriUnknown}:   TriFalse,
		{TriUnknown, TriUnknown}: TriUnknown,
	}
	for in, want := range and {
		if got := in[0].And(in[1]); got != want {
			t.Errorf("%v AND %v = %v, want %v", in[0], in[1], got, want)
		}
		if got := in[1].And(in[0]); got != want {
			t.Errorf("AND not commutative for %v", in)
		}
		// De Morgan: NOT(a AND b) == NOT a OR NOT b.
		if got := in[0].And(in[1]).Not(); got != in[0].Not().Or(in[1].Not()) {
			t.Errorf("De Morgan violated for %v", in)
		}
	}
}

func TestTriBoolValueEncoding(t *testing.T) {
	if !TriTrue.Value().Equal(Int(1)) || !TriFalse.Value().Equal(Int(0)) || !TriUnknown.Value().IsNull() {
		t.Error("integer encoding of TriBool wrong")
	}
	if TriTrue.BoolValue().Kind() != KBool || !TriUnknown.BoolValue().IsNull() {
		t.Error("bool encoding of TriBool wrong")
	}
}

func TestCollations(t *testing.T) {
	cases := []struct {
		a, b string
		c    Collation
		want int
	}{
		{"a", "A", CollBinary, 1},
		{"a", "A", CollNoCase, 0},
		{"a", "b", CollNoCase, -1},
		{"a ", "a", CollRTrim, 0},
		{"a      ", "a", CollRTrim, 0},
		{" a", "a", CollRTrim, -1},
		{"", "   ", CollRTrim, 0},
		{"ÄB", "äb", CollNoCase, -1}, // NOCASE folds ASCII only
	}
	for _, c := range cases {
		if got := CollCompare(c.a, c.b, c.c); got != c.want {
			t.Errorf("CollCompare(%q,%q,%v) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestParseCollation(t *testing.T) {
	for _, name := range []string{"binary", "NOCASE", "RTrim"} {
		if _, ok := ParseCollation(name); !ok {
			t.Errorf("ParseCollation(%q) failed", name)
		}
	}
	if _, ok := ParseCollation("latin1_swedish_ci"); ok {
		t.Error("unknown collation should not parse")
	}
}

func TestAffinityOf(t *testing.T) {
	cases := map[string]Affinity{
		"":                 AffBlob,
		"INT":              AffInteger,
		"TINYINT":          AffInteger,
		"BIGINT UNSIGNED":  AffInteger,
		"CHARACTER(20)":    AffText,
		"VARCHAR(255)":     AffText,
		"TEXT":             AffText,
		"CLOB":             AffText,
		"BLOB":             AffBlob,
		"REAL":             AffReal,
		"DOUBLE PRECISION": AffReal,
		"FLOAT":            AffReal,
		"NUMERIC":          AffNumeric,
		"DECIMAL(10,5)":    AffNumeric,
		"BOOLEAN":          AffNumeric,
		"DATE":             AffNumeric,
	}
	for decl, want := range cases {
		if got := AffinityOf(decl); got != want {
			t.Errorf("AffinityOf(%q) = %v, want %v", decl, got, want)
		}
	}
}

func TestApplyAffinity(t *testing.T) {
	cases := []struct {
		v    Value
		a    Affinity
		want Value
	}{
		{Text("123"), AffInteger, Int(123)},
		{Text(" 2.5 "), AffNumeric, Real(2.5)},
		{Text("2.0"), AffInteger, Int(2)},
		{Text("abc"), AffInteger, Text("abc")},
		{Text("./"), AffInteger, Text("./")}, // Listing 7's value stays TEXT
		{Int(1), AffText, Text("1")},
		{Real(0.5), AffText, Text("0.5")},
		{Int(3), AffReal, Real(3)},
		{Real(7.25), AffInteger, Real(7.25)},
		{Real(7.0), AffInteger, Int(7)},
		{Int(5), AffBlob, Int(5)},
		{Null(), AffText, Null()},
		{Bool(true), AffInteger, Int(1)},
	}
	for _, c := range cases {
		got := ApplyAffinity(c.v, c.a)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("ApplyAffinity(%v, %v) = %v (%v), want %v (%v)",
				c.v, c.a, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestTextToNumericRejectsPartial(t *testing.T) {
	for _, s := range []string{"12abc", "0x10", "1_000", "", "  ", "1e", "--3"} {
		if _, ok := TextToNumeric(s); ok {
			t.Errorf("TextToNumeric(%q) should fail", s)
		}
	}
	for _, s := range []string{"12", "-4", " 7 ", "2.5e3", ".5", "1e10"} {
		if _, ok := TextToNumeric(s); !ok {
			t.Errorf("TextToNumeric(%q) should succeed", s)
		}
	}
}

func TestCompareCrossClassOrdering(t *testing.T) {
	// NULL < numeric < TEXT < BLOB
	ordered := []Value{Null(), Int(math.MinInt64), Real(-1.5), Int(0), Bool(true),
		Int(2), Uint(math.MaxUint64), Text(""), Text("a"), Blob(nil), Blob([]byte{0})}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j], CollBinary)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareLargeIntFloatPrecision(t *testing.T) {
	// 2^62+1 vs float 2^62: the float path would lose the +1.
	big := int64(1) << 62
	if got := Compare(Int(big+1), Real(float64(big)), CollBinary); got != 1 {
		t.Errorf("large int vs float compare = %d, want 1", got)
	}
	if got := Compare(Real(9.3e18), Int(math.MaxInt64), CollBinary); got != 1 {
		t.Errorf("overflowing float should sort above MaxInt64, got %d", got)
	}
	if got := Compare(Real(-9.3e18), Int(math.MinInt64), CollBinary); got != -1 {
		t.Errorf("underflowing float should sort below MinInt64, got %d", got)
	}
}

func TestCompareCollationAware(t *testing.T) {
	if Compare(Text("ABC"), Text("abc"), CollNoCase) != 0 {
		t.Error("NOCASE compare should equate case variants")
	}
	if Compare(Text("abc "), Text("abc"), CollRTrim) != 0 {
		t.Error("RTRIM compare should ignore trailing spaces")
	}
	if Compare(Text("ABC"), Text("abc"), CollBinary) >= 0 {
		t.Error("BINARY compare should be case sensitive")
	}
}

// Property: Compare is antisymmetric and total over randomly generated
// values (via testing/quick).
func TestCompareAntisymmetryQuick(t *testing.T) {
	f := func(ai, bi int64, af, bf float64, as, bs string, pick uint8) bool {
		a := pickValue(pick&0x0f, ai, af, as)
		b := pickValue(pick>>4, bi, bf, bs)
		if math.IsNaN(af) || math.IsNaN(bf) {
			return true
		}
		return Compare(a, b, CollBinary) == -Compare(b, a, CollBinary)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive on random triples.
func TestCompareTransitivityQuick(t *testing.T) {
	f := func(xi, yi, zi int64, xf, yf, zf float64, xs, ys, zs string, pick uint16) bool {
		if math.IsNaN(xf) || math.IsNaN(yf) || math.IsNaN(zf) {
			return true
		}
		x := pickValue(uint8(pick&7), xi, xf, xs)
		y := pickValue(uint8(pick>>3&7), yi, yf, ys)
		z := pickValue(uint8(pick>>6&7), zi, zf, zs)
		if Compare(x, y, CollBinary) <= 0 && Compare(y, z, CollBinary) <= 0 {
			return Compare(x, z, CollBinary) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Equal implies Compare == 0 under BINARY for same-class values.
func TestEqualConsistentWithCompareQuick(t *testing.T) {
	f := func(ai, bi int64, as, bs string, pick uint8) bool {
		a := pickValue(pick&3, ai, 0, as)
		b := pickValue(pick>>2&3, bi, 0, bs)
		if a.Equal(b) {
			return Compare(a, b, CollBinary) == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: literal rendering of integers and text round-trips.
func TestLiteralRoundTripQuick(t *testing.T) {
	f := func(i int64, s string) bool {
		if got, err := strconv.ParseInt(Int(i).Literal(), 10, 64); err != nil || got != i {
			return false
		}
		lit := Text(s).Literal()
		if !strings.HasPrefix(lit, "'") || !strings.HasSuffix(lit, "'") {
			return false
		}
		body := lit[1 : len(lit)-1]
		return strings.ReplaceAll(body, "''", "'") == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func pickValue(pick uint8, i int64, f float64, s string) Value {
	switch pick % 7 {
	case 0:
		return Null()
	case 1:
		return Int(i)
	case 2:
		return Uint(uint64(i))
	case 3:
		return Real(f)
	case 4:
		return Text(s)
	case 5:
		return Blob([]byte(s))
	default:
		return Bool(i&1 == 1)
	}
}
