// Package sqlval defines the SQL value domain shared by the engine
// substrate and the PQS testing stack: dynamically-typed values, SQL
// three-valued logic, collations, and SQLite-style type affinity.
//
// The package deliberately contains only the *data model*. Operator
// semantics (arithmetic, comparison in expressions, LIKE, casts) are
// implemented twice and independently — once in the engine's evaluator
// (internal/eval) and once in the PQS oracle interpreter (internal/interp) —
// so that an injected engine bug cannot silently infect the oracle.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is the runtime storage class of a Value.
type Kind uint8

const (
	// KNull is the SQL NULL value.
	KNull Kind = iota
	// KInt is a signed 64-bit integer.
	KInt
	// KUint is an unsigned 64-bit integer (MySQL dialect only).
	KUint
	// KReal is a 64-bit IEEE float.
	KReal
	// KText is a character string.
	KText
	// KBlob is a byte string.
	KBlob
	// KBool is a true boolean (PostgreSQL dialect; SQLite and MySQL
	// store booleans as integers).
	KBool
)

// String returns the storage-class name, matching SQLite's typeof() output
// where applicable.
func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KInt:
		return "integer"
	case KUint:
		return "unsigned"
	case KReal:
		return "real"
	case KText:
		return "text"
	case KBlob:
		return "blob"
	case KBool:
		return "boolean"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically-typed SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	u    uint64
	f    float64
	s    string
	b    []byte
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KInt, i: i} }

// Uint returns an unsigned integer value (MySQL).
func Uint(u uint64) Value { return Value{kind: KUint, u: u} }

// Real returns a floating-point value.
func Real(f float64) Value { return Value{kind: KReal, f: f} }

// Text returns a text value.
func Text(s string) Value { return Value{kind: KText, s: s} }

// Blob returns a blob value. The slice is not copied.
func Blob(b []byte) Value { return Value{kind: KBlob, b: b} }

// Bool returns a boolean value (PostgreSQL dialect).
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KBool, i: i}
}

// Kind reports the storage class.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KNull }

// Int64 returns the integer payload. Valid only for KInt and KBool.
func (v Value) Int64() int64 { return v.i }

// Uint64 returns the unsigned payload. Valid only for KUint.
func (v Value) Uint64() uint64 { return v.u }

// Float64 returns the float payload. Valid only for KReal.
func (v Value) Float64() float64 { return v.f }

// Str returns the text payload. Valid only for KText.
func (v Value) Str() string { return v.s }

// Bytes returns the blob payload. Valid only for KBlob.
func (v Value) Bytes() []byte { return v.b }

// BoolVal returns the boolean payload. Valid only for KBool.
func (v Value) BoolVal() bool { return v.i != 0 }

// IsNumeric reports whether the value is an integer, unsigned, or real.
func (v Value) IsNumeric() bool {
	return v.kind == KInt || v.kind == KUint || v.kind == KReal
}

// AsFloat converts any numeric value (including KBool) to float64.
// It must not be called on non-numeric kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KInt, KBool:
		return float64(v.i)
	case KUint:
		return float64(v.u)
	case KReal:
		return v.f
	default:
		panic("sqlval: AsFloat on non-numeric " + v.kind.String())
	}
}

// Equal reports exact, type-sensitive equality between two values, with
// integer/real cross-type numeric equality (1 == 1.0). It implements the
// comparison the containment oracle uses when locating the pivot row in a
// result set; NULL equals NULL here (identity, not SQL equality).
func (v Value) Equal(o Value) bool {
	if v.kind == KNull || o.kind == KNull {
		return v.kind == o.kind
	}
	if v.IsNumeric() && o.IsNumeric() {
		return numericEqual(v, o)
	}
	if v.kind != o.kind {
		// Booleans compare equal to their integer encoding so that a
		// pivot row captured as BOOL matches an engine echo as INT.
		if (v.kind == KBool && o.kind == KInt) || (v.kind == KInt && o.kind == KBool) {
			return v.i == o.i
		}
		return false
	}
	switch v.kind {
	case KText:
		return v.s == o.s
	case KBlob:
		return string(v.b) == string(o.b)
	case KBool:
		return (v.i != 0) == (o.i != 0)
	default:
		panic("sqlval: unreachable Equal")
	}
}

func numericEqual(a, b Value) bool {
	if a.kind == KInt && b.kind == KInt {
		return a.i == b.i
	}
	if a.kind == KUint && b.kind == KUint {
		return a.u == b.u
	}
	if a.kind == KInt && b.kind == KUint {
		return a.i >= 0 && uint64(a.i) == b.u
	}
	if a.kind == KUint && b.kind == KInt {
		return b.i >= 0 && uint64(b.i) == a.u
	}
	return a.AsFloat() == b.AsFloat()
}

// Literal renders the value as a SQL literal parseable by the engine's
// parser in every dialect.
func (v Value) Literal() string {
	switch v.kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(v.i, 10)
	case KUint:
		return strconv.FormatUint(v.u, 10)
	case KReal:
		return FormatReal(v.f)
	case KText:
		return QuoteText(v.s)
	case KBlob:
		return "x'" + hexEncode(v.b) + "'"
	case KBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		panic("sqlval: unreachable Literal")
	}
}

// FormatReal renders a float the way the engine echoes it: always with an
// exponent or decimal point so it re-parses as a real, never an integer.
func FormatReal(f float64) string {
	if math.IsInf(f, 1) {
		return "9e999"
	}
	if math.IsInf(f, -1) {
		return "-9e999"
	}
	if math.IsNaN(f) {
		return "NULL"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// QuoteText renders s as a single-quoted SQL string literal.
func QuoteText(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}

// String implements fmt.Stringer with a debugging-friendly rendering.
func (v Value) String() string {
	if v.kind == KBlob {
		return fmt.Sprintf("x'%s'", hexEncode(v.b))
	}
	return v.Literal()
}

// Display renders the value the way a result-set row prints it (bare text,
// no quotes), matching the `c0|c1` style of the paper's listings.
func (v Value) Display() string {
	switch v.kind {
	case KNull:
		return ""
	case KText:
		return v.s
	default:
		return v.Literal()
	}
}
