// Package sqlval defines the SQL value domain shared by the engine
// substrate and the PQS testing stack: dynamically-typed values, SQL
// three-valued logic, collations, and SQLite-style type affinity.
//
// The package deliberately contains only the *data model*. Operator
// semantics (arithmetic, comparison in expressions, LIKE, casts) are
// implemented twice and independently — once in the engine's evaluator
// (internal/eval) and once in the PQS oracle interpreter (internal/interp) —
// so that an injected engine bug cannot silently infect the oracle.
package sqlval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is the runtime storage class of a Value.
type Kind uint8

const (
	// KNull is the SQL NULL value.
	KNull Kind = iota
	// KInt is a signed 64-bit integer.
	KInt
	// KUint is an unsigned 64-bit integer (MySQL dialect only).
	KUint
	// KReal is a 64-bit IEEE float.
	KReal
	// KText is a character string.
	KText
	// KBlob is a byte string.
	KBlob
	// KBool is a true boolean (PostgreSQL dialect; SQLite and MySQL
	// store booleans as integers).
	KBool
)

// String returns the storage-class name, matching SQLite's typeof() output
// where applicable.
func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KInt:
		return "integer"
	case KUint:
		return "unsigned"
	case KReal:
		return "real"
	case KText:
		return "text"
	case KBlob:
		return "blob"
	case KBool:
		return "boolean"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically-typed SQL value. The zero Value is NULL.
//
// The layout is deliberately compact (32 bytes): one word holds the
// numeric payload for every numeric kind (int64 bits, uint64, or float64
// bits, discriminated by kind), and one string holds both text and blob
// payloads. Result rows are the dominant allocation of a campaign, so
// Value size is directly visible in databases/sec.
type Value struct {
	kind Kind
	n    uint64
	s    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KInt, n: uint64(i)} }

// Uint returns an unsigned integer value (MySQL).
func Uint(u uint64) Value { return Value{kind: KUint, n: u} }

// Real returns a floating-point value.
func Real(f float64) Value { return Value{kind: KReal, n: math.Float64bits(f)} }

// Text returns a text value.
func Text(s string) Value { return Value{kind: KText, s: s} }

// Blob returns a blob value. The payload is copied.
func Blob(b []byte) Value { return Value{kind: KBlob, s: string(b)} }

// Bool returns a boolean value (PostgreSQL dialect).
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KBool, n: n}
}

// Kind reports the storage class.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KNull }

// Int64 returns the integer payload. Valid only for KInt and KBool.
func (v Value) Int64() int64 { return int64(v.n) }

// Uint64 returns the unsigned payload. Valid only for KUint.
func (v Value) Uint64() uint64 { return v.n }

// Float64 returns the float payload. Valid only for KReal.
func (v Value) Float64() float64 { return math.Float64frombits(v.n) }

// Str returns the text payload. Valid only for KText.
func (v Value) Str() string { return v.s }

// Bytes returns a copy of the blob payload. Valid only for KBlob.
func (v Value) Bytes() []byte { return []byte(v.s) }

// BlobStr returns the blob payload as an immutable string, without
// copying. Valid only for KBlob; prefer it over Bytes in comparison and
// hashing hot paths.
func (v Value) BlobStr() string { return v.s }

// BoolVal returns the boolean payload. Valid only for KBool.
func (v Value) BoolVal() bool { return v.n != 0 }

// IsNumeric reports whether the value is an integer, unsigned, or real.
func (v Value) IsNumeric() bool {
	return v.kind == KInt || v.kind == KUint || v.kind == KReal
}

// AsFloat converts any numeric value (including KBool) to float64.
// It must not be called on non-numeric kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KInt, KBool:
		return float64(int64(v.n))
	case KUint:
		return float64(v.n)
	case KReal:
		return math.Float64frombits(v.n)
	default:
		panic("sqlval: AsFloat on non-numeric " + v.kind.String())
	}
}

// Equal reports exact, type-sensitive equality between two values, with
// integer/real cross-type numeric equality (1 == 1.0). It implements the
// comparison the containment oracle uses when locating the pivot row in a
// result set; NULL equals NULL here (identity, not SQL equality).
func (v Value) Equal(o Value) bool {
	if v.kind == KNull || o.kind == KNull {
		return v.kind == o.kind
	}
	if v.IsNumeric() && o.IsNumeric() {
		return numericEqual(v, o)
	}
	if v.kind != o.kind {
		// Booleans compare equal to their integer encoding so that a
		// pivot row captured as BOOL matches an engine echo as INT.
		if (v.kind == KBool && o.kind == KInt) || (v.kind == KInt && o.kind == KBool) {
			return v.n == o.n
		}
		return false
	}
	switch v.kind {
	case KText:
		return v.s == o.s
	case KBlob:
		return v.s == o.s
	case KBool:
		return (v.n != 0) == (o.n != 0)
	default:
		panic("sqlval: unreachable Equal")
	}
}

func numericEqual(a, b Value) bool {
	if a.kind == KInt && b.kind == KInt {
		return a.n == b.n
	}
	if a.kind == KUint && b.kind == KUint {
		return a.n == b.n
	}
	if a.kind == KInt && b.kind == KUint {
		return int64(a.n) >= 0 && a.n == b.n
	}
	if a.kind == KUint && b.kind == KInt {
		return int64(b.n) >= 0 && b.n == a.n
	}
	return a.AsFloat() == b.AsFloat()
}

// Literal renders the value as a SQL literal parseable by the engine's
// parser in every dialect.
func (v Value) Literal() string {
	switch v.kind {
	case KNull:
		return "NULL"
	case KInt:
		return strconv.FormatInt(int64(v.n), 10)
	case KUint:
		return strconv.FormatUint(v.n, 10)
	case KReal:
		return FormatReal(math.Float64frombits(v.n))
	case KText:
		return QuoteText(v.s)
	case KBlob:
		return "x'" + hexEncode([]byte(v.s)) + "'"
	case KBool:
		if v.n != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		panic("sqlval: unreachable Literal")
	}
}

// FormatReal renders a float the way the engine echoes it: always with an
// exponent or decimal point so it re-parses as a real, never an integer.
func FormatReal(f float64) string {
	if math.IsInf(f, 1) {
		return "9e999"
	}
	if math.IsInf(f, -1) {
		return "-9e999"
	}
	if math.IsNaN(f) {
		return "NULL"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// QuoteText renders s as a single-quoted SQL string literal.
func QuoteText(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}

// String implements fmt.Stringer with a debugging-friendly rendering.
func (v Value) String() string {
	if v.kind == KBlob {
		return fmt.Sprintf("x'%s'", hexEncode([]byte(v.s)))
	}
	return v.Literal()
}

// Display renders the value the way a result-set row prints it (bare text,
// no quotes), matching the `c0|c1` style of the paper's listings.
func (v Value) Display() string {
	switch v.kind {
	case KNull:
		return ""
	case KText:
		return v.s
	default:
		return v.Literal()
	}
}
