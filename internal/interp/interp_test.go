package interp

import (
	"math"
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
)

// evalStr parses and evaluates a constant expression.
func evalStr(t *testing.T, src string, d dialect.Dialect) sqlval.Value {
	t.Helper()
	e, err := sqlparse.ParseExpr(src, d)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, NewContext(d))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestThreeValuedLogic(t *testing.T) {
	cases := map[string]sqlval.Value{
		"NULL AND 0":           sqlval.Int(0),
		"NULL AND 1":           sqlval.Null(),
		"NULL OR 1":            sqlval.Int(1),
		"NULL OR 0":            sqlval.Null(),
		"NOT NULL":             sqlval.Null(),
		"NOT 0":                sqlval.Int(1),
		"NOT 2":                sqlval.Int(0), // any nonzero is TRUE
		"NOT '0.5'":            sqlval.Int(0), // text coerces numerically
		"NOT 'abc'":            sqlval.Int(1), // no numeric prefix → 0 → NOT → 1
		"NULL IS NULL":         sqlval.Int(1),
		"NULL IS NOT 1":        sqlval.Int(1), // Listing 1's key fact
		"1 IS NOT 1":           sqlval.Int(0),
		"NULL = NULL":          sqlval.Null(),
		"1 BETWEEN NULL AND 2": sqlval.Null(),
	}
	for src, want := range cases {
		got := evalStr(t, src, dialect.SQLite)
		if got.Kind() != want.Kind() || !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestListing2TextIntSubtract(t *testing.T) {
	// Correct semantics: '' has numeric prefix 0, 0 - 2851427734582196970
	// must stay exact (the SQLite bug went through float).
	got := evalStr(t, "'' - 2851427734582196970", dialect.SQLite)
	want := sqlval.Int(-2851427734582196970)
	if !got.Equal(want) {
		t.Errorf("'' - big = %v, want %v", got, want)
	}
}

func TestNumericPrefix(t *testing.T) {
	cases := map[string]sqlval.Value{
		"":                    sqlval.Int(0),
		"abc":                 sqlval.Int(0),
		"12abc":               sqlval.Int(12),
		"-3.5xyz":             sqlval.Real(-3.5),
		" 42":                 sqlval.Int(42),
		"1e2z":                sqlval.Real(100),
		"0.5":                 sqlval.Real(0.5),
		".5":                  sqlval.Real(0.5),
		"-":                   sqlval.Int(0),
		"+7":                  sqlval.Int(7),
		"9223372036854775807": sqlval.Int(math.MaxInt64),
	}
	for s, want := range cases {
		got := NumericPrefix(s)
		if got.Kind() != want.Kind() || !got.Equal(want) {
			t.Errorf("NumericPrefix(%q) = %v (%v), want %v", s, got, got.Kind(), want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		d    dialect.Dialect
		want sqlval.Value
	}{
		{"1 + 2", dialect.SQLite, sqlval.Int(3)},
		{"7 / 2", dialect.SQLite, sqlval.Int(3)},
		{"7 / 2", dialect.MySQL, sqlval.Real(3.5)},
		{"7 / 0", dialect.SQLite, sqlval.Null()},
		{"7 % 0", dialect.MySQL, sqlval.Null()},
		{"7 % 3", dialect.SQLite, sqlval.Int(1)},
		{"2.5 * 2", dialect.SQLite, sqlval.Real(5)},
		{"9223372036854775807 + 1", dialect.SQLite, sqlval.Real(9.223372036854776e18)},
		{"'3' + 4", dialect.MySQL, sqlval.Int(7)},
		{"1 - NULL", dialect.SQLite, sqlval.Null()},
		{"- 5", dialect.SQLite, sqlval.Int(-5)},
		{"- '17x'", dialect.SQLite, sqlval.Int(-17)},
		{"3 << 2", dialect.SQLite, sqlval.Int(12)},
		{"12 >> 2", dialect.SQLite, sqlval.Int(3)},
		{"~ 0", dialect.SQLite, sqlval.Int(-1)},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, c.d)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%s [%s] = %v (%v), want %v", c.src, c.d, got, got.Kind(), c.want)
		}
	}
}

func TestPostgresStrictness(t *testing.T) {
	ctx := NewContext(dialect.Postgres)
	for _, src := range []string{"1 AND 0", "'a' + 1", "1 = 'a'", "NOT 5"} {
		e, err := sqlparse.ParseExpr(src, dialect.Postgres)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Eval(e, ctx); err == nil {
			t.Errorf("%s should be a type error in postgres", src)
		} else if _, ok := err.(*TypeError); !ok {
			t.Errorf("%s: expected TypeError, got %T %v", src, err, err)
		}
	}
	// Well-typed forms succeed.
	for _, src := range []string{"TRUE AND FALSE", "1 = 2", "'a' < 'b'", "NOT TRUE", "1 / 0"} {
		e, _ := sqlparse.ParseExpr(src, dialect.Postgres)
		_, err := Eval(e, ctx)
		if src == "1 / 0" {
			if err == nil {
				t.Errorf("1/0 should error in postgres")
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", src, err)
		}
	}
	// Booleans are KBool in postgres.
	if got := evalStr(t, "TRUE AND TRUE", dialect.Postgres); got.Kind() != sqlval.KBool {
		t.Errorf("pg boolean result kind = %v", got.Kind())
	}
}

func TestMySQLCoercions(t *testing.T) {
	cases := map[string]sqlval.Value{
		"'0.5' = 0.5":   sqlval.Int(1), // text→number in numeric comparison
		"'abc' = 0":     sqlval.Int(1), // no prefix → 0
		"'A' = 'a'":     sqlval.Int(1), // default ci collation
		"NULL <=> NULL": sqlval.Int(1),
		"NULL <=> 1":    sqlval.Int(0),
		"2 <=> 2":       sqlval.Int(1),
	}
	for src, want := range cases {
		got := evalStr(t, src, dialect.MySQL)
		if !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestSQLiteStorageClassComparison(t *testing.T) {
	cases := map[string]sqlval.Value{
		"'1' = 1":                  sqlval.Int(0), // no cross-class coercion in comparison
		"'1' > 1":                  sqlval.Int(1), // TEXT sorts above numeric
		"x'00' > ''":               sqlval.Int(1), // BLOB above TEXT
		"'a' < 'b'":                sqlval.Int(1),
		"'A' = 'a' COLLATE NOCASE": sqlval.Int(1),
		"'a ' = 'a' COLLATE RTRIM": sqlval.Int(1),
	}
	for src, want := range cases {
		got := evalStr(t, src, dialect.SQLite)
		if !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		src  string
		d    dialect.Dialect
		want sqlval.Value
	}{
		{"'abc' LIKE 'a%'", dialect.SQLite, sqlval.Int(1)},
		{"'ABC' LIKE 'abc'", dialect.SQLite, sqlval.Int(1)}, // ci by default
		{"'ABC' LIKE 'abc'", dialect.Postgres, sqlval.Bool(false)},
		{"'abc' LIKE '_b_'", dialect.SQLite, sqlval.Int(1)},
		{"'abc' LIKE '_b'", dialect.SQLite, sqlval.Int(0)},
		{"'' LIKE '%'", dialect.SQLite, sqlval.Int(1)},
		{"'./' LIKE './'", dialect.SQLite, sqlval.Int(1)}, // Listing 7 ground truth
		{"'abc' NOT LIKE 'x%'", dialect.SQLite, sqlval.Int(1)},
		{"NULL LIKE '%'", dialect.SQLite, sqlval.Null()},
		{"12 LIKE '12'", dialect.SQLite, sqlval.Int(1)}, // numbers render to text
	}
	for _, c := range cases {
		got := evalStr(t, c.src, c.d)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%s [%s] = %v, want %v", c.src, c.d, got, c.want)
		}
	}
}

func TestCaseSensitiveLikePragma(t *testing.T) {
	ctx := NewContext(dialect.SQLite)
	ctx.CaseSensitiveLike = true
	e, _ := sqlparse.ParseExpr("'ABC' LIKE 'abc'", dialect.SQLite)
	v, err := Eval(e, ctx)
	if err != nil || !v.Equal(sqlval.Int(0)) {
		t.Errorf("case_sensitive_like LIKE = %v, %v", v, err)
	}
}

func TestColumnResolution(t *testing.T) {
	ctx := NewContext(dialect.SQLite)
	ctx.Bind("t0", "c0", ColInfo{Val: sqlval.Int(3)})
	ctx.Bind("t0", "c1", ColInfo{Val: sqlval.Bool(true)})
	ctx.Bind("t1", "c0", ColInfo{Val: sqlval.Int(-5)})

	e, _ := sqlparse.ParseExpr("NOT (NOT (t0.c1 OR (t1.c0 > 3)))", dialect.SQLite)
	v, err := Eval(e, ctx)
	if err != nil || !v.Equal(sqlval.Int(1)) {
		t.Errorf("Figure 1 expression = %v, %v; want 1 after double negation", v, err)
	}

	// Unqualified unique name resolves; ambiguous one fails.
	e, _ = sqlparse.ParseExpr("c1", dialect.SQLite)
	if v, err := Eval(e, ctx); err != nil || !v.Equal(sqlval.Int(1)) {
		t.Errorf("unqualified c1 = %v, %v", v, err)
	}
	e, _ = sqlparse.ParseExpr("c0", dialect.SQLite)
	if _, err := Eval(e, ctx); err == nil {
		t.Error("ambiguous c0 should fail to resolve")
	}
}

func TestFigure1Rectification(t *testing.T) {
	// Figure 1 step 3-4: expr `NOT (t0.c1 OR (t1.c0 > 3))` is FALSE for the
	// pivot row (c1=TRUE, t1.c0=-5), so rectification wraps it in NOT.
	ctx := NewContext(dialect.SQLite)
	ctx.Bind("t0", "c0", ColInfo{Val: sqlval.Int(3)})
	ctx.Bind("t0", "c1", ColInfo{Val: sqlval.Bool(true)})
	ctx.Bind("t1", "c0", ColInfo{Val: sqlval.Int(-5)})
	e, _ := sqlparse.ParseExpr("NOT (t0.c1 OR (t1.c0 > 3))", dialect.SQLite)
	tb, err := EvalBool(e, ctx)
	if err != nil || tb != sqlval.TriFalse {
		t.Fatalf("inner expr = %v, %v; want FALSE", tb, err)
	}
	tb, err = EvalBool(sqlast.Not(e), ctx)
	if err != nil || tb != sqlval.TriTrue {
		t.Errorf("rectified expr = %v, %v; want TRUE", tb, err)
	}
}

func TestDoubleQuotedFallback(t *testing.T) {
	// "u" with no column u resolves to the string 'u' in SQLite only.
	ctxS := NewContext(dialect.SQLite)
	e, _ := sqlparse.ParseExpr(`"u"`, dialect.SQLite)
	v, err := Eval(e, ctxS)
	if err != nil || v.Kind() != sqlval.KText || v.Str() != "u" {
		t.Errorf("sqlite \"u\" = %v, %v", v, err)
	}
	ctxM := NewContext(dialect.MySQL)
	e2, _ := sqlparse.ParseExpr(`"u"`, dialect.MySQL)
	if v, err := Eval(e2, ctxM); err != nil || v.Kind() != sqlval.KText || v.Str() != "u" {
		t.Errorf("mysql \"u\" should be the string 'u', got %v, %v", v, err)
	}
}

func TestCasts(t *testing.T) {
	cases := []struct {
		src  string
		d    dialect.Dialect
		want sqlval.Value
	}{
		{"CAST('12x' AS INTEGER)", dialect.SQLite, sqlval.Int(12)},
		{"CAST(2.9 AS INTEGER)", dialect.SQLite, sqlval.Int(2)},
		{"CAST(5 AS TEXT)", dialect.SQLite, sqlval.Text("5")},
		{"CAST('-1' AS UNSIGNED)", dialect.MySQL, sqlval.Uint(math.MaxUint64)},
		{"CAST(-1 AS UNSIGNED)", dialect.MySQL, sqlval.Uint(math.MaxUint64)},
		{"CAST(NULL AS INTEGER)", dialect.SQLite, sqlval.Null()},
		{"CAST(1 AS BOOLEAN)", dialect.Postgres, sqlval.Bool(true)},
		{"CAST('abc' AS BLOB)", dialect.SQLite, sqlval.Blob([]byte("abc"))},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, c.d)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%s = %v (%v), want %v", c.src, got, got.Kind(), c.want)
		}
	}
	// Postgres rejects malformed int casts.
	e, _ := sqlparse.ParseExpr("CAST('abc' AS INT)", dialect.Postgres)
	if _, err := Eval(e, NewContext(dialect.Postgres)); err == nil {
		t.Error("pg CAST('abc' AS INT) should error")
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		src  string
		d    dialect.Dialect
		want sqlval.Value
	}{
		{"ABS(-7)", dialect.SQLite, sqlval.Int(7)},
		{"ABS(-2.5)", dialect.SQLite, sqlval.Real(2.5)},
		{"LENGTH('abc')", dialect.SQLite, sqlval.Int(3)},
		{"LENGTH(NULL)", dialect.SQLite, sqlval.Null()},
		{"LOWER('AbC')", dialect.SQLite, sqlval.Text("abc")},
		{"UPPER('abc')", dialect.SQLite, sqlval.Text("ABC")},
		{"COALESCE(NULL, NULL, 3)", dialect.SQLite, sqlval.Int(3)},
		{"IFNULL(NULL, 'x')", dialect.MySQL, sqlval.Text("x")},
		{"IFNULL('u', 7)", dialect.MySQL, sqlval.Text("u")},
		{"NULLIF(1, 1)", dialect.SQLite, sqlval.Null()},
		{"NULLIF(1, 2)", dialect.SQLite, sqlval.Int(1)},
		{"MIN(3, 1, 2)", dialect.SQLite, sqlval.Int(1)},
		{"MAX(3, 1, 2)", dialect.SQLite, sqlval.Int(3)},
		{"TYPEOF(1)", dialect.SQLite, sqlval.Text("integer")},
		{"TYPEOF('x')", dialect.SQLite, sqlval.Text("text")},
		{"CONCAT('a', 1, 'b')", dialect.MySQL, sqlval.Text("a1b")},
	}
	for _, c := range cases {
		got := evalStr(t, c.src, c.d)
		if got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%s = %v (%v), want %v", c.src, got, got.Kind(), c.want)
		}
	}
}

func TestConcatOperator(t *testing.T) {
	if got := evalStr(t, "'a' || 'b'", dialect.SQLite); !got.Equal(sqlval.Text("ab")) {
		t.Errorf("concat = %v", got)
	}
	if got := evalStr(t, "1 || 2", dialect.SQLite); !got.Equal(sqlval.Text("12")) {
		t.Errorf("numeric concat = %v", got)
	}
	if got := evalStr(t, "NULL || 'b'", dialect.SQLite); !got.IsNull() {
		t.Errorf("NULL concat = %v", got)
	}
	// MySQL: || is OR.
	if got := evalStr(t, "0 || 1", dialect.MySQL); !got.Equal(sqlval.Int(1)) {
		t.Errorf("mysql || = %v, want logical OR", got)
	}
}

func TestCaseExpr(t *testing.T) {
	cases := map[string]sqlval.Value{
		"CASE WHEN 1 THEN 'yes' ELSE 'no' END":          sqlval.Text("yes"),
		"CASE WHEN 0 THEN 'yes' ELSE 'no' END":          sqlval.Text("no"),
		"CASE WHEN NULL THEN 'yes' ELSE 'no' END":       sqlval.Text("no"),
		"CASE WHEN 0 THEN 1 END":                        sqlval.Null(),
		"CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END":    sqlval.Text("b"),
		"CASE NULL WHEN NULL THEN 'n' ELSE 'other' END": sqlval.Text("other"), // NULL = NULL is UNKNOWN
	}
	for src, want := range cases {
		got := evalStr(t, src, dialect.SQLite)
		if got.Kind() != want.Kind() || !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestInList(t *testing.T) {
	cases := map[string]sqlval.Value{
		"2 IN (1, 2, 3)":  sqlval.Int(1),
		"5 IN (1, 2, 3)":  sqlval.Int(0),
		"5 IN (1, NULL)":  sqlval.Null(),
		"1 IN (1, NULL)":  sqlval.Int(1),
		"2 NOT IN (1, 3)": sqlval.Int(1),
		"NULL IN (1)":     sqlval.Null(),
		"1 IN ()":         sqlval.Int(0),
		"'x' NOT IN ()":   sqlval.Int(1),
	}
	for src, want := range cases {
		got := evalStr(t, src, dialect.SQLite)
		if got.Kind() != want.Kind() || !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestBetween(t *testing.T) {
	cases := map[string]sqlval.Value{
		"2 BETWEEN 1 AND 3":       sqlval.Int(1),
		"0 BETWEEN 1 AND 3":       sqlval.Int(0),
		"2 NOT BETWEEN 1 AND 3":   sqlval.Int(0),
		"NULL BETWEEN 1 AND 3":    sqlval.Null(),
		"'b' BETWEEN 'a' AND 'c'": sqlval.Int(1),
	}
	for src, want := range cases {
		got := evalStr(t, src, dialect.SQLite)
		if got.Kind() != want.Kind() || !got.Equal(want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestColumnCollationUsedInComparison(t *testing.T) {
	ctx := NewContext(dialect.SQLite)
	ctx.Bind("t0", "c0", ColInfo{Val: sqlval.Text("A"), Coll: sqlval.CollNoCase})
	e, _ := sqlparse.ParseExpr("t0.c0 = 'a'", dialect.SQLite)
	v, err := Eval(e, ctx)
	if err != nil || !v.Equal(sqlval.Int(1)) {
		t.Errorf("NOCASE column equality = %v, %v; want TRUE", v, err)
	}
}
