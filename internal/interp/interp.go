// Package interp is the PQS-side AST interpreter (Algorithm 2 of the
// paper). It evaluates a generated expression against the pivot row only,
// operating purely on literal values: no storage, no planner, no indexes.
// This is the test oracle's half of the semantics and is implemented
// independently from the engine's evaluator (internal/eval) so that a bug
// injected into the engine cannot silently infect the oracle.
//
// The interpreter is deliberately naive — the paper notes its performance
// is irrelevant because the DBMS evaluating the query is the bottleneck.
package interp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/dialect"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// ColInfo carries the pivot-row value and column metadata the interpreter
// needs (collation for comparisons, affinity for dialect-specific display).
type ColInfo struct {
	Val      sqlval.Value
	Coll     sqlval.Collation
	Affinity sqlval.Affinity
	Unsigned bool
}

// Context is the pivot-row environment.
type Context struct {
	D dialect.Dialect
	// Cols maps lower-case "table.column" to the pivot value. Unqualified
	// lookups scan for a unique column-name match.
	Cols map[string]ColInfo
	// CaseSensitiveLike mirrors SQLite's PRAGMA case_sensitive_like.
	CaseSensitiveLike bool
}

// NewContext returns an empty pivot environment for the dialect.
func NewContext(d dialect.Dialect) *Context {
	return &Context{D: d, Cols: map[string]ColInfo{}}
}

// Bind registers a pivot column value.
func (c *Context) Bind(table, column string, info ColInfo) {
	c.Cols[strings.ToLower(table)+"."+strings.ToLower(column)] = info
}

// lookup resolves a column reference.
func (c *Context) lookup(ref *sqlast.ColumnRef) (ColInfo, bool) {
	if ref.Table != "" {
		ci, ok := c.Cols[strings.ToLower(ref.Table)+"."+strings.ToLower(ref.Column)]
		return ci, ok
	}
	suffix := "." + strings.ToLower(ref.Column)
	var found ColInfo
	n := 0
	for k, ci := range c.Cols {
		if strings.HasSuffix(k, suffix) {
			found = ci
			n++
		}
	}
	return found, n == 1
}

// ErrUnsupported reports an expression the interpreter cannot evaluate; the
// generator treats it as a signal to regenerate.
type ErrUnsupported struct{ What string }

// Error implements the error interface.
func (e *ErrUnsupported) Error() string { return "interp: unsupported " + e.What }

// TypeError is a dialect type error (strict Postgres typing).
type TypeError struct{ Msg string }

// Error implements the error interface.
func (e *TypeError) Error() string { return "interp: type error: " + e.Msg }

func typeErrf(format string, args ...any) error {
	return &TypeError{Msg: fmt.Sprintf(format, args...)}
}

// Eval computes the value of e on the pivot row.
func Eval(e sqlast.Expr, ctx *Context) (sqlval.Value, error) {
	switch n := e.(type) {
	case *sqlast.Literal:
		return n.Val, nil
	case *sqlast.ColumnRef:
		ci, ok := ctx.lookup(n)
		if !ok {
			if n.MaybeString && ctx.D == dialect.SQLite {
				// SQLite misfeature: unresolvable "..." is a string.
				return sqlval.Text(n.Column), nil
			}
			return sqlval.Null(), &ErrUnsupported{What: "column " + n.Column}
		}
		return ci.Val, nil
	case *sqlast.Collate:
		return Eval(n.X, ctx)
	case *sqlast.Unary:
		return evalUnary(n, ctx)
	case *sqlast.Binary:
		return evalBinary(n, ctx)
	case *sqlast.Between:
		return evalBetween(n, ctx)
	case *sqlast.InList:
		return evalIn(n, ctx)
	case *sqlast.Cast:
		x, err := Eval(n.X, ctx)
		if err != nil {
			return sqlval.Null(), err
		}
		return EvalCast(x, n.TypeName, ctx.D)
	case *sqlast.Case:
		return evalCase(n, ctx)
	case *sqlast.FuncCall:
		return evalFunc(n, ctx)
	default:
		return sqlval.Null(), &ErrUnsupported{What: fmt.Sprintf("node %T", e)}
	}
}

// EvalBool computes e in boolean context (the rectification step's input).
func EvalBool(e sqlast.Expr, ctx *Context) (sqlval.TriBool, error) {
	v, err := Eval(e, ctx)
	if err != nil {
		return sqlval.TriUnknown, err
	}
	return Truthiness(v, ctx.D)
}

// Truthiness converts a value to the dialect's boolean interpretation.
// SQLite and MySQL coerce numerically; Postgres requires a boolean.
func Truthiness(v sqlval.Value, d dialect.Dialect) (sqlval.TriBool, error) {
	if v.IsNull() {
		return sqlval.TriUnknown, nil
	}
	if d == dialect.Postgres {
		if v.Kind() != sqlval.KBool {
			return sqlval.TriUnknown, typeErrf("argument of boolean context must be type boolean, not %s", v.Kind())
		}
		return sqlval.TriOf(v.BoolVal()), nil
	}
	n := ToNumeric(v, d)
	if n.IsNull() {
		return sqlval.TriUnknown, nil
	}
	return sqlval.TriOf(n.AsFloat() != 0), nil
}

// ToNumeric applies the lossy numeric coercion of SQLite/MySQL: text is
// parsed by longest numeric prefix (empty prefix → 0), blobs go through
// their text bytes, booleans become integers.
func ToNumeric(v sqlval.Value, d dialect.Dialect) sqlval.Value {
	switch v.Kind() {
	case sqlval.KNull:
		return v
	case sqlval.KInt, sqlval.KUint, sqlval.KReal:
		return v
	case sqlval.KBool:
		return sqlval.Int(v.Int64())
	case sqlval.KText:
		return NumericPrefix(v.Str())
	case sqlval.KBlob:
		return NumericPrefix(v.BlobStr())
	default:
		return sqlval.Null()
	}
}

// NumericPrefix parses the longest numeric prefix of s; no prefix yields
// integer 0 (SQLite/MySQL behaviour).
func NumericPrefix(s string) sqlval.Value {
	t := strings.TrimLeft(s, " \t\n\r")
	i := 0
	n := len(t)
	if i < n && (t[i] == '+' || t[i] == '-') {
		i++
	}
	digits := 0
	for i < n && t[i] >= '0' && t[i] <= '9' {
		i++
		digits++
	}
	isFloat := false
	if i < n && t[i] == '.' {
		j := i + 1
		frac := 0
		for j < n && t[j] >= '0' && t[j] <= '9' {
			j++
			frac++
		}
		if digits > 0 || frac > 0 {
			isFloat = true
			i = j
			digits += frac
		}
	}
	if digits == 0 {
		return sqlval.Int(0)
	}
	if i < n && (t[i] == 'e' || t[i] == 'E') {
		j := i + 1
		if j < n && (t[j] == '+' || t[j] == '-') {
			j++
		}
		exp := 0
		for j < n && t[j] >= '0' && t[j] <= '9' {
			j++
			exp++
		}
		if exp > 0 {
			isFloat = true
			i = j
		}
	}
	prefix := t[:i]
	if !isFloat {
		if v, ok := sqlval.TextToNumeric(prefix); ok && v.Kind() == sqlval.KInt {
			return v
		}
		isFloat = true
	}
	if v, ok := sqlval.TextToNumeric(prefix); ok {
		if v.Kind() == sqlval.KInt {
			return sqlval.Real(float64(v.Int64()))
		}
		return v
	}
	return sqlval.Int(0)
}

func evalUnary(n *sqlast.Unary, ctx *Context) (sqlval.Value, error) {
	x, err := Eval(n.X, ctx)
	if err != nil {
		return sqlval.Null(), err
	}
	switch n.Op {
	case sqlast.OpNot:
		// Algorithm 2 of the paper, verbatim.
		t, err := Truthiness(x, ctx.D)
		if err != nil {
			return sqlval.Null(), err
		}
		return boolResult(t.Not(), ctx.D), nil
	case sqlast.OpIsNull:
		return boolResult(sqlval.TriOf(x.IsNull()), ctx.D), nil
	case sqlast.OpNotNull:
		return boolResult(sqlval.TriOf(!x.IsNull()), ctx.D), nil
	case sqlast.OpNeg:
		return Negate(x, ctx.D)
	case sqlast.OpPos:
		if ctx.D == dialect.Postgres && !x.IsNull() && !x.IsNumeric() {
			return sqlval.Null(), typeErrf("unary + on %s", x.Kind())
		}
		return x, nil
	case sqlast.OpBitNot:
		if x.IsNull() {
			return sqlval.Null(), nil
		}
		if ctx.D == dialect.Postgres && x.Kind() != sqlval.KInt {
			return sqlval.Null(), typeErrf("~ on %s", x.Kind())
		}
		n := ToNumeric(x, ctx.D)
		if n.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Int(^toInt64(n)), nil
	}
	return sqlval.Null(), &ErrUnsupported{What: "unary op"}
}

// Negate implements SQL unary minus for the dialect.
func Negate(x sqlval.Value, d dialect.Dialect) (sqlval.Value, error) {
	if x.IsNull() {
		return sqlval.Null(), nil
	}
	if d == dialect.Postgres && !x.IsNumeric() {
		return sqlval.Null(), typeErrf("unary - on %s", x.Kind())
	}
	n := ToNumeric(x, d)
	switch n.Kind() {
	case sqlval.KInt:
		if n.Int64() == math.MinInt64 {
			return sqlval.Real(9.223372036854776e18), nil
		}
		return sqlval.Int(-n.Int64()), nil
	case sqlval.KUint:
		if n.Uint64() <= math.MaxInt64 {
			return sqlval.Int(-int64(n.Uint64())), nil
		}
		return sqlval.Real(-float64(n.Uint64())), nil
	case sqlval.KReal:
		return sqlval.Real(-n.Float64()), nil
	}
	return sqlval.Null(), nil
}

// boolResult encodes a TriBool in the dialect's boolean representation.
func boolResult(t sqlval.TriBool, d dialect.Dialect) sqlval.Value {
	if d == dialect.Postgres {
		return t.BoolValue()
	}
	return t.Value()
}

func toInt64(v sqlval.Value) int64 {
	switch v.Kind() {
	case sqlval.KInt, sqlval.KBool:
		return v.Int64()
	case sqlval.KUint:
		return int64(v.Uint64())
	case sqlval.KReal:
		f := v.Float64()
		if f >= 9.223372036854776e18 {
			return math.MaxInt64
		}
		if f < -9.223372036854776e18 {
			return math.MinInt64
		}
		return int64(f)
	default:
		return 0
	}
}

func evalBinary(n *sqlast.Binary, ctx *Context) (sqlval.Value, error) {
	switch n.Op {
	case sqlast.OpAnd, sqlast.OpOr:
		l, err := EvalBool(n.L, ctx)
		if err != nil {
			return sqlval.Null(), err
		}
		r, err := EvalBool(n.R, ctx)
		if err != nil {
			return sqlval.Null(), err
		}
		if n.Op == sqlast.OpAnd {
			return boolResult(l.And(r), ctx.D), nil
		}
		return boolResult(l.Or(r), ctx.D), nil
	}

	l, err := Eval(n.L, ctx)
	if err != nil {
		return sqlval.Null(), err
	}
	r, err := Eval(n.R, ctx)
	if err != nil {
		return sqlval.Null(), err
	}

	switch n.Op {
	case sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe:
		t, err := CompareTri(l, r, n.Op, collationFor(n.L, n.R, ctx), ctx.D)
		if err != nil {
			return sqlval.Null(), err
		}
		return boolResult(t, ctx.D), nil
	case sqlast.OpIs, sqlast.OpIsNot:
		eq, err := nullSafeEqual(l, r, collationFor(n.L, n.R, ctx), ctx.D)
		if err != nil {
			return sqlval.Null(), err
		}
		if n.Op == sqlast.OpIsNot {
			eq = !eq
		}
		return boolResult(sqlval.TriOf(eq), ctx.D), nil
	case sqlast.OpNullSafeEq:
		eq, err := nullSafeEqual(l, r, collationFor(n.L, n.R, ctx), ctx.D)
		if err != nil {
			return sqlval.Null(), err
		}
		return boolResult(sqlval.TriOf(eq), ctx.D), nil
	case sqlast.OpLike, sqlast.OpNotLike:
		t, err := evalLike(l, r, ctx)
		if err != nil {
			return sqlval.Null(), err
		}
		if n.Op == sqlast.OpNotLike {
			t = t.Not()
		}
		return boolResult(t, ctx.D), nil
	case sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod:
		return Arith(l, r, n.Op, ctx.D)
	case sqlast.OpConcat:
		return Concat(l, r, ctx.D)
	case sqlast.OpBitAnd, sqlast.OpBitOr, sqlast.OpShl, sqlast.OpShr:
		return bitOp(l, r, n.Op, ctx.D)
	}
	return sqlval.Null(), &ErrUnsupported{What: "binary op"}
}

// collationFor determines the collation governing a comparison: an explicit
// COLLATE wins, then the left column's declared collation, then the right's.
func collationFor(l, r sqlast.Expr, ctx *Context) sqlval.Collation {
	if c, ok := explicitCollation(l); ok {
		return c
	}
	if c, ok := explicitCollation(r); ok {
		return c
	}
	if c, ok := columnCollation(l, ctx); ok {
		return c
	}
	if c, ok := columnCollation(r, ctx); ok {
		return c
	}
	if ctx.D == dialect.MySQL {
		return sqlval.CollNoCase // MySQL's default collation is case-insensitive
	}
	return sqlval.CollBinary
}

func explicitCollation(e sqlast.Expr) (sqlval.Collation, bool) {
	if c, ok := e.(*sqlast.Collate); ok {
		return c.Coll, true
	}
	return sqlval.CollBinary, false
}

func columnCollation(e sqlast.Expr, ctx *Context) (sqlval.Collation, bool) {
	if ref, ok := e.(*sqlast.ColumnRef); ok {
		if ci, ok := ctx.lookup(ref); ok {
			return ci.Coll, true
		}
	}
	return sqlval.CollBinary, false
}

// CompareTri implements dialect comparison semantics for <, <=, >, >=, =,
// !=, returning UNKNOWN when either side is NULL.
func CompareTri(l, r sqlval.Value, op sqlast.BinOp, coll sqlval.Collation, d dialect.Dialect) (sqlval.TriBool, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.TriUnknown, nil
	}
	c, err := compareValues(l, r, coll, d)
	if err != nil {
		return sqlval.TriUnknown, err
	}
	switch op {
	case sqlast.OpEq:
		return sqlval.TriOf(c == 0), nil
	case sqlast.OpNe:
		return sqlval.TriOf(c != 0), nil
	case sqlast.OpLt:
		return sqlval.TriOf(c < 0), nil
	case sqlast.OpLe:
		return sqlval.TriOf(c <= 0), nil
	case sqlast.OpGt:
		return sqlval.TriOf(c > 0), nil
	case sqlast.OpGe:
		return sqlval.TriOf(c >= 0), nil
	}
	return sqlval.TriUnknown, &ErrUnsupported{What: "comparison op"}
}

// compareValues orders two non-NULL values per dialect.
//
// SQLite-profile: storage-class ordering (numeric < TEXT < BLOB), text
// under the collation. MySQL-profile: text coerces to number when compared
// against a number; text-text compares case-insensitively by default.
// Postgres-profile: mixed categories are type errors.
func compareValues(l, r sqlval.Value, coll sqlval.Collation, d dialect.Dialect) (int, error) {
	switch d {
	case dialect.MySQL:
		if l.IsNumeric() || r.IsNumeric() || l.Kind() == sqlval.KBool || r.Kind() == sqlval.KBool {
			ln, rn := ToNumeric(l, d), ToNumeric(r, d)
			return sqlval.Compare(ln, rn, sqlval.CollBinary), nil
		}
		if l.Kind() == sqlval.KText && r.Kind() == sqlval.KText {
			return sqlval.CollCompare(l.Str(), r.Str(), coll), nil
		}
		// blob vs text: byte compare on the text bytes
		return sqlval.Compare(blobify(l), blobify(r), sqlval.CollBinary), nil
	case dialect.Postgres:
		if l.IsNumeric() && r.IsNumeric() {
			return sqlval.Compare(l, r, sqlval.CollBinary), nil
		}
		if l.Kind() == sqlval.KText && r.Kind() == sqlval.KText {
			return sqlval.CollCompare(l.Str(), r.Str(), coll), nil
		}
		if l.Kind() == sqlval.KBool && r.Kind() == sqlval.KBool {
			return sqlval.Compare(l, r, sqlval.CollBinary), nil
		}
		if l.Kind() == sqlval.KBlob && r.Kind() == sqlval.KBlob {
			return sqlval.Compare(l, r, sqlval.CollBinary), nil
		}
		return 0, typeErrf("operator does not exist: %s = %s", l.Kind(), r.Kind())
	default: // SQLite
		return sqlval.Compare(l, r, coll), nil
	}
}

func blobify(v sqlval.Value) sqlval.Value {
	if v.Kind() == sqlval.KText {
		return sqlval.Blob([]byte(v.Str()))
	}
	return v
}

// nullSafeEqual implements IS / IS NOT / <=>: NULLs compare equal to NULL
// and unequal to everything else; otherwise ordinary equality.
func nullSafeEqual(l, r sqlval.Value, coll sqlval.Collation, d dialect.Dialect) (bool, error) {
	if l.IsNull() || r.IsNull() {
		return l.IsNull() && r.IsNull(), nil
	}
	if d == dialect.Postgres {
		// IS TRUE / IS FALSE / IS NOT TRUE …: boolean identity.
		lt, err := Truthiness(l, d)
		if err != nil {
			return false, err
		}
		rt, err := Truthiness(r, d)
		if err != nil {
			return false, err
		}
		return lt == rt, nil
	}
	c, err := compareValues(l, r, coll, d)
	if err != nil {
		return false, err
	}
	return c == 0, nil
}

// evalLike implements the LIKE operator: % matches any run, _ one char.
func evalLike(l, r sqlval.Value, ctx *Context) (sqlval.TriBool, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.TriUnknown, nil
	}
	if ctx.D == dialect.Postgres && (l.Kind() != sqlval.KText || r.Kind() != sqlval.KText) {
		return sqlval.TriUnknown, typeErrf("LIKE on %s/%s", l.Kind(), r.Kind())
	}
	s, p := displayText(l), displayText(r)
	ci := ctx.D.LikeCaseInsensitive()
	if ctx.D == dialect.SQLite && ctx.CaseSensitiveLike {
		ci = false
	}
	return sqlval.TriOf(LikeMatch(s, p, ci)), nil
}

// displayText renders a value the way SQLite feeds non-text operands to
// LIKE (its text rendering).
func displayText(v sqlval.Value) string {
	switch v.Kind() {
	case sqlval.KText:
		return v.Str()
	case sqlval.KBlob:
		return v.BlobStr()
	default:
		return v.Display()
	}
}

// LikeMatch is the naive LIKE matcher (the paper notes SQLancer's LIKE has
// over 50 lines; ours is comparable including case handling).
func LikeMatch(s, pat string, caseInsensitive bool) bool {
	if caseInsensitive {
		s = strings.ToLower(s)
		pat = strings.ToLower(pat)
	}
	return likeRec(s, pat)
}

func likeRec(s, pat string) bool {
	if pat == "" {
		return s == ""
	}
	switch pat[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], pat[1:]) {
				return true
			}
		}
		return false
	case '_':
		if s == "" {
			return false
		}
		return likeRec(s[1:], pat[1:])
	default:
		if s == "" || s[0] != pat[0] {
			return false
		}
		return likeRec(s[1:], pat[1:])
	}
}

// Arith implements +, -, *, /, % for the dialect.
func Arith(l, r sqlval.Value, op sqlast.BinOp, d dialect.Dialect) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null(), nil
	}
	if d == dialect.Postgres {
		if !l.IsNumeric() || !r.IsNumeric() {
			return sqlval.Null(), typeErrf("arithmetic on %s/%s", l.Kind(), r.Kind())
		}
	}
	ln, rn := ToNumeric(l, d), ToNumeric(r, d)
	bothInt := ln.Kind() == sqlval.KInt && rn.Kind() == sqlval.KInt

	switch op {
	case sqlast.OpDiv:
		if d == dialect.MySQL {
			// MySQL: / is real division; x/0 is NULL.
			rf := rn.AsFloat()
			if rf == 0 {
				return sqlval.Null(), nil
			}
			return sqlval.Real(ln.AsFloat() / rf), nil
		}
		if bothInt {
			if rn.Int64() == 0 {
				if d == dialect.Postgres {
					return sqlval.Null(), typeErrf("division by zero")
				}
				return sqlval.Null(), nil
			}
			return sqlval.Int(ln.Int64() / rn.Int64()), nil
		}
		rf := rn.AsFloat()
		if rf == 0 {
			if d == dialect.Postgres {
				return sqlval.Null(), typeErrf("division by zero")
			}
			return sqlval.Null(), nil
		}
		return sqlval.Real(ln.AsFloat() / rf), nil
	case sqlast.OpMod:
		li, ri := toInt64(ln), toInt64(rn)
		if ri == 0 {
			if d == dialect.Postgres {
				return sqlval.Null(), typeErrf("division by zero")
			}
			return sqlval.Null(), nil
		}
		if li == math.MinInt64 && ri == -1 {
			return sqlval.Int(0), nil
		}
		return sqlval.Int(li % ri), nil
	}

	if bothInt {
		a, b := ln.Int64(), rn.Int64()
		var res int64
		var overflow bool
		switch op {
		case sqlast.OpAdd:
			res = a + b
			overflow = (b > 0 && res < a) || (b < 0 && res > a)
		case sqlast.OpSub:
			res = a - b
			overflow = (b < 0 && res < a) || (b > 0 && res > a)
		case sqlast.OpMul:
			res = a * b
			overflow = a != 0 && (res/a != b || (a == -1 && b == math.MinInt64))
		}
		if !overflow {
			return sqlval.Int(res), nil
		}
		if d == dialect.Postgres {
			return sqlval.Null(), typeErrf("integer out of range")
		}
		// SQLite/MySQL profile: promote to real on overflow.
	}
	af, bf := ln.AsFloat(), rn.AsFloat()
	var f float64
	switch op {
	case sqlast.OpAdd:
		f = af + bf
	case sqlast.OpSub:
		f = af - bf
	case sqlast.OpMul:
		f = af * bf
	}
	if math.IsNaN(f) {
		return sqlval.Null(), nil
	}
	return sqlval.Real(f), nil
}

// Concat implements || for SQLite and Postgres (MySQL renders || as OR and
// never reaches here).
func Concat(l, r sqlval.Value, d dialect.Dialect) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null(), nil
	}
	if d == dialect.Postgres {
		if l.Kind() == sqlval.KBool || r.Kind() == sqlval.KBool ||
			l.Kind() == sqlval.KBlob || r.Kind() == sqlval.KBlob {
			return sqlval.Null(), typeErrf("|| on %s/%s", l.Kind(), r.Kind())
		}
	}
	return sqlval.Text(displayText(l) + displayText(r)), nil
}

func bitOp(l, r sqlval.Value, op sqlast.BinOp, d dialect.Dialect) (sqlval.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqlval.Null(), nil
	}
	if d == dialect.Postgres && (l.Kind() != sqlval.KInt || r.Kind() != sqlval.KInt) {
		return sqlval.Null(), typeErrf("bitwise op on %s/%s", l.Kind(), r.Kind())
	}
	a, b := toInt64(ToNumeric(l, d)), toInt64(ToNumeric(r, d))
	switch op {
	case sqlast.OpBitAnd:
		return sqlval.Int(a & b), nil
	case sqlast.OpBitOr:
		return sqlval.Int(a | b), nil
	case sqlast.OpShl:
		return sqlval.Int(shiftLeft(a, b)), nil
	case sqlast.OpShr:
		return sqlval.Int(shiftLeft(a, -b)), nil
	}
	return sqlval.Null(), &ErrUnsupported{What: "bit op"}
}

// shiftLeft implements SQLite's shift semantics: negative amounts shift the
// other way, and amounts ≥64 produce 0 or the sign extension.
func shiftLeft(a, by int64) int64 {
	if by < 0 {
		if by <= -64 {
			if a < 0 {
				return -1
			}
			return 0
		}
		return a >> uint(-by)
	}
	if by >= 64 {
		return 0
	}
	return a << uint(by)
}

func evalBetween(n *sqlast.Between, ctx *Context) (sqlval.Value, error) {
	x, err := Eval(n.X, ctx)
	if err != nil {
		return sqlval.Null(), err
	}
	lo, err := Eval(n.Lo, ctx)
	if err != nil {
		return sqlval.Null(), err
	}
	hi, err := Eval(n.Hi, ctx)
	if err != nil {
		return sqlval.Null(), err
	}
	coll := collationFor(n.X, n.Lo, ctx)
	ge, err := CompareTri(x, lo, sqlast.OpGe, coll, ctx.D)
	if err != nil {
		return sqlval.Null(), err
	}
	le, err := CompareTri(x, hi, sqlast.OpLe, coll, ctx.D)
	if err != nil {
		return sqlval.Null(), err
	}
	res := ge.And(le)
	if n.Not {
		res = res.Not()
	}
	return boolResult(res, ctx.D), nil
}

func evalIn(n *sqlast.InList, ctx *Context) (sqlval.Value, error) {
	x, err := Eval(n.X, ctx)
	if err != nil {
		return sqlval.Null(), err
	}
	res := sqlval.TriFalse
	coll := collationFor(n.X, nil, ctx)
	for _, item := range n.List {
		v, err := Eval(item, ctx)
		if err != nil {
			return sqlval.Null(), err
		}
		eq, err := CompareTri(x, v, sqlast.OpEq, coll, ctx.D)
		if err != nil {
			return sqlval.Null(), err
		}
		res = res.Or(eq)
	}
	if n.Not {
		res = res.Not()
	}
	return boolResult(res, ctx.D), nil
}

func evalCase(n *sqlast.Case, ctx *Context) (sqlval.Value, error) {
	for _, w := range n.Whens {
		var hit sqlval.TriBool
		if n.Operand != nil {
			op, err := Eval(n.Operand, ctx)
			if err != nil {
				return sqlval.Null(), err
			}
			wv, err := Eval(w.When, ctx)
			if err != nil {
				return sqlval.Null(), err
			}
			hit, err = CompareTri(op, wv, sqlast.OpEq, collationFor(n.Operand, w.When, ctx), ctx.D)
			if err != nil {
				return sqlval.Null(), err
			}
		} else {
			var err error
			hit, err = EvalBool(w.When, ctx)
			if err != nil {
				return sqlval.Null(), err
			}
		}
		if hit == sqlval.TriTrue {
			return Eval(w.Then, ctx)
		}
	}
	if n.Else != nil {
		return Eval(n.Else, ctx)
	}
	return sqlval.Null(), nil
}

// EvalCast implements CAST for the dialect.
func EvalCast(x sqlval.Value, typeName string, d dialect.Dialect) (sqlval.Value, error) {
	if x.IsNull() {
		return sqlval.Null(), nil
	}
	t := strings.ToUpper(typeName)
	switch {
	case t == "UNSIGNED" || strings.Contains(t, "UNSIGNED"):
		n := ToNumeric(x, d)
		switch n.Kind() {
		case sqlval.KInt:
			if n.Int64() < 0 {
				return sqlval.Uint(uint64(n.Int64())), nil // two's-complement wrap, MySQL style
			}
			return sqlval.Uint(uint64(n.Int64())), nil
		case sqlval.KUint:
			return n, nil
		case sqlval.KReal:
			f := n.Float64()
			if f < 0 {
				return sqlval.Uint(uint64(int64(f))), nil
			}
			return sqlval.Uint(uint64(f)), nil
		}
		return sqlval.Uint(0), nil
	case t == "SIGNED" || strings.Contains(t, "INT"):
		if d == dialect.Postgres {
			if x.Kind() == sqlval.KText {
				v, ok := sqlval.TextToNumeric(strings.TrimSpace(x.Str()))
				if !ok {
					return sqlval.Null(), typeErrf("invalid input syntax for type integer: %q", x.Str())
				}
				return sqlval.Int(toInt64(v)), nil
			}
			if x.Kind() == sqlval.KBool {
				return sqlval.Int(x.Int64()), nil
			}
		}
		return sqlval.Int(toInt64(ToNumeric(x, d))), nil
	case strings.Contains(t, "CHAR") || strings.Contains(t, "TEXT") || strings.Contains(t, "CLOB"):
		return sqlval.Text(displayText(x)), nil
	case strings.Contains(t, "REAL") || strings.Contains(t, "FLOA") || strings.Contains(t, "DOUB"):
		n := ToNumeric(x, d)
		if n.IsNull() {
			return sqlval.Real(0), nil
		}
		return sqlval.Real(n.AsFloat()), nil
	case strings.Contains(t, "BLOB"):
		return sqlval.Blob([]byte(displayText(x))), nil
	case strings.Contains(t, "BOOL"):
		tb, err := Truthiness(x, dialect.SQLite) // numeric truthiness for the cast itself
		if err != nil {
			return sqlval.Null(), err
		}
		if d == dialect.Postgres {
			return tb.BoolValue(), nil
		}
		return tb.Value(), nil
	case strings.Contains(t, "NUMERIC") || strings.Contains(t, "DECIMAL"):
		return sqlval.ApplyAffinity(x, sqlval.AffNumeric), nil
	default:
		return sqlval.Null(), &ErrUnsupported{What: "cast to " + typeName}
	}
}

func evalFunc(n *sqlast.FuncCall, ctx *Context) (sqlval.Value, error) {
	args := make([]sqlval.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := Eval(a, ctx)
		if err != nil {
			return sqlval.Null(), err
		}
		args[i] = v
	}
	return EvalScalarFunc(n.Name, args, ctx.D)
}

// EvalScalarFunc implements the shared scalar function library.
func EvalScalarFunc(name string, args []sqlval.Value, d dialect.Dialect) (sqlval.Value, error) {
	switch strings.ToUpper(name) {
	case "ABS":
		if len(args) != 1 {
			return sqlval.Null(), &ErrUnsupported{What: "ABS arity"}
		}
		v := args[0]
		if v.IsNull() {
			return sqlval.Null(), nil
		}
		if d == dialect.Postgres && !v.IsNumeric() {
			return sqlval.Null(), typeErrf("abs(%s)", v.Kind())
		}
		n := ToNumeric(v, d)
		switch n.Kind() {
		case sqlval.KInt:
			if n.Int64() == math.MinInt64 {
				return sqlval.Real(9.223372036854776e18), nil
			}
			if n.Int64() < 0 {
				return sqlval.Int(-n.Int64()), nil
			}
			return n, nil
		case sqlval.KUint:
			return n, nil
		default:
			return sqlval.Real(math.Abs(n.AsFloat())), nil
		}
	case "LENGTH":
		if len(args) != 1 {
			return sqlval.Null(), &ErrUnsupported{What: "LENGTH arity"}
		}
		v := args[0]
		if v.IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Int(int64(len(displayText(v)))), nil
	case "LOWER":
		if len(args) != 1 || args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Text(strings.ToLower(displayText(args[0]))), nil
	case "UPPER":
		if len(args) != 1 || args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return sqlval.Text(strings.ToUpper(displayText(args[0]))), nil
	case "TYPEOF":
		if d != dialect.SQLite || len(args) != 1 {
			return sqlval.Null(), &ErrUnsupported{What: "TYPEOF"}
		}
		return sqlval.Text(args[0].Kind().String()), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqlval.Null(), nil
	case "IFNULL":
		if len(args) != 2 {
			return sqlval.Null(), &ErrUnsupported{What: "IFNULL arity"}
		}
		if !args[0].IsNull() {
			return args[0], nil
		}
		return args[1], nil
	case "NULLIF":
		if len(args) != 2 {
			return sqlval.Null(), &ErrUnsupported{What: "NULLIF arity"}
		}
		eq, err := nullSafeEqual(args[0], args[1], sqlval.CollBinary, d)
		if err != nil {
			return sqlval.Null(), err
		}
		if eq && !args[0].IsNull() {
			return sqlval.Null(), nil
		}
		return args[0], nil
	case "MIN", "MAX":
		// Scalar multi-argument MIN/MAX (SQLite); NULL if any arg NULL.
		if len(args) < 2 {
			return sqlval.Null(), &ErrUnsupported{What: "aggregate MIN/MAX in scalar position"}
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return sqlval.Null(), nil
			}
			c, err := compareValues(a, best, sqlval.CollBinary, d)
			if err != nil {
				return sqlval.Null(), err
			}
			if (strings.EqualFold(name, "MIN") && c < 0) || (strings.EqualFold(name, "MAX") && c > 0) {
				best = a
			}
		}
		return best, nil
	case "CONCAT":
		if d != dialect.MySQL {
			return sqlval.Null(), &ErrUnsupported{What: "CONCAT outside mysql"}
		}
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return sqlval.Null(), nil
			}
			sb.WriteString(displayText(a))
		}
		return sqlval.Text(sb.String()), nil
	default:
		return sqlval.Null(), &ErrUnsupported{What: "function " + name}
	}
}
