package core

import "repro/internal/sut"

// Lifecycle is the reusable form of a Tester: where NewTester +
// RunDatabase construct a tester, an engine, and its storage per database
// and throw all three away, a Lifecycle keeps one tester and draws
// pristine databases from a sut.Pool of resettable sessions — the RNG is
// re-seeded and the pooled engine reset per database, so RunSeed(s) is
// byte-identical to NewTester(cfg with Seed=s).RunDatabase() while paying
// construction costs once. The campaign scheduler runs every database of
// a sweep through lifecycles; a Lifecycle, like a Tester, is
// single-goroutine.
type Lifecycle struct {
	*Tester
	pool    *sut.Pool
	ownPool bool
}

// NewLifecycle creates a lifecycle with its own session pool.
func NewLifecycle(cfg Config) *Lifecycle {
	lc := &Lifecycle{Tester: NewTester(cfg)}
	lc.pool = sut.NewPool(lc.cfg.Backend, lc.cfg.Session())
	lc.ownPool = true
	return lc
}

// NewLifecycleWithPool creates a lifecycle drawing databases from a
// shared pool (one pool per campaign task lets stolen work reuse the
// task's engines). The pool's session must match cfg — the pool wins.
func NewLifecycleWithPool(cfg Config, pool *sut.Pool) *Lifecycle {
	return &Lifecycle{Tester: NewTester(cfg), pool: pool}
}

// Reseed rewinds the tester's RNG to the deterministic stream of a fresh
// NewTester with Seed = seed.
func (t *Tester) Reseed(seed int64) {
	t.cfg.Seed = seed
	t.rnd.Reseed(seed)
}

// SetOracle switches the testing oracle for subsequent databases,
// re-resolving through the registry only when the name changes (campaign
// oracle rotation across one pooled lifecycle).
func (t *Tester) SetOracle(name string) {
	if name == t.cfg.Oracle {
		return
	}
	t.cfg.Oracle = name
	t.meta, t.metaErr = nil, nil
	if name != "" && name != "pqs" {
		t.meta, t.metaErr = newMetaOracle(name, t.cfg)
	}
}

// TakeStats returns the counters accumulated since the last take and
// resets them, so schedulers can fold per-database deltas into
// per-campaign aggregates without double counting.
func (t *Tester) TakeStats() *Stats {
	s := t.stats
	t.stats = newStats()
	return s
}

// RunSeed runs one full database lifecycle for the seed: re-seed the RNG,
// acquire a pristine pooled database, hunt, release. Stats accumulate
// across seeds exactly as a campaign worker's per-database testers would
// have been aggregated.
func (l *Lifecycle) RunSeed(seed int64) (*Bug, error) {
	l.Reseed(seed)
	db, err := l.pool.Acquire()
	if err != nil {
		return nil, err
	}
	bug, err := l.runOn(db)
	l.pool.Release(db)
	return bug, err
}

// Close releases the lifecycle's pool when it owns one.
func (l *Lifecycle) Close() error {
	if l.ownPool {
		return l.pool.Close()
	}
	return nil
}
