package core

import (
	"reflect"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
)

// TestLifecycleMatchesNewTesterPerDatabase is the equivalence behind the
// pooled campaign hot loop: for every seed, a reused Lifecycle must
// produce exactly the outcome (detection or not, message, trace) that a
// throwaway NewTester would — across dialects, faults, and oracles, so
// that scheduler results cannot depend on lifecycle reuse.
func TestLifecycleMatchesNewTesterPerDatabase(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		fault  faults.Fault
		oracle string
		seeds  int64
	}{
		{name: "sqlite-pqs-sound", cfg: Config{Dialect: dialect.SQLite}, seeds: 15},
		{name: "mysql-pqs-fault", cfg: Config{Dialect: dialect.MySQL}, fault: faults.InsertVisibility, seeds: 40},
		{name: "postgres-pqs", cfg: Config{Dialect: dialect.Postgres}, seeds: 10},
		{name: "sqlite-tlp", cfg: Config{Dialect: dialect.SQLite}, oracle: "tlp", fault: faults.UnionAllDedup, seeds: 25},
		{name: "sqlite-norec", cfg: Config{Dialect: dialect.SQLite}, oracle: "norec", seeds: 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.QueriesPerDB = 10
			if tc.fault != "" {
				cfg.Faults = faults.NewSet(tc.fault)
			}
			cfg.Oracle = tc.oracle

			type outcome struct {
				msg   string
				trace []string
			}
			capture := func(b *Bug) outcome {
				if b == nil {
					return outcome{}
				}
				return outcome{msg: b.Message, trace: b.Trace}
			}

			lc := NewLifecycle(cfg)
			defer lc.Close()
			for seed := int64(1); seed <= tc.seeds; seed++ {
				fresh := NewTester(func() Config { c := cfg; c.Seed = seed; return c }())
				wantBug, wantErr := fresh.RunDatabase()
				gotBug, gotErr := lc.RunSeed(seed)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d: err %v vs %v", seed, wantErr, gotErr)
				}
				want, got := capture(wantBug), capture(gotBug)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d diverged:\nfresh:     %+v\nlifecycle: %+v", seed, want, got)
				}
			}
		})
	}
}

// TestLifecycleIsolationAcrossFaultRegistry sweeps every registered fault
// through a reused Lifecycle and a throwaway NewTester per seed, and
// fails on any divergence — the definitive check that no engine or tester
// state (options, fault bookkeeping, caches) leaks across Reset. The
// case-sensitive-like pragma fault earned this test: its evaluator-side
// option copy survived an early Reset implementation and turned into
// containment false positives at seed 216.
func TestLifecycleIsolationAcrossFaultRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("registry sweep is not short")
	}
	const seeds = 25
	for _, info := range faults.All() {
		info := info
		t.Run(string(info.ID), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Dialect:      info.Dialect,
				Faults:       faults.NewSet(info.ID),
				QueriesPerDB: 10,
				Oracle:       oracleForInfo(info),
			}
			lc := NewLifecycle(cfg)
			defer lc.Close()
			for seed := int64(1); seed <= seeds; seed++ {
				c2 := cfg
				c2.Seed = seed
				wantBug, wantErr := NewTester(c2).RunDatabase()
				gotBug, gotErr := lc.RunSeed(seed)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d: err %v vs %v", seed, wantErr, gotErr)
				}
				var want, got string
				if wantBug != nil {
					want = string(wantBug.Oracle) + ": " + wantBug.Message
				}
				if gotBug != nil {
					got = string(gotBug.Oracle) + ": " + gotBug.Message
				}
				if want != got {
					t.Fatalf("seed %d diverged (state leaked across Reset?):\nfresh:     %s\nlifecycle: %s", seed, want, got)
				}
			}
		})
	}
}

// oracleForInfo routes a fault to its registry oracle without importing
// the runner (mirrors oracle.ForFault).
func oracleForInfo(info faults.Info) string {
	return oracle.ForFault(info)
}

// TestLifecycleOracleRotation verifies SetOracle switches the query phase
// without disturbing determinism: rotating pqs→tlp→pqs reproduces the
// same outcomes as one-shot testers with those oracles.
func TestLifecycleOracleRotation(t *testing.T) {
	base := Config{Dialect: dialect.SQLite, QueriesPerDB: 8, Faults: faults.NewSet(faults.UnionAllDedup)}
	lc := NewLifecycle(base)
	defer lc.Close()
	oracles := []string{"pqs", "tlp", "pqs", "norec", "tlp"}
	for i, name := range oracles {
		seed := int64(100 + i)
		cfg := base
		cfg.Seed = seed
		cfg.Oracle = name
		wantBug, wantErr := NewTester(cfg).RunDatabase()
		lc.SetOracle(name)
		gotBug, gotErr := lc.RunSeed(seed)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s seed %d: err %v vs %v", name, seed, wantErr, gotErr)
		}
		if (wantBug == nil) != (gotBug == nil) {
			t.Fatalf("%s seed %d: detection %v vs %v", name, seed, wantBug != nil, gotBug != nil)
		}
		if wantBug != nil && (wantBug.Message != gotBug.Message || wantBug.DetectedBy != gotBug.DetectedBy) {
			t.Fatalf("%s seed %d: %q/%q vs %q/%q", name, seed,
				wantBug.DetectedBy, wantBug.Message, gotBug.DetectedBy, gotBug.Message)
		}
	}
}
