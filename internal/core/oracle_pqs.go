package core

import (
	"repro/internal/oracle"
	"repro/internal/sut"
)

// PQS registers itself with the oracle registry from here rather than from
// internal/oracle: the pivot machinery lives in this package, and core
// already depends on oracle's verdict layer, so the registration must flow
// this way to avoid an import cycle — the same pattern sut backends use
// (drivers register from their own package).
func init() {
	oracle.Register("pqs", func(o oracle.Options) oracle.Oracle {
		return pqsOracle{opts: o}
	})
}

// pqsOracle adapts one pivot iteration (steps 2–7 of Figure 1) to the
// pluggable oracle interface. Campaigns still run the native loop in
// Tester.runOn — it amortizes the pivot-source snapshot across
// QueriesPerDB iterations — so this adapter serves the uniform surface:
// dbshell's .oracle command and any caller holding an already-built
// database.
type pqsOracle struct {
	opts oracle.Options
}

// Name implements oracle.Oracle.
func (pqsOracle) Name() string { return "pqs" }

// Check implements oracle.Oracle: one pivot iteration against db's
// current state.
func (p pqsOracle) Check(db sut.DB, env *oracle.Env) (*oracle.Report, error) {
	depth := env.MaxExprDepth
	if p.opts.MaxExprDepth > 0 {
		depth = p.opts.MaxExprDepth
	}
	t := NewTester(Config{Dialect: env.Dialect, MaxExprDepth: depth})
	if env.Rnd != nil {
		t.rnd = env.Rnd
	}
	env.Record()
	bug, err := t.CheckPivot(db)
	if bug != nil {
		bug.DetectedBy = "pqs"
		bug.Trace = append(env.SetupTrace(), bug.Trace...)
	}
	return bug, err
}
