package core

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

// The INTERSECT containment form must be as sound as the client-side check.
func TestContainmentViaQuerySoundness(t *testing.T) {
	for _, d := range dialect.All {
		for seed := int64(0); seed < 30; seed++ {
			tester := NewTester(Config{
				Dialect: d, Seed: seed, QueriesPerDB: 15,
				ContainmentViaQuery: true,
			})
			bug, err := tester.RunDatabase()
			if err != nil {
				t.Fatalf("[%s] seed %d: %v", d, seed, err)
			}
			if bug != nil {
				t.Fatalf("[%s] seed %d: INTERSECT-form false positive: %s\n%s",
					d, seed, bug.Message, traceText(bug.Trace))
			}
		}
	}
}

// The INTERSECT form still detects logic bugs.
func TestContainmentViaQueryDetects(t *testing.T) {
	found := false
	for seed := int64(1); seed < 300 && !found; seed++ {
		tester := NewTester(Config{
			Dialect: dialect.MySQL, Seed: seed,
			Faults:              faults.NewSet(faults.InsertVisibility),
			ContainmentViaQuery: true,
		})
		bug, err := tester.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		found = bug != nil
	}
	if !found {
		t.Error("INTERSECT containment form failed to detect a logic fault")
	}
}

// Negative (anticontainment) checks must not fire on a correct engine.
func TestNegativeChecksSoundness(t *testing.T) {
	for _, d := range dialect.All {
		for seed := int64(0); seed < 30; seed++ {
			tester := NewTester(Config{
				Dialect: d, Seed: seed, QueriesPerDB: 15,
				NegativeChecks: true,
			})
			bug, err := tester.RunDatabase()
			if err != nil {
				t.Fatalf("[%s] seed %d: %v", d, seed, err)
			}
			if bug != nil {
				t.Fatalf("[%s] seed %d: negative-check false positive: %s\n%s",
					d, seed, bug.Message, traceText(bug.Trace))
			}
		}
	}
}

// The §7 extension catches row-adding bugs: the is-not-null optimization
// makes `NOT (c IS NULL)` TRUE for NULL rows, so a FALSE-rectified
// condition erroneously fetches the pivot.
func TestNegativeChecksDetectRowAddingBug(t *testing.T) {
	found := false
	for seed := int64(1); seed < 400 && !found; seed++ {
		tester := NewTester(Config{
			Dialect: dialect.SQLite, Seed: seed,
			Faults:         faults.NewSet(faults.IsNotNullOpt),
			NegativeChecks: true,
		})
		bug, err := tester.RunDatabase()
		if err != nil {
			t.Fatal(err)
		}
		if bug != nil && bug.Negative {
			found = true
		}
	}
	if !found {
		t.Error("negative checks never produced an anticontainment detection")
	}
}

func TestRectifyFalse(t *testing.T) {
	// For every tri-value, RectifyFalse's output evaluates FALSE — the
	// table-driven dual of TestRectify.
	cases := []struct {
		tb   string
		want string
	}{
		{"TRUE", "NOT"}, {"FALSE", "identity"}, {"NULL", "NOTNULL"},
	}
	_ = cases // documented by TestNegativeChecksSoundness at scale
}
