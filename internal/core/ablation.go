package core

import (
	"strings"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/sqlval"
)

// engineEvaluatorFor builds an engine-side evaluator sharing the tester's
// fault set — the "shared evaluator" ablation, which demonstrates why the
// oracle interpreter must be independent: with the engine's evaluator as
// the oracle, evaluator-level logic bugs become invisible.
func engineEvaluatorFor(cfg Config, ctx *interp.Context) *eval.Evaluator {
	return &eval.Evaluator{
		D:                 cfg.Dialect,
		Faults:            cfg.Faults,
		CaseSensitiveLike: ctx.CaseSensitiveLike,
	}
}

// ctxEnv adapts the pivot-row interpreter context into the engine
// evaluator's Env interface (ablation support only).
type ctxEnv struct {
	ctx *interp.Context
}

func (c *ctxEnv) find(table, column string) (interp.ColInfo, bool) {
	if table != "" {
		ci, ok := c.ctx.Cols[strings.ToLower(table)+"."+strings.ToLower(column)]
		return ci, ok
	}
	suffix := "." + strings.ToLower(column)
	var found interp.ColInfo
	n := 0
	for k, ci := range c.ctx.Cols {
		if strings.HasSuffix(k, suffix) {
			found = ci
			n++
		}
	}
	return found, n == 1
}

// ColumnValue implements eval.Env.
func (c *ctxEnv) ColumnValue(table, column string) (sqlval.Value, bool) {
	ci, ok := c.find(table, column)
	if !ok {
		return sqlval.Null(), false
	}
	return ci.Val, true
}

// ColumnMeta implements eval.Env.
func (c *ctxEnv) ColumnMeta(table, column string) (eval.Meta, bool) {
	ci, ok := c.find(table, column)
	if !ok {
		return eval.Meta{}, false
	}
	return eval.Meta{
		Coll:     ci.Coll,
		Affinity: ci.Affinity,
		Unsigned: ci.Unsigned,
	}, true
}

// pivotLayout is the compiled-evaluation counterpart of ctxEnv: one
// relation whose single row is the pivot tuple, with columns bound in
// bindPivot order. The engine-as-oracle ablation compiles each candidate
// condition once against it and evaluates the condition and its rectified
// wrapper through the same program, instead of re-walking the tree per
// verification.
type pivotLayout struct {
	keys []pivotKey
	meta []eval.Meta
}

type pivotKey struct {
	table, column string // lower-cased
}

// newPivotLayout builds the layout over the bound pivot columns. Metadata
// mirrors what bindPivot hands the interpreter context (and what ctxEnv
// reports): collation, affinity, and unsignedness — no type name or table
// engine, which the pivot oracle never had either.
func newPivotLayout(cols []gen.ColumnPick) *pivotLayout {
	l := &pivotLayout{
		keys: make([]pivotKey, len(cols)),
		meta: make([]eval.Meta, len(cols)),
	}
	for i, c := range cols {
		coll, _ := sqlval.ParseCollation(c.Column.Collate)
		l.keys[i] = pivotKey{table: strings.ToLower(c.Table), column: strings.ToLower(c.Column.Name)}
		l.meta[i] = eval.Meta{
			Coll:     coll,
			Affinity: sqlval.AffinityOf(c.Column.TypeName),
			Unsigned: c.Column.Unsigned,
		}
	}
	return l
}

// NumRels implements eval.Layout.
func (l *pivotLayout) NumRels() int { return 1 }

// Resolve implements eval.Layout with ctxEnv's resolution rules: exact
// lower-cased table match when qualified, unique-name match when not.
func (l *pivotLayout) Resolve(table, column string) (eval.Slot, eval.Meta, error) {
	lt, lc := strings.ToLower(table), strings.ToLower(column)
	found, n := -1, 0
	for i, k := range l.keys {
		if k.column != lc {
			continue
		}
		if lt != "" {
			if k.table == lt {
				return eval.Slot{Rel: 0, Col: i}, l.meta[i], nil
			}
			continue
		}
		found = i
		n++
	}
	if n > 1 {
		return eval.Slot{}, eval.Meta{}, eval.ErrAmbiguousColumn(column)
	}
	if lt != "" || n == 0 {
		return eval.Slot{}, eval.Meta{}, eval.ErrNoSuchColumn(table, column)
	}
	return eval.Slot{Rel: 0, Col: found}, l.meta[found], nil
}
