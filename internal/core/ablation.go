package core

import (
	"strings"

	"repro/internal/eval"
	"repro/internal/interp"
	"repro/internal/sqlval"
)

// engineEvaluatorFor builds an engine-side evaluator sharing the tester's
// fault set — the "shared evaluator" ablation, which demonstrates why the
// oracle interpreter must be independent: with the engine's evaluator as
// the oracle, evaluator-level logic bugs become invisible.
func engineEvaluatorFor(cfg Config, ctx *interp.Context) *eval.Evaluator {
	return &eval.Evaluator{
		D:                 cfg.Dialect,
		Faults:            cfg.Faults,
		CaseSensitiveLike: ctx.CaseSensitiveLike,
	}
}

// ctxEnv adapts the pivot-row interpreter context into the engine
// evaluator's Env interface (ablation support only).
type ctxEnv struct {
	ctx *interp.Context
}

func (c *ctxEnv) find(table, column string) (interp.ColInfo, bool) {
	if table != "" {
		ci, ok := c.ctx.Cols[strings.ToLower(table)+"."+strings.ToLower(column)]
		return ci, ok
	}
	suffix := "." + strings.ToLower(column)
	var found interp.ColInfo
	n := 0
	for k, ci := range c.ctx.Cols {
		if strings.HasSuffix(k, suffix) {
			found = ci
			n++
		}
	}
	return found, n == 1
}

// ColumnValue implements eval.Env.
func (c *ctxEnv) ColumnValue(table, column string) (sqlval.Value, bool) {
	ci, ok := c.find(table, column)
	if !ok {
		return sqlval.Null(), false
	}
	return ci.Val, true
}

// ColumnMeta implements eval.Env.
func (c *ctxEnv) ColumnMeta(table, column string) (eval.Meta, bool) {
	ci, ok := c.find(table, column)
	if !ok {
		return eval.Meta{}, false
	}
	return eval.Meta{
		Coll:     ci.Coll,
		Affinity: ci.Affinity,
		Unsigned: ci.Unsigned,
	}, true
}
