// Package core is the heart of the reproduction: Pivoted Query Synthesis
// (Figure 1 of the paper). A Tester repeatedly (1) generates a random
// database, (2) selects a pivot row from every table, (3) generates random
// expressions, (4) rectifies them to TRUE with the oracle interpreter,
// (5) synthesizes a query using them as WHERE/JOIN conditions, (6) runs it
// on the engine, and (7) checks that the pivot row is contained in the
// result set.
package core

import (
	"fmt"
	"strings"

	"repro/internal/dialect"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/oracle"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/sut"
	// The blank import registers sut.DefaultBackend so RunDatabase works
	// out of the box from any consumer. This deliberately links the
	// in-process engine into the tester stack: it is this repo's only
	// in-tree DBMS. A build targeting solely external backends would
	// move this registration to its main package.
	_ "repro/internal/sut/memengine"
	"repro/internal/xerr"
)

// Config parameterizes a Tester.
type Config struct {
	Dialect dialect.Dialect
	Seed    int64
	Faults  *faults.Set

	// Backend names the sut driver databases are opened on ("" selects
	// sut.DefaultBackend, the in-process engine).
	Backend string
	// Storage selects the backend's storage mode: "" or "memory" for the
	// in-memory heap, "pager" for the durable page-file + WAL backend
	// (required by the "recovery" oracle; see sut.Session.Storage).
	Storage string
	// Oracle selects the testing oracle for the query phase of each
	// database lifecycle: "" or "pqs" runs the native pivot loop (Figure
	// 1); any other name resolves through the internal/oracle registry
	// ("tlp", "norec"). The database-generation phase and its error/crash
	// oracle are shared by every choice.
	Oracle string
	// WireFidelity switches the campaign hot loop from the ExecAST fast
	// path back to the full render→reparse string round trip, for parser
	// coverage (measurably slower; BenchmarkCampaignThroughput tracks the
	// gap).
	WireFidelity bool
	// NoCompile disables the engine's compiled expression programs (the
	// `-no-compile` escape hatch for A/B runs): every clause of every
	// query executes through the tree-walk interpreter, and the
	// UseEngineAsOracle ablation's pivot checks fall back to tree walks
	// too. See DESIGN.md "Compiled expression programs".
	NoCompile bool
	// NoHashJoin pins every join level to the nested-loop operator (the
	// `-no-hashjoin` A/B baseline; see DESIGN.md "Join execution").
	NoHashJoin bool
	// NoHashAgg forces materialized grouping and full sorts (the
	// `-no-hashagg` A/B baseline; see DESIGN.md "Aggregation & ordering
	// execution").
	NoHashAgg bool

	// MaxExprDepth bounds generated expression trees (Algorithm 1's
	// maxdepth). Default 3.
	MaxExprDepth int
	// MinRows/MaxRows bound per-table row counts (paper: 10–30; defaults
	// are lower for campaign throughput — the ablation bench sweeps this).
	MinRows, MaxRows int
	// MaxTables bounds tables per database. Default 3.
	MaxTables int
	// QueriesPerDB is how many pivot iterations run against one database
	// before regenerating (the "continue with 1 or 2" choice in Figure 1).
	QueriesPerDB int
	// DisableRectification switches Algorithm 3 off and uses rejection
	// sampling instead (ablation 2 in DESIGN.md).
	DisableRectification bool
	// UseEngineAsOracle evaluates pivot expressions with the engine's own
	// evaluator instead of the independent interpreter (ablation 1).
	UseEngineAsOracle bool
	// ContainmentViaQuery folds the containment check into the query with
	// INTERSECT, the way §3.2 combines steps 6 and 7, instead of the
	// client-side row search.
	ContainmentViaQuery bool
	// NegativeChecks additionally generates FALSE-rectified conditions
	// and verifies the pivot row is NOT contained — the paper's §7
	// future-work extension. It catches bugs that erroneously add rows.
	NegativeChecks bool
	// Sessions fixes the serializability oracle's concurrent-session count
	// per interleaved history (the `-sessions` flag; 0 = seed-derived 2 or
	// 3). Ignored by the other oracles.
	Sessions int
}

func (c Config) withDefaults() Config {
	if c.MaxExprDepth <= 0 {
		c.MaxExprDepth = 3
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 8
	}
	if c.MinRows <= 0 {
		c.MinRows = 1
	}
	if c.MaxTables <= 0 {
		c.MaxTables = 3
	}
	if c.QueriesPerDB <= 0 {
		c.QueriesPerDB = 30
	}
	return c
}

// Bug is one oracle detection. The canonical type is oracle.Report (so
// metamorphic oracles construct detections without importing the PQS
// loop); the alias keeps the historical core.Bug name for the runner,
// reducer, fuzzer, and CLIs.
type Bug = oracle.Report

// Stats counts tester work (the throughput experiment).
type Stats struct {
	Statements int
	Queries    int
	Databases  int
	Rectified  map[sqlval.TriBool]int
	Artifacts  int
	Discarded  int // expressions the oracle could not evaluate
}

func newStats() *Stats { return &Stats{Rectified: map[sqlval.TriBool]int{}} }

// Add merges other into s.
func (s *Stats) Add(o *Stats) {
	s.Statements += o.Statements
	s.Queries += o.Queries
	s.Databases += o.Databases
	s.Artifacts += o.Artifacts
	s.Discarded += o.Discarded
	for k, v := range o.Rectified {
		s.Rectified[k] += v
	}
}

// Tester runs PQS against fresh engine instances.
type Tester struct {
	cfg   Config
	rnd   *gen.Rand
	stats *Stats

	// meta is the resolved registry oracle when cfg.Oracle names a
	// metamorphic oracle; nil for the native PQS loop. metaErr records a
	// resolution failure and surfaces on the first RunDatabase.
	meta    oracle.Oracle
	metaErr error

	// colsBuf/hintsBuf are bindPivot scratch reused across the pivot
	// iterations of a lifecycle (a Tester is single-threaded; nothing
	// retains these past one iteration).
	colsBuf  []gen.ColumnPick
	hintsBuf []sqlval.Value

	// pivotLay/pivotFrame are the compiled pivot-check state of the
	// engine-as-oracle ablation, rebuilt by bindPivot each iteration
	// (nil/empty when the independent interpreter is the oracle or
	// compilation is disabled).
	pivotLay   *pivotLayout
	pivotFrame eval.Frame
}

// NewTester creates a tester.
func NewTester(cfg Config) *Tester {
	cfg = cfg.withDefaults()
	t := &Tester{
		cfg:   cfg,
		rnd:   gen.NewRand(cfg.Dialect, cfg.Seed),
		stats: newStats(),
	}
	if name := cfg.Oracle; name != "" && name != "pqs" {
		t.meta, t.metaErr = newMetaOracle(name, cfg)
	}
	return t
}

// newMetaOracle resolves a metamorphic oracle from the registry.
func newMetaOracle(name string, cfg Config) (oracle.Oracle, error) {
	return oracle.New(name, oracle.Options{MaxExprDepth: cfg.MaxExprDepth, Sessions: cfg.Sessions})
}

// oracleName reports the testing oracle this tester runs.
func (t *Tester) oracleName() string {
	if t.cfg.Oracle == "" {
		return "pqs"
	}
	return t.cfg.Oracle
}

// Stats exposes accumulated counters.
func (t *Tester) Stats() *Stats { return t.stats }

// bugSignal aborts statement generation when an oracle fires.
type bugSignal struct{ bug *Bug }

// Error implements the error interface.
func (b *bugSignal) Error() string { return "oracle detection: " + b.bug.Message }

// Session maps tester configuration onto per-connection SUT options (the
// scheduler builds per-campaign session pools from it).
func (c Config) Session() sut.Session {
	return sut.Session{
		Dialect:      c.Dialect,
		Faults:       c.Faults,
		WireFidelity: c.WireFidelity,
		NoCompile:    c.NoCompile,
		NoHashJoin:   c.NoHashJoin,
		NoHashAgg:    c.NoHashAgg,
		Storage:      c.Storage,
	}
}

// trace accumulates the statement sequence of one database lifecycle as
// ASTs and renders SQL only when a detection needs a reproduction trace —
// rendering every statement in the hot loop costs about as much as
// executing it (the engine never mutates statements it executes, so the
// ASTs stay faithful).
type trace struct {
	d     dialect.Dialect
	stmts []sqlast.Stmt
}

func (tr *trace) add(st sqlast.Stmt) { tr.stmts = append(tr.stmts, st) }

func (tr *trace) pop() { tr.stmts = tr.stmts[:len(tr.stmts)-1] }

// render materializes the trace as SQL text.
func (tr *trace) render() []string { return RenderStmts(tr.stmts, tr.d) }

// RenderStmts renders a statement sequence to SQL text — the one place
// reproduction traces are materialized (core and fuzz both defer
// rendering until a detection fires).
func RenderStmts(stmts []sqlast.Stmt, d dialect.Dialect) []string {
	out := make([]string, len(stmts))
	for i, st := range stmts {
		out[i] = sqlast.SQL(st, d)
	}
	return out
}

// RunDatabase executes one full database lifecycle (steps 1–7, looped) and
// returns the first detection, or nil.
func (t *Tester) RunDatabase() (*Bug, error) {
	db, err := sut.Open(t.cfg.Backend, t.cfg.Session())
	if err != nil {
		return nil, err
	}
	defer db.Close()
	return t.runOn(db)
}

// runOn runs one lifecycle against a specific database under test.
func (t *Tester) runOn(db sut.DB) (*Bug, error) {
	if t.metaErr != nil {
		return nil, t.metaErr
	}
	t.stats.Databases++
	tr := &trace{d: t.cfg.Dialect}

	apply := func(st sqlast.Stmt) error {
		tr.add(st)
		t.stats.Statements++
		_, err := db.ExecAST(st)
		switch v := oracle.Classify(st, err, t.cfg.Dialect); v {
		case oracle.VerdictBug, oracle.VerdictCrash:
			code, _ := xerr.CodeOf(err)
			return &bugSignal{bug: &Bug{
				Oracle:     oracle.OracleFor(v),
				DetectedBy: t.oracleName(),
				Message:    err.Error(),
				Code:       code,
				Trace:      tr.render(),
			}}
		case oracle.VerdictArtifact:
			t.stats.Artifacts++
		}
		return nil
	}

	sg := &gen.StateGen{
		Rnd:       t.rnd,
		E:         db.Introspect(),
		MinRows:   t.cfg.MinRows,
		MaxRows:   t.cfg.MaxRows,
		MaxTables: t.cfg.MaxTables,
	}
	if err := sg.BuildDatabase(apply); err != nil {
		if sig, ok := err.(*bugSignal); ok {
			return sig.bug, nil
		}
		return nil, err
	}

	// Metamorphic oracles take over the query phase: the database and the
	// build-time error oracle above are shared, only the check differs.
	if t.meta != nil {
		env := &oracle.Env{
			Dialect:      t.cfg.Dialect,
			Rnd:          t.rnd,
			Hints:        sg.Hints,
			MaxExprDepth: t.cfg.MaxExprDepth,
			Setup:        tr.render,
			RecordStmt: func() {
				t.stats.Statements++
				t.stats.Queries++
			},
		}
		for q := 0; q < t.cfg.QueriesPerDB; q++ {
			rep, err := t.meta.Check(db, env)
			if err != nil {
				return nil, err
			}
			if rep != nil {
				return rep, nil
			}
		}
		return nil, nil
	}

	// Snapshot the pivot sources once per lifecycle: the pivot loop below
	// executes only SELECTs, so schema and stored rows are constant and
	// re-introspecting (copying every row) on each of the QueriesPerDB
	// iterations would be pure overhead.
	snap := snapshotPivotSources(db.Introspect())

	for q := 0; q < t.cfg.QueriesPerDB; q++ {
		bug, err := t.pivotIteration(db, snap, sg, tr)
		if err != nil {
			return nil, err
		}
		if bug != nil {
			return bug, nil
		}
	}
	return nil, nil
}

// CheckPivot runs one PQS pivot iteration (steps 2–7 of Figure 1) against
// an already-built database, without generating state first — the
// one-shot form behind the registered "pqs" oracle and dbshell's .oracle
// meta command.
func (t *Tester) CheckPivot(db sut.DB) (*Bug, error) {
	snap := snapshotPivotSources(db.Introspect())
	if len(snap) == 0 {
		return nil, nil
	}
	sg := &gen.StateGen{Rnd: t.rnd, E: db.Introspect()}
	tr := &trace{d: t.cfg.Dialect}
	return t.pivotIteration(db, snap, sg, tr)
}

// pivotSource is one table's cached introspection for a database
// lifecycle: name, schema, and ground-truth rows.
type pivotSource struct {
	table string
	info  schema.TableInfo
	rows  [][]sqlval.Value
}

// snapshotPivotSources captures every non-empty table's pivot material.
func snapshotPivotSources(intro sut.Introspection) []pivotSource {
	var out []pivotSource
	for _, tn := range intro.Tables() {
		rows := intro.RawRows(tn)
		if len(rows) == 0 {
			continue
		}
		info, err := intro.Describe(tn)
		if err != nil {
			continue
		}
		out = append(out, pivotSource{table: tn, info: info, rows: rows})
	}
	return out
}

// pivotRow is one table's pivot selection. rows and rowIdx keep the full
// scan-order snapshot and the pivot's position in it, so buildQuery can
// compute the pivot's exact ORDER BY rank for position-tight LIMITs.
type pivotRow struct {
	table  string
	info   schema.TableInfo
	vals   []sqlval.Value
	rows   [][]sqlval.Value
	rowIdx int
}

// pivotIteration runs steps 2–7 once.
func (t *Tester) pivotIteration(db sut.DB, snap []pivotSource, sg *gen.StateGen, tr *trace) (*Bug, error) {
	intro := db.Introspect()
	// Step 2: select a pivot row from each table.
	pivots := make([]pivotRow, 0, len(snap))
	for _, src := range snap {
		ri := t.rnd.Intn(len(src.rows))
		pivots = append(pivots, pivotRow{
			table:  src.table,
			info:   src.info,
			vals:   src.rows[ri],
			rows:   src.rows,
			rowIdx: ri,
		})
	}
	if len(pivots) == 0 {
		return nil, nil
	}
	// Use a random non-empty subset of tables (1..all), keeping join
	// fan-out bounded (§3.4: row-count pressure).
	for len(pivots) > 1 && t.rnd.Bool(0.4) {
		pivots = pivots[:len(pivots)-1]
	}

	ctx, cols, hints := t.bindPivot(intro, pivots, sg)

	// §7 extension: occasionally check the dual property — a FALSE
	// condition must NOT fetch the pivot row.
	if t.cfg.NegativeChecks && t.rnd.Bool(0.3) {
		return t.negativeIteration(db, pivots, ctx, cols, hints, tr)
	}

	// Steps 3–4: generate and rectify conditions.
	where, ok := t.rectifiedCondition(ctx, cols, hints)
	if !ok {
		return nil, nil
	}

	// Step 5: synthesize the query.
	sel, expected, err := t.buildQuery(ctx, pivots, cols, hints, where)
	if err != nil || sel == nil {
		return nil, err
	}

	// Step 6+7 combined (§3.2): either run the query and search the
	// result client-side, or wrap it in the paper's INTERSECT form where
	// a non-empty result proves containment.
	var query sqlast.Stmt = sel
	if t.cfg.ContainmentViaQuery {
		query = intersectForm(sel, expected)
	}
	tr.add(query)
	t.stats.Statements++
	t.stats.Queries++

	res, execErr := db.ExecAST(query)
	if execErr != nil {
		switch v := oracle.Classify(query, execErr, t.cfg.Dialect); v {
		case oracle.VerdictBug, oracle.VerdictCrash:
			code, _ := xerr.CodeOf(execErr)
			return &Bug{
				Oracle:     oracle.OracleFor(v),
				DetectedBy: "pqs",
				Message:    execErr.Error(),
				Code:       code,
				Trace:      tr.render(),
			}, nil
		default:
			// Expected runtime error (strict typing): drop this query
			// from the trace and move on.
			tr.pop()
			t.stats.Discarded++
			return nil, nil
		}
	}

	contained := oracle.Containment(res.Rows, expected)
	if t.cfg.ContainmentViaQuery {
		contained = len(res.Rows) > 0
	}
	if !contained {
		pt := map[string][]sqlval.Value{}
		for _, p := range pivots {
			pt[p.table] = p.vals
		}
		return &Bug{
			Oracle:      faults.OracleContainment,
			DetectedBy:  "pqs",
			Message:     fmt.Sprintf("pivot row %s not contained in result set (%d rows)", tupleString(expected), len(res.Rows)),
			Trace:       tr.render(),
			Expected:    expected,
			PivotTables: pt,
		}, nil
	}
	// Keep the trace bounded: successful pivot queries don't help
	// reproduce later bugs.
	tr.pop()
	return nil, nil
}

// intersectForm wraps a pivot query in the paper's containment idiom:
// SELECT <pivot literals> INTERSECT <query> returns a row iff the pivot
// tuple is contained.
func intersectForm(sel *sqlast.Select, expected []sqlval.Value) *sqlast.Compound {
	lits := &sqlast.Select{}
	for _, v := range expected {
		lits.Cols = append(lits.Cols, sqlast.ResultCol{X: sqlast.Lit(v)})
	}
	return &sqlast.Compound{
		Selects: []*sqlast.Select{lits, sel},
		Ops:     []sqlast.CompoundOp{sqlast.OpIntersect},
	}
}

// negativeIteration generates a FALSE-rectified condition and verifies the
// pivot row is absent from the result (§7: "we could also generate
// conditions and check that the pivot row is not contained").
func (t *Tester) negativeIteration(db sut.DB, pivots []pivotRow, ctx *interp.Context, cols []gen.ColumnPick, hints []sqlval.Value, tr *trace) (*Bug, error) {
	where, ok := t.falsifiedCondition(ctx, cols, hints)
	if !ok {
		return nil, nil
	}
	// Result columns are the full pivot tuple (no value expressions):
	// with the condition referencing only these tables' columns, any
	// combo whose tuple equals the pivot tuple evaluates the condition
	// identically, so presence of the tuple is exactly the violation.
	sel := &sqlast.Select{Where: where}
	var expected []sqlval.Value
	for _, p := range pivots {
		for ci, col := range p.info.Columns {
			sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(p.table, col.Name)})
			var v sqlval.Value
			if ci < len(p.vals) {
				v = p.vals[ci]
			}
			expected = append(expected, v)
		}
	}
	sel.From = []sqlast.TableRef{{Name: pivots[0].table}}
	for _, p := range pivots[1:] {
		sel.From = append(sel.From, sqlast.TableRef{Name: p.table})
	}

	tr.add(sel)
	t.stats.Statements++
	t.stats.Queries++
	res, execErr := db.ExecAST(sel)
	if execErr != nil {
		switch v := oracle.Classify(sel, execErr, t.cfg.Dialect); v {
		case oracle.VerdictBug, oracle.VerdictCrash:
			code, _ := xerr.CodeOf(execErr)
			return &Bug{
				Oracle:     oracle.OracleFor(v),
				DetectedBy: "pqs",
				Message:    execErr.Error(),
				Code:       code,
				Trace:      tr.render(),
			}, nil
		default:
			tr.pop()
			t.stats.Discarded++
			return nil, nil
		}
	}
	if oracle.Containment(res.Rows, expected) {
		pt := map[string][]sqlval.Value{}
		for _, p := range pivots {
			pt[p.table] = p.vals
		}
		return &Bug{
			Oracle:      faults.OracleContainment,
			DetectedBy:  "pqs",
			Message:     fmt.Sprintf("pivot row %s contained despite FALSE condition (%d rows)", tupleString(expected), len(res.Rows)),
			Trace:       tr.render(),
			Expected:    expected,
			PivotTables: pt,
			Negative:    true,
		}, nil
	}
	tr.pop()
	return nil, nil
}

// falsifiedCondition is the dual of rectifiedCondition: the generated
// expression is modified to evaluate FALSE on the pivot row.
func (t *Tester) falsifiedCondition(ctx *interp.Context, cols []gen.ColumnPick, hints []sqlval.Value) (sqlast.Expr, bool) {
	eg := &gen.ExprGen{Rnd: t.rnd, Cols: cols, Hints: hints, ColValues: pivotColValues(cols, hints), MaxDepth: t.cfg.MaxExprDepth}
	evalExpr, evalWrapped := t.condOracle(ctx)
	for tries := 0; tries < 20; tries++ {
		expr := eg.Generate()
		tb, err := evalExpr(expr)
		if err != nil {
			t.stats.Discarded++
			continue
		}
		falsified := RectifyFalse(expr, tb)
		if check, err := evalWrapped(expr, falsified); err != nil || check != sqlval.TriFalse {
			t.stats.Discarded++
			continue
		}
		return falsified, true
	}
	return nil, false
}

// RectifyFalse modifies an expression to yield FALSE: TRUE gets NOT, FALSE
// stays, NULL gets IS NOT NULL (which is FALSE for a NULL-valued
// expression).
func RectifyFalse(expr sqlast.Expr, tb sqlval.TriBool) sqlast.Expr {
	switch tb {
	case sqlval.TriTrue:
		return sqlast.Not(expr)
	case sqlval.TriFalse:
		return expr
	default:
		return &sqlast.Unary{Op: sqlast.OpNotNull, X: expr}
	}
}

// pivotColValues slices the pivot-aligned prefix of the hint pool:
// bindPivot appends one hint per bound column, in column order, before the
// general value pool.
func pivotColValues(cols []gen.ColumnPick, hints []sqlval.Value) []sqlval.Value {
	if len(hints) < len(cols) {
		return nil
	}
	return hints[:len(cols)]
}

func tupleString(vals []sqlval.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// bindPivot builds the oracle interpreter context and the generator's
// column/hint pools.
func (t *Tester) bindPivot(intro sut.Introspection, pivots []pivotRow, sg *gen.StateGen) (*interp.Context, []gen.ColumnPick, []sqlval.Value) {
	ctx := interp.NewContext(t.cfg.Dialect)
	ctx.CaseSensitiveLike = intro.CaseSensitiveLike()
	cols := t.colsBuf[:0]
	hints := t.hintsBuf[:0]
	for _, p := range pivots {
		for ci, col := range p.info.Columns {
			coll, _ := sqlval.ParseCollation(col.Collate)
			var v sqlval.Value
			if ci < len(p.vals) {
				v = p.vals[ci]
			}
			ctx.Bind(p.table, col.Name, interp.ColInfo{
				Val:      v,
				Coll:     coll,
				Affinity: sqlval.AffinityOf(col.TypeName),
				Unsigned: col.Unsigned,
			})
			cols = append(cols, gen.ColumnPick{Table: p.table, Column: col})
			hints = append(hints, v)
		}
	}
	if len(sg.Hints) > 0 {
		hints = append(hints, sg.Hints...)
	}
	t.colsBuf, t.hintsBuf = cols, hints
	t.pivotLay, t.pivotFrame = nil, eval.Frame{}
	if t.cfg.UseEngineAsOracle && !t.cfg.NoCompile {
		t.pivotLay = newPivotLayout(cols)
		t.pivotFrame = eval.Frame{Rows: [][]sqlval.Value{pivotColValues(cols, hints)}}
	}
	return ctx, cols, hints
}

// condOracle returns the evaluator pair the condition loops use: evalExpr
// evaluates a freshly generated expression on the pivot row, evalWrapped
// re-checks the rectified wrapper built around the expression evalExpr saw
// last. The default oracle stays the independent tree-walk interpreter
// (Algorithm 2 shares no evaluation machinery with the engine — compiled
// or otherwise — which is what keeps evaluator bugs observable). Under the
// UseEngineAsOracle ablation the predicate compiles once per candidate
// against the pivot layout, and the verification re-check wraps the
// already-compiled program instead of re-walking the whole tree.
func (t *Tester) condOracle(ctx *interp.Context) (
	evalExpr func(sqlast.Expr) (sqlval.TriBool, error),
	evalWrapped func(orig, wrapped sqlast.Expr) (sqlval.TriBool, error),
) {
	if !t.cfg.UseEngineAsOracle {
		return func(e sqlast.Expr) (sqlval.TriBool, error) {
				return interp.EvalBool(e, ctx)
			}, func(_, wrapped sqlast.Expr) (sqlval.TriBool, error) {
				return interp.EvalBool(wrapped, ctx)
			}
	}
	ev := engineEvaluatorFor(t.cfg, ctx)
	if t.pivotLay == nil {
		env := &ctxEnv{ctx: ctx}
		return func(e sqlast.Expr) (sqlval.TriBool, error) {
				return ev.EvalBool(e, env)
			}, func(_, wrapped sqlast.Expr) (sqlval.TriBool, error) {
				return ev.EvalBool(wrapped, env)
			}
	}
	var lastExpr sqlast.Expr
	var lastProg *eval.Program
	evalExpr = func(e sqlast.Expr) (sqlval.TriBool, error) {
		prog, err := ev.Compile(e, t.pivotLay)
		if err != nil {
			return sqlval.TriUnknown, err
		}
		lastExpr, lastProg = e, prog
		return prog.EvalBool(&t.pivotFrame)
	}
	evalWrapped = func(orig, wrapped sqlast.Expr) (sqlval.TriBool, error) {
		if wrapped == orig && orig == lastExpr && lastProg != nil {
			return lastProg.EvalBool(&t.pivotFrame)
		}
		if u, ok := wrapped.(*sqlast.Unary); ok && u.X == lastExpr && lastProg != nil {
			prog, err := ev.CompileWrapped(u, lastProg, t.pivotLay)
			if err != nil {
				return sqlval.TriUnknown, err
			}
			return prog.EvalBool(&t.pivotFrame)
		}
		prog, err := ev.Compile(wrapped, t.pivotLay)
		if err != nil {
			return sqlval.TriUnknown, err
		}
		return prog.EvalBool(&t.pivotFrame)
	}
	return evalExpr, evalWrapped
}

// rectifiedCondition implements steps 3–4: generate a random expression,
// evaluate it on the pivot row, and modify it to yield TRUE (Algorithm 3).
func (t *Tester) rectifiedCondition(ctx *interp.Context, cols []gen.ColumnPick, hints []sqlval.Value) (sqlast.Expr, bool) {
	eg := &gen.ExprGen{Rnd: t.rnd, Cols: cols, Hints: hints, ColValues: pivotColValues(cols, hints), MaxDepth: t.cfg.MaxExprDepth}
	evalExpr, evalWrapped := t.condOracle(ctx)
	for tries := 0; tries < 20; tries++ {
		expr := eg.Generate()
		tb, err := evalExpr(expr)
		if err != nil {
			t.stats.Discarded++
			continue
		}
		if t.cfg.DisableRectification {
			// Ablation: rejection sampling — only keep TRUE expressions.
			if tb == sqlval.TriTrue {
				t.stats.Rectified[tb]++
				return expr, true
			}
			t.stats.Discarded++
			continue
		}
		t.stats.Rectified[tb]++
		rectified := Rectify(expr, tb)
		// Sanity: the rectified condition must evaluate TRUE.
		if check, err := evalWrapped(expr, rectified); err != nil || check != sqlval.TriTrue {
			t.stats.Discarded++
			continue
		}
		return rectified, true
	}
	return nil, false
}

// evalValue computes a result-column expression's expected value through
// the configured oracle (see evalBool).
func (t *Tester) evalValue(expr sqlast.Expr, ctx *interp.Context) (sqlval.Value, error) {
	if !t.cfg.UseEngineAsOracle {
		return interp.Eval(expr, ctx)
	}
	ev := engineEvaluatorFor(t.cfg, ctx)
	return ev.Eval(expr, &ctxEnv{ctx: ctx})
}

// Rectify is Algorithm 3 verbatim: TRUE stays, FALSE gets NOT, NULL gets
// IS NULL.
func Rectify(expr sqlast.Expr, tb sqlval.TriBool) sqlast.Expr {
	switch tb {
	case sqlval.TriTrue:
		return expr
	case sqlval.TriFalse:
		return sqlast.Not(expr)
	default:
		return sqlast.IsNullExpr(expr)
	}
}

// buildQuery implements step 5: a SELECT over the pivot tables whose WHERE
// (and JOIN) conditions are rectified-TRUE expressions, with random
// keywords (DISTINCT, ORDER BY, LIMIT, GROUP BY).
func (t *Tester) buildQuery(ctx *interp.Context, pivots []pivotRow, cols []gen.ColumnPick, hints []sqlval.Value, where sqlast.Expr) (*sqlast.Select, []sqlval.Value, error) {
	sel := &sqlast.Select{Where: where}
	nCols := 0
	for _, p := range pivots {
		nCols += len(p.info.Columns)
	}
	sel.Cols = make([]sqlast.ResultCol, 0, nCols)
	expected := make([]sqlval.Value, 0, nCols)

	// Result columns: every pivot table column, occasionally replaced by
	// a random expression on columns (§3.4 extension).
	eg := &gen.ExprGen{Rnd: t.rnd, Cols: cols, Hints: hints, ColValues: pivotColValues(cols, hints), MaxDepth: t.cfg.MaxExprDepth}
	// plainCols marks the first pivot table's columns emitted as plain
	// references — the only legal sort keys for the position-tight ORDER
	// BY shape below (ORDER BY must match a result column).
	plainCols := make([]bool, len(pivots[0].info.Columns))
	for pi, p := range pivots {
		for ci, col := range p.info.Columns {
			if t.rnd.Bool(0.15) {
				expr := eg.GenerateValueExpr()
				v, err := t.evalValue(expr, ctx)
				if err == nil {
					sel.Cols = append(sel.Cols, sqlast.ResultCol{X: expr})
					expected = append(expected, v)
					continue
				}
				t.stats.Discarded++
			}
			sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(p.table, col.Name)})
			if pi == 0 {
				plainCols[ci] = true
			}
			var v sqlval.Value
			if ci < len(p.vals) {
				v = p.vals[ci]
			}
			expected = append(expected, v)
		}
	}

	// FROM and JOIN clauses. With multiple tables, sometimes express one
	// as JOIN ... ON <rectified-TRUE condition>, preferring plain
	// column-equality ON conditions that hold on the pivot pair — the
	// shape the planner turns into hash or index-lookup joins.
	sel.From = []sqlast.TableRef{{Name: pivots[0].table}}
	placed := map[string]bool{pivots[0].table: true}
	for _, p := range pivots[1:] {
		if t.rnd.Bool(0.3) {
			var on sqlast.Expr
			ok := false
			if t.rnd.Bool(0.6) {
				on, ok = t.equiJoinOn(ctx, cols, hints, placed, p.table)
			}
			if !ok {
				on, ok = t.rectifiedCondition(ctx, cols, hints)
			}
			if !ok {
				on = sqlast.Lit(trueLiteral(t.cfg.Dialect))
			}
			kind := sqlast.JoinInner
			// LEFT JOIN is containment-safe: the pivot pair satisfies
			// the rectified ON condition, so it is always matched.
			if t.rnd.Bool(0.35) {
				kind = sqlast.JoinLeft
			}
			sel.Joins = append(sel.Joins, sqlast.JoinClause{
				Kind:  kind,
				Table: sqlast.TableRef{Name: p.table},
				On:    on,
			})
			placed[p.table] = true
			continue
		}
		sel.From = append(sel.From, sqlast.TableRef{Name: p.table})
		placed[p.table] = true
	}

	// Random query keywords (step 5: "we randomly select appropriate
	// keywords when generating these queries"). The position-tight ORDER
	// BY shape excludes every other keyword: its LIMIT math assumes the
	// result set is exactly the WHERE-surviving scan-order snapshot (no
	// DISTINCT/GROUP BY collapsing).
	// (Not on Postgres: a FROM scan there also returns inherited child
	// rows, which the raw-heap snapshot the position math runs on never
	// sees; Postgres keeps the always-containing LIMIT shape below.)
	if t.cfg.Dialect != dialect.Postgres &&
		len(pivots) == 1 && len(sel.Joins) == 0 && t.rnd.Bool(0.2) &&
		t.exactPositionOrder(sel, pivots[0], plainCols, ctx) {
		return sel, expected, nil
	}
	switch {
	case (t.cfg.Dialect == dialect.Postgres || t.cfg.Dialect == dialect.SQLite) && t.rnd.Bool(0.25):
		// GROUP BY over every result column is containment-preserving —
		// each output tuple is (a representative of) its own group, and
		// keysEqual-equal tuples are Value.Equal-equal, so the pivot tuple
		// always survives. On Postgres this is the Listing 15 trigger; on
		// SQLite it routes through the hash-aggregation executor and its
		// collation-folding fault site.
		for _, rc := range sel.Cols {
			sel.GroupBy = append(sel.GroupBy, rc.X)
		}
	case t.rnd.Bool(0.3):
		sel.Distinct = true
	}
	if t.rnd.Bool(0.25) {
		rc := sel.Cols[t.rnd.Intn(len(sel.Cols))]
		sel.OrderBy = []sqlast.OrderItem{{X: rc.X, Desc: t.rnd.Bool(0.5)}}
		if t.rnd.Bool(0.5) {
			// A LIMIT at least as large as any possible result set never
			// excludes the pivot row.
			sel.Limit = sqlast.Lit(sqlval.Int(1_000_000))
		}
	}
	return sel, expected, nil
}

// exactPositionOrder rewrites a single-table pivot query into the
// position-tight ORDER BY + LIMIT shape: the sort key is one plain result
// column and LIMIT (with an optional OFFSET) is computed so the window's
// last row sits exactly at the pivot's stable-sort position among the
// WHERE-surviving rows — the tightest LIMIT that still keeps containment.
// The surviving set is established client-side by evaluating the (already
// rectified-TRUE) condition on every snapshot row with the independent
// interpreter, in scan order — the order every engine access path
// reproduces (rowid-sorted fetch) and the stable sort preserves across
// ties. This is the only generated shape whose LIMIT can exclude rows, so
// it is what drives the engine's top-K heap; the
// generic.topk-heap-boundary fault additionally needs a later surviving
// row tying the kept boundary row's key, hence the bias toward sort keys
// with ties after the pivot. Reports false when no plain-column key is
// available or a row evaluation errors (the caller falls through to the
// other keyword shapes).
func (t *Tester) exactPositionOrder(sel *sqlast.Select, p pivotRow, plainCols []bool, ctx *interp.Context) bool {
	// keep collects the scan-order indexes of WHERE-surviving rows;
	// pivotPos is the pivot's rank among them.
	keep := make([]int, 0, len(p.rows))
	pivotPos := -1
	if sel.Where == nil {
		for i := range p.rows {
			keep = append(keep, i)
		}
		pivotPos = p.rowIdx
	} else {
		defer bindRowValues(ctx, p, p.vals) // restore the pivot bindings
		for i, row := range p.rows {
			if i == p.rowIdx {
				// Rectified TRUE on the pivot by construction.
				pivotPos = len(keep)
				keep = append(keep, i)
				continue
			}
			bindRowValues(ctx, p, row)
			tb, err := interp.EvalBool(sel.Where, ctx)
			if err != nil {
				return false
			}
			if tb == sqlval.TriTrue {
				keep = append(keep, i)
			}
		}
	}

	var cands, tieCands []int
	for ci := range p.info.Columns {
		if ci >= len(plainCols) || !plainCols[ci] || ci >= len(p.vals) {
			continue
		}
		cands = append(cands, ci)
		for _, i := range keep[pivotPos+1:] {
			if sqlval.Compare(p.rows[i][ci], p.vals[ci], sqlval.CollBinary) == 0 {
				tieCands = append(tieCands, ci)
				break
			}
		}
	}
	pick := cands
	if len(tieCands) > 0 && t.rnd.Bool(0.8) {
		pick = tieCands
	}
	if len(pick) == 0 {
		return false
	}
	ci := pick[t.rnd.Intn(len(pick))]
	desc := t.rnd.Bool(0.5)
	// pos is the pivot's 1-based position under the engine's stable sort
	// of the surviving rows: strictly smaller keys, plus key ties at or
	// before the pivot's scan index (sqlval.Compare on CollBinary is
	// exactly the engine's ORDER BY comparator).
	pos := 0
	for ki, i := range keep {
		c := sqlval.Compare(p.rows[i][ci], p.vals[ci], sqlval.CollBinary)
		if desc {
			c = -c
		}
		if c < 0 || (c == 0 && ki <= pivotPos) {
			pos++
		}
	}
	sel.OrderBy = []sqlast.OrderItem{{X: sqlast.Col(p.table, p.info.Columns[ci].Name), Desc: desc}}
	off := 0
	if pos > 1 && t.rnd.Bool(0.4) {
		off = t.rnd.Intn(pos)
	}
	sel.Limit = sqlast.Lit(sqlval.Int(int64(pos - off)))
	if off > 0 {
		sel.Offset = sqlast.Lit(sqlval.Int(int64(off)))
	}
	return true
}

// bindRowValues rebinds one table's column values in the interpreter
// context to a different snapshot row (collation/affinity metadata is
// recomputed the way bindPivot does).
func bindRowValues(ctx *interp.Context, p pivotRow, row []sqlval.Value) {
	for ci, col := range p.info.Columns {
		coll, _ := sqlval.ParseCollation(col.Collate)
		var v sqlval.Value
		if ci < len(row) {
			v = row[ci]
		}
		ctx.Bind(p.table, col.Name, interp.ColInfo{
			Val:      v,
			Coll:     coll,
			Affinity: sqlval.AffinityOf(col.TypeName),
			Unsigned: col.Unsigned,
		})
	}
}

// equiJoinOn builds a `placed.a = joining.b` ON condition that evaluates
// TRUE on the pivot pair, so the pivot combo stays matched and containment
// holds. On SQLite it prefers text pairs that are equal only under NOCASE
// or RTRIM and pins that collation explicitly — exactly the keys a
// collation-blind hash-join key builder mishandles. Returns false when no
// pivot-true equality exists between the placed tables and the one being
// joined.
func (t *Tester) equiJoinOn(ctx *interp.Context, cols []gen.ColumnPick, hints []sqlval.Value, placed map[string]bool, joining string) (sqlast.Expr, bool) {
	if len(hints) < len(cols) {
		return nil, false
	}
	evalExpr, _ := t.condOracle(ctx)
	type cand struct {
		x       sqlast.Expr
		variant bool // equal only under an explicit non-binary collation
	}
	var cands []cand
	for i, ca := range cols {
		if !placed[ca.Table] {
			continue
		}
		for j, cb := range cols {
			if cb.Table != joining {
				continue
			}
			l := sqlast.Col(ca.Table, ca.Column.Name)
			var r sqlast.Expr = sqlast.Col(cb.Table, cb.Column.Name)
			variant := false
			va, vb := hints[i], hints[j]
			if t.cfg.Dialect == dialect.SQLite &&
				va.Kind() == sqlval.KText && vb.Kind() == sqlval.KText && va.Str() != vb.Str() {
				switch a, b := va.Str(), vb.Str(); {
				case strings.EqualFold(a, b):
					r = &sqlast.Collate{X: r, Coll: sqlval.CollNoCase}
					variant = true
				case strings.TrimRight(a, " ") == strings.TrimRight(b, " "):
					r = &sqlast.Collate{X: r, Coll: sqlval.CollRTrim}
					variant = true
				}
			}
			x := &sqlast.Binary{Op: sqlast.OpEq, L: l, R: r}
			if tb, err := evalExpr(x); err != nil || tb != sqlval.TriTrue {
				continue
			}
			cands = append(cands, cand{x: x, variant: variant})
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	// Collation-variant keys are the interesting ones; take one when found.
	var variants []cand
	for _, c := range cands {
		if c.variant {
			variants = append(variants, c)
		}
	}
	pool := cands
	if len(variants) > 0 {
		pool = variants
	}
	return pool[t.rnd.Intn(len(pool))].x, true
}

func trueLiteral(d dialect.Dialect) sqlval.Value {
	if d == dialect.Postgres {
		return sqlval.Bool(true)
	}
	return sqlval.Int(1)
}
