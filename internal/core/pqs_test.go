package core

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
)

// TestNoFalsePositives is the soundness test: with no faults enabled, PQS
// must never report a bug, in any dialect, across many databases. A
// failure here means the engine and the oracle interpreter disagree — a
// false positive that would poison every campaign.
func TestNoFalsePositives(t *testing.T) {
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < 60; seed++ {
				tester := NewTester(Config{Dialect: d, Seed: seed, QueriesPerDB: 20})
				bug, err := tester.RunDatabase()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if bug != nil {
					t.Fatalf("seed %d: false positive (%s oracle): %s\ntrace:\n%s",
						seed, bug.Oracle, bug.Message, traceText(bug.Trace))
				}
			}
		})
	}
}

func traceText(trace []string) string {
	out := ""
	for _, s := range trace {
		out += "  " + s + ";\n"
	}
	return out
}

// detectWithin runs PQS against one enabled fault until detection or the
// database budget runs out.
func detectWithin(t *testing.T, f faults.Fault, budget int) *Bug {
	t.Helper()
	info, ok := faults.Lookup(f)
	if !ok {
		t.Fatalf("unknown fault %s", f)
	}
	for seed := int64(1); seed <= int64(budget); seed++ {
		tester := NewTester(Config{
			Dialect: info.Dialect,
			Seed:    seed,
			Faults:  faults.NewSet(f),
		})
		bug, err := tester.RunDatabase()
		if err != nil {
			t.Fatalf("fault %s seed %d: %v", f, seed, err)
		}
		if bug != nil {
			return bug
		}
	}
	return nil
}

// TestDetectsRepresentativeFaults checks that PQS finds one fault of each
// oracle class per dialect within a modest budget. The full corpus runs in
// the campaign benchmarks.
func TestDetectsRepresentativeFaults(t *testing.T) {
	cases := []struct {
		f      faults.Fault
		budget int
	}{
		{faults.PartialIndexNotNull, 300},
		{faults.JoinPredicatePushdown, 150},
		{faults.InheritanceGroupBy, 400},
		{faults.VacuumCorrupt, 150},
		{faults.SetOptionError, 200},
		{faults.CheckTableCrash, 300},
		{faults.InsertVisibility, 100},
	}
	for _, c := range cases {
		c := c
		t.Run(string(c.f), func(t *testing.T) {
			t.Parallel()
			bug := detectWithin(t, c.f, c.budget)
			if bug == nil {
				t.Fatalf("fault %s not detected within %d databases", c.f, c.budget)
			}
			info, _ := faults.Lookup(c.f)
			if bug.Oracle != info.Oracle {
				t.Errorf("fault %s detected by %s oracle, registry expects %s (message: %s)",
					c.f, bug.Oracle, info.Oracle, bug.Message)
			}
			if len(bug.Trace) == 0 {
				t.Error("detection must carry a reproduction trace")
			}
		})
	}
}

func TestRectify(t *testing.T) {
	e, _ := sqlparse.ParseExpr("c0 > 1", dialect.SQLite)
	if got := Rectify(e, sqlval.TriTrue); got != e {
		t.Error("TRUE expressions pass through unchanged")
	}
	if got, ok := Rectify(e, sqlval.TriFalse).(*sqlast.Unary); !ok || got.Op != sqlast.OpNot {
		t.Error("FALSE expressions get NOT")
	}
	if got, ok := Rectify(e, sqlval.TriUnknown).(*sqlast.Unary); !ok || got.Op != sqlast.OpIsNull {
		t.Error("NULL expressions get IS NULL")
	}
}

// TestRectifiedAlwaysTrue is the Algorithm 3 property: for any generated
// expression, the rectified form evaluates to TRUE on the pivot row.
func TestRectifiedAlwaysTrue(t *testing.T) {
	for _, d := range dialect.All {
		tester := NewTester(Config{Dialect: d, Seed: 7})
		ctx := interp.NewContext(d)
		pivotVals := []sqlval.Value{sqlval.Null(), sqlval.Int(3), sqlval.Text("a")}
		if d == dialect.Postgres {
			pivotVals = []sqlval.Value{sqlval.Null(), sqlval.Int(3), sqlval.Bool(true)}
		}
		names := []string{"c0", "c1", "c2"}
		types := []string{"", "INT", "TEXT"}
		if d == dialect.Postgres {
			types = []string{"INT", "INT", "BOOLEAN"}
		}
		var cols []gen.ColumnPick
		for i, n := range names {
			ctx.Bind("t0", n, interp.ColInfo{Val: pivotVals[i]})
			cols = append(cols, gen.ColumnPick{
				Table:  "t0",
				Column: schema.ColumnInfo{Name: n, TypeName: types[i]},
			})
		}
		for i := 0; i < 500; i++ {
			expr, ok := tester.rectifiedCondition(ctx, cols, pivotVals)
			if !ok {
				continue
			}
			tb, err := interp.EvalBool(expr, ctx)
			if err != nil {
				t.Fatalf("[%s] rectified expression errored: %v", d, err)
			}
			if tb != sqlval.TriTrue {
				t.Fatalf("[%s] rectified expression is %v, want TRUE: %s",
					d, tb, sqlast.ExprSQL(expr, d))
			}
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	tester := NewTester(Config{Dialect: dialect.SQLite, Seed: 11, QueriesPerDB: 5})
	for i := 0; i < 3; i++ {
		if _, err := tester.RunDatabase(); err != nil {
			t.Fatal(err)
		}
	}
	s := tester.Stats()
	if s.Databases != 3 || s.Statements == 0 || s.Queries == 0 {
		t.Errorf("stats not accumulating: %+v", s)
	}
	var merged Stats
	merged.Rectified = map[sqlval.TriBool]int{}
	merged.Add(s)
	if merged.Statements != s.Statements {
		t.Error("Stats.Add broken")
	}
}
