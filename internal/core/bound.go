package core

import "repro/internal/sut"

// BoundTester is a Tester pinned to a caller-provided database under
// test, so the caller can inspect the backend afterwards (feature
// coverage for the Table 4 reproduction, shells, examples).
type BoundTester struct {
	*Tester
	db sut.DB
}

// NewTesterWithDB creates a tester that runs every database lifecycle
// against the given DB instead of opening fresh ones. The DB session's
// dialect and fault set take precedence over cfg's.
func NewTesterWithDB(cfg Config, db sut.DB) *BoundTester {
	sess := db.Session()
	cfg.Dialect = sess.Dialect
	cfg.Faults = sess.Faults
	cfg.WireFidelity = sess.WireFidelity
	return &BoundTester{Tester: NewTester(cfg), db: db}
}

// DB exposes the bound database under test.
func (bt *BoundTester) DB() sut.DB { return bt.db }

// RunBoundDatabase is RunDatabase against the bound DB. Unlike
// RunDatabase it does not reset state between calls — repeated calls keep
// growing the same database, which is occasionally useful for coverage
// accumulation but not for campaigns.
func (bt *BoundTester) RunBoundDatabase() (*Bug, error) {
	return bt.runOn(bt.db)
}
