package core

import "repro/internal/engine"

// BoundTester is a Tester pinned to a caller-provided engine instance, so
// the caller can inspect the engine afterwards (feature coverage for the
// Table 4 reproduction, shells, examples).
type BoundTester struct {
	*Tester
	eng *engine.Engine
}

// NewTesterWithEngine creates a tester that runs every database lifecycle
// against the given engine instead of opening fresh ones. The engine's
// fault set takes precedence over cfg.Faults.
func NewTesterWithEngine(cfg Config, e *engine.Engine) *BoundTester {
	cfg.Dialect = e.Dialect()
	cfg.Faults = e.Faults()
	return &BoundTester{Tester: NewTester(cfg), eng: e}
}

// Engine exposes the bound engine.
func (bt *BoundTester) Engine() *engine.Engine { return bt.eng }

// RunBoundDatabase is RunDatabase against the bound engine. Unlike
// RunDatabase it does not reset state between calls — repeated calls keep
// growing the same database, which is occasionally useful for coverage
// accumulation but not for campaigns.
func (bt *BoundTester) RunBoundDatabase() (*Bug, error) {
	return bt.runOn(bt.eng)
}
