package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/sqlval"
)

func buildIndex(keys ...sqlval.Value) *IndexData {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, nil)
	for i, k := range keys {
		ix.Insert([]sqlval.Value{k}, int64(i+1))
	}
	return ix
}

func TestRangeBounds(t *testing.T) {
	ix := buildIndex(
		sqlval.Int(1), sqlval.Int(3), sqlval.Int(3), sqlval.Int(5),
		sqlval.Int(7), sqlval.Null(), sqlval.Text("z"),
	)
	cases := []struct {
		lo, hi *Bound
		want   []int64
	}{
		{&Bound{Key: sqlval.Int(3), Inclusive: true}, &Bound{Key: sqlval.Int(5), Inclusive: true}, []int64{2, 3, 4}},
		{&Bound{Key: sqlval.Int(3)}, &Bound{Key: sqlval.Int(7)}, []int64{4}},
		{&Bound{Key: sqlval.Int(1), Inclusive: true}, nil, []int64{1, 2, 3, 4, 5, 7}}, // open top includes text
		{nil, &Bound{Key: sqlval.Int(3)}, []int64{6, 1}},                              // open bottom includes NULL
		{&Bound{Key: sqlval.Int(100), Inclusive: true}, &Bound{Key: sqlval.Int(0)}, nil},
	}
	for i, c := range cases {
		got := ix.Range(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Errorf("case %d: Range = %v, want %v", i, got, c.want)
			continue
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: Range = %v, want %v", i, got, c.want)
				break
			}
		}
		if n := ix.RangeCount(c.lo, c.hi); n != len(c.want) {
			t.Errorf("case %d: RangeCount = %d, want %d", i, n, len(c.want))
		}
	}
}

func TestPrefixCountMatchesEqualPrefix(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollNoCase, sqlval.CollBinary}, nil)
	keys := []string{"a", "A", "b", "B", "b", "c"}
	for i, k := range keys {
		ix.Insert([]sqlval.Value{sqlval.Text(k), sqlval.Int(int64(i))}, int64(i+1))
	}
	for _, probe := range []string{"a", "B", "c", "x"} {
		p := []sqlval.Value{sqlval.Text(probe)}
		if got, want := ix.PrefixCount(p), len(ix.EqualPrefix(p)); got != want {
			t.Errorf("PrefixCount(%q) = %d, EqualPrefix = %d", probe, got, want)
		}
	}
	if n := ix.PrefixCount([]sqlval.Value{sqlval.Text("b")}); n != 3 {
		t.Errorf("NOCASE prefix count for 'b' = %d, want 3", n)
	}
}

func TestLeadingClassChecks(t *testing.T) {
	num := buildIndex(sqlval.Null(), sqlval.Int(1), sqlval.Real(2.5), sqlval.Bool(true))
	if !num.NumericLeadingOnly() || num.TextLeadingOnly() {
		t.Errorf("numeric index misclassified: numeric=%v text=%v", num.NumericLeadingOnly(), num.TextLeadingOnly())
	}
	txt := buildIndex(sqlval.Null(), sqlval.Text("a"), sqlval.Text("b"))
	if txt.NumericLeadingOnly() || !txt.TextLeadingOnly() {
		t.Errorf("text index misclassified: numeric=%v text=%v", txt.NumericLeadingOnly(), txt.TextLeadingOnly())
	}
	mixed := buildIndex(sqlval.Int(1), sqlval.Text("a"))
	if mixed.NumericLeadingOnly() || mixed.TextLeadingOnly() {
		t.Errorf("mixed index misclassified: numeric=%v text=%v", mixed.NumericLeadingOnly(), mixed.TextLeadingOnly())
	}
	empty := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, nil)
	if !empty.NumericLeadingOnly() || !empty.TextLeadingOnly() {
		t.Error("empty index should satisfy both class checks")
	}
}

// TestRangeMatchesLinearScan cross-checks the binary-search range scan
// against a brute-force filter over random integer keys.
func TestRangeMatchesLinearScan(t *testing.T) {
	f := func(keys []int8, lo, hi int8, loIncl, hiIncl bool) bool {
		ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, nil)
		for i, k := range keys {
			ix.Insert([]sqlval.Value{sqlval.Int(int64(k))}, int64(i+1))
		}
		lb := &Bound{Key: sqlval.Int(int64(lo)), Inclusive: loIncl}
		ub := &Bound{Key: sqlval.Int(int64(hi)), Inclusive: hiIncl}
		got := ix.Range(lb, ub)
		want := map[int64]bool{}
		for _, e := range ix.Entries() {
			k := e.Key[0].Int64()
			okLo := k > int64(lo) || (loIncl && k == int64(lo))
			okHi := k < int64(hi) || (hiIncl && k == int64(hi))
			if okLo && okHi {
				want[e.Rowid] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, rid := range got {
			if !want[rid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
