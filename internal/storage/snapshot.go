package storage

import "repro/internal/sqlval"

// Copy-on-write snapshots. Snapshot() captures the row-pointer / entry
// slice (a shallow copy — row values are never duplicated) and arms a cow
// flag; the one mutation that writes *through* shared row pointers
// (AddColumn) clones the affected rows first. Restore() brings the
// structure back to the captured state without reallocating its container
// map, so a snapshot/restore cycle in a hot loop costs a slice copy plus
// a map rebuild, never a deep copy of the stored values.
//
// Row value slices are immutable throughout the engine (UPDATE removes
// the old row and stores a fresh one), so sharing *Row pointers between a
// snapshot and the live heap is sound; index entry keys are likewise
// never mutated after insertion.

// TableSnapshot is a point-in-time capture of one TableData.
type TableSnapshot struct {
	rows      []*Row
	nextRowid int64
}

// Rows reports how many rows the snapshot captured.
func (s *TableSnapshot) Rows() int { return len(s.rows) }

// Snapshot captures the heap's current state: a shallow copy of the row
// pointers (the snapshot owns its backing array, so later inserts and
// deletes on the live heap never disturb it).
func (t *TableData) Snapshot() *TableSnapshot {
	rows := make([]*Row, len(t.rows))
	copy(rows, t.rows)
	t.cow = true
	return &TableSnapshot{rows: rows, nextRowid: t.nextRowid}
}

// Restore rewinds the heap to a snapshot taken from it. The byRowid map
// is rebuilt in place (cleared, not reallocated), and the snapshot stays
// valid for repeated restores.
func (t *TableData) Restore(s *TableSnapshot) {
	if cap(t.rows) >= len(s.rows) {
		t.rows = t.rows[:len(s.rows)]
	} else {
		t.rows = make([]*Row, len(s.rows))
	}
	copy(t.rows, s.rows)
	t.nextRowid = s.nextRowid
	clear(t.byRowid)
	for _, r := range t.rows {
		t.byRowid[r.Rowid] = r
	}
	t.cow = true
}

// Reset empties the heap, keeping the rows slice capacity and the byRowid
// map allocation for reuse (engine lifecycle pooling).
func (t *TableData) Reset() {
	t.rows = t.rows[:0]
	clear(t.byRowid)
	t.nextRowid = 1
	t.cow = false
}

// unshare clones every row before an in-place mutation of row contents
// (AddColumn appends to each row's value slice), so rows captured by a
// snapshot keep their original width.
func (t *TableData) unshare() {
	if !t.cow {
		return
	}
	for i, r := range t.rows {
		c := r.Clone()
		t.rows[i] = c
		t.byRowid[c.Rowid] = c
	}
	t.cow = false
}

// IndexSnapshot is a point-in-time capture of one IndexData.
type IndexSnapshot struct {
	colls   []sqlval.Collation
	descs   []bool
	entries []IndexEntry
}

// Len reports how many entries the snapshot captured.
func (s *IndexSnapshot) Len() int { return len(s.entries) }

// Snapshot captures the index's current state: a shallow copy of the
// entries (keys are shared — they are never mutated after insertion) plus
// the part collations, which REINDEX faults deliberately swap and a
// restore must swap back. SetCollations installs a fresh slice rather
// than mutating in place, so capturing colls by reference is sound.
func (ix *IndexData) Snapshot() *IndexSnapshot {
	entries := make([]IndexEntry, len(ix.entries))
	copy(entries, ix.entries)
	return &IndexSnapshot{colls: ix.colls, descs: ix.descs, entries: entries}
}

// Restore rewinds the index to a snapshot taken from it.
func (ix *IndexData) Restore(s *IndexSnapshot) {
	if cap(ix.entries) >= len(s.entries) {
		ix.entries = ix.entries[:len(s.entries)]
	} else {
		ix.entries = make([]IndexEntry, len(s.entries))
	}
	copy(ix.entries, s.entries)
	ix.colls = s.colls
	ix.descs = s.descs
}

// Reset empties the index and installs new part collations/directions,
// keeping the entries capacity for reuse (engine lifecycle pooling).
func (ix *IndexData) Reset(colls []sqlval.Collation, descs []bool) {
	ix.entries = ix.entries[:0]
	ix.colls = colls
	ix.descs = descs
}
