package pager

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/xerr"
)

// Page format. Every page is PageSize bytes on disk: a 8-byte header
// (CRC32 over page number + payload, plus reserved bytes) followed by the
// payload. Page 0 is the meta page; pages 1..pageCount hold consecutive
// chunks of the committed database image.
const (
	// PageSize is the fixed on-disk page size.
	PageSize = 4096
	// pageHdrSize is the per-page header: crc32 (4) + reserved (4).
	pageHdrSize = 8
	// PagePayload is the usable bytes per page.
	PagePayload = PageSize - pageHdrSize
)

// Meta-page (page 0) payload layout.
const (
	metaMagic   = 0x50475231 // "PGR1"
	metaVersion = 1
	// meta payload: magic u32, version u32, pageCount u32, imageLen u64,
	// generation u64.
	metaSize = 4 + 4 + 4 + 8 + 8
)

// meta is the decoded page-0 payload.
type meta struct {
	pageCount uint32
	imageLen  uint64
	gen       uint64
}

func encodeMeta(m meta) []byte {
	p := make([]byte, metaSize)
	binary.LittleEndian.PutUint32(p[0:], metaMagic)
	binary.LittleEndian.PutUint32(p[4:], metaVersion)
	binary.LittleEndian.PutUint32(p[8:], m.pageCount)
	binary.LittleEndian.PutUint64(p[12:], m.imageLen)
	binary.LittleEndian.PutUint64(p[20:], m.gen)
	return p
}

func decodeMeta(p []byte) (meta, error) {
	if len(p) < metaSize {
		return meta{}, xerr.New(xerr.CodeCorrupt, "pager: meta page too short")
	}
	if binary.LittleEndian.Uint32(p[0:]) != metaMagic {
		return meta{}, xerr.New(xerr.CodeCorrupt, "pager: bad magic in meta page")
	}
	if v := binary.LittleEndian.Uint32(p[4:]); v != metaVersion {
		return meta{}, xerr.New(xerr.CodeCorrupt, "pager: unsupported format version %d", v)
	}
	return meta{
		pageCount: binary.LittleEndian.Uint32(p[8:]),
		imageLen:  binary.LittleEndian.Uint64(p[12:]),
		gen:       binary.LittleEndian.Uint64(p[20:]),
	}, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// pageCRC checksums a page: page number mixed with the payload, so a page
// written to the wrong offset fails verification too.
func pageCRC(pageNo uint32, payload []byte) uint32 {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], pageNo)
	crc := crc32.Update(0, crcTable, n[:])
	return crc32.Update(crc, crcTable, payload)
}

// encodePage assembles one on-disk page from a payload (≤ PagePayload
// bytes; shorter payloads are zero-padded).
func encodePage(pageNo uint32, payload []byte) []byte {
	pg := make([]byte, PageSize)
	copy(pg[pageHdrSize:], payload)
	binary.LittleEndian.PutUint32(pg[0:], pageCRC(pageNo, pg[pageHdrSize:]))
	return pg
}

// verifyPage checks a page's checksum and returns its payload.
func verifyPage(pageNo uint32, pg []byte) ([]byte, error) {
	if len(pg) != PageSize {
		return nil, xerr.New(xerr.CodeCorrupt, "pager: page %d is %d bytes, want %d", pageNo, len(pg), PageSize)
	}
	want := binary.LittleEndian.Uint32(pg[0:])
	if got := pageCRC(pageNo, pg[pageHdrSize:]); got != want {
		return nil, xerr.New(xerr.CodeCorrupt, "pager: page %d checksum mismatch", pageNo)
	}
	return pg[pageHdrSize:], nil
}

// paginate chunks a database image into page payloads; index 0 is the
// meta page.
func paginate(image []byte, gen uint64) [][]byte {
	n := (len(image) + PagePayload - 1) / PagePayload
	pages := make([][]byte, 0, n+1)
	pages = append(pages, encodeMeta(meta{pageCount: uint32(n), imageLen: uint64(len(image)), gen: gen}))
	for i := 0; i < n; i++ {
		lo := i * PagePayload
		hi := lo + PagePayload
		if hi > len(image) {
			hi = len(image)
		}
		pages = append(pages, image[lo:hi])
	}
	return pages
}
