package pager

import (
	"encoding/binary"
	"hash/crc32"
	"io"

	"repro/internal/faults"
)

// Write-ahead log format. The WAL is a sequence of frames:
//
//	frame header (20 bytes):
//	  pageNo uint32   — page the payload belongs to; commitMark for commits
//	  flags  uint32   — bit 0: commit frame
//	  gen    uint64   — generation of the committing transaction
//	  crc    uint32   — CRC32C over pageNo+flags+gen and the payload
//	payload (PageSize bytes) — full on-disk page image; absent on commit
//	frames.
//
// A transaction appends one frame per dirty page followed by a commit
// frame, then fsyncs. Recovery replays frames in order, applying a
// transaction's pages only when its commit frame is reached, and stops at
// the first short or checksum-failing frame — the torn tail of the final
// unsynced transaction. Checkpoint copies the latest committed page
// images into the main file, fsyncs it, and truncates the WAL.
const (
	walHdrSize = 20
	commitMark = ^uint32(0)
	flagCommit = 1
)

// walFrame is one decoded frame header plus the payload's file offset.
type walFrame struct {
	pageNo     uint32
	flags      uint32
	gen        uint64
	payloadOff int64
}

func (f walFrame) commit() bool { return f.flags&flagCommit != 0 }

// frameCRC checksums a frame header + payload.
func frameCRC(pageNo, flags uint32, gen uint64, payload []byte) uint32 {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], pageNo)
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	crc := crc32.Update(0, crcTable, hdr[:])
	return crc32.Update(crc, crcTable, payload)
}

// appendFrame writes one frame at off and returns the next offset.
func appendFrame(w io.WriterAt, off int64, pageNo, flags uint32, gen uint64, payload []byte) (int64, error) {
	buf := make([]byte, walHdrSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], pageNo)
	binary.LittleEndian.PutUint32(buf[4:], flags)
	binary.LittleEndian.PutUint64(buf[8:], gen)
	binary.LittleEndian.PutUint32(buf[16:], frameCRC(pageNo, flags, gen, payload))
	copy(buf[walHdrSize:], payload)
	if _, err := w.WriteAt(buf, off); err != nil {
		return off, err
	}
	return off + int64(len(buf)), nil
}

// replayWAL scans the log and returns the latest committed frame offset
// per page, the number of commit frames applied, and the WAL size in use.
// fs is the injected-fault set: PagerTruncatedReplay stops after the
// first commit frame; PagerTornPageAccept skips checksum verification and
// salvages the trailing uncommitted frames as an implicit commit.
func replayWAL(f File, fs *faults.Set) (index map[uint32]int64, commits int, end int64, err error) {
	index = map[uint32]int64{}
	size, err := f.Size()
	if err != nil {
		return nil, 0, 0, err
	}
	pending := map[uint32]int64{}
	off := int64(0)
	var hdr [walHdrSize]byte
	for off+walHdrSize <= size {
		if _, rerr := f.ReadAt(hdr[:], off); rerr != nil {
			break // torn header
		}
		fr := walFrame{
			pageNo: binary.LittleEndian.Uint32(hdr[0:]),
			flags:  binary.LittleEndian.Uint32(hdr[4:]),
			gen:    binary.LittleEndian.Uint64(hdr[8:]),
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[16:])
		var payload []byte
		next := off + walHdrSize
		if !fr.commit() {
			if next+PageSize > size {
				break // torn payload
			}
			payload = make([]byte, PageSize)
			if _, rerr := f.ReadAt(payload, next); rerr != nil {
				break
			}
			fr.payloadOff = next
			next += PageSize
		}
		if frameCRC(fr.pageNo, fr.flags, fr.gen, payload) != wantCRC {
			// pager.torn-page-accept: trust the torn frame anyway. A
			// commit frame with a bad checksum is accepted as a commit; a
			// page frame joins the pending set to be salvaged below.
			if !fs.Has(faults.PagerTornPageAccept) {
				break // torn or corrupted tail: stop, discard the rest
			}
		}
		if fr.commit() {
			for p, o := range pending {
				index[p] = o
			}
			clear(pending)
			commits++
			end = next
			if fs.Has(faults.PagerTruncatedReplay) && commits == 1 {
				return index, commits, end, nil
			}
		} else {
			pending[fr.pageNo] = fr.payloadOff
		}
		off = next
	}
	// Frames after the last commit belong to an uncommitted transaction:
	// discard them — unless the torn-page-accept fault salvages them as
	// an implicit commit.
	if fs.Has(faults.PagerTornPageAccept) && len(pending) > 0 {
		for p, o := range pending {
			index[p] = o
		}
		commits++
		end = off
	}
	return index, commits, end, nil
}
