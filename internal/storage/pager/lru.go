package pager

// lruCache is the page cache: page number → full on-disk page bytes, with
// LRU eviction and dirty-page tracking. Dirty pages (staged during a
// commit, not yet in the WAL) are pinned — eviction skips them, so a
// commit can always re-read its own staged writes; Commit marks them
// clean once their frames are durably in the WAL.
type lruCache struct {
	cap   int
	pages map[uint32]*cachedPage
	head  *cachedPage // most recently used
	tail  *cachedPage // least recently used

	hits, misses, evictions int
}

type cachedPage struct {
	no         uint32
	data       []byte // PageSize bytes
	dirty      bool
	prev, next *cachedPage
}

func newLRU(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &lruCache{cap: capacity, pages: make(map[uint32]*cachedPage, capacity)}
}

// get returns the cached page bytes and bumps recency.
func (c *lruCache) get(no uint32) ([]byte, bool) {
	p, ok := c.pages[no]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(p)
	return p.data, true
}

// put inserts or refreshes a page, evicting the least recently used clean
// page when over capacity.
func (c *lruCache) put(no uint32, data []byte, dirty bool) {
	if p, ok := c.pages[no]; ok {
		p.data = data
		p.dirty = dirty
		c.moveToFront(p)
		return
	}
	p := &cachedPage{no: no, data: data, dirty: dirty}
	c.pages[no] = p
	c.pushFront(p)
	for len(c.pages) > c.cap {
		if !c.evictOne() {
			break // every page dirty: exceed capacity until commit cleans them
		}
	}
}

// markClean clears the dirty pin after the page's frame is in the WAL.
func (c *lruCache) markClean(no uint32) {
	if p, ok := c.pages[no]; ok {
		p.dirty = false
	}
}

// evictOne drops the least recently used clean page.
func (c *lruCache) evictOne() bool {
	for p := c.tail; p != nil; p = p.prev {
		if p.dirty {
			continue
		}
		c.unlink(p)
		delete(c.pages, p.no)
		c.evictions++
		return true
	}
	return false
}

// reset empties the cache (pager Reset / recovery).
func (c *lruCache) reset() {
	clear(c.pages)
	c.head, c.tail = nil, nil
}

func (c *lruCache) len() int { return len(c.pages) }

func (c *lruCache) pushFront(p *cachedPage) {
	p.prev = nil
	p.next = c.head
	if c.head != nil {
		c.head.prev = p
	}
	c.head = p
	if c.tail == nil {
		c.tail = p
	}
}

func (c *lruCache) unlink(p *cachedPage) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		c.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		c.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (c *lruCache) moveToFront(p *cachedPage) {
	if c.head == p {
		return
	}
	c.unlink(p)
	c.pushFront(p)
}
