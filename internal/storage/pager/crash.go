package pager

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xerr"
)

// CrashPoint places a simulated power cut relative to the final commit.
type CrashPoint uint8

// Crash points.
const (
	// AfterSync cuts power after the final statement committed and
	// fsynced: recovery must restore the complete committed state.
	AfterSync CrashPoint = iota
	// BeforeSync cuts power inside the final commit, after its WAL frames
	// are written but before the fsync: the transaction is in the
	// unsynced tail, and recovery must restore either the state before it
	// (tail lost or torn) or after it (tail happened to hit the platter)
	// — atomicity, never anything in between.
	BeforeSync
)

// String names the point.
func (p CrashPoint) String() string {
	if p == BeforeSync {
		return "beforesync"
	}
	return "aftersync"
}

// CrashPlan is one deterministic, seed-replayable crash schedule: where
// the power cut lands and what happens to the unsynced write tail.
// Serialized into recovery-oracle reports so the reducer can replay the
// identical crash.
type CrashPlan struct {
	Point CrashPoint
	Mode  CrashMode
	// Frac is the salvaged fraction of unsynced bytes for Torn/BitFlip
	// (quantized to hundredths so String/Parse round-trip exactly).
	Frac float64
	// BitOffset selects the flipped bit for BitFlip.
	BitOffset int
}

// String serializes the plan ("beforesync:torn:0.50:0").
func (p CrashPlan) String() string {
	return fmt.Sprintf("%s:%s:%.2f:%d", p.Point, p.Mode, p.Frac, p.BitOffset)
}

// ParseCrashPlan deserializes a plan produced by String.
func ParseCrashPlan(s string) (CrashPlan, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return CrashPlan{}, xerr.New(xerr.CodeUnsupported, "pager: bad crash plan %q", s)
	}
	var p CrashPlan
	switch parts[0] {
	case "aftersync":
		p.Point = AfterSync
	case "beforesync":
		p.Point = BeforeSync
	default:
		return CrashPlan{}, xerr.New(xerr.CodeUnsupported, "pager: bad crash point %q", parts[0])
	}
	switch parts[1] {
	case "losttail":
		p.Mode = LostTail
	case "torn":
		p.Mode = Torn
	case "bitflip":
		p.Mode = BitFlip
	default:
		return CrashPlan{}, xerr.New(xerr.CodeUnsupported, "pager: bad crash mode %q", parts[1])
	}
	frac, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return CrashPlan{}, xerr.New(xerr.CodeUnsupported, "pager: bad crash fraction %q", parts[2])
	}
	p.Frac = frac
	bit, err := strconv.Atoi(parts[3])
	if err != nil {
		return CrashPlan{}, xerr.New(xerr.CodeUnsupported, "pager: bad bit offset %q", parts[3])
	}
	p.BitOffset = bit
	return p, nil
}

// RandomPlan derives a crash schedule from a campaign's random source
// (any deterministic intn(n) function), so schedules replay with the
// seed. Fractions are quantized for exact serialization round trips.
func RandomPlan(intn func(int) int) CrashPlan {
	p := CrashPlan{}
	if intn(2) == 1 {
		p.Point = BeforeSync
	}
	switch intn(3) {
	case 0:
		p.Mode = LostTail
	case 1:
		p.Mode = Torn
	default:
		p.Mode = BitFlip
	}
	if p.Mode != LostTail {
		p.Frac = float64(25*(1+intn(4))) / 100 // 0.25 .. 1.00
		p.BitOffset = intn(1 << 16)
	}
	return p
}
