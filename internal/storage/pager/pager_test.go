package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/xerr"
)

// image builds a deterministic test image of n bytes.
func image(n int, seed byte) []byte {
	img := make([]byte, n)
	for i := range img {
		img[i] = byte(i)*7 + seed
	}
	return img
}

func mustOpen(t *testing.T, vfs VFS, dir string, fs *faults.Set) *Pager {
	t.Helper()
	p, err := Open(vfs, dir, fs)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return p
}

func mustCommit(t *testing.T, p *Pager, img []byte) {
	t.Helper()
	if err := p.Commit(img); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func mustLoad(t *testing.T, p *Pager) []byte {
	t.Helper()
	img, err := p.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return img
}

func TestCommitLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	defer p.Close()

	// Sizes straddle page boundaries: sub-page, exact multiple, spill.
	for i, n := range []int{100, PagePayload, PagePayload * 3, PagePayload*2 + 17} {
		img := image(n, byte(i))
		mustCommit(t, p, img)
		if got := mustLoad(t, p); !bytes.Equal(got, img) {
			t.Fatalf("size %d: loaded image differs from committed", n)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh pager over the same directory sees the last committed image.
	p2 := mustOpen(t, OS(), dir, nil)
	defer p2.Close()
	want := image(PagePayload*2+17, 3)
	if got := mustLoad(t, p2); !bytes.Equal(got, want) {
		t.Fatal("reopened pager lost the committed image")
	}
}

func TestFreshDatabaseLoadsNil(t *testing.T) {
	p := mustOpen(t, OS(), t.TempDir(), nil)
	defer p.Close()
	if img := mustLoad(t, p); img != nil {
		t.Fatalf("fresh database loaded %d bytes, want nil", len(img))
	}
}

// TestRecoveryFromWAL reopens a directory whose commits live only in the
// WAL (no checkpoint ran) and checks the replay path restores them.
func TestRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	img := image(PagePayload+50, 9)
	mustCommit(t, p, img)
	if p.Stats().Checkpoints != 0 {
		t.Fatal("test premise broken: commit checkpointed early")
	}
	// No Close: simulate an abrupt stop after the fsynced commit. The OS
	// file handles just leak until the test ends.
	p2 := mustOpen(t, OS(), dir, nil)
	defer p2.Close()
	if p2.Stats().Recoveries == 0 {
		t.Fatal("reopen did not replay any WAL commits")
	}
	if got := mustLoad(t, p2); !bytes.Equal(got, img) {
		t.Fatal("WAL replay did not restore the committed image")
	}
}

// TestTornWALTailDiscarded cuts the final commit frame short and checks
// recovery stops at the torn tail, restoring the previous commit.
func TestTornWALTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	first := image(200, 1)
	mustCommit(t, p, first)
	mustCommit(t, p, image(300, 2))
	// Tear the WAL: drop 7 bytes, destroying the second commit frame.
	walPath := filepath.Join(dir, "db.wal")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	p2 := mustOpen(t, OS(), dir, nil)
	defer p2.Close()
	if got := mustLoad(t, p2); !bytes.Equal(got, first) {
		t.Fatal("torn tail not discarded: recovery did not restore the first commit")
	}
}

// TestCorruptPageDetected flips a payload byte in the main file and checks
// the page checksum rejects it.
func TestCorruptPageDetected(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	mustCommit(t, p, image(PagePayload, 4))
	if err := p.Close(); err != nil { // checkpoint into db.pg
		t.Fatal(err)
	}
	dbPath := filepath.Join(dir, "db.pg")
	f, err := os.OpenFile(dbPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Page 1, somewhere inside the payload.
	if _, err := f.WriteAt([]byte{0xFF}, PageSize+pageHdrSize+100); err != nil {
		t.Fatal(err)
	}
	f.Close()
	p2 := mustOpen(t, OS(), dir, nil)
	defer p2.Close()
	_, err = p2.Load()
	if code, _ := xerr.CodeOf(err); code != xerr.CodeCorrupt {
		t.Fatalf("Load on corrupted page: err=%v, want CodeCorrupt", err)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	defer p.Close()
	p.CheckpointBytes = 1 // every commit checkpoints
	img := image(PagePayload*2, 5)
	mustCommit(t, p, img)
	if p.Stats().Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1", p.Stats().Checkpoints)
	}
	st, err := os.Stat(filepath.Join(dir, "db.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("WAL is %d bytes after checkpoint, want 0", st.Size())
	}
	if got := mustLoad(t, p); !bytes.Equal(got, img) {
		t.Fatal("image lost across checkpoint")
	}
	// And it survives a reopen purely from the main file.
	p.Close()
	p2 := mustOpen(t, OS(), dir, nil)
	defer p2.Close()
	if got := mustLoad(t, p2); !bytes.Equal(got, img) {
		t.Fatal("image lost after checkpoint + reopen")
	}
}

func TestResetWipesFiles(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	defer p.Close()
	mustCommit(t, p, image(500, 6))
	if err := p.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if img := mustLoad(t, p); img != nil {
		t.Fatal("Reset did not wipe the committed image")
	}
	for _, name := range []string{"db.pg", "db.wal"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != 0 {
			t.Fatalf("%s is %d bytes after Reset, want 0", name, st.Size())
		}
	}
}

func TestLRUEvictionAndDirtyPinning(t *testing.T) {
	c := newLRU(2)
	pg := func(b byte) []byte { return bytes.Repeat([]byte{b}, PageSize) }
	c.put(1, pg(1), false)
	c.put(2, pg(2), false)
	c.put(3, pg(3), false) // evicts page 1 (LRU)
	if _, ok := c.get(1); ok {
		t.Fatal("page 1 not evicted")
	}
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}
	// Recency: touching 2 makes 3 the eviction victim.
	c.get(2)
	c.put(4, pg(4), false)
	if _, ok := c.get(3); ok {
		t.Fatal("page 3 not evicted despite being LRU")
	}
	if _, ok := c.get(2); !ok {
		t.Fatal("recently-used page 2 evicted")
	}
	// Dirty pages are pinned: capacity is exceeded rather than losing them.
	c.reset()
	c.put(10, pg(10), true)
	c.put(11, pg(11), true)
	c.put(12, pg(12), true)
	if c.len() != 3 {
		t.Fatalf("cache holds %d pages, want 3 (dirty pages pinned)", c.len())
	}
	for no := uint32(10); no <= 12; no++ {
		if _, ok := c.get(no); !ok {
			t.Fatalf("dirty page %d evicted", no)
		}
	}
	// Cleaning unpins: the next insert can evict again.
	c.markClean(10)
	c.put(13, pg(13), false)
	if _, ok := c.get(10); ok {
		t.Fatal("cleaned page 10 not evicted")
	}
}

func TestPagerCacheStats(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil)
	defer p.Close()
	img := image(PagePayload*2, 7)
	mustCommit(t, p, img)
	base := p.Stats()
	mustLoad(t, p) // pages staged by Commit are still cached
	if got := p.Stats().CacheHits; got <= base.CacheHits {
		t.Fatalf("CacheHits = %d after warm Load, want > %d", got, base.CacheHits)
	}
	p.cache.reset()
	miss := p.Stats()
	mustLoad(t, p)
	if got := p.Stats().CacheMisses; got <= miss.CacheMisses {
		t.Fatalf("CacheMisses = %d after cold Load, want > %d", got, miss.CacheMisses)
	}
}

func TestSimVFSCrashModes(t *testing.T) {
	write := func(t *testing.T, f File, data []byte, off int64) {
		t.Helper()
		if _, err := f.WriteAt(data, off); err != nil {
			t.Fatal(err)
		}
	}
	read := func(t *testing.T, vfs VFS, path string) []byte {
		t.Helper()
		f, err := vfs.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		size, _ := f.Size()
		buf := make([]byte, size)
		if size > 0 {
			f.ReadAt(buf, 0)
		}
		return buf
	}

	t.Run("losttail", func(t *testing.T) {
		dir := t.TempDir()
		sim := NewSim(OS())
		path := filepath.Join(dir, "f")
		f, _ := sim.Open(path)
		write(t, f, bytes.Repeat([]byte{1}, 10), 0)
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		write(t, f, bytes.Repeat([]byte{2}, 10), 10) // unsynced
		sim.Crash(LostTail, 0, 0)
		got := read(t, sim, path)
		if !bytes.Equal(got, bytes.Repeat([]byte{1}, 10)) {
			t.Fatalf("after LostTail crash got %d bytes %v, want 10 synced bytes", len(got), got)
		}
	})

	t.Run("torn", func(t *testing.T) {
		dir := t.TempDir()
		sim := NewSim(OS())
		path := filepath.Join(dir, "f")
		f, _ := sim.Open(path)
		write(t, f, bytes.Repeat([]byte{3}, 100), 0) // all unsynced
		sim.Crash(Torn, 0.5, 0)
		got := read(t, sim, path)
		// Half the unsynced bytes survive, in write order: a 50-byte prefix.
		if len(got) != 50 || !bytes.Equal(got, bytes.Repeat([]byte{3}, 50)) {
			t.Fatalf("after Torn 0.5 crash got %d bytes, want 50-byte prefix", len(got))
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		dir := t.TempDir()
		sim := NewSim(OS())
		path := filepath.Join(dir, "f")
		f, _ := sim.Open(path)
		write(t, f, make([]byte, 8), 0) // zeros, unsynced
		sim.Crash(BitFlip, 1.0, 11)     // byte 1, bit 3
		got := read(t, sim, path)
		want := make([]byte, 8)
		want[1] = 1 << 3
		if !bytes.Equal(got, want) {
			t.Fatalf("after BitFlip crash got %v, want %v", got, want)
		}
	})

	t.Run("synced-writes-survive-all-modes", func(t *testing.T) {
		for _, mode := range []CrashMode{LostTail, Torn, BitFlip} {
			dir := t.TempDir()
			sim := NewSim(OS())
			path := filepath.Join(dir, "f")
			f, _ := sim.Open(path)
			data := bytes.Repeat([]byte{9}, 64)
			write(t, f, data, 0)
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			sim.Crash(mode, 1.0, 5)
			if got := read(t, sim, path); !bytes.Equal(got, data) {
				t.Fatalf("mode %s destroyed synced content", mode)
			}
		}
	})
}

func TestCrashPlanStringParseRoundtrip(t *testing.T) {
	plans := []CrashPlan{
		{},
		{Point: AfterSync, Mode: LostTail},
		{Point: BeforeSync, Mode: Torn, Frac: 0.25, BitOffset: 0},
		{Point: BeforeSync, Mode: BitFlip, Frac: 1.00, BitOffset: 65535},
		{Point: AfterSync, Mode: BitFlip, Frac: 0.75, BitOffset: 42801},
	}
	for _, want := range plans {
		got, err := ParseCrashPlan(want.String())
		if err != nil {
			t.Fatalf("ParseCrashPlan(%q): %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v, want %+v", want.String(), got, want)
		}
	}
	for _, bad := range []string{"", "aftersync", "nowhere:torn:0.5:0", "aftersync:melt:0.5:0", "aftersync:torn:x:0", "aftersync:torn:0.5:y"} {
		if _, err := ParseCrashPlan(bad); err == nil {
			t.Fatalf("ParseCrashPlan(%q) accepted garbage", bad)
		}
	}
}

// TestRandomPlanDeterministic checks the schedule depends only on the
// random stream — the seed-replayability the oracle's reports rely on.
func TestRandomPlanDeterministic(t *testing.T) {
	mk := func() func(int) int {
		state := int64(12345)
		return func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			v := int(uint64(state)>>33) % n
			return v
		}
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		pa, pb := RandomPlan(a), RandomPlan(b)
		if pa != pb {
			t.Fatalf("plan %d diverged: %s vs %s", i, pa, pb)
		}
	}
}

// TestArmedBeforeSyncCrash arms a mid-commit power cut: the commit must
// die with CodeIO, the pager must go dead, and a reopen must recover the
// pre-commit state (the tail was lost before its fsync).
func TestArmedBeforeSyncCrash(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(OS())
	p := mustOpen(t, sim, dir, nil)
	first := image(300, 1)
	mustCommit(t, p, first)

	p.Arm(CrashPlan{Point: BeforeSync, Mode: LostTail})
	err := p.Commit(image(400, 2))
	if code, _ := xerr.CodeOf(err); code != xerr.CodeIO {
		t.Fatalf("armed commit: err=%v, want CodeIO", err)
	}
	if !p.Crashed() {
		t.Fatal("pager not marked crashed")
	}
	if err := p.Commit(image(10, 3)); err == nil {
		t.Fatal("dead pager accepted a commit")
	}
	if _, err := p.Load(); err == nil {
		t.Fatal("dead pager served a load")
	}

	p2 := mustOpen(t, sim, dir, nil)
	defer p2.Close()
	if got := mustLoad(t, p2); !bytes.Equal(got, first) {
		t.Fatal("recovery after mid-commit crash did not restore the prior commit")
	}
}

// TestAfterSyncCrashBenign checks the clean power-cut model: everything
// the sound pager reported committed survives any crash mode.
func TestAfterSyncCrashBenign(t *testing.T) {
	for _, plan := range []CrashPlan{
		{Point: AfterSync, Mode: LostTail},
		{Point: AfterSync, Mode: Torn, Frac: 0.5, BitOffset: 7},
		{Point: AfterSync, Mode: BitFlip, Frac: 1.0, BitOffset: 99},
	} {
		dir := t.TempDir()
		sim := NewSim(OS())
		p := mustOpen(t, sim, dir, nil)
		img := image(PagePayload+123, 8)
		mustCommit(t, p, img)
		p.Crash(plan)
		p2 := mustOpen(t, sim, dir, nil)
		if got := mustLoad(t, p2); !bytes.Equal(got, img) {
			t.Fatalf("plan %s: committed state lost across after-sync crash", plan)
		}
		p2.Close()
	}
}

// TestResetRevivesCrashedPager mirrors the pooled-lifecycle path: a
// crashed pager must come back as a pristine empty database.
func TestResetRevivesCrashedPager(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(OS())
	p := mustOpen(t, sim, dir, nil)
	mustCommit(t, p, image(100, 1))
	p.Crash(CrashPlan{Point: AfterSync, Mode: LostTail})
	if err := p.Reset(); err != nil {
		t.Fatalf("Reset after crash: %v", err)
	}
	if img := mustLoad(t, p); img != nil {
		t.Fatal("revived pager still holds pre-crash state")
	}
	mustCommit(t, p, image(50, 2))
	if got := mustLoad(t, p); !bytes.Equal(got, image(50, 2)) {
		t.Fatal("revived pager cannot commit")
	}
	p.Close()
}

// TestFaultLostFlush checks the injected skipped-fsync fault actually
// loses claimed-committed transactions on a power cut.
func TestFaultLostFlush(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(OS())
	fs := faults.NewSet(faults.PagerLostFlush)
	p := mustOpen(t, sim, dir, fs)
	mustCommit(t, p, image(100, 1)) // "committed", but never fsynced
	p.Crash(CrashPlan{Point: AfterSync, Mode: LostTail})
	p2 := mustOpen(t, sim, dir, fs)
	defer p2.Close()
	if img := mustLoad(t, p2); img != nil {
		t.Fatal("lost-flush fault: unsynced commit survived a LostTail crash")
	}
}

// TestFaultTruncatedReplay checks the injected replay bug drops every
// commit after the first.
func TestFaultTruncatedReplay(t *testing.T) {
	dir := t.TempDir()
	p := mustOpen(t, OS(), dir, nil) // sound pager writes the WAL
	first := image(100, 1)
	mustCommit(t, p, first)
	second := image(200, 2)
	mustCommit(t, p, second)
	// No Close (a Close would checkpoint and truncate the WAL).
	p2 := mustOpen(t, OS(), dir, faults.NewSet(faults.PagerTruncatedReplay))
	defer p2.Close()
	if got := mustLoad(t, p2); !bytes.Equal(got, first) {
		t.Fatal("truncated-replay fault: expected only the first commit to survive")
	}
}

// FuzzWALRecovery feeds arbitrary bytes to the WAL replay and the full
// pager open path: recovery must never panic, and whatever index it
// returns must stay inside the file.
func FuzzWALRecovery(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, walHdrSize+PageSize))
	// A well-formed single-commit WAL as a structured seed.
	dir := f.TempDir()
	p, err := Open(OS(), dir, nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := p.Commit(image(PagePayload+10, 1)); err != nil {
		f.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, "db.wal"))
	if err != nil {
		f.Fatal(err)
	}
	p.Close()
	f.Add(wal)
	f.Add(wal[:len(wal)-5]) // torn tail
	mut := append([]byte(nil), wal...)
	mut[len(mut)/2] ^= 0x40 // corrupted frame
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, fs := range []*faults.Set{
			nil,
			faults.NewSet(faults.PagerTornPageAccept),
			faults.NewSet(faults.PagerTruncatedReplay),
		} {
			dir := t.TempDir()
			walPath := filepath.Join(dir, "db.wal")
			if err := os.WriteFile(walPath, data, 0o644); err != nil {
				t.Fatal(err)
			}
			wf, err := OS().Open(walPath)
			if err != nil {
				t.Fatal(err)
			}
			index, commits, end, err := replayWAL(wf, fs)
			wf.Close()
			if err != nil {
				t.Fatalf("replayWAL errored on in-memory-readable file: %v", err)
			}
			if end > int64(len(data)) {
				t.Fatalf("replay end %d beyond file size %d", end, len(data))
			}
			if commits > 0 && len(index) == 0 && end == 0 {
				t.Fatal("commits counted but nothing indexed and no end")
			}
			for no, off := range index {
				if off < 0 || off+PageSize > int64(len(data)) {
					t.Fatalf("index page %d → offset %d out of bounds (file %d bytes)", no, off, len(data))
				}
			}
			// The full open path must also survive: a bad WAL may yield a
			// corrupt-image error from Load, never a panic.
			p, err := Open(OS(), dir, fs)
			if err != nil {
				continue
			}
			_, _ = p.Load()
			p.Close()
		}
	})
}
