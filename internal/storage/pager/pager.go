// Package pager is the durable page-based storage backend: a fixed-size
// page file with CRC32-checked page headers, an LRU page cache with
// dirty-page tracking, and a write-ahead log (append → fsync →
// checkpoint) with automatic recovery on open.
//
// The engine layers on top by serializing its committed logical state
// into a byte image per transaction; the pager chunks the image into
// pages, appends only the changed pages to the WAL followed by a commit
// frame, fsyncs, and periodically checkpoints the WAL back into the main
// file. Opening a pager replays the WAL: committed transactions are
// applied in order and the torn tail of an unsynced final transaction is
// discarded by checksum.
//
// Crash-point fault injection is built in at two seams: a SimVFS overlay
// models power cuts over real files (unsynced writes are lost, torn, or
// bit-flipped per a deterministic, seed-replayable CrashPlan), and the
// injectable durability faults from internal/faults deviate the commit
// and recovery protocols (skipped fsync, trusted torn tails, truncated
// replay) for the recovery-equivalence oracle to catch.
package pager

import (
	"bytes"
	"path/filepath"

	"repro/internal/faults"
	"repro/internal/xerr"
)

// DefaultCheckpointBytes is the WAL size that triggers a checkpoint.
const DefaultCheckpointBytes = 1 << 20

// Stats counts pager work.
type Stats struct {
	Commits     int
	WalFrames   int
	Checkpoints int
	Recoveries  int // WAL commit frames replayed at Open
	CacheHits   int
	CacheMisses int
}

// Pager is one durable database: a page file, its WAL, and the cache.
// Callers serialize access (the engine holds its own lock).
type Pager struct {
	vfs     VFS
	dbPath  string
	walPath string
	fs      *faults.Set

	dbf, walf File
	cache     *lruCache
	index     map[uint32]int64 // page → latest committed WAL payload offset
	m         meta
	walEnd    int64

	// CheckpointBytes overrides the WAL checkpoint threshold (tests and
	// benchmarks lower it to exercise the checkpoint path).
	CheckpointBytes int64

	armed   *CrashPlan
	closed  bool
	crashed bool

	stats Stats
}

// Open opens (or creates) the pager files in dir and recovers from the
// WAL. The injected-fault set deviates the commit/recovery protocol at
// the registered durability-fault sites (nil = sound pager).
func Open(vfs VFS, dir string, fs *faults.Set) (*Pager, error) {
	p := &Pager{
		vfs:             vfs,
		dbPath:          filepath.Join(dir, "db.pg"),
		walPath:         filepath.Join(dir, "db.wal"),
		fs:              fs,
		cache:           newLRU(0),
		CheckpointBytes: DefaultCheckpointBytes,
	}
	if err := p.openFiles(); err != nil {
		return nil, err
	}
	if err := p.recover(); err != nil {
		p.dbf.Close()
		p.walf.Close()
		return nil, err
	}
	return p, nil
}

func (p *Pager) openFiles() error {
	var err error
	if p.dbf, err = p.vfs.Open(p.dbPath); err != nil {
		return err
	}
	if p.walf, err = p.vfs.Open(p.walPath); err != nil {
		p.dbf.Close()
		return err
	}
	return nil
}

// recover replays the WAL and loads the committed meta page.
func (p *Pager) recover() error {
	index, commits, end, err := replayWAL(p.walf, p.fs)
	if err != nil {
		return xerr.New(xerr.CodeIO, "pager: WAL replay: %v", err)
	}
	p.index = index
	p.walEnd = end
	p.stats.Recoveries += commits
	p.cache.reset()

	pg, err := p.readPage(0)
	if err != nil {
		return err
	}
	if pg == nil {
		p.m = meta{} // fresh database
		return nil
	}
	payload, err := p.verify(0, pg)
	if err != nil {
		return err
	}
	m, err := decodeMeta(payload)
	if err != nil {
		return err
	}
	p.m = m
	return nil
}

// verify checks a page checksum — unless the torn-page-accept fault has
// recovery trusting pages blindly.
func (p *Pager) verify(pageNo uint32, pg []byte) ([]byte, error) {
	if p.fs.Has(faults.PagerTornPageAccept) {
		if len(pg) != PageSize {
			return nil, xerr.New(xerr.CodeCorrupt, "pager: page %d is %d bytes", pageNo, len(pg))
		}
		return pg[pageHdrSize:], nil
	}
	return verifyPage(pageNo, pg)
}

// readPage returns the full on-disk bytes of a page — cache, then WAL,
// then base file — or nil if the page does not exist anywhere.
func (p *Pager) readPage(no uint32) ([]byte, error) {
	if pg, ok := p.cache.get(no); ok {
		p.stats.CacheHits++
		return pg, nil
	}
	p.stats.CacheMisses++
	pg := make([]byte, PageSize)
	if off, ok := p.index[no]; ok {
		if _, err := p.walf.ReadAt(pg, off); err != nil {
			return nil, xerr.New(xerr.CodeIO, "pager: WAL read page %d: %v", no, err)
		}
		p.cache.put(no, pg, false)
		return pg, nil
	}
	size, err := p.dbf.Size()
	if err != nil {
		return nil, xerr.New(xerr.CodeIO, "pager: size: %v", err)
	}
	off := int64(no) * PageSize
	if off+PageSize > size {
		return nil, nil
	}
	if _, err := p.dbf.ReadAt(pg, off); err != nil {
		return nil, xerr.New(xerr.CodeIO, "pager: read page %d: %v", no, err)
	}
	p.cache.put(no, pg, false)
	return pg, nil
}

// Load reconstructs the committed database image (nil for a fresh
// database). Page checksums are verified on the way.
func (p *Pager) Load() ([]byte, error) {
	if err := p.live(); err != nil {
		return nil, err
	}
	if p.m.pageCount == 0 {
		return nil, nil
	}
	img := make([]byte, 0, p.m.imageLen)
	for n := uint32(1); n <= p.m.pageCount; n++ {
		pg, err := p.readPage(n)
		if err != nil {
			return nil, err
		}
		if pg == nil {
			return nil, xerr.New(xerr.CodeCorrupt, "pager: page %d missing", n)
		}
		payload, err := p.verify(n, pg)
		if err != nil {
			return nil, err
		}
		img = append(img, payload...)
	}
	if uint64(len(img)) < p.m.imageLen {
		return nil, xerr.New(xerr.CodeCorrupt, "pager: image truncated: %d of %d bytes", len(img), p.m.imageLen)
	}
	return img[:p.m.imageLen], nil
}

// Commit makes image the new durably-committed database state: changed
// pages are appended to the WAL, a commit frame seals the transaction,
// and the log is fsynced (WAL append → fsync → checkpoint). An armed
// BeforeSync crash plan cuts power between the append and the fsync.
func (p *Pager) Commit(image []byte) error {
	if err := p.live(); err != nil {
		return err
	}
	gen := p.m.gen + 1
	payloads := paginate(image, gen)

	type staged struct {
		no  uint32
		pg  []byte
		off int64
	}
	var dirty []staged
	for n, payload := range payloads {
		no := uint32(n)
		enc := encodePage(no, payload)
		cur, err := p.readPage(no)
		if err != nil {
			return err
		}
		if cur != nil && bytes.Equal(cur, enc) {
			continue
		}
		p.cache.put(no, enc, true)
		dirty = append(dirty, staged{no: no, pg: enc})
	}

	// WAL append: one frame per dirty page, then the commit frame.
	off := p.walEnd
	var err error
	for i := range dirty {
		dirty[i].off = off + walHdrSize
		if off, err = appendFrame(p.walf, off, dirty[i].no, 0, gen, dirty[i].pg); err != nil {
			return xerr.New(xerr.CodeIO, "pager: WAL append: %v", err)
		}
		p.stats.WalFrames++
	}
	if off, err = appendFrame(p.walf, off, commitMark, flagCommit, gen, nil); err != nil {
		return xerr.New(xerr.CodeIO, "pager: WAL commit frame: %v", err)
	}
	p.stats.WalFrames++

	// Crash point: between the WAL append and the fsync.
	if p.armed != nil && p.armed.Point == BeforeSync {
		plan := *p.armed
		p.armed = nil
		p.crashNow(plan)
		return xerr.New(xerr.CodeIO, "pager: simulated power loss during commit")
	}

	// pager.wal-lost-flush: report the commit durable without fsyncing.
	if !p.fs.Has(faults.PagerLostFlush) {
		if err := p.walf.Sync(); err != nil {
			return xerr.New(xerr.CodeIO, "pager: WAL fsync: %v", err)
		}
	}

	for _, s := range dirty {
		p.index[s.no] = s.off
		p.cache.markClean(s.no)
	}
	p.walEnd = off
	p.m = meta{pageCount: uint32(len(payloads) - 1), imageLen: uint64(len(image)), gen: gen}
	p.stats.Commits++

	if p.walEnd >= p.CheckpointBytes {
		return p.Checkpoint()
	}
	return nil
}

// Checkpoint copies the latest committed page images from the WAL into
// the main file, fsyncs it, and truncates the WAL.
func (p *Pager) Checkpoint() error {
	if err := p.live(); err != nil {
		return err
	}
	pg := make([]byte, PageSize)
	for no, off := range p.index {
		if _, err := p.walf.ReadAt(pg, off); err != nil {
			return xerr.New(xerr.CodeIO, "pager: checkpoint read: %v", err)
		}
		if _, err := p.dbf.WriteAt(pg, int64(no)*PageSize); err != nil {
			return xerr.New(xerr.CodeIO, "pager: checkpoint write: %v", err)
		}
	}
	if err := p.dbf.Sync(); err != nil {
		return xerr.New(xerr.CodeIO, "pager: db fsync: %v", err)
	}
	if err := p.walf.Truncate(0); err != nil {
		return xerr.New(xerr.CodeIO, "pager: WAL truncate: %v", err)
	}
	if err := p.walf.Sync(); err != nil {
		return xerr.New(xerr.CodeIO, "pager: WAL fsync: %v", err)
	}
	clear(p.index)
	p.walEnd = 0
	p.stats.Checkpoints++
	return nil
}

// Arm schedules a BeforeSync crash inside the next commit. AfterSync
// plans need no arming — trigger them with Crash directly.
func (p *Pager) Arm(plan CrashPlan) { p.armed = &plan }

// Disarm cancels an armed crash that never fired.
func (p *Pager) Disarm() { p.armed = nil }

// Crash simulates a power cut now: the unsynced write tail is resolved
// per the plan's mode and the pager goes dead (every later call fails
// with CodeIO) until a new Open recovers from the surviving files.
// Idempotent — a pager already dead from an armed mid-commit crash stays
// as it fell.
func (p *Pager) Crash(plan CrashPlan) {
	if p.closed {
		return
	}
	p.crashNow(plan)
}

func (p *Pager) crashNow(plan CrashPlan) {
	if sim, ok := p.vfs.(*SimVFS); ok {
		sim.Crash(plan.Mode, plan.Frac, plan.BitOffset)
	}
	p.dbf.Close()
	p.walf.Close()
	p.closed = true
	p.crashed = true
}

// Reset restores a pristine empty database: both files truncated, cache
// and WAL index cleared. It revives a crashed pager (pooled engine
// lifecycles reset between databases).
func (p *Pager) Reset() error {
	if p.closed {
		if err := p.openFiles(); err != nil {
			return err
		}
		p.closed, p.crashed = false, false
	}
	if err := p.dbf.Truncate(0); err != nil {
		return xerr.New(xerr.CodeIO, "pager: reset: %v", err)
	}
	if err := p.dbf.Sync(); err != nil {
		return xerr.New(xerr.CodeIO, "pager: reset: %v", err)
	}
	if err := p.walf.Truncate(0); err != nil {
		return xerr.New(xerr.CodeIO, "pager: reset: %v", err)
	}
	if err := p.walf.Sync(); err != nil {
		return xerr.New(xerr.CodeIO, "pager: reset: %v", err)
	}
	clear(p.index)
	p.cache.reset()
	p.m = meta{}
	p.walEnd = 0
	p.armed = nil
	return nil
}

// Close checkpoints and closes the files, leaving them on disk for a
// later Open.
func (p *Pager) Close() error {
	if p.closed {
		return nil
	}
	err := p.Checkpoint()
	if cerr := p.dbf.Close(); err == nil {
		err = cerr
	}
	if cerr := p.walf.Close(); err == nil {
		err = cerr
	}
	p.closed = true
	return err
}

// Stats returns the work counters.
func (p *Pager) Stats() Stats { return p.stats }

// Crashed reports whether the pager died to a simulated power cut.
func (p *Pager) Crashed() bool { return p.crashed }

// CanCrash reports whether the VFS supports simulated power cuts.
func (p *Pager) CanCrash() bool {
	_, ok := p.vfs.(*SimVFS)
	return ok
}

func (p *Pager) live() error {
	if p.crashed {
		return xerr.New(xerr.CodeIO, "pager: database is dead after simulated crash")
	}
	if p.closed {
		return xerr.New(xerr.CodeIO, "pager: database is closed")
	}
	return nil
}
