package pager

import (
	"io"
	"os"
	"sync"

	"repro/internal/xerr"
)

// File is the pager's view of one backing file. It is the minimal surface
// the page and WAL layers need: positioned reads and writes, truncation,
// durability (Sync), and size.
type File interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Size() (int64, error)
	Close() error
}

// VFS opens and removes backing files. Two implementations ship: OS()
// returns the real filesystem, and NewSim wraps any VFS with a volatile
// write cache whose loss on a simulated power cut is deterministic — the
// substrate of the crash-point fault-injection harness.
type VFS interface {
	Open(path string) (File, error)
	Remove(path string) error
}

// osVFS is the real filesystem.
type osVFS struct{}

// OS returns the real-filesystem VFS.
func OS() VFS { return osVFS{} }

func (osVFS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, xerr.New(xerr.CodeIO, "pager: open %s: %v", path, err)
	}
	return osFile{f}, nil
}

func (osVFS) Remove(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return xerr.New(xerr.CodeIO, "pager: remove %s: %v", path, err)
	}
	return nil
}

type osFile struct{ f *os.File }

func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// CrashMode selects what happens to the unsynced write tail at a
// simulated power cut.
type CrashMode uint8

// Crash modes.
const (
	// LostTail drops every unsynced write: the clean power-cut model.
	LostTail CrashMode = iota
	// Torn persists a prefix (Frac) of the unsynced bytes, in write
	// order, cutting the final write mid-way — the torn-page model.
	Torn
	// BitFlip persists a prefix like Torn and additionally flips one bit
	// inside the persisted tail — the corrupted-sector model.
	BitFlip
)

// String names the mode (used in serialized crash plans).
func (m CrashMode) String() string {
	switch m {
	case LostTail:
		return "losttail"
	case Torn:
		return "torn"
	case BitFlip:
		return "bitflip"
	default:
		return "mode?"
	}
}

// SimVFS overlays a volatile write cache on a base VFS: writes land in
// memory, Sync flushes them to the base file and fsyncs, and Crash
// resolves the unsynced tail per a CrashMode — deterministically, so a
// crash schedule derived from a campaign seed replays byte-identically.
// Real files sit underneath; only the power-cut semantics are simulated.
type SimVFS struct {
	base VFS

	mu    sync.Mutex
	files map[string]*simFile
}

// NewSim wraps base with the volatile-cache crash simulation.
func NewSim(base VFS) *SimVFS {
	return &SimVFS{base: base, files: map[string]*simFile{}}
}

// Open implements VFS. Reopening a path returns a fresh handle over the
// same base file; unsynced writes never survive a close (the pager always
// syncs before a graceful close, so nothing is lost on the benign path).
func (s *SimVFS) Open(path string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[path]; ok && !f.closed {
		return f, nil
	}
	bf, err := s.base.Open(path)
	if err != nil {
		return nil, err
	}
	size, err := bf.Size()
	if err != nil {
		bf.Close()
		return nil, xerr.New(xerr.CodeIO, "pager: size %s: %v", path, err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := bf.ReadAt(buf, 0); err != nil && err != io.EOF {
			bf.Close()
			return nil, xerr.New(xerr.CodeIO, "pager: read %s: %v", path, err)
		}
	}
	f := &simFile{base: bf, buf: buf}
	s.files[path] = f
	return f, nil
}

// Remove implements VFS.
func (s *SimVFS) Remove(path string) error {
	s.mu.Lock()
	if f, ok := s.files[path]; ok {
		if !f.closed {
			f.base.Close()
			f.closed = true
		}
		delete(s.files, path)
	}
	s.mu.Unlock()
	return s.base.Remove(path)
}

// Crash simulates a power cut across every open file: each file's
// unsynced write tail is resolved per mode (see CrashMode), the result is
// forced to the base file, and the volatile cache is discarded. frac is
// the salvaged fraction of unsynced bytes for Torn/BitFlip; bitOff picks
// the flipped bit for BitFlip. Files stay usable afterwards — reads see
// exactly the post-crash durable content.
func (s *SimVFS) Crash(mode CrashMode, frac float64, bitOff int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.files {
		if !f.closed {
			f.crash(mode, frac, bitOff)
		}
	}
}

// writeOp is one unsynced mutation, in order. size < 0 marks a truncate
// to -size-1 bytes (so truncate-to-zero is representable).
type writeOp struct {
	off  int64
	size int64
}

// simFile is one file under crash simulation: buf is the logical content
// (base content plus unsynced writes), ops the unsynced mutations in
// order. Sync applies ops to the base file and fsyncs.
type simFile struct {
	mu     sync.Mutex
	base   File
	buf    []byte
	ops    []writeOp
	closed bool
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if grow := off + int64(len(p)) - int64(len(f.buf)); grow > 0 {
		f.buf = append(f.buf, make([]byte, grow)...)
	}
	copy(f.buf[off:], p)
	f.ops = append(f.ops, writeOp{off: off, size: int64(len(p))})
	return len(p), nil
}

func (f *simFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else if size > int64(len(f.buf)) {
		f.buf = append(f.buf, make([]byte, size-int64(len(f.buf)))...)
	}
	f.ops = append(f.ops, writeOp{off: size, size: -size - 1})
	return nil
}

func (f *simFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.buf)), nil
}

// Sync flushes the unsynced tail to the base file and fsyncs it.
func (f *simFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushLocked()
}

func (f *simFile) flushLocked() error {
	for _, op := range f.ops {
		if err := f.applyOp(op, int64(len(f.buf))); err != nil {
			return err
		}
	}
	f.ops = nil
	if err := f.base.Sync(); err != nil {
		return xerr.New(xerr.CodeIO, "pager: fsync: %v", err)
	}
	return nil
}

// applyOp replays one buffered mutation onto the base file. limit bounds
// reads from buf (the op may describe bytes later overwritten; buf holds
// the final content, which is what a replay in order converges to).
func (f *simFile) applyOp(op writeOp, limit int64) error {
	if op.size < 0 {
		if err := f.base.Truncate(-op.size - 1); err != nil {
			return xerr.New(xerr.CodeIO, "pager: truncate: %v", err)
		}
		return nil
	}
	end := op.off + op.size
	if end > limit {
		end = limit
	}
	if end <= op.off {
		return nil
	}
	if _, err := f.base.WriteAt(f.buf[op.off:end], op.off); err != nil {
		return xerr.New(xerr.CodeIO, "pager: write: %v", err)
	}
	return nil
}

// Close flushes and closes the base file (the graceful path; the pager
// syncs before closing, so this flush is normally a no-op).
func (f *simFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.flushLocked()
	if cerr := f.base.Close(); err == nil {
		err = cerr
	}
	return err
}

// crash resolves the unsynced tail per mode and makes the result the
// durable content.
func (f *simFile) crash(mode CrashMode, frac float64, bitOff int) {
	f.mu.Lock()
	defer f.mu.Unlock()

	var salvage int64 // unsynced bytes that survive, in write order
	if mode == Torn || mode == BitFlip {
		var total int64
		for _, op := range f.ops {
			if op.size > 0 {
				total += op.size
			}
		}
		salvage = int64(frac * float64(total))
	}

	// Rebuild durable content: base file as-is, plus the salvaged prefix
	// of the unsynced ops. A partially-salvaged write persists its prefix
	// (the torn write).
	var flipped []byte // salvaged byte region, for the bit flip
	for _, op := range f.ops {
		if op.size < 0 {
			if salvage > 0 {
				f.base.Truncate(-op.size - 1)
			}
			continue
		}
		if salvage <= 0 {
			break
		}
		n := op.size
		if n > salvage {
			n = op.size - (op.size - salvage) // prefix only
			n = salvage
		}
		end := op.off + n
		if end > int64(len(f.buf)) {
			end = int64(len(f.buf))
		}
		if end > op.off {
			seg := f.buf[op.off:end]
			f.base.WriteAt(seg, op.off)
			flipped = append(flipped, seg...)
		}
		salvage -= n
	}
	if mode == BitFlip && len(flipped) > 0 {
		i := bitOff / 8 % len(flipped)
		var b [1]byte
		b[0] = flipped[i] ^ (1 << (bitOff % 8))
		// Locate the byte's file offset: it sits inside one of the
		// salvaged segments; recompute by walking the ops again.
		off := f.locateSalvaged(i)
		if off >= 0 {
			f.base.WriteAt(b[:], off)
		}
	}
	f.base.Sync()
	f.ops = nil
	// Reload the durable content as the new logical content.
	size, err := f.base.Size()
	if err != nil {
		size = 0
	}
	buf := make([]byte, size)
	if size > 0 {
		f.base.ReadAt(buf, 0)
	}
	f.buf = buf
}

// locateSalvaged maps the i-th salvaged byte back to its file offset.
func (f *simFile) locateSalvaged(i int) int64 {
	seen := 0
	for _, op := range f.ops {
		if op.size <= 0 {
			continue
		}
		if i < seen+int(op.size) {
			return op.off + int64(i-seen)
		}
		seen += int(op.size)
	}
	// ops were cleared before the flip could be located; flip the byte in
	// place using the already-salvaged region bookkeeping instead.
	return -1
}
