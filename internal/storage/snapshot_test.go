package storage

import (
	"testing"

	"repro/internal/sqlval"
)

func rowVals(t *testing.T, td *TableData, rowid int64) []sqlval.Value {
	t.Helper()
	r, ok := td.Get(rowid)
	if !ok {
		t.Fatalf("rowid %d missing", rowid)
	}
	return r.Vals
}

func TestTableSnapshotRestore(t *testing.T) {
	td := NewTableData()
	td.Insert([]sqlval.Value{sqlval.Int(1)})
	td.Insert([]sqlval.Value{sqlval.Int(2)})
	snap := td.Snapshot()
	if snap.Rows() != 2 {
		t.Fatalf("snapshot rows = %d, want 2", snap.Rows())
	}

	// Mutate every way the engine does: insert, delete, add a column.
	td.Insert([]sqlval.Value{sqlval.Int(3)})
	td.Delete(1)
	td.AddColumn(sqlval.Text("pad"))
	if td.Len() != 2 {
		t.Fatalf("live len = %d, want 2", td.Len())
	}

	td.Restore(snap)
	if td.Len() != 2 {
		t.Fatalf("restored len = %d, want 2", td.Len())
	}
	for rid, want := range map[int64]int64{1: 1, 2: 2} {
		vals := rowVals(t, td, rid)
		if len(vals) != 1 {
			t.Fatalf("rowid %d width %d after restore (AddColumn leaked through cow)", rid, len(vals))
		}
		if got := vals[0].Int64(); got != want {
			t.Errorf("rowid %d = %v, want %d", rid, vals[0], want)
		}
	}
	// Rowid allocation rewinds too: the next insert reuses rowid 3.
	r := td.Insert([]sqlval.Value{sqlval.Int(9)})
	if r.Rowid != 3 {
		t.Errorf("post-restore rowid = %d, want 3", r.Rowid)
	}
}

func TestTableSnapshotSurvivesRepeatedRestore(t *testing.T) {
	td := NewTableData()
	td.Insert([]sqlval.Value{sqlval.Int(1)})
	snap := td.Snapshot()
	for i := 0; i < 3; i++ {
		td.Insert([]sqlval.Value{sqlval.Int(int64(100 + i))})
		td.Delete(1)
		td.Restore(snap)
		if td.Len() != 1 {
			t.Fatalf("round %d: len = %d, want 1", i, td.Len())
		}
		if got := rowVals(t, td, 1)[0].Int64(); got != 1 {
			t.Fatalf("round %d: rowid 1 = %v, want 1", i, rowVals(t, td, 1)[0])
		}
	}
}

func TestInterleavedSnapshots(t *testing.T) {
	td := NewTableData()
	td.Insert([]sqlval.Value{sqlval.Int(1)})
	snapA := td.Snapshot()
	td.Insert([]sqlval.Value{sqlval.Int(2)})
	snapB := td.Snapshot()

	td.Restore(snapA)
	td.Insert([]sqlval.Value{sqlval.Int(99)}) // must not clobber snapB's view
	td.Restore(snapB)
	if td.Len() != 2 {
		t.Fatalf("snapB len = %d, want 2", td.Len())
	}
	if got := rowVals(t, td, 2)[0].Int64(); got != 2 {
		t.Errorf("snapB rowid 2 = %v, want 2 (append-after-restore aliasing)", rowVals(t, td, 2)[0])
	}
}

func TestTableReset(t *testing.T) {
	td := NewTableData()
	for i := 0; i < 10; i++ {
		td.Insert([]sqlval.Value{sqlval.Int(int64(i))})
	}
	td.Reset()
	if td.Len() != 0 {
		t.Fatalf("len after reset = %d", td.Len())
	}
	if r := td.Insert([]sqlval.Value{sqlval.Int(7)}); r.Rowid != 1 {
		t.Errorf("rowid after reset = %d, want 1", r.Rowid)
	}
}

func TestIndexSnapshotRestore(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollNoCase}, []bool{false})
	ix.Insert([]sqlval.Value{sqlval.Text("a")}, 1)
	ix.Insert([]sqlval.Value{sqlval.Text("b")}, 2)
	snap := ix.Snapshot()
	if snap.Len() != 2 {
		t.Fatalf("snapshot len = %d", snap.Len())
	}

	ix.Insert([]sqlval.Value{sqlval.Text("A")}, 3) // shifts inside the prefix
	ix.Delete([]sqlval.Value{sqlval.Text("b")}, 2)
	ix.SetCollations([]sqlval.Collation{sqlval.CollBinary}) // REINDEX fault site
	ix.Restore(snap)

	if ix.Len() != 2 {
		t.Fatalf("restored len = %d, want 2", ix.Len())
	}
	if got := ix.Equal([]sqlval.Value{sqlval.Text("A")}); len(got) != 1 || got[0] != 1 {
		t.Errorf("NOCASE lookup after restore = %v, want [1] (collations not restored?)", got)
	}
	if got := ix.Equal([]sqlval.Value{sqlval.Text("b")}); len(got) != 1 || got[0] != 2 {
		t.Errorf("lookup b = %v, want [2]", got)
	}
}

func TestIndexReset(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, []bool{false})
	for i := int64(1); i <= 5; i++ {
		ix.Insert([]sqlval.Value{sqlval.Int(i)}, i)
	}
	ix.Reset([]sqlval.Collation{sqlval.CollNoCase}, []bool{true})
	if ix.Len() != 0 {
		t.Fatalf("len after reset = %d", ix.Len())
	}
	if got := ix.Collations(); len(got) != 1 || got[0] != sqlval.CollNoCase {
		t.Errorf("collations after reset = %v", got)
	}
}
