// Package storage implements the engine's in-memory row store and ordered
// index structure. Tables hold rows in insertion order with SQLite-style
// rowids; indexes are maintained incrementally as sorted entry slabs, which
// is where several of the paper's bug classes (stale or miscollated index
// state) are injected by the engine.
package storage

import (
	"sort"

	"repro/internal/sqlval"
)

// Row is one stored row. Vals is indexed by column position.
type Row struct {
	Rowid int64
	Vals  []sqlval.Value
}

// Clone deep-copies the row's value slice (values themselves are
// immutable).
func (r *Row) Clone() *Row {
	vals := make([]sqlval.Value, len(r.Vals))
	copy(vals, r.Vals)
	return &Row{Rowid: r.Rowid, Vals: vals}
}

// TableData is the heap of one table.
type TableData struct {
	rows      []*Row
	byRowid   map[int64]*Row
	nextRowid int64
	// cow marks the rows slice as shared with a live TableSnapshot:
	// mutations that write inside the shared prefix copy it first
	// (appends past the snapshot length are safe without copying).
	cow bool
}

// NewTableData returns an empty heap.
func NewTableData() *TableData {
	return &TableData{byRowid: map[int64]*Row{}, nextRowid: 1}
}

// Insert appends a row, assigning the next rowid. The value slice is owned
// by the heap afterwards.
func (t *TableData) Insert(vals []sqlval.Value) *Row {
	r := &Row{Rowid: t.nextRowid, Vals: vals}
	t.nextRowid++
	t.rows = append(t.rows, r)
	t.byRowid[r.Rowid] = r
	return r
}

// InsertWithRowid inserts a row under an explicit rowid (used for rowid
// aliases). It fails if the rowid exists.
func (t *TableData) InsertWithRowid(rowid int64, vals []sqlval.Value) (*Row, bool) {
	if _, dup := t.byRowid[rowid]; dup {
		return nil, false
	}
	r := &Row{Rowid: rowid, Vals: vals}
	if rowid >= t.nextRowid {
		t.nextRowid = rowid + 1
	}
	t.rows = append(t.rows, r)
	t.byRowid[rowid] = r
	return r, true
}

// Rows returns the live rows in insertion order. Callers must not mutate
// the slice.
func (t *TableData) Rows() []*Row { return t.rows }

// NextRowid reports the rowid the next Insert would assign.
func (t *TableData) NextRowid() int64 { return t.nextRowid }

// SetNextRowid raises the rowid allocator — durable-storage recovery
// restores the allocator past deleted high rowids.
func (t *TableData) SetNextRowid(n int64) {
	if n > t.nextRowid {
		t.nextRowid = n
	}
}

// Len reports the number of live rows.
func (t *TableData) Len() int { return len(t.rows) }

// Get resolves a rowid.
func (t *TableData) Get(rowid int64) (*Row, bool) {
	r, ok := t.byRowid[rowid]
	return r, ok
}

// Delete removes a row by rowid.
func (t *TableData) Delete(rowid int64) bool {
	if _, ok := t.byRowid[rowid]; !ok {
		return false
	}
	delete(t.byRowid, rowid)
	for i, r := range t.rows {
		if r.Rowid == rowid {
			t.rows = append(t.rows[:i], t.rows[i+1:]...)
			break
		}
	}
	return true
}

// DeleteLast removes the row with the highest rowid (REPAIR TABLE
// truncation fault site). It reports whether a row was removed.
func (t *TableData) DeleteLast() bool {
	if len(t.rows) == 0 {
		return false
	}
	maxIdx := 0
	for i, r := range t.rows {
		if r.Rowid > t.rows[maxIdx].Rowid {
			maxIdx = i
		}
	}
	return t.Delete(t.rows[maxIdx].Rowid)
}

// AddColumn extends every row with a value for a newly added column.
func (t *TableData) AddColumn(def sqlval.Value) {
	t.unshare()
	for _, r := range t.rows {
		r.Vals = append(r.Vals, def)
	}
}

// IndexEntry is one (key, rowid) pair of an index.
type IndexEntry struct {
	Key   []sqlval.Value
	Rowid int64
}

// IndexData is the sorted entry set of one index. Keys compare part-wise
// under per-part collations; ties break by rowid so entries are unique.
type IndexData struct {
	colls   []sqlval.Collation
	descs   []bool
	entries []IndexEntry
}

// NewIndexData returns an empty index ordered by the given per-part
// collations and sort directions.
func NewIndexData(colls []sqlval.Collation, descs []bool) *IndexData {
	return &IndexData{colls: colls, descs: descs}
}

// CompareKeys orders two keys part-wise.
func (ix *IndexData) CompareKeys(a, b []sqlval.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		coll := sqlval.CollBinary
		if i < len(ix.colls) {
			coll = ix.colls[i]
		}
		c := sqlval.Compare(a[i], b[i], coll)
		if i < len(ix.descs) && ix.descs[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func (ix *IndexData) searchEntry(key []sqlval.Value, rowid int64) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c := ix.CompareKeys(ix.entries[i].Key, key)
		if c != 0 {
			return c >= 0
		}
		return ix.entries[i].Rowid >= rowid
	})
}

// Insert adds an entry in sorted position.
func (ix *IndexData) Insert(key []sqlval.Value, rowid int64) {
	i := ix.searchEntry(key, rowid)
	ix.entries = append(ix.entries, IndexEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = IndexEntry{Key: key, Rowid: rowid}
}

// Delete removes the entry with the given key and rowid, reporting whether
// it was present.
func (ix *IndexData) Delete(key []sqlval.Value, rowid int64) bool {
	i := ix.searchEntry(key, rowid)
	if i < len(ix.entries) && ix.entries[i].Rowid == rowid && ix.CompareKeys(ix.entries[i].Key, key) == 0 {
		ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
		return true
	}
	// Fall back to a linear scan: a caller may delete with a key that
	// was computed differently from the stored one (stale-index bugs).
	for j := range ix.entries {
		if ix.entries[j].Rowid == rowid {
			ix.entries = append(ix.entries[:j], ix.entries[j+1:]...)
			return true
		}
	}
	return false
}

// DeleteRowid removes every entry for a rowid (used when the key can no
// longer be recomputed).
func (ix *IndexData) DeleteRowid(rowid int64) int {
	n := 0
	out := ix.entries[:0]
	for _, e := range ix.entries {
		if e.Rowid == rowid {
			n++
			continue
		}
		out = append(out, e)
	}
	ix.entries = out
	return n
}

// Equal returns the rowids whose full key compares equal to key, in entry
// order.
func (ix *IndexData) Equal(key []sqlval.Value) []int64 {
	var out []int64
	i := sort.Search(len(ix.entries), func(i int) bool {
		return ix.CompareKeys(ix.entries[i].Key, key) >= 0
	})
	for ; i < len(ix.entries); i++ {
		if ix.CompareKeys(ix.entries[i].Key, key) != 0 {
			break
		}
		out = append(out, ix.entries[i].Rowid)
	}
	return out
}

// EqualPrefix returns the rowids whose leading key parts equal prefix.
// Entries sharing a prefix are contiguous in key order, so the lookup is
// two binary searches plus the matching span.
func (ix *IndexData) EqualPrefix(prefix []sqlval.Value) []int64 {
	lo, hi := ix.prefixSpan(prefix)
	var out []int64
	for i := lo; i < hi; i++ {
		if len(ix.entries[i].Key) < len(prefix) {
			continue
		}
		out = append(out, ix.entries[i].Rowid)
	}
	return out
}

// comparePrefix orders an entry's leading parts against a search prefix
// under the index collations/directions. An entry shorter than the prefix
// compares by its available parts only (it sorts with its group).
func (ix *IndexData) comparePrefix(key, prefix []sqlval.Value) int {
	if len(key) > len(prefix) {
		key = key[:len(prefix)]
	}
	return ix.CompareKeys(key, prefix)
}

// prefixSpan returns the half-open entry range [lo, hi) whose leading key
// parts compare equal to prefix.
func (ix *IndexData) prefixSpan(prefix []sqlval.Value) (int, int) {
	lo := sort.Search(len(ix.entries), func(i int) bool {
		return ix.comparePrefix(ix.entries[i].Key, prefix) >= 0
	})
	hi := sort.Search(len(ix.entries), func(i int) bool {
		return ix.comparePrefix(ix.entries[i].Key, prefix) > 0
	})
	return lo, hi
}

// PrefixCount reports how many entries share the given leading key parts
// (planner cost estimation; O(log n)).
func (ix *IndexData) PrefixCount(prefix []sqlval.Value) int {
	lo, hi := ix.prefixSpan(prefix)
	return hi - lo
}

// Bound is one end of a leading-key-part range scan. A nil Key leaves that
// end open.
type Bound struct {
	Key       sqlval.Value
	Inclusive bool
}

// rangeSpan locates the half-open entry range [lo, hi) whose leading key
// part falls between the bounds under the index's part-0 collation. It is
// only meaningful when the leading part is ascending.
func (ix *IndexData) rangeSpan(lo, hi *Bound) (int, int) {
	start := 0
	if lo != nil {
		k := []sqlval.Value{lo.Key}
		start = sort.Search(len(ix.entries), func(i int) bool {
			c := ix.comparePrefix(ix.entries[i].Key, k)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.entries)
	if hi != nil {
		k := []sqlval.Value{hi.Key}
		end = sort.Search(len(ix.entries), func(i int) bool {
			c := ix.comparePrefix(ix.entries[i].Key, k)
			if hi.Inclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if end < start {
		end = start
	}
	return start, end
}

// RangeCount reports how many entries a leading-part range scan would
// visit (planner cost estimation; O(log n)).
func (ix *IndexData) RangeCount(lo, hi *Bound) int {
	start, end := ix.rangeSpan(lo, hi)
	return end - start
}

// Range returns the rowids whose leading key part lies between lo and hi
// (either may be nil for an open end), in entry order. NULL keys sort
// before every bound and are excluded unless the range is open below.
func (ix *IndexData) Range(lo, hi *Bound) []int64 {
	start, end := ix.rangeSpan(lo, hi)
	var out []int64
	for i := start; i < end; i++ {
		out = append(out, ix.entries[i].Rowid)
	}
	return out
}

// NumericLeadingOnly reports whether every entry's leading key part is
// NULL or numeric-class. Key order ranks NULL < numeric < text < blob, so
// with an ascending leading part only the last entry needs inspection.
// The planner uses this in the coercing dialects, where raw index order
// only agrees with comparison order over numeric keys.
func (ix *IndexData) NumericLeadingOnly() bool {
	if len(ix.entries) == 0 {
		return true
	}
	last := ix.entries[len(ix.entries)-1].Key
	if len(last) == 0 {
		return false
	}
	switch last[0].Kind() {
	case sqlval.KText, sqlval.KBlob:
		return false
	}
	return true
}

// TextLeadingOnly reports whether every non-NULL leading key part is text.
// With an ascending leading part, text keys form the ordered tail before
// blobs, so the first non-NULL entry and the last entry bracket the check.
func (ix *IndexData) TextLeadingOnly() bool {
	n := len(ix.entries)
	if n == 0 {
		return true
	}
	first := sort.Search(n, func(i int) bool {
		return len(ix.entries[i].Key) > 0 && !ix.entries[i].Key[0].IsNull()
	})
	if first == n {
		return true // all-NULL keys
	}
	lo, hi := ix.entries[first].Key, ix.entries[n-1].Key
	if len(lo) == 0 || len(hi) == 0 {
		return false
	}
	return lo[0].Kind() == sqlval.KText && hi[0].Kind() == sqlval.KText
}

// Entries exposes the sorted entries (read-only) for scans and integrity
// checks.
func (ix *IndexData) Entries() []IndexEntry { return ix.entries }

// Len reports the number of entries.
func (ix *IndexData) Len() int { return len(ix.entries) }

// Clear drops all entries (rebuild support).
func (ix *IndexData) Clear() { ix.entries = nil }

// SetCollations replaces the part collations (REINDEX fault site: a
// rebuild may deliberately install the wrong collation).
func (ix *IndexData) SetCollations(colls []sqlval.Collation) { ix.colls = colls }

// Collations returns the per-part collations.
func (ix *IndexData) Collations() []sqlval.Collation { return ix.colls }
