package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlval"
)

func TestTableDataInsertDelete(t *testing.T) {
	td := NewTableData()
	r1 := td.Insert([]sqlval.Value{sqlval.Int(1)})
	r2 := td.Insert([]sqlval.Value{sqlval.Int(2)})
	if r1.Rowid != 1 || r2.Rowid != 2 || td.Len() != 2 {
		t.Fatalf("rowids %d,%d len %d", r1.Rowid, r2.Rowid, td.Len())
	}
	if got, ok := td.Get(1); !ok || !got.Vals[0].Equal(sqlval.Int(1)) {
		t.Error("Get(1) failed")
	}
	if !td.Delete(1) || td.Delete(1) {
		t.Error("Delete semantics wrong")
	}
	if td.Len() != 1 || td.Rows()[0].Rowid != 2 {
		t.Error("post-delete state wrong")
	}
	r3 := td.Insert([]sqlval.Value{sqlval.Int(3)})
	if r3.Rowid != 3 {
		t.Errorf("rowid should not be reused, got %d", r3.Rowid)
	}
}

func TestInsertWithRowid(t *testing.T) {
	td := NewTableData()
	if _, ok := td.InsertWithRowid(10, []sqlval.Value{sqlval.Int(1)}); !ok {
		t.Fatal("explicit rowid insert failed")
	}
	if _, ok := td.InsertWithRowid(10, []sqlval.Value{sqlval.Int(2)}); ok {
		t.Fatal("duplicate rowid should fail")
	}
	r := td.Insert([]sqlval.Value{sqlval.Int(3)})
	if r.Rowid != 11 {
		t.Errorf("next rowid after explicit 10 should be 11, got %d", r.Rowid)
	}
}

func TestDeleteLast(t *testing.T) {
	td := NewTableData()
	if td.DeleteLast() {
		t.Error("DeleteLast on empty table should be false")
	}
	td.Insert([]sqlval.Value{sqlval.Int(1)})
	td.Insert([]sqlval.Value{sqlval.Int(2)})
	if !td.DeleteLast() || td.Len() != 1 || td.Rows()[0].Rowid != 1 {
		t.Error("DeleteLast should remove highest rowid")
	}
}

func TestAddColumn(t *testing.T) {
	td := NewTableData()
	td.Insert([]sqlval.Value{sqlval.Int(1)})
	td.AddColumn(sqlval.Null())
	if len(td.Rows()[0].Vals) != 2 || !td.Rows()[0].Vals[1].IsNull() {
		t.Error("AddColumn should extend rows with default")
	}
}

func TestIndexSortedOrder(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, []bool{false})
	keys := []int64{5, 1, 3, 2, 4, 3}
	for i, k := range keys {
		ix.Insert([]sqlval.Value{sqlval.Int(k)}, int64(i+1))
	}
	prev := []sqlval.Value(nil)
	for _, e := range ix.Entries() {
		if prev != nil && ix.CompareKeys(prev, e.Key) > 0 {
			t.Fatalf("entries out of order")
		}
		prev = e.Key
	}
	if got := ix.Equal([]sqlval.Value{sqlval.Int(3)}); len(got) != 2 {
		t.Errorf("Equal(3) = %v, want 2 rowids", got)
	}
	if got := ix.Equal([]sqlval.Value{sqlval.Int(9)}); len(got) != 0 {
		t.Errorf("Equal(9) = %v, want none", got)
	}
}

func TestIndexCollation(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollNoCase}, []bool{false})
	ix.Insert([]sqlval.Value{sqlval.Text("A")}, 1)
	ix.Insert([]sqlval.Value{sqlval.Text("a")}, 2)
	got := ix.Equal([]sqlval.Value{sqlval.Text("a")})
	if len(got) != 2 {
		t.Errorf("NOCASE Equal should match both cases, got %v", got)
	}
	bin := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, []bool{false})
	bin.Insert([]sqlval.Value{sqlval.Text("A")}, 1)
	bin.Insert([]sqlval.Value{sqlval.Text("a")}, 2)
	if got := bin.Equal([]sqlval.Value{sqlval.Text("a")}); len(got) != 1 {
		t.Errorf("BINARY Equal should match one, got %v", got)
	}
}

func TestIndexDescOrdering(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, []bool{true})
	for _, k := range []int64{1, 3, 2} {
		ix.Insert([]sqlval.Value{sqlval.Int(k)}, k)
	}
	es := ix.Entries()
	if !(es[0].Key[0].Equal(sqlval.Int(3)) && es[2].Key[0].Equal(sqlval.Int(1))) {
		t.Errorf("DESC index should sort descending: %v", es)
	}
	if got := ix.Equal([]sqlval.Value{sqlval.Int(2)}); len(got) != 1 || got[0] != 2 {
		t.Errorf("Equal on DESC index = %v", got)
	}
}

func TestIndexDelete(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, []bool{false})
	ix.Insert([]sqlval.Value{sqlval.Int(1)}, 1)
	ix.Insert([]sqlval.Value{sqlval.Int(1)}, 2)
	if !ix.Delete([]sqlval.Value{sqlval.Int(1)}, 2) {
		t.Fatal("Delete should find entry")
	}
	if ix.Len() != 1 || ix.Entries()[0].Rowid != 1 {
		t.Error("wrong entry deleted")
	}
	// Stale-key delete falls back to rowid scan.
	if !ix.Delete([]sqlval.Value{sqlval.Int(99)}, 1) {
		t.Error("stale-key delete should still remove by rowid")
	}
	if ix.Len() != 0 {
		t.Error("index should be empty")
	}
	if ix.Delete([]sqlval.Value{sqlval.Int(1)}, 7) {
		t.Error("deleting absent entry should be false")
	}
}

func TestDeleteRowid(t *testing.T) {
	ix := NewIndexData(nil, nil)
	ix.Insert([]sqlval.Value{sqlval.Int(1)}, 5)
	ix.Insert([]sqlval.Value{sqlval.Int(2)}, 5)
	ix.Insert([]sqlval.Value{sqlval.Int(3)}, 6)
	if n := ix.DeleteRowid(5); n != 2 || ix.Len() != 1 {
		t.Errorf("DeleteRowid removed %d, len %d", n, ix.Len())
	}
}

func TestEqualPrefix(t *testing.T) {
	ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary, sqlval.CollBinary}, []bool{false, false})
	ix.Insert([]sqlval.Value{sqlval.Int(1), sqlval.Int(10)}, 1)
	ix.Insert([]sqlval.Value{sqlval.Int(1), sqlval.Int(20)}, 2)
	ix.Insert([]sqlval.Value{sqlval.Int(2), sqlval.Int(10)}, 3)
	if got := ix.EqualPrefix([]sqlval.Value{sqlval.Int(1)}); len(got) != 2 {
		t.Errorf("EqualPrefix = %v", got)
	}
}

// Property: after any random sequence of inserts and deletes the index
// stays sorted and Equal() agrees with a linear scan.
func TestIndexInvariantQuick(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndexData([]sqlval.Collation{sqlval.CollBinary}, []bool{false})
		type kv struct {
			k     int64
			rowid int64
		}
		var live []kv
		next := int64(1)
		for _, op := range ops {
			k := int64(op % 8)
			if op >= 0 || len(live) == 0 {
				ix.Insert([]sqlval.Value{sqlval.Int(k)}, next)
				live = append(live, kv{k, next})
				next++
			} else {
				victim := rng.Intn(len(live))
				v := live[victim]
				if !ix.Delete([]sqlval.Value{sqlval.Int(v.k)}, v.rowid) {
					return false
				}
				live = append(live[:victim], live[victim+1:]...)
			}
		}
		if ix.Len() != len(live) {
			return false
		}
		es := ix.Entries()
		for i := 1; i < len(es); i++ {
			if ix.CompareKeys(es[i-1].Key, es[i].Key) > 0 {
				return false
			}
		}
		for probe := int64(0); probe < 8; probe++ {
			want := 0
			for _, v := range live {
				if v.k == probe {
					want++
				}
			}
			if len(ix.Equal([]sqlval.Value{sqlval.Int(probe)})) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
