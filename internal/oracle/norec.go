package oracle

import (
	"fmt"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/interp"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/sut"
)

func init() {
	Register("norec", func(o Options) Oracle { return &noREC{opts: o} })
}

// noREC implements the NoREC metamorphic oracle from the same research
// lineage as PQS: rewrite a WHERE condition into the projection and compare
// cardinalities. The optimized query
//
//	SELECT * FROM t WHERE p
//
// lets the engine plan and optimize the predicate (index paths, pushdowns);
// the unoptimized form
//
//	SELECT p FROM t
//
// forces a full scan with per-row predicate evaluation and no access-path
// choice. The number of rows the first returns must equal the number of
// TRUE values the second produces — counted client-side with the
// independent interpreter's truthiness rules, so the engine's own boolean
// conversion is under test too. Unlike PQS, which tracks a single pivot
// row, NoREC validates the whole result cardinality, catching optimizer
// bugs that drop or duplicate rows PQS never selected as pivots.
type noREC struct {
	opts Options
}

// Name implements Oracle.
func (*noREC) Name() string { return "norec" }

// Check implements Oracle: one random predicate, one query pair.
func (n *noREC) Check(db sut.DB, env *Env) (*Report, error) {
	table, info, ok := pickTable(db, env.Rnd)
	if !ok {
		return nil, nil
	}
	eg := &gen.ExprGen{
		Rnd:      env.Rnd,
		Cols:     columnPicks(table, info),
		Hints:    env.Hints,
		MaxDepth: depthOf(n.opts, env),
	}
	pred := eg.Generate()
	optimized := &sqlast.Select{
		Cols:  []sqlast.ResultCol{{Star: true}},
		From:  []sqlast.TableRef{{Name: table}},
		Where: pred,
	}
	unoptimized := &sqlast.Select{
		Cols: []sqlast.ResultCol{{X: pred, Alias: "v"}},
		From: []sqlast.TableRef{{Name: table}},
	}
	optRes, rep, err := execCheck(db, env, optimized, "norec")
	if rep != nil || err != nil || optRes == nil {
		return rep, err
	}
	unoptRes, rep, err := execCheck(db, env, unoptimized, "norec")
	if rep != nil || err != nil || unoptRes == nil {
		return rep, err
	}
	want, ok := TruthyCount(unoptRes.Rows, env.Dialect)
	if !ok {
		return nil, nil // unconvertible value (dialect edge): discard
	}
	if len(optRes.Rows) != want {
		return &Report{
			Oracle:     faults.OracleNoREC,
			DetectedBy: "norec",
			Message: fmt.Sprintf(
				"NoREC mismatch on %s: optimized WHERE returned %d rows, predicate is TRUE on %d",
				table, len(optRes.Rows), want),
			Trace:   append(env.SetupTrace(), sqlast.SQL(optimized, env.Dialect)),
			Compare: sqlast.SQL(unoptimized, env.Dialect),
		}, nil
	}
	return nil, nil
}

func depthOf(o Options, env *Env) int {
	if o.MaxExprDepth > 0 {
		return o.MaxExprDepth
	}
	return env.Depth()
}

// TruthyCount counts the rows whose first column is TRUE in the dialect's
// boolean interpretation, using the independent interpreter's truthiness
// rules (not the engine's). The second return is false when a value cannot
// be converted (strict-typing edge) and the check should be discarded.
func TruthyCount(rows [][]sqlval.Value, d dialect.Dialect) (int, bool) {
	n := 0
	for _, row := range rows {
		if len(row) == 0 {
			return 0, false
		}
		tb, err := interp.Truthiness(row[0], d)
		if err != nil {
			return 0, false
		}
		if tb == sqlval.TriTrue {
			n++
		}
	}
	return n, true
}
