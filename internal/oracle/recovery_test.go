package oracle_test

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/runner"
)

// durabilityFaults are the injected pager bugs only the recovery oracle
// can observe.
var durabilityFaults = []faults.Fault{
	faults.PagerLostFlush,
	faults.PagerTornPageAccept,
	faults.PagerTruncatedReplay,
}

// TestRecoveryFaultMatrix hunts every injected durability fault with the
// recovery-equivalence oracle in all three dialects. The faults live in
// the pager, below the SQL surface, so the dialect axis checks the oracle
// end to end (dialect-specific DML generation, introspection, reporting)
// rather than dialect-specific fault behaviour.
func TestRecoveryFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery fault matrix is not short")
	}
	for _, d := range dialect.All {
		for _, f := range durabilityFaults {
			d, f := d, f
			t.Run(d.String()+"/"+string(f), func(t *testing.T) {
				t.Parallel()
				res := runner.Run(runner.Campaign{
					Dialect:      d,
					Fault:        f,
					MaxDatabases: 300,
					Workers:      2,
					BaseSeed:     1,
					Oracles:      []string{"recovery"},
					Reduce:       true,
				})
				if !res.Detected {
					t.Fatalf("recovery oracle missed %s in %d databases", f, res.Databases)
				}
				if res.Bug.Oracle != faults.OracleRecovery {
					t.Errorf("detection carries oracle %q, want %q", res.Bug.Oracle, faults.OracleRecovery)
				}
				if res.Bug.DetectedBy != "recovery" {
					t.Errorf("DetectedBy = %q, want recovery", res.Bug.DetectedBy)
				}
				if res.Bug.CrashPlan == "" {
					t.Error("detection has no crash plan: the reducer cannot replay it")
				}
				if len(res.Reduced) == 0 || len(res.Reduced) > len(res.Bug.Trace) {
					t.Errorf("reduction produced %d statements from %d", len(res.Reduced), len(res.Bug.Trace))
				}
				t.Logf("%s/%s: seed %d, %d databases, trace %d → %d stmts: %s",
					d, f, res.Seed, res.Databases, len(res.Bug.Trace), len(res.Reduced), res.Bug.Message)
			})
		}
	}
}

// TestRecoveryNoFalsePositives soaks the sound pager: across all three
// dialects, no crash schedule may produce a divergence — every after-sync
// crash recovers the committed state exactly, and every mid-commit crash
// recovers one of the two legal states.
func TestRecoveryNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery soundness soak is not short")
	}
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			res := runner.Run(runner.Campaign{
				Dialect:      d,
				Fault:        "", // sound pager
				MaxDatabases: 150,
				Workers:      4,
				BaseSeed:     1,
				Oracles:      []string{"recovery"},
			})
			if res.Detected {
				t.Fatalf("false positive on the sound pager (seed %d): %s", res.Seed, res.Bug.Message)
			}
		})
	}
}

// TestRecoveryDeterminism runs the same durability hunt with 1 and 8
// workers: detection, seed, message, trace, and crash plan must be
// byte-identical — crash schedules derive from the campaign seed, never
// from scheduling.
func TestRecoveryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery determinism check is not short")
	}
	campaign := func(workers int) runner.Result {
		return runner.Run(runner.Campaign{
			Dialect:      dialect.SQLite,
			Fault:        faults.PagerTornPageAccept,
			MaxDatabases: 300,
			Workers:      workers,
			BaseSeed:     7,
			Oracles:      []string{"recovery"},
		})
	}
	a, b := campaign(1), campaign(8)
	if a.Detected != b.Detected {
		t.Fatalf("Detected differs: %v vs %v", a.Detected, b.Detected)
	}
	if !a.Detected {
		t.Fatal("torn-page-accept not detected at all")
	}
	if a.Seed != b.Seed {
		t.Fatalf("detecting seed differs: %d vs %d", a.Seed, b.Seed)
	}
	if a.Bug.Message != b.Bug.Message {
		t.Fatalf("message differs:\n  1 worker: %s\n  8 workers: %s", a.Bug.Message, b.Bug.Message)
	}
	if a.Bug.CrashPlan != b.Bug.CrashPlan {
		t.Fatalf("crash plan differs: %s vs %s", a.Bug.CrashPlan, b.Bug.CrashPlan)
	}
	if len(a.Bug.Trace) != len(b.Bug.Trace) {
		t.Fatalf("trace length differs: %d vs %d", len(a.Bug.Trace), len(b.Bug.Trace))
	}
	for i := range a.Bug.Trace {
		if a.Bug.Trace[i] != b.Bug.Trace[i] {
			t.Fatalf("trace[%d] differs: %q vs %q", i, a.Bug.Trace[i], b.Bug.Trace[i])
		}
	}
}
