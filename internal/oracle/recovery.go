package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/sqlast"
	"repro/internal/storage/pager"
	"repro/internal/sut"
	"repro/internal/xerr"
)

func init() {
	Register("recovery", func(o Options) Oracle { return &recovery{opts: o} })
}

// crashableDB is the capability surface the recovery oracle needs beyond
// sut.DB. It is asserted structurally so any backend that supports
// simulated crashes (today sut/memengine over the pager storage mode)
// works without a registry change.
type crashableDB interface {
	Durable() bool
	ArmCrash(pager.CrashPlan) bool
	DisarmCrash()
	CrashRecover(pager.CrashPlan) error
}

// recovery implements the recovery-equivalence oracle: grow committed
// state with random DML, simulate a power cut at a seed-derived crash
// point (after the final fsync, or mid-commit between WAL append and
// fsync), recover the database from the surviving files, and compare the
// recovered row multisets per table against the expected state. A sound
// pager must recover exactly the committed state for an after-sync crash,
// and either the pre-statement or post-statement state (atomicity, never
// anything in between) for a mid-commit crash. The injected durability
// faults — skipped commit fsync, checksum-blind torn-tail salvage,
// truncated WAL replay — all surface as divergences or recovery failures
// here; the ground truth is the tester's own introspection of what it
// committed, never the (possibly buggy) recovery path.
type recovery struct {
	opts Options
}

// Name implements Oracle.
func (*recovery) Name() string { return "recovery" }

// tableDump is the expected/recovered state: table → sorted encoded rows
// (a multiset; duplicates stay as repeated entries).
type tableDump map[string][]string

// dump captures the row multiset of every table through the ground-truth
// introspection surface (RawRows bypasses the query and recovery paths).
func dump(db sut.DB) tableDump {
	intro := db.Introspect()
	out := tableDump{}
	for _, t := range intro.Tables() {
		rows := intro.RawRows(t)
		enc := make([]string, len(rows))
		for i, r := range rows {
			var b strings.Builder
			for j, v := range r {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(v.Literal())
			}
			enc[i] = b.String()
		}
		sort.Strings(enc)
		out[t] = enc
	}
	return out
}

// diff describes the first divergence between two dumps ("" when equal).
// Deterministic: tables in sorted order, rows pre-sorted by dump.
func (d tableDump) diff(got tableDump) string {
	names := make([]string, 0, len(d))
	for t := range d {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		want, have := d[t], got[t]
		if len(want) != len(have) {
			return fmt.Sprintf("table %s: %d rows committed, %d recovered", t, len(want), len(have))
		}
		for i := range want {
			if want[i] != have[i] {
				return fmt.Sprintf("table %s: committed row (%s) vs recovered (%s)", t, want[i], have[i])
			}
		}
	}
	for t := range got {
		if _, ok := d[t]; !ok {
			return fmt.Sprintf("table %s: absent at commit time, present after recovery", t)
		}
	}
	return ""
}

// equal reports whether two dumps hold identical multisets.
func (d tableDump) equal(got tableDump) bool { return d.diff(got) == "" }

// RecoveryReplay replays a candidate trace on a crash-capable database
// and reports whether the bug's recorded crash schedule still produces a
// recovery divergence — the reducer's reproduction check. For a
// before-sync plan the final trace statement runs with the crash armed
// (it must die mid-commit with CodeIO, or the candidate no longer
// reproduces); for an after-sync plan the whole trace commits first and
// the power cut lands between statements.
func RecoveryReplay(db sut.DB, bug *Report, trace []string) bool {
	cdb, ok := db.(crashableDB)
	if !ok || !cdb.Durable() || len(trace) == 0 {
		return false
	}
	plan, err := pager.ParseCrashPlan(bug.CrashPlan)
	if err != nil {
		return false
	}
	if plan.Point == pager.BeforeSync {
		for _, sql := range trace[:len(trace)-1] {
			_, _ = db.Exec(sql) // setup errors just weaken the candidate
		}
		before := dump(db)
		if !cdb.ArmCrash(plan) {
			return false
		}
		_, err := db.Exec(trace[len(trace)-1])
		if code, _ := xerr.CodeOf(err); err == nil || code != xerr.CodeIO {
			// The armed crash never fired (the statement stopped being a
			// mutating commit): the candidate lost the bug.
			cdb.DisarmCrash()
			return false
		}
		after := dump(db)
		if cdb.CrashRecover(plan) != nil {
			return true // recovery failure is itself the detection
		}
		rec := dump(db)
		return !before.equal(rec) && !after.equal(rec)
	}
	for _, sql := range trace {
		_, _ = db.Exec(sql)
	}
	expected := dump(db)
	if cdb.CrashRecover(plan) != nil {
		return true
	}
	return !expected.equal(dump(db))
}

// Check implements Oracle: one crash-recovery round.
func (r *recovery) Check(db sut.DB, env *Env) (*Report, error) {
	cdb, ok := db.(crashableDB)
	if !ok || !cdb.Durable() {
		return nil, xerr.New(xerr.CodeUnsupported,
			"recovery oracle requires the durable pager backend (session Storage=\"pager\", CLI -storage=pager)")
	}

	sg := &gen.StateGen{Rnd: env.Rnd, E: db.Introspect(), Hints: env.Hints}
	var extra []string // DML executed since the setup prefix
	apply := func(st sqlast.Stmt) error {
		env.Record()
		extra = append(extra, sqlast.SQL(st, env.Dialect))
		_, err := db.ExecAST(st)
		// Failed statements persisted whatever partial effect they had;
		// only a dead pager (CodeIO) must abort the round, and the armed
		// loop below handles that case itself.
		_ = err
		return nil
	}

	// Grow committed state.
	for i, n := 0, 1+env.Rnd.Intn(3); i < n; i++ {
		if err := sg.RandomDML(apply); err != nil {
			return nil, err
		}
	}

	plan := pager.RandomPlan(env.Rnd.Intn)
	expected := dump(db)
	var expectedAfter tableDump // BeforeSync: state after the armed statement

	if plan.Point == pager.BeforeSync {
		// Arm the crash inside the next commit and run one more DML: the
		// power cut lands after its WAL frames are appended but before
		// the fsync. The statement dies with CodeIO once the pager goes
		// down; its mutation is still applied in memory, which is exactly
		// the "transaction became durable" half of the atomicity check.
		fired := false
		for try := 0; try < 4 && !fired; try++ {
			expected = dump(db)
			if !cdb.ArmCrash(plan) {
				return nil, xerr.New(xerr.CodeUnsupported, "backend cannot simulate crashes")
			}
			err := sg.RandomDML(func(st sqlast.Stmt) error {
				env.Record()
				extra = append(extra, sqlast.SQL(st, env.Dialect))
				_, err := db.ExecAST(st)
				return err
			})
			if err != nil {
				if code, _ := xerr.CodeOf(err); code == xerr.CodeIO {
					fired = true
					expectedAfter = dump(db)
					break
				}
				// An expected statement error still commits its partial
				// effect, so the armed crash fired with it — the CodeIO
				// override in the engine makes this unreachable for
				// durable backends, but stay safe for foreign ones.
			}
		}
		if !fired {
			// No mutating statement ran (e.g. an empty schema): fall back
			// to an after-sync crash between statements.
			cdb.DisarmCrash()
			plan.Point = pager.AfterSync
			expected = dump(db)
		}
	}

	if err := cdb.CrashRecover(plan); err != nil {
		code, _ := xerr.CodeOf(err)
		return &Report{
			Oracle:     faults.OracleRecovery,
			DetectedBy: "recovery",
			Code:       code,
			Message:    fmt.Sprintf("recovery failed after simulated crash (%s): %v", plan, err),
			Trace:      append(env.SetupTrace(), extra...),
			CrashPlan:  plan.String(),
		}, nil
	}

	recovered := dump(db)
	if plan.Point == pager.BeforeSync {
		// Atomicity: the mid-commit transaction either became durable
		// (the unsynced tail survived intact) or vanished — both legal.
		if expected.equal(recovered) || expectedAfter.equal(recovered) {
			return nil, nil
		}
	} else if expected.equal(recovered) {
		return nil, nil
	}
	return &Report{
		Oracle:     faults.OracleRecovery,
		DetectedBy: "recovery",
		Message: fmt.Sprintf("recovery divergence after simulated crash (%s): %s",
			plan, expected.diff(recovered)),
		Trace:     append(env.SetupTrace(), extra...),
		CrashPlan: plan.String(),
	}, nil
}
