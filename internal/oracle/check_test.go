package oracle_test

import (
	"strings"
	"testing"

	_ "repro/internal/core" // registers the "pqs" oracle
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/reduce"
	"repro/internal/runner"
	"repro/internal/sut"
	_ "repro/internal/sut/memengine"
)

func openDB(t *testing.T, fs *faults.Set, setup ...string) sut.DB {
	t.Helper()
	db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite, Faults: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, sql := range setup {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("setup %q: %v", sql, err)
		}
	}
	return db
}

func rowCount(t *testing.T, db sut.DB, sql string) int {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return len(res.Rows)
}

// The four metamorphic fault sites, pinned at the engine level so matrix
// failures are debuggable without campaign archaeology.

func TestUnionAllDedupFaultSite(t *testing.T) {
	const q = "SELECT c0 FROM t0 WHERE 1 UNION ALL SELECT c0 FROM t0 WHERE 0"
	setup := []string{"CREATE TABLE t0(c0)", "INSERT INTO t0 VALUES (1), (1)"}
	if got := rowCount(t, openDB(t, nil, setup...), q); got != 2 {
		t.Errorf("clean engine: %d rows, want 2", got)
	}
	db := openDB(t, faults.NewSet(faults.UnionAllDedup), setup...)
	if got := rowCount(t, db, q); got != 1 {
		t.Errorf("union-all-dedup: %d rows, want 1 (deduplicated)", got)
	}
}

func TestNullPartitionDropFaultSite(t *testing.T) {
	const q = "SELECT c0 FROM t0 WHERE c0 > 0 UNION ALL SELECT c0 FROM t0 WHERE (c0 > 0) IS NULL"
	setup := []string{"CREATE TABLE t0(c0)", "INSERT INTO t0 VALUES (1), (NULL)"}
	if got := rowCount(t, openDB(t, nil, setup...), q); got != 2 {
		t.Errorf("clean engine: %d rows, want 2", got)
	}
	db := openDB(t, faults.NewSet(faults.NullPartitionDrop), setup...)
	if got := rowCount(t, db, q); got != 1 {
		t.Errorf("null-partition-drop: %d rows, want 1 (IS NULL arm dropped)", got)
	}
}

func TestAggEmptyGroupFaultSite(t *testing.T) {
	setup := []string{"CREATE TABLE t0(c0)", "INSERT INTO t0 VALUES (-3)"}
	check := func(db sut.DB, sql, want string) {
		t.Helper()
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
			t.Fatalf("%q: unexpected shape %v", sql, res.Rows)
		}
		if got := res.Rows[0][0].String(); got != want {
			t.Errorf("%q = %s, want %s", sql, got, want)
		}
	}
	clean := openDB(t, nil, setup...)
	check(clean, "SELECT COUNT(c0) FROM t0 WHERE 0", "0")
	check(clean, "SELECT SUM(c0) FROM t0 WHERE 0", "NULL")
	buggy := openDB(t, faults.NewSet(faults.AggEmptyGroup), setup...)
	check(buggy, "SELECT COUNT(c0) FROM t0 WHERE 0", "1")
	check(buggy, "SELECT SUM(c0) FROM t0 WHERE 0", "0")
	check(buggy, "SELECT MAX(c0) FROM t0 WHERE 0", "0")
	// Non-empty inputs are untouched.
	check(buggy, "SELECT COUNT(c0) FROM t0 WHERE 1", "1")
}

func TestNorecCountMismatchFaultSite(t *testing.T) {
	setup := []string{"CREATE TABLE t0(c0)", "INSERT INTO t0 VALUES (1), (2)"}
	db := openDB(t, faults.NewSet(faults.NorecCountMismatch), setup...)
	if got := rowCount(t, db, "SELECT * FROM t0 WHERE c0 > 0"); got != 1 {
		t.Errorf("star+WHERE: %d rows, want 1 (first match dropped)", got)
	}
	// The unoptimized NoREC side (no star, or no WHERE) is unaffected.
	if got := rowCount(t, db, "SELECT c0 FROM t0 WHERE c0 > 0"); got != 2 {
		t.Errorf("named projection: %d rows, want 2", got)
	}
	if got := rowCount(t, db, "SELECT * FROM t0"); got != 2 {
		t.Errorf("star without WHERE: %d rows, want 2", got)
	}
}

// TestRegistrySurface checks the registry contract: the three oracles are
// registered, lookups construct them, unknown names error.
func TestRegistrySurface(t *testing.T) {
	names := oracle.Names()
	for _, want := range []string{"pqs", "tlp", "norec"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("oracle %q not registered (have %v)", want, names)
		}
		o, err := oracle.New(want, oracle.Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", want, err)
		}
		if o.Name() != want {
			t.Errorf("New(%q).Name() = %q", want, o.Name())
		}
	}
	if _, err := oracle.New("nosuch", oracle.Options{}); err == nil {
		t.Error("New(nosuch) did not error")
	}
}

// TestOneShotChecks drives the registry oracles the way dbshell's .oracle
// command does: repeated one-shot checks against an already-built
// database, no campaign machinery.
func TestOneShotChecks(t *testing.T) {
	setup := []string{
		"CREATE TABLE t0(c0 INT, c1 TEXT)",
		"INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (NULL, 'c')",
	}
	oneShot := func(t *testing.T, db sut.DB, name string, checks int) *oracle.Report {
		t.Helper()
		o, err := oracle.New(name, oracle.Options{})
		if err != nil {
			t.Fatal(err)
		}
		env := &oracle.Env{Dialect: dialect.SQLite, Rnd: gen.NewRand(dialect.SQLite, 7)}
		for i := 0; i < checks; i++ {
			rep, err := o.Check(db, env)
			if err != nil {
				t.Fatal(err)
			}
			if rep != nil {
				return rep
			}
		}
		return nil
	}
	t.Run("clean", func(t *testing.T) {
		db := openDB(t, nil, setup...)
		for _, name := range []string{"pqs", "tlp", "norec"} {
			if rep := oneShot(t, db, name, 50); rep != nil {
				t.Errorf("%s flagged a clean database: %s", name, rep.Message)
			}
		}
	})
	t.Run("norec-fault", func(t *testing.T) {
		db := openDB(t, faults.NewSet(faults.NorecCountMismatch), setup...)
		rep := oneShot(t, db, "norec", 50)
		if rep == nil {
			t.Fatal("norec one-shot missed sqlite.norec-count-mismatch in 50 checks")
		}
		if rep.DetectedBy != "norec" || rep.Oracle != faults.OracleNoREC {
			t.Errorf("report attribution: DetectedBy=%q Oracle=%q", rep.DetectedBy, rep.Oracle)
		}
		if rep.Compare == "" || len(rep.Trace) == 0 {
			t.Errorf("report missing replay material: compare=%q trace=%d", rep.Compare, len(rep.Trace))
		}
	})
	t.Run("tlp-fault", func(t *testing.T) {
		db := openDB(t, faults.NewSet(faults.UnionAllDedup),
			"CREATE TABLE t0(c0)", "INSERT INTO t0 VALUES (1), (1), (1)")
		rep := oneShot(t, db, "tlp", 80)
		if rep == nil {
			t.Fatal("tlp one-shot missed sqlite.union-all-dedup in 80 checks")
		}
		if rep.DetectedBy != "tlp" || rep.Oracle != faults.OracleTLP {
			t.Errorf("report attribution: DetectedBy=%q Oracle=%q", rep.DetectedBy, rep.Oracle)
		}
	})
}

// TestMetamorphicReduction proves reduced repro scripts of metamorphic
// detections still reproduce: the reducer replays both sides of the
// comparison (the bug's Compare partner) rather than a pivot tuple.
func TestMetamorphicReduction(t *testing.T) {
	for _, tc := range []struct {
		fault  faults.Fault
		oracle string
	}{
		{faults.UnionAllDedup, "tlp"},
		{faults.AggEmptyGroup, "tlp"},
		{faults.NorecCountMismatch, "norec"},
	} {
		tc := tc
		t.Run(string(tc.fault), func(t *testing.T) {
			t.Parallel()
			res := runner.Run(runner.Campaign{
				Dialect:      dialect.SQLite,
				Fault:        tc.fault,
				MaxDatabases: 800,
				BaseSeed:     1,
				Reduce:       true,
				Oracles:      []string{tc.oracle},
			})
			if !res.Detected {
				t.Fatalf("%s not detected", tc.fault)
			}
			if len(res.Reduced) == 0 || len(res.Reduced) > len(res.Bug.Trace) {
				t.Fatalf("reduction produced %d statements from %d", len(res.Reduced), len(res.Bug.Trace))
			}
			// The reduced trace must still reproduce under the metamorphic
			// replay check.
			check := reduce.CheckerFor(res.Bug, dialect.SQLite, faults.NewSet(tc.fault))
			if !check(res.Reduced) {
				t.Fatalf("reduced trace no longer reproduces:\n  %s", strings.Join(res.Reduced, ";\n  "))
			}
			// And must stop reproducing on a fault-free engine (guards
			// against a vacuously-true checker).
			clean := reduce.CheckerFor(res.Bug, dialect.SQLite, nil)
			if clean(res.Reduced) {
				t.Fatalf("checker reproduces on the fault-free engine:\n  %s", strings.Join(res.Reduced, ";\n  "))
			}
		})
	}
}
