package oracle

import (
	"errors"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

func TestClassifyBasic(t *testing.T) {
	ins := &sqlast.Insert{Table: "t0"}
	if v := Classify(ins, nil, dialect.SQLite); v != VerdictOK {
		t.Errorf("nil error: %v", v)
	}
	// Expected statement errors are ignored (§3.3).
	if v := Classify(ins, xerr.New(xerr.CodeUnique, "dup"), dialect.SQLite); v != VerdictExpected {
		t.Errorf("unique on insert: %v", v)
	}
	if v := Classify(ins, xerr.New(xerr.CodeNotNull, "null"), dialect.MySQL); v != VerdictExpected {
		t.Errorf("notnull on insert: %v", v)
	}
	// Corruption and internal errors are never expected.
	if v := Classify(ins, xerr.New(xerr.CodeCorrupt, "malformed"), dialect.SQLite); v != VerdictBug {
		t.Errorf("corrupt: %v", v)
	}
	sel := &sqlast.Select{}
	if v := Classify(sel, xerr.New(xerr.CodeInternal, "bitmapset"), dialect.Postgres); v != VerdictBug {
		t.Errorf("internal: %v", v)
	}
	// Crashes go to the crash oracle.
	if v := Classify(sel, xerr.New(xerr.CodeCrash, "SIGSEGV"), dialect.MySQL); v != VerdictCrash {
		t.Errorf("crash: %v", v)
	}
	// Generator artifacts are neither bugs nor expected.
	if v := Classify(sel, xerr.New(xerr.CodeNoObject, "no such table"), dialect.SQLite); v != VerdictArtifact {
		t.Errorf("artifact: %v", v)
	}
	// Foreign errors escaping the engine are bugs.
	if v := Classify(sel, errors.New("panic elsewhere"), dialect.SQLite); v != VerdictBug {
		t.Errorf("foreign: %v", v)
	}
}

func TestClassifyMaintenanceStrict(t *testing.T) {
	// The paper's key error-oracle insight: maintenance statements have
	// no expected errors at all.
	m := &sqlast.Maintenance{Op: sqlast.MaintReindex}
	if v := Classify(m, xerr.New(xerr.CodeUnique, "UNIQUE constraint failed"), dialect.SQLite); v != VerdictBug {
		t.Errorf("REINDEX unique error must be a bug: %v", v)
	}
	v2 := Classify(&sqlast.Maintenance{Op: sqlast.MaintVacuumFull},
		xerr.New(xerr.CodeRange, "integer out of range"), dialect.Postgres)
	if v2 != VerdictBug {
		t.Errorf("VACUUM FULL range error must be a bug (Listing 18): %v", v2)
	}
	// SET with valid values never errors legitimately (Listing 3).
	if v := Classify(&sqlast.SetOption{}, xerr.New(xerr.CodeOption, "Incorrect arguments to SET"), dialect.MySQL); v != VerdictBug {
		t.Errorf("SET option error must be a bug: %v", v)
	}
}

func TestClassifySelectRuntimeErrors(t *testing.T) {
	// Strict typing and arithmetic may legitimately fail at runtime.
	for _, st := range []sqlast.Stmt{&sqlast.Select{}, &sqlast.Compound{}, &sqlast.Delete{}} {
		if v := Classify(st, xerr.New(xerr.CodeType, "boolean required"), dialect.Postgres); v != VerdictExpected {
			t.Errorf("%T type error: %v", st, v)
		}
		if v := Classify(st, xerr.New(xerr.CodeRange, "division by zero"), dialect.Postgres); v != VerdictExpected {
			t.Errorf("%T range error: %v", st, v)
		}
	}
}

func TestContainment(t *testing.T) {
	rows := [][]sqlval.Value{
		{sqlval.Int(1), sqlval.Text("a")},
		{sqlval.Null(), sqlval.Real(0.5)},
	}
	if !Containment(rows, []sqlval.Value{sqlval.Int(1), sqlval.Text("a")}) {
		t.Error("exact tuple should be contained")
	}
	if !Containment(rows, []sqlval.Value{sqlval.Null(), sqlval.Real(0.5)}) {
		t.Error("NULL tuple should be contained (identity semantics)")
	}
	if !Containment(rows, []sqlval.Value{sqlval.Real(1.0), sqlval.Text("a")}) {
		t.Error("numeric cross-type tuple should be contained")
	}
	if Containment(rows, []sqlval.Value{sqlval.Int(1), sqlval.Text("A")}) {
		t.Error("case-variant text should not be contained")
	}
	if Containment(rows, []sqlval.Value{sqlval.Int(1)}) {
		t.Error("arity mismatch should not be contained")
	}
	if Containment(nil, []sqlval.Value{sqlval.Int(1)}) {
		t.Error("empty result contains nothing")
	}
}

func TestOracleForAndStrings(t *testing.T) {
	if OracleFor(VerdictCrash) != faults.OracleCrash || OracleFor(VerdictBug) != faults.OracleError {
		t.Error("OracleFor mapping wrong")
	}
	for _, v := range []Verdict{VerdictOK, VerdictExpected, VerdictArtifact, VerdictBug, VerdictCrash} {
		if v.String() == "" || v.String() == "verdict?" {
			t.Errorf("verdict %d has no name", v)
		}
	}
}
