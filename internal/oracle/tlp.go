package oracle

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/sut"
)

func init() {
	Register("tlp", func(o Options) Oracle { return &tlp{opts: o} })
}

// tlp implements Ternary Logic Partitioning: a random predicate p splits a
// query into the three partitions that exhaust SQL's three-valued logic —
// p, NOT p, and p IS NULL — and the partitions recombined with UNION ALL
// must reproduce the unpartitioned query exactly.
//
// Two variants run, chosen per check:
//
//   - WHERE: SELECT cols FROM t must equal, as a multiset,
//     SELECT cols WHERE p UNION ALL SELECT cols WHERE NOT p UNION ALL
//     SELECT cols WHERE p IS NULL.
//   - Aggregate: SELECT AGG(c) FROM t must equal the client-side
//     recombination of the three partition aggregates (sum for
//     COUNT/SUM, max for MAX), executed as one UNION ALL compound.
//
// Both validate whole result sets, so row drops, duplicate elimination,
// and aggregate bugs that never touch PQS's pivot row are visible.
type tlp struct {
	opts Options
}

// Name implements Oracle.
func (*tlp) Name() string { return "tlp" }

// Check implements Oracle.
func (o *tlp) Check(db sut.DB, env *Env) (*Report, error) {
	table, info, ok := pickTable(db, env.Rnd)
	if !ok {
		return nil, nil
	}
	// Join-shaped variant: partition a two-table equi-join query. The
	// partitions apply after the join, so they stay exhaustive — and the
	// shape exercises the engine's join-strategy selection (hash joins in
	// particular) under a WHERE clause, which single-table TLP never does.
	if env.Rnd.Bool(0.4) {
		if rep, err, built := o.checkJoin(db, env, table, info); built {
			return rep, err
		}
	}
	eg := &gen.ExprGen{
		Rnd:      env.Rnd,
		Cols:     columnPicks(table, info),
		Hints:    env.Hints,
		MaxDepth: depthOf(o.opts, env),
	}
	pred := eg.Generate()
	if env.Rnd.Bool(0.5) {
		return o.checkAgg(db, env, table, info, pred)
	}
	return PartitionCheck(db, env, table, gen.ColumnSubset(env.Rnd, info), pred)
}

// checkJoin runs the WHERE variant over `t1 [LEFT] JOIN t2 ON a = b`. The
// third return is false when no join shape could be built (single-table
// database) and the caller should fall back to the single-table variants.
func (o *tlp) checkJoin(db sut.DB, env *Env, t1 string, info1 schema.TableInfo) (*Report, error, bool) {
	t2, info2, ok := pickJoinPartner(db, env.Rnd, t1)
	if !ok {
		return nil, nil, false
	}
	c1, c2, ok := pickJoinKeys(env.Rnd, info1, info2)
	if !ok {
		return nil, nil, false
	}
	kind := sqlast.JoinInner
	if env.Rnd.Bool(0.45) {
		kind = sqlast.JoinLeft
	}
	on := &sqlast.Binary{Op: sqlast.OpEq, L: sqlast.Col(t1, c1), R: sqlast.Col(t2, c2)}
	picks := append(columnPicks(t1, info1), columnPicks(t2, info2)...)
	eg := &gen.ExprGen{
		Rnd:      env.Rnd,
		Cols:     picks,
		Hints:    env.Hints,
		MaxDepth: depthOf(o.opts, env),
	}
	pred := eg.Generate()
	mk := func(where sqlast.Expr) *sqlast.Select {
		sel := &sqlast.Select{
			From:  []sqlast.TableRef{{Name: t1}},
			Joins: []sqlast.JoinClause{{Kind: kind, Table: sqlast.TableRef{Name: t2}, On: on}},
			Where: where,
		}
		for _, c := range info1.Columns {
			sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(t1, c.Name)})
		}
		for _, c := range info2.Columns {
			sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(t2, c.Name)})
		}
		return sel
	}
	rep, err := comparePartitions(db, env, t1+" JOIN "+t2, mk, pred)
	return rep, err, true
}

// pickJoinPartner picks a second, distinct, preferably non-empty table.
func pickJoinPartner(db sut.DB, rnd *gen.Rand, exclude string) (string, schema.TableInfo, bool) {
	intro := db.Introspect()
	var pool []string
	for _, t := range intro.Tables() {
		if t != exclude && intro.RowCount(t) > 0 {
			pool = append(pool, t)
		}
	}
	if len(pool) == 0 {
		return "", schema.TableInfo{}, false
	}
	name := pool[rnd.Intn(len(pool))]
	info, err := intro.Describe(name)
	if err != nil || len(info.Columns) == 0 {
		return "", schema.TableInfo{}, false
	}
	return name, info, true
}

// pickJoinKeys picks one column per table for the equi-join key, preferring
// pairs of matching type category: strictly-typed dialects reject (and the
// hash path's class prescan declines) cross-class equality, so matched
// pairs are the ones that actually exercise the join operators.
func pickJoinKeys(rnd *gen.Rand, info1, info2 schema.TableInfo) (string, string, bool) {
	if len(info1.Columns) == 0 || len(info2.Columns) == 0 {
		return "", "", false
	}
	type pair struct{ a, b string }
	var matched []pair
	for _, a := range info1.Columns {
		ca := gen.CategoryOfType(a.TypeName)
		for _, b := range info2.Columns {
			if ca != gen.CatAny && ca == gen.CategoryOfType(b.TypeName) {
				matched = append(matched, pair{a.Name, b.Name})
			}
		}
	}
	if len(matched) > 0 && rnd.Bool(0.9) {
		p := matched[rnd.Intn(len(matched))]
		return p.a, p.b, true
	}
	a := info1.Columns[rnd.Intn(len(info1.Columns))].Name
	b := info2.Columns[rnd.Intn(len(info2.Columns))].Name
	return a, b, true
}

// partitions returns the three exhaustive WHERE conditions of p.
func partitions(pred sqlast.Expr) [3]sqlast.Expr {
	return [3]sqlast.Expr{
		pred,
		sqlast.Not(pred),
		sqlast.IsNullExpr(pred),
	}
}

// PartitionCheck runs TLP's WHERE variant for a specific predicate and
// projection: the unpartitioned query against the UNION ALL recombination
// of its three partitions. Exported for the FuzzTLPPartition harness; the
// oracle's Check wraps it with random generation.
func PartitionCheck(db sut.DB, env *Env, table string, cols []string, pred sqlast.Expr) (*Report, error) {
	mk := func(where sqlast.Expr) *sqlast.Select {
		sel := &sqlast.Select{
			From:  []sqlast.TableRef{{Name: table}},
			Where: where,
		}
		for _, c := range cols {
			sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(table, c)})
		}
		return sel
	}
	return comparePartitions(db, env, table, mk, pred)
}

// comparePartitions executes mk(nil) against the UNION ALL of mk over the
// three partitions of pred and reports any multiset deviation. shape names
// the query source for the report message.
func comparePartitions(db sut.DB, env *Env, shape string, mk func(sqlast.Expr) *sqlast.Select, pred sqlast.Expr) (*Report, error) {
	orig := mk(nil)
	parts := partitions(pred)
	comp := &sqlast.Compound{
		Selects: []*sqlast.Select{mk(parts[0]), mk(parts[1]), mk(parts[2])},
		Ops:     []sqlast.CompoundOp{sqlast.OpUnionAll, sqlast.OpUnionAll},
	}
	origRes, rep, err := execCheck(db, env, orig, "tlp")
	if rep != nil || err != nil || origRes == nil {
		return rep, err
	}
	compRes, rep, err := execCheck(db, env, comp, "tlp")
	if rep != nil || err != nil || compRes == nil {
		return rep, err
	}
	if !MultisetEqual(origRes.Rows, compRes.Rows) {
		return &Report{
			Oracle:     faults.OracleTLP,
			DetectedBy: "tlp",
			Message: fmt.Sprintf(
				"TLP partition mismatch on %s: unpartitioned query returned %d rows, UNION ALL of partitions %d",
				shape, len(origRes.Rows), len(compRes.Rows)),
			Trace:   append(env.SetupTrace(), sqlast.SQL(comp, env.Dialect)),
			Compare: sqlast.SQL(orig, env.Dialect),
		}, nil
	}
	return nil, nil
}

// checkAgg runs the aggregate variant: COUNT always works; SUM only over
// columns whose stored values are all integral (float addition is not
// associative, so partition-order sums would false-positive); MAX over any
// column (max-of-max is order-independent under a total order).
func (o *tlp) checkAgg(db sut.DB, env *Env, table string, info schema.TableInfo, pred sqlast.Expr) (*Report, error) {
	col := info.Columns[env.Rnd.Intn(len(info.Columns))].Name
	fn := [...]string{"COUNT", "SUM", "MAX"}[env.Rnd.Intn(3)]
	if fn == "SUM" && !allIntegral(db, table, info, col) {
		fn = "COUNT"
	}
	mk := func(where sqlast.Expr) *sqlast.Select {
		return &sqlast.Select{
			Cols:  []sqlast.ResultCol{{X: &sqlast.FuncCall{Name: fn, Args: []sqlast.Expr{sqlast.Col(table, col)}}, Alias: "a"}},
			From:  []sqlast.TableRef{{Name: table}},
			Where: where,
		}
	}
	orig := mk(nil)
	parts := partitions(pred)
	comp := &sqlast.Compound{
		Selects: []*sqlast.Select{mk(parts[0]), mk(parts[1]), mk(parts[2])},
		Ops:     []sqlast.CompoundOp{sqlast.OpUnionAll, sqlast.OpUnionAll},
	}
	origRes, rep, err := execCheck(db, env, orig, "tlp")
	if rep != nil || err != nil || origRes == nil {
		return rep, err
	}
	compRes, rep, err := execCheck(db, env, comp, "tlp")
	if rep != nil || err != nil || compRes == nil {
		return rep, err
	}
	if !AggValuesEqual(fn, origRes.Rows, compRes.Rows) {
		combined := CombineAgg(fn, compRes.Rows)
		return &Report{
			Oracle:     faults.OracleTLP,
			DetectedBy: "tlp",
			Agg:        fn,
			Message: fmt.Sprintf(
				"TLP aggregate mismatch on %s: %s(%s) is %s unpartitioned but %s recombined from partitions",
				table, fn, col, aggDisplay(origRes.Rows), combined.String()),
			Trace:   append(env.SetupTrace(), sqlast.SQL(comp, env.Dialect)),
			Compare: sqlast.SQL(orig, env.Dialect),
		}, nil
	}
	return nil, nil
}

func aggDisplay(rows [][]sqlval.Value) string {
	if len(rows) == 1 && len(rows[0]) == 1 {
		return rows[0][0].String()
	}
	return fmt.Sprintf("%d rows", len(rows))
}

// allIntegral reports whether every stored value of a column is NULL,
// integer, or boolean — consulting ground truth (RawRows), not the query
// path, since SQLite's dynamic typing stores anything in any column.
func allIntegral(db sut.DB, table string, info schema.TableInfo, col string) bool {
	ci := -1
	for i := range info.Columns {
		if strings.EqualFold(info.Columns[i].Name, col) {
			ci = i
			break
		}
	}
	if ci < 0 {
		return false
	}
	for _, row := range db.Introspect().RawRows(table) {
		if ci >= len(row) {
			return false
		}
		switch row[ci].Kind() {
		case sqlval.KNull, sqlval.KInt, sqlval.KBool:
		default:
			return false
		}
	}
	return true
}

// MultisetEqual compares two result sets as bags of rows, order-blind,
// with exact (kind-tagged) value identity — both sides project the same
// stored values, so representation differences cannot legitimately occur.
func MultisetEqual(a, b [][]sqlval.Value) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[string]int, len(a))
	for _, row := range a {
		counts[rowKey(row)]++
	}
	for _, row := range b {
		k := rowKey(row)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

func rowKey(row []sqlval.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteByte(0)
		if v.IsNull() {
			b.WriteString("n")
			continue
		}
		b.WriteByte('0' + byte(v.Kind()))
		b.WriteString(v.Display())
	}
	return b.String()
}

// CombineAgg recombines per-partition aggregate rows into the whole-query
// value: sum for COUNT/SUM, max for MAX, skipping NULL partitions (an
// empty partition aggregates to NULL for SUM/MAX).
func CombineAgg(fn string, rows [][]sqlval.Value) sqlval.Value {
	var vals []sqlval.Value
	for _, row := range rows {
		if len(row) > 0 && !row[0].IsNull() {
			vals = append(vals, row[0])
		}
	}
	switch strings.ToUpper(fn) {
	case "COUNT":
		var n int64
		for _, v := range vals {
			n += v.Int64()
		}
		return sqlval.Int(n)
	case "SUM":
		if len(vals) == 0 {
			return sqlval.Null()
		}
		var n int64
		for _, v := range vals {
			n += v.Int64()
		}
		return sqlval.Int(n)
	default: // MAX
		if len(vals) == 0 {
			return sqlval.Null()
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if sqlval.Compare(v, best, sqlval.CollBinary) > 0 {
				best = v
			}
		}
		return best
	}
}

// AggValuesEqual compares the unpartitioned aggregate result (one row, one
// column) against the recombination of the partition rows.
func AggValuesEqual(fn string, origRows, partRows [][]sqlval.Value) bool {
	if len(origRows) != 1 || len(origRows[0]) != 1 {
		return false
	}
	orig := origRows[0][0]
	combined := CombineAgg(fn, partRows)
	if orig.IsNull() || combined.IsNull() {
		return orig.IsNull() == combined.IsNull()
	}
	return sqlval.Compare(orig, combined, sqlval.CollBinary) == 0
}
