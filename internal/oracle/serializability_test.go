package oracle_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/runner"
)

// isolationFaults are the injected transaction-isolation bugs only the
// serializability oracle can observe (the cross-oracle matrix proves
// pqs/tlp/norec structurally miss all four).
var isolationFaults = []faults.Fault{
	faults.TxnDirtyReadLeak,
	faults.TxnLostUpdate,
	faults.TxnSnapshotSkewCommit,
	faults.TxnRollbackRestoreMiss,
}

// TestSerializabilityFaultMatrix hunts every injected isolation fault
// with the serializability oracle in all three dialects, and reduces each
// detection to a minimal multi-session repro. The faults live in the
// transaction layer, below the SQL surface, so the dialect axis exercises
// the oracle end to end (history generation, interleaved execution,
// serial-order search, session-tagged reporting) rather than
// dialect-specific fault behaviour.
func TestSerializabilityFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("serializability fault matrix is not short")
	}
	for _, d := range dialect.All {
		for _, f := range isolationFaults {
			d, f := d, f
			t.Run(d.String()+"/"+string(f), func(t *testing.T) {
				t.Parallel()
				res := runner.Run(runner.Campaign{
					Dialect:      d,
					Fault:        f,
					MaxDatabases: 300,
					Workers:      2,
					BaseSeed:     1,
					Oracles:      []string{"serializability"},
					Reduce:       true,
				})
				if !res.Detected {
					t.Fatalf("serializability oracle missed %s in %d databases", f, res.Databases)
				}
				if res.Bug.Oracle != faults.OracleSerializability {
					t.Errorf("detection carries oracle %q, want %q", res.Bug.Oracle, faults.OracleSerializability)
				}
				if res.Bug.DetectedBy != "serializability" {
					t.Errorf("DetectedBy = %q, want serializability", res.Bug.DetectedBy)
				}
				if len(res.Reduced) == 0 || len(res.Reduced) > len(res.Bug.Trace) {
					t.Errorf("reduction produced %d statements from %d", len(res.Reduced), len(res.Bug.Trace))
				}
				t.Logf("%s/%s: seed %d, %d databases, trace %d → %d stmts: %s",
					d, f, res.Seed, res.Databases, len(res.Bug.Trace), len(res.Reduced), res.Bug.Message)
			})
		}
	}
}

// TestSerializabilityNoFalsePositives soaks the sound engine: across all
// three dialects, with and without compiled expression programs, every
// fault-free interleaved history must match a serial order. The engine's
// first-committer-wins validation makes the commit order a witness, so
// any detection here is an oracle bug, not flakiness.
func TestSerializabilityNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("serializability soundness soak is not short")
	}
	for _, d := range dialect.All {
		for _, noCompile := range []bool{false, true} {
			d, noCompile := d, noCompile
			name := d.String()
			if noCompile {
				name += "/no-compile"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				res := runner.Run(runner.Campaign{
					Dialect:      d,
					Fault:        "", // sound engine
					MaxDatabases: 150,
					Workers:      4,
					BaseSeed:     1,
					Oracles:      []string{"serializability"},
					Tester:       core.Config{NoCompile: noCompile},
				})
				if res.Detected {
					t.Fatalf("false positive on the sound engine (seed %d): %s\ntrace:\n%v",
						res.Seed, res.Bug.Message, res.Bug.Trace)
				}
			})
		}
	}
}

// TestInterleavingDeterminism runs the same isolation hunt with 1 and 8
// workers: detection, seed, message, and the session-tagged history trace
// must be byte-identical — interleavings derive from the campaign seed,
// never from goroutine scheduling.
func TestInterleavingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("interleaving determinism check is not short")
	}
	campaign := func(workers int) runner.Result {
		return runner.Run(runner.Campaign{
			Dialect:      dialect.SQLite,
			Fault:        faults.TxnLostUpdate,
			MaxDatabases: 300,
			Workers:      workers,
			BaseSeed:     7,
			Oracles:      []string{"serializability"},
		})
	}
	a, b := campaign(1), campaign(8)
	if a.Detected != b.Detected {
		t.Fatalf("Detected differs: %v vs %v", a.Detected, b.Detected)
	}
	if !a.Detected {
		t.Fatal("lost-update not detected at all")
	}
	if a.Seed != b.Seed {
		t.Fatalf("detecting seed differs: %d vs %d", a.Seed, b.Seed)
	}
	if a.Bug.Message != b.Bug.Message {
		t.Fatalf("message differs:\n  1 worker: %s\n  8 workers: %s", a.Bug.Message, b.Bug.Message)
	}
	if len(a.Bug.Trace) != len(b.Bug.Trace) {
		t.Fatalf("trace length differs: %d vs %d", len(a.Bug.Trace), len(b.Bug.Trace))
	}
	for i := range a.Bug.Trace {
		if a.Bug.Trace[i] != b.Bug.Trace[i] {
			t.Fatalf("trace[%d] differs: %q vs %q", i, a.Bug.Trace[i], b.Bug.Trace[i])
		}
	}
}
