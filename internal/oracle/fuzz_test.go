package oracle_test

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sut"
)

// FuzzTLPPartition fuzzes the TLP identity itself: for any predicate p the
// parser accepts, the three partitions p / NOT p / p IS NULL recombined
// with UNION ALL must reproduce the unpartitioned query's multiset on the
// fault-free engine. A failure is a real finding — either an engine bug in
// three-valued logic / UNION ALL, or an oracle whose metamorphic identity
// is unsound. The seed corpus doubles as a unit test under plain `go
// test`.
func FuzzTLPPartition(f *testing.F) {
	seeds := []string{
		"c0 > 1",
		"c1 LIKE 'a%'",
		"c0 IS NULL",
		"NOT (c0 = c1)",
		"(c0 + 1) % 2",
		"c0 BETWEEN -1 AND 2",
		"c1 IN ('a', 'b', NULL)",
		"(c0 IS 1) OR (c1 COLLATE NOCASE = 'A')",
		"CAST(c1 AS INTEGER) = c0",
		"NULLIF(c0, 1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, predSQL string) {
		st, err := sqlparse.ParseOne("SELECT c0 FROM t0 WHERE "+predSQL, dialect.SQLite)
		if err != nil {
			t.Skip()
		}
		sel, ok := st.(*sqlast.Select)
		if !ok || sel.Where == nil || len(sel.From) != 1 || sel.From[0].Name != "t0" {
			t.Skip() // the predicate smuggled in clause keywords
		}
		db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for _, sql := range []string{
			"CREATE TABLE t0(c0 INT, c1 TEXT)",
			"INSERT INTO t0 VALUES (1, 'a'), (1, 'a'), (2, 'B'), (NULL, 'b  '), (-1, NULL), (0, '')",
		} {
			if _, err := db.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		env := &oracle.Env{Dialect: dialect.SQLite, Rnd: gen.NewRand(dialect.SQLite, 1)}
		rep, err := oracle.PartitionCheck(db, env, "t0", []string{"c0", "c1"}, sel.Where)
		if err != nil {
			t.Fatal(err)
		}
		if rep != nil {
			t.Fatalf("fault-free TLP partition mismatch for %q: %s", predSQL, rep.Message)
		}
	})
}
