package oracle

import (
	"sort"
	"sync"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/sut"
	"repro/internal/xerr"
)

// Oracle is one pluggable testing oracle: given an open database under
// test, generate a check (a query or a metamorphic query pair), run it
// through the SUT boundary, and report a detection or a clean pass
// (nil, nil). Implementations are stateless between checks beyond the
// randomness the Env supplies, so one instance may serve many databases.
type Oracle interface {
	// Name is the registry name ("pqs", "norec", "tlp").
	Name() string
	// Check runs one oracle iteration against db. A nil Report means the
	// check passed (or was discarded as unevaluable); a non-nil Report is
	// a detection.
	Check(db sut.DB, env *Env) (*Report, error)
}

// Env is the per-lifecycle context a check runs within: the campaign's
// random source, the dialect, generator hints, and a lazy renderer for the
// statements that built the database (the reproduction-trace prefix).
type Env struct {
	Dialect dialect.Dialect
	Rnd     *gen.Rand
	// Hints biases generated constants toward stored values (the same pool
	// gen.StateGen accumulates while building the database).
	Hints []sqlval.Value
	// MaxExprDepth bounds generated predicates (0 = default 3).
	MaxExprDepth int
	// Setup renders the statement sequence that built the database; nil
	// means no setup prefix (one-shot checks against a live shell).
	Setup func() []string
	// RecordStmt is called once per statement a check executes, so the
	// campaign's throughput counters stay truthful. May be nil.
	RecordStmt func()
}

// Depth returns the effective expression depth bound.
func (e *Env) Depth() int {
	if e.MaxExprDepth <= 0 {
		return 3
	}
	return e.MaxExprDepth
}

// SetupTrace renders the database-construction prefix (nil-safe).
func (e *Env) SetupTrace() []string {
	if e.Setup == nil {
		return nil
	}
	return e.Setup()
}

// Record notes one executed statement (nil-safe).
func (e *Env) Record() {
	if e.RecordStmt != nil {
		e.RecordStmt()
	}
}

// Options parameterize oracle construction.
type Options struct {
	// MaxExprDepth bounds generated predicates (0 = default).
	MaxExprDepth int
	// Sessions fixes the serializability oracle's concurrent-session count
	// per history (0 = seed-derived 2 or 3). Other oracles ignore it.
	Sessions int
}

// Factory builds one oracle instance.
type Factory func(Options) Oracle

var (
	registryMu sync.RWMutex
	factories  = map[string]Factory{}
)

// Register makes an oracle available under the given name, in the style of
// sut.Register: oracles register themselves from an init function (PQS
// registers from internal/core, whose pivot machinery it wraps; the
// metamorphic oracles register from this package). It panics on a
// duplicate or empty name.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("oracle: Register with empty name or nil factory")
	}
	if _, dup := factories[name]; dup {
		panic("oracle: Register called twice for oracle " + name)
	}
	factories[name] = f
}

// Names lists registered oracle names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New constructs the named oracle.
func New(name string, o Options) (Oracle, error) {
	registryMu.RLock()
	f, ok := factories[name]
	registryMu.RUnlock()
	if !ok {
		return nil, xerr.New(xerr.CodeUnsupported,
			"oracle: unknown oracle %q (registered: %v); missing blank import of the registering package?", name, Names())
	}
	return f(o), nil
}

// ForFault maps a fault's expected-oracle registry label onto the testing
// oracle that hunts it: metamorphic faults route to NoREC/TLP campaigns,
// everything else to PQS (whose error and crash oracles run in every
// campaign's build phase anyway).
func ForFault(info faults.Info) string {
	switch info.Oracle {
	case faults.OracleTLP:
		return "tlp"
	case faults.OracleNoREC:
		return "norec"
	case faults.OracleRecovery:
		return "recovery"
	case faults.OracleSerializability:
		return "serializability"
	default:
		return "pqs"
	}
}

// pickTable selects a random check target, preferring tables that hold
// rows (empty tables make every check trivially pass).
func pickTable(db sut.DB, rnd *gen.Rand) (string, schema.TableInfo, bool) {
	intro := db.Introspect()
	tables := intro.Tables()
	var nonEmpty []string
	for _, t := range tables {
		if intro.RowCount(t) > 0 {
			nonEmpty = append(nonEmpty, t)
		}
	}
	pool := nonEmpty
	if len(pool) == 0 {
		pool = tables
	}
	if len(pool) == 0 {
		return "", schema.TableInfo{}, false
	}
	name := pool[rnd.Intn(len(pool))]
	info, err := intro.Describe(name)
	if err != nil || len(info.Columns) == 0 {
		return "", schema.TableInfo{}, false
	}
	return name, info, true
}

// columnPicks adapts a table's columns into the expression generator's
// pool, qualified by the table name.
func columnPicks(table string, info schema.TableInfo) []gen.ColumnPick {
	out := make([]gen.ColumnPick, 0, len(info.Columns))
	for _, c := range info.Columns {
		out = append(out, gen.ColumnPick{Table: table, Column: c})
	}
	return out
}

// execCheck runs one check statement through the SUT boundary and applies
// the shared error/crash oracle to its outcome. A nil Result with a nil
// Report means the statement failed with an expected or artifact error and
// the check should be discarded.
func execCheck(db sut.DB, env *Env, st sqlast.Stmt, by string) (*sut.Result, *Report, error) {
	env.Record()
	res, err := db.ExecAST(st)
	if err == nil {
		return res, nil, nil
	}
	switch v := Classify(st, err, env.Dialect); v {
	case VerdictBug, VerdictCrash:
		code, _ := xerr.CodeOf(err)
		return nil, &Report{
			Oracle:     OracleFor(v),
			DetectedBy: by,
			Message:    err.Error(),
			Code:       code,
			Trace:      append(env.SetupTrace(), sqlast.SQL(st, env.Dialect)),
		}, nil
	default:
		return nil, nil, nil
	}
}
