package oracle_test

import (
	"sync"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/runner"
)

// oracleNames are the testing oracles the matrix crosses every fault with.
var oracleNames = []string{"pqs", "tlp", "norec"}

// expectation is one cell of the cross-oracle fault-detection matrix.
type expectation uint8

const (
	// mustDetect: the oracle is expected to catch the fault within budget.
	mustDetect expectation = iota
	// mustMiss: the oracle is structurally blind to the fault — its
	// campaigns never generate the query shape the fault is gated on — so
	// any detection is a matrix bug.
	mustMiss
	// mayDetect: detection is possible but not guaranteed (metamorphic
	// oracles catch many containment-class row drops, budget permitting).
	mayDetect
)

// expectationFor encodes the matrix: error/crash faults fire in the
// database-generation phase (or on any SELECT) every campaign shares, so
// every oracle catches them; metamorphic faults are caught by their oracle
// and are invisible to the others; containment faults are PQS's home turf,
// with the metamorphic oracles as opportunistic backstops.
func expectationFor(info faults.Info, oracleName string) expectation {
	switch info.Oracle {
	case faults.OracleError, faults.OracleCrash:
		return mustDetect
	case faults.OracleTLP:
		if oracleName == "tlp" {
			return mustDetect
		}
		return mustMiss
	case faults.OracleNoREC:
		if oracleName == "norec" {
			return mustDetect
		}
		return mustMiss
	case faults.OracleRecovery:
		// Durability faults are dormant without the pager storage backend:
		// pqs/tlp/norec campaigns run in-memory, so the fault's code never
		// executes and any detection is a matrix bug. The recovery oracle
		// itself is swept by TestRecoveryFaultMatrix (it needs a pager
		// session the shared budget table here doesn't configure).
		return mustMiss
	case faults.OracleSerializability:
		// Isolation faults are gated on open transactions from concurrent
		// sessions; single-session pqs/tlp/norec campaigns never open one,
		// so the fault sites stay dormant and any detection is a matrix
		// bug. The serializability oracle itself is swept by
		// TestSerializabilityFaultMatrix.
		return mustMiss
	default: // containment
		if oracleName == "pqs" {
			return mustDetect
		}
		return mayDetect
	}
}

// TestCrossOracleFaultMatrix runs every registered fault (all 3 dialects)
// under each of PQS, TLP, and NoREC and asserts the expected detects and
// misses per oracle. The load-bearing cells are the metamorphic faults:
// they must be caught by their oracle and must NOT be caught by PQS —
// the structural blindness the metamorphic oracles exist to remove.
func TestCrossOracleFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-oracle matrix sweep is not short")
	}
	var (
		mu              sync.Mutex
		pqsBlindCatches = map[faults.Fault]bool{} // caught by tlp/norec AND missed by pqs
	)
	for _, d := range dialect.All {
		for _, info := range faults.ForDialect(d) {
			for _, name := range oracleNames {
				info, d, name := info, d, name
				t.Run(string(info.ID)+"/"+name, func(t *testing.T) {
					t.Parallel()
					want := expectationFor(info, name)
					// mustMiss cells always burn their whole budget (there
					// is nothing to short-circuit on) and mayDetect cells
					// are best-effort coverage, so both run small.
					budget := 1500
					switch want {
					case mustMiss:
						budget = 300
					case mayDetect:
						budget = 150
					}
					res := runner.Run(runner.Campaign{
						Dialect:      d,
						Fault:        info.ID,
						MaxDatabases: budget,
						Workers:      2,
						BaseSeed:     1,
						Oracles:      []string{name},
					})
					switch want {
					case mustDetect:
						if !res.Detected {
							t.Fatalf("%s expected to detect %s, missed in %d databases", name, info.ID, res.Databases)
						}
						if res.Bug.Oracle != info.Oracle {
							t.Errorf("%s caught %s via %s verdict, registry says %s", name, info.ID, res.Bug.Oracle, info.Oracle)
						}
						if isMetamorphic(info) && res.Bug.DetectedBy != name {
							t.Errorf("detection attributed to %q, want %q", res.Bug.DetectedBy, name)
						}
						if isMetamorphic(info) {
							mu.Lock()
							if _, seen := pqsBlindCatches[info.ID]; !seen {
								pqsBlindCatches[info.ID] = false
							}
							mu.Unlock()
						}
					case mustMiss:
						if res.Detected {
							t.Fatalf("%s is structurally blind to %s but detected it: %s", name, info.ID, res.Bug.Message)
						}
						if name == "pqs" && isMetamorphic(info) {
							mu.Lock()
							pqsBlindCatches[info.ID] = true
							mu.Unlock()
						}
					default:
						// Best-effort coverage: detection is not required,
						// but any detection must be correctly attributed.
						if res.Detected && res.Bug.DetectedBy != name {
							t.Errorf("detection attributed to %q, want %q", res.Bug.DetectedBy, name)
						}
						t.Logf("%s vs %s (best-effort): detected=%v in %d databases", name, info.ID, res.Detected, res.Databases)
					}
				})
			}
		}
	}
	t.Cleanup(func() {
		// Acceptance criterion: >= 3 faults provably detected by TLP/NoREC
		// while missed by PQS.
		blind := 0
		for id, pqsMissed := range pqsBlindCatches {
			if pqsMissed {
				blind++
			} else {
				t.Errorf("metamorphic fault %s was not confirmed missed by pqs", id)
			}
		}
		if blind < 3 {
			t.Errorf("only %d faults proven TLP/NoREC-detected and PQS-missed, want >= 3", blind)
		}
	})
}

func isMetamorphic(info faults.Info) bool {
	return info.Oracle == faults.OracleTLP || info.Oracle == faults.OracleNoREC
}

// TestOracleRouting checks ForFault's registry mapping.
func TestOracleRouting(t *testing.T) {
	cases := map[faults.Fault]string{
		faults.PartialIndexNotNull:    "pqs",
		faults.ReindexUnique:          "pqs",
		faults.RowidAliasCrash:        "pqs",
		faults.NullPartitionDrop:      "tlp",
		faults.UnionAllDedup:          "tlp",
		faults.AggEmptyGroup:          "tlp",
		faults.NorecCountMismatch:     "norec",
		faults.HashJoinCollation:      "pqs",
		faults.HashJoinNullKey:        "tlp",
		faults.HashLeftJoinDrop:       "tlp",
		faults.HashAggCollation:       "pqs",
		faults.AggAccumulatorNullSkip: "tlp",
		faults.TopKHeapBoundary:       "pqs",
		faults.PagerLostFlush:         "recovery",
		faults.PagerTornPageAccept:    "recovery",
		faults.PagerTruncatedReplay:   "recovery",
		faults.TxnDirtyReadLeak:       "serializability",
		faults.TxnLostUpdate:          "serializability",
		faults.TxnSnapshotSkewCommit:  "serializability",
		faults.TxnRollbackRestoreMiss: "serializability",
	}
	for f, want := range cases {
		info, ok := faults.Lookup(f)
		if !ok {
			t.Fatalf("fault %s not registered", f)
		}
		if got := oracle.ForFault(info); got != want {
			t.Errorf("ForFault(%s) = %q, want %q", f, got, want)
		}
	}
}
