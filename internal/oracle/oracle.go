// Package oracle implements PQS's three test oracles: containment (does
// the result set contain the pivot row), error (did a statement raise an
// error that is never expected), and crash (did the DBMS die).
package oracle

import (
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// Verdict classifies a statement's outcome.
type Verdict uint8

// Verdicts.
const (
	// VerdictOK: no error.
	VerdictOK Verdict = iota
	// VerdictExpected: the error is on the statement's whitelist (e.g. a
	// UNIQUE violation on INSERT) and is ignored, per §3.3.
	VerdictExpected
	// VerdictArtifact: the error indicates a generator shortcoming
	// (syntax error, missing object), not a DBMS bug. Ignored but
	// counted separately so generator regressions are visible.
	VerdictArtifact
	// VerdictBug: the error oracle fires — this error is never expected.
	VerdictBug
	// VerdictCrash: the crash oracle fires (simulated SEGFAULT).
	VerdictCrash
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictExpected:
		return "expected"
	case VerdictArtifact:
		return "artifact"
	case VerdictBug:
		return "bug"
	case VerdictCrash:
		return "crash"
	default:
		return "verdict?"
	}
}

// Classify applies the error oracle to one statement outcome.
func Classify(st sqlast.Stmt, err error, d dialect.Dialect) Verdict {
	if err == nil {
		return VerdictOK
	}
	code, ok := xerr.CodeOf(err)
	if !ok {
		return VerdictBug // foreign error escaping the engine is a bug
	}
	if code == xerr.CodeCrash {
		return VerdictCrash
	}
	if xerr.AlwaysUnexpected(code) {
		return VerdictBug
	}
	// Generator artifacts are never expected and never bugs. CodeIO is
	// here because it only arises from simulated power cuts: the
	// recovery oracle owns the durability verdict, so a statement dying
	// with the pager is harness mechanics, not an engine bug.
	// CodeTxnState (COMMIT without BEGIN and the like) is harness misuse,
	// not an engine bug.
	switch code {
	case xerr.CodeSyntax, xerr.CodeUnsupported, xerr.CodeNoObject, xerr.CodeBusy, xerr.CodeIO,
		xerr.CodeTxnState:
		return VerdictArtifact
	}
	if expectedFor(st, code, d) {
		return VerdictExpected
	}
	return VerdictBug
}

// expectedFor is the per-statement expected-error whitelist (§3.3: "we
// defined a list of error messages that we might expect when executing the
// respective statement").
func expectedFor(st sqlast.Stmt, code xerr.Code, d dialect.Dialect) bool {
	// A transaction aborting with a serialization conflict is the expected,
	// retryable outcome of first-committer-wins concurrency control —
	// whether surfaced at COMMIT or at the first statement after a
	// concurrent schema change.
	if code == xerr.CodeConflict {
		switch st.(type) {
		case *sqlast.Txn, *sqlast.Insert, *sqlast.Update, *sqlast.Delete,
			*sqlast.Select, *sqlast.Compound:
			return true
		}
	}
	switch st.(type) {
	case *sqlast.Insert, *sqlast.Update:
		switch code {
		case xerr.CodeUnique, xerr.CodeNotNull, xerr.CodeCheck, xerr.CodeType, xerr.CodeRange:
			return true
		}
	case *sqlast.Delete, *sqlast.Select, *sqlast.Compound, *sqlast.CreateView:
		// Strict typing and arithmetic can fail at runtime in Postgres.
		switch code {
		case xerr.CodeType, xerr.CodeRange:
			return true
		}
	case *sqlast.CreateTable, *sqlast.CreateStats:
		return code == xerr.CodeDuplicateObject || code == xerr.CodeType
	case *sqlast.CreateIndex:
		// Building a UNIQUE index over duplicate data legitimately fails;
		// so can evaluating index expressions under strict typing.
		switch code {
		case xerr.CodeDuplicateObject, xerr.CodeUnique, xerr.CodeType, xerr.CodeRange:
			return true
		}
	case *sqlast.AlterTable:
		return code == xerr.CodeDuplicateObject || code == xerr.CodeNotNull
	case *sqlast.Drop:
		return false
	case *sqlast.Maintenance:
		// The paper's key observation: maintenance statements have no
		// expected errors — REINDEX raising "UNIQUE constraint failed"
		// or VACUUM failing at all indicates a bug.
		return false
	case *sqlast.SetOption:
		// The generator only sets valid options to valid values, so
		// Listing 3's "Incorrect arguments to SET" is a bug.
		return false
	}
	return false
}

// Containment checks whether the expected pivot tuple appears in the
// result rows (step 7 of Figure 1). Comparison is type-sensitive with
// numeric cross-type equality; NULL matches NULL.
func Containment(rows [][]sqlval.Value, expected []sqlval.Value) bool {
	for _, row := range rows {
		if len(row) != len(expected) {
			continue
		}
		match := true
		for i := range row {
			if !row[i].Equal(expected[i]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// OracleFor maps a verdict to the Table 3 oracle label.
func OracleFor(v Verdict) faults.Oracle {
	switch v {
	case VerdictCrash:
		return faults.OracleCrash
	default:
		return faults.OracleError
	}
}
