package oracle_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dialect"
)

// TestOracleFalsePositiveSoak is the soundness guard for the whole oracle
// registry: against the fault-free engine, N random databases per dialect
// must produce zero detections under every oracle, through both the
// compiled-expression path and the -no-compile tree walk. A false positive
// here means either an engine bug or an oracle whose metamorphic identity
// does not actually hold (e.g. float-order-sensitive aggregation).
func TestOracleFalsePositiveSoak(t *testing.T) {
	databases := 40
	if testing.Short() {
		databases = 8
	}
	for _, d := range dialect.All {
		for _, name := range []string{"pqs", "tlp", "norec"} {
			for _, mode := range []struct {
				label     string
				noCompile bool
			}{
				{"compiled", false},
				{"no-compile", true},
			} {
				d, name, mode := d, name, mode
				t.Run(fmt.Sprintf("%s/%s/%s", d, name, mode.label), func(t *testing.T) {
					t.Parallel()
					tester := core.NewTester(core.Config{
						Dialect:      d,
						Oracle:       name,
						Seed:         101,
						QueriesPerDB: 15,
						NoCompile:    mode.noCompile,
					})
					for i := 0; i < databases; i++ {
						bug, err := tester.RunDatabase()
						if err != nil {
							t.Fatal(err)
						}
						if bug != nil {
							t.Fatalf("fault-free engine flagged by %s (%s verdict): %s\ntrace:\n  %s",
								bug.DetectedBy, bug.Oracle, bug.Message, strings.Join(bug.Trace, ";\n  "))
						}
					}
				})
			}
		}
	}
}
