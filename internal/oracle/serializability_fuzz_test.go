package oracle_test

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/sut"
)

// FuzzHistoryCheck fuzzes the serializability decision procedure itself:
// for any generation seed, the interleaved multi-session history the
// oracle draws must match a serial order on the fault-free engine — the
// soundness half of the oracle, searched far beyond the fixed campaign
// seeds. A failure is a real finding: either an engine isolation bug or
// an unsound equivalence check (e.g. a unit-assembly rule that includes a
// rolled-back effect). The seed corpus doubles as a unit test under plain
// `go test`.
func FuzzHistoryCheck(f *testing.F) {
	for _, s := range []int64{1, 2, 7, 42, 1 << 32, -3} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		for _, sql := range []string{
			"CREATE TABLE t0(c0 INT, c1 TEXT)",
			"INSERT INTO t0 VALUES (1, 'a'), (2, 'B'), (NULL, NULL)",
			"CREATE TABLE t1(c0 REAL)",
			"INSERT INTO t1 VALUES (0.5), (-1)",
		} {
			if _, err := db.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
		ora, err := oracle.New("serializability", oracle.Options{})
		if err != nil {
			t.Fatal(err)
		}
		env := &oracle.Env{Dialect: dialect.SQLite, Rnd: gen.NewRand(dialect.SQLite, seed)}
		for i := 0; i < 3; i++ {
			rep, err := ora.Check(db, env)
			if err != nil {
				t.Fatal(err)
			}
			if rep != nil {
				t.Fatalf("fault-free history flagged (seed %d, round %d): %s", seed, i, rep.Message)
			}
		}
	})
}
