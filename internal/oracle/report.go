package oracle

import (
	"repro/internal/faults"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// Report is one oracle detection — the shape every testing oracle (PQS,
// NoREC, TLP, the fuzzer baseline) produces and the whole downstream stack
// (runner, reduce, CLIs) consumes. It lives here rather than in the core
// tester so metamorphic oracles can construct reports without depending on
// the PQS loop; internal/core aliases it as core.Bug for its historical
// callers.
type Report struct {
	// Oracle is the verdict category in the paper's Table 3 sense
	// (contains/error/segfault), extended with the metamorphic categories
	// (norec/tlp) for whole-result-set detections.
	Oracle  faults.Oracle
	Message string
	// Code is the engine error code for error/crash detections.
	Code xerr.Code
	// Trace is the SQL statement sequence reproducing the bug; the final
	// statement is the failing query (containment), erroring statement, or
	// — for metamorphic detections — the partitioned/optimized query.
	Trace []string
	// Expected is the pivot tuple the containment oracle missed (nil for
	// error/crash/metamorphic detections).
	Expected []sqlval.Value
	// PivotTables maps table → pivot row for reduction-time validation.
	PivotTables map[string][]sqlval.Value
	// Negative marks a §7 anticontainment detection: the pivot row was
	// present despite a FALSE condition (reduction then checks presence).
	Negative bool

	// DetectedBy names the testing oracle whose check produced this report
	// ("pqs", "tlp", "norec", "fuzz") — recorded so reproduction scripts
	// say which oracle fired.
	DetectedBy string
	// Compare is the metamorphic partner query of the final trace
	// statement: NoREC's unoptimized predicate projection, or TLP's
	// unpartitioned original. Reduction replays both sides and re-applies
	// the comparison. Empty for PQS/fuzzer detections.
	Compare string
	// Agg names the aggregate of a TLP aggregate-variant detection
	// ("COUNT", "SUM", "MAX"); empty means the row-multiset comparison.
	Agg string
	// CrashPlan is the serialized crash schedule of a recovery-oracle
	// detection (pager.CrashPlan.String()). Reduction replays the
	// identical simulated power cut. Empty for all other oracles.
	CrashPlan string
}
