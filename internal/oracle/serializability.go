package oracle

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sut"
	"repro/internal/xerr"
)

func init() {
	Register("serializability", func(o Options) Oracle { return &serializability{opts: o} })
}

// multiDB is the capability surface the serializability oracle needs
// beyond sut.DB: extra concurrent sessions, plus whole-state snapshot and
// restore for serial-order replay. Asserted structurally like the
// recovery oracle's crash capability; sut/memengine satisfies it, the
// wire backend (one database per driver connection) cannot.
type multiDB interface {
	sut.DB
	sut.MultiSession
	Snapshot() *engine.Snapshot
	RestoreSnapshot(*engine.Snapshot) error
}

// serializability implements the serializability-checking oracle: execute
// a generated multi-session history under a seeded deterministic
// interleaving, then search for an equivalent serial order of its
// committed units. Every committed transaction's statement results
// (including its reads) and the final committed state must be reproduced
// by executing the units one after another in some order on the same
// starting snapshot; rolled-back and conflict-aborted transactions must
// leave no trace. The engine's first-committer-wins validation makes the
// commit order itself a witness serial order, so a sound engine passes on
// the first candidate — any history with no witness at all is a bug.
type serializability struct {
	opts Options
}

// Name implements Oracle.
func (*serializability) Name() string { return "serializability" }

// maxSerialOrders bounds the serial-order search. Histories generate at
// most ~9 committed units, and the sound engine always matches the commit
// order (candidate #1), so the cap only bounds work on detections — where
// exhausting it just means "nothing matched within budget", which is the
// detection.
const maxSerialOrders = 720

// sessionTag prefixes one history statement with its session index in
// reproduction traces: "/*S1*/ BEGIN" is session 1's BEGIN. Setup-prefix
// statements carry no tag and replay on the primary session.
func sessionTag(session int) string { return fmt.Sprintf("/*S%d*/ ", session) }

// splitSessionTag recognizes a tagged trace line, returning the session
// index and the bare SQL.
func splitSessionTag(line string) (session int, sql string, ok bool) {
	if !strings.HasPrefix(line, "/*S") {
		return 0, "", false
	}
	end := strings.Index(line, "*/")
	if end < 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(line[3:end])
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, strings.TrimSpace(line[end+2:]), true
}

// histStep is one executed statement of an interleaved history.
type histStep struct {
	session int
	st      sqlast.Stmt
	out     stepOutcome
}

// stepOutcome is the comparable observation of one statement: error code
// on failure, sorted row multiset and rows-affected on success. Rows are
// compared as sorted multisets so legal row-order differences between the
// interleaved run and a serial replay never count as divergence.
type stepOutcome struct {
	failed   bool
	code     xerr.Code
	rows     []string
	affected int
}

func observeStep(res *sut.Result, err error) stepOutcome {
	if err != nil {
		code, _ := xerr.CodeOf(err)
		return stepOutcome{failed: true, code: code}
	}
	out := stepOutcome{affected: res.RowsAffected}
	if len(res.Rows) > 0 {
		enc := make([]string, len(res.Rows))
		for i, row := range res.Rows {
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = v.Literal()
			}
			enc[i] = strings.Join(parts, ",")
		}
		sort.Strings(enc)
		out.rows = enc
	}
	return out
}

// diff describes the first divergence from another outcome ("" if equal).
func (o stepOutcome) diff(rep stepOutcome) string {
	if o.failed != rep.failed {
		return fmt.Sprintf("error divergence (observed failed=%v code=%s, serial failed=%v code=%s)",
			o.failed, o.code, rep.failed, rep.code)
	}
	if o.failed {
		if o.code != rep.code {
			return fmt.Sprintf("error code %s vs %s", o.code, rep.code)
		}
		return ""
	}
	if len(o.rows) != len(rep.rows) {
		return fmt.Sprintf("%d rows observed, %d in serial replay", len(o.rows), len(rep.rows))
	}
	for i := range o.rows {
		if o.rows[i] != rep.rows[i] {
			return fmt.Sprintf("row (%s) observed vs (%s) in serial replay", o.rows[i], rep.rows[i])
		}
	}
	if o.affected != rep.affected {
		return fmt.Sprintf("%d rows affected observed, %d in serial replay", o.affected, rep.affected)
	}
	return ""
}

// unit is one committed unit of a history: a committed transaction's
// statements, or a single auto-committed statement. pos is the global
// step index at which the unit took effect (its COMMIT, or the statement
// itself) — sorting by pos yields the commit order.
type unit struct {
	pos   int
	stmts []int // indices into the history's steps
}

// assembleUnits extracts the committed units from an executed history.
// Rolled-back transactions, transactions whose COMMIT failed (conflict
// aborts), and statements that failed with CodeBusy (the first-writer
// lock — a pure concurrency artifact with no serial counterpart) are
// excluded: a serializable history is equivalent to some serial execution
// of exactly what committed.
func assembleUnits(steps []histStep) []unit {
	var units []unit
	open := map[int]*unit{} // session → pending transaction unit
	for i, s := range steps {
		if tx, ok := s.st.(*sqlast.Txn); ok {
			switch tx.Op {
			case sqlast.TxnBegin:
				if !s.out.failed {
					open[s.session] = &unit{}
				}
			case sqlast.TxnCommit:
				if u := open[s.session]; u != nil {
					delete(open, s.session)
					if !s.out.failed && len(u.stmts) > 0 {
						u.pos = i
						units = append(units, *u)
					}
				}
			default: // TxnRollback
				delete(open, s.session)
			}
			continue
		}
		if s.out.failed && s.out.code == xerr.CodeBusy {
			continue
		}
		if u := open[s.session]; u != nil {
			u.stmts = append(u.stmts, i)
			continue
		}
		units = append(units, unit{pos: i, stmts: []int{i}})
	}
	sort.Slice(units, func(a, b int) bool { return units[a].pos < units[b].pos })
	return units
}

// replaySerial executes the units in the given order on the restored base
// snapshot through the primary session (auto-commit — serial execution
// needs no transaction machinery, which also keeps replay off the
// injected isolation-fault sites) and compares every statement's outcome
// and the final committed state against the interleaved observations.
func replaySerial(db multiDB, base *engine.Snapshot, steps []histStep, units []unit, order []int, final tableDump) (bool, string) {
	if err := db.RestoreSnapshot(base); err != nil {
		return false, "snapshot restore failed: " + err.Error()
	}
	for _, ui := range order {
		for _, si := range units[ui].stmts {
			res, err := db.ExecAST(steps[si].st)
			if d := steps[si].out.diff(observeStep(res, err)); d != "" {
				return false, fmt.Sprintf("statement %d (%s): %s",
					si, sqlast.SQL(steps[si].st, db.Session().Dialect), d)
			}
		}
	}
	if d := final.diff(dump(db)); d != "" {
		return false, "final state: " + d
	}
	return true, ""
}

// searchSerial looks for a serial order of the committed units that
// reproduces the history: the commit order first (the sound engine's
// witness), then every other permutation up to maxSerialOrders. Returns
// whether a witness order exists, plus the commit-order divergence when
// none does (the most readable explanation of the violation).
func searchSerial(db multiDB, base *engine.Snapshot, steps []histStep, units []unit, final tableDump) (bool, string) {
	n := len(units)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ok, commitDiff := replaySerial(db, base, steps, units, order, final)
	if ok {
		return true, ""
	}
	// Permute: Heap's algorithm over the remaining orders, bounded.
	tried := 1
	c := make([]int, n)
	i := 0
	for i < n && tried < maxSerialOrders {
		if c[i] < i {
			if i%2 == 0 {
				order[0], order[i] = order[i], order[0]
			} else {
				order[c[i]], order[i] = order[i], order[c[i]]
			}
			tried++
			if ok, _ := replaySerial(db, base, steps, units, order, final); ok {
				return true, ""
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return false, commitDiff
}

// runHistory executes the history steps in order, each on its session's
// connection, filling in the observed outcomes. A statement whose error
// the shared error oracle classifies as a bug or crash short-circuits
// with that report (the build-phase error oracle, extended into the
// multi-session phase).
func runHistory(db multiDB, env *Env, steps []histStep, nSessions int) (*Report, error) {
	conns := make([]sut.Conn, nSessions)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i := range steps {
		s := &steps[i]
		if conns[s.session] == nil {
			c, err := db.NewConn()
			if err != nil {
				return nil, err
			}
			conns[s.session] = c
		}
		if env != nil {
			env.Record()
		}
		res, err := conns[s.session].ExecAST(s.st)
		s.out = observeStep(res, err)
		if err != nil {
			switch v := Classify(s.st, err, db.Session().Dialect); v {
			case VerdictBug, VerdictCrash:
				code, _ := xerr.CodeOf(err)
				rep := &Report{
					Oracle:     OracleFor(v),
					DetectedBy: "serializability",
					Message:    err.Error(),
					Code:       code,
				}
				if env != nil {
					rep.Trace = append(env.SetupTrace(), historyTrace(steps[:i+1], db)...)
				}
				return rep, nil
			}
		}
	}
	return nil, nil
}

// historyTrace renders the executed history with session tags.
func historyTrace(steps []histStep, db sut.DB) []string {
	d := db.Session().Dialect
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = sessionTag(s.session) + sqlast.SQL(s.st, d)
	}
	return out
}

// Check implements Oracle: one interleaved-history round. The database's
// committed state is restored to its pre-history snapshot before
// returning, pass or fail, so successive checks of a lifecycle all start
// from the state the setup trace describes.
func (o *serializability) Check(db sut.DB, env *Env) (*Report, error) {
	mdb, ok := db.(multiDB)
	if !ok {
		return nil, xerr.New(xerr.CodeUnsupported,
			"serializability oracle requires a multi-session backend with snapshot support (sut/memengine)")
	}
	sg := &gen.StateGen{Rnd: env.Rnd, E: db.Introspect(), Hints: env.Hints}
	nSessions := o.opts.Sessions
	if nSessions <= 0 {
		nSessions = 2 + env.Rnd.Intn(2)
	}
	scripts := sg.SessionScripts(nSessions)
	schedule := gen.Interleave(env.Rnd, scripts)
	if len(schedule) == 0 {
		return nil, nil
	}
	steps := make([]histStep, len(schedule))
	for i, stp := range schedule {
		steps[i] = histStep{session: stp.Session, st: scripts[stp.Session][stp.Index]}
	}

	base := mdb.Snapshot()
	rep, err := runHistory(mdb, env, steps, len(scripts))
	if err != nil || rep != nil {
		restoreErr := mdb.RestoreSnapshot(base)
		if err == nil {
			err = restoreErr
		}
		return rep, err
	}

	final := dump(db)
	units := assembleUnits(steps)
	serializable, detail := searchSerial(mdb, base, steps, units, final)
	if rerr := mdb.RestoreSnapshot(base); rerr != nil {
		return nil, rerr
	}
	if serializable {
		return nil, nil
	}
	return &Report{
		Oracle:     faults.OracleSerializability,
		DetectedBy: "serializability",
		Message: fmt.Sprintf("history of %d committed units matches no serial order; vs commit order: %s",
			len(units), detail),
		Trace: append(env.SetupTrace(), historyTrace(steps, db)...),
	}, nil
}

// SerializabilityReplay replays a candidate trace and reports whether the
// serializability violation still shows — the reducer's reproduction
// check. Untagged lines are setup, executed on the primary session;
// tagged lines ("/*S<n>*/ …") re-run as the interleaved history in trace
// order on per-session connections, and the serial-order search is
// re-applied. The candidate reproduces iff no serial order matches.
func SerializabilityReplay(db sut.DB, bug *Report, trace []string) bool {
	mdb, ok := db.(multiDB)
	if !ok {
		return false
	}
	d := db.Session().Dialect
	var steps []histStep
	maxSession := -1
	for _, line := range trace {
		if sess, sql, tagged := splitSessionTag(line); tagged {
			st, err := sqlparse.ParseOne(sql, d)
			if err != nil {
				continue // candidate mangled a statement: skip it
			}
			steps = append(steps, histStep{session: sess, st: st})
			if sess > maxSession {
				maxSession = sess
			}
		} else {
			_, _ = db.Exec(line) // setup errors just weaken the candidate
		}
	}
	if len(steps) == 0 {
		return false
	}
	base := mdb.Snapshot()
	if rep, err := runHistory(mdb, nil, steps, maxSession+1); err != nil || rep != nil {
		_ = mdb.RestoreSnapshot(base)
		return false
	}
	final := dump(db)
	units := assembleUnits(steps)
	serializable, _ := searchSerial(mdb, base, steps, units, final)
	_ = mdb.RestoreSnapshot(base)
	return !serializable
}
