package sut_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
	"repro/internal/sut"
	_ "repro/internal/sut/memengine"
	_ "repro/internal/sut/wire"
)

// conformanceScript is one DDL/DML/DQL sequence every backend must agree
// on, statement by statement. It deliberately crosses the whole surface:
// tables, indexes, views, inserts, updates, deletes, joins, aggregates,
// compound queries, EXPLAIN, and maintenance.
var conformanceScript = []string{
	"CREATE TABLE t0(c0 INT, c1 TEXT)",
	"INSERT INTO t0 VALUES (1, 'a'), (2, 'b'), (NULL, 'c')",
	"CREATE TABLE t1(c0 INT, c1 TEXT NOT NULL)",
	"INSERT INTO t1 VALUES (1, 'x'), (3, 'y')",
	"CREATE INDEX i0 ON t0(c0)",
	"SELECT * FROM t0",
	"SELECT DISTINCT c1 FROM t0 WHERE c0 IS NULL",
	"SELECT t0.c0, t1.c1 FROM t0 JOIN t1 ON (t0.c0 = t1.c0)",
	"SELECT t0.c0 FROM t0 LEFT JOIN t1 ON (t0.c0 = t1.c0) ORDER BY t0.c0 LIMIT 10",
	"UPDATE t0 SET c1 = 'z' WHERE c0 = 2",
	"SELECT c1 FROM t0 ORDER BY c1",
	"CREATE VIEW v0 AS SELECT c0 FROM t0",
	"SELECT * FROM v0 ORDER BY c0",
	"DELETE FROM t1 WHERE c0 = 3",
	"SELECT * FROM t1",
	"SELECT c0 FROM t0 UNION SELECT c0 FROM t1 ORDER BY c0",
	"SELECT COUNT(*) FROM t0",
	"EXPLAIN QUERY PLAN SELECT * FROM t0 WHERE c0 = 1",
	"SELECT * FROM missing_table",
	"DROP TABLE t1",
	"SELECT c0 + 1 FROM t0 WHERE c0 >= 1 ORDER BY c0",
}

// isQuery reports whether a script statement must go down the query path
// (the wire backend cannot return rows from its exec path).
func isQuery(sql string) bool {
	up := strings.ToUpper(strings.TrimSpace(sql))
	return strings.HasPrefix(up, "SELECT") || strings.HasPrefix(up, "EXPLAIN")
}

// outcome is one statement's observable behaviour at the boundary.
type outcome struct {
	failed   bool
	columns  string
	rows     []string
	affected int
}

func observe(db sut.DB, sql string) outcome {
	if isQuery(sql) {
		res, err := db.Query(sql)
		if err != nil {
			return outcome{failed: true}
		}
		return outcome{columns: strings.Join(res.Columns, "|"), rows: renderRows(res.Rows)}
	}
	res, err := db.Exec(sql)
	if err != nil {
		return outcome{failed: true}
	}
	return outcome{affected: res.RowsAffected}
}

// renderRows canonicalizes result rows for comparison. Values are
// compared by their literal rendering: the wire backend reconstructs
// values from driver.Value, so kinds must survive the round trip well
// enough to render identically.
func renderRows(rows [][]sqlval.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func diffOutcome(a, b outcome) string {
	if a.failed != b.failed {
		return fmt.Sprintf("error divergence: %v vs %v", a.failed, b.failed)
	}
	if a.columns != b.columns {
		return fmt.Sprintf("columns %q vs %q", a.columns, b.columns)
	}
	if len(a.rows) != len(b.rows) {
		return fmt.Sprintf("row count %d vs %d", len(a.rows), len(b.rows))
	}
	for i := range a.rows {
		if a.rows[i] != b.rows[i] {
			return fmt.Sprintf("row %d: %q vs %q", i, a.rows[i], b.rows[i])
		}
	}
	if a.affected != b.affected {
		return fmt.Sprintf("rows affected %d vs %d", a.affected, b.affected)
	}
	return ""
}

// TestBackendConformance runs the shared script against the memengine and
// wire backends for every dialect and asserts identical observable
// behaviour — the boundary itself is the unit under test.
func TestBackendConformance(t *testing.T) {
	for _, d := range dialect.All {
		t.Run(d.String(), func(t *testing.T) {
			sess := sut.Session{Dialect: d}
			mem := mustOpen(t, "memengine", sess)
			defer mem.Close()
			wired := mustOpen(t, "wire", sess)
			defer wired.Close()
			for _, sql := range conformanceScript {
				a, b := observe(mem, sql), observe(wired, sql)
				if diff := diffOutcome(a, b); diff != "" {
					t.Fatalf("backends diverge on %q: %s", sql, diff)
				}
			}
		})
	}
}

// TestBackendConformanceUnderFault pins that injected-bug behaviour
// travels through the wire identically: Listing 1 must return the same
// wrong result set on both backends.
func TestBackendConformanceUnderFault(t *testing.T) {
	sess := sut.Session{Dialect: dialect.SQLite, Faults: faults.NewSet(faults.PartialIndexNotNull)}
	script := []string{
		"CREATE TABLE t0(c0)",
		"CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL",
		"INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)",
		"SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1",
	}
	mem := mustOpen(t, "memengine", sess)
	defer mem.Close()
	wired := mustOpen(t, "wire", sess)
	defer wired.Close()
	for _, sql := range script {
		a, b := observe(mem, sql), observe(wired, sql)
		if diff := diffOutcome(a, b); diff != "" {
			t.Fatalf("backends diverge on %q: %s", sql, diff)
		}
	}
	// And the fault must actually fire: 4 rows stored minus the one the
	// buggy partial index hides.
	res, err := mem.Query("SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1")
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("fault did not fire as Listing 1 describes: rows=%d err=%v", len(res.Rows), err)
	}
}

// TestFastPathMatchesWireFidelity executes the parsed conformance script
// through ExecAST on a fast-path session and a wire-fidelity session and
// asserts identical behaviour — the campaign fast path must not change
// semantics, only skip the render→reparse round trip.
func TestFastPathMatchesWireFidelity(t *testing.T) {
	for _, d := range dialect.All {
		t.Run(d.String(), func(t *testing.T) {
			fast := mustOpen(t, "memengine", sut.Session{Dialect: d})
			defer fast.Close()
			slow := mustOpen(t, "memengine", sut.Session{Dialect: d, WireFidelity: true})
			defer slow.Close()
			for _, sql := range conformanceScript {
				st, err := sqlparse.ParseOne(sql, d)
				if err != nil {
					// Un-parseable for this dialect: both sessions share
					// the parser, so there is nothing to compare.
					continue
				}
				ra, ea := fast.ExecAST(st)
				rb, eb := slow.ExecAST(st)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("%q: fast path err=%v, wire fidelity err=%v", sql, ea, eb)
				}
				if ea != nil {
					continue
				}
				a := outcome{columns: strings.Join(ra.Columns, "|"), rows: renderRows(ra.Rows), affected: ra.RowsAffected}
				b := outcome{columns: strings.Join(rb.Columns, "|"), rows: renderRows(rb.Rows), affected: rb.RowsAffected}
				if diff := diffOutcome(a, b); diff != "" {
					t.Fatalf("fast path diverges on %q: %s", sql, diff)
				}
			}
		})
	}
}

// txnConformanceScript exercises the transaction surface: staged writes
// visible inside the transaction, committed writes visible after, rolled
// back writes gone, nested BEGIN rejected, and COMMIT/ROLLBACK outside a
// transaction rejected. Every backend must agree statement by statement.
var txnConformanceScript = []string{
	"CREATE TABLE t0(c0 INT, c1 TEXT)",
	"INSERT INTO t0 VALUES (1, 'a'), (2, 'b')",
	"BEGIN",
	"INSERT INTO t0 VALUES (3, 'c')",
	"SELECT c0, c1 FROM t0 ORDER BY c0", // staged insert visible in-txn
	"UPDATE t0 SET c1 = 'z' WHERE c0 = 1",
	"COMMIT",
	"SELECT c0, c1 FROM t0 ORDER BY c0", // committed state
	"BEGIN",
	"DELETE FROM t0",
	"SELECT COUNT(*) FROM t0", // 0 inside the transaction
	"ROLLBACK",
	"SELECT COUNT(*) FROM t0", // restored to 3
	"BEGIN",
	"BEGIN", // nested begin: rejected, transaction stays open
	"INSERT INTO t0 VALUES (4, 'd')",
	"ROLLBACK",
	"SELECT COUNT(*) FROM t0", // still 3: the insert rolled back
	"COMMIT",                  // no transaction open: rejected
	"ROLLBACK",                // no transaction open: rejected
	"SELECT c0, c1 FROM t0 ORDER BY c0",
}

// TestTxnConformance runs the transaction script against the memengine
// fast path, a wire-fidelity memengine session, and the wire backend for
// every dialect, asserting identical observable behaviour: begin/commit/
// rollback visibility, rollback-restores-state, and nested-begin
// rejection must not depend on how statements reach the engine.
func TestTxnConformance(t *testing.T) {
	for _, d := range dialect.All {
		t.Run(d.String(), func(t *testing.T) {
			mem := mustOpen(t, "memengine", sut.Session{Dialect: d})
			defer mem.Close()
			fid := mustOpen(t, "memengine", sut.Session{Dialect: d, WireFidelity: true})
			defer fid.Close()
			wired := mustOpen(t, "wire", sut.Session{Dialect: d})
			defer wired.Close()
			for _, sql := range txnConformanceScript {
				a, b, c := observe(mem, sql), observe(fid, sql), observe(wired, sql)
				if diff := diffOutcome(a, b); diff != "" {
					t.Fatalf("fast path vs wire fidelity diverge on %q: %s", sql, diff)
				}
				if diff := diffOutcome(a, c); diff != "" {
					t.Fatalf("memengine vs wire diverge on %q: %s", sql, diff)
				}
			}
			// The script's own expectations, not just cross-backend
			// agreement: rollback restored the pre-DELETE state.
			res, err := mem.Query("SELECT COUNT(*) FROM t0")
			if err != nil || len(res.Rows) != 1 || res.Rows[0][0].String() != "3" {
				t.Fatalf("final state wrong: rows=%v err=%v", res, err)
			}
			// And the nested BEGIN / misplaced COMMIT statements really
			// failed rather than silently succeeding everywhere.
			bad := []int{14, 18, 19} // second BEGIN, trailing COMMIT, trailing ROLLBACK
			check := mustOpen(t, "memengine", sut.Session{Dialect: d})
			defer check.Close()
			for i, sql := range txnConformanceScript {
				o := observe(check, sql)
				wantFail := false
				for _, j := range bad {
					if i == j {
						wantFail = true
					}
				}
				if o.failed != wantFail {
					t.Fatalf("statement %d %q: failed=%v, want %v", i, sql, o.failed, wantFail)
				}
			}
		})
	}
}

// TestTxnConnIsolation pins the multi-session semantics at the sut
// boundary: a second Conn's staged writes are invisible to the primary
// session until COMMIT, and Close rolls back an open transaction.
func TestTxnConnIsolation(t *testing.T) {
	db := mustOpen(t, "memengine", sut.Session{Dialect: dialect.SQLite})
	defer db.Close()
	ms, ok := db.(sut.MultiSession)
	if !ok {
		t.Fatal("memengine should support MultiSession")
	}
	for _, sql := range []string{
		"CREATE TABLE t0(c0 INT)",
		"INSERT INTO t0 VALUES (1)",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := ms.NewConn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("INSERT INTO t0 VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	count := func(db interface {
		Query(string) (*sut.Result, error)
	}) string {
		res, err := db.Query("SELECT COUNT(*) FROM t0")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].String()
	}
	if got := count(db); got != "1" {
		t.Fatalf("primary session sees staged insert: COUNT=%s", got)
	}
	if res, err := c2.Exec("SELECT COUNT(*) FROM t0"); err != nil || res.Rows[0][0].String() != "2" {
		t.Fatalf("staging session should see its own insert: %v %v", res, err)
	}
	if _, err := c2.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if got := count(db); got != "2" {
		t.Fatalf("after commit COUNT=%s, want 2", got)
	}

	// Close with an open transaction rolls it back.
	c3, err := ms.NewConn()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Exec("BEGIN; DELETE FROM t0"); err != nil {
		t.Fatal(err)
	}
	if err := c3.Close(); err != nil {
		t.Fatal(err)
	}
	if got := count(db); got != "2" {
		t.Fatalf("Close should roll back: COUNT=%s, want 2", got)
	}

	// The wire backend pins one engine per driver connection, so it
	// cannot open extra sessions — the capability assertion must fail
	// structurally, like the recovery oracle's crash capability.
	wired := mustOpen(t, "wire", sut.Session{Dialect: dialect.SQLite})
	defer wired.Close()
	if _, ok := wired.(sut.MultiSession); ok {
		t.Fatal("wire backend should not claim MultiSession")
	}
}

func mustOpen(t *testing.T, backend string, sess sut.Session) sut.DB {
	t.Helper()
	db, err := sut.Open(backend, sess)
	if err != nil {
		t.Fatalf("open %s: %v", backend, err)
	}
	return db
}
