package sut_test

import (
	"fmt"
	"testing"

	"repro/internal/dialect"
	"repro/internal/sut"
	"repro/internal/xerr"

	_ "repro/internal/sut/memengine"
)

// FuzzTxnRoundTrip drives arbitrary byte-derived transaction scripts
// across two concurrent sessions and holds the transaction layer to its
// structural invariants: every error carries a known xerr code and none
// is ever Corrupt/Internal/Crash, and after both sessions close (rolling
// back whatever they left open) the committed state seen through the
// query path agrees with ground-truth introspection. The fuzzer's job is
// to find a BEGIN/COMMIT/ROLLBACK/DML ordering — including misuse like
// double BEGIN or COMMIT with no transaction — that corrupts state or
// leaks staged rows.
func FuzzTxnRoundTrip(f *testing.F) {
	f.Add([]byte{0, 4, 1, 0x14, 2})                   // begin, insert, commit / begin, rollback
	f.Add([]byte{4, 0, 0, 4, 2, 1})                   // double begin, conflictable insert
	f.Add([]byte{0x10, 0x14, 4, 1, 0x11, 0x12})       // two sessions interleaved
	f.Add([]byte{5, 6, 7, 0x15, 0x16, 0x17, 1, 0x11}) // reads and writes both sides
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 64 {
			t.Skip()
		}
		db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if _, err := db.Exec("CREATE TABLE t0(c0 INT, c1 TEXT)"); err != nil {
			t.Fatal(err)
		}
		ms := db.(sut.MultiSession)
		conns := make([]sut.Conn, 2)
		for i := range conns {
			if conns[i], err = ms.NewConn(); err != nil {
				t.Fatal(err)
			}
		}
		for pos, b := range script {
			c := conns[(b>>4)&1]
			var sql string
			switch b & 7 {
			case 0:
				sql = "BEGIN"
			case 1:
				sql = "COMMIT"
			case 2:
				sql = "ROLLBACK"
			case 3:
				sql = fmt.Sprintf("DELETE FROM t0 WHERE c0 = %d", int(b))
			case 4, 5:
				sql = fmt.Sprintf("INSERT INTO t0 VALUES (%d, 'x')", pos)
			case 6:
				sql = fmt.Sprintf("UPDATE t0 SET c1 = 'u' WHERE c0 < %d", int(b))
			default:
				sql = "SELECT * FROM t0"
			}
			if _, err := c.Exec(sql); err != nil {
				code, known := xerr.CodeOf(err)
				if !known {
					t.Fatalf("step %d (%s): foreign error escaped the engine: %v", pos, sql, err)
				}
				if xerr.AlwaysUnexpected(code) {
					t.Fatalf("step %d (%s): %s error from a txn script: %v", pos, sql, code, err)
				}
			}
		}
		for _, c := range conns {
			if err := c.Close(); err != nil {
				t.Fatalf("conn close: %v", err)
			}
		}
		// Committed state must be internally consistent: the (possibly
		// buggy-in-principle) query path and ground-truth introspection
		// agree on the surviving row count.
		res, err := db.Query("SELECT COUNT(*) FROM t0")
		if err != nil {
			t.Fatalf("post-script count: %v", err)
		}
		want := len(db.Introspect().RawRows("t0"))
		got := fmt.Sprintf("%d", want)
		if len(res.Rows) != 1 || len(res.Rows[0]) != 1 || res.Rows[0][0].Literal() != got {
			t.Fatalf("query count %v != %d ground-truth rows", res.Rows, want)
		}
	})
}
