package sut

import "sync"

// Resetter is the optional capability a backend implements when its
// databases can be rewound to the pristine state of a fresh Open without
// reallocating: Reset must leave the DB indistinguishable (to the tester
// stack) from a newly opened session. Backends without it are still
// poolable — the pool falls back to close-and-reopen.
type Resetter interface {
	Reset() error
}

// ResetDB restores db to a pristine session: in place when the backend
// supports Reset, otherwise by closing it and opening a replacement on
// the same backend and session. The returned DB is the one to keep using.
func ResetDB(backend string, db DB) (DB, error) {
	if r, ok := db.(Resetter); ok {
		if err := r.Reset(); err == nil {
			return db, nil
		}
	}
	sess := db.Session()
	_ = db.Close()
	return Open(backend, sess)
}

// Pool reuses databases of one backend+session across lifecycles, so a
// campaign scheduler pays for engine construction once per worker instead
// of once per database. Acquire returns a pristine DB (a reset idle one,
// or a fresh Open); Release parks it for the next Acquire. The pool is
// safe for concurrent use.
type Pool struct {
	backend string
	sess    Session

	mu   sync.Mutex
	idle []DB
}

// NewPool creates a pool that opens databases on the named backend (""
// selects DefaultBackend) with the given session options.
func NewPool(backend string, s Session) *Pool {
	return &Pool{backend: backend, sess: s}
}

// Session reports the session the pool opens databases with.
func (p *Pool) Session() Session { return p.sess }

// Acquire returns a pristine database: an idle pooled one reset in place,
// or a fresh Open when the pool is empty.
func (p *Pool) Acquire() (DB, error) {
	p.mu.Lock()
	var db DB
	if n := len(p.idle); n > 0 {
		db = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if db == nil {
		return Open(p.backend, p.sess)
	}
	return ResetDB(p.backend, db)
}

// Release parks a database for reuse. Databases that cannot be reset are
// closed instead of pooled (reopening costs the same as resetting them
// would).
func (p *Pool) Release(db DB) {
	if db == nil {
		return
	}
	if _, ok := db.(Resetter); !ok {
		_ = db.Close()
		return
	}
	p.mu.Lock()
	p.idle = append(p.idle, db)
	p.mu.Unlock()
}

// Close closes every idle database. In-flight databases handed out by
// Acquire are the caller's to close (or Release after Close, which pools
// them for nothing but leaks nothing — engines are garbage-collected).
func (p *Pool) Close() error {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	var first error
	for _, db := range idle {
		if err := db.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
