package sut_test

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sut"
)

func TestRegistry(t *testing.T) {
	got := sut.Drivers()
	for _, want := range []string{"memengine", "wire"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, got)
		}
	}

	if _, err := sut.Open("no-such-backend", sut.Session{Dialect: dialect.SQLite}); err == nil {
		t.Error("unknown backend should fail to open")
	} else if !strings.Contains(err.Error(), "no-such-backend") {
		t.Errorf("error should name the backend: %v", err)
	}

	// "" selects the default backend.
	db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite})
	if err != nil {
		t.Fatalf("default backend: %v", err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t0(c0 INT)"); err != nil {
		t.Fatal(err)
	}
	if n := db.Introspect().RowCount("t0"); n != 0 {
		t.Errorf("RowCount = %d, want 0", n)
	}
}

// TestSessionOptionsReachBackend checks each Session knob observably
// changes the opened database on both backends.
func TestSessionOptionsReachBackend(t *testing.T) {
	for _, backend := range []string{"memengine", "wire"} {
		t.Run(backend, func(t *testing.T) {
			// Faults reach the engine.
			db := mustOpen(t, backend, sut.Session{
				Dialect: dialect.SQLite,
				Faults:  faults.NewSet(faults.PartialIndexNotNull),
			})
			defer db.Close()
			if db.Session().Faults == nil || !db.Session().Faults.Has(faults.PartialIndexNotNull) {
				t.Error("session fault set lost")
			}

			// NoPlanner forces full scans: Plan must not report an index.
			np := mustOpen(t, backend, sut.Session{Dialect: dialect.SQLite, NoPlanner: true})
			defer np.Close()
			for _, sql := range []string{
				"CREATE TABLE t0(c0 INT)",
				"CREATE INDEX i0 ON t0(c0)",
				"INSERT INTO t0 VALUES (1), (2), (3)",
			} {
				if _, err := np.Exec(sql); err != nil {
					t.Fatal(err)
				}
			}
			paths, err := np.Plan("SELECT * FROM t0 WHERE c0 = 2")
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range paths {
				if strings.Contains(strings.ToUpper(p), "INDEX") {
					t.Errorf("planner=off still chose an index path: %q", p)
				}
			}
		})
	}
}
