package sut_test

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/sut"
	"repro/internal/sut/memengine"
	_ "repro/internal/sut/wire"
)

func TestPoolReusesResettableDB(t *testing.T) {
	p := sut.NewPool("memengine", sut.Session{Dialect: dialect.SQLite})
	defer p.Close()

	db1, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db1.Exec("CREATE TABLE t0(c0 INT); INSERT INTO t0 VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	under := db1.(*memengine.DB).Underlying()
	p.Release(db1)

	db2, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if db2.(*memengine.DB).Underlying() != under {
		t.Error("pool did not reuse the released engine")
	}
	// The reused database must be pristine.
	if tables := db2.Introspect().Tables(); len(tables) != 0 {
		t.Errorf("reused database not pristine: tables %v", tables)
	}
	if _, err := db2.Exec("CREATE TABLE t0(c0 INT)"); err != nil {
		t.Errorf("create on reused database: %v", err)
	}
	p.Release(db2)
}

func TestPoolClosesNonResettable(t *testing.T) {
	p := sut.NewPool("wire", sut.Session{Dialect: dialect.SQLite})
	defer p.Close()
	db, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.(sut.Resetter); ok {
		t.Skip("wire backend grew Reset; test premise gone")
	}
	p.Release(db) // must close, not pool
	db2, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if tables := db2.Introspect().Tables(); len(tables) != 0 {
		t.Errorf("fresh database not pristine: %v", tables)
	}
	db2.Close()
}

func TestResetDBFallsBackToReopen(t *testing.T) {
	db, err := sut.Open("wire", sut.Session{Dialect: dialect.MySQL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t0(c0 INT)"); err != nil {
		t.Fatal(err)
	}
	db, err = sut.ResetDB("wire", db)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if tables := db.Introspect().Tables(); len(tables) != 0 {
		t.Errorf("reopened database not pristine: %v", tables)
	}
	if got := db.Session().Dialect; got != dialect.MySQL {
		t.Errorf("session lost on reopen: dialect %v", got)
	}
}
