package sut_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dialect"
	"repro/internal/storage/pager"
	"repro/internal/sut"
	"repro/internal/xerr"
)

// crashable is the recovery-oracle capability surface, re-declared here
// the way callers discover it: structurally.
type crashable interface {
	Durable() bool
	ArmCrash(pager.CrashPlan) bool
	DisarmCrash()
	CrashRecover(pager.CrashPlan) error
}

// TestPagerSessionLeavesNoArtifacts opens a durable session, works it,
// and checks Close removes every file it created. TMPDIR is pinned to a
// test-owned directory so concurrent test binaries cannot interfere.
func TestPagerSessionLeavesNoArtifacts(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite, Storage: "pager"})
	if err != nil {
		t.Fatalf("open pager session: %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE t0(c0 INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t0(c0) VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	// The database files exist while the session is open.
	dirs, err := filepath.Glob(filepath.Join(tmp, "pager-*"))
	if err != nil || len(dirs) != 1 {
		t.Fatalf("expected 1 pager dir under TMPDIR, found %v (err %v)", dirs, err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dirs[0]); !os.IsNotExist(err) {
		t.Fatalf("pager dir %s survived Close (stat err %v)", dirs[0], err)
	}

	// Artifacts are removed even when the session died to a simulated
	// crash mid-lifecycle.
	db, err = sut.Open("", sut.Session{Dialect: dialect.SQLite, Storage: "pager"})
	if err != nil {
		t.Fatal(err)
	}
	cdb := db.(crashable)
	if _, err := db.Exec(`CREATE TABLE t0(c0 INT)`); err != nil {
		t.Fatal(err)
	}
	if !cdb.ArmCrash(pager.CrashPlan{Point: pager.BeforeSync, Mode: pager.LostTail}) {
		t.Fatal("ArmCrash refused")
	}
	if _, err := db.Exec(`INSERT INTO t0(c0) VALUES (1)`); !xerr.Is(err, xerr.CodeIO) {
		t.Fatalf("armed statement: %v, want CodeIO", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close after crash: %v", err)
	}
	if dirs, _ := filepath.Glob(filepath.Join(tmp, "pager-*")); len(dirs) != 0 {
		t.Fatalf("crashed session left artifacts: %v", dirs)
	}
}

// TestPagerSessionCapabilities checks the crash-capability surface: a
// pager session is durable and recoverable, a memory session is neither.
func TestPagerSessionCapabilities(t *testing.T) {
	mem, err := sut.Open("", sut.Session{Dialect: dialect.SQLite})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if c, ok := mem.(crashable); ok && c.Durable() {
		t.Fatal("memory session claims durability")
	}

	db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite, Storage: "pager"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cdb, ok := db.(crashable)
	if !ok || !cdb.Durable() {
		t.Fatal("pager session is not crashable/durable")
	}
	if _, err := db.Exec(`CREATE TABLE t0(c0 INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO t0(c0) VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	// An after-sync power cut loses nothing on the sound pager.
	if err := cdb.CrashRecover(pager.CrashPlan{Point: pager.AfterSync, Mode: pager.LostTail}); err != nil {
		t.Fatalf("CrashRecover: %v", err)
	}
	if n := db.Introspect().RowCount("t0"); n != 3 {
		t.Fatalf("rows after recovery: %d, want 3", n)
	}
}

// TestPagerSessionEquivalence runs one statement list on a memory session
// and a pager session: results must agree — the storage backend must be
// invisible to SQL semantics.
func TestPagerSessionEquivalence(t *testing.T) {
	stmts := []string{
		`CREATE TABLE t0(c0 INT, c1 TEXT)`,
		`CREATE INDEX i0 ON t0(c0)`,
		`INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (NULL, 'n')`,
		`UPDATE t0 SET c1 = 'z' WHERE c0 = 2`,
		`DELETE FROM t0 WHERE c0 IS NULL`,
	}
	query := `SELECT c0, c1 FROM t0 WHERE c0 >= 1`

	run := func(storage string) [][]string {
		db, err := sut.Open("", sut.Session{Dialect: dialect.SQLite, Storage: storage})
		if err != nil {
			t.Fatalf("storage %q: %v", storage, err)
		}
		defer db.Close()
		for _, s := range stmts {
			if _, err := db.Exec(s); err != nil {
				t.Fatalf("storage %q: %s: %v", storage, s, err)
			}
		}
		res, err := db.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = []string{r[0].Literal(), r[1].Literal()}
		}
		return out
	}

	mem, pg := run("memory"), run("pager")
	if len(mem) != len(pg) {
		t.Fatalf("row counts differ: memory %d, pager %d", len(mem), len(pg))
	}
	for i := range mem {
		if mem[i][0] != pg[i][0] || mem[i][1] != pg[i][1] {
			t.Fatalf("row %d differs: memory %v, pager %v", i, mem[i], pg[i])
		}
	}
}

// TestUnknownStorageRejected checks the session validates its storage
// mode instead of silently running in memory.
func TestUnknownStorageRejected(t *testing.T) {
	_, err := sut.Open("", sut.Session{Dialect: dialect.SQLite, Storage: "floppy"})
	if !xerr.Is(err, xerr.CodeUnsupported) {
		t.Fatalf("unknown storage: err=%v, want CodeUnsupported", err)
	}
}
