package sut_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
)

// TestFastPathThroughputRegression is the tripwire behind the documented
// claim that the ExecAST fast path beats wire-fidelity mode by ≥1.5×
// databases/sec (BenchmarkCampaignThroughput is the precise measurement).
// The asserted floor is deliberately conservative — 1.15× over a few
// hundred identical lifecycles — so the test stays stable on loaded CI
// machines while still failing loudly if the fast path ever stops paying
// for itself.
func TestFastPathThroughputRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is not short")
	}
	const lifecycles = 400
	run := func(wireFidelity bool) time.Duration {
		tester := core.NewTester(core.Config{
			Dialect:      dialect.SQLite,
			Seed:         1,
			QueriesPerDB: 20,
			WireFidelity: wireFidelity,
		})
		start := time.Now()
		for i := 0; i < lifecycles; i++ {
			if _, err := tester.RunDatabase(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Warm up once to stabilize allocator state, then measure.
	run(false)
	fast := run(false)
	wire := run(true)
	ratio := float64(wire) / float64(fast)
	t.Logf("fast=%s wire-fidelity=%s ratio=%.2fx", fast, wire, ratio)
	if ratio < 1.15 {
		t.Errorf("ExecAST fast path only %.2fx faster than wire fidelity (conservative floor 1.15x; benchmark target 1.5x)", ratio)
	}
}
