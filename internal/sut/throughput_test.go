package sut_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dialect"
)

// TestFastPathThroughputRegression is the tripwire behind the documented
// claim that the ExecAST fast path beats wire-fidelity mode by ≥1.3×
// databases/sec (BenchmarkCampaignThroughput is the precise measurement).
// The target was ≥1.5× before the PR 8 allocation-free tokenizer made
// render→reparse itself ~2× cheaper — wire fidelity got faster, so the
// fast path's *relative* lead legitimately narrowed (~1.4× measured).
// The asserted floor is deliberately conservative — 1.1×, best-of-3 over
// a few hundred identical lifecycles — so the test stays stable on loaded
// CI machines while still failing loudly if the fast path ever stops
// paying for itself.
func TestFastPathThroughputRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is not short")
	}
	const lifecycles = 400
	run := func(wireFidelity bool) time.Duration {
		tester := core.NewTester(core.Config{
			Dialect:      dialect.SQLite,
			Seed:         1,
			QueriesPerDB: 20,
			WireFidelity: wireFidelity,
		})
		start := time.Now()
		for i := 0; i < lifecycles; i++ {
			if _, err := tester.RunDatabase(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	// Warm up once to stabilize allocator state, then take the best of
	// three interleaved measurements per mode (damps scheduler noise when
	// the whole package suite runs in parallel).
	run(false)
	run(true)
	var fast, wire time.Duration
	for i := 0; i < 3; i++ {
		if f := run(false); fast == 0 || f < fast {
			fast = f
		}
		if w := run(true); wire == 0 || w < wire {
			wire = w
		}
	}
	ratio := float64(wire) / float64(fast)
	t.Logf("fast=%s wire-fidelity=%s ratio=%.2fx", fast, wire, ratio)
	if ratio < 1.1 {
		t.Errorf("ExecAST fast path only %.2fx faster than wire fidelity (conservative floor 1.1x; benchmark target 1.3x)", ratio)
	}
}
