// Package memengine is the in-process SUT backend: it drives the embedded
// engine substrate directly. Its ExecAST fast path hands generated ASTs
// straight to the executor, skipping the render→reparse round trip that
// dominates small-database campaign hot loops; Session.WireFidelity
// restores the string round trip as an opt-in for parser coverage.
//
// Importing this package (usually blank) registers the "memengine"
// backend with the sut registry.
package memengine

import (
	"repro/internal/engine"
	"repro/internal/sqlast"
	"repro/internal/sut"
)

func init() {
	sut.Register("memengine", driverImpl{})
}

type driverImpl struct{}

// Open implements sut.Driver.
func (driverImpl) Open(s sut.Session) (sut.DB, error) {
	var opts []engine.Option
	if s.Faults != nil {
		opts = append(opts, engine.WithFaults(s.Faults))
	}
	if s.NoPlanner {
		opts = append(opts, engine.WithoutPlanner())
	}
	if s.NoCompile {
		opts = append(opts, engine.WithoutCompiledEval())
	}
	return Wrap(engine.Open(s.Dialect, opts...), s), nil
}

// DB adapts one *engine.Engine to sut.DB.
type DB struct {
	e    *engine.Engine
	sess sut.Session
}

// Wrap adapts a caller-constructed engine (white-box tests, coverage
// harnesses) into a sut.DB. The session's Dialect and Faults fields are
// overwritten from the engine so those two cannot disagree; the caller
// is responsible for passing a session whose remaining fields (e.g.
// NoPlanner) match how the engine was opened.
func Wrap(e *engine.Engine, sess sut.Session) *DB {
	sess.Dialect = e.Dialect()
	sess.Faults = e.Faults()
	return &DB{e: e, sess: sess}
}

// Underlying exposes the wrapped engine for white-box assertions
// (coverage counters, planner internals). Tester-stack code must not use
// it — the boundary exists so backends stay swappable.
func (d *DB) Underlying() *engine.Engine { return d.e }

// Exec implements sut.DB.
func (d *DB) Exec(sql string) (*sut.Result, error) {
	return convert(d.e.Exec(sql))
}

// Query implements sut.DB.
func (d *DB) Query(sql string) (*sut.Result, error) {
	return convert(d.e.Query(sql))
}

// ExecAST implements sut.DB: the campaign fast path. Under wire fidelity
// the statement is rendered and reparsed, reproducing exactly what a
// string-protocol client would execute.
func (d *DB) ExecAST(st sqlast.Stmt) (*sut.Result, error) {
	if d.sess.WireFidelity {
		return convert(d.e.Exec(sqlast.SQL(st, d.sess.Dialect)))
	}
	return convert(d.e.ExecStmt(st))
}

// Reset implements sut.Resetter: the engine rewinds to the pristine state
// of a fresh Open without reallocating its long-lived structures, so
// pooled campaign lifecycles reuse one engine across databases.
func (d *DB) Reset() error {
	d.e.Reset()
	return nil
}

// Snapshot captures the engine's data state copy-on-write (dbshell's
// .snapshot meta command; valid until the next schema change).
func (d *DB) Snapshot() *engine.Snapshot { return d.e.Snapshot() }

// RestoreSnapshot rewinds the engine's data to a snapshot taken from it.
func (d *DB) RestoreSnapshot(s *engine.Snapshot) error { return d.e.Restore(s) }

// Plan implements sut.DB.
func (d *DB) Plan(sql string) ([]string, error) {
	paths, err := d.e.PlanSQL(sql)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.Detail()
	}
	return out, nil
}

// Introspect implements sut.DB; *engine.Engine satisfies the full
// introspection surface itself.
func (d *DB) Introspect() sut.Introspection { return d.e }

// Session implements sut.DB.
func (d *DB) Session() sut.Session { return d.sess }

// Close implements sut.DB. The engine is garbage-collected state; there
// is nothing to release.
func (d *DB) Close() error { return nil }

func convert(res *engine.Result, err error) (*sut.Result, error) {
	if err != nil {
		return nil, err
	}
	if res == nil {
		return &sut.Result{}, nil
	}
	return &sut.Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
	}, nil
}
