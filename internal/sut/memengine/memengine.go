// Package memengine is the in-process SUT backend: it drives the embedded
// engine substrate directly. Its ExecAST fast path hands generated ASTs
// straight to the executor, skipping the render→reparse round trip that
// dominates small-database campaign hot loops; Session.WireFidelity
// restores the string round trip as an opt-in for parser coverage.
//
// Importing this package (usually blank) registers the "memengine"
// backend with the sut registry.
package memengine

import (
	"os"

	"repro/internal/engine"
	"repro/internal/sqlast"
	"repro/internal/storage/pager"
	"repro/internal/sut"
	"repro/internal/xerr"
)

func init() {
	sut.Register("memengine", driverImpl{})
}

type driverImpl struct{}

// Open implements sut.Driver. Session.Storage "pager" opens the durable
// page-file + WAL backend in a private temp directory over a
// crash-simulating VFS; Close removes the directory.
func (driverImpl) Open(s sut.Session) (sut.DB, error) {
	var opts []engine.Option
	if s.Faults != nil {
		opts = append(opts, engine.WithFaults(s.Faults))
	}
	if s.NoPlanner {
		opts = append(opts, engine.WithoutPlanner())
	}
	if s.NoCompile {
		opts = append(opts, engine.WithoutCompiledEval())
	}
	if s.NoHashJoin {
		opts = append(opts, engine.WithoutHashJoin())
	}
	if s.NoHashAgg {
		opts = append(opts, engine.WithoutHashAgg())
	}
	switch s.Storage {
	case "", "memory":
		return Wrap(engine.Open(s.Dialect, opts...), s), nil
	case "pager":
		dir, err := os.MkdirTemp("", "pager-")
		if err != nil {
			return nil, xerr.New(xerr.CodeIO, "memengine: temp dir: %v", err)
		}
		e, err := engine.OpenDurable(s.Dialect, pager.NewSim(pager.OS()), dir, opts...)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		db := Wrap(e, s)
		db.ownDir = dir
		return db, nil
	default:
		return nil, xerr.New(xerr.CodeUnsupported, "memengine: unknown storage %q (want memory or pager)", s.Storage)
	}
}

// DB adapts one *engine.Engine to sut.DB.
type DB struct {
	e    *engine.Engine
	sess sut.Session
	// ownDir is the temp directory holding a durable database's files;
	// Close removes it so campaigns leave no artifacts behind.
	ownDir string
}

// Wrap adapts a caller-constructed engine (white-box tests, coverage
// harnesses) into a sut.DB. The session's Dialect and Faults fields are
// overwritten from the engine so those two cannot disagree; the caller
// is responsible for passing a session whose remaining fields (e.g.
// NoPlanner) match how the engine was opened.
func Wrap(e *engine.Engine, sess sut.Session) *DB {
	sess.Dialect = e.Dialect()
	sess.Faults = e.Faults()
	return &DB{e: e, sess: sess}
}

// Underlying exposes the wrapped engine for white-box assertions
// (coverage counters, planner internals). Tester-stack code must not use
// it — the boundary exists so backends stay swappable.
func (d *DB) Underlying() *engine.Engine { return d.e }

// Exec implements sut.DB.
func (d *DB) Exec(sql string) (*sut.Result, error) {
	return convert(d.e.Exec(sql))
}

// Query implements sut.DB.
func (d *DB) Query(sql string) (*sut.Result, error) {
	return convert(d.e.Query(sql))
}

// ExecAST implements sut.DB: the campaign fast path. Under wire fidelity
// the statement is rendered and reparsed, reproducing exactly what a
// string-protocol client would execute.
func (d *DB) ExecAST(st sqlast.Stmt) (*sut.Result, error) {
	if d.sess.WireFidelity {
		return convert(d.e.Exec(sqlast.SQL(st, d.sess.Dialect)))
	}
	return convert(d.e.ExecStmt(st))
}

// NewConn implements sut.MultiSession: an additional engine session
// sharing the committed state, with its own transaction scope. The
// serializability oracle interleaves statements across several of these.
func (d *DB) NewConn() (sut.Conn, error) {
	return &conn{c: d.e.NewConn(), db: d}, nil
}

// conn adapts one engine.Conn to sut.Conn.
type conn struct {
	c  *engine.Conn
	db *DB
}

// Exec implements sut.Conn.
func (c *conn) Exec(sql string) (*sut.Result, error) {
	return convert(c.c.Exec(sql))
}

// ExecAST implements sut.Conn, honouring the session's wire fidelity like
// DB.ExecAST.
func (c *conn) ExecAST(st sqlast.Stmt) (*sut.Result, error) {
	if c.db.sess.WireFidelity {
		return convert(c.c.Exec(sqlast.SQL(st, c.db.sess.Dialect)))
	}
	return convert(c.c.ExecStmt(st))
}

// Close implements sut.Conn: rolls back the session's open transaction.
func (c *conn) Close() error { return c.c.Close() }

// Reset implements sut.Resetter: the engine rewinds to the pristine state
// of a fresh Open without reallocating its long-lived structures, so
// pooled campaign lifecycles reuse one engine across databases.
func (d *DB) Reset() error {
	d.e.Reset()
	return nil
}

// Snapshot captures the engine's data state copy-on-write (dbshell's
// .snapshot meta command; valid until the next schema change).
func (d *DB) Snapshot() *engine.Snapshot { return d.e.Snapshot() }

// RestoreSnapshot rewinds the engine's data to a snapshot taken from it.
func (d *DB) RestoreSnapshot(s *engine.Snapshot) error { return d.e.Restore(s) }

// Plan implements sut.DB.
func (d *DB) Plan(sql string) ([]string, error) {
	paths, err := d.e.PlanSQL(sql)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = p.Detail()
	}
	return out, nil
}

// Introspect implements sut.DB; *engine.Engine satisfies the full
// introspection surface itself.
func (d *DB) Introspect() sut.Introspection { return d.e }

// Session implements sut.DB.
func (d *DB) Session() sut.Session { return d.sess }

// Close implements sut.DB. In-memory engines are garbage-collected
// state; durable engines close their pager and remove their private temp
// directory — even a failed campaign leaves no files behind.
func (d *DB) Close() error {
	err := d.e.Close()
	if d.ownDir != "" {
		if rerr := os.RemoveAll(d.ownDir); err == nil {
			err = rerr
		}
		d.ownDir = ""
	}
	return err
}

// Durable reports whether this database persists through the pager
// backend (Session.Storage "pager").
func (d *DB) Durable() bool { return d.e.Durable() }

// ArmCrash schedules a simulated power cut inside the next durable
// commit. False when the database is not durable.
func (d *DB) ArmCrash(plan pager.CrashPlan) bool { return d.e.ArmCrash(plan) }

// DisarmCrash cancels an armed crash that has not fired.
func (d *DB) DisarmCrash() { d.e.DisarmCrash() }

// CrashRecover simulates a power cut per the plan and reopens the
// database from the surviving files (see engine.CrashRecover).
func (d *DB) CrashRecover(plan pager.CrashPlan) error { return d.e.CrashRecover(plan) }

// PagerStats exposes the pager's work counters (dbshell's .storage meta
// command); ok is false for in-memory databases.
func (d *DB) PagerStats() (pager.Stats, bool) { return d.e.PagerStats() }

func convert(res *engine.Result, err error) (*sut.Result, error) {
	if err != nil {
		return nil, err
	}
	if res == nil {
		return &sut.Result{}, nil
	}
	return &sut.Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowsAffected: res.RowsAffected,
	}, nil
}
