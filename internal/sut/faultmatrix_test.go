package sut_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/oracle"
	"repro/internal/reduce"
	"repro/internal/runner"
)

// TestFaultMatrixWireFidelity is the campaign-level boundary check: every
// one of the registered faults must still be detected through sut.DB with
// the session in wire-fidelity mode (render→reparse, the pre-boundary
// string round trip), each under the testing oracle its registry entry
// routes to. Together with runner's TestFullCorpusDetectable — which
// sweeps the same 56-fault matrix through the default ExecAST fast path —
// this proves both execution modes of the API detect the whole corpus
// (including TLP's UNION ALL compounds surviving render→reparse).
func TestFaultMatrixWireFidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix sweep is not short")
	}
	total := 0
	for _, d := range dialect.All {
		for _, info := range faults.ForDialect(d) {
			info := info
			d := d
			total++
			t.Run(string(info.ID), func(t *testing.T) {
				t.Parallel()
				res := runner.Run(runner.Campaign{
					Dialect:      d,
					Fault:        info.ID,
					MaxDatabases: 1500,
					Workers:      2,
					BaseSeed:     1,
					Oracles:      []string{oracle.ForFault(info)},
					Tester:       core.Config{WireFidelity: true},
				})
				if !res.Detected {
					t.Fatalf("fault %s not detected through wire-fidelity sut.DB in %d databases",
						info.ID, res.Databases)
				}
			})
		}
	}
	if total != 56 {
		t.Errorf("fault registry has %d faults, matrix expects 56", total)
	}
}

// TestFaultMatrixCompiledParity sweeps the same 56-fault matrix through
// the ExecAST fast path twice — once with compiled expression programs
// (the default since the compiled-eval tentpole) and once with the
// -no-compile tree walk — proving detection parity: compilation changes
// how predicates evaluate, never what they evaluate to, so every injected
// fault keeps firing identically in both modes.
func TestFaultMatrixCompiledParity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix sweep is not short")
	}
	for _, mode := range []struct {
		name      string
		noCompile bool
	}{
		{"compiled", false},
		{"interpreted", true},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for _, d := range dialect.All {
				for _, info := range faults.ForDialect(d) {
					info := info
					d := d
					t.Run(string(info.ID), func(t *testing.T) {
						t.Parallel()
						res := runner.Run(runner.Campaign{
							Dialect:      d,
							Fault:        info.ID,
							MaxDatabases: 1500,
							Workers:      2,
							BaseSeed:     1,
							Oracles:      []string{oracle.ForFault(info)},
							Tester:       core.Config{NoCompile: mode.noCompile},
						})
						if !res.Detected {
							t.Fatalf("fault %s not detected in %s mode within %d databases",
								info.ID, mode.name, res.Databases)
						}
					})
				}
			}
		})
	}
}

// TestCompiledSoundness is the false-positive guard for the compiled
// path: with no faults injected, the engine (running compiled programs)
// and the independent interpreter oracle must agree on every pivot check,
// so campaigns detect nothing.
func TestCompiledSoundness(t *testing.T) {
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			tester := core.NewTester(core.Config{Dialect: d, Seed: 77, QueriesPerDB: 20})
			for i := 0; i < 60; i++ {
				bug, err := tester.RunDatabase()
				if err != nil {
					t.Fatal(err)
				}
				if bug != nil {
					t.Fatalf("sound engine flagged: %s\ntrace:\n  %s",
						bug.Message, strings.Join(bug.Trace, ";\n  "))
				}
			}
		})
	}
}

// TestCampaignThroughWireBackend proves an end-to-end detection with the
// campaign stack driving the actual database/sql wire backend — the
// farthest execution surface from the engine.
func TestCampaignThroughWireBackend(t *testing.T) {
	res := runner.Run(runner.Campaign{
		Dialect:      dialect.SQLite,
		Fault:        faults.PartialIndexNotNull,
		MaxDatabases: 400,
		Workers:      2,
		BaseSeed:     1,
		Tester:       core.Config{Backend: "wire"},
	})
	if !res.Detected {
		t.Fatalf("wire backend campaign missed %s in %d databases",
			faults.PartialIndexNotNull, res.Databases)
	}
	if res.Bug.Oracle != faults.OracleContainment {
		t.Errorf("oracle = %s, want containment", res.Bug.Oracle)
	}
}

// hashJoinFaults are the three faults injected inside the hash-join
// machinery itself: with -no-hashjoin the faulty code never runs, so the
// faults must be unreachable (the ablation is also their bisection tool).
var hashJoinFaults = map[faults.Fault]bool{
	faults.HashJoinCollation: true,
	faults.HashJoinNullKey:   true,
	faults.HashLeftJoinDrop:  true,
}

// TestFaultMatrixHashJoinParity sweeps the 56-fault matrix with hash and
// index-lookup joins ablated (NoHashJoin). The 50 non-hash-path faults
// must keep firing — strategy selection changes how joins execute, never
// what they return — while the three hash-path faults must go quiet,
// proving they live in exactly the code the ablation removes. (The
// hashjoin-on half of the parity claim is the existing
// TestFaultMatrixWireFidelity / TestFullCorpusDetectable sweeps.)
func TestFaultMatrixHashJoinParity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix sweep is not short")
	}
	for _, d := range dialect.All {
		for _, info := range faults.ForDialect(d) {
			info := info
			d := d
			t.Run(string(info.ID), func(t *testing.T) {
				t.Parallel()
				budget := 1500
				if hashJoinFaults[info.ID] {
					budget = 300
				}
				res := runner.Run(runner.Campaign{
					Dialect:      d,
					Fault:        info.ID,
					MaxDatabases: budget,
					Workers:      2,
					BaseSeed:     1,
					Oracles:      []string{oracle.ForFault(info)},
					Tester:       core.Config{NoHashJoin: true},
				})
				if hashJoinFaults[info.ID] {
					if res.Detected {
						t.Fatalf("hash-path fault %s detected with hash joins ablated:\n  %s",
							info.ID, strings.Join(res.Bug.Trace, ";\n  "))
					}
					return
				}
				if !res.Detected {
					t.Fatalf("fault %s not detected with -no-hashjoin in %d databases",
						info.ID, res.Databases)
				}
			})
		}
	}
}

// hashAggFaults are the three faults injected inside the hash-aggregation
// and top-K ordering machinery: with -no-hashagg the engine falls back to
// materialized grouping and full sorts, the faulty code never runs, and
// the faults must be unreachable (the ablation doubles as bisection).
var hashAggFaults = map[faults.Fault]bool{
	faults.HashAggCollation:       true,
	faults.AggAccumulatorNullSkip: true,
	faults.TopKHeapBoundary:       true,
}

// TestFaultMatrixHashAggParity sweeps the 56-fault matrix with hash
// aggregation and top-K ordering ablated (NoHashAgg). The 53 faults
// outside the hash-agg path must keep firing — aggregation strategy
// changes how groups accumulate, never what they contain — while the
// three hash-agg faults must go quiet, proving they live in exactly the
// code the ablation removes. (The hashagg-on half of the parity claim is
// the existing TestFaultMatrixWireFidelity / TestFullCorpusDetectable
// sweeps.)
func TestFaultMatrixHashAggParity(t *testing.T) {
	if testing.Short() {
		t.Skip("fault matrix sweep is not short")
	}
	for _, d := range dialect.All {
		for _, info := range faults.ForDialect(d) {
			info := info
			d := d
			t.Run(string(info.ID), func(t *testing.T) {
				t.Parallel()
				budget := 1500
				if hashAggFaults[info.ID] {
					budget = 300
				}
				res := runner.Run(runner.Campaign{
					Dialect:      d,
					Fault:        info.ID,
					MaxDatabases: budget,
					Workers:      2,
					BaseSeed:     1,
					Oracles:      []string{oracle.ForFault(info)},
					Tester:       core.Config{NoHashAgg: true},
				})
				if hashAggFaults[info.ID] {
					if res.Detected {
						t.Fatalf("hash-agg fault %s detected with hash aggregation ablated:\n  %s",
							info.ID, strings.Join(res.Bug.Trace, ";\n  "))
					}
					return
				}
				if !res.Detected {
					t.Fatalf("fault %s not detected with -no-hashagg in %d databases",
						info.ID, res.Databases)
				}
			})
		}
	}
}

// TestHashAggFaultReduction proves the three hash-agg faults reduce to
// replayable repro scripts, like the rest of the corpus: the reducer's
// checker must reproduce on a faulty engine and stay quiet on a clean one.
func TestHashAggFaultReduction(t *testing.T) {
	for _, tc := range []struct {
		fault   faults.Fault
		dialect dialect.Dialect
		oracle  string
	}{
		{faults.HashAggCollation, dialect.SQLite, "pqs"},
		{faults.AggAccumulatorNullSkip, dialect.SQLite, "tlp"},
		{faults.TopKHeapBoundary, dialect.MySQL, "pqs"},
	} {
		tc := tc
		t.Run(string(tc.fault), func(t *testing.T) {
			t.Parallel()
			res := runner.Run(runner.Campaign{
				Dialect:      tc.dialect,
				Fault:        tc.fault,
				MaxDatabases: 1500,
				BaseSeed:     1,
				Reduce:       true,
				Oracles:      []string{tc.oracle},
			})
			if !res.Detected {
				t.Fatalf("%s not detected", tc.fault)
			}
			if len(res.Reduced) == 0 || len(res.Reduced) > len(res.Bug.Trace) {
				t.Fatalf("reduction produced %d statements from %d", len(res.Reduced), len(res.Bug.Trace))
			}
			check := reduce.CheckerFor(res.Bug, tc.dialect, faults.NewSet(tc.fault))
			if !check(res.Reduced) {
				t.Fatalf("reduced trace no longer reproduces:\n  %s", strings.Join(res.Reduced, ";\n  "))
			}
			clean := reduce.CheckerFor(res.Bug, tc.dialect, nil)
			if clean(res.Reduced) {
				t.Fatalf("checker reproduces on the fault-free engine:\n  %s", strings.Join(res.Reduced, ";\n  "))
			}
		})
	}
}

// TestHashJoinFaultReduction proves the three hash-join faults reduce to
// replayable repro scripts, like the rest of the corpus: the reducer's
// checker must reproduce on a faulty engine and stay quiet on a clean one.
func TestHashJoinFaultReduction(t *testing.T) {
	for _, tc := range []struct {
		fault   faults.Fault
		dialect dialect.Dialect
		oracle  string
	}{
		{faults.HashJoinCollation, dialect.SQLite, "pqs"},
		{faults.HashJoinNullKey, dialect.SQLite, "tlp"},
		{faults.HashLeftJoinDrop, dialect.Postgres, "tlp"},
	} {
		tc := tc
		t.Run(string(tc.fault), func(t *testing.T) {
			t.Parallel()
			res := runner.Run(runner.Campaign{
				Dialect:      tc.dialect,
				Fault:        tc.fault,
				MaxDatabases: 1500,
				BaseSeed:     1,
				Reduce:       true,
				Oracles:      []string{tc.oracle},
			})
			if !res.Detected {
				t.Fatalf("%s not detected", tc.fault)
			}
			if len(res.Reduced) == 0 || len(res.Reduced) > len(res.Bug.Trace) {
				t.Fatalf("reduction produced %d statements from %d", len(res.Reduced), len(res.Bug.Trace))
			}
			check := reduce.CheckerFor(res.Bug, tc.dialect, faults.NewSet(tc.fault))
			if !check(res.Reduced) {
				t.Fatalf("reduced trace no longer reproduces:\n  %s", strings.Join(res.Reduced, ";\n  "))
			}
			clean := reduce.CheckerFor(res.Bug, tc.dialect, nil)
			if clean(res.Reduced) {
				t.Fatalf("checker reproduces on the fault-free engine:\n  %s", strings.Join(res.Reduced, ";\n  "))
			}
		})
	}
}
