// Package sut defines the system-under-test boundary: the DB interface the
// whole tester stack (core, runner, fuzz, diffdb, reduce) is written
// against, plus a named-driver registry in the style of database/sql.
//
// The paper's tool is architected against *any* DBMS behind a driver
// boundary; this package is that boundary for the reproduction. Backends
// register themselves under a name (usually from an init function) and
// callers open sessions without knowing the concrete type:
//
//	import _ "repro/internal/sut/memengine"
//
//	db, err := sut.Open("memengine", sut.Session{Dialect: dialect.SQLite})
//
// Two backends ship in-tree: sut/memengine drives the embedded engine
// directly (with an ExecAST fast path that skips the render→reparse round
// trip in campaign hot loops), and sut/wire reaches the same engine
// strictly through the database/sql facade, exercising the string protocol
// end to end. The shared conformance suite (conformance_test.go) runs an
// identical script against both and asserts identical behaviour.
package sut

import (
	"sort"
	"sync"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

// Result is the outcome of one statement at the SUT boundary. Its layout
// deliberately mirrors engine.Result so in-process backends can convert
// without copying rows.
type Result struct {
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int
}

// Session carries the per-connection options a backend needs to open one
// database under test. It is the analogue of a DSN, but typed: campaign
// code fills in a Session and the same struct drives every backend.
type Session struct {
	// Dialect selects the dialect profile of the database under test.
	Dialect dialect.Dialect
	// Faults is the injected-bug set (nil = sound engine).
	Faults *faults.Set
	// NoPlanner forces full table scans (the scan-vs-index differential
	// baseline; engine.WithoutPlanner).
	NoPlanner bool
	// NoCompile disables compiled expression programs: every clause
	// evaluates through the tree-walk interpreter (the compiled-vs-
	// interpreted differential baseline; engine.WithoutCompiledEval).
	NoCompile bool
	// NoHashJoin pins every join level to the nested-loop operator (the
	// hash-vs-nested differential baseline; engine.WithoutHashJoin).
	NoHashJoin bool
	// NoHashAgg forces materialized grouping and full sorts — no hash
	// aggregation, no top-K ORDER BY/LIMIT (the hash-agg differential
	// baseline; engine.WithoutHashAgg).
	NoHashAgg bool
	// WireFidelity makes ExecAST render the statement to SQL and reparse
	// it before executing — today's string round trip, kept as an opt-in
	// for parser coverage. The default is the direct-AST fast path where
	// the backend supports one. Backends that are inherently string-based
	// (sut/wire) always have wire fidelity.
	WireFidelity bool
	// Storage selects the storage backend of the database under test:
	// "" or "memory" for the default in-memory heap, "pager" for the
	// durable page-file + WAL backend with simulated-crash support (the
	// recovery-equivalence oracle requires it). Backends that do not
	// implement a storage mode reject unknown values with
	// xerr.CodeUnsupported.
	Storage string
}

// DB is one open database under test. Implementations serialize
// statements internally (like SQLite in its default mode); a DB is safe
// for concurrent use unless the backend documents otherwise.
type DB interface {
	// Exec runs one or more ';'-separated statements and returns the last
	// statement's result. Backends running over a narrow client protocol
	// (database/sql) may not return result rows from Exec — use Query for
	// result sets.
	Exec(sql string) (*Result, error)
	// Query executes sql through the backend's result-returning path and
	// returns any rows. Only result-returning statements (SELECT,
	// compound query, EXPLAIN) are guaranteed portable across backends;
	// in-process backends also accept DDL/DML here (shells rely on
	// that), but protocol backends may not report rows affected.
	Query(sql string) (*Result, error)
	// ExecAST executes one already-generated statement. In-process
	// backends execute the AST directly unless the session asked for
	// wire fidelity; protocol backends render and ship the SQL string.
	ExecAST(st sqlast.Stmt) (*Result, error)
	// Plan reports the access path chosen for each FROM source of a
	// SELECT, in EXPLAIN QUERY PLAN detail form.
	Plan(sql string) ([]string, error)
	// Introspect exposes the schema/ground-truth surface PQS needs for
	// pivot selection (sqlite_master / information_schema analogue).
	Introspect() Introspection
	// Session reports the options this DB was opened with.
	Session() Session
	// Close releases the database.
	Close() error
}

// Conn is one extra client session of a DB, for multi-session interleaved
// histories. Each session auto-commits until it executes BEGIN; its
// transaction stages effects invisibly to the DB's other sessions until
// COMMIT. Sessions share the DB's statement serialization — a Conn is not
// a separate lock domain, just a separate transaction scope.
type Conn interface {
	// Exec runs one or more ';'-separated statements on this session.
	Exec(sql string) (*Result, error)
	// ExecAST executes one already-generated statement on this session,
	// honouring the DB's wire-fidelity setting.
	ExecAST(st sqlast.Stmt) (*Result, error)
	// Close rolls back the session's open transaction, if any, and
	// releases the session.
	Close() error
}

// MultiSession is the capability interface of backends that can open
// additional concurrent sessions on one database. The serializability
// oracle requires it; backends whose client protocol pins one session per
// database (sut/wire opens a fresh database per driver connection) simply
// don't implement it, and capability checks fail with CodeUnsupported —
// the same structural-assertion pattern the recovery oracle uses for
// crash support.
type MultiSession interface {
	// NewConn opens an additional session sharing this DB's committed
	// state.
	NewConn() (Conn, error)
}

// Introspection is the read-only catalog surface of a DB: what the tester
// may consult about schema and stored rows without going through the
// (possibly buggy) query path.
type Introspection interface {
	// Tables lists base table names.
	Tables() []string
	// Views lists view names.
	Views() []string
	// Describe returns one table's introspection record.
	Describe(name string) (schema.TableInfo, error)
	// Indexes lists index names on a table.
	Indexes(table string) []string
	// RawRows returns a copy of a table's stored rows, bypassing the
	// query path (ground truth for pivot-row selection, step 2 of the
	// paper).
	RawRows(table string) [][]sqlval.Value
	// RowCount reports a table's live row count (0 for unknown tables).
	RowCount(table string) int
	// CaseSensitiveLike reports the session's LIKE case sensitivity.
	CaseSensitiveLike() bool
	// Corrupted reports whether the database is marked corrupt and why.
	Corrupted() (bool, string)
}

// Driver opens databases for one backend.
type Driver interface {
	Open(s Session) (DB, error)
}

var (
	driversMu sync.RWMutex
	drivers   = map[string]Driver{}
)

// Register makes a backend available under the given name. It panics on a
// duplicate or empty name, like sql.Register.
func Register(name string, d Driver) {
	driversMu.Lock()
	defer driversMu.Unlock()
	if name == "" || d == nil {
		panic("sut: Register with empty name or nil driver")
	}
	if _, dup := drivers[name]; dup {
		panic("sut: Register called twice for driver " + name)
	}
	drivers[name] = d
}

// Drivers lists registered backend names, sorted.
func Drivers() []string {
	driversMu.RLock()
	defer driversMu.RUnlock()
	out := make([]string, 0, len(drivers))
	for name := range drivers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultBackend is the backend campaigns use when none is configured.
const DefaultBackend = "memengine"

// Open opens a database under test on the named backend. An empty name
// selects DefaultBackend.
func Open(name string, s Session) (DB, error) {
	if name == "" {
		name = DefaultBackend
	}
	driversMu.RLock()
	d, ok := drivers[name]
	driversMu.RUnlock()
	if !ok {
		return nil, xerr.New(xerr.CodeUnsupported,
			"sut: unknown backend %q (registered: %v); missing blank import of the backend package?", name, Drivers())
	}
	return d.Open(s)
}
