// Package wire is the string-protocol SUT backend: it reaches the same
// embedded engine strictly through the database/sql facade registered by
// internal/dbdriver. Every statement is rendered SQL shipped over the
// standard driver interfaces and every result row round-trips through
// driver.Value — the surface a real client protocol exposes. Campaigns
// run against it exercise render→parse→execute→convert end to end, which
// is exactly what the conformance suite pins against memengine.
//
// One lossy corner is inherent to the protocol: database/sql has no
// unsigned integer type, so BIGINT UNSIGNED values above 1<<63-1 come
// back as their decimal text rendering.
//
// Importing this package (usually blank) registers the "wire" backend.
package wire

import (
	"context"
	"database/sql"
	"fmt"
	"strings"

	_ "repro/internal/dbdriver" // registers the "pqs" database/sql driver
	"repro/internal/engine"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/sut"
)

func init() {
	sut.Register("wire", driverImpl{})
}

type driverImpl struct{}

// Open implements sut.Driver. Each dbdriver connection is its own
// in-memory database, so the DB pins a single *sql.Conn for its lifetime.
func (driverImpl) Open(s sut.Session) (sut.DB, error) {
	dsn := s.Dialect.String()
	var params []string
	if s.Faults != nil && !s.Faults.Empty() {
		var names []string
		for _, f := range s.Faults.List() {
			names = append(names, string(f))
		}
		params = append(params, "fault="+strings.Join(names, ","))
	}
	if s.NoPlanner {
		params = append(params, "planner=off")
	}
	if s.NoCompile {
		params = append(params, "compile=off")
	}
	if s.NoHashJoin {
		params = append(params, "hashjoin=off")
	}
	if s.NoHashAgg {
		params = append(params, "hashagg=off")
	}
	if s.Storage != "" && s.Storage != "memory" {
		params = append(params, "storage="+s.Storage)
	}
	if len(params) > 0 {
		dsn += "?" + strings.Join(params, "&")
	}
	pool, err := sql.Open("pqs", dsn)
	if err != nil {
		return nil, err
	}
	pool.SetMaxOpenConns(1)
	conn, err := pool.Conn(context.Background())
	if err != nil {
		pool.Close()
		return nil, err
	}
	// The tester consults ground truth (pivot rows, schema) out of band;
	// grab the engine behind the driver connection once for that surface.
	var eng *engine.Engine
	rawErr := conn.Raw(func(dc interface{}) error {
		ex, ok := dc.(interface{ Engine() *engine.Engine })
		if !ok {
			return fmt.Errorf("wire: driver connection %T does not expose its engine", dc)
		}
		eng = ex.Engine()
		return nil
	})
	if rawErr != nil {
		conn.Close()
		pool.Close()
		return nil, rawErr
	}
	// Wire fidelity is not optional here — the backend is the wire.
	s.WireFidelity = true
	return &DB{pool: pool, conn: conn, eng: eng, sess: s}, nil
}

// DB is one wire-protocol session over the pqs database/sql driver.
type DB struct {
	pool *sql.DB
	conn *sql.Conn
	eng  *engine.Engine
	sess sut.Session
}

// Exec implements sut.DB. The database/sql exec path reports rows
// affected but cannot return result rows; use Query for result sets.
func (d *DB) Exec(sqlText string) (*sut.Result, error) {
	res, err := d.conn.ExecContext(context.Background(), sqlText)
	if err != nil {
		return nil, err
	}
	n, _ := res.RowsAffected()
	return &sut.Result{RowsAffected: int(n)}, nil
}

// Query implements sut.DB: rows round-trip through driver.Value and are
// reconstructed into engine values on the client side.
func (d *DB) Query(sqlText string) (*sut.Result, error) {
	rows, err := d.conn.QueryContext(context.Background(), sqlText)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, err
	}
	out := &sut.Result{Columns: cols}
	for rows.Next() {
		dest := make([]interface{}, len(cols))
		ptrs := make([]interface{}, len(cols))
		for i := range dest {
			ptrs[i] = &dest[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return nil, err
		}
		vals := make([]sqlval.Value, len(dest))
		for i, dv := range dest {
			vals[i] = fromDriverValue(dv)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, rows.Err()
}

// ExecAST implements sut.DB: the statement is rendered and shipped as
// SQL — the wire backend has no AST fast path by construction.
func (d *DB) ExecAST(st sqlast.Stmt) (*sut.Result, error) {
	sqlText := sqlast.SQL(st, d.sess.Dialect)
	if returnsRows(st) {
		return d.Query(sqlText)
	}
	return d.Exec(sqlText)
}

// returnsRows reports whether a statement produces a result set (and so
// must go down the query path of the protocol).
func returnsRows(st sqlast.Stmt) bool {
	switch st.(type) {
	case *sqlast.Select, *sqlast.Compound, *sqlast.Explain:
		return true
	default:
		return false
	}
}

// Plan implements sut.DB by shipping an EXPLAIN QUERY PLAN statement over
// the wire and collecting the detail rows.
func (d *DB) Plan(sqlText string) ([]string, error) {
	res, err := d.Query("EXPLAIN QUERY PLAN " + sqlText)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, row := range res.Rows {
		if len(row) > 0 {
			out = append(out, row[0].Str())
		}
	}
	return out, nil
}

// Introspect implements sut.DB. Ground truth deliberately bypasses the
// protocol: pivot selection must reflect stored state, not the possibly
// buggy (or lossy) query path.
func (d *DB) Introspect() sut.Introspection { return d.eng }

// Session implements sut.DB.
func (d *DB) Session() sut.Session { return d.sess }

// Close implements sut.DB.
func (d *DB) Close() error {
	cerr := d.conn.Close()
	if perr := d.pool.Close(); cerr == nil {
		cerr = perr
	}
	return cerr
}

// fromDriverValue reconstructs an engine value from what database/sql
// handed back (the inverse of dbdriver's toDriverValue, up to the
// documented unsigned-overflow lossiness).
func fromDriverValue(dv interface{}) sqlval.Value {
	switch v := dv.(type) {
	case nil:
		return sqlval.Null()
	case int64:
		return sqlval.Int(v)
	case float64:
		return sqlval.Real(v)
	case string:
		return sqlval.Text(v)
	case []byte:
		return sqlval.Blob(v) // Blob copies the payload
	case bool:
		return sqlval.Bool(v)
	default:
		return sqlval.Text(fmt.Sprint(v))
	}
}
