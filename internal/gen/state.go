package gen

import (
	"fmt"

	"repro/internal/dialect"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// Introspector is the catalog/ground-truth surface StateGen consults. It
// is a consumer-side slice of sut.Introspection; both *engine.Engine and
// any sut.DB's Introspect() satisfy it.
type Introspector interface {
	Tables() []string
	Describe(name string) (schema.TableInfo, error)
	RawRows(table string) [][]sqlval.Value
	RowCount(table string) int
}

// StateGen generates random database state (step 1 of Figure 1): tables,
// rows, indexes, views, options, and maintenance statements. Statements
// are handed to an apply callback one at a time; the caller executes them
// and runs the error oracle. The generator re-introspects the database
// after DDL rather than tracking state itself (§3.4 of the paper).
type StateGen struct {
	Rnd *Rand
	E   Introspector
	// MinRows/MaxRows bound the per-table row count (paper: 10–30 rows;
	// campaigns default lower for throughput, the ablation bench sweeps it).
	MinRows, MaxRows int
	// MaxTables bounds the table count per database.
	MaxTables int
	// Hints accumulates inserted values for constant-biasing.
	Hints []sqlval.Value

	tableSeq int
	indexSeq int
	viewSeq  int
	statSeq  int
}

// Apply executes one generated statement. It returns a non-nil error only
// to abort generation (an oracle detection); expected statement errors are
// swallowed by the callback.
type Apply func(sqlast.Stmt) error

// BuildDatabase generates and applies a full random database.
func (sg *StateGen) BuildDatabase(apply Apply) error {
	if sg.MaxTables <= 0 {
		sg.MaxTables = 3
	}
	if sg.MaxRows <= 0 {
		sg.MaxRows = 8
	}
	if sg.MinRows <= 0 {
		sg.MinRows = 1
	}
	nTables := 1 + sg.Rnd.Intn(sg.MaxTables)
	for i := 0; i < nTables; i++ {
		if err := sg.createTableWithRows(apply); err != nil {
			return err
		}
	}
	// Extra statements exploring a larger space of databases.
	extras := 2 + sg.Rnd.Intn(8)
	for i := 0; i < extras; i++ {
		if err := sg.randomExtra(apply); err != nil {
			return err
		}
	}
	// Every table must hold at least one row (§3.1). Retries are bounded:
	// a table whose inserts keep failing (e.g. a strict-typing dead end)
	// is left empty and simply never becomes a pivot source.
	for _, tn := range sg.E.Tables() {
		for attempt := 0; attempt < 10 && sg.E.RowCount(tn) == 0; attempt++ {
			if err := sg.insertInto(apply, tn, 1+sg.Rnd.Intn(2)); err != nil {
				return err
			}
		}
	}
	return nil
}

func intColumns(info schema.TableInfo) []string {
	var out []string
	for _, c := range info.Columns {
		if CategoryOfType(c.TypeName) == CatInt {
			out = append(out, c.Name)
		}
	}
	return out
}

func (sg *StateGen) createTableWithRows(apply Apply) error {
	name := fmt.Sprintf("t%d", sg.tableSeq)
	sg.tableSeq++
	ct := sg.genCreateTable(name)
	if err := apply(ct); err != nil {
		return err
	}
	if _, err := sg.E.Describe(name); err != nil {
		return nil // creation failed with an expected error; skip rows
	}
	rows := sg.MinRows + sg.Rnd.Intn(sg.MaxRows-sg.MinRows+1)
	return sg.insertInto(apply, name, rows)
}

func (sg *StateGen) genCreateTable(name string) *sqlast.CreateTable {
	ct := &sqlast.CreateTable{Name: name}
	d := sg.Rnd.D
	nCols := 1 + sg.Rnd.Intn(4)
	pkUsed := false
	for i := 0; i < nCols; i++ {
		cd := sqlast.ColumnDef{Name: fmt.Sprintf("c%d", i)}
		switch d {
		case dialect.SQLite:
			types := []string{"", "", "INT", "TEXT", "REAL", "BLOB", "NUMERIC"}
			cd.TypeName = types[sg.Rnd.Intn(len(types))]
			if sg.Rnd.Bool(0.25) {
				colls := []string{"NOCASE", "RTRIM", "BINARY"}
				cd.Collate = colls[sg.Rnd.Intn(len(colls))]
			}
		case dialect.MySQL:
			types := []string{"INT", "TINYINT", "TEXT", "REAL", "BIGINT"}
			cd.TypeName = types[sg.Rnd.Intn(len(types))]
			if (cd.TypeName == "INT" || cd.TypeName == "BIGINT" || cd.TypeName == "TINYINT") && sg.Rnd.Bool(0.25) {
				cd.Unsigned = true
			}
		default:
			types := []string{"INT", "TEXT", "REAL", "BOOLEAN", "serial"}
			cd.TypeName = types[sg.Rnd.Intn(len(types))]
		}
		if !pkUsed && sg.Rnd.Bool(0.2) {
			cd.PrimaryKey = true
			pkUsed = true
		} else {
			if sg.Rnd.Bool(0.15) {
				cd.Unique = true
			}
			if sg.Rnd.Bool(0.08) {
				cd.NotNull = true
			}
		}
		ct.Columns = append(ct.Columns, cd)
	}
	switch d {
	case dialect.SQLite:
		if !pkUsed && len(ct.Columns) >= 2 && sg.Rnd.Bool(0.15) {
			ct.PrimaryKey = []string{ct.Columns[0].Name, ct.Columns[1].Name}
			pkUsed = true
		}
		if pkUsed && sg.Rnd.Bool(0.35) {
			ct.WithoutRowid = true
		}
	case dialect.MySQL:
		if sg.Rnd.Bool(0.3) {
			engines := []string{"MEMORY", "MYISAM", "INNODB"}
			ct.Engine = engines[sg.Rnd.Intn(len(engines))]
		}
	default:
		if tables := sg.E.Tables(); len(tables) > 0 && sg.Rnd.Bool(0.3) {
			ct.Inherits = tables[sg.Rnd.Intn(len(tables))]
		}
	}
	return ct
}

func (sg *StateGen) insertInto(apply Apply, table string, rows int) error {
	info, err := sg.E.Describe(table)
	if err != nil || info.IsView {
		return nil
	}
	ins := &sqlast.Insert{Table: table}
	// Usually name a random subset of columns (paper listings often
	// insert into a subset).
	var cols []schema.ColumnInfo
	if sg.Rnd.Bool(0.75) {
		for _, c := range info.Columns {
			if sg.Rnd.Bool(0.75) {
				cols = append(cols, c)
				ins.Columns = append(ins.Columns, c.Name)
			}
		}
	}
	if len(cols) == 0 {
		cols = info.Columns
		ins.Columns = nil
	}
	batch := map[string][]sqlval.Value{} // values produced by this statement
	for r := 0; r < rows; r++ {
		var row []sqlast.Expr
		for _, c := range cols {
			var v sqlval.Value
			switch {
			case sg.Rnd.D == dialect.Postgres:
				v = sg.Rnd.ValueOfCategory(CategoryOfType(c.TypeName))
			case sg.Rnd.D == dialect.SQLite && c.PK && info.WithoutRowid && sg.Rnd.Bool(0.5):
				// Listing 4's data shape: a case-toggled variant of an
				// existing PK value — BINARY-distinct (so the PK admits it)
				// but NOCASE-equal (so a collated PK index dedups it).
				v = sg.caseVariantOf(table, info, c.Name, batch[c.Name])
			case sg.Rnd.D == dialect.SQLite && len(sg.Hints) > 0 && sg.Rnd.Bool(0.2):
				// Re-insert a case-toggled variant of stored text:
				// NOCASE-equal but BINARY-distinct pairs are the data shape
				// behind the collated-index bug class (Listings 4 and 5).
				h := sg.Hints[sg.Rnd.Intn(len(sg.Hints))]
				if h.Kind() == sqlval.KText {
					v = sqlval.Text(ToggleCase(h.Str()))
				} else {
					v = sg.Rnd.Value()
				}
			default:
				v = sg.Rnd.Value()
			}
			sg.Hints = append(sg.Hints, v)
			batch[c.Name] = append(batch[c.Name], v)
			row = append(row, sqlast.Lit(v))
		}
		ins.Rows = append(ins.Rows, row)
	}
	switch {
	case sg.Rnd.Bool(0.2):
		ins.Conflict = sqlast.ConflictIgnore
	case sg.Rnd.D != dialect.Postgres && sg.Rnd.Bool(0.12):
		ins.Conflict = sqlast.ConflictReplace
	}
	return apply(ins)
}

// caseVariantOf draws a case-toggled variant of a value already present in
// the named column — stored rows or earlier rows of the same INSERT batch —
// falling back to interesting text (letters toggle; digits do not).
func (sg *StateGen) caseVariantOf(table string, info schema.TableInfo, column string, batch []sqlval.Value) sqlval.Value {
	var pool []sqlval.Value
	ci := -1
	for i := range info.Columns {
		if info.Columns[i].Name == column {
			ci = i
			break
		}
	}
	if ci >= 0 {
		for _, r := range sg.E.RawRows(table) {
			if ci < len(r) {
				pool = append(pool, r[ci])
			}
		}
	}
	pool = append(pool, batch...)
	for tries := 0; tries < 4 && len(pool) > 0; tries++ {
		v := pool[sg.Rnd.Intn(len(pool))]
		if v.Kind() == sqlval.KText {
			return sqlval.Text(ToggleCase(v.Str()))
		}
	}
	texts := []string{"a", "B", "abc", "u"}
	return sqlval.Text(texts[sg.Rnd.Intn(len(texts))])
}

// RandomDML generates and applies one data-mutating statement (INSERT,
// UPDATE, or DELETE, insert-biased) against a random existing table. The
// recovery-equivalence oracle uses it to grow committed state between
// crash points without touching the schema. A no-op when the database
// has no tables.
func (sg *StateGen) RandomDML(apply Apply) error {
	tables := sg.E.Tables()
	if len(tables) == 0 {
		return nil
	}
	table := tables[sg.Rnd.Intn(len(tables))]
	switch sg.Rnd.Intn(6) {
	case 0:
		return sg.genUpdate(apply, table)
	case 1:
		return sg.genDelete(apply, table)
	default:
		return sg.insertInto(apply, table, 1+sg.Rnd.Intn(3))
	}
}

// randomExtra emits one exploratory statement.
func (sg *StateGen) randomExtra(apply Apply) error {
	tables := sg.E.Tables()
	if len(tables) == 0 {
		return nil
	}
	table := tables[sg.Rnd.Intn(len(tables))]
	d := sg.Rnd.D
	switch sg.Rnd.Intn(12) {
	case 0, 1, 2:
		return apply(sg.genCreateIndex(table))
	case 3:
		return sg.insertInto(apply, table, 1+sg.Rnd.Intn(3))
	case 4:
		return sg.genUpdate(apply, table)
	case 5:
		if sg.Rnd.Bool(0.4) {
			return sg.genDelete(apply, table)
		}
		return nil
	case 6:
		return apply(&sqlast.Maintenance{Op: sqlast.MaintAnalyze, Table: maybeTable(sg.Rnd, table)})
	case 7:
		switch d {
		case dialect.SQLite:
			if sg.Rnd.Bool(0.5) {
				return apply(&sqlast.Maintenance{Op: sqlast.MaintReindex, Table: maybeTable(sg.Rnd, table)})
			}
			return apply(&sqlast.Maintenance{Op: sqlast.MaintVacuum})
		case dialect.MySQL:
			ops := []sqlast.MaintKind{sqlast.MaintRepairTable, sqlast.MaintCheckTable, sqlast.MaintCheckTableForUpgrade}
			return apply(&sqlast.Maintenance{Op: ops[sg.Rnd.Intn(len(ops))], Table: table})
		default:
			if sg.Rnd.Bool(0.5) {
				return apply(&sqlast.Maintenance{Op: sqlast.MaintVacuumFull})
			}
			return apply(&sqlast.Maintenance{Op: sqlast.MaintDiscard})
		}
	case 8:
		return sg.genOption(apply)
	case 9:
		return sg.genAlter(apply, table)
	case 10:
		if d == dialect.Postgres {
			return sg.genStats(apply, table)
		}
		if d == dialect.SQLite && sg.Rnd.Bool(0.4) {
			return sg.genView(apply, table)
		}
		return nil
	default:
		return apply(sg.genCreateIndex(table))
	}
}

func maybeTable(rnd *Rand, table string) string {
	if rnd.Bool(0.6) {
		return table
	}
	return ""
}

func (sg *StateGen) genCreateIndex(table string) *sqlast.CreateIndex {
	info, err := sg.E.Describe(table)
	ci := &sqlast.CreateIndex{
		Name:        fmt.Sprintf("i%d", sg.indexSeq),
		Table:       table,
		Unique:      sg.Rnd.Bool(0.22),
		IfNotExists: true,
	}
	sg.indexSeq++
	if err != nil || len(info.Columns) == 0 {
		return ci
	}
	nParts := 1
	if sg.Rnd.Bool(0.3) {
		nParts = 2
	}
	// Listing 4 shape: a collated index whose leading part is a WITHOUT
	// ROWID table's PK column feeds the planner's point-lookup path.
	if sg.Rnd.D == dialect.SQLite && info.WithoutRowid && sg.Rnd.Bool(0.55) {
		for _, c := range info.Columns {
			if c.PK {
				part := sqlast.IndexedExpr{X: sqlast.Col("", c.Name), Collate: "NOCASE"}
				ci.Parts = append(ci.Parts, part)
				return ci
			}
		}
	}
	for p := 0; p < nParts; p++ {
		col := info.Columns[sg.Rnd.Intn(len(info.Columns))]
		// Collated columns are the interesting index targets: their
		// comparisons go through collation-aware planner paths.
		if sg.Rnd.D == dialect.SQLite && sg.Rnd.Bool(0.5) {
			var collated []schema.ColumnInfo
			for _, c := range info.Columns {
				if c.Collate != "" && c.Collate != "BINARY" {
					collated = append(collated, c)
				}
			}
			if len(collated) > 0 {
				col = collated[sg.Rnd.Intn(len(collated))]
			}
		}
		var part sqlast.IndexedExpr
		switch {
		case sg.Rnd.Bool(0.6): // bare column
			part.X = sqlast.Col("", col.Name)
		case sg.Rnd.D == dialect.SQLite && sg.Rnd.Bool(0.4):
			// Listing 1 (literal part) / Listing 8 (double-quoted string)
			// / Listing 9 (LIKE expression) shapes.
			switch sg.Rnd.Intn(4) {
			case 0:
				part.X = sqlast.Lit(sqlval.Int(1))
			case 1, 2:
				part.X = &sqlast.ColumnRef{Column: "C3", MaybeString: true}
			default:
				part.X = &sqlast.Binary{Op: sqlast.OpLike, L: sqlast.Col("", col.Name), R: sqlast.Lit(sqlval.Text(""))}
			}
		default: // expression part (typed for the strict Postgres profile)
			switch {
			case sg.Rnd.D == dialect.Postgres && sg.Rnd.Bool(0.3):
				part.X = &sqlast.Cast{X: sqlast.Col("", col.Name), TypeName: "TEXT"}
			case sg.Rnd.D == dialect.Postgres:
				// Boolean AND-expression (the Listing 16 shape) only
				// over boolean columns; integer arithmetic only over
				// integer columns; otherwise fall back to a bare column.
				if bools := boolColumns(info); len(bools) > 0 && sg.Rnd.Bool(0.5) {
					bc := bools[sg.Rnd.Intn(len(bools))]
					part.X = &sqlast.Binary{Op: sqlast.OpAnd,
						L: sqlast.Col(table, bc), R: sqlast.Col(table, bc)}
				} else if ints := intColumns(info); len(ints) > 0 {
					part.X = &sqlast.Binary{Op: sqlast.OpAdd,
						L: sqlast.Lit(sqlval.Int(1)), R: sqlast.Col(table, ints[sg.Rnd.Intn(len(ints))])}
				} else {
					part.X = sqlast.Col("", col.Name)
				}
			default:
				part.X = &sqlast.Binary{Op: sqlast.OpAdd,
					L: sqlast.Lit(sqlval.Int(1)), R: sqlast.Col(table, col.Name)}
			}
		}
		if sg.Rnd.D == dialect.SQLite && sg.Rnd.Bool(0.3) {
			colls := []string{"NOCASE", "RTRIM", "BINARY"}
			part.Collate = colls[sg.Rnd.Intn(len(colls))]
		}
		part.Desc = sg.Rnd.Bool(0.15)
		ci.Parts = append(ci.Parts, part)
	}
	// Partial index predicates — `c NOT NULL` is the Listing 1 shape.
	if sg.Rnd.D == dialect.SQLite && sg.Rnd.Bool(0.3) {
		col := info.Columns[sg.Rnd.Intn(len(info.Columns))]
		if sg.Rnd.Bool(0.7) {
			ci.Where = &sqlast.Unary{Op: sqlast.OpNotNull, X: sqlast.Col("", col.Name)}
		} else {
			ci.Where = &sqlast.Binary{Op: sqlast.OpGt, L: sqlast.Col("", col.Name), R: sqlast.Lit(sqlval.Int(0))}
		}
	}
	if sg.Rnd.D == dialect.Postgres && sg.Rnd.Bool(0.2) {
		bools := boolColumns(info)
		if len(bools) > 0 {
			ci.Where = sqlast.Col("", bools[sg.Rnd.Intn(len(bools))])
		}
	}
	return ci
}

func boolColumns(info schema.TableInfo) []string {
	var out []string
	for _, c := range info.Columns {
		if CategoryOfType(c.TypeName) == CatBool {
			out = append(out, c.Name)
		}
	}
	return out
}

func (sg *StateGen) genUpdate(apply Apply, table string) error {
	info, err := sg.E.Describe(table)
	if err != nil || len(info.Columns) == 0 {
		return nil
	}
	up := &sqlast.Update{Table: table}
	col := info.Columns[sg.Rnd.Intn(len(info.Columns))]
	var v sqlval.Value
	if sg.Rnd.D == dialect.Postgres {
		v = sg.Rnd.ValueOfCategory(CategoryOfType(col.TypeName))
	} else {
		v = sg.Rnd.Value()
	}
	sg.Hints = append(sg.Hints, v)
	up.Sets = []sqlast.Assignment{{Column: col.Name, Value: sqlast.Lit(v)}}
	if sg.Rnd.Bool(0.4) {
		wcol := info.Columns[sg.Rnd.Intn(len(info.Columns))]
		if sg.Rnd.D == dialect.Postgres {
			up.Where = &sqlast.Unary{Op: sqlast.OpNotNull, X: sqlast.Col("", wcol.Name)}
		} else {
			up.Where = &sqlast.Binary{Op: sqlast.OpEq, L: sqlast.Col("", wcol.Name), R: sqlast.Lit(sg.Rnd.Value())}
		}
	}
	if sg.Rnd.D == dialect.SQLite && sg.Rnd.Bool(0.25) {
		up.Conflict = sqlast.ConflictReplace
	}
	return apply(up)
}

func (sg *StateGen) genDelete(apply Apply, table string) error {
	info, err := sg.E.Describe(table)
	if err != nil || len(info.Columns) == 0 {
		return nil
	}
	col := info.Columns[sg.Rnd.Intn(len(info.Columns))]
	del := &sqlast.Delete{
		Table: table,
		Where: &sqlast.Unary{Op: sqlast.OpIsNull, X: sqlast.Col("", col.Name)},
	}
	return apply(del)
}

func (sg *StateGen) genAlter(apply Apply, table string) error {
	info, err := sg.E.Describe(table)
	if err != nil || len(info.Columns) == 0 {
		return nil
	}
	switch sg.Rnd.Intn(3) {
	case 0: // rename column — "c3" is the Listing 8 coincidence target
		old := info.Columns[sg.Rnd.Intn(len(info.Columns))].Name
		newName := fmt.Sprintf("r%d", sg.Rnd.Intn(100))
		if sg.Rnd.Bool(0.5) {
			newName = "c3"
		}
		return apply(&sqlast.AlterTable{Table: table, Action: sqlast.AlterRenameColumn, OldName: old, NewName: newName})
	case 1: // add column
		cd := sqlast.ColumnDef{Name: fmt.Sprintf("a%d", sg.Rnd.Intn(100)), TypeName: "INT"}
		if sg.Rnd.D == dialect.SQLite {
			cd.TypeName = ""
		}
		return apply(&sqlast.AlterTable{Table: table, Action: sqlast.AlterAddColumn, Column: cd})
	default:
		return nil // rename table disturbs too much downstream generation
	}
}

func (sg *StateGen) genStats(apply Apply, table string) error {
	info, err := sg.E.Describe(table)
	if err != nil || len(info.Columns) == 0 {
		return nil
	}
	cs := &sqlast.CreateStats{Name: fmt.Sprintf("s%d", sg.statSeq), Table: table}
	sg.statSeq++
	for _, c := range info.Columns {
		if sg.Rnd.Bool(0.6) {
			cs.Columns = append(cs.Columns, c.Name)
		}
	}
	if len(cs.Columns) == 0 {
		cs.Columns = []string{info.Columns[0].Name}
	}
	return apply(cs)
}

func (sg *StateGen) genView(apply Apply, table string) error {
	info, err := sg.E.Describe(table)
	if err != nil || len(info.Columns) == 0 {
		return nil
	}
	cv := &sqlast.CreateView{
		Name: fmt.Sprintf("v%d", sg.viewSeq),
		Select: &sqlast.Select{
			Cols: []sqlast.ResultCol{{X: sqlast.Col("", info.Columns[0].Name)}},
			From: []sqlast.TableRef{{Name: table}},
		},
	}
	sg.viewSeq++
	return apply(cv)
}

func (sg *StateGen) genOption(apply Apply) error {
	switch sg.Rnd.D {
	case dialect.SQLite:
		return apply(&sqlast.SetOption{
			Name:  "case_sensitive_like",
			Value: sqlast.Lit(sqlval.Int(int64(sg.Rnd.Intn(2)))),
		})
	case dialect.MySQL:
		vals := []int64{100, 42, 200, 7, 1000}
		return apply(&sqlast.SetOption{
			Global: true,
			Name:   "key_cache_division_limit",
			Value:  sqlast.Lit(sqlval.Int(vals[sg.Rnd.Intn(len(vals))])),
		})
	default:
		return apply(&sqlast.SetOption{
			Name:  "enable_seqscan",
			Value: sqlast.Lit(sqlval.Bool(sg.Rnd.Bool(0.5))),
		})
	}
}
