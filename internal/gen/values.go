// Package gen implements PQS's random generation: database state (step 1
// of Figure 1) and expression trees (Algorithm 1). Generation is
// schema-aware — it introspects the engine dynamically, the way SQLancer
// queries sqlite_master / information_schema rather than tracking state.
package gen

import (
	"math/rand"

	"repro/internal/dialect"
	"repro/internal/sqlval"
)

// Rand wraps the random source with the value palette used throughout
// generation. Constants are biased toward the boundary values the paper's
// bugs lived at (0, ±1, type limits, trailing-space strings, './').
type Rand struct {
	R *rand.Rand
	D dialect.Dialect
}

// NewRand returns a deterministic generator for a seed.
func NewRand(d dialect.Dialect, seed int64) *Rand {
	return &Rand{R: rand.New(rand.NewSource(seed)), D: d}
}

// Reseed rewinds the generator to the exact stream a fresh NewRand(d,
// seed) would produce, without reallocating the source — pooled tester
// lifecycles re-seed per database so results never depend on how many
// databases a lifecycle has already run.
func (g *Rand) Reseed(seed int64) { g.R.Seed(seed) }

// Intn forwards to the source.
func (g *Rand) Intn(n int) int { return g.R.Intn(n) }

// Bool flips a coin with probability p of true.
func (g *Rand) Bool(p float64) bool { return g.R.Float64() < p }

var interestingInts = []int64{
	0, 1, -1, 2, 3, -5, 10, 100, 117, 127, -128, 128, 255,
	2035382037, 2147483647, -2147483648, 9223372036854775807,
	-9223372036854775808, -2851427734582196970,
}

var interestingReals = []float64{
	0, 0.5, -0.5, 1.5, -1.5, 2.5, 1e10, -1e10, 9.22e18,
}

var interestingTexts = []string{
	"", "a", "A", "b", "B", " ", "      ", "./", "0.5", "12abc",
	"x y", "abc", "u", "-1", "3", "baaaaaaaaaaaaaaaaa",
}

// Value draws a random literal value appropriate for the dialect.
func (g *Rand) Value() sqlval.Value {
	switch g.Intn(10) {
	case 0, 1:
		return sqlval.Null()
	case 2, 3, 4:
		return sqlval.Int(interestingInts[g.Intn(len(interestingInts))])
	case 5:
		return sqlval.Real(interestingReals[g.Intn(len(interestingReals))])
	case 6, 7, 8:
		return sqlval.Text(interestingTexts[g.Intn(len(interestingTexts))])
	default:
		if g.D == dialect.SQLite && g.Bool(0.5) {
			return sqlval.Blob([]byte(interestingTexts[g.Intn(len(interestingTexts))]))
		}
		if g.D == dialect.Postgres {
			return sqlval.Bool(g.Bool(0.5))
		}
		return sqlval.Int(int64(g.Intn(2)))
	}
}

// ValueOfCategory draws a literal of a specific type category, used for
// the strictly-typed PostgreSQL profile.
func (g *Rand) ValueOfCategory(cat Category) sqlval.Value {
	if g.Bool(0.15) {
		return sqlval.Null()
	}
	switch cat {
	case CatInt:
		return sqlval.Int(interestingInts[g.Intn(len(interestingInts))])
	case CatReal:
		return sqlval.Real(interestingReals[g.Intn(len(interestingReals))])
	case CatText:
		return sqlval.Text(interestingTexts[g.Intn(len(interestingTexts))])
	case CatBool:
		return sqlval.Bool(g.Bool(0.5))
	default:
		return g.Value()
	}
}

// Category is the coarse type category used for typed generation.
type Category uint8

// Type categories.
const (
	CatAny Category = iota
	CatInt
	CatReal
	CatText
	CatBool
)

// CategoryOfType maps a declared type name onto a category.
func CategoryOfType(typeName string) Category {
	switch sqlval.AffinityOf(typeName) {
	case sqlval.AffInteger:
		return CatInt
	case sqlval.AffReal:
		return CatReal
	case sqlval.AffText:
		return CatText
	default:
		if containsFold(typeName, "BOOL") {
			return CatBool
		}
		if containsFold(typeName, "SERIAL") {
			return CatInt
		}
		return CatAny
	}
}

func containsFold(s, sub string) bool {
	n, m := len(s), len(sub)
	for i := 0; i+m <= n; i++ {
		ok := true
		for j := 0; j < m; j++ {
			a, b := s[i+j], sub[j]
			if a >= 'a' && a <= 'z' {
				a -= 32
			}
			if b >= 'a' && b <= 'z' {
				b -= 32
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
