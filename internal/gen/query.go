package gen

import (
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// ColumnSubset draws a random non-empty projection list. Narrow
// projections collide distinct rows onto equal tuples — exactly where
// duplicate-handling bugs (UNION ALL vs UNION, DISTINCT) live — so both
// the compound generator and the TLP oracle sample with it.
func ColumnSubset(rnd *Rand, info schema.TableInfo) []string {
	var out []string
	for _, c := range info.Columns {
		if rnd.Bool(0.6) {
			out = append(out, c.Name)
		}
	}
	if len(out) == 0 {
		out = []string{info.Columns[rnd.Intn(len(info.Columns))].Name}
	}
	return out
}

// OrderLimit decorates a single-table SELECT with ORDER BY and, usually,
// LIMIT/OFFSET. The limit is biased toward small k: that is the shape the
// engine's top-K heap serves (and where its eviction boundary lives), and
// real workloads skew the same way. Callers must be order-insensitive or
// validate position semantics themselves — the fuzzer baseline qualifies
// because it never checks result sets, and PQS builds its own
// exact-position queries instead of using this.
func OrderLimit(rnd *Rand, table string, info schema.TableInfo, sel *sqlast.Select) {
	nKeys := 1
	if len(info.Columns) > 1 && rnd.Bool(0.3) {
		nKeys = 2
	}
	seen := map[int]bool{}
	for len(sel.OrderBy) < nKeys {
		ci := rnd.Intn(len(info.Columns))
		if seen[ci] {
			continue
		}
		seen[ci] = true
		sel.OrderBy = append(sel.OrderBy, sqlast.OrderItem{
			X:    sqlast.Col(table, info.Columns[ci].Name),
			Desc: rnd.Bool(0.4),
		})
	}
	if rnd.Bool(0.85) {
		k := int64(1 + rnd.Intn(5)) // small k: the top-K heap's home turf
		if rnd.Bool(0.15) {
			k = int64(1 + rnd.Intn(1000)) // occasionally larger than the table
		}
		sel.Limit = sqlast.Lit(sqlval.Int(k))
		if rnd.Bool(0.3) {
			sel.Offset = sqlast.Lit(sqlval.Int(int64(rnd.Intn(4))))
		}
	}
}

// CompoundSelect generates a small compound SELECT over one table —
// mostly UNION ALL chains (the recombination shape TLP checks),
// occasionally UNION — so compound execution is exercised by
// generation-driven consumers like the fuzzer baseline, not only consumed
// by the TLP oracle. Every arm projects the same column list, keeping the
// compound well-formed by construction.
func CompoundSelect(rnd *Rand, eg *ExprGen, table string, info schema.TableInfo) *sqlast.Compound {
	star := rnd.Bool(0.3)
	var cols []string
	if !star {
		cols = ColumnSubset(rnd, info)
	}
	nArms := 2 + rnd.Intn(2)
	comp := &sqlast.Compound{}
	for i := 0; i < nArms; i++ {
		sel := &sqlast.Select{From: []sqlast.TableRef{{Name: table}}}
		if star {
			sel.Cols = []sqlast.ResultCol{{Star: true}}
		} else {
			for _, c := range cols {
				sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(table, c)})
			}
		}
		if rnd.Bool(0.8) {
			sel.Where = eg.Generate()
		}
		comp.Selects = append(comp.Selects, sel)
		if i > 0 {
			op := sqlast.OpUnionAll
			if rnd.Bool(0.2) {
				op = sqlast.OpUnion
			}
			comp.Ops = append(comp.Ops, op)
		}
	}
	return comp
}
