package gen

import (
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// ColumnSubset draws a random non-empty projection list. Narrow
// projections collide distinct rows onto equal tuples — exactly where
// duplicate-handling bugs (UNION ALL vs UNION, DISTINCT) live — so both
// the compound generator and the TLP oracle sample with it.
func ColumnSubset(rnd *Rand, info schema.TableInfo) []string {
	var out []string
	for _, c := range info.Columns {
		if rnd.Bool(0.6) {
			out = append(out, c.Name)
		}
	}
	if len(out) == 0 {
		out = []string{info.Columns[rnd.Intn(len(info.Columns))].Name}
	}
	return out
}

// CompoundSelect generates a small compound SELECT over one table —
// mostly UNION ALL chains (the recombination shape TLP checks),
// occasionally UNION — so compound execution is exercised by
// generation-driven consumers like the fuzzer baseline, not only consumed
// by the TLP oracle. Every arm projects the same column list, keeping the
// compound well-formed by construction.
func CompoundSelect(rnd *Rand, eg *ExprGen, table string, info schema.TableInfo) *sqlast.Compound {
	star := rnd.Bool(0.3)
	var cols []string
	if !star {
		cols = ColumnSubset(rnd, info)
	}
	nArms := 2 + rnd.Intn(2)
	comp := &sqlast.Compound{}
	for i := 0; i < nArms; i++ {
		sel := &sqlast.Select{From: []sqlast.TableRef{{Name: table}}}
		if star {
			sel.Cols = []sqlast.ResultCol{{Star: true}}
		} else {
			for _, c := range cols {
				sel.Cols = append(sel.Cols, sqlast.ResultCol{X: sqlast.Col(table, c)})
			}
		}
		if rnd.Bool(0.8) {
			sel.Where = eg.Generate()
		}
		comp.Selects = append(comp.Selects, sel)
		if i > 0 {
			op := sqlast.OpUnionAll
			if rnd.Bool(0.2) {
				op = sqlast.OpUnion
			}
			comp.Ops = append(comp.Ops, op)
		}
	}
	return comp
}
