package gen

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/interp"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

func testCols() []ColumnPick {
	return []ColumnPick{
		{Table: "t0", Column: schema.ColumnInfo{Name: "c0", TypeName: "INT"}},
		{Table: "t0", Column: schema.ColumnInfo{Name: "c1", TypeName: "TEXT"}},
		{Table: "t0", Column: schema.ColumnInfo{Name: "c2", TypeName: "BOOLEAN"}},
	}
}

func TestExprGenDeterministic(t *testing.T) {
	mk := func() []string {
		eg := &ExprGen{Rnd: NewRand(dialect.SQLite, 9), Cols: testCols(), MaxDepth: 3}
		var out []string
		for i := 0; i < 50; i++ {
			out = append(out, sqlast.ExprSQL(eg.Generate(), dialect.SQLite))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestExprGenDepthBound(t *testing.T) {
	for _, d := range dialect.All {
		eg := &ExprGen{Rnd: NewRand(d, 3), Cols: testCols(), MaxDepth: 3}
		for i := 0; i < 300; i++ {
			e := eg.Generate()
			// Depth counts nodes; MaxDepth bounds recursion depth, and a
			// few constructs (BETWEEN bounds, IN lists) add one leaf
			// level beyond it.
			if got := sqlast.Depth(e); got > eg.MaxDepth+2 {
				t.Fatalf("[%s] depth %d exceeds bound: %s", d, got, sqlast.ExprSQL(e, d))
			}
		}
	}
}

// Postgres-profile expressions must be boolean-typed: the interpreter
// evaluates every generated condition without type errors on a typed pivot.
func TestExprGenPostgresWellTyped(t *testing.T) {
	eg := &ExprGen{Rnd: NewRand(dialect.Postgres, 5), Cols: testCols(), MaxDepth: 3}
	ctx := interp.NewContext(dialect.Postgres)
	ctx.Bind("t0", "c0", interp.ColInfo{Val: sqlval.Int(1)})
	ctx.Bind("t0", "c1", interp.ColInfo{Val: sqlval.Text("a")})
	ctx.Bind("t0", "c2", interp.ColInfo{Val: sqlval.Bool(true)})
	typeErrors := 0
	for i := 0; i < 1000; i++ {
		e := eg.Generate()
		if _, err := interp.EvalBool(e, ctx); err != nil {
			if _, ok := err.(*interp.TypeError); ok {
				typeErrors++
				continue
			}
			t.Fatalf("unexpected error: %v on %s", err, sqlast.ExprSQL(e, dialect.Postgres))
		}
	}
	if typeErrors != 0 {
		t.Errorf("typed generation produced %d/1000 type errors", typeErrors)
	}
}

func TestValueOfCategory(t *testing.T) {
	rnd := NewRand(dialect.Postgres, 1)
	for i := 0; i < 200; i++ {
		if v := rnd.ValueOfCategory(CatInt); !v.IsNull() && v.Kind() != sqlval.KInt {
			t.Fatalf("CatInt produced %v", v.Kind())
		}
		if v := rnd.ValueOfCategory(CatBool); !v.IsNull() && v.Kind() != sqlval.KBool {
			t.Fatalf("CatBool produced %v", v.Kind())
		}
		if v := rnd.ValueOfCategory(CatText); !v.IsNull() && v.Kind() != sqlval.KText {
			t.Fatalf("CatText produced %v", v.Kind())
		}
	}
}

func TestCategoryOfType(t *testing.T) {
	cases := map[string]Category{
		"INT":     CatInt,
		"TINYINT": CatInt,
		"serial":  CatInt,
		"TEXT":    CatText,
		"REAL":    CatReal,
		"BOOLEAN": CatBool,
		"":        CatAny,
	}
	for tn, want := range cases {
		if got := CategoryOfType(tn); got != want {
			t.Errorf("CategoryOfType(%q) = %v, want %v", tn, got, want)
		}
	}
}

// Tables end up populated, and hints accumulate inserted values.
func TestStateGenPopulates(t *testing.T) {
	e := engine.Open(dialect.SQLite)
	sg := &StateGen{Rnd: NewRand(dialect.SQLite, 4), E: e, MinRows: 2, MaxRows: 5}
	err := sg.BuildDatabase(func(st sqlast.Stmt) error {
		_, _ = e.Exec(sqlast.SQL(st, dialect.SQLite))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tables()) == 0 {
		t.Fatal("no tables created")
	}
	for _, tn := range e.Tables() {
		if e.RowCount(tn) == 0 {
			t.Errorf("table %s left empty", tn)
		}
	}
	if len(sg.Hints) == 0 {
		t.Error("no hints accumulated")
	}
}

func TestMutatedHintVariants(t *testing.T) {
	eg := &ExprGen{
		Rnd:   NewRand(dialect.SQLite, 8),
		Cols:  testCols(),
		Hints: []sqlval.Value{sqlval.Text("aBc"), sqlval.Text("x  ")},
	}
	sawCaseToggle, sawSpace := false, false
	for i := 0; i < 500; i++ {
		e := eg.mutatedHint(eg.Cols[0])
		lit, ok := e.(*sqlast.Literal)
		if !ok || lit.Val.Kind() != sqlval.KText {
			continue
		}
		s := lit.Val.Str()
		if s == "AbC" {
			sawCaseToggle = true
		}
		if s == "aBc  " || s == "x" {
			sawSpace = true
		}
	}
	if !sawCaseToggle || !sawSpace {
		t.Errorf("hint mutation variants missing: case=%v space=%v", sawCaseToggle, sawSpace)
	}
}
