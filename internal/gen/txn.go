package gen

import (
	"repro/internal/sqlast"
)

// Multi-session history generation for the serializability oracle: each
// session gets a short script of transaction-wrapped DML and reads, and
// Interleave draws a deterministic schedule over the scripts from the
// seeded random stream. Scripts are generated against the current
// committed schema without being executed; the oracle executes them later
// under the interleaving.

// Step addresses one statement of one session script inside an
// interleaved history.
type Step struct {
	Session int // index into the scripts slice
	Index   int // statement index within that script
}

// SessionScripts generates n per-session statement scripts over the
// database's existing tables. Each script wraps one to three DML or read
// statements in BEGIN … COMMIT (sometimes ROLLBACK), optionally with
// auto-committed statements before or after the transaction — the shapes
// that make snapshot staging, commit validation, and rollback restoration
// observable when sessions overlap.
func (sg *StateGen) SessionScripts(n int) [][]sqlast.Stmt {
	out := make([][]sqlast.Stmt, n)
	for i := range out {
		out[i] = sg.sessionScript()
	}
	return out
}

func (sg *StateGen) sessionScript() []sqlast.Stmt {
	var stmts []sqlast.Stmt
	capture := func(st sqlast.Stmt) error {
		stmts = append(stmts, st)
		return nil
	}
	// Occasionally an auto-committed statement before the transaction
	// (autocommit reads are the dirty-read observation points).
	if sg.Rnd.Bool(0.3) {
		_ = sg.sessionStmt(capture)
	}
	stmts = append(stmts, &sqlast.Txn{Op: sqlast.TxnBegin})
	for j, n := 0, 1+sg.Rnd.Intn(3); j < n; j++ {
		_ = sg.sessionStmt(capture)
	}
	op := sqlast.TxnCommit
	if sg.Rnd.Bool(0.25) {
		op = sqlast.TxnRollback
	}
	stmts = append(stmts, &sqlast.Txn{Op: op})
	if sg.Rnd.Bool(0.2) {
		_ = sg.sessionStmt(capture)
	}
	return stmts
}

// sessionStmt captures one history statement: insert-biased DML with
// observational reads mixed in. Reads inside transactions witness the
// snapshot (write-skew detection); reads outside witness committed state
// (dirty-read detection).
func (sg *StateGen) sessionStmt(apply Apply) error {
	tables := sg.E.Tables()
	if len(tables) == 0 {
		return nil
	}
	table := tables[sg.Rnd.Intn(len(tables))]
	switch sg.Rnd.Intn(6) {
	case 0, 1:
		return apply(sg.genSessionRead(table))
	case 2:
		return sg.genUpdate(apply, table)
	case 3:
		return sg.genDelete(apply, table)
	default:
		return sg.insertInto(apply, table, 1+sg.Rnd.Intn(2))
	}
}

// genSessionRead builds a deterministic observation of one table: its full
// row set, or an aggregate over one column.
func (sg *StateGen) genSessionRead(table string) *sqlast.Select {
	sel := &sqlast.Select{From: []sqlast.TableRef{{Name: table}}}
	info, err := sg.E.Describe(table)
	if err == nil && len(info.Columns) > 0 && sg.Rnd.Bool(0.5) {
		col := info.Columns[sg.Rnd.Intn(len(info.Columns))].Name
		fn := "COUNT"
		if sg.Rnd.Bool(0.3) {
			fn = "MAX"
		}
		sel.Cols = []sqlast.ResultCol{{
			X:     &sqlast.FuncCall{Name: fn, Args: []sqlast.Expr{sqlast.Col(table, col)}},
			Alias: "a",
		}}
		return sel
	}
	sel.Cols = []sqlast.ResultCol{{Star: true}}
	return sel
}

// Interleave draws a deterministic schedule over the session scripts: at
// each step one session with statements remaining is picked from the
// seeded stream and its next statement is appended. Statement order
// within a session is preserved. Replaying the same seed reproduces the
// identical schedule — the oracle executes it single-threaded, so the
// history is byte-identical at any campaign worker count.
func Interleave(rnd *Rand, scripts [][]sqlast.Stmt) []Step {
	total := 0
	next := make([]int, len(scripts))
	for _, s := range scripts {
		total += len(s)
	}
	steps := make([]Step, 0, total)
	live := make([]int, 0, len(scripts))
	for len(steps) < total {
		live = live[:0]
		for i := range scripts {
			if next[i] < len(scripts[i]) {
				live = append(live, i)
			}
		}
		s := live[rnd.Intn(len(live))]
		steps = append(steps, Step{Session: s, Index: next[s]})
		next[s]++
	}
	return steps
}
