package gen

import (
	"repro/internal/dialect"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// ColumnPick is one column available to the expression generator, with the
// (possibly aliased) table name to qualify it by.
type ColumnPick struct {
	Table  string
	Column schema.ColumnInfo
}

// ExprGen generates random expression ASTs over a schema (Algorithm 1 of
// the paper). Hints are values drawn from the pivot row and table data so
// generated constants often collide with stored values — without this bias
// equality predicates would almost never be satisfiable.
type ExprGen struct {
	Rnd   *Rand
	Cols  []ColumnPick
	Hints []sqlval.Value
	// ColValues, when parallel to Cols, holds the current pivot row's value
	// for each column. simpleComparison biases literals toward the chosen
	// column's own pivot value, so comparisons sit exactly on the values the
	// planner's index probes and range boundaries must not miss.
	ColValues []sqlval.Value
	MaxDepth  int
}

// Generate produces an expression suitable for a filter condition.
// For the strictly-typed Postgres profile the root is boolean-typed; the
// other dialects convert implicitly, so any expression works.
//
// A quarter of conditions are simple `column <op> literal` comparisons
// with the literal drawn from (a mutation of) a stored value — the shape
// the planner's index-lookup paths key on, and where most of the paper's
// index bugs were triggered (Listings 1, 4, 5, 7).
func (eg *ExprGen) Generate() sqlast.Expr {
	if eg.MaxDepth <= 0 {
		eg.MaxDepth = 3
	}
	if len(eg.Cols) > 0 && eg.Rnd.Bool(0.25) {
		return eg.simpleComparison()
	}
	if eg.Rnd.D == dialect.Postgres {
		return eg.genBool(0)
	}
	return eg.genAny(0)
}

// simpleComparison builds `col <op> literal` with an index-lookup-friendly
// operator and a literal that often collides with (or is a case/space
// mutation of) a stored value. Column choice is biased toward collated
// columns: those are where the planner's collation decisions (and the
// paper's collated-index bug class) live.
func (eg *ExprGen) simpleComparison() sqlast.Expr {
	c := eg.Cols[eg.Rnd.Intn(len(eg.Cols))]
	if eg.Rnd.D == dialect.SQLite && eg.Rnd.Bool(0.5) {
		var interesting []ColumnPick
		for _, cand := range eg.Cols {
			if (cand.Column.Collate != "" && cand.Column.Collate != "BINARY") || cand.Column.PK {
				interesting = append(interesting, cand)
			}
		}
		if len(interesting) > 0 {
			c = interesting[eg.Rnd.Intn(len(interesting))]
		}
	}
	col := sqlast.Col(c.Table, c.Column.Name)
	lit := eg.pivotLiteral(c)
	switch eg.Rnd.D {
	case dialect.SQLite:
		// Inclusive range bounds on stored values sit exactly on index
		// range-scan boundaries (the range-scan-boundary trigger).
		if eg.Rnd.Bool(0.12) {
			return &sqlast.Between{X: col, Lo: eg.pivotLiteral(c), Hi: eg.pivotLiteral(c)}
		}
		var l sqlast.Expr = col
		// Collation-qualified comparisons steer the planner's
		// index-vs-collation decision (the planner-collation-confusion
		// trigger: a NOCASE comparison served by a BINARY-ordered index).
		if eg.Rnd.Bool(0.15) {
			colls := []sqlval.Collation{sqlval.CollNoCase, sqlval.CollRTrim}
			l = &sqlast.Collate{X: col, Coll: colls[eg.Rnd.Intn(len(colls))]}
		}
		ops := []sqlast.BinOp{sqlast.OpEq, sqlast.OpEq, sqlast.OpIs, sqlast.OpIsNot,
			sqlast.OpGt, sqlast.OpGe, sqlast.OpLt, sqlast.OpLe}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(len(ops))], L: l, R: lit}
	case dialect.MySQL:
		ops := []sqlast.BinOp{sqlast.OpEq, sqlast.OpNullSafeEq, sqlast.OpNullSafeEq, sqlast.OpGt, sqlast.OpNe}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(len(ops))], L: col, R: lit}
	default:
		cat := CategoryOfType(c.Column.TypeName)
		if cat == CatBool {
			// Bare boolean column or an IS TRUE test.
			if eg.Rnd.Bool(0.5) {
				return col
			}
			return &sqlast.Binary{Op: sqlast.OpIs, L: col, R: sqlast.Lit(sqlval.Bool(eg.Rnd.Bool(0.5)))}
		}
		ops := []sqlast.BinOp{sqlast.OpEq, sqlast.OpLt, sqlast.OpGt, sqlast.OpNe}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(len(ops))], L: col,
			R: sqlast.Lit(eg.Rnd.ValueOfCategory(cat))}
	}
}

// pivotLiteral draws a literal for a comparison against column c: half the
// time the pivot row's own value for c (possibly case/space-mutated — the
// comparison is then TRUE on the pivot and survives rectification as a
// sargable WHERE conjunct), otherwise a general mutated hint.
func (eg *ExprGen) pivotLiteral(c ColumnPick) sqlast.Expr {
	idx := -1
	for i := range eg.Cols {
		if eg.Cols[i].Table == c.Table && eg.Cols[i].Column.Name == c.Column.Name {
			idx = i
			break
		}
	}
	if idx >= 0 && idx < len(eg.ColValues) && eg.Rnd.Bool(0.5) {
		v := eg.ColValues[idx]
		if !v.IsNull() {
			if v.Kind() == sqlval.KText && eg.Rnd.Bool(0.5) {
				switch eg.Rnd.Intn(2) {
				case 0:
					return sqlast.Lit(sqlval.Text(ToggleCase(v.Str())))
				default:
					return sqlast.Lit(sqlval.Text(v.Str() + "  "))
				}
			}
			return sqlast.Lit(v)
		}
	}
	return eg.mutatedHint(c)
}

// mutatedHint draws a literal near the stored data: a hint value verbatim,
// or a case-toggled / trailing-space variant of a stored text (the NOCASE
// and RTRIM bug triggers), or a fresh random value.
func (eg *ExprGen) mutatedHint(c ColumnPick) sqlast.Expr {
	if len(eg.Hints) > 0 && eg.Rnd.Bool(0.65) {
		h := eg.Hints[eg.Rnd.Intn(len(eg.Hints))]
		if h.Kind() == sqlval.KText && eg.Rnd.Bool(0.5) {
			s := h.Str()
			switch eg.Rnd.Intn(3) {
			case 0: // toggle ASCII case
				s = ToggleCase(s)
			case 1: // append trailing spaces
				s += "  "
			default: // trim trailing spaces
				for len(s) > 0 && s[len(s)-1] == ' ' {
					s = s[:len(s)-1]
				}
			}
			return sqlast.Lit(sqlval.Text(s))
		}
		return sqlast.Lit(h)
	}
	return sqlast.Lit(eg.Rnd.Value())
}

// ToggleCase flips the ASCII case of every letter — the generator's
// canonical way to produce NOCASE-equal but BINARY-distinct variants.
func ToggleCase(s string) string {
	b := []byte(s)
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z':
			b[i] = ch - 32
		case ch >= 'A' && ch <= 'Z':
			b[i] = ch + 32
		}
	}
	return string(b)
}

// GenerateValueExpr produces an expression used in a result-column
// position (the §3.4 "expressions on columns" extension).
func (eg *ExprGen) GenerateValueExpr() sqlast.Expr {
	if eg.Rnd.D == dialect.Postgres {
		// Keep result expressions well-typed: a column or a typed literal.
		if len(eg.Cols) > 0 && eg.Rnd.Bool(0.7) {
			return eg.column()
		}
		return sqlast.Lit(eg.Rnd.Value())
	}
	return eg.genAny(eg.MaxDepth - 1) // shallow
}

func (eg *ExprGen) column() sqlast.Expr {
	c := eg.Cols[eg.Rnd.Intn(len(eg.Cols))]
	return sqlast.Col(c.Table, c.Column.Name)
}

func (eg *ExprGen) pick(c ColumnPick) sqlast.Expr {
	return sqlast.Col(c.Table, c.Column.Name)
}

// literal draws a constant, biased toward hint values.
func (eg *ExprGen) literal() sqlast.Expr {
	if len(eg.Hints) > 0 && eg.Rnd.Bool(0.5) {
		return sqlast.Lit(eg.Hints[eg.Rnd.Intn(len(eg.Hints))])
	}
	return sqlast.Lit(eg.Rnd.Value())
}

// genAny implements Algorithm 1 for the implicitly-converting dialects.
func (eg *ExprGen) genAny(depth int) sqlast.Expr {
	leafOnly := depth >= eg.MaxDepth
	if leafOnly || eg.Rnd.Bool(0.28) {
		if len(eg.Cols) > 0 && eg.Rnd.Bool(0.55) {
			col := eg.Cols[eg.Rnd.Intn(len(eg.Cols))]
			x := eg.pick(col)
			// Occasionally attach a COLLATE (SQLite).
			if eg.Rnd.D == dialect.SQLite && eg.Rnd.Bool(0.08) {
				colls := []sqlval.Collation{sqlval.CollNoCase, sqlval.CollRTrim, sqlval.CollBinary}
				return &sqlast.Collate{X: x, Coll: colls[eg.Rnd.Intn(len(colls))]}
			}
			return x
		}
		return eg.literal()
	}
	switch eg.Rnd.Intn(14) {
	case 0:
		return sqlast.Not(eg.genAny(depth + 1))
	case 1:
		ops := []sqlast.UnaryOp{sqlast.OpNeg, sqlast.OpPos, sqlast.OpBitNot}
		return &sqlast.Unary{Op: ops[eg.Rnd.Intn(len(ops))], X: eg.genAny(depth + 1)}
	case 2:
		op := sqlast.OpIsNull
		if eg.Rnd.Bool(0.5) {
			op = sqlast.OpNotNull
		}
		return &sqlast.Unary{Op: op, X: eg.genAny(depth + 1)}
	case 3, 4:
		ops := []sqlast.BinOp{sqlast.OpAnd, sqlast.OpOr}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(2)], L: eg.genAny(depth + 1), R: eg.genAny(depth + 1)}
	case 5, 6:
		ops := []sqlast.BinOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(len(ops))], L: eg.genAny(depth + 1), R: eg.genAny(depth + 1)}
	case 7:
		// Dialect-specific null-safe comparisons: SQLite IS / IS NOT,
		// MySQL <=> (Listings 1 and 12).
		if eg.Rnd.D == dialect.SQLite {
			op := sqlast.OpIs
			if eg.Rnd.Bool(0.5) {
				op = sqlast.OpIsNot
			}
			return &sqlast.Binary{Op: op, L: eg.genAny(depth + 1), R: eg.genAny(depth + 1)}
		}
		return &sqlast.Binary{Op: sqlast.OpNullSafeEq, L: eg.genAny(depth + 1), R: eg.genAny(depth + 1)}
	case 8:
		ops := []sqlast.BinOp{sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(len(ops))], L: eg.genAny(depth + 1), R: eg.genAny(depth + 1)}
	case 9:
		op := sqlast.OpLike
		if eg.Rnd.Bool(0.3) {
			op = sqlast.OpNotLike
		}
		return &sqlast.Binary{Op: op, L: eg.genAny(depth + 1), R: eg.likePattern()}
	case 10:
		return &sqlast.Between{
			Not: eg.Rnd.Bool(0.3),
			X:   eg.genAny(depth + 1),
			Lo:  eg.literal(),
			Hi:  eg.literal(),
		}
	case 11:
		n := 1 + eg.Rnd.Intn(3)
		in := &sqlast.InList{Not: eg.Rnd.Bool(0.3), X: eg.genAny(depth + 1)}
		for i := 0; i < n; i++ {
			in.List = append(in.List, eg.literal())
		}
		return in
	case 12:
		return eg.cast(eg.genAny(depth + 1))
	default:
		return eg.funcCall(depth)
	}
}

// likePattern draws a LIKE pattern, often an exact stored value (the
// Listing 7 trigger) and often wildcarded.
func (eg *ExprGen) likePattern() sqlast.Expr {
	base := ""
	if len(eg.Hints) > 0 && eg.Rnd.Bool(0.6) {
		h := eg.Hints[eg.Rnd.Intn(len(eg.Hints))]
		if h.Kind() == sqlval.KText {
			base = h.Str()
		}
	}
	if base == "" {
		base = interestingTexts[eg.Rnd.Intn(len(interestingTexts))]
	}
	switch eg.Rnd.Intn(4) {
	case 0:
		return sqlast.Lit(sqlval.Text(base)) // exact match (no wildcards)
	case 1:
		return sqlast.Lit(sqlval.Text(base + "%"))
	case 2:
		return sqlast.Lit(sqlval.Text("%" + base))
	default:
		return sqlast.Lit(sqlval.Text("%" + base + "%"))
	}
}

func (eg *ExprGen) cast(x sqlast.Expr) sqlast.Expr {
	var types []string
	switch eg.Rnd.D {
	case dialect.MySQL:
		types = []string{"UNSIGNED", "SIGNED", "CHAR"}
	case dialect.Postgres:
		types = []string{"INT", "TEXT", "REAL", "BOOLEAN"}
	default:
		types = []string{"INTEGER", "TEXT", "REAL", "BLOB", "NUMERIC"}
	}
	return &sqlast.Cast{X: x, TypeName: types[eg.Rnd.Intn(len(types))]}
}

func (eg *ExprGen) funcCall(depth int) sqlast.Expr {
	switch eg.Rnd.Intn(6) {
	case 0:
		return &sqlast.FuncCall{Name: "ABS", Args: []sqlast.Expr{eg.genAny(depth + 1)}}
	case 1:
		return &sqlast.FuncCall{Name: "LENGTH", Args: []sqlast.Expr{eg.genAny(depth + 1)}}
	case 2:
		if eg.Rnd.D == dialect.MySQL {
			return &sqlast.FuncCall{Name: "IFNULL", Args: []sqlast.Expr{eg.genAny(depth + 1), eg.genAny(depth + 1)}}
		}
		return &sqlast.FuncCall{Name: "IFNULL", Args: []sqlast.Expr{eg.genAny(depth + 1), eg.literal()}}
	case 3:
		return &sqlast.FuncCall{Name: "COALESCE", Args: []sqlast.Expr{eg.genAny(depth + 1), eg.literal()}}
	case 4:
		name := "LOWER"
		if eg.Rnd.Bool(0.5) {
			name = "UPPER"
		}
		return &sqlast.FuncCall{Name: name, Args: []sqlast.Expr{eg.genAny(depth + 1)}}
	default:
		return &sqlast.FuncCall{Name: "NULLIF", Args: []sqlast.Expr{eg.genAny(depth + 1), eg.literal()}}
	}
}

// ---- strictly-typed generation (PostgreSQL profile) ----

func (eg *ExprGen) colsOfCategory(cat Category) []ColumnPick {
	var out []ColumnPick
	for _, c := range eg.Cols {
		if CategoryOfType(c.Column.TypeName) == cat {
			out = append(out, c)
		}
	}
	return out
}

// genBool generates a boolean-typed expression tree.
func (eg *ExprGen) genBool(depth int) sqlast.Expr {
	leafOnly := depth >= eg.MaxDepth
	if leafOnly || eg.Rnd.Bool(0.2) {
		if bools := eg.colsOfCategory(CatBool); len(bools) > 0 && eg.Rnd.Bool(0.5) {
			return eg.pick(bools[eg.Rnd.Intn(len(bools))])
		}
		return sqlast.Lit(sqlval.Bool(eg.Rnd.Bool(0.5)))
	}
	switch eg.Rnd.Intn(9) {
	case 0:
		return sqlast.Not(eg.genBool(depth + 1))
	case 1, 2:
		ops := []sqlast.BinOp{sqlast.OpAnd, sqlast.OpOr}
		return &sqlast.Binary{Op: ops[eg.Rnd.Intn(2)], L: eg.genBool(depth + 1), R: eg.genBool(depth + 1)}
	case 3, 4, 5:
		cat := eg.someCategory()
		ops := []sqlast.BinOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
		return &sqlast.Binary{
			Op: ops[eg.Rnd.Intn(len(ops))],
			L:  eg.genTyped(cat, depth+1),
			R:  eg.genTyped(cat, depth+1),
		}
	case 6:
		op := sqlast.OpIsNull
		if eg.Rnd.Bool(0.5) {
			op = sqlast.OpNotNull
		}
		return &sqlast.Unary{Op: op, X: eg.genTyped(eg.someCategory(), depth+1)}
	case 7:
		// x IS TRUE / IS NOT FALSE — boolean identity tests.
		op := sqlast.OpIs
		if eg.Rnd.Bool(0.5) {
			op = sqlast.OpIsNot
		}
		return &sqlast.Binary{Op: op, L: eg.genBool(depth + 1), R: sqlast.Lit(sqlval.Bool(eg.Rnd.Bool(0.5)))}
	default:
		cat := eg.someCategory()
		return &sqlast.Between{
			Not: eg.Rnd.Bool(0.3),
			X:   eg.genTyped(cat, depth+1),
			Lo:  sqlast.Lit(eg.Rnd.ValueOfCategory(cat)),
			Hi:  sqlast.Lit(eg.Rnd.ValueOfCategory(cat)),
		}
	}
}

func (eg *ExprGen) someCategory() Category {
	cats := []Category{CatInt, CatText, CatBool, CatReal}
	// Prefer categories that actually have columns.
	for tries := 0; tries < 3; tries++ {
		cat := cats[eg.Rnd.Intn(len(cats))]
		if len(eg.colsOfCategory(cat)) > 0 {
			return cat
		}
	}
	return cats[eg.Rnd.Intn(len(cats))]
}

// genTyped generates an expression of a specific category. Arithmetic is
// deliberately excluded for Postgres filters: division by zero and integer
// overflow raise runtime errors there, which would contaminate the
// containment oracle (the error oracle covers them via other statements).
func (eg *ExprGen) genTyped(cat Category, depth int) sqlast.Expr {
	if cat == CatBool {
		return eg.genBool(depth)
	}
	cols := eg.colsOfCategory(cat)
	if len(cols) > 0 && eg.Rnd.Bool(0.55) {
		return eg.pick(cols[eg.Rnd.Intn(len(cols))])
	}
	if len(eg.Hints) > 0 && eg.Rnd.Bool(0.4) {
		h := eg.Hints[eg.Rnd.Intn(len(eg.Hints))]
		if matchesCategory(h, cat) {
			return sqlast.Lit(h)
		}
	}
	return sqlast.Lit(eg.Rnd.ValueOfCategory(cat))
}

func matchesCategory(v sqlval.Value, cat Category) bool {
	switch cat {
	case CatInt:
		return v.Kind() == sqlval.KInt || v.IsNull()
	case CatReal:
		return v.Kind() == sqlval.KReal || v.IsNull()
	case CatText:
		return v.Kind() == sqlval.KText || v.IsNull()
	case CatBool:
		return v.Kind() == sqlval.KBool || v.IsNull()
	default:
		return true
	}
}
