// This test lives in the external gen_test package so it can keep using
// oracle.Classify as its error triage: the oracle package imports gen (the
// metamorphic oracles drive the expression generator), so an in-package
// test importing oracle would cycle, but an external test package may.
package gen_test

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/sqlast"
)

// The state generator's statements must overwhelmingly be executable: no
// syntax errors, almost no artifacts (missing objects etc.), and — per the
// full statement-aware whitelist in oracle.Classify — nothing the error or
// crash oracle would flag on a clean engine.
func TestStateGenProducesValidSQL(t *testing.T) {
	for _, d := range dialect.All {
		total, artifacts := 0, 0
		for seed := int64(0); seed < 30; seed++ {
			e := engine.Open(d)
			sg := &gen.StateGen{Rnd: gen.NewRand(d, seed), E: e}
			err := sg.BuildDatabase(func(st sqlast.Stmt) error {
				total++
				_, execErr := e.Exec(sqlast.SQL(st, d))
				switch oracle.Classify(st, execErr, d) {
				case oracle.VerdictArtifact:
					artifacts++
				case oracle.VerdictBug, oracle.VerdictCrash:
					t.Fatalf("[%s] clean engine flagged a bug on %s: %v", d, sqlast.SQL(st, d), execErr)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if artifacts*20 > total {
			t.Errorf("[%s] %d/%d statements were generator artifacts (>5%%)", d, artifacts, total)
		}
	}
}
