// Hash-join and index-lookup-join execution with cost-based strategy
// selection. joinRows (query.go) analyzes each join level and dispatches to
// one of three operators:
//
//   - nested loop: the always-correct baseline — every (combo, row) pair is
//     evaluated against the full ON condition;
//   - hash join: equality conjuncts of the ON condition (or, for implicit
//     cross joins, of the WHERE clause) become normalized byte keys; a hash
//     table built on the estimated-smaller side turns O(n×m) enumeration
//     into O(n+m) bucket probes. Bucket equality deliberately COARSENS the
//     evaluator's equality (eval-equal values always share a key; unequal
//     values may collide), so every candidate pair is still verified by the
//     compiled ON program — collisions cost time, never correctness;
//   - index-lookup join: when the inner table has a usable index on the
//     join column, each outer combo probes it directly, skipping the build.
//
// Eligibility is conservative: the hash path only replaces the nested loop
// when skipping non-candidate pairs cannot be observed — the condition must
// be error-free to evaluate in SQLite/MySQL, and in Postgres (whose
// comparisons raise type errors) the ON must be a pure equi-join whose key
// columns hold runtime-compatible value classes on both sides. Faults that
// rewrite `=` semantics (affinity/typing faults) disable hashing outright,
// so the pre-existing 46-fault detection matrix is byte-identical with hashing on or
// off. Output order is preserved exactly: left-major, inner rows in scan
// order — byte-identical result sets, not just equal multisets.
package engine

import (
	"math"
	"sort"
	"strings"

	"repro/internal/dialect"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// JoinStrategy names the operator chosen for one join level.
type JoinStrategy uint8

// Join strategies.
const (
	// JoinNested is the pairwise nested-loop baseline.
	JoinNested JoinStrategy = iota
	// JoinHash builds a hash table on the smaller side and probes it.
	JoinHash
	// JoinIndexLookup probes an inner-table index per outer combo.
	JoinIndexLookup
)

// String names the strategy in EXPLAIN output.
func (s JoinStrategy) String() string {
	switch s {
	case JoinHash:
		return "HASH"
	case JoinIndexLookup:
		return "INDEX LOOKUP"
	default:
		return "NESTED LOOP"
	}
}

// equiKey is one equality conjunct usable as a hash-join key: a column of
// an earlier relation equated with a column of the level's new relation.
type equiKey struct {
	lRel, lCol int // outer side: relation index < level, column index
	rCol       int // inner side: column index in the level's relation
	// coll is the effective comparison collation, resolved exactly the way
	// eval.comparisonCollation does (explicit COLLATE, else the first
	// column operand's declared collation).
	coll sqlval.Collation
}

// joinAnalysis is the per-level eligibility result feeding strategy choice.
type joinAnalysis struct {
	keys []equiKey
	// idx is a usable inner-table index on one key's column (SQLite,
	// fault-free engines only); idxKey/idxAff describe the probe.
	idx    *schema.Index
	idxKey equiKey
	idxAff sqlval.Affinity
}

// hashBlockingFaults rewrite equality/comparison semantics, breaking the
// "eval-equal implies key-equal" invariant hash bucketing relies on. Any of
// them enabled forces every join level back to the nested loop, so their
// detection behaviour is trivially identical under hashjoin=on/off.
var hashBlockingFaults = []faults.Fault{
	faults.AffinityCompare,
	faults.MemoryEngineCast,
	faults.UnsignedCompare,
	faults.TinyintRangeClamp,
	faults.NullSafeEqRange,
}

func (e *Engine) hashJoinBlocked() bool {
	for _, f := range hashBlockingFaults {
		if e.fs.Has(f) {
			return true
		}
	}
	return false
}

// crossPrefilterOK reports whether implicit cross-join levels may use
// WHERE-derived equality conjuncts as hash keys. Sound because a combo can
// only survive filterCombos when the WHERE is TRUE, which requires every
// AND-conjunct TRUE — so dropping pairs that fail an equality conjunct
// early never changes the filtered result. Restricted to fault-free
// engines (faults like where-true-drop key off the exact combo stream) and
// non-Postgres dialects (Postgres comparisons can raise type errors that
// the full enumeration would surface).
func (e *Engine) crossPrefilterOK(n *sqlast.Select, rels []*relation) bool {
	return !e.noHashJoin && e.d != dialect.Postgres && n.Where != nil &&
		e.fs.Empty() && errFreeOn(n.Where, rels)
}

// errFreeOn reports whether evaluating x can never raise a runtime error in
// the SQLite/MySQL dialects — the hash path evaluates the condition only on
// bucket-matched candidate pairs, so a pair-dependent error on a skipped
// pair would be an observable divergence from the nested loop. The
// whitelist is deliberately tight: literals, resolvable plain column
// references, COLLATE, NOT / IS NULL tests, logical connectives, and
// comparisons (whose NULL handling precedes ordering, and whose ordering
// never errors outside Postgres). Arithmetic (division by zero, overflow),
// LIKE, casts, function calls, and unresolvable or double-quoted
// maybe-string references all disqualify the condition.
func errFreeOn(x sqlast.Expr, rels []*relation) bool {
	switch n := x.(type) {
	case *sqlast.Literal:
		return true
	case *sqlast.ColumnRef:
		if n.MaybeString {
			return false
		}
		ri, _, _ := findColumn(rels, n.Table, n.Column)
		return ri >= 0
	case *sqlast.Collate:
		return errFreeOn(n.X, rels)
	case *sqlast.Unary:
		switch n.Op {
		case sqlast.OpNot, sqlast.OpIsNull, sqlast.OpNotNull:
			return errFreeOn(n.X, rels)
		}
		return false
	case *sqlast.Binary:
		switch n.Op {
		case sqlast.OpAnd, sqlast.OpOr, sqlast.OpEq, sqlast.OpNe,
			sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe,
			sqlast.OpIs, sqlast.OpIsNot, sqlast.OpNullSafeEq:
			return errFreeOn(n.L, rels) && errFreeOn(n.R, rels)
		}
		return false
	case *sqlast.Between:
		return errFreeOn(n.X, rels) && errFreeOn(n.Lo, rels) && errFreeOn(n.Hi, rels)
	}
	return false
}

// pureEquiOn reports whether every AND-conjunct of an ON condition is a
// cross-boundary column equality — the Postgres eligibility bar. With only
// such conjuncts, the sole runtime error a pair can raise is a cross-class
// comparison on a key column, which pgJoinClassesCompatible rules out
// before the hash path runs (falling back to the nested loop, which raises
// the identical error naturally, when it cannot).
func pureEquiOn(cond sqlast.Expr, vis []*relation, level int) bool {
	n := 0
	for _, conj := range conjuncts(cond) {
		if equiKeyOf(conj, vis, level) == nil {
			return false
		}
		n++
	}
	return n > 0
}

// equiKeyOf recognizes one conjunct as a cross-boundary equality key:
// `a = b` where both sides (each under at most one COLLATE) are plain
// column references resolving unambiguously, one into the level's new
// relation and the other into an earlier one.
func equiKeyOf(conj sqlast.Expr, vis []*relation, level int) *equiKey {
	b, ok := conj.(*sqlast.Binary)
	if !ok || b.Op != sqlast.OpEq {
		return nil
	}
	l, _, _ := stripOneCollate(b.L)
	r, _, _ := stripOneCollate(b.R)
	lcr, lok := l.(*sqlast.ColumnRef)
	rcr, rok := r.(*sqlast.ColumnRef)
	if !lok || !rok || lcr.MaybeString || rcr.MaybeString {
		return nil
	}
	lri, lci, _ := findColumn(vis, lcr.Table, lcr.Column)
	rri, rci, _ := findColumn(vis, rcr.Table, rcr.Column)
	if lri < 0 || rri < 0 {
		return nil
	}
	var k equiKey
	switch {
	case lri == level && rri < level:
		k = equiKey{lRel: rri, lCol: rci, rCol: lci}
	case rri == level && lri < level:
		k = equiKey{lRel: lri, lCol: lci, rCol: rci}
	default:
		return nil
	}
	k.coll = joinKeyCollation(b, vis)
	return &k
}

// joinKeyCollation mirrors eval.comparisonCollation for an equality whose
// operands are (possibly COLLATE-wrapped) column references: an explicit
// COLLATE wins (left operand first), else the first column operand's
// declared collation applies.
func joinKeyCollation(b *sqlast.Binary, vis []*relation) sqlval.Collation {
	if c, ok := b.L.(*sqlast.Collate); ok {
		return c.Coll
	}
	if c, ok := b.R.(*sqlast.Collate); ok {
		return c.Coll
	}
	for _, x := range []sqlast.Expr{b.L, b.R} {
		if cr, ok := x.(*sqlast.ColumnRef); ok {
			if ri, ci, _ := findColumn(vis, cr.Table, cr.Column); ri >= 0 {
				return vis[ri].columns[ci].Collate
			}
		}
	}
	return sqlval.CollBinary
}

// extractEquiKeys collects every cross-boundary equality conjunct of cond
// usable as a hash key at this level. Conjuncts that are not keys stay in
// the residual: the full condition is re-verified on every candidate pair.
func extractEquiKeys(cond sqlast.Expr, vis []*relation, level int) []equiKey {
	var keys []equiKey
	for _, conj := range conjuncts(cond) {
		if k := equiKeyOf(conj, vis, level); k != nil {
			keys = append(keys, *k)
		}
	}
	return keys
}

// analyzeJoin decides hash/index eligibility for one join level, returning
// nil when only the nested loop is sound.
func (e *Engine) analyzeJoin(n *sqlast.Select, rels []*relation, j joinInfo, level int, crossOK bool) *joinAnalysis {
	if e.noHashJoin || e.hashJoinBlocked() {
		return nil
	}
	vis := rels[:level+1]
	cond := j.on
	if cond == nil {
		// Implicit cross join: WHERE-derived equality prefilter
		// (crossPrefilterOK vetted the full WHERE against all relations).
		if !crossOK {
			return nil
		}
		cond = n.Where
	} else if e.d == dialect.Postgres {
		if !pureEquiOn(cond, vis, level) {
			return nil
		}
	} else if !errFreeOn(cond, vis) {
		return nil
	}
	keys := extractEquiKeys(cond, vis, level)
	if len(keys) == 0 {
		return nil
	}
	a := &joinAnalysis{keys: keys}
	if e.d == dialect.SQLite && e.fs.Empty() && j.on != nil &&
		j.kind == sqlast.JoinInner && rels[level].table != "" {
		e.joinIndexCandidate(a, rels, level)
	}
	return a
}

// joinIndexCandidate looks for an inner-table index that can serve one of
// the equality keys directly. Mirrors indexUsable's equality rules: the
// index collation must equal the comparison collation, or the comparison
// must be BINARY (a coarser index yields a candidate superset the ON
// verification filters). Restricted to key columns whose two sides share a
// type affinity, so stored-value normal forms coincide and an
// affinity-converted probe key finds every eval-equal entry.
func (e *Engine) joinIndexCandidate(a *joinAnalysis, rels []*relation, level int) {
	t, ok := e.cat.Table(rels[level].table)
	if !ok {
		return
	}
	for _, k := range a.keys {
		rcol := &rels[level].columns[k.rCol]
		lcol := &rels[k.lRel].columns[k.lCol]
		if lcol.Affinity != rcol.Affinity {
			continue
		}
		for _, ix := range e.cat.IndexesOn(t.Name) {
			if ix.Where != nil {
				continue
			}
			lead, bare := ix.LeadingColumn()
			if !bare || !strings.EqualFold(lead, rcol.Name) {
				continue
			}
			declared := ix.Parts[0].Collate
			if declared != k.coll && k.coll != sqlval.CollBinary {
				continue
			}
			if e.idx[lower(ix.Name)] == nil {
				continue
			}
			a.idx, a.idxKey, a.idxAff = ix, k, rcol.Affinity
			return
		}
	}
}

// Join cost model, in the planner's row-count units (see plan.go):
// nested = L×R pair evaluations; hash = one pass over each side plus a
// constant build overhead; index lookup = per-combo index probes plus
// fetches. The crossover sits at tiny inputs (L=R=3) on purpose — hash
// setup should never lose measurably, and campaign tables are small.
func joinCost(s JoinStrategy, l, r float64) float64 {
	switch s {
	case JoinHash:
		return l + r + 2
	case JoinIndexLookup:
		return 2 + l*(0.5*math.Log2(r+1)+1)
	default:
		return l * r
	}
}

// chooseJoinStrategy picks the cheapest eligible strategy for a level with
// l outer combos and r inner rows.
func chooseJoinStrategy(a *joinAnalysis, l, r float64) (JoinStrategy, float64) {
	best, bestCost := JoinNested, joinCost(JoinNested, l, r)
	if c := joinCost(JoinHash, l, r); c < bestCost {
		best, bestCost = JoinHash, c
	}
	if a != nil && a.idx != nil {
		if c := joinCost(JoinIndexLookup, l, r); c < bestCost {
			best, bestCost = JoinIndexLookup, c
		}
	}
	return best, bestCost
}

// pgJoinClassesCompatible prescans both sides of every key column for
// Postgres: a hash level is only safe when no pair can raise a cross-class
// comparison error. Classes are bitmasked per column over the relations'
// materialized rows (a superset of the values reaching this level, so the
// check errs toward the nested loop, never away from it).
func pgJoinClassesCompatible(a *joinAnalysis, rels []*relation, level int) bool {
	for _, k := range a.keys {
		lm := relClassMask(rels[k.lRel].rows, k.lCol)
		rm := relClassMask(rels[level].rows, k.rCol)
		if lm != 0 && rm != 0 {
			if m := lm | rm; m&(m-1) != 0 {
				return false
			}
		}
	}
	return true
}

// relClassMask ORs the Postgres comparison classes present in one column:
// numeric=1, bool=2, text=4, blob=8. NULLs contribute nothing (comparisons
// against NULL never error).
func relClassMask(rows []*rowVals, col int) uint8 {
	var m uint8
	for _, row := range rows {
		if col >= len(row.vals) {
			continue
		}
		v := row.vals[col]
		switch {
		case v.IsNull():
		case v.Kind() == sqlval.KBool:
			m |= 2
		case v.Kind() == sqlval.KText:
			m |= 4
		case v.Kind() == sqlval.KBlob:
			m |= 8
		default:
			m |= 1
		}
	}
	return m
}

// appendKeyFloat appends the canonical numeric key form: the raw IEEE
// bits, with negative zero folded onto zero and NaNs onto one bit
// pattern (Compare calls those equal; their bits differ). Distinct huge
// integers can collide on one float — collisions are verified away by
// the ON residual (joins) or keysEqual (grouping).
func appendKeyFloat(buf []byte, f float64) []byte {
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if f != f {
		bits = math.Float64bits(math.NaN())
	}
	return append(buf, 'f',
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

// appendJoinKey appends one value's normalized key component. The single
// invariant: two values the dialect's comparison calls equal under coll
// must produce byte-identical components (the converse need not hold).
//
//   - SQLite compares within classes (numeric < text < blob), so components
//     are class-tagged; text canonicalizes through the collation
//     (sqlval.CollKey), numerics through one float rendering.
//   - MySQL coerces every comparison operand through its lossy numeric
//     rules whenever either side is numeric, so the only universally sound
//     key is the numeric coercion itself (eval.Numeric): collation-equal
//     text folds case/trailing-space, which never changes the numeric
//     prefix, and byte-equal text/blob trivially agree.
//   - Postgres compares strictly within classes (mixed classes error and
//     are excluded by the compatibility prescan).
func (e *Engine) appendJoinKey(buf []byte, v sqlval.Value, coll sqlval.Collation) []byte {
	switch e.d {
	case dialect.MySQL:
		return appendKeyFloat(buf, eval.Numeric(v).AsFloat())
	case dialect.Postgres:
		switch v.Kind() {
		case sqlval.KBool:
			buf = append(buf, 'B')
			if v.Int64() != 0 {
				return append(buf, '1')
			}
			return append(buf, '0')
		case sqlval.KText:
			buf = append(buf, 't')
			return append(buf, sqlval.CollKey(v.Str(), coll)...)
		case sqlval.KBlob:
			buf = append(buf, 'x')
			return append(buf, v.BlobStr()...)
		default:
			return appendKeyFloat(buf, v.AsFloat())
		}
	default: // SQLite
		switch v.Kind() {
		case sqlval.KText:
			buf = append(buf, 't')
			// Fault site (sqlite.hash-join-collation): the hash key skips
			// collation canonicalization, so NOCASE/RTRIM-equal key
			// variants land in different buckets and their join partners
			// silently vanish from the result.
			if e.fs.Has(faults.HashJoinCollation) {
				return append(buf, v.Str()...)
			}
			return append(buf, sqlval.CollKey(v.Str(), coll)...)
		case sqlval.KBlob:
			buf = append(buf, 'x')
			return append(buf, v.BlobStr()...)
		default:
			return appendKeyFloat(buf, v.AsFloat())
		}
	}
}

// rowJoinKey builds the inner-side key of one row. ok=false marks an
// unkeyable row: a SQL NULL key component never equals anything, so the
// row cannot join (the caller handles LEFT-join NULL extension). Under the
// null-key fault, NULL components instead key on a sentinel — making NULL
// spuriously equal to NULL.
func (e *Engine) rowJoinKey(buf []byte, row *rowVals, keys []equiKey, nullFault bool) (_ []byte, ok, hadNull bool) {
	for _, k := range keys {
		v := sqlval.Null()
		if k.rCol < len(row.vals) {
			v = row.vals[k.rCol]
		}
		if v.IsNull() {
			// Fault site (sqlite.hash-join-null-key): NULL keys bucket
			// under a shared sentinel instead of never matching.
			if !nullFault {
				return buf, false, false
			}
			hadNull = true
			buf = append(buf, 'N', 0)
			continue
		}
		buf = e.appendJoinKey(buf, v, k.coll)
		buf = append(buf, 0)
	}
	return buf, true, hadNull
}

// comboJoinKey is rowJoinKey for the outer side: key components come from
// the combo's per-relation rows (nil rows — NULL-extended outer-join sides
// — contribute NULL components).
func (e *Engine) comboJoinKey(buf []byte, combo []*rowVals, keys []equiKey, nullFault bool) (_ []byte, ok, hadNull bool) {
	for _, k := range keys {
		v := sqlval.Null()
		if k.lRel < len(combo) && combo[k.lRel] != nil && k.lCol < len(combo[k.lRel].vals) {
			v = combo[k.lRel].vals[k.lCol]
		}
		if v.IsNull() {
			if !nullFault {
				return buf, false, false
			}
			hadNull = true
			buf = append(buf, 'N', 0)
			continue
		}
		buf = e.appendJoinKey(buf, v, k.coll)
		buf = append(buf, 0)
	}
	return buf, true, hadNull
}

// comboArena block-allocates the kept-combo slices of a join. Campaign
// profiles showed the per-kept-combo make() in the nested loop as a top
// allocation site; carving fixed-capacity slices out of doubling blocks
// amortizes it away. Exhausted blocks are abandoned to the slices already
// carved from them, so taken pointers stay valid.
type comboArena struct {
	buf []*rowVals
}

func (a *comboArena) alloc(n int) []*rowVals {
	if len(a.buf)+n > cap(a.buf) {
		sz := 1024
		for sz < n {
			sz *= 2
		}
		a.buf = make([]*rowVals, 0, sz)
	}
	start := len(a.buf)
	a.buf = a.buf[:start+n]
	return a.buf[start : start+n : start+n]
}

// joinLevel is the per-level state shared by the three join operators.
type joinLevel struct {
	n      *sqlast.Select
	rels   []*relation
	level  int
	j      joinInfo
	onEval *exprEval
	onTest func() (sqlval.TriBool, error)
	arena  *comboArena
	// scratch is the reused ON-evaluation combo (shared across levels).
	scratch *[]*rowVals
}

// nestedJoinLevel is the baseline operator: exactly the semantics the
// executor always had, with arena-backed kept-combo allocation.
func (e *Engine) nestedJoinLevel(lv *joinLevel, combos, out [][]*rowVals) ([][]*rowVals, error) {
	right := lv.rels[lv.level].rows
	leftDrop := lv.j.kind == sqlast.JoinLeft && e.d == dialect.Postgres && e.fs.Has(faults.LeftJoinDrop)
	for _, combo := range combos {
		matched := false
		for _, row := range right {
			if lv.onTest != nil {
				// Evaluate the ON condition against a reused scratch
				// combo; a fresh slice is materialized only for kept rows.
				*lv.scratch = append(append((*lv.scratch)[:0], combo...), row)
				lv.onEval.setRow(*lv.scratch)
				tb, err := lv.onTest()
				if err != nil {
					return nil, err
				}
				if tb != sqlval.TriTrue {
					continue
				}
			}
			// Fault site (postgres.left-join-drop), part 2: a matched LEFT
			// JOIN row carrying a NULL on the right side is misclassified
			// as unmatched and dropped.
			if leftDrop && hasNullVal(row) {
				matched = true
				continue
			}
			matched = true
			cand := lv.arena.alloc(len(combo) + 1)
			copy(cand, combo)
			cand[len(combo)] = row
			out = append(out, cand)
		}
		if !matched && lv.j.kind == sqlast.JoinLeft {
			// Fault site (postgres.left-join-drop), part 1: LEFT JOIN
			// behaves as INNER and drops the unmatched left row.
			if leftDrop {
				continue
			}
			cand := lv.arena.alloc(len(combo) + 1)
			copy(cand, combo)
			cand[len(combo)] = nil
			out = append(out, cand)
		}
	}
	return out, nil
}

// hashJoinLevel joins one level through a hash table on the
// estimated-smaller side. Emission order reproduces the nested loop
// exactly: outer combos in order, each combo's matches in inner scan
// order — the result is byte-identical, not merely multiset-equal.
func (e *Engine) hashJoinLevel(lv *joinLevel, a *joinAnalysis, combos, out [][]*rowVals) ([][]*rowVals, error) {
	right := lv.rels[lv.level].rows
	nullFault := e.d == dialect.SQLite && e.fs.Has(faults.HashJoinNullKey) &&
		lv.n.Where != nil && lv.j.on != nil
	leftDropHash := lv.j.kind == sqlast.JoinLeft && e.d == dialect.Postgres &&
		e.fs.Has(faults.HashLeftJoinDrop) && lv.n.Where != nil
	leftDrop := lv.j.kind == sqlast.JoinLeft && e.d == dialect.Postgres &&
		e.fs.Has(faults.LeftJoinDrop)

	// emit verifies one candidate pair against the full ON condition and
	// appends it. Bucket equality is a prefilter; the residual verification
	// is what makes key collisions harmless. Cross-join levels (no ON)
	// skip it: their collisions are removed by the WHERE filter that
	// crossPrefilterOK guarantees runs. reported tracks LEFT-join
	// matchedness (a pair can match yet be suppressed by the
	// left-join-drop fault, exactly like the nested loop).
	emit := func(combo []*rowVals, row *rowVals, skipTest bool) (matchedPair bool, err error) {
		if lv.onTest != nil && !skipTest {
			*lv.scratch = append(append((*lv.scratch)[:0], combo...), row)
			lv.onEval.setRow(*lv.scratch)
			tb, err := lv.onTest()
			if err != nil {
				return false, err
			}
			if tb != sqlval.TriTrue {
				return false, nil
			}
		}
		// Fault site (postgres.left-join-drop), part 2 — mirrored from the
		// nested loop so the fault matrix is path-independent.
		if leftDrop && hasNullVal(row) {
			return true, nil
		}
		cand := lv.arena.alloc(len(combo) + 1)
		copy(cand, combo)
		cand[len(combo)] = row
		out = append(out, cand)
		return true, nil
	}
	extend := func(combo []*rowVals) {
		if leftDrop {
			// Fault site (postgres.left-join-drop), part 1 — mirrored.
			return
		}
		if leftDropHash {
			// Fault site (postgres.hash-left-join-drop): the hash LEFT
			// join forgets to NULL-extend unmatched preserved combos in
			// filtered queries — they vanish instead.
			return
		}
		cand := lv.arena.alloc(len(combo) + 1)
		copy(cand, combo)
		cand[len(combo)] = nil
		out = append(out, cand)
	}

	var keyBuf []byte
	if len(right) <= len(combos) {
		// Build on the inner relation, probe with outer combos. Bucket
		// position lists accumulate in scan order, so probing emits each
		// combo's matches in inner scan order.
		table := make(map[string][]int32, len(right))
		for pos, row := range right {
			var ok bool
			keyBuf, ok, _ = e.rowJoinKey(keyBuf[:0], row, a.keys, nullFault)
			if !ok {
				continue
			}
			table[string(keyBuf)] = append(table[string(keyBuf)], int32(pos))
		}
		for _, combo := range combos {
			var ok, probeNull bool
			keyBuf, ok, probeNull = e.comboJoinKey(keyBuf[:0], combo, a.keys, nullFault)
			matched := false
			if ok {
				// Fault site (sqlite.hash-join-null-key), second half: a
				// probe whose key had a NULL component skips residual
				// verification — the spurious sentinel match survives.
				for _, pos := range table[string(keyBuf)] {
					m, err := emit(combo, right[pos], nullFault && probeNull)
					if err != nil {
						return nil, err
					}
					matched = matched || m
				}
			}
			if !matched && lv.j.kind == sqlast.JoinLeft {
				extend(combo)
			}
		}
		return out, nil
	}

	// Build on the outer combos, stream the inner relation. Matches per
	// combo accumulate in inner scan order as the stream advances; a final
	// pass over combos in order restores the outer-major emission order.
	table := make(map[string][]int32, len(combos))
	var comboNull []bool
	if nullFault {
		comboNull = make([]bool, len(combos))
	}
	cands := make([][]int32, len(combos))
	for ci, combo := range combos {
		var ok, hadNull bool
		keyBuf, ok, hadNull = e.comboJoinKey(keyBuf[:0], combo, a.keys, nullFault)
		if !ok {
			continue
		}
		if nullFault {
			comboNull[ci] = hadNull
		}
		table[string(keyBuf)] = append(table[string(keyBuf)], int32(ci))
	}
	for pos, row := range right {
		var ok bool
		keyBuf, ok, _ = e.rowJoinKey(keyBuf[:0], row, a.keys, nullFault)
		if !ok {
			continue
		}
		for _, ci := range table[string(keyBuf)] {
			cands[ci] = append(cands[ci], int32(pos))
		}
	}
	for ci, combo := range combos {
		matched := false
		for _, pos := range cands[ci] {
			m, err := emit(combo, right[pos], nullFault && comboNull[ci])
			if err != nil {
				return nil, err
			}
			matched = matched || m
		}
		if !matched && lv.j.kind == sqlast.JoinLeft {
			extend(combo)
		}
	}
	return out, nil
}

// indexJoinLevel probes an inner-table index per outer combo (SQLite inner
// joins on fault-free engines only; see joinIndexCandidate). Candidate
// positions are sorted into scan order and verified against the full ON
// condition, so results match the nested loop byte-for-byte.
func (e *Engine) indexJoinLevel(lv *joinLevel, a *joinAnalysis, combos, out [][]*rowVals) ([][]*rowVals, error) {
	right := lv.rels[lv.level].rows
	pos := make(map[int64]int32, len(right))
	for p, row := range right {
		pos[row.rowid] = int32(p)
	}
	ixd := e.idx[lower(a.idx.Name)]
	var probe [1]sqlval.Value
	var cpos []int32
	for _, combo := range combos {
		lrow := combo[a.idxKey.lRel]
		if lrow == nil || a.idxKey.lCol >= len(lrow.vals) {
			continue // NULL key never matches; inner join keeps nothing
		}
		v := lrow.vals[a.idxKey.lCol]
		if v.IsNull() {
			continue
		}
		// SQLite stores values affinity-converted; the probe key must be
		// converted the same way (identical to the planner's eq probes).
		probe[0] = sqlval.ApplyAffinity(v, a.idxAff)
		cpos = cpos[:0]
		for _, rid := range ixd.EqualPrefix(probe[:]) {
			if p, ok := pos[rid]; ok {
				cpos = append(cpos, p)
			}
		}
		sort.Slice(cpos, func(x, y int) bool { return cpos[x] < cpos[y] })
		for _, p := range cpos {
			row := right[p]
			*lv.scratch = append(append((*lv.scratch)[:0], combo...), row)
			lv.onEval.setRow(*lv.scratch)
			tb, err := lv.onTest()
			if err != nil {
				return nil, err
			}
			if tb != sqlval.TriTrue {
				continue
			}
			cand := lv.arena.alloc(len(combo) + 1)
			copy(cand, combo)
			cand[len(combo)] = row
			out = append(out, cand)
		}
	}
	return out, nil
}
