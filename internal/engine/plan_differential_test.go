package engine_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
)

// replayPair builds the same random database (fault-free) on two engines:
// one with the planner enabled, one forced to full scans. The statement
// trace is generated once and executed on both, so catalog, heap, and
// index state agree exactly.
func replayPair(t *testing.T, d dialect.Dialect, seed int64) (planned, baseline *engine.Engine) {
	t.Helper()
	planned = engine.Open(d)
	baseline = engine.Open(d, engine.WithoutPlanner())
	sg := &gen.StateGen{Rnd: gen.NewRand(d, seed), E: planned, MinRows: 2, MaxRows: 10, MaxTables: 3}
	apply := func(st sqlast.Stmt) error {
		sql := sqlast.SQL(st, d)
		_, err1 := planned.Exec(sql)
		_, err2 := baseline.Exec(sql)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: state statement diverged\nsql: %s\nplanned: %v\nbaseline: %v", seed, sql, err1, err2)
		}
		return nil
	}
	if err := sg.BuildDatabase(apply); err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	return planned, baseline
}

// canonical renders a result set as an order-insensitive multiset.
func canonical(res *engine.Result) string {
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		lines = append(lines, strings.Join(parts, "|"))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// diffQuery runs one query on both engines and compares result multisets.
func diffQuery(t *testing.T, d dialect.Dialect, seed int64, planned, baseline *engine.Engine, sql string) {
	t.Helper()
	r1, err1 := planned.Exec(sql)
	r2, err2 := baseline.Exec(sql)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("seed %d: error divergence\nquery: %s\nplanned: %v\nbaseline: %v", seed, sql, err1, err2)
	}
	if err1 != nil {
		return // both failed identically (expected runtime errors)
	}
	if c1, c2 := canonical(r1), canonical(r2); c1 != c2 {
		paths, _ := planned.PlanSQL(sql)
		var plan []string
		for _, p := range paths {
			plan = append(plan, p.Detail())
		}
		t.Fatalf("seed %d: scan-vs-index divergence\nquery: %s\nplan: %s\nplanned rows:\n%s\nbaseline rows:\n%s",
			seed, sql, strings.Join(plan, "; "), c1, c2)
	}
}

// TestPlannerDifferential is the planner's primary correctness oracle: for
// generated queries over indexed random schemas, the planner-chosen access
// path must produce exactly the full-scan result set, in fault-free mode,
// across all three dialects. Both systematic sargable probes (every column
// × every stored value × every comparison operator) and random generated
// WHERE clauses run against every database.
func TestPlannerDifferential(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 4
	}
	ops := []string{"=", "<", "<=", ">", ">="}
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			indexPaths := 0
			for seed := int64(1); seed <= seeds; seed++ {
				planned, baseline := replayPair(t, d, seed)
				rnd := gen.NewRand(d, seed+1000)

				for _, table := range planned.Tables() {
					info, err := planned.Describe(table)
					if err != nil {
						continue
					}
					rows := planned.RawRows(table)
					// Systematic sargable probes over stored values (and
					// mutations of them, to land beside index boundaries).
					for ci, col := range info.Columns {
						for ri, row := range rows {
							if ri >= 4 {
								break
							}
							if ci >= len(row) || row[ci].IsNull() {
								continue
							}
							lits := []string{row[ci].Literal()}
							if row[ci].Kind() == sqlval.KText {
								lits = append(lits,
									sqlval.Text(gen.ToggleCase(row[ci].Str())).Literal(),
									sqlval.Text(row[ci].Str()+"  ").Literal())
							}
							for _, lit := range lits {
								for _, op := range ops {
									diffQuery(t, d, seed, planned, baseline, fmt.Sprintf(
										"SELECT * FROM %s WHERE %s %s %s", table, col.Name, op, lit))
								}
								diffQuery(t, d, seed, planned, baseline, fmt.Sprintf(
									"SELECT * FROM %s WHERE %s BETWEEN %s AND %s", table, col.Name, lit, lit))
								if d == dialect.SQLite {
									diffQuery(t, d, seed, planned, baseline, fmt.Sprintf(
										"SELECT * FROM %s WHERE %s COLLATE NOCASE = %s", table, col.Name, lit))
									diffQuery(t, d, seed, planned, baseline, fmt.Sprintf(
										"SELECT DISTINCT %s FROM %s WHERE %s >= %s ORDER BY %s",
										col.Name, table, col.Name, lit, col.Name))
								}
							}
						}
					}

					// Random generated WHERE clauses over the same schema.
					var cols []gen.ColumnPick
					for _, c := range info.Columns {
						cols = append(cols, gen.ColumnPick{Table: table, Column: c})
					}
					var hints []sqlval.Value
					for _, row := range rows {
						hints = append(hints, row...)
					}
					eg := &gen.ExprGen{Rnd: rnd, Cols: cols, Hints: hints, MaxDepth: 3}
					for i := 0; i < 25; i++ {
						where := eg.Generate()
						sql := fmt.Sprintf("SELECT * FROM %s WHERE %s", table, sqlast.ExprSQL(where, d))
						diffQuery(t, d, seed, planned, baseline, sql)
					}
				}
				cov := planned.Coverage().Snapshot()
				indexPaths += cov["plan.index-eq-lookup"] + cov["plan.index-range-scan"] + cov["plan.partial-index-scan"]
			}
			// The oracle is vacuous if the planner never left the full-scan
			// path: require real index access on every dialect.
			if indexPaths == 0 {
				t.Fatalf("differential suite exercised no index access paths")
			}
			t.Logf("index access paths exercised: %d", indexPaths)
		})
	}
}
