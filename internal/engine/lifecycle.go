package engine

import (
	"repro/internal/sqlval"
	"repro/internal/storage"
	"repro/internal/xerr"
)

// Engine lifecycle support: Reset restores a pristine empty database
// without reallocating the engine's long-lived structures (catalog and
// state maps, the compiled-program cache, recycled storage containers),
// and Snapshot/Restore capture and rewind the *data* of a fixed schema
// using the copy-on-write snapshots from internal/storage. Together they
// let campaign schedulers run many database lifecycles on one engine
// instead of constructing a fresh Engine per database.

// Reset restores the engine to the pristine state of a fresh Open: no
// tables, no options, no corruption. Allocations survive — maps are
// cleared in place, the compiled-program cache keeps its buckets, and the
// dropped tables' storage containers go onto freelists that the next
// CREATE TABLE/INDEX pops — so a reset-and-rebuild cycle reuses the
// previous lifecycle's capacity. Coverage counters deliberately keep
// accumulating across resets (Table 4 measures a whole run).
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.resetLocked()
	if e.pg != nil {
		// Durable engines also wipe the backing files (and revive a pager
		// that died to a simulated crash) so the next lifecycle starts
		// from an empty database. A reset that cannot clear the disk
		// leaves the database unusable — surface it as corruption.
		if err := e.pg.Reset(); err != nil {
			e.corrupt = err.Error()
		}
	}
}

// resetLocked clears the in-memory state only (e.mu held). CrashRecover
// uses it before reloading from disk.
func (e *Engine) resetLocked() {
	e.abortAllTxnsLocked()
	e.commitSeq = 0
	for _, td := range e.data {
		td.Reset()
		e.freeTables = append(e.freeTables, td)
	}
	for _, ixd := range e.idx {
		ixd.Reset(nil, nil)
		e.freeIndexes = append(e.freeIndexes, ixd)
	}
	clear(e.data)
	clear(e.idx)
	clear(e.state)
	clear(e.globals)
	clear(e.progs)
	e.cat.Reset()
	e.seq = 0
	e.ddlEpoch++
	e.corrupt = ""
	e.caseSensitiveLike = false
	e.ev.CaseSensitiveLike = false
	e.skipIndexMaint = false
	e.ddlLog = e.ddlLog[:0]
}

// newTableData pops a recycled heap or allocates one.
func (e *Engine) newTableData() *storage.TableData {
	if n := len(e.freeTables); n > 0 {
		td := e.freeTables[n-1]
		e.freeTables = e.freeTables[:n-1]
		return td
	}
	return storage.NewTableData()
}

// newIndexData pops a recycled index or allocates one.
func (e *Engine) newIndexData(colls []sqlval.Collation, descs []bool) *storage.IndexData {
	if n := len(e.freeIndexes); n > 0 {
		ixd := e.freeIndexes[n-1]
		e.freeIndexes = e.freeIndexes[:n-1]
		ixd.Reset(colls, descs)
		return ixd
	}
	return storage.NewIndexData(colls, descs)
}

// Snapshot is a copy-on-write capture of the engine's data: every table's
// rows, every index's entries, and the session state that statements can
// change without DDL (options, per-table bookkeeping, corruption). It is
// valid until the next schema change; Restore refuses stale snapshots.
type Snapshot struct {
	epoch   int64
	seq     int64
	corrupt string
	csLike  bool
	tables  map[string]*storage.TableSnapshot
	indexes map[string]*storage.IndexSnapshot
	state   map[string]tableState
	globals map[string]sqlval.Value
}

// Snapshot captures the current data state (see type Snapshot). Cost is
// proportional to the number of rows and index entries, not their size —
// the row values themselves are shared copy-on-write. An engine with open
// transactions captures the committed state and aborts them first: a
// snapshot is a statement-boundary concept.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.abortAllTxnsLocked()
	return e.snapshotLocked()
}

// snapshotLocked captures whatever state is currently installed (e.mu
// held). The transaction machinery uses it to park a session's working
// state while another session's is installed.
func (e *Engine) snapshotLocked() *Snapshot {
	s := &Snapshot{
		epoch:   e.ddlEpoch,
		seq:     e.seq,
		corrupt: e.corrupt,
		csLike:  e.caseSensitiveLike,
		tables:  make(map[string]*storage.TableSnapshot, len(e.data)),
		indexes: make(map[string]*storage.IndexSnapshot, len(e.idx)),
		state:   make(map[string]tableState, len(e.state)),
		globals: make(map[string]sqlval.Value, len(e.globals)),
	}
	for name, td := range e.data {
		s.tables[name] = td.Snapshot()
	}
	for name, ixd := range e.idx {
		s.indexes[name] = ixd.Snapshot()
	}
	for name, ts := range e.state {
		s.state[name] = *ts
	}
	for name, v := range e.globals {
		s.globals[name] = v
	}
	return s
}

// Restore rewinds the engine's data to a snapshot taken from it. It fails
// with CodeUnsupported if the schema changed since the snapshot (data
// snapshots capture rows, not catalog shape). Open transactions abort:
// their working state was layered over data the rewind just replaced.
func (e *Engine) Restore(s *Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.abortAllTxnsLocked()
	if err := e.restoreLocked(s); err != nil {
		return err
	}
	if e.pg != nil {
		// The rewind changed data without a statement: commit the restored
		// state so the durable image keeps tracking memory.
		return e.persistLocked()
	}
	return nil
}

// restoreLocked installs a snapshot over the current data (e.mu held, no
// persist). Fails with CodeUnsupported on a stale snapshot.
func (e *Engine) restoreLocked(s *Snapshot) error {
	if s.epoch != e.ddlEpoch {
		return xerr.New(xerr.CodeUnsupported, "snapshot is stale: schema changed since it was taken")
	}
	for name, td := range e.data {
		td.Restore(s.tables[name])
	}
	for name, ixd := range e.idx {
		ixd.Restore(s.indexes[name])
	}
	clear(e.state)
	for name, ts := range s.state {
		st := ts
		e.state[name] = &st
	}
	clear(e.globals)
	for name, v := range s.globals {
		e.globals[name] = v
	}
	e.seq = s.seq
	e.corrupt = s.corrupt
	e.caseSensitiveLike = s.csLike
	e.ev.CaseSensitiveLike = s.csLike
	clear(e.progs) // programs may close over session options
	return nil
}
