package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

// queryRows runs a SELECT and renders its rows for comparison.
func queryRows(t *testing.T, e *Engine, sql string) []string {
	t.Helper()
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = fmt.Sprint(row)
	}
	return out
}

var lifecycleScript = []string{
	"CREATE TABLE t0(c0 INT PRIMARY KEY, c1 TEXT COLLATE NOCASE)",
	"CREATE INDEX i0 ON t0(c1)",
	"INSERT INTO t0 VALUES (1, 'a'), (2, 'B'), (3, NULL)",
	"UPDATE t0 SET c1 = 'z' WHERE c0 = 2",
	"DELETE FROM t0 WHERE c0 = 3",
	"PRAGMA case_sensitive_like = 1",
}

const lifecycleQuery = "SELECT c0, c1 FROM t0 WHERE c1 >= 'a' ORDER BY c0"

// TestResetMatchesFreshEngine is the load-bearing property behind pooled
// engine lifecycles: an engine that ran arbitrary prior work and was Reset
// must behave byte-identically to a freshly opened one.
func TestResetMatchesFreshEngine(t *testing.T) {
	for _, d := range dialect.All {
		t.Run(d.String(), func(t *testing.T) {
			script := lifecycleScript
			if d != dialect.SQLite {
				script = script[:len(script)-1] // PRAGMA is SQLite-only
			}
			fresh := Open(d)
			execAll(t, fresh, script...)

			reused := Open(d)
			// Dirty the engine thoroughly before resetting: schema, rows,
			// options, even a simulated corruption.
			execAll(t, reused,
				"CREATE TABLE junk(a INT, b TEXT)",
				"CREATE INDEX junkix ON junk(a)",
				"INSERT INTO junk VALUES (9, 'x')",
				"DROP INDEX junkix",
			)
			reused.corrupt = "database disk image is malformed"
			reused.Reset()
			execAll(t, reused, script...)

			want := queryRows(t, fresh, lifecycleQuery)
			got := queryRows(t, reused, lifecycleQuery)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("reset engine diverged:\nfresh: %v\nreset: %v", want, got)
			}

			// Introspection must match too (PQS pivots read it directly).
			if !reflect.DeepEqual(fresh.Tables(), reused.Tables()) {
				t.Errorf("tables: %v vs %v", fresh.Tables(), reused.Tables())
			}
			if !reflect.DeepEqual(fresh.RawRows("t0"), reused.RawRows("t0")) {
				t.Errorf("raw rows diverged after reset")
			}
			if fresh.CaseSensitiveLike() != reused.CaseSensitiveLike() {
				t.Errorf("case_sensitive_like diverged")
			}
		})
	}
}

// TestResetClearsFaultState verifies fault bookkeeping (corruption, table
// state) cannot leak across lifecycles.
func TestResetClearsFaultState(t *testing.T) {
	e := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.VacuumCorrupt)))
	execAll(t, e, "CREATE TABLE t0(c0 INT)", "INSERT INTO t0 VALUES (1)")
	if _, err := e.Exec("VACUUM"); err == nil {
		t.Fatal("vacuum-corrupt fault did not fire")
	}
	if ok, _ := e.Corrupted(); !ok {
		t.Fatal("database not marked corrupt")
	}
	e.Reset()
	if ok, msg := e.Corrupted(); ok {
		t.Fatalf("corruption survived reset: %s", msg)
	}
	execAll(t, e, "CREATE TABLE t0(c0 INT)", "INSERT INTO t0 VALUES (2)")
	if got := queryRows(t, e, "SELECT c0 FROM t0"); len(got) != 1 {
		t.Fatalf("post-reset rows: %v", got)
	}
}

// TestSnapshotRestoreData exercises the engine-level data snapshot: DML
// and maintenance after the snapshot rewind cleanly; DDL invalidates it.
func TestSnapshotRestoreData(t *testing.T) {
	e := Open(dialect.SQLite)
	execAll(t, e,
		"CREATE TABLE t0(c0 INT PRIMARY KEY, c1 TEXT COLLATE NOCASE)",
		"CREATE INDEX i0 ON t0(c1)",
		"INSERT INTO t0 VALUES (1, 'a'), (2, 'b')",
	)
	want := queryRows(t, e, lifecycleQuery)
	snap := e.Snapshot()

	execAll(t, e,
		"INSERT INTO t0 VALUES (3, 'c')",
		"UPDATE t0 SET c1 = 'q' WHERE c0 = 1",
		"DELETE FROM t0 WHERE c0 = 2",
		"REINDEX t0",
		"PRAGMA case_sensitive_like = 1",
	)
	if err := e.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := queryRows(t, e, lifecycleQuery); !reflect.DeepEqual(got, want) {
		t.Errorf("restore diverged:\nwant %v\ngot  %v", want, got)
	}
	if e.CaseSensitiveLike() {
		t.Errorf("session option survived restore")
	}
	// The index must serve restored lookups (not just the heap).
	if got := queryRows(t, e, "SELECT c0 FROM t0 WHERE c1 = 'B'"); len(got) != 1 {
		t.Errorf("index lookup after restore: %v", got)
	}

	// A second restore from the same snapshot works.
	execAll(t, e, "DELETE FROM t0")
	if err := e.Restore(snap); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if got := queryRows(t, e, lifecycleQuery); !reflect.DeepEqual(got, want) {
		t.Errorf("second restore diverged: %v", got)
	}

	// DDL staleness guard.
	execAll(t, e, "CREATE TABLE other(x INT)")
	if err := e.Restore(snap); err == nil {
		t.Error("restore accepted a stale snapshot after DDL")
	}
}
