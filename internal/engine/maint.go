package engine

import (
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/storage"
	"repro/internal/xerr"
)

func (e *Engine) maintenance(n *sqlast.Maintenance) (*Result, error) {
	switch n.Op {
	case sqlast.MaintVacuum, sqlast.MaintVacuumFull:
		return e.vacuum(n.Op == sqlast.MaintVacuumFull)
	case sqlast.MaintReindex:
		return e.reindex(n.Table)
	case sqlast.MaintAnalyze:
		return e.analyze(n.Table)
	case sqlast.MaintRepairTable:
		return e.repairTable(n.Table)
	case sqlast.MaintCheckTable, sqlast.MaintCheckTableForUpgrade:
		return e.checkTable(n.Table, n.Op == sqlast.MaintCheckTableForUpgrade)
	case sqlast.MaintDiscard:
		if e.d != dialect.Postgres {
			return nil, xerr.New(xerr.CodeUnsupported, "DISCARD is PostgreSQL-only")
		}
		e.cov.hit("maint.discard")
		return &Result{}, nil
	}
	return nil, xerr.New(xerr.CodeUnsupported, "unsupported maintenance statement")
}

// vacuum rebuilds the whole database image.
func (e *Engine) vacuum(full bool) (*Result, error) {
	e.cov.hit("maint.vacuum")
	if full && e.d != dialect.Postgres {
		return nil, xerr.New(xerr.CodeSyntax, "VACUUM FULL is PostgreSQL-only")
	}

	// Fault site (generic.vacuum-corrupt): VACUUM breaks the image.
	if e.fs.Has(faults.VacuumCorrupt) {
		e.corrupt = "database disk image is malformed"
		return nil, xerr.New(xerr.CodeCorrupt, "%s", e.corrupt)
	}

	// Fault site (sqlite.case-sensitive-like-pragma, Listing 9): VACUUM
	// re-evaluates LIKE expression indexes; a flipped pragma makes them
	// disagree with the stored schema.
	if e.d == dialect.SQLite && e.fs.Has(faults.CaseSensitiveLikePragma) {
		for _, name := range e.cat.IndexNames() {
			ix, _ := e.cat.Index(name)
			if ix == nil {
				continue
			}
			hasLike := false
			for _, p := range ix.Parts {
				sqlast.WalkExprs(p.X, func(x sqlast.Expr) bool {
					if b, ok := x.(*sqlast.Binary); ok && (b.Op == sqlast.OpLike || b.Op == sqlast.OpNotLike) {
						hasLike = true
					}
					return true
				})
			}
			if hasLike && ix.BuildCaseSensitiveLike != e.caseSensitiveLike {
				return nil, xerr.New(xerr.CodeCorrupt,
					"malformed database schema (%s) - non-deterministic functions prohibited in index expressions", ix.Name)
			}
		}
	}

	// Fault site (postgres.vacuum-overflow, Listing 18): VACUUM FULL
	// re-evaluates expression indexes against a stale high-water value
	// and overflows.
	if e.d == dialect.Postgres && full && e.fs.Has(faults.VacuumOverflow) {
		for _, table := range e.cat.TableNames() {
			st := e.tableState(table)
			if !st.bigIntSeen {
				continue
			}
			for _, ix := range e.cat.IndexesOn(table) {
				for _, p := range ix.Parts {
					if _, bare := p.X.(*sqlast.ColumnRef); !bare {
						return nil, xerr.New(xerr.CodeRange, "integer out of range")
					}
				}
			}
		}
	}

	// The real work: rebuild every index from the heap.
	for _, table := range e.cat.TableNames() {
		if err := e.rebuildIndexesOn(table, false); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

// reindex rebuilds indexes for one table (or all).
func (e *Engine) reindex(table string) (*Result, error) {
	e.cov.hit("maint.reindex")
	tables := e.cat.TableNames()
	if table != "" {
		t, _, err := e.table(table)
		if err != nil {
			return nil, err
		}
		tables = []string{t.Name}
	}
	for _, tn := range tables {
		if err := e.rebuildIndexesOn(tn, true); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

// rebuildIndexesOn rebuilds each index of a table from the heap.
// checkUnique re-verifies unique constraints (REINDEX semantics).
func (e *Engine) rebuildIndexesOn(table string, checkUnique bool) error {
	t, ok := e.cat.Table(table)
	if !ok || t.IsView {
		return nil
	}
	td := e.data[lower(t.Name)]
	for _, ix := range e.cat.IndexesOn(t.Name) {
		ixd := e.idx[lower(ix.Name)]
		if ixd == nil {
			continue
		}
		// Fault site (sqlite.reindex-unique): REINDEX rebuilds a collated
		// unique index under BINARY and reports a spurious UNIQUE
		// violation for collation-equal keys.
		if checkUnique && e.d == dialect.SQLite && e.fs.Has(faults.ReindexUnique) && ix.Unique {
			for _, p := range ix.Parts {
				if p.Collate != sqlval.CollBinary && e.idx[lower(ix.Name)].Len() >= 2 {
					return xerr.New(xerr.CodeUnique, "UNIQUE constraint failed: index %s", ix.Name)
				}
			}
		}
		fresh := storage.NewIndexData(ixd.Collations(), nil)
		for _, r := range td.Rows() {
			key, include, err := e.indexKey(ix, t, r.Vals)
			if err != nil {
				return err
			}
			if !include {
				continue
			}
			// Fault site (sqlite.nocase-unique-index): rebuilds silently
			// dedup case-variant PK keys the same way the initial build
			// does — the duplicate never reaches the uniqueness check.
			if e.nocaseIndexDrops(t, ix, key, fresh) {
				continue
			}
			if checkUnique && ix.Unique && !allNull(key) && len(fresh.Equal(key)) > 0 {
				return xerr.New(xerr.CodeUnique, "UNIQUE constraint failed: index %s", ix.Name)
			}
			fresh.Insert(key, r.Rowid)
		}
		ixd.Clear()
		for _, entry := range fresh.Entries() {
			ixd.Insert(entry.Key, entry.Rowid)
		}
		ix.BuildSeq = e.seq
		ix.BuildCaseSensitiveLike = e.caseSensitiveLike
	}
	return nil
}

// analyze records planner statistics (the skip-scan trigger).
func (e *Engine) analyze(table string) (*Result, error) {
	e.cov.hit("maint.analyze")
	tables := e.cat.TableNames()
	if table != "" {
		t, _, err := e.table(table)
		if err != nil {
			return nil, err
		}
		tables = []string{t.Name}
	}
	for _, tn := range tables {
		e.tableState(tn).analyzed = true
	}
	return &Result{}, nil
}

func (e *Engine) repairTable(table string) (*Result, error) {
	if e.d != dialect.MySQL {
		return nil, xerr.New(xerr.CodeUnsupported, "REPAIR TABLE is MySQL-only")
	}
	e.cov.hit("maint.repair-table")
	t, td, err := e.table(table)
	if err != nil {
		return nil, err
	}
	// Fault site (mysql.repair-table-truncate): REPAIR drops the
	// highest-rowid row and marks the table crashed.
	if e.fs.Has(faults.RepairTableTruncate) && td.Len() > 0 {
		td.DeleteLast()
		e.corrupt = "table " + t.Name + " is marked as crashed and should be repaired"
		return nil, xerr.New(xerr.CodeCorrupt, "%s", e.corrupt)
	}
	return e.reindexTableOnly(t.Name)
}

func (e *Engine) reindexTableOnly(name string) (*Result, error) {
	if err := e.rebuildIndexesOn(name, false); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) checkTable(table string, forUpgrade bool) (*Result, error) {
	if e.d != dialect.MySQL {
		return nil, xerr.New(xerr.CodeUnsupported, "CHECK TABLE is MySQL-only")
	}
	e.cov.hit("maint.check-table")
	t, td, err := e.table(table)
	if err != nil {
		return nil, err
	}
	// Fault site (mysql.check-table-crash, Listing 14 / CVE-2019-2879):
	// CHECK TABLE ... FOR UPGRADE crashes on expression indexes.
	if forUpgrade && e.fs.Has(faults.CheckTableCrash) {
		for _, ix := range e.cat.IndexesOn(t.Name) {
			for _, p := range ix.Parts {
				if _, bare := p.X.(*sqlast.ColumnRef); !bare {
					panic(crashPanic{site: "check_table_for_upgrade"})
				}
			}
		}
	}
	// Integrity verification: every index must agree with the heap.
	for _, ix := range e.cat.IndexesOn(t.Name) {
		ixd := e.idx[lower(ix.Name)]
		if ixd == nil {
			continue
		}
		expected := 0
		for _, r := range td.Rows() {
			_, include, err := e.indexKey(ix, t, r.Vals)
			if err != nil {
				return nil, err
			}
			if include {
				expected++
			}
		}
		if expected != ixd.Len() {
			e.corrupt = "table " + t.Name + " is marked as crashed and should be repaired"
			return nil, xerr.New(xerr.CodeCorrupt, "%s", e.corrupt)
		}
	}
	return &Result{Columns: []string{"Table", "Msg_text"}, Rows: [][]sqlval.Value{
		{sqlval.Text(t.Name), sqlval.Text("OK")},
	}}, nil
}

// knownOptions lists the option names each dialect accepts.
var knownOptions = map[dialect.Dialect]map[string]bool{
	dialect.SQLite: {
		"case_sensitive_like":       true,
		"reverse_unordered_selects": true,
		"legacy_file_format":        true,
	},
	dialect.MySQL: {
		"key_cache_division_limit": true,
		"sort_buffer_size":         true,
		"max_heap_table_size":      true,
	},
	dialect.Postgres: {
		"enable_seqscan":   true,
		"enable_indexscan": true,
		"work_mem":         true,
	},
}

func (e *Engine) setOption(n *sqlast.SetOption) (*Result, error) {
	e.cov.hit("opt." + n.Name)
	if !knownOptions[e.d][n.Name] {
		return nil, xerr.New(xerr.CodeOption, "unknown option: %s", n.Name)
	}
	val := sqlval.Null()
	if n.Value != nil {
		v, err := e.constEval(n.Value)
		if err != nil {
			return nil, err
		}
		val = v
	}
	// Fault site (mysql.set-option-error, Listing 3): setting the key
	// cache option fails with "Incorrect arguments to SET" for a
	// deterministic subset of values (standing in for the paper's
	// nondeterminism).
	if e.d == dialect.MySQL && e.fs.Has(faults.SetOptionError) &&
		n.Name == "key_cache_division_limit" && val.Kind() == sqlval.KInt && val.Int64()%100 == 0 {
		return nil, xerr.New(xerr.CodeOption, "Incorrect arguments to SET")
	}
	if e.d == dialect.SQLite && n.Name == "case_sensitive_like" {
		tb, err := e.ev.Truthy(coerceOptionBool(val))
		if err != nil {
			return nil, err
		}
		e.caseSensitiveLike = tb == sqlval.TriTrue
		e.ev.CaseSensitiveLike = e.caseSensitiveLike
	}
	e.globals[n.Name] = val
	return &Result{}, nil
}

// coerceOptionBool maps true/false identifiers (already parsed as column
// refs in option position) and numbers onto booleans.
func coerceOptionBool(v sqlval.Value) sqlval.Value {
	if v.Kind() == sqlval.KText {
		switch strings.ToLower(v.Str()) {
		case "true", "on", "yes":
			return sqlval.Int(1)
		case "false", "off", "no":
			return sqlval.Int(0)
		}
	}
	return v
}

// OptionValue reads back a global option (introspection for tests).
func (e *Engine) OptionValue(name string) (sqlval.Value, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.globals[name]
	return v, ok
}

// CaseSensitiveLike reports the pragma state.
func (e *Engine) CaseSensitiveLike() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.caseSensitiveLike
}
