package engine

import (
	"strings"

	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/sqlval"
)

// relation is one FROM source during query execution: a named set of
// columns and rows (a base table, inheritance scan, or view result).
type relation struct {
	name    string // alias or table name, used for qualified lookups
	table   string // underlying base table name ("" for views/derived)
	columns []schema.Column
	engine  string // MySQL storage engine of the base table
	rows    []*rowVals
}

// rowVals is one row of a relation during execution.
type rowVals struct {
	rowid int64
	vals  []sqlval.Value
}

// joinedEnv resolves columns over a set of relations with one current row
// each. It implements eval.Env.
type joinedEnv struct {
	rels    []*relation
	current []*rowVals // parallel to rels
}

// eqFold is strings.EqualFold with an exact-match fast path: generated
// identifiers are case-consistent, so the byte comparison almost always
// decides and the rune-wise fold never runs.
func eqFold(a, b string) bool {
	return a == b || strings.EqualFold(a, b)
}

// findColumn resolves a (possibly unqualified) column reference over a
// relation set. ambiguous reports an unqualified name matching more than
// one column — a distinct condition from a missing name (both return
// ri = -1). The compile-time layout (relLayout) and the tree-walk env
// below share this resolver so both paths bind identically.
func findColumn(rels []*relation, table, column string) (ri, ci int, ambiguous bool) {
	if table != "" {
		for ri, r := range rels {
			if eqFold(r.name, table) || eqFold(r.table, table) {
				for ci := range r.columns {
					if eqFold(r.columns[ci].Name, column) {
						return ri, ci, false
					}
				}
				return -1, -1, false
			}
		}
		return -1, -1, false
	}
	foundR, foundC, n := -1, -1, 0
	for ri, r := range rels {
		for ci := range r.columns {
			if eqFold(r.columns[ci].Name, column) {
				foundR, foundC = ri, ci
				n++
			}
		}
	}
	if n == 1 {
		return foundR, foundC, false
	}
	return -1, -1, n > 1
}

func (j *joinedEnv) find(table, column string) (int, int) {
	ri, ci, _ := findColumn(j.rels, table, column)
	return ri, ci
}

// ColumnErr implements eval.ResolveErrEnv: an unqualified reference
// matching more than one relation column reports "ambiguous column name"
// instead of masquerading as a missing column.
func (j *joinedEnv) ColumnErr(table, column string) error {
	if _, _, ambiguous := findColumn(j.rels, table, column); ambiguous {
		return eval.ErrAmbiguousColumn(column)
	}
	return nil
}

// ColumnValue implements eval.Env.
func (j *joinedEnv) ColumnValue(table, column string) (sqlval.Value, bool) {
	ri, ci := j.find(table, column)
	if ri < 0 {
		return sqlval.Null(), false
	}
	row := j.current[ri]
	if row == nil {
		// NULL-extended side of an outer join.
		return sqlval.Null(), true
	}
	if ci >= len(row.vals) {
		return sqlval.Null(), true
	}
	return row.vals[ci], true
}

// ColumnMeta implements eval.Env.
func (j *joinedEnv) ColumnMeta(table, column string) (eval.Meta, bool) {
	ri, ci := j.find(table, column)
	if ri < 0 {
		return eval.Meta{}, false
	}
	col := j.rels[ri].columns[ci]
	return eval.Meta{
		Coll:        col.Collate,
		Affinity:    col.Affinity,
		Unsigned:    col.Unsigned,
		TypeName:    col.TypeName,
		TableEngine: j.rels[ri].engine,
	}, true
}

// tableEnv is a single-table row environment (DML paths, index keys).
type tableEnv struct {
	t      *schema.Table
	engine string
	vals   []sqlval.Value
}

func newTableEnv(t *schema.Table, vals []sqlval.Value) *tableEnv {
	return &tableEnv{t: t, engine: t.Engine, vals: vals}
}

// ColumnValue implements eval.Env.
func (te *tableEnv) ColumnValue(table, column string) (sqlval.Value, bool) {
	if table != "" && !strings.EqualFold(table, te.t.Name) {
		return sqlval.Null(), false
	}
	ci := te.t.ColumnIndex(column)
	if ci < 0 || ci >= len(te.vals) {
		return sqlval.Null(), false
	}
	return te.vals[ci], true
}

// ColumnMeta implements eval.Env.
func (te *tableEnv) ColumnMeta(table, column string) (eval.Meta, bool) {
	if table != "" && !strings.EqualFold(table, te.t.Name) {
		return eval.Meta{}, false
	}
	ci := te.t.ColumnIndex(column)
	if ci < 0 {
		return eval.Meta{}, false
	}
	col := te.t.Columns[ci]
	return eval.Meta{
		Coll:        col.Collate,
		Affinity:    col.Affinity,
		Unsigned:    col.Unsigned,
		TypeName:    col.TypeName,
		TableEngine: te.engine,
	}, true
}
