package engine

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

func compoundFixture(t *testing.T) *Engine {
	t.Helper()
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE a(x); CREATE TABLE b(x);
		INSERT INTO a(x) VALUES (1), (2), (2), (NULL);
		INSERT INTO b(x) VALUES (2), (3), (NULL)`)
	return e
}

func TestUnion(t *testing.T) {
	e := compoundFixture(t)
	// UNION dedups: {1, 2, NULL, 3}.
	if n := rowCount(t, e, `SELECT x FROM a UNION SELECT x FROM b`); n != 4 {
		t.Errorf("UNION: %d rows, want 4", n)
	}
	// UNION ALL keeps everything: 4 + 3.
	if n := rowCount(t, e, `SELECT x FROM a UNION ALL SELECT x FROM b`); n != 7 {
		t.Errorf("UNION ALL: %d rows, want 7", n)
	}
}

func TestIntersectAndExcept(t *testing.T) {
	e := compoundFixture(t)
	// INTERSECT: {2, NULL} (NULLs compare equal in set ops).
	if n := rowCount(t, e, `SELECT x FROM a INTERSECT SELECT x FROM b`); n != 2 {
		t.Errorf("INTERSECT: %d rows, want 2", n)
	}
	// EXCEPT: {1}.
	res := mustExec(t, e, `SELECT x FROM a EXCEPT SELECT x FROM b`)
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(sqlval.Int(1)) {
		t.Errorf("EXCEPT: %v", res.Rows)
	}
}

func TestCompoundChain(t *testing.T) {
	e := compoundFixture(t)
	// Left-associative: (a EXCEPT b) UNION (SELECT 9) = {1, 9}.
	if n := rowCount(t, e, `SELECT x FROM a EXCEPT SELECT x FROM b UNION SELECT 9`); n != 2 {
		t.Errorf("chain: %d rows, want 2", n)
	}
}

// The paper's step 6+7 containment idiom: a literal SELECT intersected
// with the pivot query returns a row iff the pivot is contained.
func TestIntersectContainmentIdiom(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0, c1);
		INSERT INTO t0(c0, c1) VALUES (3, -5), (2, 0)`)
	if n := rowCount(t, e, `SELECT 3, -5 INTERSECT SELECT c0, c1 FROM t0`); n != 1 {
		t.Errorf("contained pivot: %d rows, want 1", n)
	}
	if n := rowCount(t, e, `SELECT 7, 7 INTERSECT SELECT c0, c1 FROM t0`); n != 0 {
		t.Errorf("absent pivot: %d rows, want 0", n)
	}
	// NULL pivots intersect too.
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (9)`)
	if n := rowCount(t, e, `SELECT 9, NULL INTERSECT SELECT c0, c1 FROM t0`); n != 1 {
		t.Errorf("NULL pivot: %d rows, want 1", n)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := Open(dialect.SQLite)
	res := mustExec(t, e, `SELECT 1, 'a'`)
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(sqlval.Int(1)) {
		t.Errorf("constant select: %v", res.Rows)
	}
	// Listing 2's shape runs through the engine now.
	res = mustExec(t, e, `SELECT '' - 2851427734582196970`)
	if !res.Rows[0][0].Equal(sqlval.Int(-2851427734582196970)) {
		t.Errorf("Listing 2 via engine: %v", res.Rows[0][0])
	}
}

func TestCompoundColumnMismatch(t *testing.T) {
	e := compoundFixture(t)
	_, err := e.Exec(`SELECT x FROM a UNION SELECT x, x FROM b`)
	if !xerr.Is(err, xerr.CodeSyntax) {
		t.Errorf("column count mismatch: %v", err)
	}
}
