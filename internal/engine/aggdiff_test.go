package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dialect"
)

// aggTestSchema builds a table whose group keys carry every shape the
// hash normalizer has to get right: NULLs (one group, not one each),
// case variants under an explicit NOCASE column collation, duplicate
// keys, and value columns mixing ints, reals, huge floats, and NULLs.
func aggTestSchema(t *testing.T, e *Engine) {
	t.Helper()
	execAll(t, e,
		"CREATE TABLE g0(k INT, s TEXT, n TEXT COLLATE NOCASE, v INT, r REAL)",
		`INSERT INTO g0 VALUES
			(1, 'a', 'x', 10, 0.5),
			(1, 'a', 'X', 20, 1.5),
			(2, 'B', 'y', NULL, 1e308),
			(2, 'b', 'Y', 30, 1e308),
			(NULL, NULL, NULL, 40, -1e308),
			(NULL, 'c', 'z', NULL, NULL),
			(3, 'c', 'z', -5, 2.25)`,
		"CREATE TABLE empty0(k INT, v INT)",
	)
}

// assertAggEquivalent runs the same query on the hash-agg and
// materialized engines and requires byte-identical results or errors.
// Grouped output order is part of the contract (first-seen key order),
// as is ordered output under ORDER BY/LIMIT — top-K must reproduce the
// full sort's stable tie order exactly.
func assertAggEquivalent(t *testing.T, on, off *Engine, sql string) {
	t.Helper()
	got, want := runQuery(on, sql), runQuery(off, sql)
	if got != want {
		t.Errorf("hash-agg/materialized divergence on %q:\nhash path:\n%s\nmaterialized:\n%s", sql, got, want)
	}
}

// TestHashAggVsMaterializedEquivalence is the differential oracle for the
// aggregation and ordering strategies: across all three dialects, a
// spread of handcrafted edge queries and randomly generated
// grouped/ordered/limited queries must return byte-identical results
// with hash aggregation + top-K enabled and with WithoutHashAgg pinning
// the engine to materialized grouping and full sorts.
func TestHashAggVsMaterializedEquivalence(t *testing.T) {
	handcrafted := []string{
		// NULL group keys collapse into one group on both paths.
		"SELECT k, COUNT(*) FROM g0 GROUP BY k",
		"SELECT s, COUNT(*), SUM(v) FROM g0 GROUP BY s",
		// Column collation folds case into one group ('x' and 'X').
		"SELECT n, COUNT(*) FROM g0 GROUP BY n",
		"SELECT n, MIN(v), MAX(v) FROM g0 GROUP BY n",
		// Multi-key grouping, keys of mixed kinds.
		"SELECT k, s, COUNT(*) FROM g0 GROUP BY k, s",
		// Accumulator semantics: NULLs skipped, AVG int/real split,
		// COUNT(*) vs COUNT(col), huge-float SUM overflow behavior.
		"SELECT k, COUNT(v), COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM g0 GROUP BY k",
		"SELECT k, SUM(r), AVG(r) FROM g0 GROUP BY k",
		"SELECT SUM(r) FROM g0",
		// Ungrouped aggregates over empty input: one row of NULL/zero.
		"SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v) FROM empty0",
		// Grouped aggregates over empty input: no rows at all.
		"SELECT k, COUNT(*) FROM empty0 GROUP BY k",
		// HAVING filters groups, including down to none.
		"SELECT k, SUM(v) FROM g0 GROUP BY k HAVING SUM(v) > 25",
		"SELECT k, SUM(v) FROM g0 GROUP BY k HAVING COUNT(*) > 99",
		"SELECT k, COUNT(*) FROM empty0 GROUP BY k HAVING COUNT(*) > 0",
		// Aggregates of expressions and DISTINCT over grouped output.
		"SELECT k, SUM(v + 1) FROM g0 GROUP BY k",
		"SELECT DISTINCT COUNT(*) FROM g0 GROUP BY k",
		// Top-K shapes: ties on the sort key must keep input order (the
		// heap's eviction boundary), OFFSET shifts the window, LIMIT
		// beyond the table degrades to the full sort.
		"SELECT * FROM g0 ORDER BY k LIMIT 3",
		"SELECT * FROM g0 ORDER BY k DESC LIMIT 3",
		"SELECT * FROM g0 ORDER BY k LIMIT 2 OFFSET 2",
		"SELECT * FROM g0 ORDER BY s, v DESC LIMIT 4",
		"SELECT * FROM g0 ORDER BY n LIMIT 5",
		"SELECT * FROM g0 ORDER BY k LIMIT 0",
		"SELECT * FROM g0 ORDER BY k LIMIT 100",
		"SELECT * FROM g0 ORDER BY k LIMIT 2 OFFSET 100",
		"SELECT * FROM empty0 ORDER BY k LIMIT 3",
		// ORDER BY + LIMIT over grouped results.
		"SELECT k, SUM(v) FROM g0 GROUP BY k ORDER BY k LIMIT 2",
		"SELECT s, COUNT(*) FROM g0 GROUP BY s ORDER BY COUNT(*) DESC LIMIT 2",
	}
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			on := Open(d)
			off := Open(d, WithoutHashAgg())
			aggTestSchema(t, on)
			aggTestSchema(t, off)
			for _, q := range handcrafted {
				assertAggEquivalent(t, on, off, q)
			}
			rnd := rand.New(rand.NewSource(10))
			for i := 0; i < 150; i++ {
				assertAggEquivalent(t, on, off, randomAggQuery(rnd))
			}
		})
	}
}

// randomAggQuery generates a grouped, ordered, and/or limited query over
// the aggTestSchema table — the shapes whose execution strategy the
// hash-agg/top-K selection changes.
func randomAggQuery(rnd *rand.Rand) string {
	cols := []string{"k", "s", "n", "v", "r"}
	aggs := []string{"COUNT(*)", "COUNT(%s)", "SUM(%s)", "AVG(%s)", "MIN(%s)", "MAX(%s)"}
	col := func() string { return cols[rnd.Intn(len(cols))] }
	agg := func() string {
		a := aggs[rnd.Intn(len(aggs))]
		if strings.Contains(a, "%s") {
			return fmt.Sprintf(a, col())
		}
		return a
	}
	var b strings.Builder
	if rnd.Intn(2) == 0 { // grouped
		nKeys := 1 + rnd.Intn(2)
		keys := make([]string, 0, nKeys)
		for len(keys) < nKeys {
			keys = append(keys, col())
		}
		var proj []string
		proj = append(proj, keys...)
		for n := 1 + rnd.Intn(3); n > 0; n-- {
			proj = append(proj, agg())
		}
		fmt.Fprintf(&b, "SELECT %s FROM g0", strings.Join(proj, ", "))
		if rnd.Intn(3) == 0 {
			fmt.Fprintf(&b, " WHERE %s IS NOT NULL", col())
		}
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(keys, ", "))
		if rnd.Intn(3) == 0 {
			fmt.Fprintf(&b, " HAVING COUNT(*) > %d", rnd.Intn(3))
		}
		if rnd.Intn(2) == 0 {
			fmt.Fprintf(&b, " ORDER BY %s", keys[rnd.Intn(len(keys))])
			if rnd.Intn(2) == 0 {
				b.WriteString(" DESC")
			}
			if rnd.Intn(2) == 0 {
				fmt.Fprintf(&b, " LIMIT %d", rnd.Intn(4))
			}
		}
		return b.String()
	}
	// Plain ordered/limited scan: small k keeps the top-K heap hot and
	// duplicate sort keys exercise its tie handling.
	fmt.Fprintf(&b, "SELECT * FROM g0")
	if rnd.Intn(3) == 0 {
		fmt.Fprintf(&b, " WHERE %s IS NOT NULL", col())
	}
	fmt.Fprintf(&b, " ORDER BY %s", col())
	if rnd.Intn(3) == 0 {
		b.WriteString(" DESC")
	}
	if rnd.Intn(3) > 0 {
		fmt.Fprintf(&b, ", %s", col())
	}
	fmt.Fprintf(&b, " LIMIT %d", 1+rnd.Intn(6))
	if rnd.Intn(3) == 0 {
		fmt.Fprintf(&b, " OFFSET %d", rnd.Intn(4))
	}
	return b.String()
}
