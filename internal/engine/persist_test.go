package engine

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/sqlval"
	"repro/internal/storage/pager"
	"repro/internal/xerr"
)

// dumpRows encodes a table's ground-truth rows for comparison.
func dumpRows(e *Engine, table string) []string {
	rows := e.RawRows(table)
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += ","
			}
			s += v.Literal()
		}
		out[i] = s
	}
	return out
}

func sameState(t *testing.T, a, b *Engine) {
	t.Helper()
	at, bt := a.Tables(), b.Tables()
	if len(at) != len(bt) {
		t.Fatalf("table count differs: %v vs %v", at, bt)
	}
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("table list differs: %v vs %v", at, bt)
		}
		ar, br := dumpRows(a, at[i]), dumpRows(b, bt[i])
		if len(ar) != len(br) {
			t.Fatalf("%s: %d rows vs %d", at[i], len(ar), len(br))
		}
		for j := range ar {
			if ar[j] != br[j] {
				t.Fatalf("%s row %d: %q vs %q", at[i], j, ar[j], br[j])
			}
		}
	}
}

// TestDurableRoundtrip closes a durable engine and reopens the directory:
// catalog, rows, rowids, options, and indexes must all survive, in every
// dialect.
func TestDurableRoundtrip(t *testing.T) {
	for _, d := range dialect.All {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			dir := t.TempDir()
			e, err := OpenDurable(d, pager.OS(), dir)
			if err != nil {
				t.Fatalf("OpenDurable: %v", err)
			}
			mustExec(t, e, `CREATE TABLE t0(c0 INT, c1 TEXT)`)
			mustExec(t, e, `CREATE INDEX i0 ON t0(c0)`)
			mustExec(t, e, `INSERT INTO t0(c0, c1) VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
			mustExec(t, e, `DELETE FROM t0 WHERE c0 = 2`)
			mustExec(t, e, `UPDATE t0 SET c1 = 'z' WHERE c0 = 3`)
			mustExec(t, e, `CREATE TABLE t1(c0 TEXT)`)
			mustExec(t, e, `INSERT INTO t1(c0) VALUES (NULL), ('x'), ('text')`)
			if err := e.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			r, err := OpenDurable(d, pager.OS(), dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer r.Close()
			sameState(t, e, r)
			// The index survived as an index: a lookup still works.
			res := mustExec(t, r, `SELECT c1 FROM t0 WHERE c0 = 3`)
			if len(res.Rows) != 1 || !res.Rows[0][0].Equal(sqlval.Text("z")) {
				t.Fatalf("post-recovery query: %+v", res.Rows)
			}
			// Rowid allocation continues past the deleted row, not over it.
			mustExec(t, r, `INSERT INTO t0(c0, c1) VALUES (4, 'd')`)
			rows := r.RawRows("t0")
			if len(rows) != 3 {
				t.Fatalf("after post-recovery insert: %d rows, want 3", len(rows))
			}
		})
	}
}

// TestDurableFailedStatementPersisted checks the statement-granularity
// contract: a failing multi-row INSERT keeps its partial effect, and that
// partial effect is durable.
func TestDurableFailedStatementPersisted(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE t0(c0 UNIQUE)`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1)`)
	if _, err := e.Exec(`INSERT INTO t0(c0) VALUES (2), (1)`); !xerr.Is(err, xerr.CodeUnique) {
		t.Fatalf("want unique violation, got %v", err)
	}
	want := dumpRows(e, "t0") // in-memory ground truth: rows 1 and 2
	if len(want) != 2 {
		t.Fatalf("in-memory after partial insert: %d rows, want 2", len(want))
	}
	e.Close()
	r, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := dumpRows(r, "t0")
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("durable state %v, want %v", got, want)
	}
}

// TestDurableResetWipesDisk checks Reset leaves nothing behind on disk:
// the next open sees a fresh database.
func TestDurableResetWipesDisk(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1)`)
	e.Reset()
	if n := len(e.Tables()); n != 0 {
		t.Fatalf("tables after Reset: %d", n)
	}
	e.Close()
	r, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := len(r.Tables()); n != 0 {
		t.Fatalf("reopened reset database has %d tables", n)
	}
}

// TestDurableCrashAtomicity arms a mid-commit power cut: the statement
// dies with CodeIO and recovery restores exactly the pre-statement state
// (LostTail drops the whole unsynced transaction).
func TestDurableCrashAtomicity(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dialect.SQLite, pager.NewSim(pager.OS()), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1)`)

	plan := pager.CrashPlan{Point: pager.BeforeSync, Mode: pager.LostTail}
	if !e.ArmCrash(plan) {
		t.Fatal("ArmCrash refused on a SimVFS engine")
	}
	_, err = e.Exec(`INSERT INTO t0(c0) VALUES (2)`)
	if !xerr.Is(err, xerr.CodeIO) {
		t.Fatalf("armed statement: err=%v, want CodeIO", err)
	}
	// The mutation applied in memory before the pager died.
	if n := len(e.RawRows("t0")); n != 2 {
		t.Fatalf("in-memory rows after armed crash: %d, want 2", n)
	}
	// Every later statement fails too: the database is dead.
	if _, err := e.Exec(`INSERT INTO t0(c0) VALUES (3)`); !xerr.Is(err, xerr.CodeIO) {
		t.Fatalf("dead engine accepted a statement: %v", err)
	}

	if err := e.CrashRecover(plan); err != nil {
		t.Fatalf("CrashRecover: %v", err)
	}
	rows := dumpRows(e, "t0")
	if len(rows) != 1 || rows[0] != "1" {
		t.Fatalf("recovered rows %v, want just the committed row 1", rows)
	}
	// The engine is alive again.
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (4)`)
	if n := len(e.RawRows("t0")); n != 2 {
		t.Fatalf("post-recovery insert: %d rows, want 2", n)
	}
}

// TestDurableSnapshotStaleAfterRecovery checks the DDL-epoch staleness
// guard from the scheduler lifecycle: crash recovery rebuilds the catalog,
// so snapshots from before the crash must be refused.
func TestDurableSnapshotStaleAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dialect.SQLite, pager.NewSim(pager.OS()), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1)`)
	snap := e.Snapshot()
	if err := e.CrashRecover(pager.CrashPlan{Point: pager.AfterSync, Mode: pager.LostTail}); err != nil {
		t.Fatalf("CrashRecover: %v", err)
	}
	if err := e.Restore(snap); !xerr.Is(err, xerr.CodeUnsupported) {
		t.Fatalf("Restore(pre-crash snapshot) = %v, want stale-snapshot refusal", err)
	}
}

// TestDurableSnapshotRestorePersists checks Restore re-commits the rewound
// state: what a reopened engine sees is the restored data, not the DML
// that came after the snapshot.
func TestDurableSnapshotRestorePersists(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1), (2)`)
	snap := e.Snapshot()
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (3), (4)`)
	mustExec(t, e, `DELETE FROM t0 WHERE c0 = 1`)
	if err := e.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	want := dumpRows(e, "t0")
	e.Close()

	r, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := dumpRows(r, "t0")
	if len(got) != len(want) {
		t.Fatalf("reopened rows %v, want restored state %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reopened rows %v, want restored state %v", got, want)
		}
	}
}

// TestDurableStatsExposed checks the pager counters surface through the
// engine (the dbshell .storage command reads these).
func TestDurableStatsExposed(t *testing.T) {
	e := Open(dialect.SQLite)
	if _, ok := e.PagerStats(); ok {
		t.Fatal("in-memory engine claims pager stats")
	}
	dir := t.TempDir()
	de, err := OpenDurable(dialect.SQLite, pager.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer de.Close()
	if !de.Durable() {
		t.Fatal("OpenDurable engine not Durable")
	}
	mustExec(t, de, `CREATE TABLE t0(c0)`)
	mustExec(t, de, `INSERT INTO t0(c0) VALUES (1)`)
	st, ok := de.PagerStats()
	if !ok || st.Commits < 2 || st.WalFrames == 0 {
		t.Fatalf("PagerStats = %+v, ok=%v; want >= 2 commits", st, ok)
	}
}
