package engine

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

func TestGroupByHaving(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(g, v);
		INSERT INTO t0(g, v) VALUES (1, 10), (1, 20), (2, 5), (NULL, 1), (NULL, 2)`)
	// NULLs form one group.
	if n := rowCount(t, e, `SELECT g FROM t0 GROUP BY g`); n != 3 {
		t.Errorf("groups: %d, want 3", n)
	}
	res := mustExec(t, e, `SELECT g, SUM(v) FROM t0 GROUP BY g HAVING g = 1`)
	if len(res.Rows) != 1 || !res.Rows[0][1].Equal(sqlval.Int(30)) {
		t.Errorf("having: %v", res.Rows)
	}
}

func TestAggregateEdgeCases(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	// Empty table: COUNT 0, SUM NULL, TOTAL 0.0 (SQLite semantics).
	res := mustExec(t, e, `SELECT COUNT(c0), SUM(c0), TOTAL(c0), AVG(c0) FROM t0`)
	row := res.Rows[0]
	if !row[0].Equal(sqlval.Int(0)) || !row[1].IsNull() ||
		!row[2].Equal(sqlval.Real(0)) || !row[3].IsNull() {
		t.Errorf("empty-table aggregates: %v", row)
	}
	// Mixed int/real SUM promotes to real.
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1), (0.5)`)
	res = mustExec(t, e, `SELECT SUM(c0) FROM t0`)
	if res.Rows[0][0].Kind() != sqlval.KReal || !res.Rows[0][0].Equal(sqlval.Real(1.5)) {
		t.Errorf("mixed SUM: %v (%v)", res.Rows[0][0], res.Rows[0][0].Kind())
	}
}

func TestViewInJoin(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1), (2);
		CREATE VIEW v0 AS SELECT c0 FROM t0 WHERE c0 > 1`)
	if n := rowCount(t, e, `SELECT * FROM t0, v0`); n != 2 {
		t.Errorf("table x view: %d rows, want 2", n)
	}
}

func TestOffsetBeyondEnd(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1)`)
	if n := rowCount(t, e, `SELECT c0 FROM t0 ORDER BY c0 LIMIT 5 OFFSET 10`); n != 0 {
		t.Errorf("offset beyond end: %d rows", n)
	}
	if _, err := e.Exec(`SELECT c0 FROM t0 LIMIT 'x'`); !xerr.Is(err, xerr.CodeType) {
		t.Errorf("non-integer LIMIT: %v", err)
	}
}

func TestCheckTableOKPath(t *testing.T) {
	e := Open(dialect.MySQL)
	mustExec(t, e, `CREATE TABLE t0(c0 INT);
		CREATE INDEX i0 ON t0(c0);
		INSERT INTO t0(c0) VALUES (1), (2)`)
	res := mustExec(t, e, `CHECK TABLE t0`)
	if len(res.Rows) != 1 || res.Rows[0][1].Str() != "OK" {
		t.Errorf("CHECK TABLE: %v", res.Rows)
	}
	mustExec(t, e, `REPAIR TABLE t0`)
	if e.RowCount("t0") != 2 {
		t.Error("correct REPAIR must not drop rows")
	}
}

func TestMySQLClamping(t *testing.T) {
	e := Open(dialect.MySQL)
	mustExec(t, e, `CREATE TABLE t0(c0 TINYINT, c1 INT UNSIGNED);
		INSERT INTO t0(c0, c1) VALUES (300, -5), (-300, 7)`)
	res := mustExec(t, e, `SELECT c0, c1 FROM t0`)
	if !res.Rows[0][0].Equal(sqlval.Int(127)) || !res.Rows[1][0].Equal(sqlval.Int(-128)) {
		t.Errorf("tinyint clamp: %v", res.Rows)
	}
	if !res.Rows[0][1].Equal(sqlval.Uint(0)) || !res.Rows[1][1].Equal(sqlval.Uint(7)) {
		t.Errorf("unsigned clamp: %v", res.Rows)
	}
}

func TestDialectFences(t *testing.T) {
	// Dialect-specific syntax is rejected outside its home dialect.
	if _, err := Open(dialect.MySQL).Exec(`CREATE TABLE t(c0) WITHOUT ROWID`); err == nil {
		t.Error("WITHOUT ROWID outside sqlite should fail")
	}
	if _, err := Open(dialect.SQLite).Exec(`CREATE TABLE t(c0 INT) ENGINE = MEMORY`); err == nil {
		t.Error("ENGINE outside mysql should fail")
	}
	if _, err := Open(dialect.SQLite).Exec(`CREATE TABLE t(c0 INT) INHERITS (x)`); err == nil {
		t.Error("INHERITS outside postgres should fail")
	}
	if _, err := Open(dialect.SQLite).Exec(`REPAIR TABLE t`); err == nil {
		t.Error("REPAIR TABLE outside mysql should fail")
	}
	if _, err := Open(dialect.MySQL).Exec(`VACUUM FULL`); err == nil {
		t.Error("VACUUM FULL outside postgres should fail")
	}
	if _, err := Open(dialect.SQLite).Exec(`CREATE TABLE t(c0 INT UNSIGNED)`); err == nil {
		t.Error("UNSIGNED outside mysql should fail")
	}
}

func TestInheritanceTypeMismatch(t *testing.T) {
	e := Open(dialect.Postgres)
	mustExec(t, e, `CREATE TABLE t0(c0 BOOLEAN)`)
	if _, err := e.Exec(`CREATE TABLE t1(c0 REAL) INHERITS (t0)`); !xerr.Is(err, xerr.CodeType) {
		t.Errorf("inherited column type change should be rejected: %v", err)
	}
	// Restating the same type is fine.
	mustExec(t, e, `CREATE TABLE t2(c0 BOOLEAN) INHERITS (t0)`)
}

func TestFromOnlyExcludesChildren(t *testing.T) {
	e := Open(dialect.Postgres)
	mustExec(t, e, `CREATE TABLE t0(c0 INT);
		CREATE TABLE t1(c0 INT) INHERITS (t0);
		INSERT INTO t0(c0) VALUES (1);
		INSERT INTO t1(c0) VALUES (2)`)
	if n := rowCount(t, e, `SELECT * FROM t0`); n != 2 {
		t.Errorf("inheritance scan: %d rows, want 2", n)
	}
	if n := rowCount(t, e, `SELECT * FROM ONLY t0`); n != 1 {
		t.Errorf("ONLY scan: %d rows, want 1", n)
	}
}

func TestCorruptionPersists(t *testing.T) {
	e := Open(dialect.SQLite, WithFaults(faultSetOf(t, "generic.vacuum-corrupt")))
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	_, _ = e.Exec(`VACUUM`)
	if ok, msg := e.Corrupted(); !ok || msg == "" {
		t.Error("corruption state should be visible")
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Exec(`SELECT 1`); !xerr.Is(err, xerr.CodeCorrupt) {
			t.Fatalf("statement %d after corruption: %v", i, err)
		}
	}
}

// faultSetOf builds a fault set from ids, failing on unknown names.
func faultSetOf(t *testing.T, ids ...string) *faults.Set {
	t.Helper()
	fs := faults.NewSet()
	for _, id := range ids {
		f := faults.Fault(id)
		if _, ok := faults.Lookup(f); !ok {
			t.Fatalf("unknown fault %q", id)
		}
		fs.Enable(f)
	}
	return fs
}
