package engine

import (
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/storage"
	"repro/internal/xerr"
)

func (e *Engine) insert(n *sqlast.Insert) (*Result, error) {
	t, td, err := e.table(n.Table)
	if err != nil {
		return nil, err
	}
	// Column positions targeted by the insert.
	var targets []int
	if len(n.Columns) == 0 {
		for i := range t.Columns {
			targets = append(targets, i)
		}
	} else {
		for _, c := range n.Columns {
			ci := t.ColumnIndex(c)
			if ci < 0 {
				return nil, xerr.New(xerr.CodeNoObject, "table %s has no column named %s", t.Name, c)
			}
			targets = append(targets, ci)
		}
	}

	affected := 0
	for _, rowExprs := range n.Rows {
		if len(rowExprs) != len(targets) {
			return nil, xerr.New(xerr.CodeSyntax, "table %s has %d columns but %d values were supplied",
				t.Name, len(targets), len(rowExprs))
		}
		vals := make([]sqlval.Value, len(t.Columns))
		for i := range vals {
			vals[i] = sqlval.Null()
		}
		for i, x := range rowExprs {
			v, err := e.constEval(x)
			if err != nil {
				return nil, err
			}
			vals[targets[i]] = v
		}
		// Defaults for unmentioned columns.
		for ci := range t.Columns {
			if !contains(targets, ci) && t.Columns[ci].Default != nil {
				v, err := e.constEval(t.Columns[ci].Default)
				if err != nil {
					return nil, err
				}
				vals[ci] = v
			}
		}
		ok, err := e.storeRow(t, td, vals, n.Conflict, -1)
		if err != nil {
			return nil, err
		}
		if ok {
			affected++
		}
	}
	e.cov.hit("dml.insert")
	return &Result{RowsAffected: affected}, nil
}

// pkIsNocaseText reports whether an index's leading part is a NOCASE text
// key over a primary-key column (the Listing 4 trigger shape).
func pkIsNocaseText(t *schema.Table, ix *schema.Index, key []sqlval.Value) bool {
	if len(ix.Parts) == 0 || ix.Parts[0].Collate != sqlval.CollNoCase {
		return false
	}
	cr, ok := ix.Parts[0].X.(*sqlast.ColumnRef)
	if !ok {
		return false
	}
	ci := t.ColumnIndex(cr.Column)
	if ci < 0 || !t.Columns[ci].PK {
		return false
	}
	return len(key) > 0 && key[0].Kind() == sqlval.KText
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// coerce applies the dialect's insertion-time conversion for one column.
func (e *Engine) coerce(col *schema.Column, v sqlval.Value) (sqlval.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch e.d {
	case dialect.SQLite:
		return sqlval.ApplyAffinity(v, col.Affinity), nil
	case dialect.MySQL:
		out := sqlval.ApplyAffinity(v, col.Affinity)
		// Out-of-range integers clamp silently (non-strict mode).
		if strings.Contains(strings.ToUpper(col.TypeName), "TINYINT") && out.Kind() == sqlval.KInt {
			if out.Int64() > 127 {
				out = sqlval.Int(127)
			} else if out.Int64() < -128 {
				out = sqlval.Int(-128)
			}
		}
		if col.Unsigned && out.Kind() == sqlval.KInt {
			if out.Int64() < 0 {
				out = sqlval.Int(0) // clamp, non-strict mode
			} else {
				out = sqlval.Uint(uint64(out.Int64()))
			}
		}
		return out, nil
	default: // Postgres: strict typing
		switch col.Affinity {
		case sqlval.AffInteger:
			switch v.Kind() {
			case sqlval.KInt:
				return v, nil
			case sqlval.KReal:
				if v.Float64() == float64(int64(v.Float64())) {
					return sqlval.Int(int64(v.Float64())), nil
				}
			case sqlval.KText:
				if n, ok := sqlval.TextToNumeric(strings.TrimSpace(v.Str())); ok && n.Kind() == sqlval.KInt {
					return n, nil
				}
			}
			return v, xerr.New(xerr.CodeType, "column %q is of type integer but expression is of type %s", col.Name, v.Kind())
		case sqlval.AffReal:
			if v.IsNumeric() {
				return sqlval.Real(v.AsFloat()), nil
			}
			return v, xerr.New(xerr.CodeType, "column %q is of type real but expression is of type %s", col.Name, v.Kind())
		case sqlval.AffText:
			if v.Kind() == sqlval.KText {
				return v, nil
			}
			return v, xerr.New(xerr.CodeType, "column %q is of type text but expression is of type %s", col.Name, v.Kind())
		default:
			if strings.Contains(strings.ToUpper(col.TypeName), "BOOL") {
				if v.Kind() == sqlval.KBool {
					return v, nil
				}
				if v.Kind() == sqlval.KInt && (v.Int64() == 0 || v.Int64() == 1) {
					return sqlval.Bool(v.Int64() == 1), nil
				}
				return v, xerr.New(xerr.CodeType, "column %q is of type boolean but expression is of type %s", col.Name, v.Kind())
			}
			return v, nil
		}
	}
}

// storeRow coerces, validates, and stores one row, maintaining indexes.
// excludeRowid skips one row during uniqueness checks (UPDATE self-match).
// It reports whether the row was actually stored.
func (e *Engine) storeRow(t *schema.Table, td *storage.TableData, vals []sqlval.Value, conflict sqlast.ConflictAction, excludeRowid int64) (bool, error) {
	st := e.tableState(t.Name)
	for ci := range t.Columns {
		col := &t.Columns[ci]
		v, err := e.coerce(col, vals[ci])
		if err != nil {
			return false, err
		}
		vals[ci] = v
		// serial auto-assignment.
		if e.d == dialect.Postgres && strings.EqualFold(col.TypeName, "serial") && v.IsNull() {
			vals[ci] = sqlval.Int(int64(td.Len()) + 1)
		}
	}
	// NOT NULL.
	for ci := range t.Columns {
		col := &t.Columns[ci]
		if col.NotNull && vals[ci].IsNull() {
			if conflict == sqlast.ConflictIgnore {
				return false, nil
			}
			return false, xerr.New(xerr.CodeNotNull, "NOT NULL constraint failed: %s.%s", t.Name, col.Name)
		}
	}
	// CHECK.
	env := newTableEnv(t, vals)
	for ci := range t.Columns {
		if chk := t.Columns[ci].Check; chk != nil {
			tb, err := e.ev.EvalBool(chk, env)
			if err != nil {
				return false, err
			}
			if tb == sqlval.TriFalse {
				if conflict == sqlast.ConflictIgnore {
					return false, nil
				}
				return false, xerr.New(xerr.CodeCheck, "CHECK constraint failed: %s.%s", t.Name, t.Columns[ci].Name)
			}
		}
	}

	// Uniqueness: PK tuple, column-level UNIQUE, unique explicit indexes.
	conflicts, err := e.findConflicts(t, td, vals, excludeRowid)
	if err != nil {
		return false, err
	}
	if len(conflicts) > 0 {
		switch conflict {
		case sqlast.ConflictIgnore:
			return false, nil
		case sqlast.ConflictReplace:
			for _, rid := range conflicts {
				e.removeRow(t, td, rid)
			}
		default:
			return false, xerr.New(xerr.CodeUnique, "UNIQUE constraint failed: %s", t.Name)
		}
	}

	row := td.Insert(vals)
	st.lastInsert = row.Rowid
	for ci := range vals {
		if vals[ci].Kind() == sqlval.KInt && (vals[ci].Int64() >= 2147483647 || vals[ci].Int64() <= -2147483648) {
			st.bigIntSeen = true
		}
	}
	// Maintain explicit indexes.
	if e.skipIndexMaint {
		return true, nil
	}
	for _, ix := range e.cat.IndexesOn(t.Name) {
		ixd := e.idx[lower(ix.Name)]
		if ixd == nil {
			continue
		}
		key, include, err := e.indexKey(ix, t, vals)
		if err != nil {
			td.Delete(row.Rowid)
			return false, err
		}
		if !include {
			continue
		}
		// Fault site (sqlite.nocase-unique-index, Listing 4): a NOCASE
		// index over a WITHOUT ROWID table's PK deduplicates case-variant
		// keys — the row is stored, but its index entry is silently
		// dropped, so index lookups return only one of the case variants.
		if e.nocaseIndexDrops(t, ix, key, ixd) {
			continue
		}
		if ix.Unique && !allNull(key) && len(ixd.Equal(key)) > 0 {
			td.Delete(row.Rowid)
			if conflict == sqlast.ConflictIgnore {
				return false, nil
			}
			return false, xerr.New(xerr.CodeUnique, "UNIQUE constraint failed: index %s", ix.Name)
		}
		ixd.Insert(key, row.Rowid)
	}
	return true, nil
}

// findConflicts returns rowids that collide with vals on any uniqueness
// constraint.
func (e *Engine) findConflicts(t *schema.Table, td *storage.TableData, vals []sqlval.Value, excludeRowid int64) ([]int64, error) {
	var out []int64
	seen := map[int64]bool{}
	add := func(rid int64) {
		if rid != excludeRowid && !seen[rid] {
			seen[rid] = true
			out = append(out, rid)
		}
	}
	pks := t.PKColumns()
	for _, r := range td.Rows() {
		if r.Rowid == excludeRowid {
			continue
		}
		// PK tuple equality (NULLs never conflict; SQLite rowid tables
		// allow NULL PKs).
		if len(pks) > 0 {
			match := true
			for _, ci := range pks {
				if vals[ci].IsNull() || r.Vals[ci].IsNull() {
					match = false
					break
				}
				if sqlval.Compare(vals[ci], r.Vals[ci], t.Columns[ci].Collate) != 0 {
					match = false
					break
				}
			}
			if match {
				add(r.Rowid)
				continue
			}
		}
		for ci := range t.Columns {
			if !t.Columns[ci].Unique || vals[ci].IsNull() || r.Vals[ci].IsNull() {
				continue
			}
			if sqlval.Compare(vals[ci], r.Vals[ci], t.Columns[ci].Collate) == 0 {
				add(r.Rowid)
			}
		}
	}
	return out, nil
}

// removeRow deletes a row and its index entries.
func (e *Engine) removeRow(t *schema.Table, td *storage.TableData, rowid int64) {
	for _, ix := range e.cat.IndexesOn(t.Name) {
		if ixd := e.idx[lower(ix.Name)]; ixd != nil {
			ixd.DeleteRowid(rowid)
		}
	}
	td.Delete(rowid)
}

func (e *Engine) update(n *sqlast.Update) (*Result, error) {
	t, td, err := e.table(n.Table)
	if err != nil {
		return nil, err
	}
	for _, a := range n.Sets {
		if t.ColumnIndex(a.Column) < 0 {
			return nil, xerr.New(xerr.CodeNoObject, "no such column: %s", a.Column)
		}
	}
	// Snapshot target rowids first (updates must not see their own writes).
	var targets []int64
	for _, r := range td.Rows() {
		if n.Where != nil {
			tb, err := e.ev.EvalBool(n.Where, newTableEnv(t, r.Vals))
			if err != nil {
				return nil, err
			}
			if tb != sqlval.TriTrue {
				continue
			}
		}
		targets = append(targets, r.Rowid)
	}
	affected := 0
	for _, rid := range targets {
		r, ok := td.Get(rid)
		if !ok {
			continue // replaced away by an earlier conflict resolution
		}
		newVals := make([]sqlval.Value, len(r.Vals))
		copy(newVals, r.Vals)
		env := newTableEnv(t, r.Vals)
		for _, a := range n.Sets {
			v, err := e.ev.Eval(a.Value, env)
			if err != nil {
				return nil, err
			}
			newVals[t.ColumnIndex(a.Column)] = v
		}
		// Remove the old row, then store the new one; restore on failure.
		oldVals := r.Vals
		// Fault site (sqlite.stale-index-after-update): the heap row is
		// rewritten but index maintenance is skipped entirely — old entries
		// linger under the dead rowid and the new row never gets entries,
		// so index-driven access paths miss updated rows.
		if e.d == dialect.SQLite && e.fs.Has(faults.StaleIndexAfterUpdate) {
			td.Delete(rid)
			e.skipIndexMaint = true
		} else {
			e.removeRow(t, td, rid)
		}
		stored, err := e.storeRow(t, td, newVals, n.Conflict, -1)
		e.skipIndexMaint = false
		if err != nil {
			if _, serr := e.storeRow(t, td, oldVals, sqlast.ConflictIgnore, -1); serr != nil {
				e.corrupt = "database disk image is malformed"
			}
			return nil, err
		}
		if stored {
			affected++
		}
	}
	st := e.tableState(t.Name)
	st.updateSeq = e.seq

	// Fault site (sqlite.real-pk-corrupt, Listing 10): UPDATE OR REPLACE
	// touching a REAL primary key corrupts the database image.
	if e.d == dialect.SQLite && e.fs.Has(faults.RealPKCorrupt) && n.Conflict == sqlast.ConflictReplace {
		for _, ci := range t.PKColumns() {
			if t.Columns[ci].Affinity == sqlval.AffReal {
				e.corrupt = "database disk image is malformed"
			}
		}
	}
	e.cov.hit("dml.update")
	return &Result{RowsAffected: affected}, nil
}

func (e *Engine) delete(n *sqlast.Delete) (*Result, error) {
	t, td, err := e.table(n.Table)
	if err != nil {
		return nil, err
	}
	var victims []int64
	for _, r := range td.Rows() {
		if n.Where != nil {
			tb, err := e.ev.EvalBool(n.Where, newTableEnv(t, r.Vals))
			if err != nil {
				return nil, err
			}
			if tb != sqlval.TriTrue {
				continue
			}
		}
		victims = append(victims, r.Rowid)
	}
	for _, rid := range victims {
		e.removeRow(t, td, rid)
	}
	e.cov.hit("dml.delete")
	return &Result{RowsAffected: len(victims)}, nil
}
