package engine

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/sqlval"
	"repro/internal/xerr"
)

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func rowCount(t *testing.T, e *Engine, sql string) int {
	t.Helper()
	res := mustExec(t, e, sql)
	return len(res.Rows)
}

func TestCreateInsertSelect(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0)`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)`)
	res := mustExec(t, e, `SELECT c0 FROM t0`)
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	if res.Columns[0] != "c0" {
		t.Errorf("column name %q", res.Columns[0])
	}
}

func TestWhereFilter(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)`)
	if n := rowCount(t, e, `SELECT c0 FROM t0 WHERE c0 > 1`); n != 2 {
		t.Errorf("c0 > 1: %d rows, want 2", n)
	}
	if n := rowCount(t, e, `SELECT c0 FROM t0 WHERE c0 IS NULL`); n != 1 {
		t.Errorf("IS NULL: %d rows, want 1", n)
	}
	// Three-valued logic: NULL row is not fetched by c0 > 1 or NOT(c0 > 1).
	if n := rowCount(t, e, `SELECT c0 FROM t0 WHERE NOT (c0 > 1)`); n != 2 {
		t.Errorf("NOT(c0>1): %d rows, want 2", n)
	}
}

// Listing 1: the canonical PQS example.
func TestListing1PartialIndex(t *testing.T) {
	setup := `CREATE TABLE t0(c0);
		CREATE INDEX i0 ON t0(1) WHERE c0 NOT NULL;
		INSERT INTO t0(c0) VALUES (0), (1), (2), (3), (NULL)`
	query := `SELECT c0 FROM t0 WHERE t0.c0 IS NOT 1`

	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 4 {
		t.Fatalf("correct engine: %d rows, want 4 (incl. NULL)", n)
	}

	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.PartialIndexNotNull)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 3 {
		t.Fatalf("faulty engine: %d rows, want 3 (NULL row dropped)", n)
	}
}

// Listing 4: NOCASE index on WITHOUT ROWID PK. The faulty engine
// deduplicates case-variant keys in the index, so index-served lookups
// miss one of the rows.
func TestListing4NocaseUnique(t *testing.T) {
	setup := `CREATE TABLE t0(c0 TEXT PRIMARY KEY) WITHOUT ROWID;
		CREATE INDEX i0 ON t0(c0 COLLATE NOCASE);
		INSERT INTO t0(c0) VALUES ('A');
		INSERT INTO t0(c0) VALUES ('a')`
	query := `SELECT * FROM t0 WHERE c0 = 'a'`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.NocaseUniqueIndex)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 0 {
		t.Fatalf("faulty: %d rows, want 0 (the 'a' index entry was dropped)", n)
	}
	// Both rows are still in the table itself.
	if n := rowCount(t, bad, `SELECT * FROM t0`); n != 2 {
		t.Fatalf("heap should hold both rows, got %d", n)
	}
}

// Listing 5-like: RTRIM collation index lookup.
func TestListing5RtrimIndex(t *testing.T) {
	setup := `CREATE TABLE t0(c0 TEXT COLLATE RTRIM);
		CREATE INDEX i0 ON t0(c0);
		INSERT INTO t0(c0) VALUES (' '), ('x')`
	query := `SELECT * FROM t0 WHERE c0 = ''`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1 (' ' RTRIM-equals '')", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.RtrimCompare)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 0 {
		t.Fatalf("faulty: %d rows, want 0", n)
	}
}

// Listing 6-like: skip-scan under DISTINCT after ANALYZE.
func TestListing6SkipScan(t *testing.T) {
	setup := `CREATE TABLE t1(c1, c2);
		CREATE INDEX i1 ON t1(c1, c2);
		INSERT INTO t1(c1, c2) VALUES (0, 1), (0, 2), (1, 3);
		ANALYZE t1`
	query := `SELECT DISTINCT * FROM t1`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 3 {
		t.Fatalf("correct: %d rows, want 3", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.SkipScanDistinct)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 2 {
		t.Fatalf("faulty: %d rows, want 2 (repeated leading key skipped)", n)
	}
}

// Listing 7: LIKE optimization and affinity.
func TestListing7LikeAffinity(t *testing.T) {
	setup := `CREATE TABLE t0(c0 INT UNIQUE COLLATE NOCASE);
		INSERT INTO t0(c0) VALUES ('./')`
	query := `SELECT * FROM t0 WHERE t0.c0 LIKE './'`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.LikeAffinityOpt)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 0 {
		t.Fatalf("faulty: %d rows, want 0 (Listing 7)", n)
	}
}

// Listing 8: double-quoted index string hijacks a renamed column.
func TestListing8DoubleQuote(t *testing.T) {
	setup := `CREATE TABLE t0(c1, c2);
		INSERT INTO t0(c1, c2) VALUES ('a', 1);
		CREATE INDEX i0 ON t0("C3");
		ALTER TABLE t0 RENAME COLUMN c1 TO c3`
	query := `SELECT DISTINCT * FROM t0`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	res := mustExec(t, good, query)
	if !res.Rows[0][0].Equal(sqlval.Text("a")) {
		t.Fatalf("correct: first col %v, want 'a'", res.Rows[0][0])
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.DoubleQuoteIndex)))
	mustExec(t, bad, setup)
	res = mustExec(t, bad, query)
	if !res.Rows[0][0].Equal(sqlval.Text("C3")) {
		t.Fatalf("faulty: first col %v, want 'C3' (Listing 8)", res.Rows[0][0])
	}
}

// Listing 9: case_sensitive_like pragma + VACUUM.
func TestListing9CaseSensitiveLike(t *testing.T) {
	setup := `CREATE TABLE test (c0);
		CREATE INDEX index_0 ON test(c0 LIKE '');
		PRAGMA case_sensitive_like = 1`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	mustExec(t, good, `VACUUM`)
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.CaseSensitiveLikePragma)))
	mustExec(t, bad, setup)
	_, err := bad.Exec(`VACUUM`)
	if !xerr.Is(err, xerr.CodeCorrupt) {
		t.Fatalf("faulty VACUUM should report malformed schema, got %v", err)
	}
}

// Listing 10: UPDATE OR REPLACE on a REAL PK corrupts the database.
func TestListing10RealPKCorrupt(t *testing.T) {
	setup := `CREATE TABLE t1 (c0, c1 REAL PRIMARY KEY);
		INSERT INTO t1(c0, c1) VALUES (TRUE, 9223372036854775807), (TRUE, 0);
		UPDATE t1 SET c0 = NULL`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	mustExec(t, good, `UPDATE OR REPLACE t1 SET c1 = 1`)
	if n := rowCount(t, good, `SELECT DISTINCT * FROM t1 WHERE (t1.c0 IS NULL)`); n == 0 {
		t.Fatal("correct engine should fetch rows")
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.RealPKCorrupt)))
	mustExec(t, bad, setup)
	mustExec(t, bad, `UPDATE OR REPLACE t1 SET c1 = 1`)
	_, err := bad.Exec(`SELECT DISTINCT * FROM t1 WHERE (t1.c0 IS NULL)`)
	if !xerr.Is(err, xerr.CodeCorrupt) {
		t.Fatalf("faulty engine should report corruption, got %v", err)
	}
}

// Listing 11: MEMORY engine + CAST AS UNSIGNED.
func TestListing11MemoryEngine(t *testing.T) {
	setup := `CREATE TABLE t0(c0 INT);
		CREATE TABLE t1(c0 INT) ENGINE = MEMORY;
		INSERT INTO t0(c0) VALUES (0);
		INSERT INTO t1(c0) VALUES (-1)`
	query := `SELECT * FROM t0, t1 WHERE (CAST(t1.c0 AS UNSIGNED)) > (IFNULL("u", t0.c0))`
	good := Open(dialect.MySQL)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1", n)
	}
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.MemoryEngineCast)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 0 {
		t.Fatalf("faulty: %d rows, want 0 (Listing 11)", n)
	}
}

// Listing 13: double negation.
func TestListing13DoubleNegation(t *testing.T) {
	setup := `CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (1)`
	query := `SELECT * FROM t0 WHERE 123 != (NOT (NOT 123))`
	good := Open(dialect.MySQL)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1", n)
	}
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.DoubleNegation)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 0 {
		t.Fatalf("faulty: %d rows, want 0 (Listing 13)", n)
	}
}

// Listing 14: CHECK TABLE FOR UPGRADE crash.
func TestListing14CheckTableCrash(t *testing.T) {
	setup := `CREATE TABLE t0(c0 INT);
		CREATE INDEX i0 ON t0((t0.c0 + 1));
		INSERT INTO t0(c0) VALUES (1)`
	good := Open(dialect.MySQL)
	mustExec(t, good, setup)
	mustExec(t, good, `CHECK TABLE t0 FOR UPGRADE`)
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.CheckTableCrash)))
	mustExec(t, bad, setup)
	_, err := bad.Exec(`CHECK TABLE t0 FOR UPGRADE`)
	if !xerr.Is(err, xerr.CodeCrash) {
		t.Fatalf("faulty CHECK TABLE should crash, got %v", err)
	}
}

// Listing 15: inheritance + GROUP BY.
func TestListing15Inheritance(t *testing.T) {
	setup := `CREATE TABLE t0(c0 INT PRIMARY KEY, c1 INT);
		CREATE TABLE t1(c0 INT) INHERITS (t0);
		INSERT INTO t0(c0, c1) VALUES(0, 0);
		INSERT INTO t1(c0, c1) VALUES(0, 1)`
	query := `SELECT c0, c1 FROM t0 GROUP BY c0, c1`
	good := Open(dialect.Postgres)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 2 {
		t.Fatalf("correct: %d rows, want 2 (0|0 and 0|1)", n)
	}
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.InheritanceGroupBy)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 1 {
		t.Fatalf("faulty: %d rows, want 1 (Listing 15)", n)
	}
}

// Listing 16: extended statistics + expression index.
func TestListing16StatsBitmapset(t *testing.T) {
	setup := `CREATE TABLE t0(c0 serial, c1 boolean);
		CREATE STATISTICS s1 ON c0, c1 FROM t0;
		INSERT INTO t0(c1) VALUES(TRUE);
		ANALYZE;
		CREATE INDEX i0 ON t0(c0, (t0.c1 AND t0.c1))`
	query := `SELECT * FROM t0 WHERE (((t0.c1) AND (t0.c1)) OR FALSE) IS TRUE`
	good := Open(dialect.Postgres)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1", n)
	}
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.StatsBitmapset)))
	mustExec(t, bad, setup)
	_, err := bad.Exec(query)
	if !xerr.Is(err, xerr.CodeInternal) {
		t.Fatalf("faulty: want internal error, got %v", err)
	}
}

// Listing 17: index built before an UPDATE over NULLs.
func TestListing17IndexNullValue(t *testing.T) {
	setup := `CREATE TABLE t0(c0 TEXT);
		INSERT INTO t0(c0) VALUES('b'), ('a');
		ANALYZE;
		INSERT INTO t0(c0) VALUES (NULL);
		CREATE INDEX i0 ON t0(c0);
		UPDATE t0 SET c0 = c0`
	query := `SELECT * FROM t0 WHERE 'baaaa' > t0.c0`
	good := Open(dialect.Postgres)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 2 {
		t.Fatalf("correct: %d rows, want 2", n)
	}
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.IndexNullValue)))
	mustExec(t, bad, setup)
	_, err := bad.Exec(query)
	if !xerr.Is(err, xerr.CodeInternal) {
		t.Fatalf("faulty: want internal error, got %v", err)
	}
}

// Listing 18: VACUUM FULL integer overflow.
func TestListing18VacuumOverflow(t *testing.T) {
	setup := `CREATE TABLE t1(c0 int);
		INSERT INTO t1(c0) VALUES (2147483647);
		UPDATE t1 SET c0 = 0;
		CREATE INDEX i0 ON t1((1 + t1.c0))`
	good := Open(dialect.Postgres)
	mustExec(t, good, setup)
	mustExec(t, good, `VACUUM FULL`)
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.VacuumOverflow)))
	mustExec(t, bad, setup)
	_, err := bad.Exec(`VACUUM FULL`)
	if !xerr.Is(err, xerr.CodeRange) {
		t.Fatalf("faulty VACUUM FULL: want range error, got %v", err)
	}
}

// Listing 3: SET GLOBAL option error.
func TestListing3SetOption(t *testing.T) {
	good := Open(dialect.MySQL)
	mustExec(t, good, `SET GLOBAL key_cache_division_limit = 100`)
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.SetOptionError)))
	_, err := bad.Exec(`SET GLOBAL key_cache_division_limit = 100`)
	if !xerr.Is(err, xerr.CodeOption) {
		t.Fatalf("faulty SET: want option error, got %v", err)
	}
	// Non-multiples of 100 succeed even with the fault.
	mustExec(t, bad, `SET GLOBAL key_cache_division_limit = 42`)
}

func TestConstraints(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0 UNIQUE, c1 NOT NULL)`)
	mustExec(t, e, `INSERT INTO t0(c0, c1) VALUES (1, 1)`)
	if _, err := e.Exec(`INSERT INTO t0(c0, c1) VALUES (1, 2)`); !xerr.Is(err, xerr.CodeUnique) {
		t.Errorf("duplicate unique: %v", err)
	}
	if _, err := e.Exec(`INSERT INTO t0(c0, c1) VALUES (2, NULL)`); !xerr.Is(err, xerr.CodeNotNull) {
		t.Errorf("null into NOT NULL: %v", err)
	}
	// OR IGNORE swallows both.
	mustExec(t, e, `INSERT OR IGNORE INTO t0(c0, c1) VALUES (1, 2), (2, NULL), (3, 3)`)
	if n := rowCount(t, e, `SELECT * FROM t0`); n != 2 {
		t.Errorf("after OR IGNORE: %d rows, want 2", n)
	}
	// OR REPLACE displaces the conflicting row.
	mustExec(t, e, `INSERT OR REPLACE INTO t0(c0, c1) VALUES (1, 9)`)
	res := mustExec(t, e, `SELECT c1 FROM t0 WHERE c0 = 1`)
	if len(res.Rows) != 1 || !res.Rows[0][0].Equal(sqlval.Int(9)) {
		t.Errorf("OR REPLACE result: %+v", res.Rows)
	}
	// NULLs don't conflict in UNIQUE columns.
	mustExec(t, e, `CREATE TABLE t1(c0 UNIQUE)`)
	mustExec(t, e, `INSERT INTO t1(c0) VALUES (NULL), (NULL)`)
	if n := rowCount(t, e, `SELECT * FROM t1`); n != 2 {
		t.Errorf("NULL unique: %d rows, want 2", n)
	}
}

func TestCheckConstraint(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0 CHECK (c0 > 0))`)
	mustExec(t, e, `INSERT INTO t0(c0) VALUES (1), (NULL)`) // NULL passes CHECK
	if _, err := e.Exec(`INSERT INTO t0(c0) VALUES (0)`); !xerr.Is(err, xerr.CodeCheck) {
		t.Errorf("check violation: %v", err)
	}
}

func TestAffinityOnInsert(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0 INTEGER, c1 TEXT)`)
	mustExec(t, e, `INSERT INTO t0(c0, c1) VALUES ('42', 42)`)
	res := mustExec(t, e, `SELECT c0, c1 FROM t0`)
	if res.Rows[0][0].Kind() != sqlval.KInt {
		t.Errorf("INTEGER affinity: stored %v", res.Rows[0][0].Kind())
	}
	if res.Rows[0][1].Kind() != sqlval.KText {
		t.Errorf("TEXT affinity: stored %v", res.Rows[0][1].Kind())
	}
}

func TestPostgresStrictInsert(t *testing.T) {
	e := Open(dialect.Postgres)
	mustExec(t, e, `CREATE TABLE t0(c0 INT, c1 boolean)`)
	mustExec(t, e, `INSERT INTO t0(c0, c1) VALUES (1, TRUE)`)
	if _, err := e.Exec(`INSERT INTO t0(c0, c1) VALUES ('abc', TRUE)`); !xerr.Is(err, xerr.CodeType) {
		t.Errorf("text into int should type-error, got %v", err)
	}
	if _, err := e.Exec(`SELECT * FROM t0 WHERE c0`); !xerr.Is(err, xerr.CodeType) {
		t.Errorf("non-boolean WHERE should type-error, got %v", err)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1), (2), (3)`)
	res := mustExec(t, e, `UPDATE t0 SET c0 = c0 + 10 WHERE c0 >= 2`)
	if res.RowsAffected != 2 {
		t.Errorf("update affected %d, want 2", res.RowsAffected)
	}
	if n := rowCount(t, e, `SELECT * FROM t0 WHERE c0 > 10`); n != 2 {
		t.Errorf("after update: %d rows > 10", n)
	}
	res = mustExec(t, e, `DELETE FROM t0 WHERE c0 = 1`)
	if res.RowsAffected != 1 || e.RowCount("t0") != 2 {
		t.Errorf("delete affected %d, count %d", res.RowsAffected, e.RowCount("t0"))
	}
}

func TestJoins(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE a(x); CREATE TABLE b(y);
		INSERT INTO a(x) VALUES (1), (2);
		INSERT INTO b(y) VALUES (2), (3)`)
	if n := rowCount(t, e, `SELECT * FROM a, b`); n != 4 {
		t.Errorf("cross join: %d rows, want 4", n)
	}
	if n := rowCount(t, e, `SELECT * FROM a JOIN b ON a.x = b.y`); n != 1 {
		t.Errorf("inner join: %d rows, want 1", n)
	}
	res := mustExec(t, e, `SELECT * FROM a LEFT JOIN b ON a.x = b.y`)
	if len(res.Rows) != 2 {
		t.Fatalf("left join: %d rows, want 2", len(res.Rows))
	}
	nullSeen := false
	for _, r := range res.Rows {
		if r[1].IsNull() {
			nullSeen = true
		}
	}
	if !nullSeen {
		t.Error("left join should null-extend unmatched row")
	}
}

func TestLeftJoinDropFault(t *testing.T) {
	setup := `CREATE TABLE a(x INT); CREATE TABLE b(y INT);
		INSERT INTO a(x) VALUES (1), (2);
		INSERT INTO b(y) VALUES (2)`
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.LeftJoinDrop)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, `SELECT * FROM a LEFT JOIN b ON a.x = b.y`); n != 1 {
		t.Errorf("faulty left join: %d rows, want 1", n)
	}
}

func TestOrderByLimit(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (3), (1), (2), (NULL)`)
	res := mustExec(t, e, `SELECT c0 FROM t0 ORDER BY c0`)
	if !res.Rows[0][0].IsNull() || !res.Rows[3][0].Equal(sqlval.Int(3)) {
		t.Errorf("order: %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT c0 FROM t0 ORDER BY c0 DESC LIMIT 2`)
	if len(res.Rows) != 2 || !res.Rows[0][0].Equal(sqlval.Int(3)) {
		t.Errorf("desc limit: %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT c0 FROM t0 ORDER BY c0 LIMIT 2 OFFSET 1`)
	if len(res.Rows) != 2 || !res.Rows[0][0].Equal(sqlval.Int(1)) {
		t.Errorf("offset: %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1), (1), (NULL), (NULL), ('a'), ('A')`)
	if n := rowCount(t, e, `SELECT DISTINCT c0 FROM t0`); n != 4 {
		t.Errorf("distinct: %d rows, want 4 (1, NULL, 'a', 'A')", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.DistinctCollation)))
	mustExec(t, bad, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES ('a'), ('A')`)
	if n := rowCount(t, bad, `SELECT DISTINCT c0 FROM t0`); n != 1 {
		t.Errorf("faulty distinct: %d rows, want 1", n)
	}
}

func TestAggregates(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1), (2), (NULL)`)
	res := mustExec(t, e, `SELECT COUNT(), COUNT(c0), SUM(c0), AVG(c0), MIN(c0), MAX(c0) FROM t0`)
	want := []sqlval.Value{sqlval.Int(3), sqlval.Int(2), sqlval.Int(3), sqlval.Real(1.5), sqlval.Int(1), sqlval.Int(2)}
	for i, w := range want {
		if !res.Rows[0][i].Equal(w) {
			t.Errorf("agg %d = %v, want %v", i, res.Rows[0][i], w)
		}
	}
	res = mustExec(t, e, `SELECT c0, COUNT() FROM t0 GROUP BY c0 ORDER BY c0`)
	if len(res.Rows) != 3 {
		t.Errorf("group count: %d groups", len(res.Rows))
	}
}

func TestViews(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1), (2)`)
	mustExec(t, e, `CREATE VIEW v0 AS SELECT c0 FROM t0 WHERE c0 > 1`)
	if n := rowCount(t, e, `SELECT * FROM v0`); n != 1 {
		t.Errorf("view scan: %d rows, want 1", n)
	}
	if got := e.Views(); len(got) != 1 || got[0] != "v0" {
		t.Errorf("Views() = %v", got)
	}
}

func TestAlterAndDrop(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1)`)
	mustExec(t, e, `ALTER TABLE t0 RENAME TO t9`)
	if n := rowCount(t, e, `SELECT * FROM t9`); n != 1 {
		t.Errorf("renamed table scan: %d rows", n)
	}
	mustExec(t, e, `ALTER TABLE t9 ADD COLUMN c1 DEFAULT (7)`)
	res := mustExec(t, e, `SELECT c1 FROM t9`)
	if !res.Rows[0][0].Equal(sqlval.Int(7)) {
		t.Errorf("added column default: %v", res.Rows[0][0])
	}
	mustExec(t, e, `DROP TABLE t9`)
	if _, err := e.Exec(`SELECT * FROM t9`); !xerr.Is(err, xerr.CodeNoObject) {
		t.Errorf("dropped table: %v", err)
	}
}

func TestIndexMaintenanceThroughDML(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0);
		CREATE INDEX i0 ON t0(c0);
		INSERT INTO t0(c0) VALUES (1), (2), (3)`)
	// Equality lookup must agree with a full scan after updates/deletes.
	mustExec(t, e, `UPDATE t0 SET c0 = 9 WHERE c0 = 2`)
	mustExec(t, e, `DELETE FROM t0 WHERE c0 = 3`)
	if n := rowCount(t, e, `SELECT * FROM t0 WHERE c0 = 9`); n != 1 {
		t.Errorf("index lookup after update: %d rows, want 1", n)
	}
	if n := rowCount(t, e, `SELECT * FROM t0 WHERE c0 = 3`); n != 0 {
		t.Errorf("index lookup after delete: %d rows, want 0", n)
	}
	mustExec(t, e, `REINDEX t0`)
	if n := rowCount(t, e, `SELECT * FROM t0 WHERE c0 = 9`); n != 1 {
		t.Errorf("after REINDEX: %d rows, want 1", n)
	}
}

func TestUniqueIndexEnforcement(t *testing.T) {
	e := Open(dialect.SQLite)
	mustExec(t, e, `CREATE TABLE t0(c0);
		CREATE UNIQUE INDEX u0 ON t0(c0 COLLATE NOCASE);
		INSERT INTO t0(c0) VALUES ('a')`)
	if _, err := e.Exec(`INSERT INTO t0(c0) VALUES ('A')`); !xerr.Is(err, xerr.CodeUnique) {
		t.Errorf("NOCASE unique index should reject case variant: %v", err)
	}
}

func TestReindexUniqueFault(t *testing.T) {
	setup := `CREATE TABLE t0(c0);
		CREATE UNIQUE INDEX u0 ON t0(c0 COLLATE NOCASE);
		INSERT INTO t0(c0) VALUES ('a'), ('b')`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	mustExec(t, good, `REINDEX`)
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.ReindexUnique)))
	mustExec(t, bad, setup)
	if _, err := bad.Exec(`REINDEX`); !xerr.Is(err, xerr.CodeUnique) {
		t.Errorf("faulty REINDEX: %v", err)
	}
}

func TestVacuumCorruptFault(t *testing.T) {
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.VacuumCorrupt)))
	mustExec(t, bad, `CREATE TABLE t0(c0)`)
	if _, err := bad.Exec(`VACUUM`); !xerr.Is(err, xerr.CodeCorrupt) {
		t.Errorf("faulty VACUUM: %v", err)
	}
	// Corruption persists.
	if _, err := bad.Exec(`SELECT 1`); !xerr.Is(err, xerr.CodeCorrupt) {
		t.Errorf("post-corruption statement: %v", err)
	}
}

func TestInsertVisibilityFault(t *testing.T) {
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.InsertVisibility)))
	mustExec(t, bad, `CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (1), (2)`)
	if n := rowCount(t, bad, `SELECT * FROM t0`); n != 1 {
		t.Errorf("visibility fault: %d rows, want 1 (last insert hidden)", n)
	}
}

func TestRowidAliasCrashFault(t *testing.T) {
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.RowidAliasCrash)))
	mustExec(t, bad, `CREATE TABLE t0(c0, c1); INSERT INTO t0(c0, c1) VALUES (1, 2)`)
	mustExec(t, bad, `ALTER TABLE t0 RENAME COLUMN c0 TO c9`)
	_, err := bad.Exec(`SELECT * FROM t0`)
	if !xerr.Is(err, xerr.CodeCrash) {
		t.Errorf("crash fault: %v", err)
	}
}

func TestStrictCastCrashFault(t *testing.T) {
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.StrictCastCrash)))
	mustExec(t, bad, `CREATE TABLE t0(c0 INT)`)
	_, err := bad.Exec(`CREATE INDEX i0 ON t0((CAST(c0 AS TEXT) || 'x'))`)
	if !xerr.Is(err, xerr.CodeCrash) {
		t.Errorf("nested-cast index should crash: %v", err)
	}
}

func TestRepairTableTruncateFault(t *testing.T) {
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.RepairTableTruncate)))
	mustExec(t, bad, `CREATE TABLE t0(c0 INT); INSERT INTO t0(c0) VALUES (1), (2)`)
	if _, err := bad.Exec(`REPAIR TABLE t0`); !xerr.Is(err, xerr.CodeCorrupt) {
		t.Errorf("faulty REPAIR: %v", err)
	}
}

func TestWhereTrueDropFault(t *testing.T) {
	setup := `CREATE TABLE t0(c0);
		CREATE INDEX i0 ON t0(c0);
		INSERT INTO t0(c0) VALUES (1), (2), (3)`
	query := `SELECT * FROM t0 WHERE (c0 > 0) OR (c0 IS NULL)`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 3 {
		t.Fatalf("correct: %d rows, want 3", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.WhereTrueDrop)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 2 {
		t.Fatalf("faulty: %d rows, want 2", n)
	}
}

func TestJoinPushdownFault(t *testing.T) {
	setup := `CREATE TABLE a(x INT); CREATE TABLE b(y INT);
		INSERT INTO a(x) VALUES (1), (2);
		INSERT INTO b(y) VALUES (5), (6)`
	query := `SELECT * FROM a, b WHERE b.y > 4`
	good := Open(dialect.MySQL)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 4 {
		t.Fatalf("correct: %d rows, want 4", n)
	}
	bad := Open(dialect.MySQL, WithFaults(faults.NewSet(faults.JoinPredicatePushdown)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 2 {
		t.Fatalf("faulty: %d rows, want 2", n)
	}
}

func TestOrderByLimitDropFault(t *testing.T) {
	setup := `CREATE TABLE t0(c0 INT);
		INSERT INTO t0(c0) VALUES (1), (2), (3)`
	bad := Open(dialect.Postgres, WithFaults(faults.NewSet(faults.OrderByLimitDrop)))
	mustExec(t, bad, setup)
	mustExec(t, bad, `INSERT INTO t0(c0) VALUES (NULL)`)
	res := mustExec(t, bad, `SELECT c0 FROM t0 ORDER BY c0 LIMIT 10`)
	if len(res.Rows) != 3 {
		t.Errorf("faulty order/limit: %d rows, want 3 (one dropped)", len(res.Rows))
	}
}

func TestCollateIndexOrderFault(t *testing.T) {
	setup := `CREATE TABLE t0(c0 TEXT COLLATE NOCASE);
		CREATE INDEX i0 ON t0(c0);
		INSERT INTO t0(c0) VALUES ('a'), ('B')`
	query := `SELECT * FROM t0 WHERE c0 = 'A'`
	good := Open(dialect.SQLite)
	mustExec(t, good, setup)
	if n := rowCount(t, good, query); n != 1 {
		t.Fatalf("correct: %d rows, want 1", n)
	}
	bad := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.CollateIndexOrder)))
	mustExec(t, bad, setup)
	if n := rowCount(t, bad, query); n != 0 {
		t.Fatalf("faulty: %d rows, want 0 (binary-built index misses)", n)
	}
}

func TestIntrospection(t *testing.T) {
	e := Open(dialect.MySQL)
	mustExec(t, e, `CREATE TABLE t0(c0 INT UNSIGNED, c1 TEXT) ENGINE = MEMORY`)
	mustExec(t, e, `CREATE INDEX i0 ON t0(c0)`)
	info, err := e.Describe("t0")
	if err != nil {
		t.Fatal(err)
	}
	if info.Engine != "MEMORY" || len(info.Columns) != 2 || !info.Columns[0].Unsigned {
		t.Errorf("describe: %+v", info)
	}
	if got := e.Indexes("t0"); len(got) != 1 || got[0] != "i0" {
		t.Errorf("indexes: %v", got)
	}
	if got := e.Tables(); len(got) != 1 {
		t.Errorf("tables: %v", got)
	}
}

func TestCoverageCounting(t *testing.T) {
	e := Open(dialect.SQLite)
	before := e.Coverage().Features()
	mustExec(t, e, `CREATE TABLE t0(c0); INSERT INTO t0(c0) VALUES (1); SELECT DISTINCT * FROM t0 ORDER BY c0 LIMIT 1`)
	if e.Coverage().Features() <= before {
		t.Error("coverage should grow with new features")
	}
}

func TestZeroFaultsNoFalseAlarms(t *testing.T) {
	// The full Listing-1 style workload on a correct engine returns
	// complete results for every dialect.
	for _, d := range dialect.All {
		e := Open(d)
		mustExec(t, e, `CREATE TABLE t0(c0 INT)`)
		mustExec(t, e, `INSERT INTO t0(c0) VALUES (0), (1), (NULL)`)
		if n := rowCount(t, e, `SELECT * FROM t0`); n != 3 {
			t.Errorf("[%s] %d rows, want 3", d, n)
		}
	}
}
