package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dialect"
)

// DISTINCT must treat 0.0 and -0.0 as duplicates on both the small
// (pairwise Compare) and large (hashed) paths — the hash key folds
// negative zero so the two paths cannot diverge with result-set size.
func TestDistinctNegativeZeroBothPaths(t *testing.T) {
	for _, n := range []int{4, 40} { // below and above the hashing cutoff
		e := Open(dialect.SQLite)
		if _, err := e.Exec("CREATE TABLE t0(c0 REAL)"); err != nil {
			t.Fatal(err)
		}
		var vals []string
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				vals = append(vals, "(0.0)", "(-0.0)")
			} else {
				vals = append(vals, fmt.Sprintf("(%d.5)", i))
			}
		}
		if _, err := e.Exec("INSERT INTO t0 VALUES " + strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
		res, err := e.Exec("SELECT DISTINCT c0 FROM t0")
		if err != nil {
			t.Fatal(err)
		}
		zeros := 0
		for _, row := range res.Rows {
			if row[0].IsNumeric() && row[0].AsFloat() == 0 {
				zeros++
			}
		}
		if zeros != 1 {
			t.Errorf("n=%d: DISTINCT kept %d zero rows, want 1 (0.0 and -0.0 must dedup)", n, zeros)
		}
	}
}
