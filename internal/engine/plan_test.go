package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/faults"
)

func execAll(t *testing.T, e *Engine, sqls ...string) {
	t.Helper()
	for _, sql := range sqls {
		mustExec(t, e, sql)
	}
}

func planFor(t *testing.T, e *Engine, q string) AccessPath {
	t.Helper()
	paths, err := e.PlanSQL(q)
	if err != nil {
		t.Fatalf("PlanSQL(%s): %v", q, err)
	}
	if len(paths) != 1 {
		t.Fatalf("PlanSQL(%s): %d paths, want 1", q, len(paths))
	}
	return paths[0]
}

// seedTable loads n rows with distinct integer keys and text payloads.
func seedTable(t *testing.T, e *Engine, n int) {
	t.Helper()
	execAll(t, e,
		"CREATE TABLE t0(c0 INT, c1 TEXT)",
		"CREATE INDEX i0 ON t0(c0)",
	)
	var b strings.Builder
	b.WriteString("INSERT INTO t0 VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 'v%d')", i, i)
	}
	mustExec(t, e, b.String())
}

func TestPlanPointLookup(t *testing.T) {
	for _, d := range dialect.All {
		e := Open(d)
		seedTable(t, e, 50)
		p := planFor(t, e, "SELECT * FROM t0 WHERE c0 = 7")
		if p.Kind != PathIndexEq || p.Index != "i0" || p.EstRows != 1 {
			t.Errorf("%s: plan = %s, want index-eq via i0", d, p.Detail())
		}
		if n := rowCount(t, e, "SELECT * FROM t0 WHERE c0 = 7"); n != 1 {
			t.Errorf("%s: got %d rows", d, n)
		}
	}
}

func TestPlanRangeScan(t *testing.T) {
	for _, d := range dialect.All {
		e := Open(d)
		seedTable(t, e, 50)
		q := "SELECT * FROM t0 WHERE c0 > 10 AND c0 <= 15"
		p := planFor(t, e, q)
		if p.Kind != PathIndexRange || p.EstRows != 5 {
			t.Errorf("%s: plan = %s, want index-range of 5 rows", d, p.Detail())
		}
		if n := rowCount(t, e, q); n != 5 {
			t.Errorf("%s: got %d rows, want 5", d, n)
		}
		// BETWEEN maps onto an inclusive range.
		p = planFor(t, e, "SELECT * FROM t0 WHERE c0 BETWEEN 10 AND 15")
		if p.Kind != PathIndexRange || p.EstRows != 6 {
			t.Errorf("%s: BETWEEN plan = %s, want 6-row range", d, p.Detail())
		}
	}
}

func TestPlanFullScanWhenUnselective(t *testing.T) {
	e := Open(dialect.SQLite)
	seedTable(t, e, 50)
	// Every row matches: scanning the heap is cheaper than probing the
	// index and fetching everything.
	p := planFor(t, e, "SELECT * FROM t0 WHERE c0 >= 0")
	if p.Kind != PathFullScan {
		t.Errorf("plan = %s, want full scan for unselective range", p.Detail())
	}
	// Non-sargable predicates never use an index.
	p = planFor(t, e, "SELECT * FROM t0 WHERE c0 + 1 = 3")
	if p.Kind != PathFullScan {
		t.Errorf("plan = %s, want full scan for non-sargable WHERE", p.Detail())
	}
}

func TestPlanCollationEligibility(t *testing.T) {
	e := Open(dialect.SQLite)
	execAll(t, e,
		"CREATE TABLE t0(c0 TEXT)",
		"CREATE INDEX i0 ON t0(c0)", // BINARY order
		"INSERT INTO t0 VALUES ('a'), ('A'), ('b'), ('B'), ('c'), ('C')",
	)
	// A NOCASE comparison cannot be served by a BINARY-ordered index.
	p := planFor(t, e, "SELECT * FROM t0 WHERE c0 COLLATE NOCASE = 'a'")
	if p.Kind != PathFullScan {
		t.Errorf("plan = %s, want full scan for collation mismatch", p.Detail())
	}
	if n := rowCount(t, e, "SELECT * FROM t0 WHERE c0 COLLATE NOCASE = 'a'"); n != 2 {
		t.Errorf("got %d rows, want 2", n)
	}
	// A BINARY comparison may use it.
	p = planFor(t, e, "SELECT * FROM t0 WHERE c0 = 'a'")
	if p.Kind != PathIndexEq {
		t.Errorf("plan = %s, want index-eq for binary comparison", p.Detail())
	}
}

func TestPlanMySQLMixedClassIneligible(t *testing.T) {
	e := Open(dialect.MySQL)
	execAll(t, e,
		"CREATE TABLE t0(c0 INT)",
		"CREATE INDEX i0 ON t0(c0)",
		// Non-numeric text survives INT affinity, so the raw index order
		// disagrees with MySQL's coercing comparisons.
		"INSERT INTO t0 VALUES (1), (2), ('abc'), (4), (5), (6)",
	)
	p := planFor(t, e, "SELECT * FROM t0 WHERE c0 = 4")
	if p.Kind != PathFullScan {
		t.Errorf("plan = %s, want full scan over mixed-class index", p.Detail())
	}
}

func TestPlanPostgresTextIndex(t *testing.T) {
	e := Open(dialect.Postgres)
	execAll(t, e,
		"CREATE TABLE t0(c0 TEXT)",
		"CREATE INDEX i0 ON t0(c0)",
		"INSERT INTO t0 VALUES ('a'), ('b'), ('c'), ('d'), ('e'), ('f')",
	)
	p := planFor(t, e, "SELECT * FROM t0 WHERE c0 = 'c'")
	if p.Kind != PathIndexEq {
		t.Errorf("plan = %s, want index-eq on text column", p.Detail())
	}
	q := "SELECT * FROM t0 WHERE c0 >= 'b' AND c0 < 'e'"
	if n := rowCount(t, e, q); n != 3 {
		t.Errorf("got %d rows, want 3", n)
	}
}

func TestExplainStatement(t *testing.T) {
	e := Open(dialect.SQLite)
	seedTable(t, e, 30)
	res, err := e.Exec("EXPLAIN SELECT * FROM t0 WHERE c0 = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].Display(), "SEARCH t0 USING INDEX i0") {
		t.Errorf("EXPLAIN = %v", res.Rows)
	}
	res, err = e.Exec("EXPLAIN QUERY PLAN SELECT * FROM t0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].Display(), "SCAN t0") {
		t.Errorf("EXPLAIN QUERY PLAN = %v", res.Rows)
	}
	// Compound selects report one line per member.
	res, err = e.Exec("EXPLAIN SELECT * FROM t0 WHERE c0 = 1 UNION SELECT * FROM t0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("compound EXPLAIN rows = %d, want 2", len(res.Rows))
	}
	if _, err := e.Exec("EXPLAIN CREATE TABLE t9(c0 INT)"); err == nil {
		t.Error("EXPLAIN of DDL should be unsupported")
	}
}

func TestWithoutPlannerForcesFullScan(t *testing.T) {
	e := Open(dialect.SQLite, WithoutPlanner())
	seedTable(t, e, 30)
	p := planFor(t, e, "SELECT * FROM t0 WHERE c0 = 3")
	if p.Kind != PathFullScan {
		t.Errorf("plan = %s, want full scan with planner disabled", p.Detail())
	}
	if n := rowCount(t, e, "SELECT * FROM t0 WHERE c0 = 3"); n != 1 {
		t.Errorf("got %d rows", n)
	}
}

func TestFaultRangeScanBoundary(t *testing.T) {
	e := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.RangeScanBoundary)))
	seedTable(t, e, 40)
	q := "SELECT * FROM t0 WHERE c0 >= 10 AND c0 <= 13"
	p := planFor(t, e, q)
	if p.Kind != PathIndexRange {
		t.Fatalf("plan = %s, want index-range", p.Detail())
	}
	// Inclusive bounds behave exclusively: rows 10 and 13 are dropped.
	if n := rowCount(t, e, q); n != 2 {
		t.Errorf("got %d rows, want 2 under boundary fault", n)
	}
	// The fault only distorts index ranges; a healthy engine returns 4.
	sane := Open(dialect.SQLite)
	seedTable(t, sane, 40)
	if n := rowCount(t, sane, q); n != 4 {
		t.Errorf("fault-free engine got %d rows, want 4", n)
	}
}

func TestFaultStaleIndexAfterUpdate(t *testing.T) {
	e := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.StaleIndexAfterUpdate)))
	seedTable(t, e, 40)
	mustExec(t, e, "UPDATE t0 SET c0 = 99 WHERE c0 = 7")
	// The updated row exists in the heap but has no index entry, so the
	// index-eq path misses it.
	if n := rowCount(t, e, "SELECT * FROM t0 WHERE c0 = 99"); n != 0 {
		t.Errorf("got %d rows via stale index, want 0", n)
	}
	// A full scan still sees it: the heap row is intact.
	base := rowCount(t, e, "SELECT * FROM t0 WHERE c0 + 0 = 99")
	if base != 1 {
		t.Errorf("heap row missing: got %d rows via full scan, want 1", base)
	}
}

func TestFaultPlannerCollationConfusion(t *testing.T) {
	e := Open(dialect.SQLite, WithFaults(faults.NewSet(faults.PlannerCollationConfusion)))
	execAll(t, e,
		"CREATE TABLE t0(c0 TEXT)",
		"CREATE INDEX i0 ON t0(c0)",
		"INSERT INTO t0 VALUES ('a'), ('A'), ('b'), ('B'), ('c'), ('C')",
	)
	q := "SELECT * FROM t0 WHERE c0 COLLATE NOCASE = 'a'"
	p := planFor(t, e, q)
	if p.Kind != PathIndexEq {
		t.Fatalf("plan = %s, want the confused index-eq path", p.Detail())
	}
	// The BINARY-ordered probe finds only the exact-case variant.
	if n := rowCount(t, e, q); n != 1 {
		t.Errorf("got %d rows, want 1 under collation confusion", n)
	}
}

func TestPlanInheritanceParentUnplanned(t *testing.T) {
	e := Open(dialect.Postgres)
	execAll(t, e,
		"CREATE TABLE t0(c0 INT)",
		"CREATE TABLE t1(c0 INT) INHERITS (t0)",
		"CREATE INDEX i0 ON t0(c0)",
		"INSERT INTO t0 VALUES (1), (2), (3), (4), (5), (6)",
		"INSERT INTO t1 VALUES (3)",
	)
	// Parent scans include child rows the parent's index has never seen:
	// the planner must stay on the full-scan path.
	p := planFor(t, e, "SELECT * FROM t0 WHERE c0 = 3")
	if p.Kind != PathFullScan {
		t.Errorf("plan = %s, want full scan on inheritance parent", p.Detail())
	}
	if n := rowCount(t, e, "SELECT * FROM t0 WHERE c0 = 3"); n != 2 {
		t.Errorf("got %d rows, want 2 (parent + child)", n)
	}
}
