// Package engine implements the embedded SQL engine substrate: catalog,
// storage, planner, and executor for the three dialect profiles. It is the
// "DBMS under test" of the reproduction; the injected bugs from
// internal/faults live at specific sites in this package and internal/eval.
//
// Query execution picks strategies by cost: index access paths (plan.go),
// hash/index/nested-loop joins (join.go), and streaming hash aggregation
// plus heap-based top-K ordering (agg.go), each ablatable down to its
// naive counterpart (WithoutHashJoin, WithoutHashAgg, ...) so campaigns
// can bisect a detection to the optimized path.
package engine

import (
	"fmt"
	"sync"

	"repro/internal/dialect"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/sqlval"
	"repro/internal/storage"
	"repro/internal/storage/pager"
	"repro/internal/xerr"
)

// Result is the outcome of one statement.
type Result struct {
	Columns      []string
	Rows         [][]sqlval.Value
	RowsAffected int
}

// tableState is the engine's per-table bookkeeping beyond catalog+heap.
type tableState struct {
	analyzed      bool  // ANALYZE has run (skip-scan trigger)
	hasStats      bool  // CREATE STATISTICS exists (pg)
	renamedColumn bool  // a column was renamed (crash-fault trigger)
	updateSeq     int64 // statement seq of the last UPDATE
	bigIntSeen    bool  // an inserted value reached int32 max (Listing 18)
	lastInsert    int64 // rowid of the most recent insert (visibility fault)

	// Listing 8 reproduction: after RENAME COLUMN, a double-quoted index
	// string hijacks the projection of column dqHijackCol.
	dqHijackCol int
	dqHijackVal string
}

// Engine is one in-memory database instance. It is safe for concurrent use;
// statements are serialized, like SQLite in its default mode.
type Engine struct {
	mu sync.Mutex

	d   dialect.Dialect
	fs  *faults.Set
	cat *schema.Catalog
	ev  *eval.Evaluator

	data  map[string]*storage.TableData // keyed by lower-case table name
	idx   map[string]*storage.IndexData // keyed by lower-case index name
	state map[string]*tableState

	seq               int64
	ddlEpoch          int64  // bumped on schema changes; guards data snapshots
	corrupt           string // non-empty: database is corrupted; message
	caseSensitiveLike bool
	noPlanner         bool // force full scans (differential-test baseline)
	noCompile         bool // force tree-walk evaluation (compiled-eval baseline)
	noHashJoin        bool // force nested-loop joins (hash-join baseline)
	noHashAgg         bool // force materialized grouping + full sorts (hash-agg baseline)
	skipIndexMaint    bool // stale-index fault: storeRow leaves indexes untouched
	globals           map[string]sqlval.Value

	// freeTables/freeIndexes recycle storage containers across Reset so a
	// pooled engine lifecycle reuses row-slice and entry-slab capacity
	// instead of reallocating per database.
	freeTables  []*storage.TableData
	freeIndexes []*storage.IndexData

	// progs caches compiled expression programs by AST node identity;
	// DDL-class statements clear it (see compiled.go).
	progs map[sqlast.Expr]*eval.Program

	// Durable-storage backend (nil for the default in-memory engine).
	// ddlLog holds the SQL of every successful DDL statement since the
	// last Reset — recovery replays it to rebuild the catalog; recovering
	// suppresses logging/persisting while the replay itself runs.
	pg         *pager.Pager
	vfs        pager.VFS
	dir        string
	ddlLog     []string
	recovering bool

	// Transaction machinery (txn.go): the default session, the sessions
	// with open transactions, which session's working state currently
	// occupies e.data (nil: the committed state), the parked committed
	// snapshot while a transaction's state is installed, and the commit
	// counter + log for backward validation.
	defConn   *Conn
	txns      map[*Conn]struct{}
	curOwn    *Conn
	commSnap  *Snapshot
	commitSeq int64
	commitLog []commitRecord

	cov *Coverage
}

// Option configures an Engine at Open time.
type Option func(*Engine)

// WithFaults enables an injected-bug set.
func WithFaults(fs *faults.Set) Option {
	return func(e *Engine) { e.fs = fs }
}

// WithoutPlanner disables index access paths: every query runs as a full
// table scan. The scan-vs-index differential suite uses this as its
// ground-truth baseline.
func WithoutPlanner() Option {
	return func(e *Engine) { e.noPlanner = true }
}

// WithoutCompiledEval disables the compiled-expression fast path: every
// clause evaluates through the tree-walk interpreter. This is the
// `-no-compile` escape hatch for A/B runs and the baseline half of the
// compiled-vs-interpreted differential suites.
func WithoutCompiledEval() Option {
	return func(e *Engine) { e.noCompile = true }
}

// WithoutHashJoin disables join-strategy selection: every join level runs
// as a nested loop. This is the `hashjoin=off` escape hatch for A/B runs
// and the baseline half of the hash-vs-nested differential suites.
func WithoutHashJoin() Option {
	return func(e *Engine) { e.noHashJoin = true }
}

// WithoutHashAgg disables the streaming aggregation executor and the top-K
// ordering path: GROUP BY resolves groups by the linear materialized scan,
// aggregates re-iterate retained group combos, and ORDER BY + LIMIT always
// sorts the full result. This is the `hashagg=off` escape hatch for A/B
// runs and the baseline half of the hash-agg differential suites.
func WithoutHashAgg() Option {
	return func(e *Engine) { e.noHashAgg = true }
}

// Open creates an empty database for the dialect.
func Open(d dialect.Dialect, opts ...Option) *Engine {
	e := &Engine{
		d:       d,
		cat:     schema.NewCatalog(),
		data:    map[string]*storage.TableData{},
		idx:     map[string]*storage.IndexData{},
		state:   map[string]*tableState{},
		globals: map[string]sqlval.Value{},
		progs:   map[sqlast.Expr]*eval.Program{},
		txns:    map[*Conn]struct{}{},
		cov:     newCoverage(),
	}
	for _, o := range opts {
		o(e)
	}
	e.ev = &eval.Evaluator{D: d, Faults: e.fs}
	e.defConn = &Conn{e: e}
	return e
}

// Dialect reports the engine's dialect profile.
func (e *Engine) Dialect() dialect.Dialect { return e.d }

// Faults exposes the enabled fault set (nil when none).
func (e *Engine) Faults() *faults.Set { return e.fs }

// crashPanic is the payload of a simulated SEGFAULT.
type crashPanic struct{ site string }

// Exec parses and executes src (one or more ';'-separated statements) and
// returns the last statement's result. A simulated crash is returned as an
// error with xerr.CodeCrash — the analogue of the DBMS process dying.
func (e *Engine) Exec(src string) (*Result, error) {
	stmts, err := sqlparse.Parse(src, e.d)
	if err != nil {
		return nil, xerr.New(xerr.CodeSyntax, "%v", err)
	}
	var res *Result
	for _, st := range stmts {
		res, err = e.ExecStmt(st)
		if err != nil {
			return nil, err
		}
	}
	if res == nil {
		res = &Result{}
	}
	return res, nil
}

// Query is Exec restricted to a single SELECT.
func (e *Engine) Query(src string) (*Result, error) {
	return e.Exec(src)
}

// ExecStmt executes one parsed statement on the engine's default session.
func (e *Engine) ExecStmt(st sqlast.Stmt) (*Result, error) {
	return e.defConn.ExecStmt(st)
}

// ExecStmt executes one parsed statement on this session.
func (c *Conn) ExecStmt(st sqlast.Stmt) (res *Result, err error) {
	e := c.e
	e.mu.Lock()
	defer e.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			if cp, ok := r.(crashPanic); ok {
				res = nil
				err = xerr.New(xerr.CodeCrash, "SIGSEGV at %s (simulated)", cp.site)
				// The simulated SEGFAULT may have left a partial mutation:
				// bring the durable image back in line with memory. Inside
				// an open transaction the damage is staged, not durable.
				if e.pg != nil && mutating(st) && c.txn == nil {
					if perr := e.persistLocked(); perr != nil {
						err = perr
					}
				}
				return
			}
			panic(r)
		}
	}()
	e.seq++
	e.cov.hit("stmt." + st.Kind())
	if len(e.progs) > 0 && invalidatesPrograms(st) {
		clear(e.progs)
	}
	if tx, ok := st.(*sqlast.Txn); ok {
		return e.execTxnLocked(c, tx)
	}
	// A transaction whose snapshot predates a concurrent schema change
	// cannot be switched back in: abort it (its next statement fails).
	if c.txn != nil && c.txn.epoch != e.ddlEpoch {
		e.abortTxnLocked(c, false)
		return nil, xerr.New(xerr.CodeConflict, "transaction aborted: schema changed by a concurrent session")
	}
	// Schema changes are not transactional: DDL inside an open
	// transaction commits it first (MySQL-style implicit commit).
	if c.txn != nil && isDDL(st) {
		if cerr := e.commitTxnLocked(c); cerr != nil {
			return nil, cerr
		}
	}
	// Install this session's state — unless the dirty-read-leak fault is
	// injected and a read-only auto-commit statement arrives while a
	// transaction's uncommitted working state is installed: the read then
	// sees it (a dirty read).
	if !(c.txn == nil && e.curOwn != nil && !mutating(st) && e.fs.Has(faults.TxnDirtyReadLeak)) {
		e.installLocked(owner(c))
	}
	if isDDL(st) {
		// Schema shape may change: invalidate outstanding data snapshots
		// (conservatively, even if the statement goes on to fail).
		e.ddlEpoch++
	}

	// A corrupted database fails every subsequent data statement, like
	// SQLite's persistent "database disk image is malformed".
	if e.corrupt != "" {
		return nil, xerr.New(xerr.CodeCorrupt, "%s", e.corrupt)
	}

	// Write/read sets only matter while transactions are open; the
	// single-session fast path skips the bookkeeping entirely.
	var wt map[string]struct{}
	if c.txn != nil || len(e.txns) > 0 {
		wt = writeTargets(st)
	}
	if c.txn != nil {
		// First-writer-wins: a table in another open transaction's write
		// set is locked against this one (skipped under the lost-update
		// fault, which also skips commit-time write validation).
		if len(wt) > 0 && !e.fs.Has(faults.TxnLostUpdate) {
			for other := range e.txns {
				if other == c {
					continue
				}
				if w := overlaps(other.txn.writes, wt); w != "" {
					return nil, xerr.New(xerr.CodeBusy, "table %s is write-locked by a concurrent transaction", displayWrite(w))
				}
			}
		}
		// Record before executing: a failed statement may leave partial
		// effects, and a simulated crash unwinds past the post-exec path.
		for w := range wt {
			c.txn.writes[w] = struct{}{}
		}
		for r := range e.readTargetsLocked(st) {
			c.txn.reads[r] = struct{}{}
		}
	}

	res, err = e.exec1(st)

	if c.txn != nil {
		return res, err
	}
	if mutating(st) && len(e.txns) > 0 {
		e.noteAutoCommitLocked(wt)
	}
	// Durable engines persist after every mutating auto-commit statement —
	// including failed ones, whose partial effects (multi-row INSERT dying
	// midway) are real in-memory state the durable image must track. A
	// persist failure (simulated power cut, dead pager) supersedes the
	// statement's own outcome: the durable state is what broke.
	if e.pg != nil && mutating(st) {
		if err == nil && isDDL(st) {
			e.ddlLog = append(e.ddlLog, sqlast.SQL(st, e.d))
		}
		if perr := e.persistLocked(); perr != nil {
			res, err = nil, perr
		}
	}
	return res, err
}

// exec1 dispatches one statement with e.mu held. Durable-storage recovery
// calls it directly to replay the DDL log without re-persisting.
func (e *Engine) exec1(st sqlast.Stmt) (*Result, error) {
	switch n := st.(type) {
	case *sqlast.CreateTable:
		return e.createTable(n)
	case *sqlast.CreateIndex:
		return e.createIndex(n)
	case *sqlast.CreateView:
		return e.createView(n)
	case *sqlast.CreateStats:
		return e.createStats(n)
	case *sqlast.Insert:
		return e.insert(n)
	case *sqlast.Update:
		return e.update(n)
	case *sqlast.Delete:
		return e.delete(n)
	case *sqlast.AlterTable:
		return e.alterTable(n)
	case *sqlast.Drop:
		return e.drop(n)
	case *sqlast.Select:
		return e.execSelect(n)
	case *sqlast.Compound:
		return e.execCompound(n)
	case *sqlast.Explain:
		return e.execExplain(n)
	case *sqlast.Maintenance:
		return e.maintenance(n)
	case *sqlast.SetOption:
		return e.setOption(n)
	default:
		return nil, xerr.New(xerr.CodeUnsupported, "unsupported statement %T", st)
	}
}

// table resolves a base table (not a view).
func (e *Engine) table(name string) (*schema.Table, *storage.TableData, error) {
	t, ok := e.cat.Table(name)
	if !ok || t.IsView {
		return nil, nil, xerr.New(xerr.CodeNoObject, "no such table: %s", name)
	}
	return t, e.data[lower(t.Name)], nil
}

func (e *Engine) tableState(name string) *tableState {
	k := lower(name)
	ts, ok := e.state[k]
	if !ok {
		ts = &tableState{dqHijackCol: -1}
		e.state[k] = ts
	}
	return ts
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// Tables lists base table names (introspection for PQS, like
// sqlite_master / information_schema.tables).
func (e *Engine) Tables() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.TableNames()
}

// Views lists view names.
func (e *Engine) Views() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.ViewNames()
}

// Describe returns a table's introspection record.
func (e *Engine) Describe(name string) (schema.TableInfo, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.cat.Table(name)
	if !ok {
		return schema.TableInfo{}, xerr.New(xerr.CodeNoObject, "no such table: %s", name)
	}
	return schema.Describe(t), nil
}

// Indexes lists index names on a table.
func (e *Engine) Indexes(table string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for _, ix := range e.cat.IndexesOn(table) {
		out = append(out, ix.Name)
	}
	return out
}

// RawRows returns a copy of a table's stored rows, bypassing the query
// path entirely. PQS uses this for pivot-row selection (step 2 of the
// paper): the tester knows which rows it inserted, so pivot selection must
// reflect ground truth rather than the possibly-buggy SELECT path.
func (e *Engine) RawRows(table string) [][]sqlval.Value {
	e.mu.Lock()
	defer e.mu.Unlock()
	td, ok := e.data[lower(table)]
	if !ok {
		return nil
	}
	var out [][]sqlval.Value
	for _, r := range td.Rows() {
		vals := make([]sqlval.Value, len(r.Vals))
		copy(vals, r.Vals)
		out = append(out, vals)
	}
	return out
}

// RowCount reports a table's live row count (0 for unknown tables).
func (e *Engine) RowCount(table string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	td, ok := e.data[lower(table)]
	if !ok {
		return 0
	}
	return td.Len()
}

// Corrupted reports whether the database is marked corrupt and why.
func (e *Engine) Corrupted() (bool, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.corrupt != "", e.corrupt
}

// Coverage returns the feature-coverage counters (Table 4 reproduction).
func (e *Engine) Coverage() *Coverage { return e.cov }

// constEval evaluates an expression with no row context.
func (e *Engine) constEval(x sqlast.Expr) (sqlval.Value, error) {
	return e.ev.Eval(x, eval.EmptyEnv{})
}

// Coverage counts distinct engine features exercised, standing in for the
// line/branch coverage of Table 4 (gcov is unavailable for our own
// substrate while it runs).
type Coverage struct {
	mu   sync.Mutex
	hits map[string]int
}

func newCoverage() *Coverage { return &Coverage{hits: map[string]int{}} }

func (c *Coverage) hit(feature string) {
	c.mu.Lock()
	c.hits[feature]++
	c.mu.Unlock()
}

// Features returns the number of distinct features exercised.
func (c *Coverage) Features() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hits)
}

// Snapshot copies the counters.
func (c *Coverage) Snapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.hits))
	for k, v := range c.hits {
		out[k] = v
	}
	return out
}

// String summarizes coverage.
func (c *Coverage) String() string {
	return fmt.Sprintf("coverage{%d features}", c.Features())
}
