package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dialect"
	"repro/internal/sqlval"
)

// Property: after an arbitrary DML sequence on an indexed table, an
// index-served equality lookup returns exactly the rows a full scan
// would — the planner's index path must be invisible in results. This is
// the invariant every index fault deliberately breaks; with no faults it
// must hold unconditionally.
func TestIndexScanMatchesFullScanQuick(t *testing.T) {
	probeVals := []string{"0", "1", "-1", "'a'", "'A'", "''", "' '", "2.5", "NULL", "'abc'"}
	f := func(seed int64, collPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		coll := []string{"", " COLLATE NOCASE", " COLLATE RTRIM"}[collPick%3]
		e := Open(dialect.SQLite)
		if _, err := e.Exec(fmt.Sprintf("CREATE TABLE t0(c0%s, c1)", coll)); err != nil {
			return false
		}
		if _, err := e.Exec("CREATE INDEX i0 ON t0(c0)"); err != nil {
			return false
		}
		// Random DML sequence.
		for op := 0; op < 25; op++ {
			v := probeVals[rng.Intn(len(probeVals))]
			w := probeVals[rng.Intn(len(probeVals))]
			var sql string
			switch rng.Intn(5) {
			case 0, 1, 2:
				sql = fmt.Sprintf("INSERT INTO t0(c0, c1) VALUES (%s, %s)", v, w)
			case 3:
				sql = fmt.Sprintf("UPDATE t0 SET c0 = %s WHERE c1 = %s", v, w)
			default:
				sql = fmt.Sprintf("DELETE FROM t0 WHERE c0 = %s", v)
			}
			if _, err := e.Exec(sql); err != nil {
				return false
			}
		}
		// Every probe: the indexed equality path must agree with a
		// filter over a projection that cannot use the index.
		for _, v := range probeVals {
			if v == "NULL" {
				continue
			}
			indexed, err := e.Exec(fmt.Sprintf("SELECT c0 FROM t0 WHERE c0 = %s", v))
			if err != nil {
				return false
			}
			// The +0-style rewrite is not supported; instead compare
			// against an OR-wrapped condition, which the planner does
			// not serve from an index.
			full, err := e.Exec(fmt.Sprintf("SELECT c0 FROM t0 WHERE (c0 = %s) AND (1 = 1)", v))
			if err != nil {
				return false
			}
			if len(indexed.Rows) != len(full.Rows) {
				t.Logf("seed %d coll %q probe %s: indexed %d rows, full %d rows",
					seed, coll, v, len(indexed.Rows), len(full.Rows))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: REINDEX and VACUUM never change query results on a correct
// engine.
func TestMaintenanceIsInvisibleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := Open(dialect.SQLite)
		if _, err := e.Exec("CREATE TABLE t0(c0, c1 TEXT COLLATE NOCASE); CREATE INDEX i0 ON t0(c1)"); err != nil {
			return false
		}
		for i := 0; i < 15; i++ {
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t0(c0, c1) VALUES (%d, '%c')", rng.Intn(8), 'a'+rune(rng.Intn(4)))); err != nil {
				return false
			}
		}
		query := "SELECT c0, c1 FROM t0 WHERE c1 = 'A' ORDER BY c0"
		before, err := e.Exec(query)
		if err != nil {
			return false
		}
		if _, err := e.Exec("REINDEX; VACUUM; ANALYZE"); err != nil {
			return false
		}
		after, err := e.Exec(query)
		if err != nil {
			return false
		}
		if len(before.Rows) != len(after.Rows) {
			return false
		}
		for i := range before.Rows {
			for j := range before.Rows[i] {
				if !before.Rows[i][j].Equal(after.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: DISTINCT never returns duplicates, and never drops a distinct
// value, for random value mixes.
func TestDistinctSetSemanticsQuick(t *testing.T) {
	f := func(vals []int8) bool {
		if len(vals) == 0 {
			return true
		}
		e := Open(dialect.SQLite)
		if _, err := e.Exec("CREATE TABLE t0(c0)"); err != nil {
			return false
		}
		distinct := map[int8]bool{}
		for _, v := range vals {
			distinct[v] = true
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t0(c0) VALUES (%d)", v)); err != nil {
				return false
			}
		}
		res, err := e.Exec("SELECT DISTINCT c0 FROM t0")
		if err != nil {
			return false
		}
		if len(res.Rows) != len(distinct) {
			return false
		}
		seen := map[int64]bool{}
		for _, row := range res.Rows {
			k := row[0].Int64()
			if seen[k] || !distinct[int8(k)] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: sqlval ordering drives ORDER BY totally — sorting is stable
// and monotone for any inserted values.
func TestOrderBySortedQuick(t *testing.T) {
	f := func(ints []int16) bool {
		e := Open(dialect.SQLite)
		if _, err := e.Exec("CREATE TABLE t0(c0)"); err != nil {
			return false
		}
		for _, v := range ints {
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t0(c0) VALUES (%d)", v)); err != nil {
				return false
			}
		}
		res, err := e.Exec("SELECT c0 FROM t0 ORDER BY c0")
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if sqlval.Compare(res.Rows[i-1][0], res.Rows[i][0], sqlval.CollBinary) > 0 {
				return false
			}
		}
		return len(res.Rows) == len(ints)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
