package engine

// Transaction machinery: BEGIN/COMMIT/ROLLBACK with snapshot-based
// isolation over the copy-on-write storage snapshots, validated at commit
// with table-granularity optimistic concurrency control.
//
// Model. Each Conn is one client session. A session outside a transaction
// auto-commits every statement against the committed state. BEGIN adopts
// the committed state as the transaction's private working state; its
// statements stage effects there, invisible to other sessions. Because the
// engine executes one statement at a time, only one state is "installed"
// in e.data at any moment — the others are parked as COW snapshots
// (cheap: a row-pointer slice copy per table) and swapped in lazily when
// their session's next statement arrives.
//
// Concurrency control is first-writer-wins plus backward validation:
//
//   - While a transaction holds a table in its write set, another open
//     transaction writing that table fails the statement with CodeBusy
//     (the analogue of SQLITE_BUSY on a reserved lock).
//   - At COMMIT, the transaction aborts with CodeConflict if any commit
//     since its BEGIN wrote a table in its read or write set
//     (first-committer-wins). Validating reads as well as writes makes
//     the engine serializable, with commit order as the witness serial
//     order — not merely snapshot-isolated, which would admit write skew.
//
// COMMIT merges only the transaction's written tables (heap, indexes,
// bookkeeping) into the committed state, so concurrent commits to
// disjoint tables compose. It is also the durability boundary: a durable
// engine persists at auto-commit statements and at COMMIT, never for
// statements inside an open transaction — a crash loses open transactions.
//
// Schema changes are not transactional (MySQL semantics): DDL inside an
// open transaction implicitly commits it first, and DDL from another
// session marks every open transaction's snapshot stale, aborting it with
// CodeConflict at its next statement.
//
// Four injectable isolation faults live here (see internal/faults):
// dirty-read-leak, lost-update, snapshot-skew-commit, and
// rollback-restore-miss. All are dormant unless sessions overlap inside
// open transactions, which only the serializability oracle generates.

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/xerr"
)

// optionsWrite is the pseudo-table recording that a transaction changed
// session/global options; allWrite marks maintenance statements that touch
// every table. Both start with a byte no real table name can.
const (
	optionsWrite = "\x00options"
	allWrite     = "\x00*"
)

// Conn is one client session of an Engine. The zero session auto-commits
// every statement; Begin/Commit/Rollback statements executed through it
// manage a private transaction. All methods serialize on the engine's
// mutex, like Engine itself.
type Conn struct {
	e   *Engine
	txn *connTxn // nil outside a transaction (guarded by e.mu)
}

// connTxn is the state of one open transaction.
type connTxn struct {
	beginSeq int64 // commitSeq at BEGIN: validation horizon
	epoch    int64 // ddlEpoch at BEGIN: schema-stability guard
	// work parks the transaction's working state while another session's
	// is installed; nil while this transaction's state is installed.
	work   *Snapshot
	reads  map[string]struct{} // lower-cased tables read
	writes map[string]struct{} // lower-cased tables written
}

// commitRecord is one entry of the commit log used for backward
// validation; the log is retained only while transactions are open.
type commitRecord struct {
	seq    int64
	writes map[string]struct{}
}

// NewConn opens an additional session on the engine. Sessions share the
// committed state and the statement lock; each can hold one open
// transaction.
func (e *Engine) NewConn() *Conn { return &Conn{e: e} }

// Exec parses and executes src on this session, like Engine.Exec.
func (c *Conn) Exec(src string) (*Result, error) {
	stmts, err := sqlparse.Parse(src, c.e.d)
	if err != nil {
		return nil, xerr.New(xerr.CodeSyntax, "%v", err)
	}
	var res *Result
	for _, st := range stmts {
		res, err = c.ExecStmt(st)
		if err != nil {
			return nil, err
		}
	}
	if res == nil {
		res = &Result{}
	}
	return res, nil
}

// InTxn reports whether the session has an open transaction.
func (c *Conn) InTxn() bool {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	return c.txn != nil
}

// Close rolls back the session's open transaction, if any. The session
// must not be used afterwards.
func (c *Conn) Close() error {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	if c.txn != nil {
		c.e.abortTxnLocked(c, false)
	}
	return nil
}

// execTxnLocked executes BEGIN/COMMIT/ROLLBACK (e.mu held).
func (e *Engine) execTxnLocked(c *Conn, tx *sqlast.Txn) (*Result, error) {
	switch tx.Op {
	case sqlast.TxnBegin:
		if c.txn != nil {
			return nil, xerr.New(xerr.CodeTxnState, "cannot start a transaction within a transaction")
		}
		e.installLocked(nil) // park any other session's working state
		c.txn = &connTxn{
			beginSeq: e.commitSeq,
			epoch:    e.ddlEpoch,
			reads:    map[string]struct{}{},
			writes:   map[string]struct{}{},
		}
		e.txns[c] = struct{}{}
		// The installed committed state doubles as the transaction's
		// working state from here; park a committed snapshot for everyone
		// else.
		e.commSnap = e.snapshotLocked()
		e.curOwn = c
		return &Result{}, nil
	case sqlast.TxnCommit:
		if c.txn == nil {
			return nil, xerr.New(xerr.CodeTxnState, "cannot commit - no transaction is active")
		}
		if c.txn.epoch != e.ddlEpoch {
			e.abortTxnLocked(c, false)
			return nil, xerr.New(xerr.CodeConflict, "transaction aborted: schema changed by a concurrent session")
		}
		if err := e.commitTxnLocked(c); err != nil {
			return nil, err
		}
		return &Result{}, nil
	default: // TxnRollback
		if c.txn == nil {
			return nil, xerr.New(xerr.CodeTxnState, "cannot rollback - no transaction is active")
		}
		e.abortTxnLocked(c, true)
		return &Result{}, nil
	}
}

// installLocked makes `want`'s working state (nil: the committed state)
// the one installed in e.data, parking the current occupant as a COW
// snapshot. The global statement counter survives the swap.
func (e *Engine) installLocked(want *Conn) {
	if e.curOwn == want {
		return
	}
	parked := e.snapshotLocked()
	seq := e.seq
	if e.curOwn == nil {
		e.commSnap = parked
	} else {
		e.curOwn.txn.work = parked
	}
	var target *Snapshot
	if want == nil {
		target = e.commSnap
		e.commSnap = nil
	} else {
		target = want.txn.work
		want.txn.work = nil
	}
	// Cannot be stale: DDL only runs against the committed state, so the
	// schema cannot change while any transaction snapshot is parked
	// un-aborted; a failure here means that invariant broke.
	if err := e.restoreLocked(target); err != nil {
		e.corrupt = "transaction state switch failed: " + err.Error()
	}
	e.seq = seq
	e.curOwn = want
}

// owner returns the conn whose state must be installed to run c's next
// statement: c itself inside a transaction, the committed state otherwise.
func owner(c *Conn) *Conn {
	if c.txn != nil {
		return c
	}
	return nil
}

// commitTxnLocked validates and commits c's transaction: merge its written
// tables into the committed state, record the commit for later
// validators, and persist (the durability boundary). On conflict the
// transaction aborts and CodeConflict is returned.
func (e *Engine) commitTxnLocked(c *Conn) error {
	t := c.txn
	if conflict := e.validateTxnLocked(t); conflict != "" {
		e.abortTxnLocked(c, false)
		return xerr.New(xerr.CodeConflict, "cannot commit: %s", conflict)
	}
	var work *Snapshot
	if e.curOwn == c {
		work = e.snapshotLocked()
	}
	e.installLocked(nil)
	if work == nil {
		work = t.work // was parked
	}
	c.txn = nil
	delete(e.txns, c)
	e.mergeWorkLocked(t, work)
	e.commitSeq++
	if len(e.txns) > 0 {
		e.commitLog = append(e.commitLog, commitRecord{seq: e.commitSeq, writes: t.writes})
	} else {
		e.commitLog = e.commitLog[:0]
	}
	if e.pg != nil {
		return e.persistLocked()
	}
	return nil
}

// validateTxnLocked is backward validation: any commit after the
// transaction began that wrote a table this transaction wrote (lost
// update) or read (snapshot skew) invalidates it. The two injectable
// faults each disable one half.
func (e *Engine) validateTxnLocked(t *connTxn) string {
	wwCheck := !e.fs.Has(faults.TxnLostUpdate)
	rwCheck := !e.fs.Has(faults.TxnSnapshotSkewCommit)
	for _, rec := range e.commitLog {
		if rec.seq <= t.beginSeq {
			continue
		}
		if wwCheck {
			if w := overlaps(rec.writes, t.writes); w != "" {
				return "concurrent commit wrote table " + displayWrite(w) + " (write-write conflict)"
			}
		}
		if rwCheck {
			if w := overlaps(rec.writes, t.reads); w != "" {
				return "concurrent commit wrote table " + displayWrite(w) + " read by this transaction"
			}
		}
	}
	return ""
}

// overlaps returns a member witnessing a non-empty intersection of two
// write/read sets, honouring the allWrite wildcard on either side.
func overlaps(a, b map[string]struct{}) string {
	if len(a) == 0 || len(b) == 0 {
		return ""
	}
	if _, ok := a[allWrite]; ok {
		return anyOf(b)
	}
	if _, ok := b[allWrite]; ok {
		return anyOf(a)
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	for k := range small {
		if _, ok := large[k]; ok {
			return k
		}
	}
	return ""
}

func anyOf(m map[string]struct{}) string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic witness
	return names[0]
}

func displayWrite(w string) string {
	switch w {
	case optionsWrite:
		return "(options)"
	case allWrite:
		return "(all)"
	}
	return w
}

// mergeWorkLocked installs the transaction's written tables (heap, index
// entries, per-table bookkeeping) from its working snapshot into the
// currently-installed committed state. Unwritten tables keep their
// committed content, so commits to disjoint tables compose.
func (e *Engine) mergeWorkLocked(t *connTxn, work *Snapshot) {
	if _, all := t.writes[allWrite]; all {
		seq := e.seq
		if err := e.restoreLocked(work); err != nil {
			e.corrupt = "transaction commit failed: " + err.Error()
		}
		e.seq = seq
		return
	}
	for w := range t.writes {
		if w == optionsWrite {
			clear(e.globals)
			for k, v := range work.globals {
				e.globals[k] = v
			}
			e.caseSensitiveLike = work.csLike
			e.ev.CaseSensitiveLike = work.csLike
			continue
		}
		td := e.data[w]
		ws := work.tables[w]
		if td == nil || ws == nil {
			continue // target vanished: DDL implicit-commits, so only a failed write on a missing table
		}
		td.Restore(ws)
		for _, ix := range e.cat.IndexesOn(w) {
			if ixd := e.idx[lower(ix.Name)]; ixd != nil {
				if isnap := work.indexes[lower(ix.Name)]; isnap != nil {
					ixd.Restore(isnap)
				}
			}
		}
		if ts, ok := work.state[w]; ok {
			cp := ts
			e.state[w] = &cp
		} else {
			delete(e.state, w)
		}
	}
	if work.corrupt != "" {
		e.corrupt = work.corrupt
	}
	clear(e.progs)
}

// abortTxnLocked discards c's transaction and reinstates the committed
// state. explicitRollback distinguishes a client ROLLBACK (the
// rollback-restore-miss fault site) from engine-initiated aborts.
func (e *Engine) abortTxnLocked(c *Conn, explicitRollback bool) {
	t := c.txn
	// Injected fault: ROLLBACK leaks the working version of the first
	// (lexicographically) written table into committed state. Only
	// observable when the aborting transaction's state is reachable —
	// installed, or parked behind the committed state.
	var leakName string
	var leakTab *Snapshot
	if explicitRollback && e.fs.Has(faults.TxnRollbackRestoreMiss) {
		if name := firstRealWrite(t.writes); name != "" {
			switch {
			case e.curOwn == c:
				leakName, leakTab = name, e.snapshotLocked()
			case e.curOwn == nil && t.work != nil:
				leakName, leakTab = name, t.work
			}
		}
	}
	if e.curOwn == c {
		seq := e.seq
		// Cannot be stale: see installLocked.
		if err := e.restoreLocked(e.commSnap); err != nil {
			e.corrupt = "transaction rollback failed: " + err.Error()
		}
		e.seq = seq
		e.curOwn = nil
		e.commSnap = nil
	}
	if leakTab != nil {
		if td := e.data[leakName]; td != nil {
			if tsnap := leakTab.tables[leakName]; tsnap != nil {
				td.Restore(tsnap)
			}
		}
	}
	c.txn = nil
	delete(e.txns, c)
	if len(e.txns) == 0 {
		e.commitLog = e.commitLog[:0]
	}
}

// firstRealWrite picks the lexicographically-first real table (not a
// pseudo write marker) from a write set.
func firstRealWrite(writes map[string]struct{}) string {
	names := make([]string, 0, len(writes))
	for w := range writes {
		if w != optionsWrite && w != allWrite {
			names = append(names, w)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[0]
}

// abortAllTxnsLocked discards every open transaction and reinstates the
// committed state. Reset, Restore, and Snapshot call it: all three are
// statement-boundary operations on committed state.
func (e *Engine) abortAllTxnsLocked() {
	if e.curOwn != nil {
		seq := e.seq
		if e.commSnap != nil {
			// Cannot be stale: see installLocked.
			if err := e.restoreLocked(e.commSnap); err != nil {
				e.corrupt = "transaction abort failed: " + err.Error()
			}
		}
		e.seq = seq
		e.curOwn = nil
		e.commSnap = nil
	}
	for c := range e.txns {
		c.txn = nil
	}
	clear(e.txns)
	e.commitLog = e.commitLog[:0]
}

// noteAutoCommitLocked records an auto-committed mutating statement in the
// commit log so open transactions validate against it. With no open
// transactions the log stays empty.
func (e *Engine) noteAutoCommitLocked(writes map[string]struct{}) {
	e.commitSeq++
	if len(e.txns) == 0 {
		if len(e.commitLog) > 0 {
			e.commitLog = e.commitLog[:0]
		}
		return
	}
	if len(writes) > 0 {
		e.commitLog = append(e.commitLog, commitRecord{seq: e.commitSeq, writes: writes})
	}
}

// writeTargets returns the lower-cased tables a statement writes (nil for
// read-only statements). Maintenance without a table target and
// session-option changes use pseudo markers.
func writeTargets(st sqlast.Stmt) map[string]struct{} {
	one := func(name string) map[string]struct{} {
		return map[string]struct{}{lower(name): {}}
	}
	switch n := st.(type) {
	case *sqlast.Insert:
		return one(n.Table)
	case *sqlast.Update:
		return one(n.Table)
	case *sqlast.Delete:
		return one(n.Table)
	case *sqlast.Maintenance:
		if n.Table != "" {
			return one(n.Table)
		}
		return map[string]struct{}{allWrite: {}}
	case *sqlast.SetOption:
		return map[string]struct{}{optionsWrite: {}}
	}
	return nil
}

// readTargetsLocked returns the lower-cased tables a statement reads.
// UPDATE/DELETE read the table they filter; a view in FROM conservatively
// reads every table (view definitions can reference anything).
func (e *Engine) readTargetsLocked(st sqlast.Stmt) map[string]struct{} {
	var out map[string]struct{}
	viaView := false
	add := func(name string) {
		k := lower(name)
		if t, ok := e.cat.Table(k); ok && t.IsView {
			viaView = true
			return
		}
		if out == nil {
			out = map[string]struct{}{}
		}
		out[k] = struct{}{}
	}
	var addSelect func(sel *sqlast.Select)
	addSelect = func(sel *sqlast.Select) {
		for _, tr := range sel.From {
			add(tr.Name)
		}
		for _, j := range sel.Joins {
			add(j.Table.Name)
		}
	}
	switch n := st.(type) {
	case *sqlast.Select:
		addSelect(n)
	case *sqlast.Compound:
		for _, sel := range n.Selects {
			addSelect(sel)
		}
	case *sqlast.Update:
		add(n.Table)
	case *sqlast.Delete:
		add(n.Table)
	}
	if viaView {
		// Conservative: a view read depends on its whole definition.
		if out == nil {
			out = map[string]struct{}{}
		}
		for _, name := range e.cat.TableNames() {
			out[lower(name)] = struct{}{}
		}
	}
	return out
}
