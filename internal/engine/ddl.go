package engine

import (
	"strings"

	"repro/internal/dialect"
	"repro/internal/faults"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlval"
	"repro/internal/storage"
	"repro/internal/xerr"
)

var validEngines = map[string]bool{"INNODB": true, "MEMORY": true, "CSV": true, "MYISAM": true}

func (e *Engine) createTable(n *sqlast.CreateTable) (*Result, error) {
	if _, exists := e.cat.Table(n.Name); exists {
		if n.IfNotExists {
			return &Result{}, nil
		}
		return nil, xerr.New(xerr.CodeDuplicateObject, "table %s already exists", n.Name)
	}
	if len(n.Columns) == 0 {
		return nil, xerr.New(xerr.CodeSyntax, "table %s has no columns", n.Name)
	}
	if n.Engine != "" {
		if e.d != dialect.MySQL {
			return nil, xerr.New(xerr.CodeUnsupported, "ENGINE clause is MySQL-only")
		}
		if !validEngines[n.Engine] {
			return nil, xerr.New(xerr.CodeOption, "unknown storage engine %q", n.Engine)
		}
	}
	if n.WithoutRowid && e.d != dialect.SQLite {
		return nil, xerr.New(xerr.CodeUnsupported, "WITHOUT ROWID is SQLite-only")
	}
	if n.Inherits != "" && e.d != dialect.Postgres {
		return nil, xerr.New(xerr.CodeUnsupported, "INHERITS is PostgreSQL-only")
	}

	t := &schema.Table{
		Name:         n.Name,
		WithoutRowid: n.WithoutRowid,
		Engine:       n.Engine,
	}
	if e.d == dialect.MySQL && t.Engine == "" {
		t.Engine = "INNODB"
	}

	// Postgres inheritance: the child starts from the parent's columns
	// with constraints stripped (PK/UNIQUE are not inherited — the root
	// cause of Listing 15), then merges its own definitions.
	if n.Inherits != "" {
		parent, ok := e.cat.Table(n.Inherits)
		if !ok || parent.IsView {
			return nil, xerr.New(xerr.CodeNoObject, "no such table: %s", n.Inherits)
		}
		t.Parent = parent.Name
		for _, pc := range parent.Columns {
			c := pc
			c.PK = false
			c.Unique = false
			c.NotNull = false
			t.Columns = append(t.Columns, c)
		}
	}

	for _, cd := range n.Columns {
		col, err := e.buildColumn(cd)
		if err != nil {
			return nil, err
		}
		if idx := t.ColumnIndex(col.Name); idx >= 0 {
			// Inheritance merge: the child may restate the inherited
			// column but not change its type (PostgreSQL: "child table
			// has different type for column").
			if n.Inherits != "" && col.Affinity != t.Columns[idx].Affinity {
				return nil, xerr.New(xerr.CodeType,
					"child table %s has different type for column %q", n.Name, col.Name)
			}
			t.Columns[idx] = col
			continue
		}
		t.Columns = append(t.Columns, col)
	}
	for _, pk := range n.PrimaryKey {
		ci := t.ColumnIndex(pk)
		if ci < 0 {
			return nil, xerr.New(xerr.CodeNoObject, "no such column: %s", pk)
		}
		t.Columns[ci].PK = true
	}
	if n.WithoutRowid && len(t.PKColumns()) == 0 {
		return nil, xerr.New(xerr.CodeSyntax, "PRIMARY KEY missing on table %s", n.Name)
	}
	// PK implies NOT NULL except in SQLite rowid tables (a documented
	// SQLite quirk the paper's Listing 10 relies on).
	if e.d != dialect.SQLite || n.WithoutRowid {
		for _, ci := range t.PKColumns() {
			t.Columns[ci].NotNull = true
		}
	}

	if err := e.cat.AddTable(t); err != nil {
		return nil, xerr.New(xerr.CodeDuplicateObject, "%v", err)
	}
	if t.Parent != "" {
		parent, _ := e.cat.Table(t.Parent)
		parent.Children = append(parent.Children, t.Name)
	}
	e.data[lower(t.Name)] = e.newTableData()
	e.cov.hit("ddl.create-table")
	if n.WithoutRowid {
		e.cov.hit("ddl.without-rowid")
	}
	if t.Engine == "MEMORY" {
		e.cov.hit("ddl.engine-memory")
	}
	if t.Parent != "" {
		e.cov.hit("ddl.inherits")
	}
	return &Result{}, nil
}

func (e *Engine) buildColumn(cd sqlast.ColumnDef) (schema.Column, error) {
	col := schema.Column{
		Name:     cd.Name,
		TypeName: cd.TypeName,
		Unsigned: cd.Unsigned,
		NotNull:  cd.NotNull,
		Unique:   cd.Unique,
		PK:       cd.PrimaryKey,
		Default:  cd.Default,
		Check:    cd.Check,
	}
	if cd.Unsigned && !e.d.HasUnsigned() {
		return col, xerr.New(xerr.CodeUnsupported, "UNSIGNED is MySQL-only")
	}
	if cd.TypeName == "" && e.d != dialect.SQLite {
		return col, xerr.New(xerr.CodeSyntax, "column %s requires a type", cd.Name)
	}
	col.Affinity = sqlval.AffinityOf(cd.TypeName)
	if strings.EqualFold(cd.TypeName, "serial") {
		if e.d != dialect.Postgres {
			return col, xerr.New(xerr.CodeUnsupported, "serial is PostgreSQL-only")
		}
		col.Affinity = sqlval.AffInteger
		col.NotNull = true
	}
	if e.d == dialect.Postgres && strings.Contains(strings.ToUpper(cd.TypeName), "BOOL") {
		col.Affinity = sqlval.AffNumeric
	}
	if cd.Collate != "" {
		coll, ok := sqlval.ParseCollation(cd.Collate)
		if !ok {
			return col, xerr.New(xerr.CodeNoObject, "no such collation sequence: %s", cd.Collate)
		}
		col.Collate = coll
	}
	return col, nil
}

func (e *Engine) createIndex(n *sqlast.CreateIndex) (*Result, error) {
	if _, exists := e.cat.Index(n.Name); exists {
		if n.IfNotExists {
			return &Result{}, nil
		}
		return nil, xerr.New(xerr.CodeDuplicateObject, "index %s already exists", n.Name)
	}
	t, td, err := e.table(n.Table)
	if err != nil {
		return nil, err
	}
	ix := &schema.Index{
		Name:                   n.Name,
		Table:                  t.Name,
		Unique:                 n.Unique,
		Where:                  n.Where,
		BuildSeq:               e.seq,
		BuildCaseSensitiveLike: e.caseSensitiveLike,
	}
	var colls []sqlval.Collation
	var descs []bool
	for _, p := range n.Parts {
		part := schema.IndexPart{X: p.X, Desc: p.Desc}
		coll := sqlval.CollBinary
		if p.Collate != "" {
			c, ok := sqlval.ParseCollation(p.Collate)
			if !ok {
				return nil, xerr.New(xerr.CodeNoObject, "no such collation sequence: %s", p.Collate)
			}
			coll = c
			part.HasColl = true
		} else if cr, ok := p.X.(*sqlast.ColumnRef); ok && !cr.MaybeString {
			if ci := t.ColumnIndex(cr.Column); ci >= 0 {
				coll = t.Columns[ci].Collate
			}
		}
		part.Collate = coll
		ix.Parts = append(ix.Parts, part)
		colls = append(colls, coll)
		descs = append(descs, p.Desc)

		// Column references inside index expressions must resolve (the
		// SQLite double-quote misfeature exempts MaybeString refs).
		bad := ""
		sqlast.WalkExprs(p.X, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok && !cr.MaybeString {
				if t.ColumnIndex(cr.Column) < 0 {
					bad = cr.Column
				}
			}
			return true
		})
		if bad != "" {
			return nil, xerr.New(xerr.CodeNoObject, "no such column: %s", bad)
		}

		// Fault site (postgres.strict-cast-crash): the planner crashes
		// compiling an index expression containing a CAST.
		if e.d == dialect.Postgres && e.fs.Has(faults.StrictCastCrash) {
			sqlast.WalkExprs(p.X, func(x sqlast.Expr) bool {
				if _, ok := x.(*sqlast.Cast); ok {
					panic(crashPanic{site: "pg_index_expr_compile"})
				}
				return true
			})
		}
	}

	// Fault sites (sqlite.collate-index-order, sqlite.rtrim-compare): the
	// index is physically built in BINARY order even though the schema
	// declares NOCASE/RTRIM, so collation-aware lookups miss entries.
	buildColls := append([]sqlval.Collation(nil), colls...)
	if e.d == dialect.SQLite {
		for i, c := range buildColls {
			if c == sqlval.CollNoCase && e.fs.Has(faults.CollateIndexOrder) {
				buildColls[i] = sqlval.CollBinary
			}
			if c == sqlval.CollRTrim && e.fs.Has(faults.RtrimCompare) {
				buildColls[i] = sqlval.CollBinary
			}
		}
	}
	ixd := e.newIndexData(buildColls, descs)

	// Populate from existing rows, enforcing uniqueness.
	for _, r := range td.Rows() {
		key, include, err := e.indexKey(ix, t, r.Vals)
		if err != nil {
			return nil, err
		}
		if !include {
			continue
		}
		// Fault site (sqlite.nocase-unique-index, Listing 4): building a
		// NOCASE index over a WITHOUT ROWID table's PK dedups case-variant
		// keys — only the first variant gets an entry.
		if e.nocaseIndexDrops(t, ix, key, ixd) {
			continue
		}
		if ix.Unique && !allNull(key) && len(ixd.Equal(key)) > 0 {
			return nil, xerr.New(xerr.CodeUnique, "UNIQUE constraint failed: index %s", ix.Name)
		}
		ixd.Insert(key, r.Rowid)
	}

	if err := e.cat.AddIndex(ix); err != nil {
		return nil, xerr.New(xerr.CodeDuplicateObject, "%v", err)
	}
	e.idx[lower(ix.Name)] = ixd
	e.cov.hit("ddl.create-index")
	if ix.Where != nil {
		e.cov.hit("ddl.partial-index")
	}
	return &Result{}, nil
}

// nocaseIndexDrops is the shared trigger of the sqlite.nocase-unique-index
// fault (Listing 4): wherever entries are added — CREATE INDEX, REINDEX, or
// INSERT — a NOCASE index over a WITHOUT ROWID table's PK silently dedups
// case-variant text keys.
func (e *Engine) nocaseIndexDrops(t *schema.Table, ix *schema.Index, key []sqlval.Value, ixd *storage.IndexData) bool {
	return e.d == dialect.SQLite && e.fs.Has(faults.NocaseUniqueIndex) && t.WithoutRowid &&
		pkIsNocaseText(t, ix, key) && len(ixd.Equal(key)) > 0
}

// indexKey computes a row's key for an index; include=false means a partial
// index excludes the row.
func (e *Engine) indexKey(ix *schema.Index, t *schema.Table, vals []sqlval.Value) ([]sqlval.Value, bool, error) {
	env := newTableEnv(t, vals)
	if ix.Where != nil {
		tb, err := e.ev.EvalBool(ix.Where, env)
		if err != nil {
			return nil, false, err
		}
		// Fault site (postgres.bool-index-scan): membership in a partial
		// boolean index is decided with inverted polarity, so the index
		// holds exactly the rows the predicate excludes.
		if e.d == dialect.Postgres && e.fs.Has(faults.BoolIndexScan) {
			if tb == sqlval.TriTrue {
				return nil, false, nil
			}
		} else if tb != sqlval.TriTrue {
			return nil, false, nil
		}
	}
	key := make([]sqlval.Value, len(ix.Parts))
	for i, p := range ix.Parts {
		v, err := e.ev.Eval(p.X, env)
		if err != nil {
			return nil, false, err
		}
		key[i] = v
	}
	return key, true, nil
}

func allNull(key []sqlval.Value) bool {
	for _, v := range key {
		if !v.IsNull() {
			return false
		}
	}
	return true
}

func (e *Engine) createView(n *sqlast.CreateView) (*Result, error) {
	if _, exists := e.cat.Table(n.Name); exists {
		if n.IfNotExists {
			return &Result{}, nil
		}
		return nil, xerr.New(xerr.CodeDuplicateObject, "view %s already exists", n.Name)
	}
	// Validate the definition by running it once.
	res, err := e.execSelect(n.Select)
	if err != nil {
		return nil, err
	}
	t := &schema.Table{Name: n.Name, IsView: true, ViewDef: n.Select}
	for i, name := range res.Columns {
		cn := name
		if cn == "" || cn == "*" {
			cn = "c" + itoa(i)
		}
		t.Columns = append(t.Columns, schema.Column{Name: cn, Affinity: sqlval.AffBlob})
	}
	if err := e.cat.AddTable(t); err != nil {
		return nil, xerr.New(xerr.CodeDuplicateObject, "%v", err)
	}
	e.cov.hit("ddl.create-view")
	return &Result{}, nil
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func (e *Engine) createStats(n *sqlast.CreateStats) (*Result, error) {
	if e.d != dialect.Postgres {
		return nil, xerr.New(xerr.CodeUnsupported, "CREATE STATISTICS is PostgreSQL-only")
	}
	t, _, err := e.table(n.Table)
	if err != nil {
		return nil, err
	}
	for _, c := range n.Columns {
		if t.ColumnIndex(c) < 0 {
			return nil, xerr.New(xerr.CodeNoObject, "column %q does not exist", c)
		}
	}
	e.tableState(t.Name).hasStats = true
	e.cov.hit("ddl.create-stats")
	return &Result{}, nil
}

func (e *Engine) alterTable(n *sqlast.AlterTable) (*Result, error) {
	t, _, err := e.table(n.Table)
	if err != nil {
		return nil, err
	}
	switch n.Action {
	case sqlast.AlterRenameTable:
		if err := e.cat.RenameTable(n.Table, n.NewName); err != nil {
			return nil, xerr.New(xerr.CodeDuplicateObject, "%v", err)
		}
		e.data[lower(n.NewName)] = e.data[lower(n.Table)]
		delete(e.data, lower(n.Table))
		if st, ok := e.state[lower(n.Table)]; ok {
			e.state[lower(n.NewName)] = st
			delete(e.state, lower(n.Table))
		}
		e.cov.hit("ddl.rename-table")
		return &Result{}, nil
	case sqlast.AlterRenameColumn:
		ci := t.ColumnIndex(n.OldName)
		if ci < 0 {
			return nil, xerr.New(xerr.CodeNoObject, "no such column: %s", n.OldName)
		}
		if t.ColumnIndex(n.NewName) >= 0 {
			return nil, xerr.New(xerr.CodeDuplicateObject, "duplicate column name: %s", n.NewName)
		}
		t.Columns[ci].Name = n.NewName
		st := e.tableState(t.Name)
		st.renamedColumn = true
		// Rewrite references inside this table's indexes.
		for _, ix := range e.cat.IndexesOn(t.Name) {
			for pi := range ix.Parts {
				sqlast.WalkExprs(ix.Parts[pi].X, func(x sqlast.Expr) bool {
					if cr, ok := x.(*sqlast.ColumnRef); ok && !cr.MaybeString && strings.EqualFold(cr.Column, n.OldName) {
						cr.Column = n.NewName
					}
					return true
				})
				// Fault site (sqlite.double-quote-index, Listing 8): a
				// double-quoted string part now matches the renamed
				// column and hijacks its projection.
				if cr, ok := ix.Parts[pi].X.(*sqlast.ColumnRef); ok && cr.MaybeString &&
					e.d == dialect.SQLite && e.fs.Has(faults.DoubleQuoteIndex) &&
					strings.EqualFold(cr.Column, n.NewName) {
					st.dqHijackCol = ci
					st.dqHijackVal = cr.Column
				}
			}
			if ix.Where != nil {
				sqlast.WalkExprs(ix.Where, func(x sqlast.Expr) bool {
					if cr, ok := x.(*sqlast.ColumnRef); ok && !cr.MaybeString && strings.EqualFold(cr.Column, n.OldName) {
						cr.Column = n.NewName
					}
					return true
				})
			}
		}
		e.cov.hit("ddl.rename-column")
		return &Result{}, nil
	case sqlast.AlterAddColumn:
		if t.ColumnIndex(n.Column.Name) >= 0 {
			return nil, xerr.New(xerr.CodeDuplicateObject, "duplicate column name: %s", n.Column.Name)
		}
		col, err := e.buildColumn(n.Column)
		if err != nil {
			return nil, err
		}
		if col.NotNull && col.Default == nil && e.data[lower(t.Name)].Len() > 0 {
			return nil, xerr.New(xerr.CodeNotNull, "cannot add NOT NULL column without default to non-empty table")
		}
		def := sqlval.Null()
		if col.Default != nil {
			v, err := e.constEval(col.Default)
			if err != nil {
				return nil, err
			}
			def = sqlval.ApplyAffinity(v, col.Affinity)
		}
		t.Columns = append(t.Columns, col)
		e.data[lower(t.Name)].AddColumn(def)
		e.cov.hit("ddl.add-column")
		return &Result{}, nil
	}
	return nil, xerr.New(xerr.CodeUnsupported, "unsupported ALTER TABLE")
}

func (e *Engine) drop(n *sqlast.Drop) (*Result, error) {
	switch n.Obj {
	case sqlast.DropTable, sqlast.DropView:
		t, ok := e.cat.Table(n.Name)
		if !ok || (n.Obj == sqlast.DropView) != t.IsView {
			if n.IfExists {
				return &Result{}, nil
			}
			return nil, xerr.New(xerr.CodeNoObject, "no such table: %s", n.Name)
		}
		for _, ix := range e.cat.IndexesOn(t.Name) {
			delete(e.idx, lower(ix.Name))
		}
		if err := e.cat.DropTable(n.Name); err != nil {
			return nil, xerr.New(xerr.CodeBusy, "%v", err)
		}
		delete(e.data, lower(n.Name))
		delete(e.state, lower(n.Name))
		e.cov.hit("ddl.drop-table")
		return &Result{}, nil
	case sqlast.DropIndex:
		if _, ok := e.cat.Index(n.Name); !ok {
			if n.IfExists {
				return &Result{}, nil
			}
			return nil, xerr.New(xerr.CodeNoObject, "no such index: %s", n.Name)
		}
		if err := e.cat.DropIndex(n.Name); err != nil {
			return nil, xerr.New(xerr.CodeNoObject, "%v", err)
		}
		delete(e.idx, lower(n.Name))
		e.cov.hit("ddl.drop-index")
		return &Result{}, nil
	}
	return nil, xerr.New(xerr.CodeUnsupported, "unsupported DROP")
}
